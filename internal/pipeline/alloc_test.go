package pipeline

import (
	"bytes"
	"encoding/binary"
	"testing"

	"implicate/internal/query"
	"implicate/internal/stream"
)

// encodeRecords encodes tuples in the wire batch record format (the bytes
// after the binary header), as a producer would put them on the wire.
func encodeRecords(ts []stream.Tuple) []byte {
	var out []byte
	for _, t := range ts {
		for _, v := range t {
			out = binary.AppendUvarint(out, uint64(len(v)))
			out = append(out, v...)
		}
	}
	return out
}

// TestArenaPathAllocs pins the steady-state allocation budget of the whole
// arena path — acquire a pooled batch, decode the wire payload into its
// arena, plan, dispatch, recycle. The floor is one allocation per batch
// (the record-region string conversion, which the decoded keys alias and
// which therefore cannot be pooled); the budget leaves headroom for fence
// sentinels and occasional sync.Pool misses, and fails on any per-tuple or
// per-pair regression, which would overshoot it by orders of magnitude.
func TestArenaPathAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race-detector bookkeeping allocates; the pin only holds on plain builds")
	}
	eng := query.NewEngine(testSchema(t))
	registerSuite(t, eng, backends(11)["sharded"], false)
	pool, err := New(eng, Config{Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	batches := workload(16, 256)
	payloads := make([][]byte, len(batches))
	for i, ts := range batches {
		payloads[i] = encodeRecords(ts)
	}
	const arity = 3
	cycle := func() {
		for _, p := range payloads {
			b := pool.NewBatch()
			ts, err := b.Arena().DecodeBinaryRecords(p, arity, 1<<20)
			if err != nil {
				t.Fatal(err)
			}
			pool.Dispatch(pool.PlanInto(b, ts))
		}
		pool.Fence()
	}
	// Warm every grow-only capacity — pooled batches in flight, arena and
	// bucket backing stores, estimator tables — outside the measured window.
	for i := 0; i < 8; i++ {
		cycle()
	}
	perBatch := testing.AllocsPerRun(20, cycle) / float64(len(payloads))
	if perBatch > 3 {
		t.Fatalf("arena path: %.2f allocs per batch steady-state, want <= 3", perBatch)
	}
}

// TestArenaReuseRace (run with -race) proves a released batch is never
// observed by a late worker: it hammers the acquire→decode→plan→dispatch→
// recycle loop through a tiny queue so batches recycle as fast as workers
// drain, with every decoded key aliasing arena memory the next decode
// overwrites. A worker touching a batch after its release is a write/read
// race on the arena the detector flags; the final state check catches any
// silent corruption the schedule let through.
func TestArenaReuseRace(t *testing.T) {
	batches := workload(200, 120)
	for _, name := range []string{"sharded", "exact-striped"} {
		backend := backends(13)[name]
		t.Run(name, func(t *testing.T) {
			serial := query.NewEngine(testSchema(t))
			registerSuite(t, serial, backend, false)
			for _, ts := range batches {
				serial.ProcessBatch(ts)
			}
			want, err := serial.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}

			eng := query.NewEngine(testSchema(t))
			registerSuite(t, eng, backend, false)
			pool, err := New(eng, Config{Workers: 4, QueueLen: 1})
			if err != nil {
				t.Fatal(err)
			}
			const arity = 3
			for _, ts := range batches {
				payload := encodeRecords(ts)
				b := pool.NewBatch()
				decoded, err := b.Arena().DecodeBinaryRecords(payload, arity, 1<<20)
				if err != nil {
					t.Fatal(err)
				}
				pool.Dispatch(pool.PlanInto(b, decoded))
			}
			pool.Fence()
			got, err := eng.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			pool.Close()
			if !bytes.Equal(got, want) {
				t.Error("state after arena-recycled ingest diverged from serial run")
			}
		})
	}
}
