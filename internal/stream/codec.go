package stream

import (
	"bufio"
	"fmt"
	"io"
	"strings"
)

// The on-disk format is deliberately simple: a header line with the
// tab-separated attribute names, then one tab-separated record per line.
// Values may not contain tabs, newlines, or the key separator.

// Writer encodes tuples to an io.Writer in the text format.
type Writer struct {
	w      *bufio.Writer
	schema *Schema
	wrote  bool
}

// NewWriter returns a Writer that emits a header for schema on the first
// Write.
func NewWriter(w io.Writer, schema *Schema) *Writer {
	return &Writer{w: bufio.NewWriterSize(w, 1<<16), schema: schema}
}

// Write implements Sink.
func (w *Writer) Write(t Tuple) error {
	if !w.wrote {
		w.wrote = true
		if _, err := w.w.WriteString(strings.Join(w.schema.names, "\t")); err != nil {
			return err
		}
		if err := w.w.WriteByte('\n'); err != nil {
			return err
		}
	}
	if len(t) != w.schema.Len() {
		return fmt.Errorf("stream: tuple arity %d does not match schema arity %d", len(t), w.schema.Len())
	}
	for i, v := range t {
		if strings.ContainsAny(v, "\t\n\x1f") {
			return fmt.Errorf("stream: value %q contains a reserved character", v)
		}
		if i > 0 {
			if err := w.w.WriteByte('\t'); err != nil {
				return err
			}
		}
		if _, err := w.w.WriteString(v); err != nil {
			return err
		}
	}
	return w.w.WriteByte('\n')
}

// Flush flushes buffered output; call it before closing the underlying
// writer.
func (w *Writer) Flush() error {
	if !w.wrote {
		// Emit the header even for empty streams so readers learn the schema.
		w.wrote = true
		if _, err := w.w.WriteString(strings.Join(w.schema.names, "\t")); err != nil {
			return err
		}
		if err := w.w.WriteByte('\n'); err != nil {
			return err
		}
	}
	return w.w.Flush()
}

// Reader decodes tuples from an io.Reader in the text format.
type Reader struct {
	s      *bufio.Scanner
	schema *Schema
	fields []string
	line   int
	pos    int64
}

// NewReader reads the header line and returns a Reader positioned at the
// first tuple.
func NewReader(r io.Reader) (*Reader, error) {
	s := bufio.NewScanner(r)
	s.Buffer(make([]byte, 1<<16), 1<<22)
	if !s.Scan() {
		if err := s.Err(); err != nil {
			return nil, err
		}
		return nil, fmt.Errorf("stream: missing header line")
	}
	schema, err := NewSchema(strings.Split(s.Text(), "\t")...)
	if err != nil {
		return nil, fmt.Errorf("stream: bad header: %w", err)
	}
	return &Reader{s: s, schema: schema, fields: make([]string, schema.Len()), line: 1}, nil
}

// Schema returns the schema read from the header.
func (r *Reader) Schema() *Schema { return r.schema }

// Next implements Source. The returned tuple aliases an internal buffer and
// is only valid until the next call.
func (r *Reader) Next() (Tuple, error) {
	if !r.s.Scan() {
		if err := r.s.Err(); err != nil {
			return nil, err
		}
		return nil, io.EOF
	}
	r.line++
	line := r.s.Text()
	n := 0
	for {
		i := strings.IndexByte(line, '\t')
		if i < 0 {
			break
		}
		if n >= len(r.fields)-1 {
			return nil, fmt.Errorf("stream: line %d has more than %d fields", r.line, len(r.fields))
		}
		r.fields[n] = line[:i]
		line = line[i+1:]
		n++
	}
	r.fields[n] = line
	n++
	if n != len(r.fields) {
		return nil, fmt.Errorf("stream: line %d has %d fields, want %d", r.line, n, len(r.fields))
	}
	r.pos++
	return Tuple(r.fields), nil
}
