package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"implicate"
)

// queryList collects repeated -q flags; their order is their statement id,
// and must match the leaves' registration order.
type queryList []string

func (q *queryList) String() string { return strings.Join(*q, "; ") }

func (q *queryList) Set(v string) error {
	*q = append(*q, v)
	return nil
}

// config carries the parsed command line.
type config struct {
	listen  string
	leaves  string
	schema  string
	queries queryList

	parts int
	flush int

	probeEvery   time.Duration
	probeTimeout time.Duration
	probeFails   int
	drainTimeout time.Duration

	admin      string
	traceSpans int

	leafSpecs []implicate.LeafSpec // filled by validate
}

func parseFlags(args []string) (*config, []string, error) {
	fs := flag.NewFlagSet("impcoordd", flag.ContinueOnError)
	cfg := &config{}
	fs.StringVar(&cfg.listen, "listen", ":7100", "TCP listen address for the fleet front-end")
	fs.StringVar(&cfg.leaves, "leaves", "", "fleet members as name=addr,name=addr (required); names are stable routing identities")
	fs.StringVar(&cfg.schema, "schema", "", "comma-separated stream attribute names (required)")
	fs.Var(&cfg.queries, "q", "implication query the fleet serves (repeatable; required); must match the leaves' registration order")
	fs.IntVar(&cfg.parts, "parts", 64, "virtual partitions in the route table; a power of two >= the fleet size")
	fs.IntVar(&cfg.flush, "flush", 512, "per-leaf batch size in tuples: routed tuples buffer until a leaf has this many")
	fs.DurationVar(&cfg.probeEvery, "probe-every", 50*time.Millisecond, "health-probe period per leaf")
	fs.DurationVar(&cfg.probeTimeout, "probe-timeout", time.Second, "health-probe round-trip bound")
	fs.IntVar(&cfg.probeFails, "probe-fails", 3, "consecutive probe failures before a leaf is marked down")
	fs.DurationVar(&cfg.drainTimeout, "drain-timeout", 30*time.Second, "bound on fleet flush and per-query merge quiesce")
	fs.StringVar(&cfg.admin, "admin", "", "fleet admin HTTP address (/metrics, /healthz, /fleet, /trace, pprof); empty disables")
	fs.IntVar(&cfg.traceSpans, "trace-spans", 0, "span ring capacity for cross-node tracing; 0 disables; leaves must be trace-aware builds")
	if err := fs.Parse(args); err != nil {
		return nil, nil, err
	}
	return cfg, fs.Args(), nil
}

// parseLeaves turns "name=addr,name=addr" into leaf specs, rejecting
// malformed entries and duplicate names early with a flag-shaped error.
func parseLeaves(s string) ([]implicate.LeafSpec, error) {
	var specs []implicate.LeafSpec
	seen := make(map[string]bool)
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, addr, ok := strings.Cut(part, "=")
		name, addr = strings.TrimSpace(name), strings.TrimSpace(addr)
		if !ok || name == "" || addr == "" {
			return nil, fmt.Errorf("leaf %q is not name=addr", part)
		}
		if seen[name] {
			return nil, fmt.Errorf("duplicate leaf name %q", name)
		}
		seen[name] = true
		specs = append(specs, implicate.LeafSpec{Name: name, Addr: addr})
	}
	if len(specs) == 0 {
		return nil, fmt.Errorf("no leaves")
	}
	return specs, nil
}

// validate rejects flag combinations that would otherwise fail late, and
// resolves the leaf list.
func (cfg *config) validate() error {
	if cfg.schema == "" {
		return fmt.Errorf("missing -schema (comma-separated attribute names)")
	}
	if len(cfg.queries) == 0 {
		return fmt.Errorf("missing -q query")
	}
	if cfg.leaves == "" {
		return fmt.Errorf("missing -leaves (name=addr,name=addr)")
	}
	specs, err := parseLeaves(cfg.leaves)
	if err != nil {
		return fmt.Errorf("-leaves: %w", err)
	}
	cfg.leafSpecs = specs
	if cfg.parts < 1 || cfg.parts&(cfg.parts-1) != 0 {
		return fmt.Errorf("-parts must be a power of two >= 1, got %d", cfg.parts)
	}
	if cfg.parts < len(specs) {
		return fmt.Errorf("-parts %d cannot cover %d leaves", cfg.parts, len(specs))
	}
	if cfg.flush < 1 {
		return fmt.Errorf("-flush must be >= 1, got %d", cfg.flush)
	}
	if cfg.probeFails < 1 {
		return fmt.Errorf("-probe-fails must be >= 1, got %d", cfg.probeFails)
	}
	if cfg.probeEvery <= 0 || cfg.probeTimeout <= 0 || cfg.drainTimeout <= 0 {
		return fmt.Errorf("-probe-every, -probe-timeout and -drain-timeout must be positive")
	}
	if cfg.traceSpans < 0 {
		return fmt.Errorf("-trace-spans must be >= 0, got %d", cfg.traceSpans)
	}
	return nil
}

// coordAddrs is what serve reports on ready: the front-end's bound
// address, and the admin endpoint's when one is configured.
type coordAddrs struct {
	front string
	admin string
}

// serve runs the coordinator until stop closes, then flushes the fleet and
// prints the final answers and membership to out. The bound addresses are
// sent on ready.
func serve(cfg *config, ready chan<- coordAddrs, stop <-chan struct{}, out io.Writer) error {
	names := strings.Split(cfg.schema, ",")
	for i := range names {
		names[i] = strings.TrimSpace(names[i])
	}
	schema, err := implicate.NewSchema(names...)
	if err != nil {
		return err
	}
	co, err := implicate.NewCoordinator(implicate.CoordinatorConfig{
		Schema:            schema,
		Statements:        cfg.queries,
		Leaves:            cfg.leafSpecs,
		VirtualPartitions: cfg.parts,
		FlushTuples:       cfg.flush,
		ProbeEvery:        cfg.probeEvery,
		ProbeTimeout:      cfg.probeTimeout,
		ProbeFails:        cfg.probeFails,
		DrainTimeout:      cfg.drainTimeout,
		TraceSpans:        cfg.traceSpans,
		Logf:              log.Printf,
	})
	if err != nil {
		return err
	}
	fe, err := implicate.ServeCoordinator(co, cfg.listen)
	if err != nil {
		co.Close()
		return err
	}
	var admin *implicate.AdminServer
	if cfg.admin != "" {
		admin, err = implicate.ServeCoordinatorAdmin(cfg.admin, co)
		if err != nil {
			fe.Close()
			co.Close()
			return err
		}
	}
	if cfg.traceSpans > 0 {
		// SIGQUIT dumps the coordinator's span ring, mirroring impserved.
		// Registering it suppresses Go's die-with-stacks default only while
		// tracing is on; SIGABRT still produces stacks.
		quit := make(chan os.Signal, 1)
		signal.Notify(quit, syscall.SIGQUIT)
		defer signal.Stop(quit)
		go func() {
			for range quit {
				dumpTrace(os.Stderr, co.Tracer().Snapshot())
			}
		}()
	}
	ready <- coordAddrs{front: fe.Addr(), admin: adminAddr(admin)}
	<-stop
	fe.Close()
	if admin != nil {
		admin.Close()
	}
	// Producers are cut; push every buffered tuple into the fleet so the
	// final answers cover everything acknowledged.
	if err := co.Flush(); err != nil {
		co.Close()
		return err
	}
	err = printSummary(out, co, cfg.queries)
	co.Close()
	return err
}

func adminAddr(a *implicate.AdminServer) string {
	if a == nil {
		return ""
	}
	return a.Addr
}

// dumpTrace renders the coordinator's span dump as text, one span per
// line, newest last — the same shape impserved's SIGQUIT dump has, with
// the cross-node identity appended when a span carries one.
func dumpTrace(w io.Writer, spans []implicate.TraceSpan) {
	fmt.Fprintf(w, "--- trace: %d spans ---\n", len(spans))
	for _, sp := range spans {
		fmt.Fprintf(w, "%8d %-10s arg=%-4d units=%-8d %s +%v trace=%016x id=%016x\n",
			sp.Seq, sp.Kind, sp.Arg, sp.Units,
			time.Unix(0, sp.Start).UTC().Format("15:04:05.000000"),
			time.Duration(sp.Dur).Round(time.Microsecond),
			sp.Trace, sp.ID)
	}
}

// printSummary renders the shutdown report: per-statement answers off the
// merged fleet state, then the membership view.
func printSummary(out io.Writer, co *implicate.Coordinator, queries []string) error {
	for i, sql := range queries {
		res, err := co.Query(i)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "stmt %d: %s = %.1f (%d tuples fleet-wide)\n", i, sql, res.Count, res.Tuples)
	}
	cs := co.Status()
	fmt.Fprintf(out, "fleet: %d leaves over %d virtual partitions\n", len(cs.Leaves), cs.VirtualPartitions)
	for _, lf := range cs.Leaves {
		fmt.Fprintf(out, "  %s: %s epoch=%d parts=%d journaled=%d acked=%d\n",
			lf.Addr, leafStateName(lf.State), lf.Epoch, lf.Parts, lf.Journaled, lf.Acked)
	}
	return nil
}

func leafStateName(s uint8) string {
	switch s {
	case implicate.LeafDown:
		return "down"
	case implicate.LeafRecovering:
		return "recovering"
	}
	return "up"
}
