package experiments

import (
	"fmt"
	"io"

	"implicate/internal/core"
	"implicate/internal/gen"
	"implicate/internal/metrics"
)

// EstimatorRow is one point of the estimator-variant ablation (DESIGN.md
// ablation 4): the same bounded sketch read through the direct
// fringe-sample estimator, the corrected Algorithm-2 subtraction, and the
// paper's raw 2^R arithmetic, as the implication count's share of the
// supported population shrinks.
type EstimatorRow struct {
	// Frac is S / |A|: the implication count as a fraction of the itemset
	// population.
	Frac float64
	// Ratio is S / F0^sup, the quantity §4.7.2's caveat is about.
	Ratio float64
	// DirectErr, CIErr and RawErr are the mean relative errors of the three
	// read-outs on identical sketches.
	DirectErr, CIErr, RawErr float64
	// IntervalCoverage is the fraction of runs whose z=2 direct-estimator
	// interval covered the truth.
	IntervalCoverage float64
}

// RunEstimatorAblation sweeps the implication fraction and measures all
// three estimator variants on the same sketches.
func RunEstimatorAblation(cfg AblationConfig, fracs []float64) ([]EstimatorRow, error) {
	cfg = cfg.withDefaults()
	if len(fracs) == 0 {
		fracs = []float64{0.05, 0.1, 0.25, 0.5, 0.75, 0.9}
	}
	var rows []EstimatorRow
	for _, frac := range fracs {
		count := int(float64(cfg.CardA) * frac)
		if count < 1 {
			count = 1
		}
		var direct, ci, raw metrics.Welford
		covered := 0
		var ratio float64
		for run := 0; run < cfg.Runs; run++ {
			d, err := gen.NewDatasetOne(gen.DatasetOneConfig{
				CardA: cfg.CardA, Count: count, C: cfg.C,
				Seed: cfg.Seed + int64(run)*101 + int64(frac*1000),
			})
			if err != nil {
				return nil, err
			}
			sk, err := core.NewSketch(d.Conditions, core.Options{
				Seed: uint64(cfg.Seed+int64(run)*7) * 0x9e3779b97f4a7c15,
			})
			if err != nil {
				return nil, err
			}
			d.Feed(sk)
			truth := float64(d.Count)
			ratio = truth / float64(d.Supported)
			direct.Add(metrics.RelErr(truth, sk.ImplicationCount()))
			ci.Add(metrics.RelErr(truth, sk.CIImplicationCount()))
			raw.Add(metrics.RelErr(truth, sk.RawImplicationCount()))
			if lo, hi := sk.ImplicationCountInterval(2); lo <= truth && truth <= hi {
				covered++
			}
		}
		rows = append(rows, EstimatorRow{
			Frac:             frac,
			Ratio:            ratio,
			DirectErr:        direct.Mean(),
			CIErr:            ci.Mean(),
			RawErr:           raw.Mean(),
			IntervalCoverage: float64(covered) / float64(cfg.Runs),
		})
	}
	return rows, nil
}

// PrintEstimatorAblation renders the estimator comparison.
func PrintEstimatorAblation(w io.Writer, rows []EstimatorRow) {
	fmt.Fprintln(w, "Ablation — estimator variants on identical sketches (DESIGN.md §3)")
	fmt.Fprintf(w, "  %8s  %9s  %10s  %10s  %10s  %10s\n",
		"S/|A|", "S/F0sup", "Direct", "CI(corr)", "Raw(Alg2)", "z=2 cover")
	for _, r := range rows {
		fmt.Fprintf(w, "  %8.2f  %9.3f  %10.4f  %10.4f  %10.4f  %9.0f%%\n",
			r.Frac, r.Ratio, r.DirectErr, r.CIErr, r.RawErr, 100*r.IntervalCoverage)
	}
}
