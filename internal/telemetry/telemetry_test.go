package telemetry

import (
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounters(t *testing.T) {
	var s Set
	s.AddTuples(100)
	s.AddTuples(28)
	s.AddBatch()
	s.AddBatch()
	s.AddRejectedBatch()
	s.AddMerge()
	sn := s.Snapshot()
	if sn.TuplesIngested != 128 || sn.Batches != 2 || sn.BatchesRejected != 1 || sn.Merges != 1 {
		t.Fatalf("snapshot %+v", sn)
	}
}

func TestQueueHighWaterIsMonotonic(t *testing.T) {
	var s Set
	for _, d := range []int{3, 7, 2, 7, 5} {
		s.ObserveQueueDepth(d)
	}
	if hw := s.Snapshot().QueueHighWater; hw != 7 {
		t.Fatalf("high water %d, want 7", hw)
	}
	// Concurrent observers must converge on the true maximum.
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for d := 0; d <= 100+g; d++ {
				s.ObserveQueueDepth(d)
			}
		}(g)
	}
	wg.Wait()
	if hw := s.Snapshot().QueueHighWater; hw != 107 {
		t.Fatalf("concurrent high water %d, want 107", hw)
	}
}

func TestHistogramBuckets(t *testing.T) {
	var s Set
	s.Observe(RPCIngest, 0)                // clamps to bucket 0
	s.Observe(RPCIngest, 1)                // 1ns -> bucket 0
	s.Observe(RPCIngest, 1024)             // exactly 2^10 -> bucket 10
	s.Observe(RPCIngest, 1025)             // -> bucket 11
	s.Observe(RPCIngest, time.Hour*100000) // clamps to the last bucket
	s.Observe(NumRPCs, time.Second)        // out of range: dropped, not a panic
	h := s.Snapshot().Latency[RPCIngest]
	if h.Count() != 5 {
		t.Fatalf("count %d, want 5", h.Count())
	}
	for b, want := range map[int]uint64{0: 2, 10: 1, 11: 1, HistBuckets - 1: 1} {
		if h.Counts[b] != want {
			t.Errorf("bucket %d = %d, want %d", b, h.Counts[b], want)
		}
	}
	if other := s.Snapshot().Latency[RPCQuery]; other.Count() != 0 {
		t.Error("observation leaked into another RPC's histogram")
	}
}

func TestQuantile(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 {
		t.Error("empty histogram quantile not 0")
	}
	h.Counts[10] = 90 // ~1µs
	h.Counts[20] = 10 // ~1ms
	if q := h.Quantile(0.5); q != 1<<10 {
		t.Errorf("p50 = %v, want %v", q, time.Duration(1<<10))
	}
	if q := h.Quantile(0.99); q != 1<<20 {
		t.Errorf("p99 = %v, want %v", q, time.Duration(1<<20))
	}
	if q := h.Quantile(-1); q != 1<<10 {
		t.Errorf("clamped q<0 = %v", q)
	}
	if q := h.Quantile(2); q != 1<<20 {
		t.Errorf("clamped q>1 = %v", q)
	}
}

func TestSnapshotEncodeDecodeRoundTrip(t *testing.T) {
	var s Set
	s.AddTuples(1 << 40)
	s.AddBatch()
	s.AddRejectedBatch()
	s.AddMerge()
	s.ObserveQueueDepth(17)
	s.Observe(RPCQuery, 3*time.Microsecond)
	s.Observe(RPCMerge, 2*time.Millisecond)
	s.ConfigureWorkers(4)
	s.AddWorkerTask(0, 128)
	s.AddWorkerTask(3, 7)
	s.AddWorkerTask(3, 5)
	s.AddPoolSaturation()
	want := s.Snapshot()

	got, err := DecodeSnapshot(want.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
	if got.PoolSaturation != 1 {
		t.Fatalf("pool saturation %d, want 1", got.PoolSaturation)
	}
	if len(got.Workers) != 4 || got.Workers[0] != (WorkerStats{Tasks: 1, Units: 128}) || got.Workers[3] != (WorkerStats{Tasks: 2, Units: 12}) {
		t.Fatalf("worker stats %+v", got.Workers)
	}
}

// TestSnapshotRoundTripNoWorkers pins the wire form for servers that never
// configured a pool (Workers nil).
func TestSnapshotRoundTripNoWorkers(t *testing.T) {
	var s Set
	s.AddTuples(5)
	want := s.Snapshot()
	got, err := DecodeSnapshot(want.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
	if got.Workers != nil {
		t.Fatalf("workers %+v, want nil", got.Workers)
	}
}

// TestSnapshotTenantRoundTrip pins the v4 wire form: a snapshot carrying
// tenants round-trips them, and one without stays byte-identical to the v3
// encoding so older readers keep working against no-tenant servers.
func TestSnapshotTenantRoundTrip(t *testing.T) {
	var s Set
	s.AddTuples(9)
	want := s.Snapshot()
	want.Tenants = []TenantStats{
		{Name: "acme", Weight: 3, Tuples: 100, Batches: 4, Rejected: 1, QuotaRefusals: 2, MemBytes: 1 << 20, MemBudget: 1 << 22, QueueHighWater: 7},
		{Name: "zeta", Weight: 1, Tuples: 5},
	}
	enc := want.Encode()
	if string(enc[:len(snapshotMagicV4)]) != snapshotMagicV4 {
		t.Fatalf("tenant snapshot magic %q, want v4", enc[:5])
	}
	got, err := DecodeSnapshot(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}

	plain := s.Snapshot().Encode()
	if string(plain[:len(snapshotMagic)]) != snapshotMagic {
		t.Fatalf("tenant-free snapshot magic %q, want v3", plain[:5])
	}

	// Negative tenant counter is corruption.
	bad := want
	bad.Tenants = []TenantStats{{Name: "x", Tuples: -1}}
	if _, err := DecodeSnapshot(bad.Encode()); err == nil || !strings.Contains(err.Error(), "negative tenant") {
		t.Errorf("negative tenant counter accepted: %v", err)
	}
}

func TestDecodeSnapshotRejectsCorruption(t *testing.T) {
	good := (&Set{}).Snapshot().Encode()

	if _, err := DecodeSnapshot(good[:len(good)-1]); err == nil {
		t.Error("truncated snapshot accepted")
	}
	if _, err := DecodeSnapshot(append(append([]byte(nil), good...), 0)); err == nil {
		t.Error("trailing bytes accepted")
	}
	bad := append([]byte(nil), good...)
	bad[0] ^= 0xFF
	if _, err := DecodeSnapshot(bad); err == nil {
		t.Error("wrong magic accepted")
	}
	// Negative counter: flip the sign byte of TuplesIngested.
	neg := append([]byte(nil), good...)
	neg[len(snapshotMagic)+7] = 0x80
	if _, err := DecodeSnapshot(neg); err == nil || !strings.Contains(err.Error(), "negative") {
		t.Errorf("negative counter accepted: %v", err)
	}
}

// TestHistogramConcurrentWriters hammers one Set from concurrent writers —
// the pool-worker pattern — and asserts no observation is lost (run with
// -race). Each goroutine plays one pipeline worker observing its own
// latencies plus shared counters.
func TestHistogramConcurrentWriters(t *testing.T) {
	const (
		writers = 8
		perGor  = 10000
	)
	var s Set
	s.ConfigureWorkers(writers)
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rpc := RPC(g % int(NumRPCs))
			for i := 0; i < perGor; i++ {
				// Spread observations across buckets deterministically.
				s.Observe(rpc, time.Duration(1)<<uint(i%20))
				s.AddWorkerTask(g, 1)
				if i%100 == 0 {
					s.AddPoolSaturation()
				}
			}
		}(g)
	}
	wg.Wait()

	sn := s.Snapshot()
	var total uint64
	for r := RPC(0); r < NumRPCs; r++ {
		total += sn.Latency[r].Count()
	}
	if want := uint64(writers * perGor); total != want {
		t.Fatalf("histograms hold %d observations, want %d — concurrent writers lost samples", total, want)
	}
	for w, ws := range sn.Workers {
		if ws.Tasks != perGor || ws.Units != perGor {
			t.Fatalf("worker %d counters %+v, want %d tasks/units", w, ws, perGor)
		}
	}
	if want := int64(writers * (perGor / 100)); sn.PoolSaturation != want {
		t.Fatalf("pool saturation %d, want %d", sn.PoolSaturation, want)
	}
}

// TestWorkerCounterBounds checks out-of-range worker samples are dropped,
// not a panic — including on an unconfigured set.
func TestWorkerCounterBounds(t *testing.T) {
	var s Set
	s.AddWorkerTask(0, 5) // unconfigured: dropped
	s.ConfigureWorkers(2)
	s.AddWorkerTask(-1, 5)
	s.AddWorkerTask(2, 5)
	s.AddWorkerTask(1, 5)
	sn := s.Snapshot()
	if len(sn.Workers) != 2 || sn.Workers[0].Tasks != 0 || sn.Workers[1] != (WorkerStats{Tasks: 1, Units: 5}) {
		t.Fatalf("worker stats %+v", sn.Workers)
	}
}

func TestRPCStrings(t *testing.T) {
	for r, want := range map[RPC]string{
		RPCIngest: "IngestBatch", RPCQuery: "Query", RPCMerge: "SnapshotMerge",
		RPCStats: "Stats", RPC(200): "RPC(200)",
	} {
		if got := r.String(); got != want {
			t.Errorf("RPC %d: %q, want %q", r, got, want)
		}
	}
}

// TestSnapshotV5RoundTrip pins the v5 wire form: fine-grained UDP counters
// and per-shard rows round-trip, a snapshot carrying neither stays
// byte-identical to the older encodings, and v5 carries the tenant block
// even when empty.
func TestSnapshotV5RoundTrip(t *testing.T) {
	var s Set
	s.AddTuples(11)
	s.AddUDPApplied()
	s.AddUDPWindowDrop()
	s.AddUDPDecodeDrop()
	s.AddUDPReorder()
	s.AddUDPReorder()
	s.AddUDPCRCFailure()
	want := s.Snapshot()
	want.Shards = []ShardStats{
		{Lane: "", Shard: 0, Tasks: 40, HighWater: 3},
		{Lane: "acme", Shard: 1, Tasks: 7, HighWater: 2},
	}
	enc := want.Encode()
	if string(enc[:len(snapshotMagicV5)]) != snapshotMagicV5 {
		t.Fatalf("v5 snapshot magic %q, want v5", enc[:5])
	}
	got, err := DecodeSnapshot(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
	if got.UDPReorders != 2 || got.UDPApplied != 1 || got.UDPCRCFailures != 1 {
		t.Fatalf("fine-grained UDP counters %+v", got)
	}

	// Shard rows alone (no fine UDP counters) also select v5.
	shardsOnly := (&Set{}).Snapshot()
	shardsOnly.Shards = []ShardStats{{Lane: "", Shard: 0, Tasks: 1}}
	if enc := shardsOnly.Encode(); string(enc[:len(snapshotMagicV5)]) != snapshotMagicV5 {
		t.Fatalf("shard-only snapshot magic %q, want v5", enc[:5])
	}

	// Tenants ride along inside v5.
	withTenants := want
	withTenants.Tenants = []TenantStats{{Name: "acme", Weight: 2, Tuples: 6}}
	got2, err := DecodeSnapshot(withTenants.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got2, withTenants) {
		t.Fatalf("v5+tenants round trip mismatch:\n got %+v\nwant %+v", got2, withTenants)
	}

	// A quiet snapshot must not upgrade: byte-identical to v3.
	quiet := (&Set{}).Snapshot()
	if enc := quiet.Encode(); string(enc[:len(snapshotMagic)]) != snapshotMagic {
		t.Fatalf("quiet snapshot magic %q, want v3", enc[:5])
	}

	// Negative shard counter is corruption.
	bad := want
	bad.Shards = []ShardStats{{Lane: "x", Tasks: -1}}
	if _, err := DecodeSnapshot(bad.Encode()); err == nil || !strings.Contains(err.Error(), "negative shard") {
		t.Errorf("negative shard counter accepted: %v", err)
	}
}
