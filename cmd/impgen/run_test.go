package main

import (
	"io"
	"strings"
	"testing"

	"implicate/internal/stream"
)

func countRecords(t *testing.T, data string) (int, *stream.Schema) {
	t.Helper()
	r, err := stream.NewReader(strings.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		if _, err := r.Next(); err == io.EOF {
			return n, r.Schema()
		} else if err != nil {
			t.Fatal(err)
		}
		n++
	}
}

func TestParseFlagsDefaults(t *testing.T) {
	cfg, rest, err := parseFlags(nil)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.kind != "nettraffic" || cfg.n != 100000 || len(rest) != 0 {
		t.Fatalf("defaults: %+v %v", cfg, rest)
	}
	if _, _, err := parseFlags([]string{"-bogus"}); err == nil {
		t.Error("unknown flag accepted")
	}
}

func TestRunNetTraffic(t *testing.T) {
	var out, diag strings.Builder
	cfg := &config{kind: "nettraffic", n: 500, seed: 3}
	if err := run(cfg, &out, &diag); err != nil {
		t.Fatal(err)
	}
	n, schema := countRecords(t, out.String())
	if n != 500 {
		t.Fatalf("records = %d", n)
	}
	if got := schema.Names()[0]; got != "Source" {
		t.Fatalf("schema = %v", schema.Names())
	}
}

func TestRunOLAP(t *testing.T) {
	var out strings.Builder
	cfg := &config{kind: "olap", n: 200, seed: 1}
	if err := run(cfg, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	n, schema := countRecords(t, out.String())
	if n != 200 || schema.Len() != 8 {
		t.Fatalf("records=%d schema=%v", n, schema.Names())
	}
}

func TestRunDatasetOne(t *testing.T) {
	var out, diag strings.Builder
	cfg := &config{kind: "datasetone", card: 120, count: 60, c: 2, seed: 9}
	if err := run(cfg, &out, &diag); err != nil {
		t.Fatal(err)
	}
	n, schema := countRecords(t, out.String())
	if n < 1000 || schema.Len() != 2 {
		t.Fatalf("records=%d schema=%v", n, schema.Names())
	}
	if !strings.Contains(diag.String(), "S=60") {
		t.Fatalf("diagnostic missing: %s", diag.String())
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(&config{kind: "zzz"}, io.Discard, io.Discard); err == nil {
		t.Error("unknown kind accepted")
	}
	if err := run(&config{kind: "datasetone", card: 1, count: 1}, io.Discard, io.Discard); err == nil {
		t.Error("invalid dataset-one config accepted")
	}
}

func TestRunBinaryFormat(t *testing.T) {
	var out strings.Builder
	cfg := &config{kind: "nettraffic", n: 300, seed: 3, format: "binary"}
	if err := run(cfg, &out, io.Discard); err != nil {
		t.Fatal(err)
	}
	src, schema, err := stream.OpenReader(strings.NewReader(out.String()))
	if err != nil {
		t.Fatal(err)
	}
	if schema.Len() != 4 {
		t.Fatalf("schema = %v", schema.Names())
	}
	n := 0
	for {
		if _, err := src.Next(); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n != 300 {
		t.Fatalf("records = %d", n)
	}
}

func TestRunUnknownFormat(t *testing.T) {
	if err := run(&config{kind: "olap", n: 1, format: "yaml"}, io.Discard, io.Discard); err == nil {
		t.Error("unknown format accepted")
	}
}
