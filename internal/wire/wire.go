// Package wire is the shared binary encoding layer of the durability
// subsystem: a little-endian, length-prefixed codec whose decoder never
// trusts the input. Every length field is validated against the bytes that
// remain before it sizes an allocation, every read is bounds-checked, and
// the first malformed field poisons the decoder so callers can run a whole
// decode and check the error once at the end. The checkpoint formats
// (engine snapshots, estimator state, the checkpoint file container) are
// all built on it.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// ErrCorrupt is returned for any malformed encoding: truncated input,
// implausible length fields, or trailing bytes.
var ErrCorrupt = errors.New("wire: corrupt encoding")

// Encoder appends primitive values to a growing buffer.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an encoder with the given initial capacity.
func NewEncoder(capacity int) *Encoder {
	return &Encoder{buf: make([]byte, 0, capacity)}
}

// Bytes returns the encoded buffer.
func (e *Encoder) Bytes() []byte { return e.buf }

// Raw appends bytes verbatim, without a length prefix (magic strings).
func (e *Encoder) Raw(b []byte) { e.buf = append(e.buf, b...) }

// U8 appends one byte.
func (e *Encoder) U8(v uint8) { e.buf = append(e.buf, v) }

// U32 appends a little-endian uint32.
func (e *Encoder) U32(v uint32) { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }

// U64 appends a little-endian uint64.
func (e *Encoder) U64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }

// I64 appends an int64 as its two's-complement uint64.
func (e *Encoder) I64(v int64) { e.U64(uint64(v)) }

// F64 appends a float64 by its IEEE-754 bits.
func (e *Encoder) F64(v float64) { e.U64(math.Float64bits(v)) }

// Bool appends a bool as one byte.
func (e *Encoder) Bool(v bool) {
	if v {
		e.U8(1)
	} else {
		e.U8(0)
	}
}

// Str appends a string with a u32 length prefix.
func (e *Encoder) Str(s string) {
	e.U32(uint32(len(s)))
	e.buf = append(e.buf, s...)
}

// Blob appends a byte slice with a u32 length prefix.
func (e *Encoder) Blob(b []byte) {
	e.U32(uint32(len(b)))
	e.buf = append(e.buf, b...)
}

// Decoder reads primitive values back out of a buffer. The first failed
// read sets a sticky error; subsequent reads return zero values, so callers
// may decode an entire structure and inspect Err once.
type Decoder struct {
	buf []byte
	off int
	err error
}

// NewDecoder returns a decoder over data.
func NewDecoder(data []byte) *Decoder { return &Decoder{buf: data} }

// Err returns the sticky decode error, if any.
func (d *Decoder) Err() error { return d.err }

// Remaining returns the number of undecoded bytes.
func (d *Decoder) Remaining() int { return len(d.buf) - d.off }

// Done returns the sticky error, or ErrCorrupt when input remains after a
// complete decode.
func (d *Decoder) Done() error {
	if d.err != nil {
		return d.err
	}
	if d.off != len(d.buf) {
		return fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(d.buf)-d.off)
	}
	return nil
}

func (d *Decoder) fail() {
	if d.err == nil {
		d.err = ErrCorrupt
	}
}

// Failf records a caller-detected validation failure (wrapping ErrCorrupt)
// without aborting control flow, mirroring the decoder's own sticky errors.
func (d *Decoder) Failf(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
	}
}

// Magic consumes the expected magic bytes, failing the decode on mismatch.
func (d *Decoder) Magic(magic string) {
	if d.err != nil || d.off+len(magic) > len(d.buf) || string(d.buf[d.off:d.off+len(magic)]) != magic {
		d.fail()
		return
	}
	d.off += len(magic)
}

// U8 reads one byte.
func (d *Decoder) U8() uint8 {
	if d.err != nil || d.off+1 > len(d.buf) {
		d.fail()
		return 0
	}
	v := d.buf[d.off]
	d.off++
	return v
}

// U32 reads a little-endian uint32.
func (d *Decoder) U32() uint32 {
	if d.err != nil || d.off+4 > len(d.buf) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(d.buf[d.off:])
	d.off += 4
	return v
}

// U64 reads a little-endian uint64.
func (d *Decoder) U64() uint64 {
	if d.err != nil || d.off+8 > len(d.buf) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v
}

// I64 reads an int64.
func (d *Decoder) I64() int64 { return int64(d.U64()) }

// F64 reads a float64.
func (d *Decoder) F64() float64 { return math.Float64frombits(d.U64()) }

// Bool reads a bool, rejecting encodings other than 0 and 1.
func (d *Decoder) Bool() bool {
	switch d.U8() {
	case 0:
		return false
	case 1:
		return true
	default:
		d.fail()
		return false
	}
}

// Str reads a length-prefixed string of at most maxLen bytes. The length is
// checked against both maxLen and the remaining input before allocating.
func (d *Decoder) Str(maxLen int) string {
	n := int(d.U32())
	if d.err != nil || n < 0 || n > maxLen || n > d.Remaining() {
		d.fail()
		return ""
	}
	s := string(d.buf[d.off : d.off+n])
	d.off += n
	return s
}

// Blob reads a length-prefixed byte slice of at most maxLen bytes; the
// returned slice aliases the input buffer.
func (d *Decoder) Blob(maxLen int) []byte {
	n := int(d.U32())
	if d.err != nil || n < 0 || n > maxLen || n > d.Remaining() {
		d.fail()
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

// Count reads a u32 element count and validates it against the remaining
// input, given that each element occupies at least minElemSize encoded
// bytes. This is the guard that keeps a corrupt count from sizing a huge
// allocation.
func (d *Decoder) Count(minElemSize int) int {
	n := int(d.U32())
	if minElemSize < 1 {
		minElemSize = 1
	}
	if d.err != nil || n < 0 || n > d.Remaining()/minElemSize {
		d.fail()
		return 0
	}
	return n
}
