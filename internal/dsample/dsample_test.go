package dsample

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"implicate/internal/exact"
	"implicate/internal/imps"
)

func cond() imps.Conditions {
	return imps.Conditions{MaxMultiplicity: 2, MinSupport: 3, TopC: 1, MinTopConfidence: 0.8}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(imps.Conditions{}, 1920, 39, 1); err == nil {
		t.Error("zero conditions accepted")
	}
	if _, err := New(cond(), 1, 39, 1); err == nil {
		t.Error("size 1 accepted")
	}
	if _, err := New(cond(), 1920, 0, 1); err == nil {
		t.Error("t=0 accepted")
	}
	if _, err := New(cond(), 1920, 39, 1); err != nil {
		t.Fatal(err)
	}
}

// TestDistinctCountAccuracy checks Gibbons' core property: the scaled
// sample estimates the number of distinct values within sampling error,
// insensitive to duplication skew.
func TestDistinctCountAccuracy(t *testing.T) {
	for _, f0 := range []int{500, 5000, 50000} {
		var errSum float64
		const runs = 10
		for run := 0; run < runs; run++ {
			s := Must(cond(), 1920, 39, uint64(run*71+5))
			rng := rand.New(rand.NewSource(int64(run)))
			for i := 0; i < f0; i++ {
				// Skewed duplication: value i appears 1 + i%7 times.
				for k := 0; k <= i%7; k++ {
					s.Add(fmt.Sprintf("v%d", i), fmt.Sprintf("b%d", rng.Intn(2)))
				}
			}
			errSum += math.Abs(s.DistinctCount()-float64(f0)) / float64(f0)
		}
		if mean := errSum / runs; mean > 0.15 {
			t.Errorf("F0=%d: mean relative error %.3f", f0, mean)
		}
	}
}

// TestMemoryBudget checks the sampler never exceeds its entry budget.
func TestMemoryBudget(t *testing.T) {
	s := Must(cond(), 500, 10, 3)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 200000; i++ {
		s.Add(fmt.Sprintf("v%d", rng.Intn(100000)), fmt.Sprintf("b%d", rng.Intn(5)))
		if s.MemEntries() > 500 {
			t.Fatalf("budget exceeded at tuple %d: %d entries", i, s.MemEntries())
		}
	}
	if s.Level() == 0 {
		t.Fatal("level never rose despite pressure")
	}
}

// TestImplicationEstimate compares DS against the exact counter on a mixed
// workload; DS should be in the right ballpark for permissive conditions
// (its documented weakness only bites with selective ones).
func TestImplicationEstimate(t *testing.T) {
	c := cond()
	var errSum float64
	const runs = 8
	for run := 0; run < runs; run++ {
		s := Must(c, 1920, 39, uint64(run*13+1))
		ex := exact.MustCounter(c)
		rng := rand.New(rand.NewSource(int64(run * 3)))
		type pair struct{ a, b string }
		var tuples []pair
		for i := 0; i < 3000; i++ {
			a := fmt.Sprintf("imp%d", i)
			for k := 0; k < 5; k++ {
				tuples = append(tuples, pair{a, fmt.Sprintf("p%d", i)})
			}
		}
		for i := 0; i < 3000; i++ {
			a := fmt.Sprintf("non%d", i)
			for k := 0; k < 5; k++ {
				tuples = append(tuples, pair{a, fmt.Sprintf("q%d", k)})
			}
		}
		rng.Shuffle(len(tuples), func(i, j int) { tuples[i], tuples[j] = tuples[j], tuples[i] })
		for _, tp := range tuples {
			s.Add(tp.a, tp.b)
			ex.Add(tp.a, tp.b)
		}
		if ex.ImplicationCount() != 3000 {
			t.Fatalf("exact = %v, want 3000", ex.ImplicationCount())
		}
		errSum += math.Abs(s.ImplicationCount()-3000) / 3000
	}
	// DS error is dominated by the level-based scaling; allow a generous
	// band (the paper's point is precisely that it is worse than NIPS).
	if mean := errSum / runs; mean > 0.5 {
		t.Errorf("mean relative error %.3f unexpectedly large even for permissive conditions", mean)
	}
}

// TestSelectiveConditionsDegrade demonstrates the paper's §6.2 finding: when
// the minimum support is selective, few sampled values qualify and the DS
// estimate degrades relative to its own permissive-conditions accuracy.
func TestSelectiveConditionsDegrade(t *testing.T) {
	permissive := imps.Conditions{MaxMultiplicity: 2, MinSupport: 2, TopC: 1, MinTopConfidence: 0.8}
	selective := imps.Conditions{MaxMultiplicity: 2, MinSupport: 40, TopC: 1, MinTopConfidence: 0.8}
	var errPerm, errSel float64
	const runs = 10
	for run := 0; run < runs; run++ {
		sp := Must(permissive, 500, 39, uint64(run*7+2))
		ss := Must(selective, 500, 39, uint64(run*7+2))
		rng := rand.New(rand.NewSource(int64(run)))
		// 4000 itemsets; 10% are heavy (supp 50), the rest light (supp 3).
		// Under the selective conditions only the heavy ones count.
		type pair struct{ a, b string }
		var tuples []pair
		var heavy int
		for i := 0; i < 4000; i++ {
			a := fmt.Sprintf("a%d", i)
			reps := 3
			if i%10 == 0 {
				reps = 50
				heavy++
			}
			for k := 0; k < reps; k++ {
				tuples = append(tuples, pair{a, "p" + a})
			}
		}
		rng.Shuffle(len(tuples), func(i, j int) { tuples[i], tuples[j] = tuples[j], tuples[i] })
		for _, tp := range tuples {
			sp.Add(tp.a, tp.b)
			ss.Add(tp.a, tp.b)
		}
		errPerm += math.Abs(sp.ImplicationCount()-4000) / 4000
		errSel += math.Abs(ss.ImplicationCount()-float64(heavy)) / float64(heavy)
	}
	if errSel/runs <= errPerm/runs {
		t.Errorf("selective conditions (%.3f) did not degrade DS relative to permissive (%.3f)",
			errSel/runs, errPerm/runs)
	}
}

func TestAccessors(t *testing.T) {
	s := Must(cond(), 100, 5, 1)
	if s.Tuples() != 0 || s.MemEntries() != 0 || s.Level() != 0 {
		t.Fatal("fresh sketch not empty")
	}
	s.Add("a", "b")
	if s.Tuples() != 1 {
		t.Fatalf("Tuples = %d", s.Tuples())
	}
	if s.SupportedDistinct() != 0 {
		t.Fatal("supported before τ")
	}
	s.Add("a", "b")
	s.Add("a", "b")
	if s.SupportedDistinct() < 1 || s.ImplicationCount() < 1 {
		t.Fatalf("supported=%v implications=%v", s.SupportedDistinct(), s.ImplicationCount())
	}
	if s.NonImplicationCount() != 0 {
		t.Fatal("phantom non-implication")
	}
}

// TestPerValueCapFreezes exercises the t bound.
func TestPerValueCapFreezes(t *testing.T) {
	c := imps.Conditions{MaxMultiplicity: 100, MinSupport: 1, TopC: 1, MinTopConfidence: 0.01}
	s := Must(c, 10000, 3, 1)
	for k := 0; k < 10; k++ {
		s.Add("a", fmt.Sprintf("b%d", k))
	}
	// Only t=3 partners tracked; entries stay bounded.
	if s.MemEntries() > 4 {
		t.Fatalf("MemEntries = %d, want <= 4 (1 value + 3 pairs)", s.MemEntries())
	}
}

func TestDSAvgMultiplicity(t *testing.T) {
	c := imps.Conditions{MaxMultiplicity: 3, MinSupport: 2, TopC: 3, MinTopConfidence: 0.5}
	s := Must(c, 10000, 39, 4)
	if s.AvgMultiplicity() != 0 {
		t.Fatal("empty sampler has non-zero average")
	}
	// 200 itemsets with one partner, 200 with two: average 1.5 among the
	// sampled ones.
	for i := 0; i < 200; i++ {
		a1 := fmt.Sprintf("one%d", i)
		s.Add(a1, "x")
		s.Add(a1, "x")
		a2 := fmt.Sprintf("two%d", i)
		s.Add(a2, "x")
		s.Add(a2, "y")
		s.Add(a2, "y")
	}
	got := s.AvgMultiplicity()
	if got < 1.3 || got > 1.7 {
		t.Fatalf("AvgMultiplicity = %v, want ≈1.5", got)
	}
}
