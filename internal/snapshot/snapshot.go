// Package snapshot is the estimator registry of the durability subsystem:
// it maps every checkpointable estimator type to a stable kind name and
// frames the estimator's own binary state behind that name, so higher
// layers (the query-engine snapshot, the checkpoint file) can serialize
// estimators without knowing their concrete types — and can report, on
// restore, which algorithm a blob contains.
//
// Kind names are part of the checkpoint format and deliberately match the
// backend names the impstat CLI exposes: "nips", "sharded", "exact",
// "exact-striped", "ilc", "ds". Wrapper types (window.Sliding, the concurrency wrappers) are not
// leaf estimators and are handled by their own layers; Marshal rejects them
// with a descriptive error rather than producing a partial snapshot.
package snapshot

import (
	"fmt"

	"implicate/internal/core"
	"implicate/internal/dsample"
	"implicate/internal/exact"
	"implicate/internal/imps"
	"implicate/internal/lossy"
	"implicate/internal/wire"
)

// MaxEstimatorBlob bounds a single framed estimator payload (1 GiB); a
// corrupt length field can never demand more.
const MaxEstimatorBlob = 1 << 30

// Kind returns the registry name of est's concrete type, or an error when
// the estimator cannot be checkpointed.
func Kind(est imps.Estimator) (string, error) {
	switch est.(type) {
	case *core.Sketch:
		return "nips", nil
	case *core.ShardedSketch:
		return "sharded", nil
	case *exact.Counter:
		return "exact", nil
	case *exact.Striped:
		return "exact-striped", nil
	case *lossy.ILC:
		return "ilc", nil
	case *dsample.Sketch:
		return "ds", nil
	}
	return "", fmt.Errorf("snapshot: estimator %T cannot be checkpointed", est)
}

// Marshal frames est as its kind name followed by its binary state.
func Marshal(est imps.Estimator) ([]byte, error) {
	kind, err := Kind(est)
	if err != nil {
		return nil, err
	}
	m, ok := est.(interface{ MarshalBinary() ([]byte, error) })
	if !ok {
		return nil, fmt.Errorf("snapshot: estimator %T has no binary form", est)
	}
	payload, err := m.MarshalBinary()
	if err != nil {
		return nil, err
	}
	e := wire.NewEncoder(len(payload) + 16)
	e.Str(kind)
	e.Blob(payload)
	return e.Bytes(), nil
}

// Unmarshal decodes a framed estimator, returning the estimator and its
// kind name. Unknown kinds and malformed payloads are errors; Unmarshal
// never fabricates a partially restored estimator.
func Unmarshal(data []byte) (imps.Estimator, string, error) {
	d := wire.NewDecoder(data)
	kind := d.Str(64)
	payload := d.Blob(MaxEstimatorBlob)
	if err := d.Done(); err != nil {
		return nil, "", err
	}
	var (
		est imps.Estimator
		err error
	)
	switch kind {
	case "nips":
		est, err = core.UnmarshalSketch(payload)
	case "sharded":
		est, err = core.UnmarshalShardedSketch(payload)
	case "exact":
		est, err = exact.UnmarshalCounter(payload)
	case "exact-striped":
		est, err = exact.UnmarshalStriped(payload, 0)
	case "ilc":
		est, err = lossy.UnmarshalILC(payload)
	case "ds":
		est, err = dsample.UnmarshalSketch(payload)
	default:
		return nil, "", fmt.Errorf("%w: unknown estimator kind %q", wire.ErrCorrupt, kind)
	}
	if err != nil {
		return nil, "", fmt.Errorf("decode %s estimator: %w", kind, err)
	}
	return est, kind, nil
}

// Conditions returns the implication conditions a restored estimator was
// built with. Every registered kind exposes them; the engine uses this to
// cross-check a decoded estimator against the query it is wired to.
func Conditions(est imps.Estimator) (imps.Conditions, bool) {
	c, ok := est.(interface{ Conditions() imps.Conditions })
	if !ok {
		return imps.Conditions{}, false
	}
	return c.Conditions(), true
}
