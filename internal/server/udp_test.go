package server

import (
	"bytes"
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"implicate/internal/client"
	"implicate/internal/proto"
	"implicate/internal/stream"
)

// pollAck polls the lane's watermark until cond is satisfied or the
// deadline passes.
func pollAck(t *testing.T, cl *client.Client, source uint64, what string, cond func(proto.UDPAck) bool) proto.UDPAck {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		ack, err := cl.UDPAck(source)
		if err != nil {
			t.Fatal(err)
		}
		if cond(ack) {
			return ack
		}
		if time.Now().After(deadline) {
			t.Fatalf("lane never reached %s; last ack %+v", what, ack)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestUDPLaneReorderDuplicatesDrops drives the lane with hand-crafted
// datagrams — out of order, duplicated, beyond the reorder window, and
// corrupted — and asserts the watermark converges, every batch applies
// exactly once, and the final engine state is bit-identical to a serial
// run of the same batches in sequence order.
func TestUDPLaneReorderDuplicatesDrops(t *testing.T) {
	schema := testSchema(t)
	batches := determinismBatches(6, 50)
	want, serial := serialState(t, schema, 13, batches)

	srv := startServer(t, Config{
		Schema:    schema,
		Engine:    determinismEngine(t, schema, 13),
		Workers:   4,
		UDPAddr:   "127.0.0.1:0",
		UDPWindow: 8,
	})
	cl := dialClient(t, srv, schema, client.Options{Conns: 1})

	payloads := make([][]byte, len(batches))
	for i, ts := range batches {
		enc, err := client.EncodeBatch(schema, ts)
		if err != nil {
			t.Fatal(err)
		}
		payloads[i] = enc
	}
	const source = 3
	raw, err := net.Dial("udp", srv.UDPAddr())
	if err != nil {
		t.Fatal(err)
	}
	defer raw.Close()
	send := func(seq uint64, payload []byte) {
		t.Helper()
		dg, err := proto.AppendDatagram(nil, proto.Datagram{Source: source, Seq: seq, Payload: payload})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := raw.Write(dg); err != nil {
			t.Fatal(err)
		}
	}

	// Seq 2 ahead of 1: buffered, not applied. A second copy is a dup.
	send(2, payloads[1])
	send(2, payloads[1])
	pollAck(t, cl, source, "dup of a buffered datagram", func(a proto.UDPAck) bool { return a.Dups == 1 })
	// Seq 1 fills the gap: 1 and 2 apply, in order.
	send(1, payloads[0])
	pollAck(t, cl, source, "watermark 2", func(a proto.UDPAck) bool { return a.Cum == 2 })
	// Another reorder pair.
	send(4, payloads[3])
	send(3, payloads[2])
	pollAck(t, cl, source, "watermark 4", func(a proto.UDPAck) bool { return a.Cum == 4 })
	// A stale retransmission of an applied seq is a dup, never re-applied.
	send(1, payloads[0])
	pollAck(t, cl, source, "dup of an applied datagram", func(a proto.UDPAck) bool { return a.Dups == 2 })
	// Far beyond cum+window: dropped, not buffered.
	send(20, payloads[5])
	pollAck(t, cl, source, "window-overflow drop", func(a proto.UDPAck) bool { return a.Drops == 1 })
	// A corrupted datagram (bad CRC) is dropped before source attribution.
	dg, err := proto.AppendDatagram(nil, proto.Datagram{Source: source, Seq: 5, Payload: payloads[4]})
	if err != nil {
		t.Fatal(err)
	}
	dg[len(dg)-1] ^= 0xFF
	if _, err := raw.Write(dg); err != nil {
		t.Fatal(err)
	}
	// Finish the sequence, last gap first.
	send(6, payloads[5])
	send(5, payloads[4])
	ack := pollAck(t, cl, source, "watermark 6", func(a proto.UDPAck) bool { return a.Cum == 6 })
	if ack.Applied != 6 || ack.Dups != 2 || ack.Drops != 1 {
		t.Fatalf("final ack %+v, want applied 6, dups 2, drops 1", ack)
	}
	// The lane accounting invariant (proto.UDPAck.Applied): applied plus
	// decode drops equals cum. The one drop here was a window overflow,
	// which never advances the watermark, so applied == cum exactly.
	if ack.Applied != ack.Cum {
		t.Fatalf("applied %d != cum %d with no decode drops", ack.Applied, ack.Cum)
	}

	// Exactly-once application: the engine ends at precisely the serial
	// tuple count (waitTuples fails on overshoot) and bit-identical state.
	total := 0
	for _, ts := range batches {
		total += len(ts)
	}
	waitTuples(t, cl, int64(total))
	sn := srv.Telemetry().Snapshot()
	if sn.UDPDatagrams == 0 || sn.UDPDups != 2 || sn.UDPDrops < 2 {
		t.Fatalf("telemetry %d datagrams, %d dups, %d drops; want >0, 2, >=2 (overflow + corrupt)", sn.UDPDatagrams, sn.UDPDups, sn.UDPDrops)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := srv.Engine().MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Error("engine state diverged from the serial run")
	}
	for i, st := range srv.Engine().Statements() {
		if got, want := st.Count(), serial.Statements()[i].Count(); got != want {
			t.Errorf("stmt %d: count %v, want %v", i, got, want)
		}
	}
}

// TestUDPIngesterLossInjection runs the real client ingester against the
// real lane with injected transmission loss: first attempts of every third
// datagram vanish, and every ninth loses its first retransmission too. The
// retransmit loop must still converge the watermark, and the engine state
// must stay bit-identical to serial — loss can delay batches, never reorder
// or double-apply them.
func TestUDPIngesterLossInjection(t *testing.T) {
	schema := testSchema(t)
	batches := determinismBatches(30, 100)
	want, _ := serialState(t, schema, 17, batches)

	srv := startServer(t, Config{
		Schema:  schema,
		Engine:  determinismEngine(t, schema, 17),
		Workers: 4,
		UDPAddr: "127.0.0.1:0",
	})
	cl := dialClient(t, srv, schema, client.Options{Conns: 1})
	ui, err := cl.DialUDP(srv.UDPAddr(), client.UDPOptions{
		Source:    9,
		Window:    8,
		PollEvery: 4,
		PollGap:   200 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ui.Close()
	var dropped int
	ui.SetDropHook(func(seq uint64, attempt int) bool {
		if (attempt == 1 && seq%3 == 0) || (attempt == 2 && seq%9 == 0) {
			dropped++
			return true
		}
		return false
	})

	total := 0
	for _, ts := range batches {
		enc, err := client.EncodeBatch(schema, ts)
		if err != nil {
			t.Fatal(err)
		}
		if err := ui.Send(enc); err != nil {
			t.Fatal(err)
		}
		total += len(ts)
	}
	if err := ui.Flush(); err != nil {
		t.Fatal(err)
	}
	if ui.Cum() != uint64(len(batches)) {
		t.Fatalf("watermark %d after flush, want %d", ui.Cum(), len(batches))
	}
	if dropped < len(batches)/3 {
		t.Fatalf("drop hook fired %d times, injection did not engage", dropped)
	}
	// The lane accounting invariant: applied plus decode drops equals the
	// watermark. Transmission loss never decode-drops, so applied == cum.
	if ui.Applied() != ui.Cum() || ui.Drops() != 0 {
		t.Fatalf("applied %d, drops %d after flush, want applied == cum %d and 0 drops",
			ui.Applied(), ui.Drops(), ui.Cum())
	}

	waitTuples(t, cl, int64(total))
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := srv.Engine().MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Error("engine state diverged from the serial run under loss injection")
	}
}

// TestUDPFlushReportsUndecodableBatchLoss is the regression test for the
// false "exactly-once" Flush: a datagram that arrives intact (CRC-valid)
// but whose batch the server cannot decode — here, encoded against a wider
// schema than the server's — advances the watermark while counting as a
// drop, because retransmitting bytes that were delivered correctly cannot
// help. The pre-fix Flush compared only the watermark and returned nil,
// silently losing the batch; it must now report the loss as
// ErrUDPDataDropped with the full accounting intact.
func TestUDPFlushReportsUndecodableBatchLoss(t *testing.T) {
	schema := testSchema(t)
	batches := determinismBatches(4, 25)

	srv := startServer(t, Config{
		Schema:  schema,
		Engine:  determinismEngine(t, schema, 23),
		Workers: 2,
		UDPAddr: "127.0.0.1:0",
	})
	cl := dialClient(t, srv, schema, client.Options{Conns: 1})
	ui, err := cl.DialUDP(srv.UDPAddr(), client.UDPOptions{
		Source:  5,
		PollGap: 200 * time.Microsecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ui.Close()

	// A batch the server can never apply: valid datagram framing and a valid
	// stream header, but three attributes against a two-attribute server.
	wide, err := stream.NewSchema("A", "B", "C")
	if err != nil {
		t.Fatal(err)
	}
	bad, err := client.EncodeBatch(wide, []stream.Tuple{{"x", "y", "z"}})
	if err != nil {
		t.Fatal(err)
	}

	total := 0
	for i, ts := range batches {
		if i == 2 {
			if err := ui.Send(bad); err != nil {
				t.Fatal(err)
			}
		}
		enc, err := client.EncodeBatch(schema, ts)
		if err != nil {
			t.Fatal(err)
		}
		if err := ui.Send(enc); err != nil {
			t.Fatal(err)
		}
		total += len(ts)
	}

	err = ui.Flush()
	if !errors.Is(err, client.ErrUDPDataDropped) {
		t.Fatalf("flush after an undecodable batch returned %v, want ErrUDPDataDropped", err)
	}
	// Accounting: 5 datagrams consumed (watermark passed them all), 4
	// applied, 1 decode-dropped — and the invariant ties them together.
	if ui.Cum() != 5 || ui.Applied() != 4 || ui.Drops() != 1 {
		t.Fatalf("cum %d, applied %d, drops %d; want 5, 4, 1", ui.Cum(), ui.Applied(), ui.Drops())
	}
	if ui.Applied()+ui.Drops() != ui.Cum() {
		t.Fatalf("invariant applied(%d) + decode drops(%d) != cum(%d)", ui.Applied(), ui.Drops(), ui.Cum())
	}
	// The loss is permanent: a second flush re-reports it rather than
	// pretending the lane healed.
	if err := ui.Flush(); !errors.Is(err, client.ErrUDPDataDropped) {
		t.Fatalf("second flush returned %v, want ErrUDPDataDropped again", err)
	}
	// The decodable batches still applied exactly once each.
	waitTuples(t, cl, int64(total))
}

// TestListenRejectsNegativeUDPWindow guards the config boundary: the lane
// stores its window as uint64, so a negative int would wrap to ~2^64 and
// silently disable the reorder bound. Listen must refuse it. (A zero window
// means "default", which withDefaults resolves to 256.)
func TestListenRejectsNegativeUDPWindow(t *testing.T) {
	schema := testSchema(t)
	for _, w := range []int{-1, -1 << 40} {
		_, err := Listen(Config{
			Addr:      "127.0.0.1:0",
			UDPAddr:   "127.0.0.1:0",
			UDPWindow: w,
			Schema:    schema,
			Engine:    testEngine(t, schema, exactBackend()),
		})
		if err == nil || !strings.Contains(err.Error(), "udp window") {
			t.Fatalf("window %d accepted: %v", w, err)
		}
	}
}

// TestUDPAckUnknownSource documents the poll contract: an unknown source
// answers with a zero watermark rather than an error, so a client can poll
// before its first datagram lands.
func TestUDPAckUnknownSource(t *testing.T) {
	schema := testSchema(t)
	srv := startServer(t, Config{
		Schema:  schema,
		Engine:  testEngine(t, schema, exactBackend()),
		UDPAddr: "127.0.0.1:0",
	})
	cl := dialClient(t, srv, schema, client.Options{Conns: 1})
	ack, err := cl.UDPAck(424242)
	if err != nil {
		t.Fatal(err)
	}
	if ack != (proto.UDPAck{}) {
		t.Fatalf("unknown source answered %+v, want zero", ack)
	}
}
