// The UDP ingest lane (DESIGN.md §12): an optional datagram path for
// fire-and-forget telemetry-style producers, next to the TCP stream the
// rest of the protocol runs on.
//
// Each datagram carries one ingest batch tagged with a producer-chosen
// 64-bit source id and a per-source sequence number starting at 1. The
// server applies a source's datagrams strictly in sequence order: an
// out-of-order arrival is buffered in a bounded reorder window until the
// gap fills, a duplicate (already applied or already buffered) is dropped,
// and an arrival beyond the window is dropped as too-far-ahead. Apply is
// therefore at-most-once per sequence number, and per-source tuple order
// equals send order — the same determinism contract as the TCP lane.
//
// Delivery is not reliable: UDP may drop, duplicate or reorder, and the
// server never requests a retransmission. Acknowledgement is a cumulative
// watermark — "every sequence number up to and including Cum has been
// applied" — that producers poll over their TCP control connection with
// the TUDPAck RPC. A producer that cares about its data retransmits
// unacknowledged datagrams until the watermark passes them (the client
// package's UDPIngester does); a producer that does not simply stops
// polling. A lost datagram that is never retransmitted stalls its source's
// watermark forever: that is the documented cost of fire-and-forget, not a
// server malfunction.
//
// Datagram layout (little-endian, no length prefix — the datagram boundary
// is the frame boundary):
//
//	u8   protocol version (Version)
//	u8   datagram kind    (UDPData)
//	u64  source id
//	u64  sequence number  (first datagram is 1)
//	u32  CRC-32C          (over the payload bytes)
//	...  payload           (a stream binary batch, header included)
//
// A datagram failing any validation is dropped in its entirety — unlike a
// TCP stream there is nothing to resynchronize, the next datagram stands
// alone.
package proto

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

// UDPData is the single datagram kind: one sequence-numbered ingest batch.
const UDPData = 0x01

// udpHeaderLen is the datagram header size: version, kind, source id,
// sequence number, CRC.
const udpHeaderLen = 1 + 1 + 8 + 8 + 4

// MaxDatagram bounds an encoded datagram. 64 KiB is the IPv4 UDP ceiling;
// producers sending off-host should stay under the path MTU themselves —
// the protocol does not fragment.
const MaxDatagram = 1 << 16

// MaxUDPPayload is the largest batch payload one datagram can carry.
const MaxUDPPayload = MaxDatagram - udpHeaderLen

// Datagram is one decoded UDP ingest datagram. Payload aliases the receive
// buffer it was decoded from.
type Datagram struct {
	Source  uint64
	Seq     uint64
	Payload []byte
}

// AppendDatagram appends the encoded datagram to dst and returns the
// extended slice.
func AppendDatagram(dst []byte, d Datagram) ([]byte, error) {
	if len(d.Payload) > MaxUDPPayload {
		return dst, fmt.Errorf("proto: datagram payload of %d bytes exceeds the %d-byte limit", len(d.Payload), MaxUDPPayload)
	}
	if d.Seq == 0 {
		return dst, fmt.Errorf("proto: datagram sequence numbers start at 1")
	}
	dst = append(dst, Version, UDPData)
	dst = binary.LittleEndian.AppendUint64(dst, d.Source)
	dst = binary.LittleEndian.AppendUint64(dst, d.Seq)
	dst = binary.LittleEndian.AppendUint32(dst, crc32.Checksum(d.Payload, castagnoli))
	return append(dst, d.Payload...), nil
}

// DecodeDatagram parses and validates one received datagram. The returned
// payload aliases pkt. Malformed datagrams are dropped by the caller; the
// error says why for the drop counter's sake.
func DecodeDatagram(pkt []byte) (Datagram, error) {
	if len(pkt) < udpHeaderLen {
		return Datagram{}, fmt.Errorf("%w: %d-byte datagram is shorter than the header", ErrMalformed, len(pkt))
	}
	if pkt[0] != Version {
		return Datagram{}, fmt.Errorf("%w: protocol version %d (want %d)", ErrMalformed, pkt[0], Version)
	}
	if pkt[1] != UDPData {
		return Datagram{}, fmt.Errorf("%w: unknown datagram kind %d", ErrMalformed, pkt[1])
	}
	d := Datagram{
		Source:  binary.LittleEndian.Uint64(pkt[2:]),
		Seq:     binary.LittleEndian.Uint64(pkt[10:]),
		Payload: pkt[udpHeaderLen:],
	}
	if d.Seq == 0 {
		return Datagram{}, fmt.Errorf("%w: datagram sequence number 0", ErrMalformed)
	}
	sum := binary.LittleEndian.Uint32(pkt[18:])
	if got := crc32.Checksum(d.Payload, castagnoli); got != sum {
		return Datagram{}, fmt.Errorf("%w: datagram checksum mismatch (stored %08x, computed %08x)", ErrMalformed, sum, got)
	}
	return d, nil
}

// UDPAckReq polls the cumulative apply state of one UDP source.
type UDPAckReq struct {
	Source uint64
}

// Encode serializes the request payload.
func (q UDPAckReq) Encode() []byte {
	return binary.LittleEndian.AppendUint64(make([]byte, 0, 8), q.Source)
}

// DecodeUDPAckReq parses a TUDPAck payload.
func DecodeUDPAckReq(data []byte) (UDPAckReq, error) {
	if len(data) != 8 {
		return UDPAckReq{}, fmt.Errorf("proto: udp ack request: %w: %d bytes (want 8)", ErrMalformed, len(data))
	}
	return UDPAckReq{Source: binary.LittleEndian.Uint64(data)}, nil
}

// UDPAck is the cumulative acknowledgement for one UDP source. A source
// the server has never heard from answers with the zero value — from the
// producer's point of view "nothing applied yet" and "unknown" are the
// same thing.
type UDPAck struct {
	// Cum is the cumulative watermark: every sequence number <= Cum has
	// been consumed exactly once — applied to the engine, or counted in
	// Drops when its batch arrived intact (CRC-verified) but failed to
	// decode, where a retransmission could not help.
	Cum uint64
	// Applied counts batches applied to the engine for this source. The
	// invariant is applied + drops_after_decode == cum, NOT applied == cum:
	// a CRC-valid batch the server cannot decode advances the watermark
	// while incrementing Drops instead of Applied. A producer that needs
	// exactly-once application must therefore compare Applied against Cum
	// (the client's UDPIngester.Flush does) — a watermark that passed a
	// sequence number does not alone prove its data reached the engine.
	Applied uint64
	// Dups counts datagrams dropped as duplicates (already applied or
	// already buffered).
	Dups uint64
	// Drops counts datagrams dropped for any other reason: beyond the
	// reorder window or refused by a shutting-down server (neither advances
	// Cum — a retransmission recovers them), or decodable-batch failures
	// after an intact delivery (these DO advance Cum and are unrecoverable
	// data loss; see Applied). Datagrams malformed below the protocol layer
	// are dropped before source attribution and appear only in the
	// server-wide telemetry.
	Drops uint64
}

// Encode serializes the ack payload.
func (a UDPAck) Encode() []byte {
	dst := make([]byte, 0, 32)
	dst = binary.LittleEndian.AppendUint64(dst, a.Cum)
	dst = binary.LittleEndian.AppendUint64(dst, a.Applied)
	dst = binary.LittleEndian.AppendUint64(dst, a.Dups)
	return binary.LittleEndian.AppendUint64(dst, a.Drops)
}

// DecodeUDPAck parses a TResult payload of a UDP ack poll.
func DecodeUDPAck(data []byte) (UDPAck, error) {
	if len(data) != 32 {
		return UDPAck{}, fmt.Errorf("proto: udp ack: %w: %d bytes (want 32)", ErrMalformed, len(data))
	}
	return UDPAck{
		Cum:     binary.LittleEndian.Uint64(data),
		Applied: binary.LittleEndian.Uint64(data[8:]),
		Dups:    binary.LittleEndian.Uint64(data[16:]),
		Drops:   binary.LittleEndian.Uint64(data[24:]),
	}, nil
}
