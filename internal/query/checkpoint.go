package query

import (
	"fmt"

	"implicate/internal/imps"
	"implicate/internal/snapshot"
	"implicate/internal/stream"
	"implicate/internal/window"
	"implicate/internal/wire"
)

// Engine snapshots: the serialized form of a whole engine — every
// statement's query, the estimator-sharing topology, each owned estimator's
// state (leaf or sliding-window vector) and the tuple count — from which
// UnmarshalEngine rebuilds an engine that continues the stream exactly
// where the original left off.
//
// Queries are stored in the SQL-like dialect plus an explicit mode byte
// (CountSupported renders identically to CountImplications, so the text
// alone is ambiguous). Shared statements store the index of the statement
// whose estimator they alias instead of duplicating its state.

const engineMagic = "IMPE\x01"

const (
	estLeaf    = 0
	estSliding = 1
)

// BackendResolver supplies the estimator factory used to rebuild a restored
// statement's backend. It is consulted only for windowed statements — a
// sliding vector must construct fresh estimators for future origins, and
// state alone cannot say how — with the statement's normalized query and the
// snapshot kind of its checkpointed slots ("nips", "sharded", "exact",
// "exact-striped", "ilc", "ds"). The resolver's backend must produce estimators whose
// configuration matches the checkpointed ones; UnmarshalEngine verifies
// this by fingerprint and rejects mismatches.
type BackendResolver func(q Query, kind string) (Backend, error)

// leafEstimator returns an estimator representative of est's capabilities
// and configuration: a slot estimator for a sliding vector, est itself
// otherwise.
func leafEstimator(est imps.Estimator) imps.Estimator {
	if s, ok := est.(*window.Sliding); ok {
		if slots := s.Slots(); len(slots) > 0 {
			return slots[0].Est
		}
	}
	return est
}

// EstimatorKind returns the snapshot registry name of the statement's leaf
// estimator ("nips", "sharded", "exact", "exact-striped", "ilc", "ds"), or
// "" when the estimator is not a registered kind.
func (st *Statement) EstimatorKind() string {
	kind, err := snapshot.Kind(leafEstimator(st.est))
	if err != nil {
		return ""
	}
	return kind
}

// Shared reports whether the statement reads another statement's estimator.
func (st *Statement) Shared() bool { return st.shared }

// MarshalBinary encodes the complete engine state. Every owned estimator
// must be a checkpointable kind — a statement bound to an estimator the
// snapshot registry does not know is an error, never a silent omission.
func (e *Engine) MarshalBinary() ([]byte, error) {
	enc := wire.NewEncoder(4096)
	enc.Raw([]byte(engineMagic))

	names := e.schema.Names()
	enc.U32(uint32(len(names)))
	for _, n := range names {
		enc.Str(n)
	}
	enc.I64(e.tuples.Load())

	enc.U32(uint32(len(e.stmts)))
	for i, st := range e.stmts {
		qs := st.query.String()
		if _, err := Parse(qs); err != nil {
			return nil, fmt.Errorf("query: statement %d does not round-trip through the dialect (%q): %v", i, qs, err)
		}
		enc.Str(qs)
		enc.U8(uint8(st.query.Mode))

		if st.shared {
			owner := -1
			for j := 0; j < i; j++ {
				if !e.stmts[j].shared && e.stmts[j].est == st.est {
					owner = j
					break
				}
			}
			if owner < 0 {
				return nil, fmt.Errorf("query: statement %d shares an estimator no earlier statement owns", i)
			}
			enc.I64(int64(owner))
			continue
		}
		enc.I64(-1)

		if sliding, ok := st.est.(*window.Sliding); ok {
			enc.U8(estSliding)
			enc.I64(sliding.Tuples())
			slots := sliding.Slots()
			enc.U32(uint32(len(slots)))
			for _, sl := range slots {
				enc.I64(sl.Origin)
				blob, err := snapshot.Marshal(sl.Est)
				if err != nil {
					return nil, fmt.Errorf("query: statement %d (%s): %w", i, qs, err)
				}
				enc.Blob(blob)
			}
			continue
		}
		enc.U8(estLeaf)
		blob, err := snapshot.Marshal(st.est)
		if err != nil {
			return nil, fmt.Errorf("query: statement %d (%s): %w", i, qs, err)
		}
		enc.Blob(blob)
	}
	return enc.Bytes(), nil
}

// UnmarshalEngine rebuilds an engine from a snapshot against the schema it
// was captured under. resolve is consulted for windowed statements only and
// may be nil when the snapshot contains none.
//
// Every decoded estimator is cross-checked against the query it is wired
// to: its implication conditions must equal the query's, an AvgMultiplicity
// statement's leaf must be able to average, and a windowed statement's
// resolved backend must produce estimators configured like the checkpointed
// slots. A snapshot failing any check is rejected whole — a restored engine
// never answers from mismatched state.
//
// The sharing topology recorded in the snapshot is restored exactly, but
// the restored engine does not re-key it: queries registered after the
// restore get fresh estimators rather than aliasing restored ones.
func UnmarshalEngine(data []byte, schema *stream.Schema, resolve BackendResolver) (*Engine, error) {
	d := wire.NewDecoder(data)
	d.Magic(engineMagic)

	names := schema.Names()
	nattrs := d.Count(4)
	if d.Err() == nil && nattrs != len(names) {
		return nil, fmt.Errorf("%w: snapshot has %d schema attributes, stream has %d", wire.ErrCorrupt, nattrs, len(names))
	}
	for i := 0; i < nattrs; i++ {
		name := d.Str(1 << 16)
		if d.Err() == nil && name != names[i] {
			return nil, fmt.Errorf("%w: snapshot schema attribute %d is %q, stream has %q", wire.ErrCorrupt, i, name, names[i])
		}
	}
	tuples := d.I64()
	if d.Err() != nil {
		return nil, d.Err()
	}
	if tuples < 0 {
		return nil, fmt.Errorf("%w: negative tuple count", wire.ErrCorrupt)
	}

	e := NewEngine(schema)
	e.tuples.Store(tuples)
	nstmts := d.Count(14)
	for i := 0; i < nstmts; i++ {
		qs := d.Str(1 << 20)
		mode := Mode(d.U8())
		owner := d.I64()
		if d.Err() != nil {
			return nil, d.Err()
		}
		q, err := Parse(qs)
		if err != nil {
			return nil, fmt.Errorf("%w: statement %d query %q: %v", wire.ErrCorrupt, i, qs, err)
		}
		if mode > AvgMultiplicity {
			return nil, fmt.Errorf("%w: statement %d has unknown mode %d", wire.ErrCorrupt, i, mode)
		}
		q.Mode = mode
		if err := q.Normalize(schema); err != nil {
			return nil, fmt.Errorf("%w: statement %d: %v", wire.ErrCorrupt, i, err)
		}
		st, err := newShell(*q, schema)
		if err != nil {
			return nil, fmt.Errorf("%w: statement %d: %v", wire.ErrCorrupt, i, err)
		}

		if owner >= 0 {
			if owner >= int64(i) {
				return nil, fmt.Errorf("%w: statement %d aliases statement %d, which does not precede it", wire.ErrCorrupt, i, owner)
			}
			own := e.stmts[owner]
			if own.shared {
				return nil, fmt.Errorf("%w: statement %d aliases statement %d, which owns no estimator", wire.ErrCorrupt, i, owner)
			}
			if err := validateMode(*q, leafEstimator(own.est)); err != nil {
				return nil, fmt.Errorf("%w: statement %d: %v", wire.ErrCorrupt, i, err)
			}
			st.bindEstimator(own.est)
			st.estMu = own.estMu
			st.shared = true
			e.stmts = append(e.stmts, st)
			continue
		}

		switch form := d.U8(); form {
		case estLeaf:
			if q.Window > 0 {
				return nil, fmt.Errorf("%w: statement %d is windowed but checkpointed as a leaf", wire.ErrCorrupt, i)
			}
			est, _, err := unmarshalStatementEstimator(d, *q, i)
			if err != nil {
				return nil, err
			}
			st.bindEstimator(est)
		case estSliding:
			if q.Window <= 0 {
				return nil, fmt.Errorf("%w: statement %d is unwindowed but checkpointed as sliding", wire.ErrCorrupt, i)
			}
			est, err := unmarshalSliding(d, *q, i, resolve)
			if err != nil {
				return nil, err
			}
			st.bindEstimator(est)
		default:
			if err := d.Err(); err != nil {
				return nil, err
			}
			return nil, fmt.Errorf("%w: statement %d has unknown estimator form %d", wire.ErrCorrupt, i, form)
		}
		e.stmts = append(e.stmts, st)
	}
	if err := d.Done(); err != nil {
		return nil, err
	}
	return e, nil
}

// unmarshalStatementEstimator decodes one framed leaf estimator and checks
// it against the statement's query.
func unmarshalStatementEstimator(d *wire.Decoder, q Query, i int) (imps.Estimator, string, error) {
	blob := d.Blob(snapshot.MaxEstimatorBlob)
	if err := d.Err(); err != nil {
		return nil, "", err
	}
	est, kind, err := snapshot.Unmarshal(blob)
	if err != nil {
		return nil, "", fmt.Errorf("statement %d: %w", i, err)
	}
	if cond, ok := snapshot.Conditions(est); ok && cond != q.Cond {
		return nil, "", fmt.Errorf("%w: statement %d estimator conditions (%s) do not match its query (%s)", wire.ErrCorrupt, i, cond, q.Cond)
	}
	if err := validateMode(q, est); err != nil {
		return nil, "", fmt.Errorf("%w: statement %d: %v", wire.ErrCorrupt, i, err)
	}
	return est, kind, nil
}

// unmarshalSliding decodes a sliding-window vector: the tuple position,
// then every live slot. The resolver supplies the factory for future slots;
// its estimators must fingerprint identically to the checkpointed ones.
func unmarshalSliding(d *wire.Decoder, q Query, i int, resolve BackendResolver) (imps.Estimator, error) {
	n := d.I64()
	nslots := d.Count(12)
	if err := d.Err(); err != nil {
		return nil, err
	}
	var (
		slots []window.SlotState
		kind  string
	)
	for s := 0; s < nslots; s++ {
		origin := d.I64()
		est, k, err := unmarshalStatementEstimator(d, q, i)
		if err != nil {
			return nil, err
		}
		if kind == "" {
			kind = k
		} else if k != kind {
			return nil, fmt.Errorf("%w: statement %d mixes %s and %s slot estimators", wire.ErrCorrupt, i, kind, k)
		}
		slots = append(slots, window.SlotState{Origin: origin, Est: est})
	}
	if kind == "" {
		return nil, fmt.Errorf("%w: statement %d sliding window has no slots", wire.ErrCorrupt, i)
	}

	if resolve == nil {
		return nil, fmt.Errorf("query: statement %d is windowed; restoring it requires a backend resolver", i)
	}
	backend, err := resolve(q, kind)
	if err != nil {
		return nil, fmt.Errorf("query: statement %d: %w", i, err)
	}
	if backend == nil {
		return nil, fmt.Errorf("query: statement %d: resolver returned no backend for kind %q", i, kind)
	}
	probe, err := backend(q.Cond)
	if err != nil {
		return nil, fmt.Errorf("query: statement %d: resolved backend rejected the query conditions: %w", i, err)
	}
	if err := compareFingerprints(probe, slots[0].Est); err != nil {
		return nil, fmt.Errorf("query: statement %d: %w", i, err)
	}

	sliding, err := window.NewSliding(q.Window, q.Every, func() imps.Estimator {
		e, err := backend(q.Cond)
		if err != nil {
			panic(fmt.Sprintf("query: estimator backend failed after validation: %v", err))
		}
		return e
	})
	if err != nil {
		return nil, fmt.Errorf("%w: statement %d: %v", wire.ErrCorrupt, i, err)
	}
	if err := sliding.Restore(n, slots); err != nil {
		return nil, fmt.Errorf("%w: statement %d: %v", wire.ErrCorrupt, i, err)
	}
	return sliding, nil
}

// compareFingerprints rejects a resolved backend whose estimators are not
// configured like the checkpointed ones: mixing configurations across the
// slots of one window would corrupt its counts as the window slides.
func compareFingerprints(fresh, restored imps.Estimator) error {
	ff, ok1 := fresh.(imps.ConfigFingerprinter)
	rf, ok2 := restored.(imps.ConfigFingerprinter)
	if !ok1 || !ok2 {
		return fmt.Errorf("estimator %T does not declare a configuration fingerprint", fresh)
	}
	if ff.ConfigFingerprint() != rf.ConfigFingerprint() {
		return fmt.Errorf("resolved backend configuration %s does not match checkpointed %s",
			ff.ConfigFingerprint(), rf.ConfigFingerprint())
	}
	return nil
}
