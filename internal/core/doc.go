// Package core implements the paper's primary contribution: the NIPS
// (Non-Implication Probabilistic Sampling) algorithm and its companion CI
// (Counting Implications) estimator (Sismanis & Roussopoulos, ICDE 2005,
// §4).
//
// NIPS extends Flajolet–Martin probabilistic counting to implication
// statistics. A cell of the counting bitmap may be assigned the value one as
// soon as one itemset hashed into it is confirmed to NOT imply B — a
// monotone event, because an itemset that once violated the implication
// conditions is excluded forever (§3.1.1). Itemsets whose fate is still
// open are tracked, with their per-b support counters, inside a small
// floating fringe zone of the bitmap (§4.3.2). Bounding the fringe to F
// cells bounds memory at O(K·2^F) counter entries per bitmap while only
// introducing error for non-implication counts smaller than 2^−F·F0(A)
// (§4.3.3).
//
// CI derives the implication count as the difference of two probabilistic
// counts read off the same bitmaps: S = F0^sup(A) − ~S, where F0^sup counts
// distinct itemsets meeting the minimum-support condition and ~S counts
// confirmed non-implications (§4.4). Accuracy is boosted by stochastic
// averaging over m bitmaps (§4.7); this implementation adds the standard
// Flajolet–Martin bias correction and a small-cardinality correction on top
// of the paper's raw 2^R arithmetic (both are exposed).
package core
