package implicate_test

import (
	"fmt"
	"log"

	"implicate"
)

// The one-to-one implication of the paper's introduction: how many
// destinations are contacted by just a single source?
func ExampleNewSketch() {
	cond := implicate.Conditions{
		MaxMultiplicity:  1,
		MinSupport:       1,
		TopC:             1,
		MinTopConfidence: 1.0,
	}
	sk, err := implicate.NewSketch(cond, implicate.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	// (Destination, Source) projections of the Table 1 stream.
	pairs := [][2]string{
		{"D2", "S1"}, {"D1", "S2"}, {"D3", "S1"}, {"D1", "S2"},
		{"D3", "S1"}, {"D3", "S1"}, {"D3", "S1"}, {"D3", "S3"},
	}
	for _, p := range pairs {
		sk.Add(p[0], p[1])
	}
	fmt.Printf("%.0f\n", sk.ImplicationCount())
	// Output: 2
}

// Declarative use: the same question through the SQL-like dialect with the
// exact backend.
func ExampleEngine() {
	schema, _ := implicate.NewSchema("Source", "Destination", "Service", "Time")
	eng := implicate.NewEngine(schema)
	st, err := eng.RegisterSQL(`
		SELECT COUNT(DISTINCT Destination) FROM traffic
		WHERE Destination IMPLIES Source`, implicate.ExactBackend())
	if err != nil {
		log.Fatal(err)
	}
	for _, t := range []implicate.Tuple{
		{"S1", "D2", "WWW", "Morning"},
		{"S2", "D1", "FTP", "Morning"},
		{"S1", "D3", "WWW", "Morning"},
		{"S2", "D1", "P2P", "Noon"},
		{"S1", "D3", "P2P", "Afternoon"},
		{"S1", "D3", "WWW", "Afternoon"},
		{"S1", "D3", "P2P", "Afternoon"},
		{"S3", "D3", "P2P", "Night"},
	} {
		eng.Process(t)
	}
	fmt.Printf("%.0f\n", st.Count())
	// Output: 2
}

// Noise-tolerant one-to-many implications: services used by at most two
// sources 80% of the time (§3.1.2 of the paper).
func ExampleParseQuery() {
	q, err := implicate.ParseQuery(`
		SELECT COUNT(DISTINCT Service) FROM traffic
		WHERE Service IMPLIES Source
		WITH SUPPORT >= 1, MULTIPLICITY <= 5, CONFIDENCE >= 0.8 TOP 2`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(q.Cond)
	// Output: K=5 τ=1 ψ2=0.80
}

// Distributed aggregation: two nodes sketch disjoint streams and the
// coordinator merges them.
func ExampleSketch_Merge() {
	cond := implicate.Conditions{MaxMultiplicity: 1, MinSupport: 2, TopC: 1, MinTopConfidence: 1}
	opts := implicate.Options{Seed: 7}
	nodeA, _ := implicate.NewSketch(cond, opts)
	nodeB, _ := implicate.NewSketch(cond, opts)
	for i := 0; i < 500; i++ {
		a := fmt.Sprintf("flow-a-%d", i)
		nodeA.Add(a, "dst")
		nodeA.Add(a, "dst")
		b := fmt.Sprintf("flow-b-%d", i)
		nodeB.Add(b, "dst")
		nodeB.Add(b, "dst")
	}
	if err := nodeA.Merge(nodeB); err != nil {
		log.Fatal(err)
	}
	total := nodeA.ImplicationCount()
	fmt.Println(total > 800 && total < 1250)
	// Output: true
}

// Sliding-window monitoring: the implication count over the most recent
// tuples only (§3.2 of the paper).
func ExampleNewSliding() {
	cond := implicate.Conditions{MaxMultiplicity: 1, MinSupport: 2, TopC: 1, MinTopConfidence: 1}
	var seed uint64
	win, _ := implicate.NewSliding(1000, 100, func() implicate.Estimator {
		seed++
		sk, _ := implicate.NewSketch(cond, implicate.Options{Seed: seed})
		return sk
	})
	// 400 flows early, then 2000 quiet tuples: the early flows age out.
	for i := 0; i < 400; i++ {
		f := fmt.Sprintf("flow%d", i)
		win.Add(f, "dst")
		win.Add(f, "dst")
	}
	inWindow := win.ImplicationCount()
	for i := 0; i < 2000; i++ {
		win.Add(fmt.Sprintf("one-off%d", i), "x")
	}
	aged := win.ImplicationCount()
	fmt.Println(inWindow > 300, aged < 100)
	// Output: true true
}

// Confidence amplification per §4.7.1: the median of independent sketches.
func ExampleNewEpsDelta() {
	cond := implicate.Conditions{MaxMultiplicity: 1, MinSupport: 2, TopC: 1, MinTopConfidence: 1}
	est, _ := implicate.NewEpsDelta(cond, implicate.Options{Seed: 1}, implicate.GroupsFor(0.05))
	for i := 0; i < 800; i++ {
		a := fmt.Sprintf("item%d", i)
		est.Add(a, "partner")
		est.Add(a, "partner")
	}
	count := est.ImplicationCount()
	fmt.Println(count > 600 && count < 1000)
	// Output: true
}
