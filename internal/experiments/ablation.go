package experiments

import (
	"fmt"
	"io"
	"math"

	"implicate/internal/core"
	"implicate/internal/gen"
	"implicate/internal/metrics"
)

// AblationConfig fixes the workload the design-choice ablations run on: one
// Dataset One configuration, repeated Runs times per variant.
type AblationConfig struct {
	CardA int
	Frac  float64
	C     int
	Runs  int
	Seed  int64
}

func (c AblationConfig) withDefaults() AblationConfig {
	if c.CardA == 0 {
		c.CardA = 2000
	}
	if c.Frac == 0 {
		c.Frac = 0.5
	}
	if c.C == 0 {
		c.C = 2
	}
	if c.Runs == 0 {
		c.Runs = 5
	}
	return c
}

func (c AblationConfig) dataset(run int) (*gen.DatasetOne, error) {
	return gen.NewDatasetOne(gen.DatasetOneConfig{
		CardA: c.CardA,
		Count: int(float64(c.CardA) * c.Frac),
		C:     c.C,
		Seed:  c.Seed + int64(run)*7919,
	})
}

// FringeRow is one fringe-size variant (§4.3.2/4.3.3 ablation: error and
// memory versus F; F=0 denotes the unbounded fringe).
type FringeRow struct {
	FringeSize int // 0 = unbounded
	Err        float64
	PeakMem    int
	Overflows  int
}

// RunFringeAblation sweeps the fringe size.
func RunFringeAblation(cfg AblationConfig, sizes []int) ([]FringeRow, error) {
	cfg = cfg.withDefaults()
	if len(sizes) == 0 {
		sizes = []int{2, 4, 8, 0}
	}
	var rows []FringeRow
	for _, f := range sizes {
		var werr metrics.Welford
		var peak, overflows int
		for run := 0; run < cfg.Runs; run++ {
			d, err := cfg.dataset(run)
			if err != nil {
				return nil, err
			}
			opts := core.Options{Seed: uint64(cfg.Seed + int64(run)*13 + int64(f))}
			if f == 0 {
				opts.Unbounded = true
			} else {
				opts.FringeSize = f
			}
			sk, err := core.NewSketch(d.Conditions, opts)
			if err != nil {
				return nil, err
			}
			d.Feed(sk)
			werr.Add(metrics.RelErr(float64(d.Count), sk.ImplicationCount()))
			if m := sk.PeakMemEntries(); m > peak {
				peak = m
			}
			overflows += sk.Fringe().Overflows
		}
		rows = append(rows, FringeRow{FringeSize: f, Err: werr.Mean(), PeakMem: peak, Overflows: overflows / cfg.Runs})
	}
	return rows, nil
}

// PrintFringeAblation renders the fringe sweep.
func PrintFringeAblation(w io.Writer, rows []FringeRow) {
	fmt.Fprintln(w, "Ablation — fringe size (error vs memory, §4.3.2–4.3.3)")
	fmt.Fprintf(w, "  %10s  %10s  %12s  %10s\n", "F", "MeanErr", "PeakEntries", "Overflows")
	for _, r := range rows {
		name := fmt.Sprint(r.FringeSize)
		if r.FringeSize == 0 {
			name = "unbounded"
		}
		fmt.Fprintf(w, "  %10s  %10.4f  %12d  %10d\n", name, r.Err, r.PeakMem, r.Overflows)
	}
}

// BitmapRow is one stochastic-averaging variant (§4.7 ablation).
type BitmapRow struct {
	Bitmaps     int
	Err         float64
	TheoryErr   float64 // 0.78/sqrt(m), the FM prediction
	PeakEntries int
}

// RunBitmapAblation sweeps the bitmap count m.
func RunBitmapAblation(cfg AblationConfig, ms []int) ([]BitmapRow, error) {
	cfg = cfg.withDefaults()
	if len(ms) == 0 {
		ms = []int{8, 16, 32, 64, 128, 256}
	}
	var rows []BitmapRow
	for _, m := range ms {
		var werr metrics.Welford
		var peak int
		for run := 0; run < cfg.Runs; run++ {
			d, err := cfg.dataset(run)
			if err != nil {
				return nil, err
			}
			sk, err := core.NewSketch(d.Conditions, core.Options{
				Bitmaps: m, Seed: uint64(cfg.Seed + int64(run)*29 + int64(m)),
			})
			if err != nil {
				return nil, err
			}
			d.Feed(sk)
			werr.Add(metrics.RelErr(float64(d.Count), sk.ImplicationCount()))
			if p := sk.PeakMemEntries(); p > peak {
				peak = p
			}
		}
		rows = append(rows, BitmapRow{
			Bitmaps:     m,
			Err:         werr.Mean(),
			TheoryErr:   0.78 / math.Sqrt(float64(m)),
			PeakEntries: peak,
		})
	}
	return rows, nil
}

// PrintBitmapAblation renders the bitmap sweep.
func PrintBitmapAblation(w io.Writer, rows []BitmapRow) {
	fmt.Fprintln(w, "Ablation — bitmaps m (stochastic averaging accuracy, §4.7)")
	fmt.Fprintf(w, "  %8s  %10s  %12s  %12s\n", "m", "MeanErr", "FM theory", "PeakEntries")
	for _, r := range rows {
		fmt.Fprintf(w, "  %8d  %10.4f  %12.4f  %12d\n", r.Bitmaps, r.Err, r.TheoryErr, r.PeakEntries)
	}
}

// SlackRow is one per-cell capacity variant (§4.3.2's "double the allocated
// memory" remark).
type SlackRow struct {
	Slack     int
	Err       float64
	Overflows int
	PeakMem   int
}

// RunSlackAblation sweeps the capacity slack factor.
func RunSlackAblation(cfg AblationConfig, slacks []int) ([]SlackRow, error) {
	cfg = cfg.withDefaults()
	if len(slacks) == 0 {
		slacks = []int{1, 2, 3, 4}
	}
	var rows []SlackRow
	for _, s := range slacks {
		var werr metrics.Welford
		var over, peak int
		for run := 0; run < cfg.Runs; run++ {
			d, err := cfg.dataset(run)
			if err != nil {
				return nil, err
			}
			sk, err := core.NewSketch(d.Conditions, core.Options{
				Slack: s, Seed: uint64(cfg.Seed + int64(run)*17 + int64(s)),
			})
			if err != nil {
				return nil, err
			}
			d.Feed(sk)
			werr.Add(metrics.RelErr(float64(d.Count), sk.ImplicationCount()))
			over += sk.Fringe().Overflows
			if p := sk.PeakMemEntries(); p > peak {
				peak = p
			}
		}
		rows = append(rows, SlackRow{Slack: s, Err: werr.Mean(), Overflows: over / cfg.Runs, PeakMem: peak})
	}
	return rows, nil
}

// PrintSlackAblation renders the slack sweep.
func PrintSlackAblation(w io.Writer, rows []SlackRow) {
	fmt.Fprintln(w, "Ablation — per-cell capacity slack (§4.3.2)")
	fmt.Fprintf(w, "  %8s  %10s  %10s  %12s\n", "slack", "MeanErr", "Overflows", "PeakEntries")
	for _, r := range rows {
		fmt.Fprintf(w, "  %8d  %10.4f  %10d  %12d\n", r.Slack, r.Err, r.Overflows, r.PeakMem)
	}
}

// Lemma2Row is one point of the fringe-size law validation: with
// non-implication ratio q = ~S/F0, Lemma 2 predicts a fringe of −log2 q
// cells suffices; smaller fringes clamp the non-implication estimate near
// the 2^−F·F0 floor (§4.3.3).
type Lemma2Row struct {
	Q         float64 // ~S / F0(A)
	NeededF   float64 // −log2 q
	FringeF   int
	NonImpErr float64
}

// RunLemma2 sweeps q and F and reports the non-implication estimation
// error, demonstrating the floor kicks in exactly when F < −log2 q.
func RunLemma2(cfg AblationConfig, qs []float64, fs []int) ([]Lemma2Row, error) {
	cfg = cfg.withDefaults()
	if len(qs) == 0 {
		qs = []float64{0.5, 0.25, 0.125, 0.0625, 0.03125}
	}
	if len(fs) == 0 {
		fs = []int{2, 4, 8}
	}
	var rows []Lemma2Row
	for _, q := range qs {
		for _, f := range fs {
			var werr metrics.Welford
			for run := 0; run < cfg.Runs; run++ {
				// Pick the implication count so that ~S/F0sup = q: with
				// per-noise (CardA−Count)/3 and ~S = 2·per, solving
				// q = ~S/(Count+~S) gives Count = 2·CardA·(1−q)/(2+q).
				count := int(2 * float64(cfg.CardA) * (1 - q) / (2 + q))
				d, err := gen.NewDatasetOne(gen.DatasetOneConfig{
					CardA: cfg.CardA, Count: count, C: cfg.C,
					Seed: cfg.Seed + int64(run)*31 + int64(f) + int64(q*1000),
				})
				if err != nil {
					return nil, err
				}
				sk, err := core.NewSketch(d.Conditions, core.Options{
					FringeSize: f, Seed: uint64(cfg.Seed+int64(run)) * 31,
				})
				if err != nil {
					return nil, err
				}
				d.Feed(sk)
				werr.Add(metrics.RelErr(float64(d.NonCount), sk.NonImplicationCount()))
			}
			rows = append(rows, Lemma2Row{
				Q:         q,
				NeededF:   -math.Log2(q),
				FringeF:   f,
				NonImpErr: werr.Mean(),
			})
		}
	}
	return rows, nil
}

// PrintLemma2 renders the fringe-law validation.
func PrintLemma2(w io.Writer, rows []Lemma2Row) {
	fmt.Fprintln(w, "Ablation — Lemma 2 fringe-size law (non-implication error)")
	fmt.Fprintf(w, "  %10s  %10s  %8s  %10s\n", "q=~S/F0", "-log2 q", "F", "NonImpErr")
	for _, r := range rows {
		fmt.Fprintf(w, "  %10.4f  %10.2f  %8d  %10.4f\n", r.Q, r.NeededF, r.FringeF, r.NonImpErr)
	}
}
