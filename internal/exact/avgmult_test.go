package exact

import (
	"testing"

	"implicate/internal/imps"
)

func TestConditionsAccessor(t *testing.T) {
	cnd := cond(3, 2, 1, 0.9)
	c := MustCounter(cnd)
	if c.Conditions() != cnd {
		t.Fatalf("Conditions = %+v", c.Conditions())
	}
}

func TestAvgMultiplicity(t *testing.T) {
	c := MustCounter(cond(3, 2, 2, 0.5))
	if c.AvgMultiplicity() != 0 {
		t.Fatal("empty counter has non-zero average")
	}
	// a: two partners (2+2 tuples); b: one partner (2 tuples); v: violator
	// with four partners — must not contribute.
	for _, tp := range [][2]string{
		{"a", "x"}, {"a", "x"}, {"a", "y"}, {"a", "y"},
		{"b", "z"}, {"b", "z"},
		{"v", "p1"}, {"v", "p2"}, {"v", "p3"}, {"v", "p4"},
	} {
		c.Add(tp[0], tp[1])
	}
	if c.NonImplicationCount() != 1 {
		t.Fatalf("~S = %v, want 1 (v)", c.NonImplicationCount())
	}
	if got, want := c.AvgMultiplicity(), 1.5; got != want {
		t.Fatalf("AvgMultiplicity = %v, want %v", got, want)
	}
	// Under-supported itemsets do not contribute either.
	c.Add("fresh", "q")
	if got := c.AvgMultiplicity(); got != 1.5 {
		t.Fatalf("under-supported itemset changed the average: %v", got)
	}
}

// TestAvgMultiplicityAgainstSketch cross-checks the sketch's sampled
// average against the exact one on a mixed workload.
func TestAvgMultiplicityAgainstSketch(t *testing.T) {
	cnd := imps.Conditions{MaxMultiplicity: 4, MinSupport: 4, TopC: 4, MinTopConfidence: 0.9}
	ex := MustCounter(cnd)
	for i := 0; i < 3000; i++ {
		a := key("a", i)
		mult := 1 + i%4
		for k := 0; k < 4*mult; k++ {
			ex.Add(a, key("b", i*10+k%mult))
		}
	}
	// Average multiplicity by construction: mean of 1..4 = 2.5.
	if got := ex.AvgMultiplicity(); got != 2.5 {
		t.Fatalf("exact AvgMultiplicity = %v, want 2.5", got)
	}
}

func key(prefix string, n int) string {
	buf := []byte(prefix)
	for n > 0 {
		buf = append(buf, byte('0'+n%10))
		n /= 10
	}
	return string(buf)
}
