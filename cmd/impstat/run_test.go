package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"implicate"
	"implicate/internal/stream"
)

const testStream = "Source\tDestination\tService\tTime\n" +
	"S1\tD2\tWWW\tMorning\n" +
	"S2\tD1\tFTP\tMorning\n" +
	"S1\tD3\tWWW\tMorning\n" +
	"S2\tD1\tP2P\tNoon\n" +
	"S1\tD3\tP2P\tAfternoon\n" +
	"S1\tD3\tWWW\tAfternoon\n" +
	"S1\tD3\tP2P\tAfternoon\n" +
	"S3\tD3\tP2P\tNight\n"

func TestParseFlags(t *testing.T) {
	cfg, rest, err := parseFlags([]string{"-q", "SELECT COUNT(DISTINCT a) FROM s", "-backend", "all", "file.tsv"})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.backend != "all" || len(rest) != 1 || rest[0] != "file.tsv" {
		t.Fatalf("parsed %+v %v", cfg, rest)
	}
	if _, _, err := parseFlags([]string{"-bogus"}); err == nil {
		t.Error("unknown flag accepted")
	}
}

func TestValidateFlagCombinations(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "ok.ckpt")
	if err := run(&config{sql: "SELECT COUNT(DISTINCT Source) FROM t WHERE Source IMPLIES Destination",
		backend: "exact", checkpoint: ckpt}, strings.NewReader(testStream), &strings.Builder{}); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name    string
		cfg     config
		wantErr string
	}{
		{"every without checkpoint", config{sql: "x", every: 100}, "-checkpoint"},
		{"negative every", config{sql: "x", every: -1, checkpoint: "f"}, "-every"},
		{"negative interval", config{sql: "x", interval: -5}, "-interval"},
		{"resume with q", config{resume: ckpt, sql: "x"}, "drop -q"},
		{"resume missing file", config{resume: filepath.Join(dir, "nope.ckpt")}, "cannot resume"},
		{"every with checkpoint ok", config{sql: "x", every: 100, checkpoint: "f"}, ""},
		{"resume existing ok", config{resume: ckpt}, ""},
		{"plain query ok", config{sql: "x"}, ""},
	}
	for _, tc := range cases {
		err := tc.cfg.validate()
		if tc.wantErr == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("%s: invalid combination accepted", tc.name)
		} else if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.wantErr)
		}
	}
}

func TestRunExactQuery(t *testing.T) {
	cfg := &config{
		sql:     `SELECT COUNT(DISTINCT Destination) FROM t WHERE Destination IMPLIES Source`,
		backend: "exact",
	}
	var out strings.Builder
	if err := run(cfg, strings.NewReader(testStream), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "exact=2.0") {
		t.Fatalf("output missing the exact answer:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "tuples=8") {
		t.Fatalf("output missing tuple count:\n%s", out.String())
	}
}

func TestRunAllBackendsWithInterval(t *testing.T) {
	cfg := &config{
		sql:      `SELECT COUNT(DISTINCT Source) FROM t WHERE Source IMPLIES Service`,
		backend:  "all",
		interval: 4,
		seed:     1,
		ilcEps:   0.01,
		dsSize:   1920,
		dsBound:  39,
	}
	var out strings.Builder
	if err := run(cfg, strings.NewReader(testStream), &out); err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(out.String(), "tuples=")
	if lines != 3 { // at 4, at 8, and the final report
		t.Fatalf("expected 3 reports, got %d:\n%s", lines, out.String())
	}
	for _, name := range []string{"nips=", "exact=", "ilc=", "ds="} {
		if !strings.Contains(out.String(), name) {
			t.Errorf("output missing backend %s", name)
		}
	}
}

func TestRunErrors(t *testing.T) {
	if err := run(&config{backend: "exact"}, strings.NewReader(testStream), &strings.Builder{}); err == nil {
		t.Error("missing query accepted")
	}
	if err := run(&config{sql: "SELECT", backend: "exact"}, strings.NewReader(testStream), &strings.Builder{}); err == nil {
		t.Error("bad query accepted")
	}
	if err := run(&config{sql: "SELECT COUNT(DISTINCT a) FROM s", backend: "zzz"}, strings.NewReader(testStream), &strings.Builder{}); err == nil {
		t.Error("unknown backend accepted")
	}
	if err := run(&config{sql: "SELECT COUNT(DISTINCT a) FROM s", backend: "exact"}, strings.NewReader(""), &strings.Builder{}); err == nil {
		t.Error("empty stream accepted")
	}
	// Query referencing unknown attributes fails at registration.
	if err := run(&config{sql: "SELECT COUNT(DISTINCT Nope) FROM s", backend: "exact"},
		strings.NewReader(testStream), &strings.Builder{}); err == nil {
		t.Error("unknown attribute accepted")
	}
}

func TestRunBinaryInput(t *testing.T) {
	// Re-encode the test stream in the binary format and query it.
	src, schema, err := stream.OpenReader(strings.NewReader(testStream))
	if err != nil {
		t.Fatal(err)
	}
	var bin strings.Builder
	w := stream.NewBinaryWriter(&bin, schema)
	for {
		tup, err := src.Next()
		if err != nil {
			break
		}
		if err := w.Write(tup); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	cfg := &config{
		sql:     `SELECT COUNT(DISTINCT Destination) FROM t WHERE Destination IMPLIES Source`,
		backend: "exact",
	}
	var out strings.Builder
	if err := run(cfg, strings.NewReader(bin.String()), &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "exact=2.0") {
		t.Fatalf("binary input gave wrong answer:\n%s", out.String())
	}
}

// longStream returns a text stream with n tuples under the test schema.
func longStream(n int) string {
	var b strings.Builder
	b.WriteString("Source\tDestination\tService\tTime\n")
	svcs := []string{"WWW", "FTP", "P2P"}
	for i := 0; i < n; i++ {
		dst := "D" + strconv.Itoa((i*3)%7)
		if i%11 < 4 {
			dst = "D-solo"
		}
		fmt.Fprintf(&b, "S%d\t%s\t%s\tMorning\n", i%11, dst, svcs[i%3])
	}
	return b.String()
}

func TestRunCheckpointAndResume(t *testing.T) {
	full := longStream(60)
	ckpt := filepath.Join(t.TempDir(), "run.ckpt")
	sql := `SELECT COUNT(DISTINCT Source) FROM t WHERE Source IMPLIES Destination WITH SUPPORT >= 2, MULTIPLICITY <= 2`

	// The uninterrupted reference run.
	var want strings.Builder
	if err := run(&config{sql: sql, backend: "all", seed: 1, ilcEps: 0.01, dsSize: 1920, dsBound: 39},
		strings.NewReader(full), &want); err != nil {
		t.Fatal(err)
	}

	// The killed run: the process dies after 25 tuples (simulated by ending
	// the input early), having checkpointed along the way.
	lines := strings.SplitAfter(full, "\n")
	killed := strings.Join(lines[:1+25], "")
	if err := run(&config{sql: sql, backend: "all", seed: 1, ilcEps: 0.01, dsSize: 1920, dsBound: 39,
		checkpoint: ckpt, every: 10}, strings.NewReader(killed), &strings.Builder{}); err != nil {
		t.Fatal(err)
	}

	// Resume over the full stream: -q is gone, the checkpoint carries the
	// queries; the final report must match the uninterrupted run's.
	var got strings.Builder
	if err := run(&config{resume: ckpt, seed: 1, ilcEps: 0.01, dsSize: 1920, dsBound: 39},
		strings.NewReader(full), &got); err != nil {
		t.Fatal(err)
	}
	wantFinal := lastLine(want.String())
	gotFinal := lastLine(got.String())
	if gotFinal != wantFinal {
		t.Fatalf("resumed run final report:\n  %s\nuninterrupted run:\n  %s", gotFinal, wantFinal)
	}
	if !strings.Contains(gotFinal, "tuples=60") {
		t.Fatalf("resumed run did not reach the end of the stream: %s", gotFinal)
	}
}

func lastLine(s string) string {
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	return lines[len(lines)-1]
}

func TestRunResumeErrors(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "run.ckpt")
	sql := `SELECT COUNT(DISTINCT Source) FROM t WHERE Source IMPLIES Destination`
	if err := run(&config{sql: sql, backend: "exact", checkpoint: ckpt},
		strings.NewReader(testStream), &strings.Builder{}); err != nil {
		t.Fatal(err)
	}

	// -resume and -q are mutually exclusive: the checkpoint owns the queries.
	if err := run(&config{resume: ckpt, sql: sql}, strings.NewReader(testStream), &strings.Builder{}); err == nil {
		t.Error("-resume with -q accepted")
	}

	// A corrupted checkpoint is rejected, not restored.
	data, err := os.ReadFile(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-3] ^= 0x10
	bad := filepath.Join(dir, "bad.ckpt")
	if err := os.WriteFile(bad, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run(&config{resume: bad}, strings.NewReader(testStream), &strings.Builder{}); err == nil {
		t.Error("corrupt checkpoint accepted")
	}

	// A checkpoint from a different schema is rejected.
	other := "Alpha\tBeta\nx\ty\n"
	if err := run(&config{resume: ckpt}, strings.NewReader(other), &strings.Builder{}); err == nil {
		t.Error("schema-mismatched checkpoint accepted")
	}
}

func TestRunCheckpointBinaryInterval(t *testing.T) {
	// -every must be honored exactly on the batched binary path too: after a
	// run over n tuples with every=16, the final file records offset n.
	src, schema, err := stream.OpenReader(strings.NewReader(longStream(50)))
	if err != nil {
		t.Fatal(err)
	}
	var bin strings.Builder
	w := stream.NewBinaryWriter(&bin, schema)
	for {
		tup, err := src.Next()
		if err != nil {
			break
		}
		if err := w.Write(tup); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	ckpt := filepath.Join(t.TempDir(), "bin.ckpt")
	cfg := &config{
		sql:        `SELECT COUNT(DISTINCT Source) FROM t WHERE Source IMPLIES Destination`,
		backend:    "exact",
		checkpoint: ckpt,
		every:      16,
	}
	if err := run(cfg, strings.NewReader(bin.String()), &strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	snap, err := implicate.ReadCheckpoint(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Offset != 50 {
		t.Fatalf("final checkpoint offset %d, want 50", snap.Offset)
	}
}
