// Package query models the implication queries of §3 and Table 2 — from
// plain distinct counts through one-to-many, complement, conditional and
// compound implications, with optional sliding windows — and evaluates them
// over tuple streams with a pluggable estimator backend.
//
// Queries can be built programmatically or parsed from the paper's
// SQL-like dialect:
//
//	SELECT COUNT(DISTINCT Destination) FROM traffic
//	WHERE Destination IMPLIES Source
//	WITH SUPPORT >= 1, MULTIPLICITY <= 5, CONFIDENCE >= 0.8 TOP 2
//
// Conditional implications add equality filters (AND Time = 'Morning'),
// complement implications negate the predicate (NOT IMPLIES), compound
// implications group the left-hand side (GROUP BY Service), and sliding
// windows bound the reference point (WINDOW 100000 EVERY 10000).
package query

import (
	"fmt"

	"implicate/internal/imps"
	"implicate/internal/stream"
)

// Mode selects what the query counts.
type Mode int

const (
	// CountImplications counts itemsets satisfying the implication
	// conditions (the general query of §3).
	CountImplications Mode = iota
	// CountNonImplications counts the complement (§4.3): itemsets meeting
	// the support condition but violating multiplicity or top-confidence.
	CountNonImplications
	// CountSupported counts distinct itemsets meeting the support condition.
	CountSupported
	// CountDistinct is the plain distinct-count statistic.
	CountDistinct
	// AvgMultiplicity averages |φ(a→B)| over the implicating itemsets —
	// the aggregate of Table 2's "Complex Implication" row.
	AvgMultiplicity
)

// String names the mode.
func (m Mode) String() string {
	switch m {
	case CountImplications:
		return "implications"
	case CountNonImplications:
		return "non-implications"
	case CountSupported:
		return "supported"
	case CountDistinct:
		return "distinct"
	case AvgMultiplicity:
		return "avg-multiplicity"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Filter is one conditional-implication predicate: attribute = value (or
// != when Negate is set). Only tuples passing every filter feed the
// estimator.
type Filter struct {
	Attr   string
	Value  string
	Negate bool
}

// Query is one implication query.
type Query struct {
	// A is the left-hand attribute set (the COUNT(DISTINCT ...) target).
	A []string
	// B is the implied attribute set. Empty only for Mode CountDistinct.
	B []string
	// From names the stream (informational; the engine binds to a schema).
	From string
	// Mode selects the counted quantity.
	Mode Mode
	// Filters are conjunctive equality predicates (conditional
	// implications).
	Filters []Filter
	// GroupBy lists compound-implication grouping attributes; they extend
	// the counted itemset, so the query counts distinct (A ∪ GroupBy)
	// combinations whose per-group implication holds.
	GroupBy []string
	// Cond are the implication conditions. Zero values are defaulted by
	// Normalize: plain "A IMPLIES B" means an exact one-to-one implication
	// (K=1, c=1, ψ=1, τ=1).
	Cond imps.Conditions
	// Window, when positive, asks for a sliding window of that many tuples;
	// Every is the origin granularity (defaults to Window/10).
	Window int64
	Every  int64
}

// Normalize fills defaulted condition fields and validates the query
// against a schema.
func (q *Query) Normalize(schema *stream.Schema) error {
	if len(q.A) == 0 {
		return fmt.Errorf("query: empty A attribute set")
	}
	if len(q.B) == 0 && q.Mode != CountDistinct {
		return fmt.Errorf("query: empty B attribute set for %v query", q.Mode)
	}
	if q.Cond.MaxMultiplicity == 0 {
		q.Cond.MaxMultiplicity = 1
	}
	if q.Cond.TopC == 0 {
		q.Cond.TopC = 1
	}
	if q.Cond.MinSupport == 0 {
		q.Cond.MinSupport = 1
	}
	if q.Cond.MinTopConfidence == 0 {
		q.Cond.MinTopConfidence = 1.0
	}
	if q.Cond.MaxMultiplicity < q.Cond.TopC {
		q.Cond.MaxMultiplicity = q.Cond.TopC
	}
	if err := q.Cond.Validate(); err != nil {
		return err
	}
	if q.Window < 0 || q.Every < 0 {
		return fmt.Errorf("query: negative window")
	}
	if q.Window > 0 && q.Every == 0 {
		q.Every = q.Window / 10
		if q.Every == 0 {
			q.Every = 1
		}
	}
	if q.Window > 0 && q.Every > q.Window {
		return fmt.Errorf("query: EVERY %d exceeds WINDOW %d", q.Every, q.Window)
	}
	seen := map[string]bool{}
	check := func(kind string, attrs []string) error {
		for _, a := range attrs {
			if _, ok := schema.Index(a); !ok {
				return fmt.Errorf("query: unknown %s attribute %q", kind, a)
			}
			if seen[a] {
				return fmt.Errorf("query: attribute %q used twice across A/B/GROUP BY", a)
			}
			seen[a] = true
		}
		return nil
	}
	if err := check("A", q.A); err != nil {
		return err
	}
	if err := check("B", q.B); err != nil {
		return err
	}
	if err := check("GROUP BY", q.GroupBy); err != nil {
		return err
	}
	for _, f := range q.Filters {
		if _, ok := schema.Index(f.Attr); !ok {
			return fmt.Errorf("query: unknown filter attribute %q", f.Attr)
		}
	}
	return nil
}
