package obs

import (
	"fmt"
	"sort"

	"implicate/internal/wire"
)

// The fleet trace: the coordinator's answer to the Trace RPC. Where a leaf
// serves its own span ring, the coordinator fans the RPC out, collects
// every leaf's ring next to its own, and assembles one causally-ordered
// trace — each span labeled with the node it was recorded on, children
// sorted under their parents by the cross-node links the traced frames
// carried.
const fleetMagic = "IMPF\x01"

// maxNodeNameLen bounds a node label on the wire.
const maxNodeNameLen = 256

// FleetSpan is one span of an assembled fleet trace: the node that
// recorded it plus the span itself.
type FleetSpan struct {
	// Node names the recording process: "coord" for the coordinator's own
	// spans, the leaf's configured name otherwise.
	Node string
	Span
}

// EncodeFleetTrace serializes an assembled fleet trace.
func EncodeFleetTrace(spans []FleetSpan) []byte {
	e := wire.NewEncoder(16 + len(spans)*80)
	e.Raw([]byte(fleetMagic))
	e.U32(uint32(len(spans)))
	for i := range spans {
		s := &spans[i]
		e.Str(s.Node)
		e.U64(s.Seq)
		e.U8(uint8(s.Kind))
		e.U32(uint32(s.Arg))
		e.I64(s.Start)
		e.I64(s.Dur)
		e.I64(s.Units)
		e.U64(s.Trace)
		e.U64(s.Parent)
		e.U64(s.ID)
	}
	return e.Bytes()
}

// DecodeFleetTrace parses a fleet trace, rejecting structurally
// implausible input.
func DecodeFleetTrace(data []byte) ([]FleetSpan, error) {
	d := wire.NewDecoder(data)
	d.Magic(fleetMagic)
	n := d.Count(65) // min record: 4-byte name prefix + 61-byte span
	if d.Err() == nil && n > maxDumpSpans {
		return nil, fmt.Errorf("%w: fleet trace claims %d spans", wire.ErrCorrupt, n)
	}
	var spans []FleetSpan
	if d.Err() == nil && n > 0 {
		spans = make([]FleetSpan, n)
		for i := 0; i < n; i++ {
			s := &spans[i]
			s.Node = d.Str(maxNodeNameLen)
			s.Seq = d.U64()
			s.Kind = SpanKind(d.U8())
			s.Arg = int32(d.U32())
			s.Start = d.I64()
			s.Dur = d.I64()
			s.Units = d.I64()
			s.Trace = d.U64()
			s.Parent = d.U64()
			s.ID = d.U64()
			if s.Kind >= numSpanKinds {
				d.Failf("unknown span kind %d", s.Kind)
			}
		}
	}
	if err := d.Done(); err != nil {
		return nil, fmt.Errorf("obs: %w", err)
	}
	return spans, nil
}

// IsFleetTrace reports whether a Trace RPC payload is a fleet trace (as
// opposed to a single node's span dump): clients use it to pick a decoder
// without knowing what kind of server answered.
func IsFleetTrace(data []byte) bool {
	return len(data) >= len(fleetMagic) && string(data[:len(fleetMagic)]) == fleetMagic
}

// OrderFleetTrace sorts an assembled trace causally: root spans (no parent
// in the set) by start time, each span's children directly after it,
// recursively, children by start time. Spans reachable from no root (their
// parent span was lapped out of its ring) surface as roots rather than
// disappear — a trace viewer should see the orphaned work. The input is
// not modified; the ordered trace is returned.
func OrderFleetTrace(spans []FleetSpan) []FleetSpan {
	byID := make(map[uint64]int, len(spans))
	for i := range spans {
		if id := spans[i].ID; id != 0 {
			byID[id] = i
		}
	}
	children := make(map[int][]int)
	var roots []int
	for i := range spans {
		if p := spans[i].Parent; p != 0 {
			if pi, ok := byID[p]; ok && pi != i {
				children[pi] = append(children[pi], i)
				continue
			}
		}
		roots = append(roots, i)
	}
	byStart := func(ix []int) {
		sort.SliceStable(ix, func(a, b int) bool {
			sa, sb := &spans[ix[a]], &spans[ix[b]]
			if sa.Start != sb.Start {
				return sa.Start < sb.Start
			}
			return sa.Seq < sb.Seq
		})
	}
	byStart(roots)
	for _, c := range children {
		byStart(c)
	}
	out := make([]FleetSpan, 0, len(spans))
	// Iterative preorder DFS; the visited guard makes a corrupt parent
	// cycle terminate instead of recursing forever.
	visited := make([]bool, len(spans))
	stack := make([]int, 0, len(spans))
	for r := len(roots) - 1; r >= 0; r-- {
		stack = append(stack, roots[r])
	}
	for len(stack) > 0 {
		i := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if visited[i] {
			continue
		}
		visited[i] = true
		out = append(out, spans[i])
		kids := children[i]
		for k := len(kids) - 1; k >= 0; k-- {
			stack = append(stack, kids[k])
		}
	}
	// A corrupt parent cycle is reachable from no root and the DFS never
	// enters it; surface those spans at the end rather than drop them.
	for i := range spans {
		if !visited[i] {
			out = append(out, spans[i])
		}
	}
	return out
}
