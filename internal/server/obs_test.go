package server

import (
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"implicate/internal/client"
	"implicate/internal/obs"
)

// TestServerHealthAndTrace exercises the two observability RPCs end to end:
// a traced server ingests batches, then a client reads the engine's health
// reports and the span ring over the wire.
func TestServerHealthAndTrace(t *testing.T) {
	schema := testSchema(t)
	srv := startServer(t, Config{
		Schema:     schema,
		Engine:     testEngine(t, schema, sketchBackend(42, nil)),
		TraceSpans: obs.DefaultSpans,
	})
	cl := dialClient(t, srv, schema, client.Options{})

	// 150 distinct sources, two occurrences each: within the statement's
	// multiplicity bound, so the sketch actually sets value bits.
	tuples := makeTuples(300, 150)
	for i := 0; i < 300; i += 100 {
		if err := cl.IngestBatch(tuples[i : i+100]); err != nil {
			t.Fatal(err)
		}
	}
	waitTuples(t, cl, 300)

	reports, err := cl.Health()
	if err != nil {
		t.Fatal(err)
	}
	if len(reports) != 1 {
		t.Fatalf("got %d health reports, want 1", len(reports))
	}
	h := reports[0]
	if h.Stmt != 0 || h.Kind != "nips" || h.Shared {
		t.Fatalf("report identity %+v", h)
	}
	if h.Tuples != 300 {
		t.Fatalf("report tuples %d, want 300", h.Tuples)
	}
	if h.BitmapFill <= 0 || h.BitmapFill > 1 {
		t.Fatalf("bitmap fill %v outside (0, 1]", h.BitmapFill)
	}
	if h.MemBytes <= 0 {
		t.Fatalf("mem bytes %d", h.MemBytes)
	}

	spans, err := cl.Trace()
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) == 0 {
		t.Fatal("traced server returned no spans")
	}
	kinds := map[obs.SpanKind]int{}
	for i, sp := range spans {
		kinds[sp.Kind]++
		if i > 0 && spans[i-1].Seq >= sp.Seq {
			t.Fatalf("spans out of order: %d then %d", spans[i-1].Seq, sp.Seq)
		}
		if sp.Kind == obs.SpanApply && (sp.Arg < 0 || int(sp.Arg) >= srv.def.Pool.Workers()) {
			t.Fatalf("apply span attributes worker %d of %d", sp.Arg, srv.def.Pool.Workers())
		}
	}
	// Three ingested batches must have left plan, dispatch and apply spans;
	// the RPCs themselves (including Health above) are traced too.
	for _, k := range []obs.SpanKind{obs.SpanPlan, obs.SpanDispatch, obs.SpanApply, obs.SpanRPC} {
		if kinds[k] == 0 {
			t.Errorf("no %s spans in %v", k, kinds)
		}
	}

	// The Health and Trace RPCs land in the telemetry histograms.
	sn, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if sn.Latency[4].Count() == 0 { // RPCHealth
		t.Error("health RPC not observed in telemetry")
	}
	if sn.Latency[5].Count() == 0 { // RPCTrace
		t.Error("trace RPC not observed in telemetry")
	}
}

// TestServerTraceDisabled: an untraced server answers Trace with an empty
// dump, not an error — pollers need not know the server's configuration.
func TestServerTraceDisabled(t *testing.T) {
	schema := testSchema(t)
	srv := startServer(t, Config{Schema: schema, Engine: testEngine(t, schema, exactBackend())})
	cl := dialClient(t, srv, schema, client.Options{})

	if srv.Tracer() != nil {
		t.Fatal("tracer allocated with TraceSpans zero")
	}
	spans, err := cl.Trace()
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) != 0 {
		t.Fatalf("untraced server returned %d spans", len(spans))
	}
}

// TestServerAdminEndpoint drives the HTTP admin surface against a live
// server: /metrics must render telemetry and per-statement health series.
func TestServerAdminEndpoint(t *testing.T) {
	schema := testSchema(t)
	srv := startServer(t, Config{
		Schema:     schema,
		Engine:     testEngine(t, schema, sketchBackend(42, nil)),
		TraceSpans: 64,
	})
	cl := dialClient(t, srv, schema, client.Options{})
	admin, err := obs.ListenAdmin("127.0.0.1:0", srv)
	if err != nil {
		t.Fatal(err)
	}
	defer admin.Close()

	if err := cl.IngestBatch(makeTuples(200, 10)); err != nil {
		t.Fatal(err)
	}
	waitTuples(t, cl, 200)

	hc := &http.Client{Timeout: 5 * time.Second}
	resp, err := hc.Get("http://" + admin.Addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(body)
	for _, want := range []string{
		"imps_tuples_ingested_total 200",
		"imps_queue_high_water",
		`imps_stmt_bitmap_fill{stmt="0",kind="nips",shared="false"}`,
		`imps_rpc_latency_seconds{rpc="IngestBatch",quantile="0.99"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}
