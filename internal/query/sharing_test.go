package query

import (
	"testing"

	"implicate/internal/exact"
	"implicate/internal/imps"
	"implicate/internal/stream"
)

// TestEstimatorSharing: the four read-modes of one predicate must share a
// single estimator, fed exactly once per tuple, and still answer
// consistently.
func TestEstimatorSharing(t *testing.T) {
	e := NewEngine(mustSchema(t))
	base := `FROM traffic WHERE Source %s IMPLIES Destination WITH MULTIPLICITY <= 10, CONFIDENCE >= 0.5 TOP 1`
	imp, err := e.RegisterSQL(`SELECT COUNT(DISTINCT Source) `+sprintfBase(base, ""), exactBackend)
	if err != nil {
		t.Fatal(err)
	}
	non, err := e.RegisterSQL(`SELECT COUNT(DISTINCT Source) `+sprintfBase(base, "NOT"), exactBackend)
	if err != nil {
		t.Fatal(err)
	}
	avg, err := e.RegisterSQL(`SELECT AVG(MULTIPLICITY(Source)) `+sprintfBase(base, ""), exactBackend)
	if err != nil {
		t.Fatal(err)
	}
	if imp.Estimator() != non.Estimator() || imp.Estimator() != avg.Estimator() {
		t.Fatal("statements did not share the estimator")
	}
	if _, err := e.Consume(stream.NewMemSource(table1())); err != nil {
		t.Fatal(err)
	}
	// Exactly 8 tuples must have been observed — sharing must not
	// double-feed.
	if got := imp.Estimator().Tuples(); got != 8 {
		t.Fatalf("shared estimator saw %d tuples, want 8", got)
	}
	// All three sources pass at ψ=0.5/K=10; none violate.
	if imp.Count() != 3 || non.Count() != 0 {
		t.Fatalf("imp=%v non=%v", imp.Count(), non.Count())
	}
	if want := 4.0 / 3; avg.Count() != want {
		t.Fatalf("avg=%v want %v", avg.Count(), want)
	}
}

// sprintfBase avoids importing fmt for one call site.
func sprintfBase(base, not string) string {
	out := ""
	for i := 0; i < len(base); i++ {
		if base[i] == '%' && i+1 < len(base) && base[i+1] == 's' {
			out += not
			i++
			continue
		}
		out += string(base[i])
	}
	return out
}

// TestNoSharingAcrossPredicates: different conditions or attributes must
// NOT share.
func TestNoSharingAcrossPredicates(t *testing.T) {
	e := NewEngine(mustSchema(t))
	a, err := e.RegisterSQL(`SELECT COUNT(DISTINCT Source) FROM t WHERE Source IMPLIES Destination`, exactBackend)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.RegisterSQL(`SELECT COUNT(DISTINCT Source) FROM t WHERE Source IMPLIES Service`, exactBackend)
	if err != nil {
		t.Fatal(err)
	}
	c, err := e.RegisterSQL(`SELECT COUNT(DISTINCT Source) FROM t WHERE Source IMPLIES Destination WITH SUPPORT >= 2`, exactBackend)
	if err != nil {
		t.Fatal(err)
	}
	d, err := e.RegisterSQL(`SELECT COUNT(DISTINCT Source) FROM t WHERE Source IMPLIES Destination AND Time = 'Morning'`, exactBackend)
	if err != nil {
		t.Fatal(err)
	}
	ests := map[interface{}]bool{}
	for _, st := range []*Statement{a, b, c, d} {
		ests[st.Estimator()] = true
	}
	if len(ests) != 4 {
		t.Fatalf("distinct predicates shared estimators: %d unique of 4", len(ests))
	}
}

// TestNoSharingAcrossBackends: the same query with different backend
// functions keeps separate estimators.
func TestNoSharingAcrossBackends(t *testing.T) {
	e := NewEngine(mustSchema(t))
	sql := `SELECT COUNT(DISTINCT Source) FROM t WHERE Source IMPLIES Destination`
	a, err := e.RegisterSQL(sql, exactBackend)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.RegisterSQL(sql, exactBackendTwin)
	if err != nil {
		t.Fatal(err)
	}
	if a.Estimator() == b.Estimator() {
		t.Fatal("different backends shared an estimator")
	}
}

// exactBackendTwin behaves exactly like exactBackend but is a distinct
// function value.
func exactBackendTwin(cond imps.Conditions) (imps.Estimator, error) {
	return exact.NewCounter(cond)
}
