package imps

// HealthReport is one estimator's runtime self-assessment: how full its
// constrained memory is, how saturated its probabilistic structures are, and
// how much error it believes its current estimate carries. The paper's whole
// premise is operating under severe memory constraints; a health report is
// how an operator sees an estimator approaching those constraints live
// instead of discovering them post-hoc from drifted answers.
//
// Estimators fill the fields that apply to them and leave the rest zero: a
// bitmap sketch reports fill and fringe occupancy, a budgeted sampler
// reports its budget fraction in BitmapFill, an exact counter reports only
// its footprint. The engine layer stamps the identity fields (Stmt, Kind,
// Query, Shared) when it surfaces a report.
type HealthReport struct {
	// Stmt is the statement's registration index (the Query RPC id);
	// stamped by the engine.
	Stmt int
	// Kind is the snapshot-registry name of the leaf estimator ("nips",
	// "sharded", "exact", "exact-striped", "ilc", "ds"), or "" when the
	// estimator is not a registered kind; stamped by the engine.
	Kind string
	// Query is the statement's normalized query text; stamped by the engine.
	Query string
	// Shared marks a statement aliasing another statement's estimator; its
	// report duplicates the owner's estimator state.
	Shared bool

	// Tuples is the number of tuples the estimator has observed.
	Tuples int64
	// MemEntries is the live counter-entry count — the footprint measure the
	// paper compares algorithms by (§4.6, Table 5).
	MemEntries int
	// MemBytes approximates the heap bytes those entries occupy. It is an
	// estimate from entry counts and per-entry struct sizes, not a heap
	// measurement.
	MemBytes int64

	// BitmapFill is the saturation of the estimator's bounded structure in
	// [0,1]: for bitmap sketches, the fraction of cells whose value bit is
	// set; for the budgeted Distinct Sampler, the fraction of the entry
	// budget in use. 0 for estimators with no bounded structure.
	BitmapFill float64
	// LeftmostZero is the mean leftmost-zero position over the sketch's
	// bitmaps (the plain-F0 FM reader position R) — the quantity the
	// probabilistic counts are read from, and the direct measure of how far
	// the bitmaps have saturated. 0 for non-sketch estimators.
	LeftmostZero float64

	// FringeTracked is the number of A-itemsets currently tracked in fringe
	// or support-only cells.
	FringeTracked int
	// FringePairs is the number of live (a,b) pair counters.
	FringePairs int
	// FringeTombstones is the number of excluded-itemset markers held in
	// live cells.
	FringeTombstones int
	// FringeEvictions counts cells permanently retired from tracking:
	// overflowed, or pushed out of the floating fringe with recorded
	// evidence. Sustained growth under a stable workload means the fringe
	// budget (F, slack) is too tight for the stream.
	FringeEvictions int64
	// FringeWidth is the widest live fringe (hi−lo+1) across bitmaps.
	FringeWidth int

	// RelErr is the estimator's own standard-error-based relative error
	// estimate for its implication count (stderr/estimate, the
	// metrics.IntervalRelErr reading of its confidence interval), 0 when the
	// estimator is exact or cannot self-assess.
	RelErr float64
}

// HealthReporter is implemented by estimators that can describe their own
// runtime health. Estimators without it still get a minimal report (tuples
// and entry count) from the engine layer.
type HealthReporter interface {
	Health() HealthReport
}
