// Package server is the network face of the query engine: a TCP server
// speaking internal/proto that feeds one or more engines from remote
// producers and answers implication queries, sketch merges and telemetry
// reads.
//
// Architecture: one accept loop, one reader and one writer goroutine per
// connection, one fair-share dispatcher, and a pipeline worker pool per
// tenant (internal/pipeline). Connection readers decode AND plan ingest
// batches — filters, projections and partition hashing run concurrently
// per connection — and hand the planned batches to their tenant's bounded
// lane; the dispatcher drains the lanes deficit-round-robin and feeds each
// tenant's pool in lane-arrival order, which is all the ordering the
// engine's estimators need for bit-identical-to-serial results (DESIGN.md
// §10). Replies flow through the per-connection writer, which coalesces
// pending acks into vectored writes (conn.go). When a lane is full the
// batch is refused with an explicit backpressure reply (proto.TBusy) and
// NOT enqueued — the client retries. (Pipelined producers that need strict
// per-connection ordering set Config.BlockOnFull instead: the reader then
// blocks for lane room, so no batch is ever refused and re-sent out of
// order.) An acknowledged batch is never dropped: graceful shutdown drains
// every lane through its pool before the final checkpoints are written.
//
// Multi-tenancy (DESIGN.md §14): every server carries an implicit default
// tenant wrapping Config.Engine — exactly the single-tenant behavior older
// clients see, no TAuth required. Named tenants (Config.Tenants, or the
// admin endpoint's POST /tenants) each own an engine, statement registry,
// checkpoint lineage (<CheckpointDir>/<name>.ckpt) and counters. A
// connection serves the default tenant until a TAuth frame pins it to a
// namespace — HMAC-SHA256 connect tokens, verified against Config.TokenKey
// — and every request after the pin resolves against that tenant alone.
// Per-tenant ingest quotas (token-bucket rate, memory ceiling) refuse at
// admission with proto.TQuota before planning or enqueueing, so a refused
// batch leaves no partial engine state and no neighbor pays for it.
//
// An optional UDP ingest lane (udp.go, Config.UDPAddr) accepts
// sequence-numbered datagram batches for fire-and-forget producers, with
// cumulative acknowledgement polls over TCP; the lane feeds the default
// tenant. See internal/proto's udp.go for the lane's exact semantics.
//
// Reads never stall ingestion: Query and Stats answer under the tenant's
// read lock (plus the per-statement read locks of query.Statement.Count),
// while workers keep applying batches; only merges and checkpoint captures
// take a tenant's write lock, and captures first fence that tenant's pool
// so no task is in flight.
//
// Durability composes with the network path exactly as with file streams
// (DESIGN.md §8): each tenant checkpoints its engine every CheckpointEvery
// applied tuples and once more on graceful shutdown. The checkpoint offset
// is the engine's applied-tuple count; a producer recovering a crashed
// server replays its tuple sequence from that offset. Acknowledgements
// confirm enqueueing, not durability — durability is checkpoint + replay.
package server

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"implicate/internal/core"
	"implicate/internal/imps"
	"implicate/internal/obs"
	"implicate/internal/pipeline"
	"implicate/internal/proto"
	"implicate/internal/query"
	"implicate/internal/stream"
	"implicate/internal/telemetry"
	"implicate/internal/tenant"
)

// drainGrace is how long connection readers may keep serving requests after
// Close is called before their reads are unblocked.
const drainGrace = 200 * time.Millisecond

// Config configures a server. Schema and Engine are required; the engine's
// statements must be registered before Listen, and the engine must not be
// touched by the caller while the server runs (the server owns it until
// Close or Kill returns).
type Config struct {
	// Addr is the TCP listen address, e.g. "127.0.0.1:7171" or ":0".
	Addr string
	// Schema is the stream schema ingest batches must match.
	Schema *stream.Schema
	// Engine answers the default tenant's queries and receives its tuples.
	Engine *query.Engine
	// QueueDepth bounds each tenant's ingest lane in batches (unless the
	// tenant's own QueueLen overrides it); a full lane refuses further
	// batches with backpressure replies. Default 64.
	QueueDepth int
	// Workers is the per-tenant pipeline worker pool size batches are
	// fanned out to. Zero selects GOMAXPROCS. Whatever the pool size,
	// results are bit-identical to a single-worker run.
	Workers int
	// DispatchShards is the fair dispatcher's goroutine count: shard k
	// enqueues the tasks of workers w with w % shards == k, so dispatch
	// work parallelizes across tenants and partitions while every worker
	// queue stays single-producer — results remain bit-identical to a
	// single dispatcher at any shard count. Tenants with periodic
	// checkpoints are pinned to the serial path regardless. Zero selects 1
	// (the single-dispatcher mode).
	DispatchShards int
	// MaxBatchTuples bounds one ingest batch; larger batches are rejected
	// as errors. Default 65536.
	MaxBatchTuples int
	// CheckpointPath, when non-empty, makes the server write the default
	// tenant's checkpoints there — every CheckpointEvery applied tuples and
	// once on graceful Close.
	CheckpointPath string
	// CheckpointEvery is the applied-tuple interval between periodic
	// checkpoints (per tenant); zero checkpoints only on Close.
	CheckpointEvery int64
	// RetryAfter is the delay hint carried in backpressure replies.
	// Default 20ms.
	RetryAfter time.Duration
	// BlockOnFull switches ingest backpressure from busy-refusal to
	// blocking: when the tenant's lane is full the connection reader waits
	// for room instead of replying TBusy, so backpressure propagates
	// through TCP flow control. Pipelined producers that depend on
	// per-connection ordering need this — a busy-refused batch is re-sent
	// behind its already-pipelined successors, which reorders the stream
	// even though acknowledgements confirm enqueueing (the lane can be full
	// of batches that were already acked). The default (false) keeps
	// explicit TBusy replies, which synchronous request/response producers
	// prefer. The wait is per tenant: a blocked lane never stalls another
	// tenant's dispatch.
	BlockOnFull bool
	// UDPAddr, when non-empty, opens the UDP ingest lane on that address
	// (e.g. "127.0.0.1:0"). Empty disables the lane; TUDPAck polls then
	// answer with zero watermarks. The lane feeds the default tenant.
	UDPAddr string
	// UDPWindow is the UDP lane's per-source reorder window in sequence
	// numbers: a datagram more than this far ahead of the cumulative
	// watermark is dropped. Default 256.
	UDPWindow int
	// Logf, when non-nil, receives diagnostic messages (failed periodic
	// checkpoints, dropped connections, tenant lifecycle).
	Logf func(format string, args ...any)
	// TraceSpans, when positive, enables the event tracer with a ring
	// holding that many spans (obs.DefaultSpans is the conventional size).
	// Zero disables tracing: no ring is allocated and the ingest path takes
	// no per-task clock reads. The Trace RPC then answers with an empty
	// dump.
	TraceSpans int

	// TokenKey is the HMAC-SHA256 key connect tokens are verified against
	// (tenant.Token mints them). Empty disables verification: any token
	// authenticates an existing tenant, for deployments that gate access at
	// the network layer.
	TokenKey []byte
	// Tenants declares named tenants to create (or resume from
	// CheckpointDir) at Listen. Requires Backends.
	Tenants []tenant.Config
	// Backends maps estimator kind names to factories for tenant creation
	// and checkpoint resume. Required when Tenants is non-empty or tenants
	// are created through the admin endpoint.
	Backends tenant.Backends
	// CheckpointDir, when non-empty, holds one checkpoint file per named
	// tenant (<dir>/<name>.ckpt), written on the same cadence as the
	// default tenant's and resumed from at create time.
	CheckpointDir string

	// gate, when non-nil, is called by the dispatcher before each batch is
	// handed to a pool — a test hook for making queue states deterministic.
	gate func()
}

func (c Config) withDefaults() Config {
	if c.QueueDepth == 0 {
		c.QueueDepth = 64
	}
	if c.Workers == 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.MaxBatchTuples == 0 {
		c.MaxBatchTuples = 1 << 16
	}
	if c.RetryAfter == 0 {
		c.RetryAfter = 20 * time.Millisecond
	}
	if c.UDPWindow == 0 {
		c.UDPWindow = 256
	}
	if c.DispatchShards == 0 {
		c.DispatchShards = 1
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Server is a running ingest/query server. Create with Listen.
type Server struct {
	cfg    Config
	ln     net.Listener
	tel    *telemetry.Set
	tracer *obs.Tracer // nil when tracing is disabled; nil-safe to record on
	udp    *udpLane    // nil when Config.UDPAddr is empty

	// hdr is the canonical binary-stream header for cfg.Schema; an ingest
	// payload with this exact prefix has a verified schema (fast path in
	// decodeBatch). arity caches cfg.Schema.Len().
	hdr   []byte
	arity int

	// boot is this incarnation's nonce, drawn once at Listen and served
	// through the Boot RPC so stateful feeders can fence their sends against
	// a silent restart-from-checkpoint (see proto.TBoot).
	boot uint64

	// def is the implicit default tenant wrapping Config.Engine — what
	// every connection serves until a TAuth frame pins it elsewhere, and
	// what the UDP lane always feeds. It lives outside the registry (its
	// name is reserved) and carries no quotas.
	def *tenant.Tenant
	// reg resolves named tenants and verifies their connect tokens.
	reg *tenant.Registry
	// fair is the deficit-round-robin dispatcher draining every tenant's
	// lane; its goroutine is the sole caller of Dispatch/Fence on live
	// pools, preserving the per-pool ordering contract.
	fair *pipeline.Fair
	// tenMu serializes tenant lifecycle: create, drop, and shutdown's pool
	// teardown. Never held on the request path.
	tenMu sync.Mutex
	// laneSeq numbers named tenants' lanes for dispatch spans; the default
	// tenant keeps the single-tenant span arg (-1).
	laneSeq atomic.Int64

	connMu sync.Mutex
	conns  map[net.Conn]struct{}
	connWG sync.WaitGroup

	draining  atomic.Bool
	killed    atomic.Bool
	closeOnce sync.Once
	closeErr  error
}

// Listen starts a server on cfg.Addr and begins serving.
func Listen(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.Schema == nil {
		return nil, fmt.Errorf("server: nil schema")
	}
	if cfg.Engine == nil {
		return nil, fmt.Errorf("server: nil engine")
	}
	if cfg.QueueDepth < 1 {
		return nil, fmt.Errorf("server: queue depth %d must be >= 1", cfg.QueueDepth)
	}
	if cfg.Workers < 1 {
		return nil, fmt.Errorf("server: worker count %d must be >= 1", cfg.Workers)
	}
	if cfg.DispatchShards < 1 {
		return nil, fmt.Errorf("server: dispatch shard count %d must be >= 1", cfg.DispatchShards)
	}
	// The remaining knobs default on zero; a negative value is a caller
	// bug that would otherwise fail obscurely (every batch rejected, a
	// checkpoint per batch, a negative retry hint on the wire).
	if cfg.MaxBatchTuples < 1 {
		return nil, fmt.Errorf("server: max batch tuples %d must be >= 1", cfg.MaxBatchTuples)
	}
	if cfg.CheckpointEvery < 0 {
		return nil, fmt.Errorf("server: checkpoint interval %d must be >= 0", cfg.CheckpointEvery)
	}
	if cfg.RetryAfter < 0 {
		return nil, fmt.Errorf("server: retry-after %v must be >= 0", cfg.RetryAfter)
	}
	if cfg.TraceSpans < 0 {
		return nil, fmt.Errorf("server: trace span capacity %d must be >= 0", cfg.TraceSpans)
	}
	if len(cfg.Tenants) > 0 && len(cfg.Backends) == 0 {
		return nil, fmt.Errorf("server: tenants declared without backends")
	}
	// A non-positive window would wrap to ~2^64 in the lane's uint64
	// arithmetic and disable the reorder bound entirely; reject it here
	// rather than trusting newUDPLane's conversion.
	if cfg.UDPAddr != "" && cfg.UDPWindow < 1 {
		return nil, fmt.Errorf("server: udp window %d must be >= 1", cfg.UDPWindow)
	}
	s := &Server{
		cfg:   cfg,
		tel:   &telemetry.Set{},
		reg:   tenant.NewRegistry(cfg.TokenKey),
		conns: make(map[net.Conn]struct{}),
		hdr:   stream.BinaryHeader(cfg.Schema),
		arity: cfg.Schema.Len(),
	}
	s.tel.ConfigureWorkers(cfg.Workers)
	nonce, err := proto.NewBootNonce()
	if err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	s.boot = nonce
	if cfg.TraceSpans > 0 {
		s.tracer = obs.NewTracer(cfg.TraceSpans)
	}
	s.fair = pipeline.NewFair(0, cfg.DispatchShards)
	if cfg.gate != nil {
		s.fair.SetGate(cfg.gate)
	}
	s.def = tenant.Wrap(tenant.DefaultName, cfg.Engine, cfg.CheckpointPath, cfg.CheckpointEvery)
	if err := s.attach(s.def); err != nil {
		s.fair.Close()
		return nil, fmt.Errorf("server: %w", err)
	}
	for _, tc := range cfg.Tenants {
		if err := s.addTenant(tc); err != nil {
			s.teardownPools()
			return nil, fmt.Errorf("server: %w", err)
		}
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		s.teardownPools()
		return nil, fmt.Errorf("server: %w", err)
	}
	s.ln = ln
	if cfg.UDPAddr != "" {
		lane, err := newUDPLane(s, cfg.UDPAddr, cfg.UDPWindow)
		if err != nil {
			ln.Close()
			s.teardownPools()
			return nil, fmt.Errorf("server: %w", err)
		}
		s.udp = lane
	}
	go s.acceptLoop()
	return s, nil
}

// attach builds a tenant's worker pool and fair-share lane. Called from
// Listen and (under tenMu) from addTenant, always before the tenant is
// resolvable by connections.
func (s *Server) attach(t *tenant.Tenant) error {
	pool, err := pipeline.New(t.Engine(), pipeline.Config{
		Workers:     s.cfg.Workers,
		OnApplied:   func(n int) { s.tel.AddTuples(int64(n)); t.NoteApplied(n) },
		OnTask:      s.tel.AddWorkerTask,
		OnSaturated: s.tel.AddPoolSaturation,
		Tracer:      s.tracer,
	})
	if err != nil {
		return err
	}
	qlen := t.QueueLen()
	if qlen == 0 {
		qlen = s.cfg.QueueDepth
	}
	t.Pool = pool
	t.Lane = s.fair.AddLane(t.Name(), t.Weight(), qlen, pool, s.afterDispatch(t))
	return nil
}

// afterDispatch builds the tenant's post-dispatch hook: the dispatch span
// and the periodic-checkpoint cadence, both running in the dispatcher
// goroutine (the only legal place to fence the tenant's pool — a non-nil
// hook pins the tenant's lane to the serial dispatch path, see
// pipeline.Fair.AddLane). Nil when neither applies, so the plain fast path
// takes no per-batch clock reads and stays eligible for sharded dispatch.
// The hook receives the batch's tuple count rather than the batch: the
// pool may have recycled the batch by the time the hook runs.
func (s *Server) afterDispatch(t *tenant.Tenant) func(link obs.Link, tuples int, start time.Time) {
	every := t.CheckpointEvery()
	if s.tracer == nil && every <= 0 {
		return nil
	}
	// The default tenant keeps the single-tenant span args; named tenants
	// are numbered so their dispatch and checkpoint spans are attributable.
	laneID := -1
	ckptID := len(t.Statements())
	if t != s.def {
		laneID = int(s.laneSeq.Add(1))
		ckptID = laneID
	}
	var sinceCkpt int64
	return func(link obs.Link, tuples int, start time.Time) {
		n := int64(tuples)
		if s.tracer != nil {
			s.tracer.SpanLinked(link, obs.SpanDispatch, laneID, n, start)
		}
		if every <= 0 {
			return
		}
		sinceCkpt += n
		if sinceCkpt < every {
			return
		}
		// Capture point: fence the tenant's pool so every dispatched tuple
		// is applied, then capture under its exclusive lock so no merge
		// mutates an estimator while it marshals. Other tenants' lanes keep
		// dispatching only after this returns — the price of a single
		// dispatcher — but the capture is per-tenant state only.
		ckptStart := time.Now()
		t.Pool.Fence()
		wrote, err := t.MaybeCheckpoint()
		if err != nil {
			s.cfg.Logf("server: periodic checkpoint (%s): %v", t.Name(), err)
		}
		if wrote {
			s.tracer.Span(obs.SpanCheckpoint, ckptID, t.Engine().Tuples(), ckptStart)
		}
		if wrote || err != nil {
			sinceCkpt = 0
		}
	}
}

// addTenant builds, attaches and registers one named tenant. Callers hold
// tenMu (or are Listen, before any other goroutine exists).
func (s *Server) addTenant(cfg tenant.Config) error {
	t, resumed, err := tenant.New(cfg, s.cfg.Schema, s.cfg.Backends, s.cfg.CheckpointDir, s.cfg.CheckpointEvery)
	if err != nil {
		return err
	}
	if err := s.attach(t); err != nil {
		return err
	}
	if err := s.reg.Add(t); err != nil {
		s.fair.RemoveLane(t.Lane)
		t.Pool.Close()
		return err
	}
	if resumed {
		s.cfg.Logf("server: tenant %s resumed from %s at offset %d", cfg.Name, t.CheckpointPath(), t.Engine().Tuples())
	}
	return nil
}

// CreateTenant implements obs.TenantAdmin: the admin endpoint's POST
// /tenants. Safe while the server serves — other tenants never pause.
func (s *Server) CreateTenant(spec obs.TenantSpec) error {
	s.tenMu.Lock()
	defer s.tenMu.Unlock()
	if s.draining.Load() {
		return fmt.Errorf("server is shutting down")
	}
	if len(s.cfg.Backends) == 0 {
		return fmt.Errorf("server has no backends configured for tenant creation")
	}
	return s.addTenant(tenant.Config{
		Name:      spec.Name,
		Queries:   spec.Queries,
		Backend:   spec.Backend,
		MemBudget: spec.MemBudget,
		Rate:      spec.Rate,
		Burst:     spec.Burst,
		Weight:    spec.Weight,
		QueueLen:  spec.QueueLen,
	})
}

// DropTenant implements obs.TenantAdmin: unregister the tenant (new
// sessions stop resolving it), drain what its lane already admitted, write
// its final checkpoint, and release its pool. Connections still pinned to
// it get refusals from then on; other tenants never pause.
func (s *Server) DropTenant(name string) error {
	s.tenMu.Lock()
	defer s.tenMu.Unlock()
	if s.draining.Load() {
		return fmt.Errorf("server is shutting down")
	}
	t, ok := s.reg.Remove(name)
	if !ok {
		return fmt.Errorf("tenant %q: not found", name)
	}
	s.fair.RemoveLane(t.Lane)
	// RemoveLane returned: the dispatcher will never touch this pool again,
	// so fencing and closing it from here is the dispatcher role handed
	// over.
	t.Pool.Fence()
	err := t.FinalCheckpoint()
	t.Pool.Close()
	return err
}

// TenantStats implements obs.TenantAdmin: per-tenant counters for the
// admin endpoint, nil on single-tenant servers.
func (s *Server) TenantStats() []telemetry.TenantStats { return s.snapshot().Tenants }

// snapshot freezes the telemetry set, appending per-tenant rows when named
// tenants exist and per-shard dispatch rows when dispatch is sharded —
// default-config servers keep the v3 wire encoding byte-for-byte.
func (s *Server) snapshot() telemetry.Snapshot {
	sn := s.tel.Snapshot()
	if s.reg.Len() > 0 {
		ts := []telemetry.TenantStats{s.def.Stats()}
		for _, t := range s.reg.List() {
			ts = append(ts, t.Stats())
		}
		sort.Slice(ts, func(i, j int) bool { return ts[i].Name < ts[j].Name })
		sn.Tenants = ts
	}
	if s.cfg.DispatchShards > 1 {
		tens := []*tenant.Tenant{s.def}
		tens = append(tens, s.reg.List()...)
		sort.Slice(tens, func(i, j int) bool { return tens[i].Name() < tens[j].Name() })
		for _, t := range tens {
			for k, st := range t.Lane.ShardStats() {
				sn.Shards = append(sn.Shards, telemetry.ShardStats{
					Lane: t.Name(), Shard: int64(k), Tasks: st.Tasks, HighWater: st.HighWater,
				})
			}
		}
	}
	return sn
}

// teardownPools stops the fair dispatcher and closes every tenant pool —
// the shared tail of shutdown, Kill and failed Listen. Pool.Close drains
// the worker queues, so every dispatched batch is applied when it returns.
func (s *Server) teardownPools() {
	s.fair.Close()
	s.tenMu.Lock()
	s.def.Pool.Close()
	for _, t := range s.reg.List() {
		t.Pool.Close()
	}
	s.tenMu.Unlock()
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// UDPAddr returns the UDP ingest lane's bound address, or "" when the
// lane is disabled.
func (s *Server) UDPAddr() string {
	if s.udp == nil {
		return ""
	}
	return s.udp.pc.LocalAddr().String()
}

// Telemetry exposes the live counter set.
func (s *Server) Telemetry() *telemetry.Set { return s.tel }

// Engine returns the default tenant's engine. It must only be used after
// Close or Kill has returned — while the server runs, the engine is its
// alone.
func (s *Server) Engine() *query.Engine { return s.cfg.Engine }

// TenantEngine returns a tenant's engine by name (the default tenant's for
// tenant.DefaultName). Like Engine, the result must only be used after
// Close or Kill has returned.
func (s *Server) TenantEngine(name string) (*query.Engine, bool) {
	if name == tenant.DefaultName {
		return s.def.Engine(), true
	}
	t, ok := s.reg.Get(name)
	if !ok {
		return nil, false
	}
	return t.Engine(), true
}

// Tracer exposes the span ring (nil when Config.TraceSpans was zero) for
// out-of-band dumps — impserved's SIGQUIT handler reads it.
func (s *Server) Tracer() *obs.Tracer { return s.tracer }

// StatsSnapshot implements obs.AdminState: the live telemetry snapshot the
// admin endpoint's /metrics renders, tenant rows included.
func (s *Server) StatsSnapshot() telemetry.Snapshot {
	return s.snapshot()
}

// HealthReports implements obs.AdminState: the default engine's
// per-statement estimator health, read under the tenant's shared lock so
// merges and checkpoint captures never race the walk.
func (s *Server) HealthReports() []imps.HealthReport {
	s.def.Mu.RLock()
	defer s.def.Mu.RUnlock()
	return s.def.Engine().HealthReports()
}

// TraceSpans implements obs.AdminState: the current span ring contents
// (nil when tracing is disabled).
func (s *Server) TraceSpans() []obs.Span { return s.tracer.Snapshot() }

func (s *Server) acceptLoop() {
	for {
		c, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.connMu.Lock()
		if s.draining.Load() {
			s.connMu.Unlock()
			c.Close()
			continue
		}
		s.conns[c] = struct{}{}
		s.connWG.Add(1)
		s.connMu.Unlock()
		go s.serveConn(c)
	}
}

func (s *Server) dropConn(c net.Conn) {
	s.connMu.Lock()
	delete(s.conns, c)
	s.connMu.Unlock()
	c.Close()
}

// handle dispatches one control-plane request frame against the
// connection's pinned tenant and builds the response frame. Ingest frames
// never reach it — the connection reader short-circuits them through
// handleIngestFast (conn.go).
func (s *Server) handle(f proto.Frame, cs *connState) proto.Frame {
	start := time.Now()
	var resp proto.Frame
	var rpc telemetry.RPC
	switch f.Type {
	case proto.TQuery:
		rpc, resp = telemetry.RPCQuery, s.handleQuery(f, cs.tenant)
	case proto.TMerge:
		rpc, resp = telemetry.RPCMerge, s.handleMerge(f, cs.tenant)
	case proto.TStats:
		rpc, resp = telemetry.RPCStats, s.handleStats(f)
	case proto.THealth:
		rpc, resp = telemetry.RPCHealth, s.handleHealth(f, cs.tenant)
	case proto.TTrace:
		rpc, resp = telemetry.RPCTrace, s.handleTrace(f)
	case proto.TUDPAck:
		rpc, resp = telemetry.RPCUDPAck, s.handleUDPAck(f)
	case proto.TSnapshot:
		rpc, resp = telemetry.RPCSnapshot, s.handleSnapshot(f, cs.tenant)
	case proto.TBoot:
		rpc, resp = telemetry.RPCBoot, s.handleBoot(f)
	case proto.TAuth:
		rpc, resp = telemetry.RPCAuth, s.handleAuth(f, cs)
	default:
		return errorFrame(f.ID, fmt.Sprintf("unsupported request type %s", f.Type))
	}
	// One clock read serves both the latency histogram and the RPC span —
	// parented under the inbound trace context when the frame carried one.
	dur := time.Since(start)
	s.tel.Observe(rpc, dur)
	s.tracer.RecordLinked(obs.Link{Trace: f.TC.Trace, Parent: f.TC.Parent}, obs.SpanRPC, int(rpc), 0, start, dur)
	return resp
}

func errorFrame(id uint64, msg string) proto.Frame {
	return proto.Frame{Type: proto.TError, ID: id, Payload: proto.EncodeError(msg)}
}

// handleAuth pins the connection to a tenant. A session authenticates at
// most once — re-pinning mid-stream would let one connection's pipelined
// batches straddle two engines, so a second TAuth is an error. The default
// tenant may be named explicitly (token still verified when a key is set);
// connections that never send TAuth serve it implicitly, which is the
// whole backward-compatibility story.
func (s *Server) handleAuth(f proto.Frame, cs *connState) proto.Frame {
	req, err := proto.DecodeAuthReq(f.Payload)
	if err != nil {
		return errorFrame(f.ID, err.Error())
	}
	if cs.authed {
		return errorFrame(f.ID, "auth: session already pinned to a tenant")
	}
	var t *tenant.Tenant
	if req.Tenant == tenant.DefaultName {
		if !tenant.VerifyToken(s.cfg.TokenKey, req.Tenant, req.Token) {
			return errorFrame(f.ID, fmt.Sprintf("tenant %q: unknown tenant or bad token", req.Tenant))
		}
		t = s.def
	} else {
		t, err = s.reg.Authenticate(req.Tenant, req.Token)
		if err != nil {
			return errorFrame(f.ID, err.Error())
		}
	}
	cs.tenant = t
	cs.authed = true
	return proto.Frame{Type: proto.TOK, ID: f.ID}
}

// decodeBatchSlow parses an ingest payload through the general
// BinaryReader — the fallback for payloads whose header is not the
// server schema's canonical encoding, where the job is the precise
// schema-mismatch error. The fast path is decodeBatch in conn.go.
func (s *Server) decodeBatchSlow(payload []byte) ([]stream.Tuple, error) {
	br, err := stream.NewBinaryReader(bytes.NewReader(payload))
	if err != nil {
		return nil, err
	}
	got := br.Schema().Names()
	want := s.cfg.Schema.Names()
	if len(got) != len(want) {
		return nil, fmt.Errorf("batch schema has %d attributes, server schema has %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			return nil, fmt.Errorf("batch schema attribute %d is %q, server schema has %q", i, got[i], want[i])
		}
	}
	var tuples []stream.Tuple
	buf := make([]stream.Tuple, 256)
	for {
		n, err := br.NextBatch(buf)
		for i := 0; i < n; i++ {
			// NextBatch reuses the slot backing arrays; the queue outlives
			// this call, so each tuple gets its own slice (the field strings
			// are already freshly allocated per batch).
			tuples = append(tuples, append(stream.Tuple(nil), buf[i]...))
		}
		if len(tuples) > s.cfg.MaxBatchTuples {
			return nil, fmt.Errorf("batch exceeds %d tuples", s.cfg.MaxBatchTuples)
		}
		if err == io.EOF {
			return tuples, nil
		}
		if err != nil {
			return nil, err
		}
	}
}

func (s *Server) handleQuery(f proto.Frame, t *tenant.Tenant) proto.Frame {
	req, err := proto.DecodeQueryReq(f.Payload)
	if err != nil {
		return errorFrame(f.ID, err.Error())
	}
	stmts := t.Statements()
	if int(req.Stmt) >= len(stmts) {
		return errorFrame(f.ID, fmt.Sprintf("query: no statement %d (tenant has %d)", req.Stmt, len(stmts)))
	}
	// Shared lock: reads proceed against a live pool. Count takes the
	// statement's own read lock, so a serialized-class statement is read
	// between its batches; partition-safe estimators snapshot internally.
	t.Mu.RLock()
	res := proto.QueryResult{Count: stmts[req.Stmt].Count(), Tuples: t.Engine().Tuples()}
	t.Mu.RUnlock()
	return proto.Frame{Type: proto.TResult, ID: f.ID, Payload: res.Encode()}
}

func (s *Server) handleMerge(f proto.Frame, t *tenant.Tenant) proto.Frame {
	req, err := proto.DecodeMergeReq(f.Payload)
	if err != nil {
		return errorFrame(f.ID, err.Error())
	}
	stmts := t.Statements()
	if int(req.Stmt) >= len(stmts) {
		return errorFrame(f.ID, fmt.Sprintf("merge: no statement %d (tenant has %d)", req.Stmt, len(stmts)))
	}
	st := stmts[req.Stmt]
	if st.Shared() {
		return errorFrame(f.ID, fmt.Sprintf("merge: statement %d reads a shared estimator; merge into its owner", req.Stmt))
	}
	dst, ok := st.Estimator().(*core.Sketch)
	if !ok {
		return errorFrame(f.ID, fmt.Sprintf("merge: statement %d estimator (%s) does not support merging", req.Stmt, kindOf(st)))
	}
	src, err := core.UnmarshalSketch(req.Sketch)
	if err != nil {
		return errorFrame(f.ID, fmt.Sprintf("merge: %v", err))
	}
	// Exclusive on both levels: the tenant lock keeps checkpoint captures
	// and readers out, the statement lock keeps its home worker out (a
	// plain sketch is serialized-class, so its ingest runs under that
	// lock).
	mergeStart := time.Now()
	t.Mu.Lock()
	st.Exclusive(func() { err = dst.Merge(src) })
	t.Mu.Unlock()
	if err != nil {
		return errorFrame(f.ID, fmt.Sprintf("merge: %v", err))
	}
	s.tracer.Span(obs.SpanMerge, int(req.Stmt), int64(len(req.Sketch)), mergeStart)
	s.tel.AddMerge()
	return proto.Frame{Type: proto.TOK, ID: f.ID}
}

// handleSnapshot answers a state pull: the statement's estimator marshalled
// for a downstream SnapshotMerge, plus the engine's applied-tuple count at
// the capture — the offset a coordinator compares against its journal. The
// same restrictions as the merge path apply (no shared estimators, plain
// sketches only), because the reply is meant to round-trip through Merge.
func (s *Server) handleSnapshot(f proto.Frame, t *tenant.Tenant) proto.Frame {
	req, err := proto.DecodeSnapshotReq(f.Payload)
	if err != nil {
		return errorFrame(f.ID, err.Error())
	}
	stmts := t.Statements()
	if int(req.Stmt) >= len(stmts) {
		return errorFrame(f.ID, fmt.Sprintf("snapshot: no statement %d (tenant has %d)", req.Stmt, len(stmts)))
	}
	st := stmts[req.Stmt]
	if st.Shared() {
		return errorFrame(f.ID, fmt.Sprintf("snapshot: statement %d reads a shared estimator; snapshot its owner", req.Stmt))
	}
	src, ok := st.Estimator().(*core.Sketch)
	if !ok {
		return errorFrame(f.ID, fmt.Sprintf("snapshot: statement %d estimator (%s) does not support state pulls", req.Stmt, kindOf(st)))
	}
	// Exclusive on both levels, like the merge path: the tenant lock keeps
	// checkpoint captures and merges out, the statement lock keeps its home
	// worker out mid-marshal. Workers do not take the tenant lock, so the
	// tuple count is a watermark, not a fence — a caller that needs the
	// snapshot to cover everything it shipped compares Tuples against its
	// own ledger and re-pulls after the engine catches up (the coordinator
	// quiesces exactly this way before its merge fan-in).
	var blob []byte
	t.Mu.Lock()
	res := proto.SnapshotResult{Tuples: t.Engine().Tuples(), Kind: st.EstimatorKind()}
	st.Exclusive(func() { blob, err = src.MarshalBinary() })
	t.Mu.Unlock()
	if err != nil {
		return errorFrame(f.ID, fmt.Sprintf("snapshot: %v", err))
	}
	res.Sketch = blob
	return proto.Frame{Type: proto.TResult, ID: f.ID, Payload: res.Encode()}
}

// handleBoot answers with the incarnation nonce drawn at Listen.
func (s *Server) handleBoot(f proto.Frame) proto.Frame {
	return proto.Frame{Type: proto.TResult, ID: f.ID, Payload: proto.Boot{Nonce: s.boot}.Encode()}
}

func kindOf(st *query.Statement) string {
	if k := st.EstimatorKind(); k != "" {
		return k
	}
	return fmt.Sprintf("%T", st.Estimator())
}

func (s *Server) handleStats(f proto.Frame) proto.Frame {
	return proto.Frame{Type: proto.TResult, ID: f.ID, Payload: s.snapshot().Encode()}
}

// handleHealth answers with the pinned tenant's per-statement health
// reports. The shared lock keeps merges and checkpoint captures out; each
// statement's Health takes its own read lock below, the same path Query
// walks.
func (s *Server) handleHealth(f proto.Frame, t *tenant.Tenant) proto.Frame {
	t.Mu.RLock()
	payload := obs.EncodeHealth(t.Engine().HealthReports())
	t.Mu.RUnlock()
	return proto.Frame{Type: proto.TResult, ID: f.ID, Payload: payload}
}

// handleTrace answers with the span ring's current contents. No lock: the
// tracer is its own synchronization, and a disabled tracer encodes as an
// empty dump rather than an error so pollers need not know the server's
// configuration.
func (s *Server) handleTrace(f proto.Frame) proto.Frame {
	return proto.Frame{Type: proto.TResult, ID: f.ID, Payload: obs.EncodeSpans(s.tracer.Snapshot())}
}

// handleUDPAck answers a cumulative-acknowledgement poll for one UDP
// source. A server without the lane — or a source it has never heard from —
// answers with the zero watermark, so pollers need not know the server's
// configuration.
func (s *Server) handleUDPAck(f proto.Frame) proto.Frame {
	req, err := proto.DecodeUDPAckReq(f.Payload)
	if err != nil {
		return errorFrame(f.ID, err.Error())
	}
	var ack proto.UDPAck
	if s.udp != nil {
		ack = s.udp.ack(req.Source)
	}
	return proto.Frame{Type: proto.TResult, ID: f.ID, Payload: ack.Encode()}
}

// shutdown runs the shared teardown: stop accepting, stop the UDP lane,
// unblock connection readers, drain every lane through its pool, stop the
// dispatcher and the pools. The lane stops before the fair dispatcher
// closes: its reader may be blocked enqueueing, and the dispatcher keeps
// draining until every producer is gone.
func (s *Server) shutdown(grace time.Duration) {
	s.draining.Store(true)
	s.ln.Close()
	if s.udp != nil {
		s.udp.close()
	}
	s.connMu.Lock()
	deadline := time.Now().Add(grace)
	for c := range s.conns {
		c.SetReadDeadline(deadline)
	}
	s.connMu.Unlock()
	s.connWG.Wait()
	s.teardownPools() // fair.Close drains the lanes; Pool.Close applies the rest
}

// Close shuts the server down gracefully: the listener closes, connection
// readers finish their in-flight requests (within a short grace window),
// every tenant's lane is drained through its engine, and — when
// checkpointing is configured — final checkpoints are written for the
// default tenant and every named tenant. Every batch acknowledged before
// Close is applied before its tenant's final checkpoint.
func (s *Server) Close() error {
	s.closeOnce.Do(func() {
		s.shutdown(drainGrace)
		ckptStart := time.Now()
		if err := s.def.FinalCheckpoint(); err != nil {
			s.closeErr = err
		} else if s.cfg.CheckpointPath != "" {
			s.tracer.Span(obs.SpanCheckpoint, len(s.def.Statements()), s.def.Engine().Tuples(), ckptStart)
		}
		for _, t := range s.reg.List() {
			if err := t.FinalCheckpoint(); err != nil && s.closeErr == nil {
				s.closeErr = err
			}
		}
	})
	return s.closeErr
}

// Kill tears the server down abruptly — connections are cut mid-request and
// no final checkpoint is written, simulating a crash. Only previously
// written periodic checkpoints survive; the engines must be considered
// lost.
func (s *Server) Kill() {
	s.closeOnce.Do(func() {
		s.killed.Store(true)
		s.draining.Store(true)
		s.ln.Close()
		if s.udp != nil {
			s.udp.close()
		}
		s.connMu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.connMu.Unlock()
		s.connWG.Wait()
		s.teardownPools()
	})
}

var _ imps.Estimator = (*core.Sketch)(nil) // the merge path's contract
var _ obs.AdminState = (*Server)(nil)      // the admin endpoint's contract
var _ obs.TenantAdmin = (*Server)(nil)     // the admin endpoint's tenant CRUD
