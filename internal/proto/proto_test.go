package proto

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"strings"
	"testing"
	"time"
)

func TestFrameRoundTrip(t *testing.T) {
	frames := []Frame{
		{Type: TIngest, ID: 1, Payload: []byte("hello")},
		{Type: TQuery, ID: 1<<64 - 1, Payload: nil},
		{Type: TStats, ID: 0, Payload: bytes.Repeat([]byte{0xAB}, 1<<16)},
	}
	var buf bytes.Buffer
	for _, f := range frames {
		if err := WriteFrame(&buf, f); err != nil {
			t.Fatal(err)
		}
	}
	for i, want := range frames {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.Type != want.Type || got.ID != want.ID || !bytes.Equal(got.Payload, want.Payload) {
			t.Fatalf("frame %d: round trip mismatch", i)
		}
	}
	if _, err := ReadFrame(&buf); err != io.EOF {
		t.Fatalf("expected io.EOF at frame boundary, got %v", err)
	}
}

func TestReadFrameRejectsCorruption(t *testing.T) {
	enc := func(f Frame) []byte {
		b, err := AppendFrame(nil, f)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	good := enc(Frame{Type: TIngest, ID: 7, Payload: []byte("payload bytes")})

	t.Run("bit flip in payload", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		bad[len(bad)-2] ^= 0x40
		_, err := ReadFrame(bytes.NewReader(bad))
		if !errors.Is(err, ErrMalformed) || !strings.Contains(err.Error(), "checksum") {
			t.Fatalf("bit flip not detected: %v", err)
		}
	})
	t.Run("truncated body", func(t *testing.T) {
		_, err := ReadFrame(bytes.NewReader(good[:len(good)-1]))
		if !errors.Is(err, ErrMalformed) {
			t.Fatalf("truncation not detected: %v", err)
		}
	})
	t.Run("truncated length prefix", func(t *testing.T) {
		_, err := ReadFrame(bytes.NewReader(good[:2]))
		if !errors.Is(err, ErrMalformed) {
			t.Fatalf("truncated prefix not detected: %v", err)
		}
	})
	t.Run("wrong version", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		bad[4] = Version + 1
		_, err := ReadFrame(bytes.NewReader(bad))
		if !errors.Is(err, ErrMalformed) || !strings.Contains(err.Error(), "version") {
			t.Fatalf("version skew not detected: %v", err)
		}
	})
	t.Run("implausible length", func(t *testing.T) {
		bad := append([]byte(nil), good...)
		binary.LittleEndian.PutUint32(bad, MaxFrame+1)
		_, err := ReadFrame(bytes.NewReader(bad))
		if !errors.Is(err, ErrMalformed) || !strings.Contains(err.Error(), "length") {
			t.Fatalf("oversize length not detected: %v", err)
		}
		binary.LittleEndian.PutUint32(bad, headerLen-1)
		if _, err := ReadFrame(bytes.NewReader(bad)); !errors.Is(err, ErrMalformed) {
			t.Fatalf("undersize length not detected: %v", err)
		}
	})
}

func TestAppendFrameRejectsOversizePayload(t *testing.T) {
	if _, err := AppendFrame(nil, Frame{Type: TIngest, Payload: make([]byte, MaxFrame-headerLen+1)}); err == nil {
		t.Fatal("oversize payload accepted")
	}
}

func TestPayloadCodecs(t *testing.T) {
	q, err := DecodeQueryReq(QueryReq{Stmt: 3}.Encode())
	if err != nil || q.Stmt != 3 {
		t.Fatalf("query req: %+v %v", q, err)
	}
	r, err := DecodeQueryResult(QueryResult{Count: 42.5, Tuples: -1}.Encode())
	if err != nil || r.Count != 42.5 || r.Tuples != -1 {
		t.Fatalf("query result: %+v %v", r, err)
	}
	m, err := DecodeMergeReq(MergeReq{Stmt: 9, Sketch: []byte{1, 2, 3}}.Encode())
	if err != nil || m.Stmt != 9 || !bytes.Equal(m.Sketch, []byte{1, 2, 3}) {
		t.Fatalf("merge req: %+v %v", m, err)
	}
	a, err := DecodeIngestAck(IngestAck{Tuples: 1 << 40}.Encode())
	if err != nil || a.Tuples != 1<<40 {
		t.Fatalf("ingest ack: %+v %v", a, err)
	}
	b, err := DecodeBusy(Busy{RetryAfter: 250 * time.Millisecond}.Encode())
	if err != nil || b.RetryAfter != 250*time.Millisecond {
		t.Fatalf("busy: %+v %v", b, err)
	}
	msg, err := DecodeError(EncodeError("it broke"))
	if err != nil || msg != "it broke" {
		t.Fatalf("error: %q %v", msg, err)
	}
	au, err := DecodeAuthReq(AuthReq{Tenant: "acme", Token: "deadbeef"}.Encode())
	if err != nil || au.Tenant != "acme" || au.Token != "deadbeef" {
		t.Fatalf("auth req: %+v %v", au, err)
	}
	qa, err := DecodeQuota(Quota{Msg: "rate", RetryAfter: 125 * time.Millisecond}.Encode())
	if err != nil || qa.Msg != "rate" || qa.RetryAfter != 125*time.Millisecond {
		t.Fatalf("quota: %+v %v", qa, err)
	}

	// Trailing bytes poison every codec.
	if _, err := DecodeQueryReq(append(QueryReq{Stmt: 1}.Encode(), 0)); err == nil {
		t.Error("query req trailing bytes accepted")
	}
	if _, err := DecodeMergeReq([]byte{1, 2}); err == nil {
		t.Error("truncated merge req accepted")
	}
	if _, err := DecodeError(nil); err == nil {
		t.Error("empty error payload accepted")
	}
	if _, err := DecodeAuthReq(append(AuthReq{Tenant: "t"}.Encode(), 0)); err == nil {
		t.Error("auth req trailing bytes accepted")
	}
	if _, err := DecodeQuota([]byte{1}); err == nil {
		t.Error("truncated quota accepted")
	}
}

func TestTypeStrings(t *testing.T) {
	for _, tc := range []struct {
		t    Type
		want string
	}{
		{TIngest, "IngestBatch"}, {TQuery, "Query"}, {TMerge, "SnapshotMerge"},
		{TStats, "Stats"}, {TOK, "OK"}, {TResult, "Result"}, {TError, "Error"},
		{TBusy, "Busy"}, {TAuth, "Auth"}, {TQuota, "Quota"}, {Type(0xEE), "Type(0xee)"},
	} {
		if got := tc.t.String(); got != tc.want {
			t.Errorf("Type %d: %q, want %q", tc.t, got, tc.want)
		}
	}
}
