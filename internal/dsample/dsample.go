// Package dsample implements Distinct Sampling (Gibbons, VLDB 2001) — the
// hash-based distinct-value sampler the paper compares NIPS/CI against in
// §6.2 — together with its adaptation to implication counting.
//
// Distinct Sampling maintains a uniform sample of the DISTINCT values of a
// stream: a value enters the sample when the position of the least
// significant 1-bit of its hash is at least the current level l, so each
// distinct value is sampled with probability 2^−l regardless of how often
// it appears. When the sample outgrows its space budget the level rises and
// entries below it are evicted. Distinct-count queries scale the sample by
// 2^l; the implication adaptation evaluates the implication conditions
// exactly on the sampled itemsets (keeping up to t tuple records per
// sampled value, Gibbons' per-value bound) and scales the qualifying count.
// The weakness the paper demonstrates: sampled itemsets are chosen by hash
// only, so with selective conditions few of them qualify and the scaled
// estimate becomes erratic.
package dsample

import (
	"fmt"

	"implicate/internal/imps"
	"implicate/internal/xhash"
)

// Sketch is the implication-counting adaptation of Distinct Sampling. It
// implements imps.Estimator. Not safe for concurrent use.
type Sketch struct {
	cond imps.Conditions
	// size is the total entry budget (itemset entries plus pair counters),
	// matching the paper's like-for-like memory comparison (Table 5: 1920).
	size int
	// t bounds the tracked tuples per sampled value (Gibbons' bound
	// parameter; Table 5 uses t=39).
	t int

	hash    xhash.Hash
	level   int
	sample  map[string]*val
	entries int
	tuples  int64
	scratch []int64
}

type val struct {
	rank int
	supp int64
	out  bool // violated the conditions after meeting the minimum support
	// capped marks a value whose per-pair tracking hit the t bound; its
	// condition checks are then frozen (the sampler can no longer evaluate
	// them faithfully).
	capped bool
	perB   map[string]int64
}

// New returns a Distinct Sampling implication estimator with the given
// total entry budget, per-value bound t, and hash seed.
func New(cond imps.Conditions, size, t int, seed uint64) (*Sketch, error) {
	if err := cond.Validate(); err != nil {
		return nil, err
	}
	if size < 2 {
		return nil, fmt.Errorf("dsample: size %d too small", size)
	}
	if t < 1 {
		return nil, fmt.Errorf("dsample: per-value bound t=%d must be >= 1", t)
	}
	return &Sketch{
		cond:    cond,
		size:    size,
		t:       t,
		hash:    xhash.New(seed),
		sample:  make(map[string]*val),
		scratch: make([]int64, 0, 8),
	}, nil
}

// Must is New panicking on error.
func Must(cond imps.Conditions, size, t int, seed uint64) *Sketch {
	s, err := New(cond, size, t, seed)
	if err != nil {
		panic(err)
	}
	return s
}

// Add observes one tuple.
func (s *Sketch) Add(a, b string) {
	s.tuples++
	rank := xhash.Rank(s.hash.Sum(a))
	if rank < s.level {
		return
	}
	v := s.sample[a]
	if v == nil {
		v = &val{rank: rank, perB: make(map[string]int64, 1)}
		s.sample[a] = v
		s.entries++
	}
	v.supp++
	if !v.out && !v.capped {
		if cnt, seen := v.perB[b]; seen {
			v.perB[b] = cnt + 1
		} else if len(v.perB) >= s.t {
			// Gibbons' per-value budget is exhausted: condition evaluation
			// for this value is frozen.
			v.capped = true
		} else {
			v.perB[b] = 1
			s.entries++
		}
	}
	if !v.out && v.supp >= s.cond.MinSupport {
		if len(v.perB) > s.cond.MaxMultiplicity || s.topConfidence(v) < s.cond.MinTopConfidence {
			v.out = true
			s.entries -= len(v.perB)
			v.perB = nil
		}
	}
	for s.entries > s.size {
		s.raiseLevel()
	}
}

func (s *Sketch) topConfidence(v *val) float64 {
	s.scratch = s.scratch[:0]
	for _, c := range v.perB {
		s.scratch = append(s.scratch, c)
	}
	return imps.TopConfidence(s.scratch, s.cond.TopC, v.supp)
}

func (s *Sketch) raiseLevel() {
	s.level++
	for a, v := range s.sample {
		if v.rank < s.level {
			s.entries -= 1 + len(v.perB)
			delete(s.sample, a)
		}
	}
}

// scale is the inverse sampling probability 2^level.
func (s *Sketch) scale() float64 { return float64(int64(1) << uint(s.level)) }

// ImplicationCount scales the number of sampled itemsets currently
// satisfying the implication conditions.
func (s *Sketch) ImplicationCount() float64 {
	var n float64
	for _, v := range s.sample {
		if !v.out && v.supp >= s.cond.MinSupport {
			n++
		}
	}
	return n * s.scale()
}

// NonImplicationCount scales the number of sampled itemsets that violated
// the conditions after meeting the minimum support.
func (s *Sketch) NonImplicationCount() float64 {
	var n float64
	for _, v := range s.sample {
		if v.out {
			n++
		}
	}
	return n * s.scale()
}

// SupportedDistinct scales the number of sampled itemsets meeting the
// minimum support.
func (s *Sketch) SupportedDistinct() float64 {
	var n float64
	for _, v := range s.sample {
		if v.supp >= s.cond.MinSupport {
			n++
		}
	}
	return n * s.scale()
}

// AvgMultiplicity returns the mean number of distinct B-partners over the
// sampled itemsets currently satisfying the conditions (sample mean; the
// sample is hash-uniform over distinct values).
func (s *Sketch) AvgMultiplicity() float64 {
	var n, sum float64
	for _, v := range s.sample {
		if !v.out && v.supp >= s.cond.MinSupport {
			n++
			sum += float64(len(v.perB))
		}
	}
	if n == 0 {
		return 0
	}
	return sum / n
}

// DistinctCount is Gibbons' original query: the scaled sample size.
func (s *Sketch) DistinctCount() float64 {
	return float64(len(s.sample)) * s.scale()
}

// Level returns the current sampling level.
func (s *Sketch) Level() int { return s.level }

// Tuples returns the number of tuples observed.
func (s *Sketch) Tuples() int64 { return s.tuples }

// MemEntries reports live entries (itemset records plus pair counters).
func (s *Sketch) MemEntries() int { return s.entries }

var _ imps.Estimator = (*Sketch)(nil)
var _ imps.MultiplicityAverager = (*Sketch)(nil)
