package query

import (
	"math/rand"
	"reflect"
	"testing"

	"implicate/internal/imps"
	"implicate/internal/stream"
)

// TestRenderRoundTrip: a normalized query rendered by String must parse and
// normalize back to an identical query.
func TestRenderRoundTrip(t *testing.T) {
	schema := stream.MustSchema("a", "b", "c", "d", "e")
	examples := []Query{
		{A: []string{"a"}, Mode: CountDistinct, From: "s"},
		{A: []string{"a"}, B: []string{"b"}, From: "s"},
		{A: []string{"a", "b"}, B: []string{"c", "d"}, From: "s"},
		{A: []string{"a"}, B: []string{"b"}, Mode: CountNonImplications, From: "s"},
		{A: []string{"a"}, B: []string{"b"}, Mode: AvgMultiplicity, From: "s",
			Cond: imps.Conditions{MaxMultiplicity: 7}},
		{A: []string{"a"}, B: []string{"b"}, From: "s",
			Cond: imps.Conditions{MaxMultiplicity: 5, MinSupport: 50, TopC: 2, MinTopConfidence: 0.8}},
		{A: []string{"a"}, B: []string{"b"}, From: "s",
			Filters: []Filter{{Attr: "c", Value: "x"}, {Attr: "d", Value: "y", Negate: true}}},
		{A: []string{"a"}, B: []string{"b"}, From: "s", GroupBy: []string{"c"}},
		{A: []string{"a"}, B: []string{"b"}, From: "s", Window: 1000, Every: 100},
	}
	for _, q := range examples {
		if err := q.Normalize(schema); err != nil {
			t.Fatalf("normalize %+v: %v", q, err)
		}
		sql := q.String()
		back, err := Parse(sql)
		if err != nil {
			t.Errorf("rendered query does not parse: %q: %v", sql, err)
			continue
		}
		if err := back.Normalize(schema); err != nil {
			t.Errorf("rendered query does not normalize: %q: %v", sql, err)
			continue
		}
		if !reflect.DeepEqual(q, *back) {
			t.Errorf("round trip changed the query:\n  in:  %+v\n  sql: %s\n  out: %+v", q, sql, *back)
		}
	}
}

// TestRenderRoundTripRandom fuzzes the renderer with random valid queries.
func TestRenderRoundTripRandom(t *testing.T) {
	schema := stream.MustSchema("a", "b", "c", "d", "e", "f")
	rng := rand.New(rand.NewSource(42))
	attrs := []string{"a", "b", "c", "d", "e", "f"}
	for trial := 0; trial < 300; trial++ {
		perm := rng.Perm(len(attrs))
		q := Query{From: "s"}
		q.A = []string{attrs[perm[0]]}
		if rng.Intn(2) == 0 {
			q.A = append(q.A, attrs[perm[1]])
		}
		q.B = []string{attrs[perm[2]]}
		switch rng.Intn(4) {
		case 0:
			q.Mode = CountNonImplications
		case 1:
			q.Mode = AvgMultiplicity
		}
		if rng.Intn(2) == 0 {
			q.Cond = imps.Conditions{
				MaxMultiplicity:  1 + rng.Intn(9),
				MinSupport:       int64(1 + rng.Intn(100)),
				TopC:             1,
				MinTopConfidence: []float64{0.5, 0.75, 0.9, 1.0}[rng.Intn(4)],
			}
			if q.Cond.MaxMultiplicity > 2 && rng.Intn(2) == 0 {
				q.Cond.TopC = 2
			}
		}
		if rng.Intn(3) == 0 {
			q.Filters = []Filter{{Attr: attrs[perm[3]], Value: "v1", Negate: rng.Intn(2) == 0}}
		}
		if rng.Intn(3) == 0 {
			q.GroupBy = []string{attrs[perm[4]]}
		}
		if rng.Intn(3) == 0 {
			q.Window = int64(100 + rng.Intn(1000))
			q.Every = int64(1 + rng.Intn(100))
		}
		if err := q.Normalize(schema); err != nil {
			t.Fatalf("trial %d: normalize: %v (%+v)", trial, err, q)
		}
		sql := q.String()
		back, err := Parse(sql)
		if err != nil {
			t.Fatalf("trial %d: parse %q: %v", trial, sql, err)
		}
		if err := back.Normalize(schema); err != nil {
			t.Fatalf("trial %d: re-normalize %q: %v", trial, sql, err)
		}
		if !reflect.DeepEqual(q, *back) {
			t.Fatalf("trial %d: round trip changed the query:\n  in:  %+v\n  sql: %s\n  out: %+v",
				trial, q, sql, *back)
		}
	}
}

// TestAvgMultiplicityQuery evaluates Table 2's complex aggregate on the
// Table 1 stream: the average number of destinations per implicating
// source.
func TestAvgMultiplicityQuery(t *testing.T) {
	st := run(t, `
		SELECT AVG(MULTIPLICITY(Source)) FROM traffic
		WHERE Source IMPLIES Destination
		WITH MULTIPLICITY <= 10, CONFIDENCE >= 0.5 TOP 1`)
	// S1 → {D2,D3}, S2 → {D1}, S3 → {D3}: all three pass at ψ=0.5 top-1
	// (S1's top destination D3 covers 4/5), so the average multiplicity is
	// (2+1+1)/3.
	want := 4.0 / 3
	if got := st.Count(); got != want {
		t.Fatalf("avg multiplicity = %v, want %v", got, want)
	}
}

func TestAvgParserErrors(t *testing.T) {
	bad := []string{
		`SELECT AVG(MULTIPLICITY(a)) FROM s`,                       // missing WHERE
		`SELECT AVG(MULTIPLICITY(a)) FROM s WHERE a NOT IMPLIES b`, // NOT with AVG
		`SELECT AVG(COUNT(a)) FROM s WHERE a IMPLIES b`,            // wrong aggregate
		`SELECT AVG(MULTIPLICITY(a) FROM s WHERE a IMPLIES b`,      // paren
		`SELECT MAX(MULTIPLICITY(a)) FROM s WHERE a IMPLIES b`,     // unknown fn
	}
	for _, sql := range bad {
		if _, err := Parse(sql); err == nil {
			t.Errorf("accepted %q", sql)
		}
	}
}
