// Package fm implements Flajolet–Martin probabilistic counting of distinct
// elements (the zeroth frequency moment F0), the substrate the paper's
// NIPS/CI algorithm extends (§4.1.1). It provides the single-bitmap basic
// procedure and the multi-bitmap stochastic-averaging estimator (PCSA) with
// the standard bias correction and a small-cardinality correction.
package fm

import (
	"fmt"
	"math"

	"implicate/internal/xhash"
)

// Phi is the Flajolet–Martin bias-correction constant: the expected position
// R of the leftmost zero in the bitmap satisfies E[R] ≈ log2(Phi·F0).
const Phi = 0.77351

// kappa parametrizes the Scheuermann–Mauve small-range correction for PCSA:
// E ≈ (m/Phi)·(2^R̄ − 2^(−kappa·R̄)), which removes the severe upward bias of
// the raw estimator when fewer than ~10–20 elements land in each bitmap.
const kappa = 1.75

// Bitmap is the single 64-cell bitmap of the basic counting procedure of
// §4.1.1. The zero value is ready to use.
type Bitmap struct {
	bits uint64
}

// Set records an element hashed to cell i (i = p(hash(x))).
func (b *Bitmap) Set(i int) {
	if i < 0 || i > 63 {
		panic(fmt.Sprintf("fm: cell %d out of range", i))
	}
	b.bits |= 1 << uint(i)
}

// Get reports whether cell i has been set.
func (b *Bitmap) Get(i int) bool { return b.bits>>uint(i)&1 == 1 }

// R returns the position of the leftmost (least significant) zero cell, the
// estimator of log2(Phi·F0).
func (b *Bitmap) R() int {
	for i := 0; i < 64; i++ {
		if b.bits>>uint(i)&1 == 0 {
			return i
		}
	}
	return 64
}

// Estimate returns the basic single-bitmap estimate 2^R / Phi.
func (b *Bitmap) Estimate() float64 {
	return math.Exp2(float64(b.R())) / Phi
}

// Sketch is the stochastic-averaging (PCSA) F0 estimator: m bitmaps, each
// receiving a 1/m share of the distinct elements, combined through the mean
// leftmost-zero position.
type Sketch struct {
	router xhash.Router
	hash   xhash.Hash
	bms    []Bitmap
}

// NewSketch returns a Sketch over m bitmaps (a power of two) using the
// seeded hash family member.
func NewSketch(m int, seed uint64) (*Sketch, error) {
	router, err := xhash.NewRouter(m)
	if err != nil {
		return nil, err
	}
	return &Sketch{router: router, hash: xhash.New(seed), bms: make([]Bitmap, m)}, nil
}

// Add observes one element.
func (s *Sketch) Add(key string) { s.AddHash(s.hash.Sum(key)) }

// AddHash observes an element by its precomputed hash value.
func (s *Sketch) AddHash(h uint64) {
	bm, rank := s.router.Route(h)
	if rank > 63 {
		rank = 63
	}
	s.bms[bm].Set(rank)
}

// Bitmaps returns the number of bitmaps.
func (s *Sketch) Bitmaps() int { return len(s.bms) }

// MeanR returns the mean leftmost-zero position across bitmaps.
func (s *Sketch) MeanR() float64 {
	var sum int
	for i := range s.bms {
		sum += s.bms[i].R()
	}
	return float64(sum) / float64(len(s.bms))
}

// Estimate returns the bias-corrected PCSA estimate of F0, including the
// small-range correction.
func (s *Sketch) Estimate() float64 {
	return CorrectedEstimate(s.MeanR(), len(s.bms))
}

// RawEstimate returns the uncorrected PCSA estimate (m/Phi)·2^R̄, matching
// the arithmetic of the paper's Algorithm 2 scaled across bitmaps.
func (s *Sketch) RawEstimate() float64 {
	return RawEstimate(s.MeanR(), len(s.bms))
}

// RawEstimate converts a mean leftmost-zero position over m bitmaps into the
// classic PCSA cardinality estimate.
func RawEstimate(meanR float64, m int) float64 {
	return float64(m) / Phi * math.Exp2(meanR)
}

// CorrectedEstimate applies the small-range correction to the PCSA estimate.
// For large meanR the correction term vanishes and it agrees with
// RawEstimate.
func CorrectedEstimate(meanR float64, m int) float64 {
	e := float64(m) / Phi * (math.Exp2(meanR) - math.Exp2(-kappa*meanR))
	if e < 0 {
		return 0
	}
	return e
}

// StdError returns the theoretical relative standard error of a PCSA
// estimate over m bitmaps, ≈ 0.78/sqrt(m).
func StdError(m int) float64 { return 0.78 / math.Sqrt(float64(m)) }
