package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"text/tabwriter"

	"implicate"
	"implicate/internal/stream"
)

// config carries the parsed command line.
type config struct {
	sql      string
	backend  string
	interval int64
	seed     uint64
	ilcEps   float64
	dsSize   int
	dsBound  int

	checkpoint string
	every      int64
	resume     string
}

func parseFlags(args []string) (*config, []string, error) {
	fs := flag.NewFlagSet("impstat", flag.ContinueOnError)
	cfg := &config{}
	fs.StringVar(&cfg.sql, "q", "", "implication query (required unless -resume)")
	fs.StringVar(&cfg.backend, "backend", "nips", "estimator backend: nips, exact, ilc, ds, all")
	fs.Int64Var(&cfg.interval, "interval", 0, "print counts every N tuples (0: only at the end)")
	fs.Uint64Var(&cfg.seed, "seed", 1, "sketch seed")
	fs.Float64Var(&cfg.ilcEps, "ilc-eps", 0.01, "ILC approximation parameter (and relative support)")
	fs.IntVar(&cfg.dsSize, "ds-size", 1920, "Distinct Sampling entry budget")
	fs.IntVar(&cfg.dsBound, "ds-bound", 39, "Distinct Sampling per-value bound")
	fs.StringVar(&cfg.checkpoint, "checkpoint", "", "write crash-recovery checkpoints to this file")
	fs.Int64Var(&cfg.every, "every", 0, "checkpoint every N tuples (with -checkpoint; 0: only at the end)")
	fs.StringVar(&cfg.resume, "resume", "", "restore engine state from this checkpoint file and replay the stream from its offset")
	if err := fs.Parse(args); err != nil {
		return nil, nil, err
	}
	return cfg, fs.Args(), nil
}

// validate rejects flag combinations that would otherwise be silently
// ignored or fail with a confusing late error.
func (cfg *config) validate() error {
	if cfg.every < 0 {
		return fmt.Errorf("-every must be >= 0, got %d", cfg.every)
	}
	if cfg.every > 0 && cfg.checkpoint == "" {
		return fmt.Errorf("-every %d has no effect without -checkpoint; add -checkpoint FILE or drop -every", cfg.every)
	}
	if cfg.interval < 0 {
		return fmt.Errorf("-interval must be >= 0, got %d", cfg.interval)
	}
	if cfg.resume != "" {
		if cfg.sql != "" {
			return fmt.Errorf("-resume restores the queries from the checkpoint; drop -q")
		}
		if _, err := os.Stat(cfg.resume); err != nil {
			return fmt.Errorf("cannot resume: %w", err)
		}
	}
	return nil
}

// backendsFor builds the named backend factories the command line selects.
func backendsFor(cfg *config) map[string]implicate.Backend {
	return map[string]implicate.Backend{
		"nips":    implicate.SketchBackend(implicate.Options{Seed: cfg.seed}),
		"sharded": implicate.ShardedSketchBackend(implicate.Options{Seed: cfg.seed}, 0),
		"exact":   implicate.ExactBackend(),
		"ilc": func(cond implicate.Conditions) (implicate.Estimator, error) {
			return implicate.NewILC(cond, cfg.ilcEps, cfg.ilcEps)
		},
		"ds": func(cond implicate.Conditions) (implicate.Estimator, error) {
			return implicate.NewDistinctSampling(cond, cfg.dsSize, cfg.dsBound, cfg.seed+7)
		},
	}
}

// namedStmt pairs a registered statement with its report label.
type namedStmt struct {
	name string
	st   *implicate.Statement
}

// setup builds the engine — fresh from -q, or restored from -resume — and
// returns it with the statements to report and the stream offset to skip.
func setup(cfg *config, schema *stream.Schema) (*implicate.Engine, []namedStmt, int64, error) {
	factories := backendsFor(cfg)

	if cfg.resume != "" {
		if cfg.sql != "" {
			return nil, nil, 0, fmt.Errorf("-resume restores the queries from the checkpoint; drop -q")
		}
		snap, err := implicate.ReadCheckpoint(cfg.resume)
		if err != nil {
			return nil, nil, 0, err
		}
		resolve := func(q implicate.Query, kind string) (implicate.Backend, error) {
			b, ok := factories[kind]
			if !ok {
				return nil, fmt.Errorf("checkpoint needs a %q backend, which impstat cannot build", kind)
			}
			return b, nil
		}
		eng, err := implicate.RestoreCheckpoint(snap, schema, resolve)
		if err != nil {
			return nil, nil, 0, err
		}
		var stmts []namedStmt
		for _, st := range eng.Statements() {
			stmts = append(stmts, namedStmt{name: st.EstimatorKind(), st: st})
		}
		return eng, stmts, snap.Offset, nil
	}

	if cfg.sql == "" {
		return nil, nil, 0, fmt.Errorf("missing -q query")
	}
	order := []string{"nips", "exact", "ilc", "ds"}
	eng := implicate.NewEngine(schema)
	var stmts []namedStmt
	for _, name := range order {
		if cfg.backend != name && cfg.backend != "all" {
			continue
		}
		st, err := eng.RegisterSQL(cfg.sql, factories[name])
		if err != nil {
			return nil, nil, 0, err
		}
		stmts = append(stmts, namedStmt{name: name, st: st})
	}
	if len(stmts) == 0 {
		return nil, nil, 0, fmt.Errorf("unknown backend %q", cfg.backend)
	}
	return eng, stmts, 0, nil
}

// run executes the query over the stream and writes reports to out.
func run(cfg *config, in io.Reader, out io.Writer) error {
	r, schema, err := stream.OpenReader(in)
	if err != nil {
		return err
	}

	eng, stmts, offset, err := setup(cfg, schema)
	if err != nil {
		return err
	}
	tuples := offset
	if offset > 0 {
		res, ok := r.(stream.Resumable)
		if !ok {
			return fmt.Errorf("stream source cannot seek to checkpoint offset %d", offset)
		}
		if err := res.SkipTuples(offset); err != nil {
			return fmt.Errorf("replaying to checkpoint offset: %w", err)
		}
	}

	periodic := &implicate.PeriodicCheckpoint{Path: cfg.checkpoint, Every: cfg.every}
	if cfg.checkpoint == "" {
		periodic.Every = 0
	}
	periodic.SkipTo(offset)
	checkpointMaybe := func() error {
		_, err := periodic.Maybe(eng, tuples)
		return err
	}

	report := func() {
		tw := tabwriter.NewWriter(out, 2, 4, 2, ' ', 0)
		fmt.Fprintf(tw, "tuples=%d", tuples)
		for _, ns := range stmts {
			fmt.Fprintf(tw, "\t%s=%.1f (mem %d)", ns.name, ns.st.Count(), ns.st.Estimator().MemEntries())
		}
		fmt.Fprintln(tw)
		tw.Flush()
	}

	finish := func() error {
		report()
		if cfg.checkpoint != "" {
			snap, err := implicate.CaptureCheckpoint(eng, tuples)
			if err != nil {
				return err
			}
			return implicate.WriteCheckpoint(cfg.checkpoint, snap)
		}
		return nil
	}

	if bs, ok := r.(stream.BatchSource); ok {
		// Binary inputs decode in batches: one string allocation per record
		// and one engine dispatch per batch instead of per tuple. Batches are
		// clipped to the reporting interval so -interval output is unchanged,
		// and to the checkpoint interval so -every is honored exactly.
		batch := make([]stream.Tuple, 256)
		for {
			want := int64(len(batch))
			if cfg.interval > 0 {
				if rem := cfg.interval - tuples%cfg.interval; rem < want {
					want = rem
				}
			}
			if cfg.every > 0 {
				if rem := cfg.every - tuples%cfg.every; rem < want {
					want = rem
				}
			}
			n, err := bs.NextBatch(batch[:want])
			if n > 0 {
				eng.ProcessBatch(batch[:n])
				tuples += int64(n)
				if cfg.interval > 0 && tuples%cfg.interval == 0 {
					report()
				}
				if err := checkpointMaybe(); err != nil {
					return err
				}
			}
			if err == io.EOF {
				break
			}
			if err != nil {
				return err
			}
		}
		return finish()
	}
	for {
		t, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		eng.Process(t)
		tuples++
		if cfg.interval > 0 && tuples%cfg.interval == 0 {
			report()
		}
		if err := checkpointMaybe(); err != nil {
			return err
		}
	}
	return finish()
}
