package query

import (
	"fmt"
	"io"
	"reflect"
	"sync"
	"sync/atomic"

	"implicate/internal/imps"
	"implicate/internal/stream"
	"implicate/internal/window"
)

// Backend constructs a fresh estimator for the given implication
// conditions — the pluggable choice between the NIPS/CI sketch, the exact
// counter, and the baselines.
type Backend func(cond imps.Conditions) (imps.Estimator, error)

// Statement is a query compiled against a schema and bound to an
// estimator; feed it tuples and read counts at any time.
//
// Every statement belongs to one of two concurrency classes (DESIGN.md
// §10). Partition-safe statements (PartitionSafe reports true) are bound to
// an estimator implementing imps.PartitionedAdder: their ingest may be
// split across concurrent workers along the estimator's own partitions via
// PlanPartitions/ProcessPairs, and reads are safe at any time. Serialized
// statements — plain sketches, the baselines, sliding windows — must be fed
// through ProcessBatchExclusive (or the single-writer Process/ProcessBatch
// paths), which serializes writers and readers on the statement's own lock.
type Statement struct {
	query   Query
	projA   stream.Proj
	projB   stream.Proj
	hasB    bool
	filters []compiledFilter
	est     imps.Estimator
	// bytes is est's allocation-free byte-key ingest path, nil when the
	// estimator does not provide one; cached here so the per-tuple path pays
	// no interface assertion.
	bytes imps.BytesAdder
	// part is est's partitioned concurrent ingest path, nil for the
	// serialized class.
	part imps.PartitionedAdder
	// partStr is est's string-key partition routing, nil when part is nil
	// or the estimator routes bytes only.
	partStr imps.StringPartitioner
	// hashed is est's hash-forwarding ingest path (plan-time key hashing,
	// hash-routed apply), nil when the estimator cannot consume forwarded
	// hashes.
	hashed imps.HashedPartitionedAdder
	// estMu guards the estimator for the serialized class: exclusive for
	// writers (ProcessBatchExclusive, Exclusive), shared for readers
	// (Count). Statements aliasing one estimator alias its lock too.
	// Partition-safe estimators synchronize internally, so their ingest
	// never takes it; their readers still acquire it shared, which is then
	// uncontended.
	estMu *sync.RWMutex
	// shared marks a statement aliasing another statement's estimator; the
	// engine feeds each estimator exactly once per tuple.
	shared bool

	bufA, bufB []byte
}

type compiledFilter struct {
	idx    int
	value  string
	negate bool
}

// Compile validates and normalizes q against the schema and binds it to an
// estimator from the backend. Compound queries (GROUP BY) extend the
// counted itemset with the grouping attributes; windowed queries wrap the
// backend in a sliding-origin vector (§3.2).
func Compile(q Query, schema *stream.Schema, backend Backend) (*Statement, error) {
	if backend == nil {
		return nil, fmt.Errorf("query: nil backend")
	}
	if err := q.Normalize(schema); err != nil {
		return nil, err
	}
	probe, err := backend(q.Cond)
	if err != nil {
		return nil, err
	}
	if err := validateMode(q, probe); err != nil {
		return nil, err
	}
	return compileWith(q, schema, backend, probe)
}

// validateMode checks the query's read mode against a leaf estimator the
// backend produced. The check runs against the leaf — never against a
// sliding-window wrapper, whose own AvgMultiplicity method would satisfy
// the interface regardless of what its slot estimators can answer.
func validateMode(q Query, leaf imps.Estimator) error {
	if q.Mode != AvgMultiplicity {
		return nil
	}
	if _, ok := leaf.(imps.MultiplicityAverager); !ok {
		return fmt.Errorf("query: the chosen backend cannot answer AVG(MULTIPLICITY(...))")
	}
	return nil
}

// newShell builds the estimator-independent part of a statement: the
// projections and compiled filters for an already normalized query.
func newShell(q Query, schema *stream.Schema) (*Statement, error) {
	st := &Statement{query: q, estMu: &sync.RWMutex{}}
	aAttrs := append(append([]string(nil), q.A...), q.GroupBy...)
	var err error
	if st.projA, err = schema.Proj(aAttrs...); err != nil {
		return nil, err
	}
	if len(q.B) > 0 {
		if st.projB, err = schema.Proj(q.B...); err != nil {
			return nil, err
		}
		st.hasB = true
	}
	for _, f := range q.Filters {
		idx, _ := schema.Index(f.Attr)
		st.filters = append(st.filters, compiledFilter{idx: idx, value: f.Value, negate: f.Negate})
	}
	return st, nil
}

// compileWith finishes compiling an already normalized and mode-validated
// query. probe is a fresh estimator from backend: unwindowed statements
// bind it directly; windowed statements discard it and let the sliding
// vector construct its slot estimators from the factory.
func compileWith(q Query, schema *stream.Schema, backend Backend, probe imps.Estimator) (*Statement, error) {
	st, err := newShell(q, schema)
	if err != nil {
		return nil, err
	}
	if q.Window > 0 {
		sliding, err := window.NewSliding(q.Window, q.Every, func() imps.Estimator {
			e, err := backend(q.Cond)
			if err != nil {
				panic(fmt.Sprintf("query: estimator backend failed after validation: %v", err))
			}
			return e
		})
		if err != nil {
			return nil, err
		}
		st.bindEstimator(sliding)
	} else {
		st.bindEstimator(probe)
	}
	return st, nil
}

// bindEstimator wires est into the statement, caching its optional fast
// paths (byte-key ingest, partitioned ingest) so the per-tuple paths pay no
// interface assertions. Every place a statement receives an estimator —
// compilation, alias registration, checkpoint restore — goes through here.
func (st *Statement) bindEstimator(est imps.Estimator) {
	st.est = est
	st.bytes, _ = est.(imps.BytesAdder)
	st.part, _ = est.(imps.PartitionedAdder)
	st.partStr = nil
	st.hashed = nil
	if st.part != nil {
		st.partStr, _ = est.(imps.StringPartitioner)
		st.hashed, _ = est.(imps.HashedPartitionedAdder)
	}
}

// Query returns the normalized query.
func (st *Statement) Query() Query { return st.query }

// Estimator exposes the bound estimator.
func (st *Statement) Estimator() imps.Estimator { return st.est }

// Process feeds one tuple through the statement's filters and projections.
// Estimators exposing the byte-key path ingest straight from the projection
// buffers; the others cost two key-string allocations per tuple.
func (st *Statement) Process(t stream.Tuple) {
	for _, f := range st.filters {
		if (t[f.idx] == f.value) == f.negate {
			return
		}
	}
	st.bufA = st.projA.AppendKey(st.bufA[:0], t)
	if st.hasB {
		st.bufB = st.projB.AppendKey(st.bufB[:0], t)
	} else {
		st.bufB = st.bufB[:0]
	}
	if st.bytes != nil {
		st.bytes.AddBytes(st.bufA, st.bufB)
		return
	}
	st.est.Add(string(st.bufA), string(st.bufB))
}

// ProcessBatch feeds a batch of tuples through the statement. Equivalent to
// calling Process per tuple, with the statement's filters, projections and
// estimator kept hot across the whole batch.
func (st *Statement) ProcessBatch(ts []stream.Tuple) {
	for i := range ts {
		st.Process(ts[i])
	}
}

// PartitionSafe reports the statement's concurrency class: true when its
// estimator accepts partitioned concurrent ingest (PlanPartitions /
// ProcessPairs), false when ingest must be serialized through
// ProcessBatchExclusive.
func (st *Statement) PartitionSafe() bool { return st.part != nil }

// PlanPartitions runs the statement's filters and projections over a batch
// and splits the surviving pairs into parts buckets along the estimator's
// own ingest partitions (parts must be a power of two >= 1). buckets is
// recycled when it has the capacity; the returned slice has length parts.
//
// Planning touches no statement or estimator state — it is safe to call
// concurrently from any number of goroutines, unlike Process/ProcessBatch —
// so batch planning can run on connection readers while workers apply
// earlier batches. Feeding every bucket p through ProcessPairs such that
// each bucket's pair order is preserved reproduces the serial
// ProcessBatch state bit for bit; buckets of different batches may be
// applied concurrently as long as same-partition buckets stay ordered.
// Only valid for partition-safe statements.
func (st *Statement) PlanPartitions(ts []stream.Tuple, parts int, buckets [][]imps.Pair) [][]imps.Pair {
	if cap(buckets) >= parts {
		buckets = buckets[:parts]
		for i := range buckets {
			buckets[i] = buckets[i][:0]
		}
	} else {
		buckets = make([][]imps.Pair, parts)
	}
	// One-attribute projections need no key assembly — the key IS the
	// tuple's value — so when the estimator also routes string keys, the
	// loop allocates nothing: pairs reference the batch's own strings.
	// (Estimators that store keys clone them on first insert, so a stored
	// key never pins its batch buffer; see exact.Counter.Add.)
	aIdx, aOne := st.projA.Single()
	bIdx, bOne := -1, true
	if st.hasB {
		bIdx, bOne = st.projB.Single()
	}
	fast := aOne && bOne && st.partStr != nil
	// Local key buffers: st.bufA/bufB belong to the single-writer paths and
	// must not be shared by concurrent planners.
	var bufA, bufB []byte
	for i := range ts {
		t := ts[i]
		ok := true
		for _, f := range st.filters {
			if (t[f.idx] == f.value) == f.negate {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		if fast {
			a := t[aIdx]
			var b string
			if st.hasB {
				b = t[bIdx]
			}
			p := st.partStr.IngestPartitionString(a, parts)
			buckets[p] = append(buckets[p], imps.Pair{A: a, B: b})
			continue
		}
		bufA = st.projA.AppendKey(bufA[:0], t)
		if st.hasB {
			bufB = st.projB.AppendKey(bufB[:0], t)
		} else {
			bufB = bufB[:0]
		}
		p := st.part.IngestPartition(bufA, parts)
		buckets[p] = append(buckets[p], imps.Pair{A: string(bufA), B: string(bufB)})
	}
	return buckets
}

// ProcessPairs feeds one planned partition bucket to the estimator. Safe
// for concurrent use across distinct partitions (the partition contract);
// only valid for partition-safe statements.
func (st *Statement) ProcessPairs(pairs []imps.Pair) {
	st.part.AddBatch(pairs)
}

// HashedPartitionSafe reports whether the statement's estimator accepts the
// hash-once plan IR (PlanPartitionsHashed / ProcessHashedPairs): the
// planner computes the estimator's own key hashes once and the apply path
// consumes them instead of re-hashing.
func (st *Statement) HashedPartitionSafe() bool { return st.hashed != nil }

// PlanPartitionsHashed is PlanPartitions emitting the hash-once IR: every
// surviving pair carries the estimator's own key hashes, computed here so
// the apply path (ProcessHashedPairs) never hashes again. Bucketing is
// bit-identical to PlanPartitions — IngestPartitionHashed over a
// HashPairKeys hash equals IngestPartitionString by contract — and so is
// the resulting estimator state. Pure like PlanPartitions; only valid when
// HashedPartitionSafe reports true.
func (st *Statement) PlanPartitionsHashed(ts []stream.Tuple, parts int, buckets [][]imps.HashedPair) [][]imps.HashedPair {
	if cap(buckets) >= parts {
		buckets = buckets[:parts]
		for i := range buckets {
			buckets[i] = buckets[i][:0]
		}
	} else {
		buckets = make([][]imps.HashedPair, parts)
	}
	aIdx, aOne := st.projA.Single()
	bIdx, bOne := -1, true
	if st.hasB {
		bIdx, bOne = st.projB.Single()
	}
	fast := aOne && bOne
	var bufA, bufB []byte
	for i := range ts {
		t := ts[i]
		ok := true
		for _, f := range st.filters {
			if (t[f.idx] == f.value) == f.negate {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		var a, b string
		if fast {
			// Single-attribute projections: the key IS the tuple's value, so
			// the pair references the batch's own strings and the loop
			// allocates nothing (estimators clone any key they retain).
			a = t[aIdx]
			if st.hasB {
				b = t[bIdx]
			}
		} else {
			bufA = st.projA.AppendKey(bufA[:0], t)
			if st.hasB {
				bufB = st.projB.AppendKey(bufB[:0], t)
			} else {
				bufB = bufB[:0]
			}
			a, b = string(bufA), string(bufB)
		}
		ah, bh := st.hashed.HashPairKeys(a, b)
		p := st.hashed.IngestPartitionHashed(ah, parts)
		buckets[p] = append(buckets[p], imps.HashedPair{A: a, B: b, AH: ah, BH: bh})
	}
	return buckets
}

// ProcessHashedPairs feeds one hash-once planned bucket to the estimator.
// Same concurrency contract as ProcessPairs; only valid when
// HashedPartitionSafe reports true.
func (st *Statement) ProcessHashedPairs(pairs []imps.HashedPair) {
	st.hashed.AddHashedPairs(pairs)
}

// ProcessBatchExclusive feeds a batch through the statement under its
// exclusive lock — the serialized-class ingest path, which excludes
// concurrent Count readers and Exclusive sections for the duration.
func (st *Statement) ProcessBatchExclusive(ts []stream.Tuple) {
	st.estMu.Lock()
	st.ProcessBatch(ts)
	st.estMu.Unlock()
}

// Exclusive runs f while holding the statement's exclusive lock, blocking
// serialized-class ingest and Count readers. Callers mutating the bound
// estimator from outside the ingest path (snapshot merges) use this to
// coordinate with a concurrent pipeline.
func (st *Statement) Exclusive(f func()) {
	st.estMu.Lock()
	defer st.estMu.Unlock()
	f()
}

// Count returns the query's answer under its mode. It acquires the
// statement's lock shared, so it may run at any time against a live
// pipeline: serialized-class writers hold the lock exclusively, and
// partition-safe estimators synchronize reads internally.
func (st *Statement) Count() float64 {
	st.estMu.RLock()
	defer st.estMu.RUnlock()
	return st.count()
}

func (st *Statement) count() float64 {
	switch st.query.Mode {
	case CountNonImplications:
		return st.est.NonImplicationCount()
	case CountSupported:
		return st.est.SupportedDistinct()
	case CountDistinct:
		// With the defaulted exact one-to-one conditions and a constant B
		// key, every itemset trivially implies; the supported count at
		// τ=1 is the distinct count.
		return st.est.SupportedDistinct()
	case AvgMultiplicity:
		// Compile guarantees the estimator supports the aggregate.
		return st.est.(imps.MultiplicityAverager).AvgMultiplicity()
	default:
		return st.est.ImplicationCount()
	}
}

// Engine runs any number of compiled statements over one tuple stream.
// Statements registered through the same engine share estimators when they
// differ only in what they read off it: the implication count, the
// complement, the supported count and the average multiplicity of one
// (A, B, conditions, filters, window) combination all come from a single
// sketch, so asking all four costs one.
type Engine struct {
	schema *stream.Schema
	stmts  []*Statement
	shared map[string]*Statement
	// tuples is atomic so a concurrent pipeline's workers can publish
	// applied-batch totals while readers poll Tuples.
	tuples atomic.Int64
}

// NewEngine returns an engine bound to the schema.
func NewEngine(schema *stream.Schema) *Engine {
	return &Engine{schema: schema, shared: make(map[string]*Statement)}
}

// shareKey canonicalizes everything about a query except its mode, tied to
// the backend's identity. The identity has two parts: the backend function's
// code pointer AND the configuration fingerprint of an estimator it built
// for these conditions. The code pointer alone is NOT an identity — every
// closure returned by one factory function shares it, so two backends built
// from the same factory with different options would collide and silently
// alias one estimator. The fingerprint is what tells them apart; the code
// pointer is kept so distinct backend functions never share even when their
// configurations coincide.
//
// Statements share only when the probe estimator declares a fingerprint at
// all; an estimator the engine cannot identify is never aliased. The second
// return reports whether the statement may share.
func shareKey(q Query, backend Backend, probe imps.Estimator) (string, bool) {
	if q.Mode == CountDistinct {
		// Distinct counts rewrite the predicate; they never alias an
		// implication estimator.
		return "", false
	}
	fp, ok := probe.(imps.ConfigFingerprinter)
	if !ok {
		return "", false
	}
	mode := q.Mode
	if mode == AvgMultiplicity || mode == CountNonImplications || mode == CountSupported {
		mode = CountImplications
	}
	k := q
	k.Mode = mode
	return fmt.Sprintf("%d|%s|%s", reflect.ValueOf(backend).Pointer(), fp.ConfigFingerprint(), k.String()), true
}

// Register compiles and adds a query; the returned statement can be read at
// any time. Queries over the same predicate registered with the same
// backend share one estimator.
//
// Every registration runs the full validation pipeline — normalization, a
// probe construction from the backend, and the mode check against that
// probe — whether or not it ends up sharing. A registration that would be
// rejected fresh is also rejected when an estimator it could alias happens
// to exist.
func (e *Engine) Register(q Query, backend Backend) (*Statement, error) {
	if backend == nil {
		return nil, fmt.Errorf("query: nil backend")
	}
	if err := q.Normalize(e.schema); err != nil {
		return nil, err
	}
	probe, err := backend(q.Cond)
	if err != nil {
		return nil, err
	}
	if err := validateMode(q, probe); err != nil {
		return nil, err
	}
	key, shareable := shareKey(q, backend, probe)
	if shareable {
		if prev, ok := e.shared[key]; ok {
			st, err := newShell(q, e.schema)
			if err != nil {
				return nil, err
			}
			st.bindEstimator(prev.est)
			// Aliasing statements share the owner's lock: an exclusive
			// writer on the owner excludes readers of every alias.
			st.estMu = prev.estMu
			st.shared = true
			e.stmts = append(e.stmts, st)
			return st, nil
		}
	}
	st, err := compileWith(q, e.schema, backend, probe)
	if err != nil {
		return nil, err
	}
	e.stmts = append(e.stmts, st)
	if shareable {
		e.shared[key] = st
	}
	return st, nil
}

// RegisterSQL parses, compiles and adds a query in the SQL-like dialect.
func (e *Engine) RegisterSQL(sql string, backend Backend) (*Statement, error) {
	q, err := Parse(sql)
	if err != nil {
		return nil, err
	}
	return e.Register(*q, backend)
}

// Process feeds one tuple to every registered statement, feeding each
// shared estimator exactly once.
func (e *Engine) Process(t stream.Tuple) {
	e.tuples.Add(1)
	for _, st := range e.stmts {
		if st.shared {
			continue
		}
		st.Process(t)
	}
}

// ProcessBatch feeds a batch of tuples to every registered statement,
// feeding each shared estimator exactly once per tuple. Equivalent to
// calling Process per tuple; each statement runs the whole batch before the
// next one starts, so its projections and estimator stay cache-hot.
func (e *Engine) ProcessBatch(ts []stream.Tuple) {
	e.tuples.Add(int64(len(ts)))
	for _, st := range e.stmts {
		if st.shared {
			continue
		}
		st.ProcessBatch(ts)
	}
}

// Consume drains a source through the engine and returns the tuple count.
// Sources that support batched decoding (stream.BatchSource) are drained in
// batches of 256 tuples, amortizing decode and dispatch overhead.
func (e *Engine) Consume(src stream.Source) (int64, error) {
	bs, ok := src.(stream.BatchSource)
	if !ok {
		return stream.Each(src, func(t stream.Tuple) error {
			e.Process(t)
			return nil
		})
	}
	var total int64
	batch := make([]stream.Tuple, 256)
	for {
		n, err := bs.NextBatch(batch)
		if n > 0 {
			e.ProcessBatch(batch[:n])
			total += int64(n)
		}
		if err == io.EOF {
			return total, nil
		}
		if err != nil {
			return total, err
		}
	}
}

// Tuples returns the number of tuples processed.
func (e *Engine) Tuples() int64 { return e.tuples.Load() }

// AddTuples publishes n applied tuples to the engine's total. The pipeline
// layer feeds statements directly (planned partitions bypass
// Process/ProcessBatch) and accounts for each batch here once it is fully
// applied, so Tuples never runs ahead of estimator state.
func (e *Engine) AddTuples(n int64) { e.tuples.Add(n) }

// Statements returns the registered statements in registration order.
func (e *Engine) Statements() []*Statement { return append([]*Statement(nil), e.stmts...) }
