// Package proto is the wire protocol of the serving layer: length-prefixed
// binary frames over TCP carrying the RPCs of the ingest/query server
// (IngestBatch, Query, SnapshotMerge, Stats, Health, Trace) and their
// responses.
//
// Frame layout (all integers little-endian):
//
//	u32  frame length       (bytes after this field; headerLen..MaxFrame)
//	u8   protocol version   (Version, optionally | FlagTraced)
//	u8   message type       (Type)
//	u64  request id         (echoed verbatim in the response frame)
//	u32  CRC-32C            (over the payload region, trace context included)
//	u64  trace id           (only when FlagTraced is set)
//	u64  parent span id     (only when FlagTraced is set)
//	...  payload
//
// The request id lets clients pipeline: many requests may be in flight on
// one connection and responses are matched by id, not order. The CRC tags
// every payload so a flipped bit on the wire is a detected protocol error,
// never a silently wrong count — the same "no answer over a wrong answer"
// stance the checkpoint files take. Payload encodings reuse internal/wire,
// so every length field is validated before it sizes an allocation.
//
// A decoder that sees a malformed frame cannot resynchronize (the stream
// position is ambiguous); callers must drop the connection. ReadFrame
// returns ErrMalformed wrapped with the reason for exactly that purpose.
package proto

import (
	"crypto/rand"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"time"

	"implicate/internal/wire"
)

// Version is the protocol version carried in every frame. Both ends reject
// frames with any other version: guessing at an unknown layout risks
// misparsing lengths and reading garbage as counts.
const Version = 1

// FlagTraced is OR'd into the version byte of a frame that carries a
// TraceContext: sixteen extra bytes (trace id, parent span id) at the start
// of the payload region, covered by the frame CRC like everything else.
// Untraced frames are byte-identical to the pre-trace protocol, which is
// the whole compatibility story: a peer that never stamps context emits
// frames an old peer parses unchanged, and a trace-unaware peer that
// receives a flagged frame rejects the version byte outright instead of
// misreading the context as payload. Context is therefore only stamped
// when tracing is armed on the sending side.
const FlagTraced = 0x80

// traceContextLen is the encoded TraceContext size: two u64s.
const traceContextLen = 16

// TraceContext identifies the position of a request in a distributed
// trace: the trace id names the end-to-end operation, the parent span id
// names the span on the sending node under which the receiver should
// parent its own spans. The zero value means "no context" — the receiver
// treats the request as a trace root.
type TraceContext struct {
	Trace  uint64
	Parent uint64
}

// Valid reports whether the context carries a trace (a zero trace id is
// the absent context, never stamped on the wire).
func (tc TraceContext) Valid() bool { return tc.Trace != 0 }

// MaxFrame bounds the length field: frames claiming more are rejected
// before any allocation. 64 MiB comfortably fits the largest ingest batch
// or marshalled sketch while keeping a corrupt length harmless.
const MaxFrame = 1 << 26

// headerLen is the framed byte count excluding the length prefix and the
// payload: version, type, request id, CRC.
const headerLen = 1 + 1 + 8 + 4

// Type identifies a message. Requests use the low range, responses 0x10+.
type Type uint8

const (
	// TIngest carries a binary-encoded tuple batch (the stream package's
	// IMPB format, header included) to be fed through the server's engine.
	TIngest Type = 0x01
	// TQuery asks for the current answer of one registered statement.
	TQuery Type = 0x02
	// TMerge ships a marshalled sketch to be merged into a statement's
	// estimator — the upstream hop of the paper's §2 aggregation tree.
	TMerge Type = 0x03
	// TStats asks for the server's telemetry snapshot.
	TStats Type = 0x04
	// THealth asks for the engine's per-statement estimator health reports
	// (the obs package's IMPH encoding).
	THealth Type = 0x05
	// TTrace asks for a dump of the server's span ring (the obs package's
	// IMPS encoding); an untraced server answers with an empty dump.
	TTrace Type = 0x06
	// TUDPAck asks for the cumulative state of one UDP ingest source: the
	// datagram lane's acknowledgements travel over the TCP control
	// connection as ordinary request/response polls, so the request/reply
	// protocol stays strictly client-initiated.
	TUDPAck Type = 0x07
	// TSnapshot asks for one statement's marshalled estimator state — the
	// pull direction of the §2 aggregation tree, which a coordinator uses
	// to fan a merge in from its leaves (coord.go).
	TSnapshot Type = 0x08
	// TCluster asks a coordinator for its membership view: per-leaf
	// liveness, recovery epochs and journal offsets. Leaf servers do not
	// answer it.
	TCluster Type = 0x09
	// TBoot asks for the server's boot nonce: a random value drawn once per
	// process start. A connection's nonce identifies the server incarnation
	// behind it for the connection's whole life (a restart necessarily drops
	// the connection), which is what lets stateful feeders fence their sends
	// against a server that silently restarted from an older checkpoint —
	// see client.IngestFenced.
	TBoot Type = 0x0a
	// TAuth establishes a tenant session: the payload names a tenant and
	// carries its HMAC connect-token, and a TOK reply pins the connection to
	// that tenant for its remaining life — every later request on the
	// connection reads and writes that tenant's engine. A connection that
	// never sends TAuth serves the default tenant, which is how servers
	// without configured tenants stay wire-compatible with older clients.
	// A pinned connection rejects a second TAuth (sessions do not migrate).
	TAuth Type = 0x0b

	// TOK acknowledges an ingest or merge; ingest acks carry the accepted
	// tuple count.
	TOK Type = 0x10
	// TResult carries a query or stats response payload.
	TResult Type = 0x11
	// TError carries a request-level failure message. The connection
	// remains usable.
	TError Type = 0x12
	// TBusy is the explicit backpressure reply: the ingest queue is full
	// and the batch was NOT enqueued. The payload suggests a retry delay.
	// Every rejected batch is reported this way — the server never drops
	// an acknowledged batch and never silently drops an unacknowledged one.
	TBusy Type = 0x13
	// TQuota is the admission-control refusal: the batch would exceed the
	// connection's tenant quota (ingest rate or memory budget) and was NOT
	// enqueued — no partial state was created. Unlike TBusy, which signals a
	// transient full queue, TQuota signals a policy limit: the payload names
	// the quota hit and hints when capacity may return. Neighbour tenants
	// are unaffected, which is the reply's whole point.
	TQuota Type = 0x14
)

// String names the message type for error reports.
func (t Type) String() string {
	switch t {
	case TIngest:
		return "IngestBatch"
	case TQuery:
		return "Query"
	case TMerge:
		return "SnapshotMerge"
	case TStats:
		return "Stats"
	case THealth:
		return "Health"
	case TTrace:
		return "Trace"
	case TUDPAck:
		return "UDPAck"
	case TSnapshot:
		return "Snapshot"
	case TCluster:
		return "Cluster"
	case TBoot:
		return "Boot"
	case TAuth:
		return "Auth"
	case TOK:
		return "OK"
	case TResult:
		return "Result"
	case TError:
		return "Error"
	case TBusy:
		return "Busy"
	case TQuota:
		return "Quota"
	}
	return fmt.Sprintf("Type(0x%02x)", uint8(t))
}

// ErrMalformed is returned for any frame that cannot be proven intact:
// truncated, oversized, version-skewed, or failing its checksum. The
// connection it arrived on must be dropped.
var ErrMalformed = errors.New("proto: malformed frame")

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Frame is one decoded message. TC is the trace context the frame carried
// (zero when the frame was untraced); Payload never includes the encoded
// context bytes.
type Frame struct {
	Type    Type
	ID      uint64
	TC      TraceContext
	Payload []byte
}

// AppendFrame appends the encoded frame to dst and returns the extended
// slice. A valid f.TC sets FlagTraced on the version byte and prefixes the
// payload region with the encoded context.
func AppendFrame(dst []byte, f Frame) ([]byte, error) {
	ver, extra := byte(Version), 0
	if f.TC.Valid() {
		ver |= FlagTraced
		extra = traceContextLen
	}
	if len(f.Payload) > MaxFrame-headerLen-extra {
		return dst, fmt.Errorf("proto: payload of %d bytes exceeds the %d-byte frame limit", len(f.Payload), MaxFrame)
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(headerLen+extra+len(f.Payload)))
	dst = append(dst, ver, uint8(f.Type))
	dst = binary.LittleEndian.AppendUint64(dst, f.ID)
	if extra == 0 {
		dst = binary.LittleEndian.AppendUint32(dst, crc32.Checksum(f.Payload, castagnoli))
		return append(dst, f.Payload...), nil
	}
	var tcb [traceContextLen]byte
	binary.LittleEndian.PutUint64(tcb[0:], f.TC.Trace)
	binary.LittleEndian.PutUint64(tcb[8:], f.TC.Parent)
	sum := crc32.Checksum(tcb[:], castagnoli)
	sum = crc32.Update(sum, castagnoli, f.Payload)
	dst = binary.LittleEndian.AppendUint32(dst, sum)
	dst = append(dst, tcb[:]...)
	return append(dst, f.Payload...), nil
}

// WriteFrame encodes f and writes it with a single Write call, so frames
// from one goroutine never interleave on the connection.
func WriteFrame(w io.Writer, f Frame) error {
	buf, err := AppendFrame(make([]byte, 0, 4+headerLen+len(f.Payload)), f)
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}

// ReadFrame reads and validates one frame. Any failure other than a clean
// io.EOF at a frame boundary means the stream is unusable; io.EOF mid-frame
// is reported as an unexpected EOF wrapping ErrMalformed.
//
// ReadFrame reads exactly the frame's bytes from r (no readahead) and the
// returned payload is freshly allocated, sized to the payload alone — the
// one-shot path for control-plane callers. Connection loops should use
// FrameReader instead, which reuses one buffer across frames and decodes
// with zero steady-state allocations.
func ReadFrame(r io.Reader) (Frame, error) {
	var head [4 + headerLen]byte
	if _, err := io.ReadFull(r, head[:4]); err != nil {
		if err == io.EOF {
			return Frame{}, io.EOF
		}
		return Frame{}, fmt.Errorf("%w: truncated length prefix: %v", ErrMalformed, err)
	}
	n := binary.LittleEndian.Uint32(head[:4])
	if n < headerLen || n > MaxFrame {
		return Frame{}, fmt.Errorf("%w: implausible frame length %d", ErrMalformed, n)
	}
	if _, err := io.ReadFull(r, head[4:]); err != nil {
		return Frame{}, fmt.Errorf("%w: truncated frame body: %v", ErrMalformed, err)
	}
	if head[4]&^byte(FlagTraced) != Version {
		return Frame{}, fmt.Errorf("%w: protocol version %d (want %d)", ErrMalformed, head[4], Version)
	}
	f := Frame{
		Type:    Type(head[5]),
		ID:      binary.LittleEndian.Uint64(head[6:]),
		Payload: make([]byte, n-headerLen),
	}
	if _, err := io.ReadFull(r, f.Payload); err != nil {
		return Frame{}, fmt.Errorf("%w: truncated frame body: %v", ErrMalformed, err)
	}
	sum := binary.LittleEndian.Uint32(head[14:])
	if got := crc32.Checksum(f.Payload, castagnoli); got != sum {
		return Frame{}, fmt.Errorf("%w: payload checksum mismatch (stored %08x, computed %08x)", ErrMalformed, sum, got)
	}
	if head[4]&FlagTraced != 0 {
		if len(f.Payload) < traceContextLen {
			return Frame{}, fmt.Errorf("%w: traced frame shorter than its context", ErrMalformed)
		}
		f.TC = TraceContext{
			Trace:  binary.LittleEndian.Uint64(f.Payload[0:]),
			Parent: binary.LittleEndian.Uint64(f.Payload[8:]),
		}
		f.Payload = f.Payload[traceContextLen:]
	}
	return f, nil
}

// --- payload codecs ---
//
// Ingest request payloads are the stream package's binary batch encoding
// verbatim (magic, schema header, records) and are decoded by the server
// with stream.NewBinaryReader; they have no codec here.

// QueryReq asks for the answer of the statement at the given registration
// index.
type QueryReq struct {
	Stmt uint32
}

// Encode serializes the request payload.
func (q QueryReq) Encode() []byte {
	e := wire.NewEncoder(4)
	e.U32(q.Stmt)
	return e.Bytes()
}

// DecodeQueryReq parses a TQuery payload.
func DecodeQueryReq(data []byte) (QueryReq, error) {
	d := wire.NewDecoder(data)
	q := QueryReq{Stmt: d.U32()}
	if err := d.Done(); err != nil {
		return QueryReq{}, fmt.Errorf("proto: query request: %w", err)
	}
	return q, nil
}

// QueryResult is the answer to a QueryReq: the statement's current count
// under its mode and the number of tuples the engine has processed.
type QueryResult struct {
	Count  float64
	Tuples int64
}

// Encode serializes the result payload.
func (q QueryResult) Encode() []byte {
	e := wire.NewEncoder(16)
	e.F64(q.Count)
	e.I64(q.Tuples)
	return e.Bytes()
}

// DecodeQueryResult parses a TResult payload of a query.
func DecodeQueryResult(data []byte) (QueryResult, error) {
	d := wire.NewDecoder(data)
	q := QueryResult{Count: d.F64(), Tuples: d.I64()}
	if err := d.Done(); err != nil {
		return QueryResult{}, fmt.Errorf("proto: query result: %w", err)
	}
	return q, nil
}

// MergeReq ships a marshalled sketch to be merged into the statement at the
// given registration index.
type MergeReq struct {
	Stmt   uint32
	Sketch []byte
}

// Encode serializes the request payload.
func (m MergeReq) Encode() []byte {
	e := wire.NewEncoder(8 + len(m.Sketch))
	e.U32(m.Stmt)
	e.Blob(m.Sketch)
	return e.Bytes()
}

// DecodeMergeReq parses a TMerge payload. The sketch bytes alias data.
func DecodeMergeReq(data []byte) (MergeReq, error) {
	d := wire.NewDecoder(data)
	m := MergeReq{Stmt: d.U32(), Sketch: d.Blob(MaxFrame)}
	if err := d.Done(); err != nil {
		return MergeReq{}, fmt.Errorf("proto: merge request: %w", err)
	}
	return m, nil
}

// IngestAck acknowledges an enqueued batch with the tuple count accepted.
// An acknowledged batch is the server's to lose: it is either processed or
// covered by the drain-on-shutdown guarantee.
type IngestAck struct {
	Tuples int64
}

// Encode serializes the ack payload.
func (a IngestAck) Encode() []byte {
	e := wire.NewEncoder(8)
	e.I64(a.Tuples)
	return e.Bytes()
}

// DecodeIngestAck parses a TOK payload of an ingest.
func DecodeIngestAck(data []byte) (IngestAck, error) {
	d := wire.NewDecoder(data)
	a := IngestAck{Tuples: d.I64()}
	if err := d.Done(); err != nil {
		return IngestAck{}, fmt.Errorf("proto: ingest ack: %w", err)
	}
	return a, nil
}

// Boot is the TBoot reply payload: the server incarnation's nonce.
type Boot struct {
	Nonce uint64
}

// NewBootNonce draws a fresh incarnation nonce for a process that serves
// TBoot. Randomness (not a counter or a clock) makes two incarnations of
// the same logical node — or two different nodes behind a recycled
// address — collide with negligible probability, no coordination needed.
func NewBootNonce() (uint64, error) {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		return 0, fmt.Errorf("proto: boot nonce: %w", err)
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}

// Encode serializes the boot payload.
func (b Boot) Encode() []byte {
	e := wire.NewEncoder(8)
	e.U64(b.Nonce)
	return e.Bytes()
}

// DecodeBoot parses a TResult payload of a boot request.
func DecodeBoot(data []byte) (Boot, error) {
	d := wire.NewDecoder(data)
	b := Boot{Nonce: d.U64()}
	if err := d.Done(); err != nil {
		return Boot{}, fmt.Errorf("proto: boot reply: %w", err)
	}
	return b, nil
}

// maxTenantLen bounds a tenant name on the wire; maxTokenLen bounds the
// connect-token (a hex HMAC-SHA256 is 64 bytes, leave headroom for other
// token schemes).
const (
	maxTenantLen = 256
	maxTokenLen  = 1024
)

// AuthReq is the TAuth request payload: the tenant to pin the connection to
// and its connect-token (tenant.Token's HMAC, or empty against a server
// running without a token key).
type AuthReq struct {
	Tenant string
	Token  string
}

// Encode serializes the request payload.
func (a AuthReq) Encode() []byte {
	e := wire.NewEncoder(8 + len(a.Tenant) + len(a.Token))
	e.Str(a.Tenant)
	e.Str(a.Token)
	return e.Bytes()
}

// DecodeAuthReq parses a TAuth payload.
func DecodeAuthReq(data []byte) (AuthReq, error) {
	d := wire.NewDecoder(data)
	a := AuthReq{Tenant: d.Str(maxTenantLen), Token: d.Str(maxTokenLen)}
	if err := d.Done(); err != nil {
		return AuthReq{}, fmt.Errorf("proto: auth request: %w", err)
	}
	return a, nil
}

// Quota is the admission-control refusal payload: which quota the batch hit
// and a hint for when capacity may return (zero when the limit is not
// time-based, e.g. a memory budget).
type Quota struct {
	Msg        string
	RetryAfter time.Duration
}

// Encode serializes the refusal payload (millisecond resolution, like Busy).
func (q Quota) Encode() []byte {
	ms := q.RetryAfter.Milliseconds()
	if ms < 0 {
		ms = 0
	}
	if ms > 1<<31 {
		ms = 1 << 31
	}
	e := wire.NewEncoder(8 + len(q.Msg))
	e.U32(uint32(ms))
	e.Str(q.Msg)
	return e.Bytes()
}

// DecodeQuota parses a TQuota payload.
func DecodeQuota(data []byte) (Quota, error) {
	d := wire.NewDecoder(data)
	q := Quota{RetryAfter: time.Duration(d.U32()) * time.Millisecond, Msg: d.Str(maxErrorLen)}
	if err := d.Done(); err != nil {
		return Quota{}, fmt.Errorf("proto: quota reply: %w", err)
	}
	return q, nil
}

// Busy is the backpressure reply payload: the suggested delay before the
// client retries the batch.
type Busy struct {
	RetryAfter time.Duration
}

// Encode serializes the backpressure payload (millisecond resolution).
func (b Busy) Encode() []byte {
	ms := b.RetryAfter.Milliseconds()
	if ms < 0 {
		ms = 0
	}
	if ms > 1<<31 {
		ms = 1 << 31
	}
	e := wire.NewEncoder(4)
	e.U32(uint32(ms))
	return e.Bytes()
}

// DecodeBusy parses a TBusy payload.
func DecodeBusy(data []byte) (Busy, error) {
	d := wire.NewDecoder(data)
	b := Busy{RetryAfter: time.Duration(d.U32()) * time.Millisecond}
	if err := d.Done(); err != nil {
		return Busy{}, fmt.Errorf("proto: busy reply: %w", err)
	}
	return b, nil
}

// maxErrorLen bounds a remote error message.
const maxErrorLen = 1 << 16

// EncodeError serializes a TError payload.
func EncodeError(msg string) []byte {
	if len(msg) > maxErrorLen {
		msg = msg[:maxErrorLen]
	}
	e := wire.NewEncoder(4 + len(msg))
	e.Str(msg)
	return e.Bytes()
}

// DecodeError parses a TError payload.
func DecodeError(data []byte) (string, error) {
	d := wire.NewDecoder(data)
	msg := d.Str(maxErrorLen)
	if err := d.Done(); err != nil {
		return "", fmt.Errorf("proto: error reply: %w", err)
	}
	return msg, nil
}
