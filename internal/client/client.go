// Package client dials an impserved server and speaks internal/proto: a
// small connection pool with request pipelining (responses matched to
// requests by id, so many calls can be in flight per connection),
// per-request deadlines, and retry with exponential backoff where a retry
// is safe.
//
// Retry policy, by RPC:
//
//   - IngestBatch: a backpressure reply (the server refused the batch
//     before enqueueing it) is always safe to retry and is retried with
//     backoff up to Options.BusyRetries times. A connection failure after
//     the request was written is NOT retried — the batch may or may not
//     have been enqueued, and re-sending could double-count; the error is
//     returned to the caller, whose recovery story is the server-side
//     checkpoint/replay contract.
//   - Query, Stats, Health, Trace, Snapshot and Cluster are read-only and
//     idempotent and are retried across redials on connection failures.
//   - SnapshotMerge is not idempotent (merging twice double-counts) and is
//     never retried on ambiguous failures.
//
// Every dial runs a handshake chain before the connection joins the pool:
// a boot step (proto.TBoot) that records the server incarnation's nonce on
// the connection, then — for DialTenant clients — an auth step
// (proto.TAuth) that pins the session to its tenant. Because the chain
// runs on EVERY dial, a transparent mid-stream redial of a dead pool slot
// re-establishes the whole session: it can never silently fall back to the
// default tenant. The fenced variants (IngestFenced, QueryFenced,
// SnapshotFenced) compare the boot nonce before writing anything, so a
// stateful feeder can guarantee its requests never reach a server that
// silently restarted from an older checkpoint behind the redial; see
// ErrIncarnation.
//
// A quota refusal (proto.TQuota, multi-tenant servers) is terminal for the
// call: the batch was refused at admission with no partial state anywhere,
// and the client does not retry it — see ErrQuota.
package client

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"implicate/internal/imps"
	"implicate/internal/obs"
	"implicate/internal/proto"
	"implicate/internal/stream"
	"implicate/internal/telemetry"
)

// ErrBackpressure is returned when an ingest batch was refused with busy
// replies more times than Options.BusyRetries allows. The batch was never
// enqueued; the caller may retry later.
var ErrBackpressure = errors.New("client: server backpressure persisted")

// RemoteError is a failure the server reported for one request; the
// connection remains usable.
type RemoteError struct {
	Msg string
}

func (e *RemoteError) Error() string { return "client: server: " + e.Msg }

// ErrQuota matches (errors.Is) an ingest refusal by the session tenant's
// admission quota. Unlike backpressure, it is NOT absorbed with retries:
// the refusal is the tenant's own budget speaking, not transient load, and
// re-sending on the server's schedule is the caller's policy decision. The
// concrete error is a *QuotaRefusal carrying the server's retry hint.
var ErrQuota = errors.New("client: tenant quota exceeded")

// QuotaRefusal is the concrete error behind ErrQuota: the server's
// admission refusal for one batch. The batch was never planned or
// enqueued — no partial engine state exists. RetryAfter is the server's
// hint; zero means retrying cannot help until tenant state changes (a
// memory ceiling, not a rate).
type QuotaRefusal struct {
	Msg        string
	RetryAfter time.Duration
}

func (e *QuotaRefusal) Error() string { return "client: quota: " + e.Msg }

// Is makes errors.Is(err, ErrQuota) match.
func (e *QuotaRefusal) Is(target error) bool { return target == ErrQuota }

// Options tune a client. The zero value is usable.
type Options struct {
	// Conns is the connection pool size. Default 2.
	Conns int
	// DialTimeout bounds connection establishment. Default 5s.
	DialTimeout time.Duration
	// RequestTimeout bounds one request/response round trip. Default 30s.
	RequestTimeout time.Duration
	// BusyRetries bounds how many backpressure replies one IngestBatch
	// call absorbs before giving up with ErrBackpressure; negative means
	// retry indefinitely. Default 256.
	BusyRetries int
	// NetRetries bounds redial attempts for idempotent requests. Default 2.
	NetRetries int
	// RetryBase is the first backoff delay; it doubles per attempt up to
	// RetryCap. Defaults 2ms and 500ms.
	RetryBase time.Duration
	RetryCap  time.Duration
}

func (o Options) withDefaults() Options {
	if o.Conns == 0 {
		o.Conns = 2
	}
	if o.DialTimeout == 0 {
		o.DialTimeout = 5 * time.Second
	}
	if o.RequestTimeout == 0 {
		o.RequestTimeout = 30 * time.Second
	}
	if o.BusyRetries == 0 {
		o.BusyRetries = 256
	}
	if o.NetRetries == 0 {
		o.NetRetries = 2
	}
	if o.RetryBase == 0 {
		o.RetryBase = 2 * time.Millisecond
	}
	if o.RetryCap == 0 {
		o.RetryCap = 500 * time.Millisecond
	}
	return o
}

// Client is a pooled connection to one server. Safe for concurrent use.
type Client struct {
	addr   string
	schema *stream.Schema
	opt    Options
	// tenant/token, when tenant is non-empty, add the auth step to every
	// dial's handshake chain (DialTenant sets them).
	tenant string
	token  string

	mu     sync.Mutex
	conns  []*conn
	closed bool
	rr     atomic.Uint64
}

// Dial connects to addr. schema is required for IngestBatch and may be nil
// for query/merge/stats-only clients. The first connection is established
// eagerly so configuration errors surface here. The session serves the
// server's implicit default tenant; see DialTenant for namespaced
// sessions.
func Dial(addr string, schema *stream.Schema, opt Options) (*Client, error) {
	return DialTenant(addr, schema, "", "", opt)
}

// DialTenant connects like Dial and pins every pooled connection to the
// named tenant: the dial handshake chain runs a TAuth step after the boot
// step, presenting token (minted by the server operator from the shared
// key). The chain runs on every dial — the eager first connection here AND
// every transparent redial of a dead pool slot — so a connection the pool
// hands out is always authenticated; a mid-stream redial can never
// silently serve the default tenant. An empty tenantName skips the auth
// step entirely (plain Dial).
func DialTenant(addr string, schema *stream.Schema, tenantName, token string, opt Options) (*Client, error) {
	opt = opt.withDefaults()
	if opt.Conns < 1 {
		return nil, fmt.Errorf("client: pool size %d must be >= 1", opt.Conns)
	}
	cl := &Client{addr: addr, schema: schema, opt: opt, tenant: tenantName, token: token, conns: make([]*conn, opt.Conns)}
	c, err := cl.dial()
	if err != nil {
		return nil, err
	}
	cl.conns[0] = c
	return cl, nil
}

// Close closes every pooled connection; in-flight requests fail.
func (cl *Client) Close() error {
	cl.mu.Lock()
	defer cl.mu.Unlock()
	cl.closed = true
	for i, c := range cl.conns {
		if c != nil {
			c.close(errors.New("client: closed"))
			cl.conns[i] = nil
		}
	}
	return nil
}

// dial establishes one connection and runs the full handshake chain on it
// before any caller sees it. Each step is a round trip; a step failure
// kills the connection, so the pool never holds a half-established
// session.
func (cl *Client) dial() (*conn, error) {
	nc, err := net.DialTimeout("tcp", cl.addr, cl.opt.DialTimeout)
	if err != nil {
		return nil, fmt.Errorf("client: %w", err)
	}
	c := &conn{nc: nc, pending: make(map[uint64]chan proto.Frame)}
	go c.readLoop()
	for _, step := range []func(*conn) error{cl.bootStep, cl.authStep} {
		if err := step(c); err != nil {
			c.close(err)
			return nil, err
		}
	}
	return c, nil
}

// bootStep learns the server incarnation behind a fresh connection. A TCP
// connection can never outlive its server process, so the nonce read here
// identifies the incarnation for the connection's whole life — the
// invariant the fenced calls build on.
func (cl *Client) bootStep(c *conn) error {
	f, err := c.roundTrip(proto.TBoot, nil, cl.opt.DialTimeout)
	if err != nil {
		return fmt.Errorf("client: boot handshake: %w", err)
	}
	if f.Type != proto.TResult {
		return fmt.Errorf("client: unexpected %s reply to boot handshake", f.Type)
	}
	boot, err := proto.DecodeBoot(f.Payload)
	if err != nil {
		return err
	}
	c.boot = boot.Nonce
	return nil
}

// authStep pins a fresh connection to the client's tenant — a no-op for
// plain Dial sessions. Running inside the dial chain (not once at Dial) is
// what makes the pool's redials safe: every connection authenticates
// before it carries a single request.
func (cl *Client) authStep(c *conn) error {
	if cl.tenant == "" {
		return nil
	}
	f, err := c.roundTrip(proto.TAuth, proto.AuthReq{Tenant: cl.tenant, Token: cl.token}.Encode(), cl.opt.DialTimeout)
	if err != nil {
		return fmt.Errorf("client: auth handshake: %w", err)
	}
	switch f.Type {
	case proto.TOK:
		return nil
	case proto.TError:
		msg, derr := proto.DecodeError(f.Payload)
		if derr != nil {
			return derr
		}
		return fmt.Errorf("client: auth handshake: %s", msg)
	}
	return fmt.Errorf("client: unexpected %s reply to auth handshake", f.Type)
}

// getConn returns a live pooled connection, dialing a replacement for a
// dead slot.
func (cl *Client) getConn() (*conn, error) {
	slot := int(cl.rr.Add(1)) % cl.opt.Conns
	cl.mu.Lock()
	if cl.closed {
		cl.mu.Unlock()
		return nil, errors.New("client: closed")
	}
	c := cl.conns[slot]
	if c != nil && !c.isDead() {
		cl.mu.Unlock()
		return c, nil
	}
	cl.mu.Unlock()
	// Dial outside the lock; racing replacements just cost a connection.
	nc, err := cl.dial()
	if err != nil {
		return nil, err
	}
	cl.mu.Lock()
	if cl.closed {
		cl.mu.Unlock()
		nc.close(errors.New("client: closed"))
		return nil, errors.New("client: closed")
	}
	if cur := cl.conns[slot]; cur != nil && !cur.isDead() {
		// Another caller already replaced the slot; use theirs.
		cl.mu.Unlock()
		nc.close(errors.New("client: redundant dial"))
		return cur, nil
	}
	if old := cl.conns[slot]; old != nil {
		old.close(errors.New("client: replaced"))
	}
	cl.conns[slot] = nc
	cl.mu.Unlock()
	return nc, nil
}

// call performs one round trip on one connection.
func (cl *Client) call(t proto.Type, payload []byte) (proto.Frame, error) {
	c, err := cl.getConn()
	if err != nil {
		return proto.Frame{}, err
	}
	return c.roundTrip(t, payload, cl.opt.RequestTimeout)
}

// backoff sleeps for the attempt-th delay of the exponential schedule,
// honoring an optional server hint as the floor.
func (cl *Client) backoff(attempt int, hint time.Duration) {
	d := cl.opt.RetryBase << uint(min(attempt, 16))
	if d > cl.opt.RetryCap {
		d = cl.opt.RetryCap
	}
	if hint > d {
		d = hint
	}
	time.Sleep(d)
}

// callIdempotent retries call across redials on connection failures.
func (cl *Client) callIdempotent(t proto.Type, payload []byte) (proto.Frame, error) {
	var lastErr error
	for attempt := 0; attempt <= cl.opt.NetRetries; attempt++ {
		if attempt > 0 {
			cl.backoff(attempt-1, 0)
		}
		f, err := cl.call(t, payload)
		if err == nil {
			return f, nil
		}
		lastErr = err
	}
	return proto.Frame{}, lastErr
}

// EncodeBatch serializes tuples in the ingest wire encoding (the stream
// package's binary format, schema header included). Useful for encoding
// once and sending to several servers.
func EncodeBatch(schema *stream.Schema, tuples []stream.Tuple) ([]byte, error) {
	if schema == nil {
		return nil, errors.New("client: ingest requires a schema")
	}
	var buf bytes.Buffer
	w := stream.NewBinaryWriter(&buf, schema)
	for _, t := range tuples {
		if err := w.Write(t); err != nil {
			return nil, err
		}
	}
	if err := w.Flush(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// IngestBatch sends tuples to the server, absorbing backpressure replies
// with retry-and-backoff. On success every tuple was acknowledged as
// enqueued. A connection failure mid-request is returned as-is (see the
// package comment for why it is not retried).
func (cl *Client) IngestBatch(tuples []stream.Tuple) error {
	if len(tuples) == 0 {
		return nil
	}
	payload, err := EncodeBatch(cl.schema, tuples)
	if err != nil {
		return err
	}
	return cl.IngestEncoded(payload, int64(len(tuples)))
}

// IngestEncoded sends an already EncodeBatch-serialized batch of n tuples.
func (cl *Client) IngestEncoded(payload []byte, n int64) error {
	for attempt := 0; ; attempt++ {
		f, err := cl.call(proto.TIngest, payload)
		if err != nil {
			return err
		}
		done, err := cl.ingestReply(f, n, attempt)
		if done || err != nil {
			return err
		}
	}
}

// ingestReply interprets one reply to an ingest request: done reports the
// batch acknowledged, a false done with a nil error means the batch was
// refused with backpressure (absorbed here with backoff) and must be
// re-sent.
func (cl *Client) ingestReply(f proto.Frame, n int64, attempt int) (done bool, err error) {
	switch f.Type {
	case proto.TOK:
		ack, err := proto.DecodeIngestAck(f.Payload)
		if err != nil {
			return true, err
		}
		if ack.Tuples != n {
			return true, fmt.Errorf("client: server acknowledged %d of %d tuples", ack.Tuples, n)
		}
		return true, nil
	case proto.TBusy:
		if cl.opt.BusyRetries >= 0 && attempt >= cl.opt.BusyRetries {
			return true, fmt.Errorf("%w after %d attempts", ErrBackpressure, attempt+1)
		}
		busy, err := proto.DecodeBusy(f.Payload)
		if err != nil {
			return true, err
		}
		cl.backoff(attempt, busy.RetryAfter)
		return false, nil
	case proto.TQuota:
		q, err := proto.DecodeQuota(f.Payload)
		if err != nil {
			return true, err
		}
		return true, &QuotaRefusal{Msg: q.Msg, RetryAfter: q.RetryAfter}
	case proto.TError:
		return true, remoteError(f)
	}
	return true, fmt.Errorf("client: unexpected %s reply to ingest", f.Type)
}

// ErrIncarnation is returned by the fenced calls when the connection the
// pool offers reaches a different server incarnation than the caller
// fenced against — the server restarted (losing state back to its last
// checkpoint) and the pool transparently redialed it. The caller's state
// and the server's have silently diverged; re-sending cannot help, the
// caller must re-verify the server's state before feeding it anything.
var ErrIncarnation = errors.New("client: server incarnation changed")

// Boot returns the incarnation nonce of a live pooled connection, dialing
// one if needed. Callers fence subsequent sends against this value.
func (cl *Client) Boot() (uint64, error) {
	c, err := cl.getConn()
	if err != nil {
		return 0, err
	}
	return c.boot, nil
}

// callFenced performs one round trip pinned to the given server
// incarnation: the connection's handshake nonce is compared BEFORE any
// bytes are written, so a request can never reach a restarted server. The
// pool may still redial a dead slot — a redial to the same incarnation
// (a transient network failure) passes the fence and proceeds normally.
func (cl *Client) callFenced(t proto.Type, payload []byte, boot uint64) (proto.Frame, error) {
	c, err := cl.getConn()
	if err != nil {
		return proto.Frame{}, err
	}
	if c.boot != boot {
		return proto.Frame{}, fmt.Errorf("%w: connection reached incarnation %016x, fenced to %016x", ErrIncarnation, c.boot, boot)
	}
	return c.roundTrip(t, payload, cl.opt.RequestTimeout)
}

// callFencedIdempotent retries callFenced across redials on connection
// failures; a fence mismatch is permanent and returned immediately.
func (cl *Client) callFencedIdempotent(t proto.Type, payload []byte, boot uint64) (proto.Frame, error) {
	var lastErr error
	for attempt := 0; attempt <= cl.opt.NetRetries; attempt++ {
		if attempt > 0 {
			cl.backoff(attempt-1, 0)
		}
		f, err := cl.callFenced(t, payload, boot)
		if err == nil {
			return f, nil
		}
		if errors.Is(err, ErrIncarnation) {
			return proto.Frame{}, err
		}
		lastErr = err
	}
	return proto.Frame{}, lastErr
}

// IngestFenced is IngestEncoded fenced to one server incarnation (see
// Boot): a batch is only ever written to a connection whose handshake
// nonce matches boot, so a server that silently restarted — dropping
// state back to its last checkpoint — can never absorb a batch meant for
// its predecessor. Stateful feeders that track per-server offsets (the
// coordinator's journal replay) need this: an offset is only meaningful
// against the incarnation it was established with.
func (cl *Client) IngestFenced(payload []byte, n int64, boot uint64) error {
	return cl.IngestFencedTraced(payload, n, boot, proto.TraceContext{})
}

// IngestFencedTraced is IngestFenced with a trace context stamped on the
// ingest frame: the receiving server parents the batch's plan, dispatch and
// apply spans under tc, so a coordinator's delivery span adopts the whole
// leaf-side story of each routed batch. A zero context sends the exact
// pre-trace wire bytes; a valid one sets the traced frame flag, which only
// trace-aware servers accept — callers stamp a context only when they know
// the peer speaks it (the coordinator arms tracing fleet-wide, never
// per-leaf).
func (cl *Client) IngestFencedTraced(payload []byte, n int64, boot uint64, tc proto.TraceContext) error {
	for attempt := 0; ; attempt++ {
		c, err := cl.getConn()
		if err != nil {
			return err
		}
		if c.boot != boot {
			return fmt.Errorf("%w: connection reached incarnation %016x, fenced to %016x", ErrIncarnation, c.boot, boot)
		}
		f, err := c.roundTripTC(proto.TIngest, payload, tc, cl.opt.RequestTimeout)
		if err != nil {
			return err
		}
		done, err := cl.ingestReply(f, n, attempt)
		if done || err != nil {
			return err
		}
	}
}

// QueryFenced is Query fenced to one server incarnation: the result is
// guaranteed to describe the fenced incarnation's state, never a restarted
// successor's.
func (cl *Client) QueryFenced(stmt int, boot uint64) (proto.QueryResult, error) {
	f, err := cl.callFencedIdempotent(proto.TQuery, proto.QueryReq{Stmt: uint32(stmt)}.Encode(), boot)
	if err != nil {
		return proto.QueryResult{}, err
	}
	switch f.Type {
	case proto.TResult:
		return proto.DecodeQueryResult(f.Payload)
	case proto.TError:
		return proto.QueryResult{}, remoteError(f)
	}
	return proto.QueryResult{}, fmt.Errorf("client: unexpected %s reply to query", f.Type)
}

// SnapshotFenced is Snapshot fenced to one server incarnation.
func (cl *Client) SnapshotFenced(stmt int, boot uint64) (proto.SnapshotResult, error) {
	f, err := cl.callFencedIdempotent(proto.TSnapshot, proto.SnapshotReq{Stmt: uint32(stmt)}.Encode(), boot)
	if err != nil {
		return proto.SnapshotResult{}, err
	}
	switch f.Type {
	case proto.TResult:
		return proto.DecodeSnapshotResult(f.Payload)
	case proto.TError:
		return proto.SnapshotResult{}, remoteError(f)
	}
	return proto.SnapshotResult{}, fmt.Errorf("client: unexpected %s reply to snapshot", f.Type)
}

// PendingIngest is one in-flight IngestAsync batch. Wait must be called
// exactly once; until then the caller must keep the encoded payload
// unmodified (the pending request retains it for busy-retry resends).
type PendingIngest struct {
	cl      *Client
	c       *conn
	id      uint64
	ch      chan proto.Frame
	payload []byte
	n       int64
}

// IngestAsync sends an EncodeBatch-serialized batch of n tuples without
// waiting for the acknowledgement, enabling a window of pipelined batches
// per connection — the synchronous IngestEncoded pays a full round trip
// per batch, which caps throughput at batch-size ÷ RTT regardless of how
// fast the server is. Callers keep at most a bounded number of pendings
// open and Wait on the oldest before sending more.
func (cl *Client) IngestAsync(payload []byte, n int64) (*PendingIngest, error) {
	c, err := cl.getConn()
	if err != nil {
		return nil, err
	}
	id, ch, err := c.send(proto.TIngest, payload)
	if err != nil {
		return nil, err
	}
	return &PendingIngest{cl: cl, c: c, id: id, ch: ch, payload: payload, n: n}, nil
}

// Wait blocks for the batch's acknowledgement. A backpressure reply means
// the batch was NOT enqueued, so Wait absorbs it by re-sending
// synchronously through IngestEncoded's retry loop. On success every
// tuple was acknowledged as enqueued; the error contract matches
// IngestEncoded.
//
// Ordering caveat: a re-sent batch is applied after any pipelined
// successors the server already accepted. No queue-depth sizing on the
// client side can rule refusals out (acknowledgements confirm enqueueing,
// so the queue can be full of batches that were already acked when a new
// frame arrives). Producers that rely on per-connection tuple order must
// either run against a server configured with BlockOnFull — which never
// refuses, it stalls the reader instead — or keep the window at one.
func (p *PendingIngest) Wait() error {
	f, err := p.c.await(p.id, p.ch, proto.TIngest, p.cl.opt.RequestTimeout)
	if err != nil {
		return err
	}
	switch f.Type {
	case proto.TOK:
		ack, err := proto.DecodeIngestAck(f.Payload)
		if err != nil {
			return err
		}
		if ack.Tuples != p.n {
			return fmt.Errorf("client: server acknowledged %d of %d tuples", ack.Tuples, p.n)
		}
		return nil
	case proto.TBusy:
		busy, err := proto.DecodeBusy(f.Payload)
		if err != nil {
			return err
		}
		p.cl.backoff(0, busy.RetryAfter)
		return p.cl.IngestEncoded(p.payload, p.n)
	case proto.TQuota:
		q, err := proto.DecodeQuota(f.Payload)
		if err != nil {
			return err
		}
		return &QuotaRefusal{Msg: q.Msg, RetryAfter: q.RetryAfter}
	case proto.TError:
		return remoteError(f)
	default:
		return fmt.Errorf("client: unexpected %s reply to ingest", f.Type)
	}
}

// Query returns the current answer of the statement registered at index
// stmt on the server, together with the server's processed-tuple count.
func (cl *Client) Query(stmt int) (proto.QueryResult, error) {
	f, err := cl.callIdempotent(proto.TQuery, proto.QueryReq{Stmt: uint32(stmt)}.Encode())
	if err != nil {
		return proto.QueryResult{}, err
	}
	switch f.Type {
	case proto.TResult:
		return proto.DecodeQueryResult(f.Payload)
	case proto.TError:
		return proto.QueryResult{}, remoteError(f)
	}
	return proto.QueryResult{}, fmt.Errorf("client: unexpected %s reply to query", f.Type)
}

// SnapshotMerge ships a marshalled sketch for merging into the estimator of
// the statement registered at index stmt — the upstream hop of the §2
// aggregation tree.
func (cl *Client) SnapshotMerge(stmt int, sketch []byte) error {
	f, err := cl.call(proto.TMerge, proto.MergeReq{Stmt: uint32(stmt), Sketch: sketch}.Encode())
	if err != nil {
		return err
	}
	switch f.Type {
	case proto.TOK:
		return nil
	case proto.TError:
		return remoteError(f)
	}
	return fmt.Errorf("client: unexpected %s reply to merge", f.Type)
}

// Snapshot pulls the marshalled estimator state of the statement registered
// at index stmt, together with the server's applied-tuple count at the
// capture — the read direction of the §2 aggregation tree, merge-compatible
// with SnapshotMerge on another server. Coordinators answer it with their
// merged fleet state, so the call works the same against a leaf or a
// coordinator.
func (cl *Client) Snapshot(stmt int) (proto.SnapshotResult, error) {
	f, err := cl.callIdempotent(proto.TSnapshot, proto.SnapshotReq{Stmt: uint32(stmt)}.Encode())
	if err != nil {
		return proto.SnapshotResult{}, err
	}
	switch f.Type {
	case proto.TResult:
		return proto.DecodeSnapshotResult(f.Payload)
	case proto.TError:
		return proto.SnapshotResult{}, remoteError(f)
	}
	return proto.SnapshotResult{}, fmt.Errorf("client: unexpected %s reply to snapshot", f.Type)
}

// Cluster fetches a coordinator's membership view. Leaf servers answer it
// with an error frame (they do not implement the RPC).
func (cl *Client) Cluster() (proto.ClusterStatus, error) {
	f, err := cl.callIdempotent(proto.TCluster, nil)
	if err != nil {
		return proto.ClusterStatus{}, err
	}
	switch f.Type {
	case proto.TResult:
		return proto.DecodeClusterStatus(f.Payload)
	case proto.TError:
		return proto.ClusterStatus{}, remoteError(f)
	}
	return proto.ClusterStatus{}, fmt.Errorf("client: unexpected %s reply to cluster", f.Type)
}

// Ping performs one liveness round trip (a Health request whose reports are
// discarded) with its own timeout and NO retries — a health prober wants the
// failure, not a masked redial. Any decoded reply, error frames included,
// proves the server is alive and serving.
func (cl *Client) Ping(timeout time.Duration) error {
	c, err := cl.getConn()
	if err != nil {
		return err
	}
	_, err = c.roundTrip(proto.THealth, nil, timeout)
	return err
}

// Stats fetches the server's telemetry snapshot.
func (cl *Client) Stats() (telemetry.Snapshot, error) {
	f, err := cl.callIdempotent(proto.TStats, nil)
	if err != nil {
		return telemetry.Snapshot{}, err
	}
	switch f.Type {
	case proto.TResult:
		return telemetry.DecodeSnapshot(f.Payload)
	case proto.TError:
		return telemetry.Snapshot{}, remoteError(f)
	}
	return telemetry.Snapshot{}, fmt.Errorf("client: unexpected %s reply to stats", f.Type)
}

// Health fetches the server engine's per-statement estimator health
// reports, ordered by statement registration index.
func (cl *Client) Health() ([]imps.HealthReport, error) {
	f, err := cl.callIdempotent(proto.THealth, nil)
	if err != nil {
		return nil, err
	}
	switch f.Type {
	case proto.TResult:
		return obs.DecodeHealth(f.Payload)
	case proto.TError:
		return nil, remoteError(f)
	}
	return nil, fmt.Errorf("client: unexpected %s reply to health", f.Type)
}

// Trace fetches the server's span ring: the most recent traced events,
// oldest first. A server running without tracing returns an empty dump.
// Against a coordinator — which answers with an assembled fleet trace —
// the node labels are dropped; use FleetTrace to keep them.
func (cl *Client) Trace() ([]obs.Span, error) {
	f, err := cl.callIdempotent(proto.TTrace, nil)
	if err != nil {
		return nil, err
	}
	switch f.Type {
	case proto.TResult:
		if obs.IsFleetTrace(f.Payload) {
			fleet, err := obs.DecodeFleetTrace(f.Payload)
			if err != nil {
				return nil, err
			}
			spans := make([]obs.Span, len(fleet))
			for i := range fleet {
				spans[i] = fleet[i].Span
			}
			return spans, nil
		}
		return obs.DecodeSpans(f.Payload)
	case proto.TError:
		return nil, remoteError(f)
	}
	return nil, fmt.Errorf("client: unexpected %s reply to trace", f.Type)
}

// FleetTrace fetches a trace with node attribution. A coordinator answers
// with its assembled, causally-ordered fleet trace — every span labeled
// with the node that recorded it. A leaf answers with its own span dump,
// which is returned with empty node labels, so the call works the same
// against either kind of server.
func (cl *Client) FleetTrace() ([]obs.FleetSpan, error) {
	f, err := cl.callIdempotent(proto.TTrace, nil)
	if err != nil {
		return nil, err
	}
	switch f.Type {
	case proto.TResult:
		if obs.IsFleetTrace(f.Payload) {
			return obs.DecodeFleetTrace(f.Payload)
		}
		spans, err := obs.DecodeSpans(f.Payload)
		if err != nil {
			return nil, err
		}
		fleet := make([]obs.FleetSpan, len(spans))
		for i := range spans {
			fleet[i] = obs.FleetSpan{Span: spans[i]}
		}
		return fleet, nil
	case proto.TError:
		return nil, remoteError(f)
	}
	return nil, fmt.Errorf("client: unexpected %s reply to trace", f.Type)
}

func remoteError(f proto.Frame) error {
	msg, err := proto.DecodeError(f.Payload)
	if err != nil {
		return err
	}
	return &RemoteError{Msg: msg}
}

// conn is one pooled connection: a writer serialized by wmu and a reader
// goroutine dispatching response frames to the pending map by request id.
type conn struct {
	nc     net.Conn
	boot   uint64 // server incarnation nonce, set by the dial handshake
	wmu    sync.Mutex
	wbuf   []byte // encode scratch, under wmu; steady-state sends allocate nothing
	nextID atomic.Uint64

	pmu     sync.Mutex
	pending map[uint64]chan proto.Frame
	err     error // sticky; set once when the connection dies
	once    sync.Once
}

func (c *conn) isDead() bool {
	c.pmu.Lock()
	defer c.pmu.Unlock()
	return c.err != nil
}

// close marks the connection dead and fails every pending request.
func (c *conn) close(cause error) {
	c.once.Do(func() {
		c.pmu.Lock()
		c.err = cause
		for id, ch := range c.pending {
			delete(c.pending, id)
			close(ch)
		}
		c.pmu.Unlock()
		c.nc.Close()
	})
}

func (c *conn) readLoop() {
	fr := proto.NewFrameReader(c.nc)
	for {
		f, err := fr.Next()
		if err != nil {
			c.close(fmt.Errorf("client: connection lost: %w", err))
			return
		}
		c.pmu.Lock()
		ch, ok := c.pending[f.ID]
		if ok {
			delete(c.pending, f.ID)
		}
		c.pmu.Unlock()
		if ok {
			// The payload aliases the FrameReader's buffer; the waiter may
			// consume it after the next read, so it gets its own copy.
			f.Payload = append([]byte(nil), f.Payload...)
			ch <- f
		}
		// Unmatched ids are responses whose caller timed out; drop them.
	}
}

// send registers a fresh request id and writes the request frame. The
// returned channel yields the response (or closes when the connection
// dies); pass it to await.
func (c *conn) send(t proto.Type, payload []byte) (uint64, chan proto.Frame, error) {
	return c.sendTC(t, payload, proto.TraceContext{})
}

// sendTC is send with a trace context stamped on the frame. A zero context
// keeps the frame byte-identical to the pre-trace wire format; a valid one
// sets the traced flag, which only trace-aware servers accept.
func (c *conn) sendTC(t proto.Type, payload []byte, tc proto.TraceContext) (uint64, chan proto.Frame, error) {
	id := c.nextID.Add(1)
	ch := make(chan proto.Frame, 1)
	c.pmu.Lock()
	if c.err != nil {
		err := c.err
		c.pmu.Unlock()
		return 0, nil, err
	}
	c.pending[id] = ch
	c.pmu.Unlock()

	c.wmu.Lock()
	buf, err := proto.AppendFrame(c.wbuf[:0], proto.Frame{Type: t, ID: id, TC: tc, Payload: payload})
	if err == nil {
		c.wbuf = buf
		_, err = c.nc.Write(buf)
	}
	c.wmu.Unlock()
	if err != nil {
		c.close(fmt.Errorf("client: write: %w", err))
		return 0, nil, err
	}
	return id, ch, nil
}

// await blocks for the response to a send-registered request.
func (c *conn) await(id uint64, ch chan proto.Frame, t proto.Type, timeout time.Duration) (proto.Frame, error) {
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case f, ok := <-ch:
		if !ok {
			c.pmu.Lock()
			err := c.err
			c.pmu.Unlock()
			return proto.Frame{}, err
		}
		return f, nil
	case <-timer.C:
		c.pmu.Lock()
		delete(c.pending, id)
		c.pmu.Unlock()
		return proto.Frame{}, fmt.Errorf("client: %s request timed out after %v", t, timeout)
	}
}

func (c *conn) roundTrip(t proto.Type, payload []byte, timeout time.Duration) (proto.Frame, error) {
	return c.roundTripTC(t, payload, proto.TraceContext{}, timeout)
}

func (c *conn) roundTripTC(t proto.Type, payload []byte, tc proto.TraceContext, timeout time.Duration) (proto.Frame, error) {
	id, ch, err := c.sendTC(t, payload, tc)
	if err != nil {
		return proto.Frame{}, err
	}
	return c.await(id, ch, t, timeout)
}
