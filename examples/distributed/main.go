// Distributed simulates the sensor-network aggregation setting of §2:
// eight leaf nodes each observe a slice of the global traffic under tight
// memory budgets, sketch it locally, serialize their state, and ship it up
// a two-level aggregation tree where the sketches are merged. The root
// answers global implication queries without any node ever holding the
// stream — the bandwidth spent is the serialized sketch size instead of
// the raw tuples.
package main

import (
	"fmt"
	"log"

	"implicate"
	"implicate/internal/gen"
)

const (
	leaves        = 8
	tuplesPerLeaf = 150_000
)

func main() {
	// Global question: how many sources talk to a single destination at
	// least 90% of the time? (Sources are spread across leaves, so no leaf
	// can answer alone.)
	cond := implicate.Conditions{
		MaxMultiplicity:  2,
		MinSupport:       12,
		TopC:             1,
		MinTopConfidence: 0.9,
	}
	opts := implicate.Options{Seed: 99} // identical options everywhere: merge-compatible

	// Ground truth across the union of all leaf streams.
	truth, err := implicate.NewExact(cond)
	if err != nil {
		log.Fatal(err)
	}

	// Each leaf sees the same global population of flows but only a shard
	// of the packets (packets of one flow hash to any leaf — think ECMP).
	g := gen.NewNetTraffic(gen.NetTrafficConfig{
		Seed: 17, Sources: 30_000, Destinations: 8_000,
		FlashSources: 2_000, FlashTargets: 1, FlashAfter: 400_000,
	})
	schema := gen.NetTrafficSchema()
	src := schema.MustProj("Source")
	dst := schema.MustProj("Destination")

	leafSketches := make([]*implicate.Sketch, leaves)
	for i := range leafSketches {
		sk, err := implicate.NewSketch(cond, opts)
		if err != nil {
			log.Fatal(err)
		}
		leafSketches[i] = sk
	}
	var rawBytes int64
	for i := int64(0); i < leaves*tuplesPerLeaf; i++ {
		t, err := g.Next()
		if err != nil {
			log.Fatal(err)
		}
		a, b := src.Key(t), dst.Key(t)
		leafSketches[i%leaves].Add(a, b)
		truth.Add(a, b)
		rawBytes += int64(len(a) + len(b))
	}

	// Level 1: leaves serialize and ship to two relays; relays merge four
	// sketches each. Level 2: relays ship to the root.
	var shipped int64
	relay := func(members []*implicate.Sketch) *implicate.Sketch {
		var agg *implicate.Sketch
		for _, m := range members {
			blob, err := m.MarshalBinary()
			if err != nil {
				log.Fatal(err)
			}
			shipped += int64(len(blob))
			restored, err := implicate.UnmarshalSketch(blob)
			if err != nil {
				log.Fatal(err)
			}
			if agg == nil {
				agg = restored
				continue
			}
			if err := agg.Merge(restored); err != nil {
				log.Fatal(err)
			}
		}
		return agg
	}
	relayA := relay(leafSketches[:leaves/2])
	relayB := relay(leafSketches[leaves/2:])
	root := relay([]*implicate.Sketch{relayA, relayB})

	est := root.ImplicationCount()
	lo, hi := root.ImplicationCountInterval(2)
	exact := truth.ImplicationCount()
	fmt.Printf("distributed: %d leaves × %d tuples, two-level aggregation\n", leaves, tuplesPerLeaf)
	fmt.Printf("  exact single-destination sources: %.0f\n", exact)
	fmt.Printf("  merged-sketch estimate:           %.0f  (95%% interval [%.0f, %.0f])\n", est, lo, hi)
	fmt.Printf("  relative error:                   %.1f%%\n", 100*abs(est-exact)/exact)
	fmt.Printf("  bytes shipped upstream:           %d (raw stream would be %d — %.0fx saving)\n",
		shipped, rawBytes, float64(rawBytes)/float64(shipped))
	fmt.Printf("  root memory:                      %d counter entries\n", root.MemEntries())
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
