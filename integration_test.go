package implicate_test

import (
	"math"
	"os"
	"path/filepath"
	"testing"

	"implicate"
	"implicate/internal/gen"
	"implicate/internal/stream"
)

// TestPipelineFileRoundTrip drives the whole stack the way the command-line
// tools do: generate a network-traffic stream, write it to disk with the
// text codec, read it back, run one query through four backends at once,
// and cross-check the estimates against the exact answer.
func TestPipelineFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "traffic.tsv")

	// Generate and persist.
	g := gen.NewNetTraffic(gen.NetTrafficConfig{
		Seed: 12, Sources: 800, Destinations: 300,
		FlashSources: 50, FlashTargets: 2, FlashAfter: 10_000,
	})
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	w := stream.NewWriter(f, gen.NetTrafficSchema())
	const tuples = 40_000
	for i := 0; i < tuples; i++ {
		tup, err := g.Next()
		if err != nil {
			t.Fatal(err)
		}
		if err := w.Write(tup); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	// Read back and evaluate.
	rf, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer rf.Close()
	r, err := stream.NewReader(rf)
	if err != nil {
		t.Fatal(err)
	}

	const sql = `
		SELECT COUNT(DISTINCT Source) FROM traffic
		WHERE Source IMPLIES Destination
		WITH SUPPORT >= 20, MULTIPLICITY <= 3, CONFIDENCE >= 0.9 TOP 3`

	eng := implicate.NewEngine(r.Schema())
	backends := map[string]implicate.Backend{
		"exact": implicate.ExactBackend(),
		"nips":  implicate.SketchBackend(implicate.Options{Seed: 3}),
		"ilc": func(c implicate.Conditions) (implicate.Estimator, error) {
			return implicate.NewILC(c, 0.001, 0.001)
		},
		"ds": func(c implicate.Conditions) (implicate.Estimator, error) {
			return implicate.NewDistinctSampling(c, 1920, 39, 9)
		},
	}
	stmts := map[string]*implicate.Statement{}
	for name, b := range backends {
		st, err := eng.RegisterSQL(sql, b)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		stmts[name] = st
	}
	n, err := eng.Consume(r)
	if err != nil {
		t.Fatal(err)
	}
	if n != tuples {
		t.Fatalf("read %d tuples, wrote %d", n, tuples)
	}

	// The flash crowd creates ~50 hammering sources; background sources are
	// too diffuse to qualify.
	exactCount := stmts["exact"].Count()
	if exactCount < 30 || exactCount > 70 {
		t.Fatalf("exact count %v outside the constructed range", exactCount)
	}
	if got := stmts["nips"].Count(); math.Abs(got-exactCount)/exactCount > 0.5 {
		t.Errorf("nips count %v too far from exact %v", got, exactCount)
	}
	// DS and ILC only need to produce finite answers here; their accuracy
	// characteristics are covered by the Figure 7 experiments.
	for _, name := range []string{"ds", "ilc"} {
		if got := stmts[name].Count(); math.IsNaN(got) || math.IsInf(got, 0) || got < 0 {
			t.Errorf("%s count %v is not a finite non-negative number", name, got)
		}
	}
}

// TestPipelineCheckpointResume exercises serialize → restore mid-stream and
// confirms the resumed sketch finishes with the same answer as an
// uninterrupted one.
func TestPipelineCheckpointResume(t *testing.T) {
	cond := implicate.Conditions{MaxMultiplicity: 2, MinSupport: 10, TopC: 1, MinTopConfidence: 0.8}
	full, err := implicate.NewSketch(cond, implicate.Options{Seed: 21})
	if err != nil {
		t.Fatal(err)
	}
	half, err := implicate.NewSketch(cond, implicate.Options{Seed: 21})
	if err != nil {
		t.Fatal(err)
	}

	g1 := gen.NewOLAP(gen.OLAPConfig{Seed: 2})
	for g1.Tuples() < 60_000 {
		ids := g1.NextIDs()
		a, b := gen.SingleKey(ids[4]), gen.SingleKey(ids[1])
		full.Add(a, b)
		if g1.Tuples() <= 30_000 {
			half.Add(a, b)
		}
	}

	data, err := half.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := implicate.UnmarshalSketch(data)
	if err != nil {
		t.Fatal(err)
	}

	// Replay the second half into the restored sketch.
	g2 := gen.NewOLAP(gen.OLAPConfig{Seed: 2})
	for g2.Tuples() < 60_000 {
		ids := g2.NextIDs()
		if g2.Tuples() > 30_000 {
			resumed.Add(gen.SingleKey(ids[4]), gen.SingleKey(ids[1]))
		}
	}

	if got, want := resumed.ImplicationCount(), full.ImplicationCount(); got != want {
		t.Fatalf("resumed count %v != uninterrupted %v", got, want)
	}
	if resumed.Tuples() != full.Tuples() {
		t.Fatalf("resumed tuples %d != %d", resumed.Tuples(), full.Tuples())
	}
}
