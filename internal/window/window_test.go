package window

import (
	"fmt"
	"testing"

	"implicate/internal/core"
	"implicate/internal/exact"
	"implicate/internal/imps"
)

func cond() imps.Conditions {
	return imps.Conditions{MaxMultiplicity: 1, MinSupport: 2, TopC: 1, MinTopConfidence: 1.0}
}

// addImplication feeds an itemset that satisfies the conditions (support 2,
// single partner).
func addImplication(est interface{ Add(a, b string) }, id int) {
	a, b := fmt.Sprintf("a%d", id), fmt.Sprintf("b%d", id)
	est.Add(a, b)
	est.Add(a, b)
}

func TestIncrementalSnapshots(t *testing.T) {
	in := NewIncremental(exact.MustCounter(cond()))
	for i := 0; i < 100; i++ {
		addImplication(in, i)
	}
	m1 := in.Snapshot("t1")
	if m1.Implications != 100 || m1.Tuples != 200 {
		t.Fatalf("m1 = %+v", m1)
	}
	for i := 100; i < 130; i++ {
		addImplication(in, i)
	}
	m2 := in.Snapshot("t2")
	if got := Between(m1, m2); got != 30 {
		t.Fatalf("Between = %v, want 30", got)
	}
	if got := Between(m2, m1); got != 30 {
		t.Fatalf("Between should be order-insensitive, got %v", got)
	}
	if got := in.Since(m1); got != 30 {
		t.Fatalf("Since = %v, want 30", got)
	}
	if marks := in.Marks(); len(marks) != 2 || marks[0].Label != "t1" {
		t.Fatalf("Marks = %v", marks)
	}
}

func TestIncrementalClampsRetirements(t *testing.T) {
	// An itemset can violate conditions after a snapshot, making the raw
	// difference negative; Since clamps at zero.
	in := NewIncremental(exact.MustCounter(cond()))
	addImplication(in, 1)
	m := in.Snapshot("t1")
	in.Add("a1", "OTHER") // multiplicity violation: a1 leaves the count
	if got := in.Since(m); got != 0 {
		t.Fatalf("Since = %v, want 0 (clamped)", got)
	}
}

func TestSlidingValidation(t *testing.T) {
	mk := func() imps.Estimator { return exact.MustCounter(cond()) }
	if _, err := NewSliding(0, 1, mk); err == nil {
		t.Error("width 0 accepted")
	}
	if _, err := NewSliding(10, 20, mk); err == nil {
		t.Error("granularity > width accepted")
	}
	if _, err := NewSliding(10, 5, nil); err == nil {
		t.Error("nil factory accepted")
	}
}

func TestSlidingWindowCounts(t *testing.T) {
	// Window of 1000 tuples, origins every 250. Itemsets arrive in bursts;
	// the windowed count must track only recent arrivals.
	s := MustSliding(1000, 250, func() imps.Estimator { return exact.MustCounter(cond()) })
	// Phase 1: 200 implications (400 tuples).
	for i := 0; i < 200; i++ {
		addImplication(s, i)
	}
	if got := s.ImplicationCount(); got != 200 {
		t.Fatalf("phase 1 window count = %v, want 200", got)
	}
	// Phase 2: 800 more tuples of pure noise (each itemset once: below
	// support). The stream is now 1200 tuples; the window [200,1200]
	// contains the implications that arrived at tuples 200..400 — exactly
	// 100 of them. The windowed reader (origin 250) must report close to
	// that, not the full 200.
	for i := 0; i < 800; i++ {
		s.Add(fmt.Sprintf("noise%d", i), "x")
	}
	got := s.ImplicationCount()
	if got > 100 || got < 50 {
		t.Fatalf("window count = %v, want within one granularity of 100", got)
	}
	// Phase 3: fresh implications enter the window immediately.
	for i := 0; i < 50; i++ {
		addImplication(s, 10000+i)
	}
	if got := s.ImplicationCount(); got < 50 {
		t.Fatalf("fresh implications missing: window count = %v", got)
	}
}

func TestSlidingRetiresEstimators(t *testing.T) {
	s := MustSliding(500, 100, func() imps.Estimator { return exact.MustCounter(cond()) })
	for i := 0; i < 10000; i++ {
		s.Add(fmt.Sprintf("a%d", i%70), fmt.Sprintf("b%d", i%70))
	}
	// Live estimators stay near width/gran + 1 = 6.
	if n := s.Estimators(); n < 4 || n > 8 {
		t.Fatalf("live estimators = %d, want ≈6", n)
	}
	if s.Tuples() != 10000 {
		t.Fatalf("Tuples = %d", s.Tuples())
	}
	if s.MemEntries() <= 0 {
		t.Fatal("MemEntries not positive")
	}
}

// TestSlidingWithSketch smoke-tests the sliding machinery over the NIPS
// sketch rather than the exact counter.
func TestSlidingWithSketch(t *testing.T) {
	var seed uint64
	s := MustSliding(2000, 500, func() imps.Estimator {
		seed++
		return core.MustSketch(cond(), core.Options{Seed: seed})
	})
	for i := 0; i < 1500; i++ {
		addImplication(s, i)
	}
	// 3000 tuples seen; the window [1000,3000] holds the 1000 implications
	// that arrived after tuple 1000.
	got := s.ImplicationCount()
	if got < 700 || got > 1350 {
		t.Fatalf("sketch window count = %v, want ≈1000", got)
	}
	if s.NonImplicationCount() > 200 {
		t.Fatalf("phantom non-implications: %v", s.NonImplicationCount())
	}
	if s.SupportedDistinct() < 1000 {
		t.Fatalf("SupportedDistinct = %v", s.SupportedDistinct())
	}
}
