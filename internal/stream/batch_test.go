package stream

import (
	"bytes"
	"fmt"
	"io"
	"testing"
)

// encodeBinary writes tuples in the binary format and returns the full
// stream plus the record region (header stripped via BinaryHeader).
func encodeBinary(t testing.TB, schema *Schema, tuples []Tuple) (full, records []byte) {
	t.Helper()
	var buf bytes.Buffer
	w := NewBinaryWriter(&buf, schema)
	for _, tu := range tuples {
		if err := w.Write(tu); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	full = buf.Bytes()
	hdr := BinaryHeader(schema)
	if !bytes.HasPrefix(full, hdr) {
		t.Fatalf("BinaryHeader is not the writer's header prefix\nheader: %x\nstream: %x", hdr, full[:min(len(full), len(hdr)+8)])
	}
	return full, full[len(hdr):]
}

// TestDecodeBinaryRecordsMatchesReader decodes the same batches through
// DecodeBinaryRecords and BinaryReader.NextBatch and requires identical
// tuples.
func TestDecodeBinaryRecordsMatchesReader(t *testing.T) {
	schema := MustSchema("A", "B")
	cases := [][]Tuple{
		nil,
		{{"x", "y"}},
		{{"", ""}, {"a", ""}, {"", "b"}},
		func() []Tuple {
			var ts []Tuple
			for i := 0; i < 500; i++ {
				ts = append(ts, Tuple{fmt.Sprintf("key-%d", i), fmt.Sprintf("val-%d", i%7)})
			}
			return ts
		}(),
	}
	for ci, tuples := range cases {
		full, records := encodeBinary(t, schema, tuples)

		got, err := DecodeBinaryRecords(records, schema.Len(), len(tuples)+1)
		if err != nil {
			t.Fatalf("case %d: DecodeBinaryRecords: %v", ci, err)
		}

		r, err := NewBinaryReader(bytes.NewReader(full))
		if err != nil {
			t.Fatalf("case %d: NewBinaryReader: %v", ci, err)
		}
		want := make([]Tuple, len(tuples))
		n, err := r.NextBatch(want)
		if err != nil && err != io.EOF {
			t.Fatalf("case %d: NextBatch: %v", ci, err)
		}
		want = want[:n]

		if len(got) != len(want) {
			t.Fatalf("case %d: %d tuples vs reader's %d", ci, len(got), len(want))
		}
		for i := range got {
			for j := range got[i] {
				if got[i][j] != want[i][j] {
					t.Fatalf("case %d tuple %d field %d: %q vs %q", ci, i, j, got[i][j], want[i][j])
				}
			}
		}
	}
}

// TestDecodeBinaryRecordsRejects covers the decoder's failure policy:
// structural damage and oversized batches are errors, never truncations.
func TestDecodeBinaryRecordsRejects(t *testing.T) {
	schema := MustSchema("A", "B")
	tuples := []Tuple{{"aa", "bb"}, {"cc", "dd"}}
	_, records := encodeBinary(t, schema, tuples)

	if _, err := DecodeBinaryRecords(records, schema.Len(), 1); err == nil {
		t.Fatal("expected a too-many-tuples error")
	}
	if _, err := DecodeBinaryRecords(records[:len(records)-1], schema.Len(), 10); err == nil {
		t.Fatal("expected a truncated-value error")
	}
	// An odd field count ends mid-record for arity 2.
	oneField := append([]byte{1}, 'z')
	if _, err := DecodeBinaryRecords(oneField, 2, 10); err == nil {
		t.Fatal("expected a mid-record error")
	}
	if _, err := DecodeBinaryRecords(records, 0, 10); err == nil {
		t.Fatal("expected an arity error")
	}
}

// TestDecodeBinaryRecordsNoAliasing pins the self-containment contract:
// mutating the input buffer after decoding must not change the tuples.
func TestDecodeBinaryRecordsNoAliasing(t *testing.T) {
	schema := MustSchema("A", "B")
	_, records := encodeBinary(t, schema, []Tuple{{"alpha", "beta"}})
	buf := append([]byte(nil), records...)
	got, err := DecodeBinaryRecords(buf, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := range buf {
		buf[i] = 0xFF
	}
	if got[0][0] != "alpha" || got[0][1] != "beta" {
		t.Fatalf("decoded tuples alias the input buffer: %v", got[0])
	}
}

func BenchmarkDecodeBinaryRecords(b *testing.B) {
	schema := MustSchema("A", "B")
	tuples := make([]Tuple, 1000)
	for i := range tuples {
		tuples[i] = Tuple{fmt.Sprintf("a%d", i), fmt.Sprintf("b%d", i%11)}
	}
	_, records := encodeBinary(b, schema, tuples)
	b.SetBytes(int64(len(records)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecodeBinaryRecords(records, 2, len(tuples)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBinaryReaderNextBatch(b *testing.B) {
	schema := MustSchema("A", "B")
	tuples := make([]Tuple, 1000)
	for i := range tuples {
		tuples[i] = Tuple{fmt.Sprintf("a%d", i), fmt.Sprintf("b%d", i%11)}
	}
	full, _ := encodeBinary(b, schema, tuples)
	dst := make([]Tuple, len(tuples))
	b.SetBytes(int64(len(full)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := NewBinaryReader(bytes.NewReader(full))
		if err != nil {
			b.Fatal(err)
		}
		if _, err := r.NextBatch(dst); err != nil && err != io.EOF {
			b.Fatal(err)
		}
	}
}
