package telemetry

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounters(t *testing.T) {
	var s Set
	s.AddTuples(100)
	s.AddTuples(28)
	s.AddBatch()
	s.AddBatch()
	s.AddRejectedBatch()
	s.AddMerge()
	sn := s.Snapshot()
	if sn.TuplesIngested != 128 || sn.Batches != 2 || sn.BatchesRejected != 1 || sn.Merges != 1 {
		t.Fatalf("snapshot %+v", sn)
	}
}

func TestQueueHighWaterIsMonotonic(t *testing.T) {
	var s Set
	for _, d := range []int{3, 7, 2, 7, 5} {
		s.ObserveQueueDepth(d)
	}
	if hw := s.Snapshot().QueueHighWater; hw != 7 {
		t.Fatalf("high water %d, want 7", hw)
	}
	// Concurrent observers must converge on the true maximum.
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for d := 0; d <= 100+g; d++ {
				s.ObserveQueueDepth(d)
			}
		}(g)
	}
	wg.Wait()
	if hw := s.Snapshot().QueueHighWater; hw != 107 {
		t.Fatalf("concurrent high water %d, want 107", hw)
	}
}

func TestHistogramBuckets(t *testing.T) {
	var s Set
	s.Observe(RPCIngest, 0)                // clamps to bucket 0
	s.Observe(RPCIngest, 1)                // 1ns -> bucket 0
	s.Observe(RPCIngest, 1024)             // exactly 2^10 -> bucket 10
	s.Observe(RPCIngest, 1025)             // -> bucket 11
	s.Observe(RPCIngest, time.Hour*100000) // clamps to the last bucket
	s.Observe(NumRPCs, time.Second)        // out of range: dropped, not a panic
	h := s.Snapshot().Latency[RPCIngest]
	if h.Count() != 5 {
		t.Fatalf("count %d, want 5", h.Count())
	}
	for b, want := range map[int]uint64{0: 2, 10: 1, 11: 1, HistBuckets - 1: 1} {
		if h.Counts[b] != want {
			t.Errorf("bucket %d = %d, want %d", b, h.Counts[b], want)
		}
	}
	if other := s.Snapshot().Latency[RPCQuery]; other.Count() != 0 {
		t.Error("observation leaked into another RPC's histogram")
	}
}

func TestQuantile(t *testing.T) {
	var h Histogram
	if h.Quantile(0.5) != 0 {
		t.Error("empty histogram quantile not 0")
	}
	h.Counts[10] = 90 // ~1µs
	h.Counts[20] = 10 // ~1ms
	if q := h.Quantile(0.5); q != 1<<10 {
		t.Errorf("p50 = %v, want %v", q, time.Duration(1<<10))
	}
	if q := h.Quantile(0.99); q != 1<<20 {
		t.Errorf("p99 = %v, want %v", q, time.Duration(1<<20))
	}
	if q := h.Quantile(-1); q != 1<<10 {
		t.Errorf("clamped q<0 = %v", q)
	}
	if q := h.Quantile(2); q != 1<<20 {
		t.Errorf("clamped q>1 = %v", q)
	}
}

func TestSnapshotEncodeDecodeRoundTrip(t *testing.T) {
	var s Set
	s.AddTuples(1 << 40)
	s.AddBatch()
	s.AddRejectedBatch()
	s.AddMerge()
	s.ObserveQueueDepth(17)
	s.Observe(RPCQuery, 3*time.Microsecond)
	s.Observe(RPCMerge, 2*time.Millisecond)
	want := s.Snapshot()

	got, err := DecodeSnapshot(want.Encode())
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

func TestDecodeSnapshotRejectsCorruption(t *testing.T) {
	good := (&Set{}).Snapshot().Encode()

	if _, err := DecodeSnapshot(good[:len(good)-1]); err == nil {
		t.Error("truncated snapshot accepted")
	}
	if _, err := DecodeSnapshot(append(append([]byte(nil), good...), 0)); err == nil {
		t.Error("trailing bytes accepted")
	}
	bad := append([]byte(nil), good...)
	bad[0] ^= 0xFF
	if _, err := DecodeSnapshot(bad); err == nil {
		t.Error("wrong magic accepted")
	}
	// Negative counter: flip the sign byte of TuplesIngested.
	neg := append([]byte(nil), good...)
	neg[len(snapshotMagic)+7] = 0x80
	if _, err := DecodeSnapshot(neg); err == nil || !strings.Contains(err.Error(), "negative") {
		t.Errorf("negative counter accepted: %v", err)
	}
}

func TestRPCStrings(t *testing.T) {
	for r, want := range map[RPC]string{
		RPCIngest: "IngestBatch", RPCQuery: "Query", RPCMerge: "SnapshotMerge",
		RPCStats: "Stats", RPC(200): "RPC(200)",
	} {
		if got := r.String(); got != want {
			t.Errorf("RPC %d: %q, want %q", r, got, want)
		}
	}
}
