package core

import (
	"fmt"

	"implicate/internal/imps"
)

// Binary serialization for the sharded sketch, completing the durability
// story PR 1 left open: a ShardedSketch checkpoints as its global geometry
// (conditions, effective options, shard count) followed by each shard's
// sub-sketch in the established Sketch format. Restoring rebuilds the
// router, masks and hash family from the geometry, then swaps the decoded
// sub-sketches into place, so a restored sharded sketch continues streaming
// bit-identically to the original.

const shardedMagic = "NIPS\x02"

// MarshalBinary encodes the complete sharded-sketch state. It takes every
// shard lock, so the snapshot is a serializable cut that includes every Add
// that returned before the call.
func (ss *ShardedSketch) MarshalBinary() ([]byte, error) {
	ss.lockAll()
	defer ss.unlockAll()

	e := &encoder{buf: make([]byte, 0, 4096)}
	e.buf = append(e.buf, shardedMagic...)

	e.u32(uint32(ss.cond.MaxMultiplicity))
	e.i64(ss.cond.MinSupport)
	e.u32(uint32(ss.cond.TopC))
	e.f64(ss.cond.MinTopConfidence)

	e.u32(uint32(ss.opts.Bitmaps))
	e.u32(uint32(ss.opts.FringeSize))
	e.bool(ss.opts.Unbounded)
	e.u32(uint32(ss.opts.Slack))
	e.u64(ss.opts.Seed)

	e.u32(uint32(len(ss.shards)))
	for i := range ss.shards {
		blob, err := ss.shards[i].sk.MarshalBinary()
		if err != nil {
			return nil, err
		}
		e.u32(uint32(len(blob)))
		e.buf = append(e.buf, blob...)
	}
	return e.buf, nil
}

// UnmarshalShardedSketch decodes a sharded sketch previously encoded with
// MarshalBinary. Each decoded sub-sketch must match the geometry the header
// announces (same conditions, per-shard bitmap count, and seed); anything
// else is rejected as corrupt, never silently accepted.
func UnmarshalShardedSketch(data []byte) (*ShardedSketch, error) {
	if len(data) < len(shardedMagic) || string(data[:len(shardedMagic)]) != shardedMagic {
		return nil, fmt.Errorf("%w: bad sharded magic", ErrCorrupt)
	}
	d := &decoder{buf: data, off: len(shardedMagic)}

	var cond imps.Conditions
	cond.MaxMultiplicity = int(d.u32())
	cond.MinSupport = d.i64()
	cond.TopC = int(d.u32())
	cond.MinTopConfidence = d.f64()
	if cond.MaxMultiplicity > 1<<24 || cond.TopC > 1<<24 {
		return nil, ErrCorrupt
	}

	var opts Options
	opts.Bitmaps = int(d.u32())
	opts.FringeSize = int(d.u32())
	opts.Unbounded = d.boolean()
	opts.Slack = int(d.u32())
	opts.Seed = d.u64()
	shards := int(d.u32())
	if d.err != nil {
		return nil, d.err
	}
	// shards == 0 would ask NewShardedSketch for a machine-dependent
	// default; a checkpoint must decode identically everywhere.
	if shards < 1 {
		return nil, ErrCorrupt
	}

	ss, err := NewShardedSketch(cond, opts, shards)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	subOpts := ss.opts
	subOpts.Bitmaps = ss.opts.Bitmaps / len(ss.shards)
	for i := range ss.shards {
		n := int(d.u32())
		if d.err != nil || n < 0 || n > len(d.buf)-d.off {
			return nil, ErrCorrupt
		}
		sk, err := UnmarshalSketch(d.buf[d.off : d.off+n])
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		if sk.cond != ss.cond || sk.opts != subOpts {
			return nil, fmt.Errorf("%w: shard %d geometry does not match header", ErrCorrupt, i)
		}
		ss.shards[i].sk = sk
		d.off += n
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(data) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(data)-d.off)
	}
	return ss, nil
}

// ConfigFingerprint identifies the sharded-sketch algorithm and its
// accuracy-relevant configuration. The shard count is included — it does
// not change any estimate, but sharded and differently-sharded estimators
// have different concurrency contracts, so they are kept distinct.
func (ss *ShardedSketch) ConfigFingerprint() string {
	return fmt.Sprintf("sharded(%s|m=%d,F=%d,unbounded=%t,slack=%d,shards=%d)",
		ss.cond, ss.opts.Bitmaps, ss.opts.FringeSize, ss.opts.Unbounded, ss.opts.Slack, len(ss.shards))
}
