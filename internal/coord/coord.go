// Package coord is the fleet coordinator: the managed form of the paper's
// §2 two-level aggregation tree (DESIGN.md §13). A Coordinator fronts N
// impserved leaves, routes every ingested tuple to exactly one leaf through
// an immutable partition table (route.go), journals and delivers batches in
// order per leaf (leaf.go), tracks liveness with health probes, recovers a
// crashed leaf from its checkpoint before re-admitting it, and answers
// queries by pulling and merging leaf state through the Snapshot RPC.
//
// Determinism contract: with a fixed configuration (leaf names, partition
// count, route statement) and a fixed tuple sequence, every leaf receives
// the same tuples in the same order on every run — crashes included,
// because routing ignores liveness and recovery replays the journal from
// the leaf's restored checkpoint boundary. A fleet that lost and recovered
// a leaf is therefore bit-identical to an uncrashed shadow fleet fed the
// same stream, which is the property the cluster smoke test enforces.
//
// Restrictions: leaves must run merge-compatible estimators for every
// statement — the plain "nips" sketch with identical seeds and parameters —
// because the merge fan-in round-trips marshalled sketches through
// core.Sketch.Merge. Windowed statements are rejected at construction.
package coord

import (
	"fmt"
	"sync"
	"time"

	"implicate/internal/client"
	"implicate/internal/core"
	"implicate/internal/imps"
	"implicate/internal/obs"
	"implicate/internal/proto"
	"implicate/internal/query"
	"implicate/internal/stream"
	"implicate/internal/telemetry"
)

// LeafSpec names one fleet member. Name is the stable identity the route
// table hashes — it must survive restarts and address changes; Addr is
// where the leaf listens now.
type LeafSpec struct {
	Name string
	Addr string
}

// Config configures a Coordinator.
type Config struct {
	// Schema is the stream schema, shared with every leaf.
	Schema *stream.Schema
	// Statements are the SQL statements the fleet serves, in the leaves'
	// registration order. Statement 0's A-projection (plus GROUP BY) is the
	// route key.
	Statements []string
	// Leaves is the fleet, in route-table order. Names must be unique.
	Leaves []LeafSpec
	// VirtualPartitions sizes the route table; a power of two >= the fleet
	// size. Default 64.
	VirtualPartitions int
	// Partitioner overrides the key→partition mapping; any
	// imps.PartitionedAdder satisfies it. Nil selects the fixed-seed xhash
	// router, which every identically-configured coordinator shares.
	Partitioner Partitioner
	// FlushTuples is the per-leaf batch size: routed tuples are buffered
	// until a leaf's buffer holds this many, then journaled and delivered
	// as one batch. Default 512.
	FlushTuples int
	// ProbeEvery is the health-probe period per leaf. Default 50ms.
	ProbeEvery time.Duration
	// ProbeTimeout bounds one probe round trip. Default 1s.
	ProbeTimeout time.Duration
	// ProbeFails is how many consecutive probe failures mark a leaf down.
	// Default 3.
	ProbeFails int
	// DrainTimeout bounds Flush and the merge fan-in's per-leaf quiesce.
	// Default 30s.
	DrainTimeout time.Duration
	// Restart, when non-nil, is the recovery hook: called with a down
	// leaf's name, it restarts that leaf from its latest checkpoint and
	// returns the address it listens on now ("" keeps the old address).
	// When nil, recovery waits for the leaf to come back on its own at the
	// same address.
	Restart func(name string) (addr string, err error)
	// ClientOptions tune the per-leaf clients.
	ClientOptions client.Options
	// TraceSpans, when positive, arms the coordinator's span ring with that
	// capacity: every delivery to a leaf is recorded as the root span of a
	// cross-node trace whose context is stamped on the leaf-bound frame, and
	// the Trace RPC answers with the assembled fleet trace instead of an
	// empty dump. Leaves must be trace-aware builds — a pre-trace peer
	// rejects flagged frames — so arm this only on a fleet upgraded
	// together. 0 disables tracing (the frames stay byte-identical to the
	// untraced wire format).
	TraceSpans int
	// Logf, when non-nil, receives diagnostic messages (probe failures,
	// recovery progress).
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.VirtualPartitions == 0 {
		c.VirtualPartitions = 64
	}
	if c.FlushTuples == 0 {
		c.FlushTuples = 512
	}
	if c.ProbeEvery == 0 {
		c.ProbeEvery = 50 * time.Millisecond
	}
	if c.ProbeTimeout == 0 {
		c.ProbeTimeout = time.Second
	}
	if c.ProbeFails == 0 {
		c.ProbeFails = 3
	}
	if c.DrainTimeout == 0 {
		c.DrainTimeout = 30 * time.Second
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	// The recovery backoff schedule reuses the client's retry tuning; give
	// it the client package's defaults when unset so it never hot-loops.
	if c.ClientOptions.RetryBase == 0 {
		c.ClientOptions.RetryBase = 2 * time.Millisecond
	}
	if c.ClientOptions.RetryCap == 0 {
		c.ClientOptions.RetryCap = 500 * time.Millisecond
	}
	return c
}

// Coordinator fronts a leaf fleet. Create with New; Ingest and Flush are
// single-producer (callers serialize them — the wire front-end does);
// Query, Snapshot and Status are safe concurrently with ingest.
type Coordinator struct {
	cfg     Config
	queries []query.Query // parsed and normalized statement templates
	rt      *routeTable
	leaves  []*leaf
	boot    uint64 // this coordinator's incarnation nonce, served over TBoot
	// tracer is the coordinator's span ring (nil when tracing is off):
	// delivery root spans from the feeders, RPC spans from the front-end.
	tracer *obs.Tracer
	// tel is the coordinator's own counter set: routed tuples and batches,
	// front-end RPC latency. Leaf-side counters live on each leaf.
	tel telemetry.Set

	// mu guards the router buffers and key scratch on the ingest path.
	mu   sync.Mutex
	pend [][]stream.Tuple // per-leaf buffered tuples, not yet journaled
	key  []byte

	stop      chan struct{}
	wg        sync.WaitGroup
	closeOnce sync.Once
}

// New validates the configuration, dials every leaf eagerly (configuration
// errors surface here), and starts the feeders and probers.
func New(cfg Config) (*Coordinator, error) {
	cfg = cfg.withDefaults()
	if cfg.Schema == nil {
		return nil, fmt.Errorf("coord: nil schema")
	}
	if len(cfg.Statements) == 0 {
		return nil, fmt.Errorf("coord: at least one statement is required")
	}
	if len(cfg.Leaves) == 0 {
		return nil, fmt.Errorf("coord: at least one leaf is required")
	}
	seen := make(map[string]bool, len(cfg.Leaves))
	for _, l := range cfg.Leaves {
		if l.Name == "" || l.Addr == "" {
			return nil, fmt.Errorf("coord: every leaf needs a name and an address")
		}
		if seen[l.Name] {
			return nil, fmt.Errorf("coord: duplicate leaf name %q", l.Name)
		}
		seen[l.Name] = true
	}
	co := &Coordinator{cfg: cfg, stop: make(chan struct{})}
	if cfg.TraceSpans > 0 {
		co.tracer = obs.NewTracer(cfg.TraceSpans)
	}
	nonce, err := proto.NewBootNonce()
	if err != nil {
		return nil, fmt.Errorf("coord: %w", err)
	}
	co.boot = nonce
	for _, sql := range cfg.Statements {
		q, err := query.Parse(sql)
		if err != nil {
			return nil, fmt.Errorf("coord: %w", err)
		}
		if err := q.Normalize(cfg.Schema); err != nil {
			return nil, fmt.Errorf("coord: %w", err)
		}
		if q.Window > 0 {
			return nil, fmt.Errorf("coord: windowed statements cannot be merged across a fleet")
		}
		co.queries = append(co.queries, *q)
	}
	names := make([]string, len(cfg.Leaves))
	for i, l := range cfg.Leaves {
		names[i] = l.Name
	}
	attrs := append(append([]string(nil), co.queries[0].A...), co.queries[0].GroupBy...)
	rt, err := newRouteTable(cfg.Schema, attrs, cfg.Partitioner, cfg.VirtualPartitions, names)
	if err != nil {
		return nil, err
	}
	co.rt = rt
	co.pend = make([][]stream.Tuple, len(cfg.Leaves))
	for i, spec := range cfg.Leaves {
		lf, err := newLeaf(co, i, spec)
		if err != nil {
			for _, prev := range co.leaves {
				prev.shut()
			}
			return nil, err
		}
		co.leaves = append(co.leaves, lf)
	}
	for _, lf := range co.leaves {
		co.wg.Add(2)
		go lf.run()
		go lf.probe()
	}
	return co, nil
}

func (co *Coordinator) logf(format string, args ...any) { co.cfg.Logf(format, args...) }

// Ingest routes a batch of tuples into the per-leaf buffers, journaling
// each buffer as it fills. Tuples are retained until journaled; callers
// may reuse the slice but not the tuples it holds.
func (co *Coordinator) Ingest(tuples []stream.Tuple) error {
	co.tel.AddBatch()
	co.tel.AddTuples(int64(len(tuples)))
	co.mu.Lock()
	defer co.mu.Unlock()
	for _, t := range tuples {
		idx, key := co.rt.leafOf(t, co.key)
		co.key = key
		co.pend[idx] = append(co.pend[idx], t)
		if len(co.pend[idx]) >= co.cfg.FlushTuples {
			if err := co.journalLocked(idx); err != nil {
				return err
			}
		}
	}
	return nil
}

// journalLocked encodes leaf idx's buffer and hands it to the leaf's
// journal. Must hold co.mu.
func (co *Coordinator) journalLocked(idx int) error {
	if len(co.pend[idx]) == 0 {
		return nil
	}
	payload, err := client.EncodeBatch(co.cfg.Schema, co.pend[idx])
	if err != nil {
		return fmt.Errorf("coord: encode batch for leaf %s: %w", co.leaves[idx].name, err)
	}
	co.leaves[idx].append(payload, int64(len(co.pend[idx])))
	co.pend[idx] = co.pend[idx][:0]
	return nil
}

// Flush journals every buffered tuple and blocks until the whole fleet has
// applied everything routed to it — acknowledgements only confirm
// enqueueing, so this is the one call after which a merge fan-in reflects
// every ingested tuple.
func (co *Coordinator) Flush() error {
	co.mu.Lock()
	for idx := range co.pend {
		if err := co.journalLocked(idx); err != nil {
			co.mu.Unlock()
			return err
		}
	}
	co.mu.Unlock()
	deadline := time.Now().Add(co.cfg.DrainTimeout)
	errs := make([]error, len(co.leaves))
	var wg sync.WaitGroup
	for i, lf := range co.leaves {
		wg.Add(1)
		go func(i int, lf *leaf) {
			defer wg.Done()
			errs[i] = lf.drain(deadline)
		}(i, lf)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// merged pulls statement stmt's state from every leaf and merges it in
// leaf order. The pulls run concurrently; the merge is sequential so the
// result is a pure function of the leaf states.
func (co *Coordinator) merged(stmt int) (*core.Sketch, string, int64, error) {
	if stmt < 0 || stmt >= len(co.queries) {
		return nil, "", 0, fmt.Errorf("coord: no statement %d (coordinator has %d)", stmt, len(co.queries))
	}
	deadline := time.Now().Add(co.cfg.DrainTimeout)
	results := make([]proto.SnapshotResult, len(co.leaves))
	errs := make([]error, len(co.leaves))
	var wg sync.WaitGroup
	for i, lf := range co.leaves {
		wg.Add(1)
		go func(i int, lf *leaf) {
			defer wg.Done()
			results[i], errs[i] = lf.snapshot(stmt, deadline)
		}(i, lf)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, "", 0, err
		}
	}
	var dst *core.Sketch
	var tuples int64
	kind := results[0].Kind
	for i, res := range results {
		tuples += res.Tuples
		s, err := core.UnmarshalSketch(res.Sketch)
		if err != nil {
			return nil, "", 0, fmt.Errorf("coord: leaf %s snapshot: %w", co.leaves[i].name, err)
		}
		if dst == nil {
			dst = s
			continue
		}
		if err := dst.Merge(s); err != nil {
			return nil, "", 0, fmt.Errorf("coord: merging leaf %s: %w (leaves must share sketch parameters and seed)", co.leaves[i].name, err)
		}
	}
	return dst, kind, tuples, nil
}

// Query answers statement stmt from the merged fleet state: the count under
// the statement's own read mode, and the fleet-wide applied-tuple total.
// The answer is a live point-in-time read; call Flush first when it must
// cover everything ingested.
func (co *Coordinator) Query(stmt int) (proto.QueryResult, error) {
	merged, _, tuples, err := co.merged(stmt)
	if err != nil {
		return proto.QueryResult{}, err
	}
	count, err := co.evalCount(stmt, merged)
	if err != nil {
		return proto.QueryResult{}, err
	}
	return proto.QueryResult{Count: count, Tuples: tuples}, nil
}

// evalCount reads the statement's answer off a merged estimator by binding
// it into a throwaway compilation of the statement template — Count then
// applies the statement's read mode (implications, supported, distinct...)
// exactly as a leaf would.
func (co *Coordinator) evalCount(stmt int, est imps.Estimator) (float64, error) {
	st, err := query.Compile(co.queries[stmt], co.cfg.Schema, func(imps.Conditions) (imps.Estimator, error) {
		return est, nil
	})
	if err != nil {
		return 0, fmt.Errorf("coord: evaluating statement %d: %w", stmt, err)
	}
	return st.Count(), nil
}

// Snapshot answers the Snapshot RPC with the merged fleet state — the same
// shape a leaf answers with, which is what lets coordinators stack into
// deeper aggregation trees.
func (co *Coordinator) Snapshot(stmt int) (proto.SnapshotResult, error) {
	merged, kind, tuples, err := co.merged(stmt)
	if err != nil {
		return proto.SnapshotResult{}, err
	}
	blob, err := merged.MarshalBinary()
	if err != nil {
		return proto.SnapshotResult{}, fmt.Errorf("coord: %w", err)
	}
	return proto.SnapshotResult{Tuples: tuples, Kind: kind, Sketch: blob}, nil
}

// Status reports the membership view: route-table size and one row per
// leaf.
func (co *Coordinator) Status() proto.ClusterStatus {
	cs := proto.ClusterStatus{VirtualPartitions: uint32(co.rt.parts)}
	for _, lf := range co.leaves {
		cs.Leaves = append(cs.Leaves, lf.status())
	}
	return cs
}

// The coordinator is the state behind the impcoordd admin endpoint.
var _ obs.FleetAdminState = (*Coordinator)(nil)

// Tracer returns the coordinator's span ring, nil when tracing is off —
// the daemon's SIGQUIT dump and the admin endpoint read it directly.
func (co *Coordinator) Tracer() *obs.Tracer { return co.tracer }

// CoordStats snapshots the coordinator's own counter set: routed tuples
// and batches, front-end RPC latency. Stats answers with it, and it is
// half of the obs.FleetAdminState surface the admin endpoint reads.
func (co *Coordinator) CoordStats() telemetry.Snapshot { return co.tel.Snapshot() }

// VirtualPartitions reports the route-table size.
func (co *Coordinator) VirtualPartitions() int { return co.rt.parts }

// FleetTelemetry reports every leaf's coordinator-side observability row,
// in leaf order.
func (co *Coordinator) FleetTelemetry() []obs.LeafTelemetry {
	out := make([]obs.LeafTelemetry, 0, len(co.leaves))
	for _, lf := range co.leaves {
		out = append(out, lf.telemetryRow())
	}
	return out
}

// FleetStats pulls every leaf's telemetry snapshot concurrently over the
// Stats RPC, returning rows in leaf order. Down leaves and failed pulls
// are skipped — the roll-up serves what the fleet can answer now rather
// than blocking a scrape on a recovery.
func (co *Coordinator) FleetStats() []obs.LeafStatsRow {
	rows := make([]*obs.LeafStatsRow, len(co.leaves))
	co.eachUpLeaf(func(i int, lf *leaf, cl *client.Client) {
		sn, err := cl.Stats()
		if err != nil {
			return
		}
		rows[i] = &obs.LeafStatsRow{Name: lf.name, Stats: sn}
	})
	out := make([]obs.LeafStatsRow, 0, len(rows))
	for _, r := range rows {
		if r != nil {
			out = append(out, *r)
		}
	}
	return out
}

// FleetHealth pulls every leaf's estimator health reports concurrently
// over the Health RPC, skipping down leaves and failed pulls like
// FleetStats.
func (co *Coordinator) FleetHealth() []obs.LeafHealthRow {
	rows := make([]*obs.LeafHealthRow, len(co.leaves))
	co.eachUpLeaf(func(i int, lf *leaf, cl *client.Client) {
		reports, err := cl.Health()
		if err != nil {
			return
		}
		rows[i] = &obs.LeafHealthRow{Name: lf.name, Reports: reports}
	})
	out := make([]obs.LeafHealthRow, 0, len(rows))
	for _, r := range rows {
		if r != nil {
			out = append(out, *r)
		}
	}
	return out
}

// FleetTrace assembles the cross-node trace: the coordinator's own span
// ring next to every reachable leaf's, each span labeled with the node
// that recorded it, ordered causally (children directly after the parent
// their frames linked them to). Down leaves are skipped — a partial trace
// from a degraded fleet beats no trace, and the orphan rule in
// obs.OrderFleetTrace keeps leaf spans visible even when the coordinator
// ring lapped their delivery span out.
func (co *Coordinator) FleetTrace() []obs.FleetSpan {
	var out []obs.FleetSpan
	for _, sp := range co.tracer.Snapshot() {
		out = append(out, obs.FleetSpan{Node: "coord", Span: sp})
	}
	rows := make([][]obs.FleetSpan, len(co.leaves))
	co.eachUpLeaf(func(i int, lf *leaf, cl *client.Client) {
		spans, err := cl.Trace()
		if err != nil {
			return
		}
		row := make([]obs.FleetSpan, len(spans))
		for j := range spans {
			row[j] = obs.FleetSpan{Node: lf.name, Span: spans[j]}
		}
		rows[i] = row
	})
	for _, row := range rows {
		out = append(out, row...)
	}
	return obs.OrderFleetTrace(out)
}

// eachUpLeaf runs fn concurrently for every leaf that is currently up and
// not sticky-fatal, passing the admitted client. Used by the observability
// fan-outs, which tolerate skipped leaves.
func (co *Coordinator) eachUpLeaf(fn func(i int, lf *leaf, cl *client.Client)) {
	var wg sync.WaitGroup
	for i, lf := range co.leaves {
		lf.mu.Lock()
		cl, up := lf.cl, lf.state == leafUp && lf.fatal == nil && !lf.closed
		lf.mu.Unlock()
		if !up {
			continue
		}
		wg.Add(1)
		go func(i int, lf *leaf, cl *client.Client) {
			defer wg.Done()
			fn(i, lf, cl)
		}(i, lf, cl)
	}
	wg.Wait()
}

// Close stops the probers and feeders and closes every leaf client.
// Buffered tuples not yet journaled and journaled batches not yet delivered
// are NOT flushed — call Flush first for a clean handoff.
func (co *Coordinator) Close() error {
	co.closeOnce.Do(func() {
		close(co.stop)
		for _, lf := range co.leaves {
			lf.shut()
		}
		co.wg.Wait()
	})
	return nil
}
