package wire

import (
	"errors"
	"testing"
)

func TestRoundTrip(t *testing.T) {
	e := NewEncoder(64)
	e.Raw([]byte("MAGI\x01"))
	e.U8(7)
	e.U32(1 << 30)
	e.U64(1 << 60)
	e.I64(-42)
	e.F64(3.5)
	e.Bool(true)
	e.Bool(false)
	e.Str("hello")
	e.Blob([]byte{1, 2, 3})

	d := NewDecoder(e.Bytes())
	d.Magic("MAGI\x01")
	if got := d.U8(); got != 7 {
		t.Fatalf("U8 = %d", got)
	}
	if got := d.U32(); got != 1<<30 {
		t.Fatalf("U32 = %d", got)
	}
	if got := d.U64(); got != 1<<60 {
		t.Fatalf("U64 = %d", got)
	}
	if got := d.I64(); got != -42 {
		t.Fatalf("I64 = %d", got)
	}
	if got := d.F64(); got != 3.5 {
		t.Fatalf("F64 = %g", got)
	}
	if !d.Bool() || d.Bool() {
		t.Fatal("Bool round trip")
	}
	if got := d.Str(16); got != "hello" {
		t.Fatalf("Str = %q", got)
	}
	if got := d.Blob(16); len(got) != 3 || got[2] != 3 {
		t.Fatalf("Blob = %v", got)
	}
	if err := d.Done(); err != nil {
		t.Fatal(err)
	}
}

func TestTruncationAlwaysErrors(t *testing.T) {
	e := NewEncoder(0)
	e.U64(99)
	e.Str("abcdef")
	full := e.Bytes()
	for n := 0; n < len(full); n++ {
		d := NewDecoder(full[:n])
		d.U64()
		d.Str(1 << 10)
		if d.Done() == nil {
			t.Fatalf("prefix of %d bytes decoded cleanly", n)
		}
	}
}

func TestStickyError(t *testing.T) {
	d := NewDecoder([]byte{1})
	d.U64() // fails
	if d.Err() == nil {
		t.Fatal("no error after short read")
	}
	// Everything after the failure returns zero values without panicking.
	if d.U32() != 0 || d.Str(10) != "" || d.Blob(10) != nil || d.Bool() {
		t.Fatal("post-error reads returned non-zero values")
	}
	if !errors.Is(d.Done(), ErrCorrupt) {
		t.Fatalf("Done = %v", d.Done())
	}
}

func TestTrailingBytes(t *testing.T) {
	e := NewEncoder(0)
	e.U8(1)
	e.U8(2)
	d := NewDecoder(e.Bytes())
	d.U8()
	if !errors.Is(d.Done(), ErrCorrupt) {
		t.Fatal("trailing byte accepted")
	}
}

func TestBadBool(t *testing.T) {
	d := NewDecoder([]byte{2})
	d.Bool()
	if d.Err() == nil {
		t.Fatal("bool byte 2 accepted")
	}
}

func TestCountGuard(t *testing.T) {
	e := NewEncoder(0)
	e.U32(1 << 31) // implausible count
	d := NewDecoder(e.Bytes())
	if d.Count(8) != 0 || d.Err() == nil {
		t.Fatal("oversized count accepted")
	}
	// A plausible count passes.
	e2 := NewEncoder(0)
	e2.U32(2)
	e2.U64(1)
	e2.U64(2)
	d2 := NewDecoder(e2.Bytes())
	if got := d2.Count(8); got != 2 || d2.Err() != nil {
		t.Fatalf("Count = %d, err %v", got, d2.Err())
	}
}

func TestStrMaxLen(t *testing.T) {
	e := NewEncoder(0)
	e.Str("too long for the cap")
	d := NewDecoder(e.Bytes())
	d.Str(4)
	if d.Err() == nil {
		t.Fatal("string above maxLen accepted")
	}
}

func TestFailf(t *testing.T) {
	d := NewDecoder(nil)
	d.Failf("bad field %d", 3)
	if !errors.Is(d.Err(), ErrCorrupt) {
		t.Fatalf("Failf err = %v", d.Err())
	}
}
