package checkpoint

import (
	"testing"

	"implicate/internal/query"
)

// FuzzCheckpointDecode feeds arbitrary bytes through the full recovery
// path: Decode, and when the container verifies, Restore. Neither may
// panic — a corrupt or adversarial checkpoint must always come back as an
// error ("no answer"), never a crash or a silently wrong engine.
func FuzzCheckpointDecode(f *testing.F) {
	// Seed with a real checkpoint and a few near-misses so the fuzzer
	// starts past the magic/version/CRC gates.
	e := query.NewEngine(testSchema())
	for _, reg := range testQueries {
		if _, err := e.RegisterSQL(reg.sql, reg.backend); err != nil {
			f.Fatal(err)
		}
	}
	e.ProcessBatch(genTuples(0, 200))
	snap, err := Capture(e, 200)
	if err != nil {
		f.Fatal(err)
	}
	valid := Encode(snap)
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	truncatedEngine := Encode(Snapshot{Offset: 7, Engine: snap.Engine[:len(snap.Engine)/3]})
	f.Add(truncatedEngine)
	f.Add(Encode(Snapshot{Offset: 0, Engine: nil}))
	f.Add([]byte(fileMagic))

	schema := testSchema()
	f.Fuzz(func(t *testing.T, data []byte) {
		snap, err := Decode(data)
		if err != nil {
			return
		}
		if _, err := Restore(snap, schema, resolver); err != nil {
			return
		}
	})
}
