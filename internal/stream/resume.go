package stream

import (
	"encoding/binary"
	"fmt"
	"io"
)

// Resumable is implemented by sources that can report how many tuples they
// have yielded and skip ahead without yielding — what crash recovery needs
// to replay a stream from a checkpointed offset.
type Resumable interface {
	Source
	// Pos returns the number of tuples yielded so far.
	Pos() int64
	// SkipTuples advances past n further tuples without yielding them. It
	// returns an error when the stream ends first: a checkpoint offset
	// beyond the stream means the checkpoint does not belong to this stream.
	SkipTuples(n int64) error
}

// Pos implements Resumable.
func (m *MemSource) Pos() int64 { return int64(m.pos) }

// SkipTuples implements Resumable.
func (m *MemSource) SkipTuples(n int64) error {
	if n < 0 {
		return fmt.Errorf("stream: cannot skip %d tuples", n)
	}
	if int64(len(m.tuples)-m.pos) < n {
		return fmt.Errorf("stream: cannot skip %d tuples, only %d remain", n, len(m.tuples)-m.pos)
	}
	m.pos += int(n)
	return nil
}

// Pos implements Resumable.
func (r *Reader) Pos() int64 { return r.pos }

// SkipTuples implements Resumable: skipped records are consumed line-wise
// without field parsing.
func (r *Reader) SkipTuples(n int64) error {
	if n < 0 {
		return fmt.Errorf("stream: cannot skip %d tuples", n)
	}
	for i := int64(0); i < n; i++ {
		if !r.s.Scan() {
			if err := r.s.Err(); err != nil {
				return err
			}
			return fmt.Errorf("stream: cannot skip %d tuples, stream ended after %d", n, i)
		}
		r.line++
		r.pos++
	}
	return nil
}

// Pos implements Resumable.
func (r *BinaryReader) Pos() int64 { return r.pos }

// SkipTuples implements Resumable: skipped records are consumed by length
// field only, discarding the value bytes unread.
func (r *BinaryReader) SkipTuples(n int64) error {
	if n < 0 {
		return fmt.Errorf("stream: cannot skip %d tuples", n)
	}
	arity := len(r.fields)
	for i := int64(0); i < n; i++ {
		for f := 0; f < arity; f++ {
			v, err := binary.ReadUvarint(r.r)
			if err != nil {
				if f == 0 && err == io.EOF {
					return fmt.Errorf("stream: cannot skip %d tuples, stream ended after %d", n, i)
				}
				if err == io.EOF {
					err = io.ErrUnexpectedEOF
				}
				return r.recordErr(err)
			}
			if v > 1<<24 {
				return r.recordErr(fmt.Errorf("value length %d exceeds limit", v))
			}
			if _, err := r.r.Discard(int(v)); err != nil {
				if err == io.EOF {
					err = io.ErrUnexpectedEOF
				}
				return r.recordErr(err)
			}
		}
		r.pos++
	}
	return nil
}

var (
	_ Resumable = (*MemSource)(nil)
	_ Resumable = (*Reader)(nil)
	_ Resumable = (*BinaryReader)(nil)
)
