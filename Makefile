GO ?= go

.PHONY: all build vet test test-race race bench bench-serve bench-ingest bench-obs bench-gate examples experiments paper clean checkpoint-fault serve-smoke serve-soak obs-smoke cluster-smoke tenant-smoke fleet-obs-smoke

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

test-race:
	$(GO) test -race ./...

# Alias for test-race; the concurrency tests in internal/core double as the
# race-detector stress suite.
race: test-race

# The crash-recovery fault-injection suite: kill-and-resume equivalence,
# truncation/bit-flip rejection, resumable-source replay, plus a short
# fuzz run over the checkpoint decoder.
checkpoint-fault:
	$(GO) test -run 'KillAndResume|Truncat|BitFlip|Corrupt|Atomic|Snapshot|Resume|Marshal|Unmarshal' \
		./internal/checkpoint/ ./internal/query/ ./internal/stream/ \
		./internal/core/ ./internal/exact/ ./internal/lossy/ ./internal/dsample/ ./cmd/impstat/
	$(GO) test -run FuzzCheckpointDecode -fuzz FuzzCheckpointDecode -fuzztime 10s ./internal/checkpoint/

# Serving-layer smoke: start impserved on loopback, ingest 100k tuples
# through the wire protocol, query, shut down gracefully, and assert the
# shutdown checkpoint recorded every acknowledged tuple.
serve-smoke:
	$(GO) test -run TestServeSmoke -v ./cmd/impserved/

# Serving-layer soak under the race detector: 1M tuples through IngestBatch
# against a deliberately slow worker and a depth-2 queue, asserting zero
# unreported drops (every refused batch got an explicit busy reply that the
# client retried).
serve-soak:
	$(GO) test -race -run TestSoakLoopbackIngest -v ./internal/server/

# Coordinator fleet smoke under the race detector: impcoordd over real
# impserved leaves, one leaf killed mid-stream and restored from its
# checkpoint through the coordinator's journal-replay recovery, merged
# count asserted bit-identical to an uncrashed shadow fleet.
cluster-smoke:
	$(GO) test -race -run TestClusterSmoke -count=1 -v ./cmd/impcoordd/

# Observability smoke: start impserved with -admin and -trace-spans, ingest
# through the wire, and assert /metrics serves the key series, /healthz
# answers, and /trace carries plan/dispatch/apply/rpc spans.
obs-smoke:
	$(GO) test -run TestObsSmoke -v ./cmd/impserved/

# Fleet observability smoke under the race detector: impcoordd with -admin
# and -trace-spans over three trace-aware leaves, ingest through the wire
# front-end, then assert one assembled cross-node trace (every leaf's spans
# parented under coordinator delivery spans) and a /metrics scrape carrying
# the coordinator's per-leaf rows plus the rolled-up leaf series.
fleet-obs-smoke:
	$(GO) test -race -run TestFleetObsSmoke -count=1 -v ./cmd/impcoordd/

# Multi-tenant smoke under the race detector: the noisy-neighbor isolation
# bound (a quota-saturating tenant leaves a victim's throughput within 80%
# of solo and its engine bit-identical to a dedicated run) and the
# two-tenant kill-and-recover path over per-tenant checkpoint files.
tenant-smoke:
	$(GO) test -race -count=1 -v \
		-run 'TestTenantNoisyNeighbor|TestTenantCheckpointKillRecover' \
		./internal/server/

bench:
	$(GO) test -bench=. -benchmem ./...

# Serving-layer end-to-end throughput: impbench drives loopback impserved
# ingest over both transports at pipeline pool sizes 1 and 4 and GOMAXPROCS
# 1 and 4, plus multi-tenant rows (one server, two namespaced tenants),
# recording the rows (plus the cross-variant count-equality check, which
# extends across the tenant boundary) in BENCH_serve.json.
bench-serve:
	$(GO) run ./cmd/impbench -exp serve -workers 1,4 -procs 1,4 -tenants 2 -json BENCH_serve.json

# Regression gate: re-run the serve experiment and fail if, per transport,
# the best tuples/sec falls more than 25% below the committed
# BENCH_serve.json — or the leanest allocs-per-batch rises more than 25%
# above it. The tolerance absorbs run-to-run scheduler and CI-host noise
# (single runs of a multi-second wall-clock measurement routinely wobble
# 10-15%); a real fast-path regression — a reintroduced per-frame or
# per-tuple allocation, a lost writev batch — costs far more than 25% on
# its axis.
bench-gate:
	$(GO) run ./cmd/impbench -exp serve -workers 1,4 -procs 1,4 -tenants 2 -gate BENCH_serve.json

# Library-level ingest throughput (serial vs mutex vs sharded) at
# GOMAXPROCS 1 and 4, recorded in BENCH_ingest.json.
bench-ingest:
	$(GO) run ./cmd/impbench -exp ingest -procs 1,4 -json BENCH_ingest.json

# Observability overhead: the serve harness with the full observability
# layer off and on (tracer in every layer + a live /metrics scraper),
# recording the throughput delta in BENCH_obs.json. -leaves adds the fleet
# pair: a coordinator over 3 leaves with cross-node tracing and the fleet
# /metrics roll-up scraped throughout. The delta is the guardrail:
# instrumentation must stay within a few percent.
bench-obs:
	$(GO) run ./cmd/impbench -exp obs -procs 1,4 -leaves 3 -json BENCH_obs.json

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/netmon
	$(GO) run ./examples/approxdep
	$(GO) run ./examples/olapsynopsis
	$(GO) run ./examples/distributed

# Every table and figure of the paper at the default (laptop) scale.
experiments:
	$(GO) run ./cmd/impbench -exp all

# The paper's full-scale configuration; takes much longer.
paper:
	$(GO) run ./cmd/impbench -exp all -paper

clean:
	$(GO) clean ./...
	rm -f test_output.txt bench_output.txt
