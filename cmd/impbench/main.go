// Command impbench regenerates the paper's tables and figures
// (DESIGN.md's per-experiment index). Each -exp value corresponds to one
// table or figure of the evaluation section, plus the design-choice
// ablations.
//
// Usage:
//
//	impbench -exp fig4                  # Dataset One sweep, c=1
//	impbench -exp fig7a -paper          # full-scale Figure 7 workload A
//	impbench -exp all                   # everything at the default scale
//
// The default scale finishes in seconds to minutes; -paper selects the
// paper's full configuration (hundreds of runs, multi-million-tuple
// streams), which takes considerably longer.
package main

import (
	"log"
	"os"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("impbench: ")

	cfg, err := parseFlags(os.Args[1:])
	if err != nil {
		os.Exit(2)
	}
	if err := run(cfg, os.Stdout); err != nil {
		log.Fatal(err)
	}
}
