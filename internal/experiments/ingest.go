package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"sync"
	"text/tabwriter"
	"time"

	"implicate/internal/core"
	"implicate/internal/gen"
	"implicate/internal/imps"
)

// IngestConfig parametrizes the ingestion-throughput harness contrasting
// the serial sketch, a single mutex in front of it, and the sharded sketch
// at several shard counts (§4.6's per-item cost budget, measured end to
// end).
type IngestConfig struct {
	// Tuples is the stream length per variant.
	Tuples int
	// Producers is the number of concurrent feeder goroutines for the
	// mutex and sharded variants; defaults to GOMAXPROCS.
	Producers int
	// Shards lists the sharded variants to run; defaults to 1, 2, 4, 8.
	Shards []int
	// Batch is the AddBatch chunk size for the batched variants.
	Batch int
	// Procs lists the GOMAXPROCS values to sweep; defaults to the current
	// setting only.
	Procs []int
	// Seed drives the workload generator.
	Seed int64
	// Options configure every sketch identically.
	Options core.Options
}

func (c IngestConfig) withDefaults() IngestConfig {
	if c.Tuples == 0 {
		c.Tuples = 2_000_000
	}
	if c.Producers < 1 {
		c.Producers = runtime.GOMAXPROCS(0)
	}
	if len(c.Shards) == 0 {
		c.Shards = []int{1, 2, 4, 8}
	}
	if c.Batch == 0 {
		c.Batch = 256
	}
	if len(c.Procs) == 0 {
		c.Procs = []int{runtime.GOMAXPROCS(0)}
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// IngestRow is one variant's measured throughput.
type IngestRow struct {
	// Variant names the ingest path: serial, serial-batch, mutex,
	// mutex-batch, sharded-N, sharded-N-batch.
	Variant string `json:"variant"`
	// Procs is the GOMAXPROCS value the variant ran under.
	Procs int `json:"gomaxprocs"`
	// Producers is the number of concurrent feeders (1 for serial).
	Producers int `json:"producers"`
	// Tuples is the stream length.
	Tuples int `json:"tuples"`
	// Seconds is the wall-clock ingest time.
	Seconds float64 `json:"seconds"`
	// TuplesPerSec is Tuples/Seconds.
	TuplesPerSec float64 `json:"tuples_per_sec"`
	// Implications is the final implication count, recorded so a variant
	// that silently drops tuples cannot report a flattering throughput.
	Implications float64 `json:"implications"`
	// AllocsPerOp is heap allocations per batch-sized chunk of the stream
	// (IngestConfig.Batch tuples) over the variant's run, whole process.
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	// BytesPerOp is heap bytes allocated per batch-sized chunk, measured
	// like AllocsPerOp.
	BytesPerOp float64 `json:"bytes_per_op,omitempty"`
}

// ingestCond mirrors the benchmark conditions: a support floor high enough
// that fringe entries confirm and move into bitmap bits.
func ingestCond() imps.Conditions {
	return imps.Conditions{MaxMultiplicity: 2, MinSupport: 5, TopC: 1, MinTopConfidence: 0.6}
}

// mutexSketch is the single-lock baseline: every producer serializes on
// one mutex in front of one sketch (what Synchronized does for arbitrary
// estimators).
type mutexSketch struct {
	mu sync.Mutex
	sk *core.Sketch
}

func (m *mutexSketch) add(a, b string) {
	m.mu.Lock()
	m.sk.Add(a, b)
	m.mu.Unlock()
}

func (m *mutexSketch) addBatch(pairs []imps.Pair) {
	m.mu.Lock()
	m.sk.AddBatch(pairs)
	m.mu.Unlock()
}

// feedConcurrent splits pairs across p producers and calls feed on each
// part, returning the wall-clock duration.
func feedConcurrent(pairs []imps.Pair, p int, feed func(part []imps.Pair)) time.Duration {
	var wg sync.WaitGroup
	per := (len(pairs) + p - 1) / p
	start := time.Now()
	for off := 0; off < len(pairs); off += per {
		end := off + per
		if end > len(pairs) {
			end = len(pairs)
		}
		wg.Add(1)
		go func(part []imps.Pair) {
			defer wg.Done()
			feed(part)
		}(pairs[off:end])
	}
	wg.Wait()
	return time.Since(start)
}

func chunks(pairs []imps.Pair, n int, each func([]imps.Pair)) {
	for off := 0; off < len(pairs); off += n {
		end := off + n
		if end > len(pairs) {
			end = len(pairs)
		}
		each(pairs[off:end])
	}
}

// RunIngest measures every ingest variant over one synthetic stream. All
// variants see the same tuples with string keys (the engine-path shape);
// key hashing is inside the timed region for every variant.
func RunIngest(cfg IngestConfig) ([]IngestRow, error) {
	cfg = cfg.withDefaults()

	d, err := gen.NewDatasetOne(gen.DatasetOneConfig{
		CardA: cfg.Tuples / 10,
		Count: cfg.Tuples / 20,
		C:     2,
		Seed:  cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	pairs := make([]imps.Pair, len(d.Pairs))
	for i, p := range d.Pairs {
		pairs[i] = imps.Pair{A: gen.Key(p.A), B: gen.Key(p.B)}
	}
	for len(pairs) < cfg.Tuples {
		pairs = append(pairs, pairs[:min(len(pairs), cfg.Tuples-len(pairs))]...)
	}
	pairs = pairs[:cfg.Tuples]

	var rows []IngestRow
	prevProcs := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prevProcs)
	for _, procs := range cfg.Procs {
		runtime.GOMAXPROCS(procs)
		if err := runIngestVariants(cfg, pairs, procs, &rows); err != nil {
			return nil, err
		}
	}
	return rows, nil
}

// runIngestVariants runs every variant once under the current GOMAXPROCS
// and appends the measured rows.
func runIngestVariants(cfg IngestConfig, pairs []imps.Pair, procs int, rows *[]IngestRow) error {
	cond := ingestCond()
	// One "op" is a batch-sized chunk of the stream for every variant, the
	// per-tuple ones included, so the allocation columns compare across
	// variants on equal footing.
	ops := (len(pairs) + cfg.Batch - 1) / cfg.Batch
	var am allocMeter
	record := func(variant string, producers int, dur time.Duration, impl float64) {
		allocs, allocBytes := am.perOp(ops)
		*rows = append(*rows, IngestRow{
			Variant:      variant,
			Procs:        procs,
			Producers:    producers,
			Tuples:       len(pairs),
			Seconds:      dur.Seconds(),
			TuplesPerSec: float64(len(pairs)) / dur.Seconds(),
			Implications: impl,
			AllocsPerOp:  allocs,
			BytesPerOp:   allocBytes,
		})
	}

	{
		sk, err := core.NewSketch(cond, cfg.Options)
		if err != nil {
			return err
		}
		am.start()
		start := time.Now()
		for _, p := range pairs {
			sk.Add(p.A, p.B)
		}
		record("serial", 1, time.Since(start), sk.ImplicationCount())
	}
	{
		sk, _ := core.NewSketch(cond, cfg.Options)
		am.start()
		start := time.Now()
		chunks(pairs, cfg.Batch, sk.AddBatch)
		record("serial-batch", 1, time.Since(start), sk.ImplicationCount())
	}
	{
		m := &mutexSketch{}
		m.sk, _ = core.NewSketch(cond, cfg.Options)
		am.start()
		dur := feedConcurrent(pairs, cfg.Producers, func(part []imps.Pair) {
			for _, p := range part {
				m.add(p.A, p.B)
			}
		})
		record("mutex", cfg.Producers, dur, m.sk.ImplicationCount())
	}
	{
		m := &mutexSketch{}
		m.sk, _ = core.NewSketch(cond, cfg.Options)
		am.start()
		dur := feedConcurrent(pairs, cfg.Producers, func(part []imps.Pair) {
			chunks(part, cfg.Batch, m.addBatch)
		})
		record("mutex-batch", cfg.Producers, dur, m.sk.ImplicationCount())
	}
	for _, n := range cfg.Shards {
		ss, err := core.NewShardedSketch(cond, cfg.Options, n)
		if err != nil {
			return err
		}
		am.start()
		dur := feedConcurrent(pairs, cfg.Producers, func(part []imps.Pair) {
			for _, p := range part {
				ss.Add(p.A, p.B)
			}
		})
		record(fmt.Sprintf("sharded-%d", n), cfg.Producers, dur, ss.ImplicationCount())

		ssb, _ := core.NewShardedSketch(cond, cfg.Options, n)
		am.start()
		dur = feedConcurrent(pairs, cfg.Producers, func(part []imps.Pair) {
			chunks(part, cfg.Batch, ssb.AddBatch)
		})
		record(fmt.Sprintf("sharded-%d-batch", n), cfg.Producers, dur, ssb.ImplicationCount())
	}
	return nil
}

// PrintIngest writes the throughput table.
func PrintIngest(w io.Writer, cfg IngestConfig, rows []IngestRow) {
	cfg = cfg.withDefaults()
	fmt.Fprintf(w, "Ingestion throughput (%d tuples, %d producers, batch %d)\n",
		cfg.Tuples, cfg.Producers, cfg.Batch)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "variant\tprocs\tproducers\ttuples/s\tseconds\tallocs/op\tKiB/op\timplications")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%d\t%d\t%.0f\t%.3f\t%.1f\t%.1f\t%.1f\n", r.Variant, r.Procs, r.Producers, r.TuplesPerSec, r.Seconds, r.AllocsPerOp, r.BytesPerOp/1024, r.Implications)
	}
	tw.Flush()
}

// ingestReport is the JSON schema of -json output.
type ingestReport struct {
	Tuples    int         `json:"tuples"`
	Producers int         `json:"producers"`
	Batch     int         `json:"batch"`
	Rows      []IngestRow `json:"rows"`
}

// WriteIngestJSON writes the rows as an indented JSON report.
func WriteIngestJSON(w io.Writer, cfg IngestConfig, rows []IngestRow) error {
	cfg = cfg.withDefaults()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(ingestReport{
		Tuples:    cfg.Tuples,
		Producers: cfg.Producers,
		Batch:     cfg.Batch,
		Rows:      rows,
	})
}
