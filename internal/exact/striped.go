package exact

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"implicate/internal/imps"
	"implicate/internal/wire"
	"implicate/internal/xhash"
)

// stripedSeed fixes the stripe router's hash. The seed never influences an
// answer (stripes partition the key space, every read sums all stripes), so
// a constant keeps key→stripe routing — and therefore IngestPartition —
// stable across restarts and restores.
const stripedSeed = 0x5ca1ab1e0ddba11

// Striped is the exact counter partitioned for concurrent ingestion: a
// power-of-two array of mutex-guarded Counters, with each A-itemset owned
// by the stripe its hash selects. Exact counting is order-independent
// across distinct keys and order-dependent only per key, so any ingestion
// schedule that preserves per-key Add order leaves state identical to the
// serial Counter — which is exactly the partition contract of
// imps.PartitionedAdder. Concurrent producers contend only when their
// tuples hash to the same stripe, and the batch path takes each stripe
// lock once per batch.
//
// All methods are safe for concurrent use. Reads lock every stripe, so
// they observe a serializable snapshot spanning all adds that returned
// before the read began.
type Striped struct {
	cond imps.Conditions
	hash xhash.Hash
	mask uint64

	stripes []counterStripe
}

// counterStripe is one mutex-guarded sub-counter, padded to a cache line so
// adjacent stripe locks do not false-share.
type counterStripe struct {
	mu sync.Mutex
	c  *Counter
	_  [48]byte
}

// NewStriped returns a striped exact counter. stripes must be a power of
// two >= 1; stripes == 0 selects GOMAXPROCS rounded down to a power of two.
func NewStriped(cond imps.Conditions, stripes int) (*Striped, error) {
	if stripes == 0 {
		stripes = 1
		for stripes*2 <= runtime.GOMAXPROCS(0) {
			stripes *= 2
		}
	}
	if stripes < 1 || stripes&(stripes-1) != 0 {
		return nil, fmt.Errorf("exact: stripe count %d must be a power of two", stripes)
	}
	s := &Striped{
		cond:    cond,
		hash:    xhash.New(stripedSeed),
		mask:    uint64(stripes - 1),
		stripes: make([]counterStripe, stripes),
	}
	for i := range s.stripes {
		c, err := NewCounter(cond)
		if err != nil {
			return nil, err
		}
		s.stripes[i].c = c
	}
	return s, nil
}

// Conditions returns the implication conditions the counter enforces.
func (s *Striped) Conditions() imps.Conditions { return s.cond }

// Stripes returns the stripe count.
func (s *Striped) Stripes() int { return len(s.stripes) }

// Add observes one tuple, locking only the stripe that owns a.
func (s *Striped) Add(a, b string) {
	st := &s.stripes[s.hash.Sum(a)&s.mask]
	st.mu.Lock()
	st.c.Add(a, b)
	st.mu.Unlock()
}

// AddBatch observes a batch of encoded itemset pairs, hashing each key
// once and holding each stripe lock across runs of consecutive same-stripe
// pairs. Pairs are applied in batch order, which preserves per-key order —
// all a key's pairs share a stripe — so the result matches the serial
// Counter. A planned partition bucket (query.Statement.PlanPartitions) is
// entirely one stripe whenever the partition count is at least the stripe
// count, both being low bits of the same hash: the common case is one
// lock acquisition for the whole bucket.
func (s *Striped) AddBatch(pairs []imps.Pair) {
	if len(pairs) == 0 {
		return
	}
	if len(s.stripes) == 1 {
		st := &s.stripes[0]
		st.mu.Lock()
		for i := range pairs {
			st.c.Add(pairs[i].A, pairs[i].B)
		}
		st.mu.Unlock()
		return
	}
	cur := -1
	for i := range pairs {
		si := int(s.hash.Sum(pairs[i].A) & s.mask)
		if si != cur {
			if cur >= 0 {
				s.stripes[cur].mu.Unlock()
			}
			s.stripes[si].mu.Lock()
			cur = si
		}
		s.stripes[si].c.Add(pairs[i].A, pairs[i].B)
	}
	s.stripes[cur].mu.Unlock()
}

// IngestPartition implements imps.PartitionedAdder: the partition is the
// low bits of the fixed-seed key hash. Exact counting is order-sensitive
// only per key, and a key's tuples always share a partition, so any
// schedule preserving per-partition order reproduces the serial state for
// every power-of-two n — independent of the stripe count, since stripes
// only guard memory, never ordering.
func (s *Striped) IngestPartition(a []byte, n int) int {
	return int(s.hash.SumBytes(a) & uint64(n-1))
}

// IngestPartitionString implements imps.StringPartitioner; see
// IngestPartition.
func (s *Striped) IngestPartitionString(a string, n int) int {
	return int(s.hash.Sum(a) & uint64(n-1))
}

// HashPairKeys implements imps.HashedPartitionedAdder. Only the A key is
// hashed — stripes and partitions both route on it — so bh is 0.
func (s *Striped) HashPairKeys(a, b string) (ah, bh uint64) {
	return s.hash.Sum(a), 0
}

// IngestPartitionHashed routes a pre-hashed A key; identical to
// IngestPartitionString for hashes from HashPairKeys, both masking the
// same fixed-seed hash value.
func (s *Striped) IngestPartitionHashed(ah uint64, n int) int {
	return int(ah & uint64(n-1))
}

// AddHashedPairs ingests plan-IR pairs whose AH came from HashPairKeys,
// reusing the forwarded hash for stripe routing instead of re-hashing. The
// per-stripe Counter indexes by key string, so the apply is byte-identical
// to AddBatch of the same pairs.
func (s *Striped) AddHashedPairs(pairs []imps.HashedPair) {
	if len(pairs) == 0 {
		return
	}
	if len(s.stripes) == 1 {
		st := &s.stripes[0]
		st.mu.Lock()
		for i := range pairs {
			st.c.Add(pairs[i].A, pairs[i].B)
		}
		st.mu.Unlock()
		return
	}
	cur := -1
	for i := range pairs {
		si := int(pairs[i].AH & s.mask)
		if si != cur {
			if cur >= 0 {
				s.stripes[cur].mu.Unlock()
			}
			s.stripes[si].mu.Lock()
			cur = si
		}
		s.stripes[si].c.Add(pairs[i].A, pairs[i].B)
	}
	s.stripes[cur].mu.Unlock()
}

func (s *Striped) lockAll() {
	for i := range s.stripes {
		s.stripes[i].mu.Lock()
	}
}

func (s *Striped) unlockAll() {
	for i := range s.stripes {
		s.stripes[i].mu.Unlock()
	}
}

// ImplicationCount returns the exact implication count S.
func (s *Striped) ImplicationCount() float64 {
	s.lockAll()
	defer s.unlockAll()
	var n int64
	for i := range s.stripes {
		n += s.stripes[i].c.implications
	}
	return float64(n)
}

// NonImplicationCount returns the exact non-implication count ~S.
func (s *Striped) NonImplicationCount() float64 {
	s.lockAll()
	defer s.unlockAll()
	var n int64
	for i := range s.stripes {
		n += s.stripes[i].c.nonImplications
	}
	return float64(n)
}

// SupportedDistinct returns the exact F0^sup(A).
func (s *Striped) SupportedDistinct() float64 {
	s.lockAll()
	defer s.unlockAll()
	var n int64
	for i := range s.stripes {
		n += s.stripes[i].c.supported
	}
	return float64(n)
}

// DistinctCount returns the exact F0(A).
func (s *Striped) DistinctCount() float64 {
	s.lockAll()
	defer s.unlockAll()
	var n int
	for i := range s.stripes {
		n += len(s.stripes[i].c.items)
	}
	return float64(n)
}

// Tuples returns the number of tuples observed across all stripes.
func (s *Striped) Tuples() int64 {
	s.lockAll()
	defer s.unlockAll()
	var n int64
	for i := range s.stripes {
		n += s.stripes[i].c.tuples
	}
	return n
}

// MemEntries reports held counter entries across all stripes.
func (s *Striped) MemEntries() int {
	s.lockAll()
	defer s.unlockAll()
	var n int
	for i := range s.stripes {
		n += s.stripes[i].c.entries
	}
	return n
}

// AvgMultiplicity returns the mean number of distinct B-partners over the
// itemsets currently in the implication count, or 0 when the count is
// empty.
func (s *Striped) AvgMultiplicity() float64 {
	s.lockAll()
	defer s.unlockAll()
	var n, sum float64
	for i := range s.stripes {
		for _, st := range s.stripes[i].c.items {
			if !st.out && st.supp >= s.cond.MinSupport {
				n++
				sum += float64(len(st.perB))
			}
		}
	}
	if n == 0 {
		return 0
	}
	return sum / n
}

// ConfigFingerprint identifies the algorithm and its conditions. The stripe
// count is deliberately excluded: it partitions memory without affecting
// any answer, like a sketch's auto-derived seed.
func (s *Striped) ConfigFingerprint() string {
	return fmt.Sprintf("exact-striped(%s)", s.cond)
}

const stripedMagic = "EXCS\x01"

// MarshalBinary encodes the counter's logical state: the merged item table
// across all stripes, globally sorted. The stripe count is not part of the
// encoding, so two Striped counters holding the same logical state produce
// identical bytes whatever their stripe geometry — the bit-identity the
// determinism suite asserts against a serial shadow.
func (s *Striped) MarshalBinary() ([]byte, error) {
	s.lockAll()
	defer s.unlockAll()

	e := wire.NewEncoder(1024)
	e.Raw([]byte(stripedMagic))
	e.U32(uint32(s.cond.MaxMultiplicity))
	e.I64(s.cond.MinSupport)
	e.U32(uint32(s.cond.TopC))
	e.F64(s.cond.MinTopConfidence)

	var tuples int64
	var nitems int
	for i := range s.stripes {
		tuples += s.stripes[i].c.tuples
		nitems += len(s.stripes[i].c.items)
	}
	e.I64(tuples)

	keys := make([]string, 0, nitems)
	for i := range s.stripes {
		for a := range s.stripes[i].c.items {
			keys = append(keys, a)
		}
	}
	sort.Strings(keys)
	e.U32(uint32(len(keys)))
	for _, a := range keys {
		st := s.stripes[s.hash.Sum(a)&s.mask].c.items[a]
		e.Str(a)
		e.I64(st.supp)
		e.Bool(st.out)
		if st.out {
			continue
		}
		bs := make([]string, 0, len(st.perB))
		for b := range st.perB {
			bs = append(bs, b)
		}
		sort.Strings(bs)
		e.U32(uint32(len(bs)))
		for _, b := range bs {
			e.Str(b)
			e.I64(st.perB[b])
		}
	}
	return e.Bytes(), nil
}

// UnmarshalStriped decodes state previously encoded with MarshalBinary
// into a counter with the given stripe count (0 selects the NewStriped
// default). The encoding is stripe-independent, so any geometry restores
// the same logical state.
func UnmarshalStriped(data []byte, stripes int) (*Striped, error) {
	d := wire.NewDecoder(data)
	d.Magic(stripedMagic)

	var cond imps.Conditions
	cond.MaxMultiplicity = int(d.U32())
	cond.MinSupport = d.I64()
	cond.TopC = int(d.U32())
	cond.MinTopConfidence = d.F64()
	if err := d.Err(); err != nil {
		return nil, err
	}
	s, err := NewStriped(cond, stripes)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", wire.ErrCorrupt, err)
	}
	wantTuples := d.I64()
	if wantTuples < 0 {
		return nil, wire.ErrCorrupt
	}

	var tuples int64
	nitems := d.Count(13)
	for i := 0; i < nitems; i++ {
		a := d.Str(1 << 24)
		st := &state{supp: d.I64(), out: d.Bool()}
		if d.Err() != nil {
			return nil, d.Err()
		}
		if st.supp < 1 {
			return nil, wire.ErrCorrupt
		}
		if !st.out {
			npairs := d.Count(12)
			st.perB = make(map[string]int64, npairs)
			for p := 0; p < npairs; p++ {
				b := d.Str(1 << 24)
				n := d.I64()
				if d.Err() != nil {
					return nil, d.Err()
				}
				if n < 1 {
					return nil, wire.ErrCorrupt
				}
				if _, dup := st.perB[b]; dup {
					return nil, wire.ErrCorrupt
				}
				st.perB[b] = n
			}
		}
		c := s.stripes[s.hash.Sum(a)&s.mask].c
		if _, dup := c.items[a]; dup {
			return nil, wire.ErrCorrupt
		}
		if err := c.restoreItem(a, st); err != nil {
			return nil, err
		}
		tuples += st.supp
		c.tuples += st.supp
	}
	if err := d.Done(); err != nil {
		return nil, err
	}
	// Every Add increments exactly one item's support alongside the tuple
	// count, so the two totals must agree.
	if tuples != wantTuples {
		return nil, wire.ErrCorrupt
	}
	return s, nil
}

// restoreItem installs a decoded item and folds it into the cached
// aggregates, mirroring the accounting of UnmarshalCounter.
func (c *Counter) restoreItem(a string, st *state) error {
	c.items[a] = st
	c.entries++
	c.entries += len(st.perB)
	if st.supp >= c.cond.MinSupport {
		c.supported++
		if st.out {
			c.nonImplications++
		} else {
			c.implications++
		}
	} else if st.out {
		// An item below the minimum support can never have been excluded.
		return wire.ErrCorrupt
	}
	return nil
}

var _ imps.Estimator = (*Striped)(nil)
var _ imps.MultiplicityAverager = (*Striped)(nil)
var _ imps.PartitionedAdder = (*Striped)(nil)
var _ imps.HashedPartitionedAdder = (*Striped)(nil)
var _ imps.BatchAdder = (*Striped)(nil)
