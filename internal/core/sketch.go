package core

import (
	"fmt"
	"iter"
	"math"

	"implicate/internal/fm"
	"implicate/internal/imps"
	"implicate/internal/xhash"
)

// Levels is the number of cells per bitmap. With 64 cells the sketch can
// count up to 2^64 distinct itemsets, far beyond any compound cardinality
// the paper considers (IPv6 address spaces included).
const Levels = 64

// Default option values, matching the paper's experimental configuration
// (Table 5): 64 bitmaps, fringe size four, capacity slack two.
const (
	DefaultBitmaps    = 64
	DefaultFringeSize = 4
	DefaultSlack      = 2
)

// Options configure a Sketch. The zero value selects the paper defaults.
type Options struct {
	// Bitmaps is the number m of concurrently maintained bitmaps used for
	// stochastic averaging; it must be a power of two. Default 64.
	Bitmaps int
	// FringeSize is F, the bounded size of the floating fringe zone in
	// cells. Default 4. Ignored when Unbounded is set.
	FringeSize int
	// Unbounded disables fringe bounding: every cell from the least
	// significant up to the rightmost hashed one tracks its itemsets and
	// cells never overflow. This is the straightforward O(K·|A|) algorithm
	// of §4.2, kept as the reference the bounded fringe is compared against
	// (the "Unbounded Fringe" series of Figures 4–6).
	Unbounded bool
	// Slack multiplies the expected per-cell itemset capacity to absorb
	// hash-function unevenness (§4.3.2 suggests doubling). Default 2.
	Slack int
	// Seed selects the hash family members; two sketches with equal seeds
	// and options observe streams identically.
	Seed uint64
}

func (o Options) withDefaults() Options {
	if o.Bitmaps == 0 {
		o.Bitmaps = DefaultBitmaps
	}
	if o.FringeSize == 0 {
		o.FringeSize = DefaultFringeSize
	}
	if o.Slack == 0 {
		o.Slack = DefaultSlack
	}
	return o
}

// Sketch is the NIPS/CI estimator: it samples O(K) itemset pairs per bitmap,
// driven by the hash representation of the A-itemsets, and answers
// implication-count queries at any moment. It implements imps.Estimator.
//
// A Sketch is not safe for concurrent use.
type Sketch struct {
	cond   imps.Conditions
	opts   Options
	router xhash.Router
	ahash  xhash.Hash
	bhash  xhash.Hash
	bms    []bitmap

	tuples  int64
	entries int // live counter entries across all cells
	peak    int // high-water mark of entries

	scratch []int64 // top-c selection buffer, reused across Adds
}

// NewSketch returns a NIPS/CI sketch for the given implication conditions.
func NewSketch(cond imps.Conditions, opts Options) (*Sketch, error) {
	if err := cond.Validate(); err != nil {
		return nil, err
	}
	opts = opts.withDefaults()
	if opts.FringeSize < 1 || opts.FringeSize > Levels {
		return nil, fmt.Errorf("core: fringe size %d out of range [1,%d]", opts.FringeSize, Levels)
	}
	if opts.Slack < 1 {
		return nil, fmt.Errorf("core: slack %d must be >= 1", opts.Slack)
	}
	router, err := xhash.NewRouter(opts.Bitmaps)
	if err != nil {
		return nil, err
	}
	scratchCap := cond.MaxMultiplicity + 1
	if scratchCap > 64 {
		scratchCap = 64 // the buffer grows on demand for outsized K
	}
	s := &Sketch{
		cond:    cond,
		opts:    opts,
		router:  router,
		ahash:   xhash.New(opts.Seed),
		bhash:   xhash.New(xhash.Mix(opts.Seed + 0x9e3779b97f4a7c15)),
		bms:     make([]bitmap, opts.Bitmaps),
		scratch: make([]int64, 0, scratchCap),
	}
	for i := range s.bms {
		s.bms[i].init()
	}
	return s, nil
}

// MustSketch is NewSketch for statically known parameters; it panics on
// error.
func MustSketch(cond imps.Conditions, opts Options) *Sketch {
	s, err := NewSketch(cond, opts)
	if err != nil {
		panic(err)
	}
	return s
}

// Conditions returns the implication conditions the sketch enforces.
func (s *Sketch) Conditions() imps.Conditions { return s.cond }

// Options returns the effective (defaulted) options.
func (s *Sketch) Options() Options { return s.opts }

// ConfigFingerprint identifies the sketch algorithm and its
// accuracy-relevant configuration; the seed is excluded (see
// imps.ConfigFingerprinter).
func (s *Sketch) ConfigFingerprint() string {
	return fmt.Sprintf("nips(%s|m=%d,F=%d,unbounded=%t,slack=%d)",
		s.cond, s.opts.Bitmaps, s.opts.FringeSize, s.opts.Unbounded, s.opts.Slack)
}

// Add observes one tuple: a is the encoded A-itemset, b the encoded
// B-itemset.
func (s *Sketch) Add(a, b string) {
	s.AddHashed(s.ahash.Sum(a), s.bhash.Sum(b))
}

// AddIDs observes a tuple whose itemsets are identified by integers, the
// fast path for synthetic workloads.
func (s *Sketch) AddIDs(a, b uint64) {
	s.AddHashed(s.ahash.SumUint64(a), s.bhash.SumUint64(b))
}

// AddBytes observes a tuple whose itemsets are encoded as byte slices; it is
// equivalent to Add(string(a), string(b)) without the conversion
// allocations, the right entry point for decode loops that reuse buffers.
func (s *Sketch) AddBytes(a, b []byte) {
	s.AddHashed(s.ahash.SumBytes(a), s.bhash.SumBytes(b))
}

// AddHashed observes a tuple by the 64-bit hashes of its itemsets. Itemsets
// are identified by their full hash value from here on; a collision merges
// two itemsets, which perturbs counts with probability ~n²/2^64 — far below
// the sketch's probabilistic error.
func (s *Sketch) AddHashed(ah, bh uint64) {
	s.tuples++
	bm, rank := s.router.Route(ah)
	if rank >= Levels {
		rank = Levels - 1
	}
	s.add(&s.bms[bm], rank, ah, bh)
}

// HashedPair is one pre-hashed tuple: the 64-bit itemset hashes an Add path
// would have computed. Batches of them amortize per-call overhead on the
// ingest hot path and are the unit the sharded router distributes.
type HashedPair struct {
	AH, BH uint64
}

// AddHashedBatch observes a batch of pre-hashed tuples. It is equivalent to
// calling AddHashed for each element, amortizing the per-call overhead.
func (s *Sketch) AddHashedBatch(batch []HashedPair) {
	s.tuples += int64(len(batch))
	for i := range batch {
		bm, rank := s.router.Route(batch[i].AH)
		if rank >= Levels {
			rank = Levels - 1
		}
		s.add(&s.bms[bm], rank, batch[i].AH, batch[i].BH)
	}
}

// AddBatch observes a batch of encoded itemset pairs in order; it is the
// imps.BatchAdder path, equivalent to calling Add for each pair.
func (s *Sketch) AddBatch(pairs []imps.Pair) {
	for i := range pairs {
		s.AddHashed(s.ahash.Sum(pairs[i].A), s.bhash.Sum(pairs[i].B))
	}
}

// HashPair pre-hashes one encoded itemset pair for AddHashedBatch.
func (s *Sketch) HashPair(a, b string) HashedPair {
	return HashedPair{AH: s.ahash.Sum(a), BH: s.bhash.Sum(b)}
}

// HashIDs pre-hashes one integer-identified tuple for AddHashedBatch.
func (s *Sketch) HashIDs(a, b uint64) HashedPair {
	return HashedPair{AH: s.ahash.SumUint64(a), BH: s.bhash.SumUint64(b)}
}

// addRouted ingests one tuple the caller has already routed: localBM indexes
// this sketch's own bms slice and rank is already clamped to Levels-1. It is
// the shard ingest entry — a ShardedSketch routes against the global bitmap
// count and owns the mapping from global to shard-local bitmap indices.
func (s *Sketch) addRouted(localBM, rank int, ah, bh uint64) {
	s.tuples++
	s.add(&s.bms[localBM], rank, ah, bh)
}

// Tuples returns the number of tuples observed.
func (s *Sketch) Tuples() int64 { return s.tuples }

// MemEntries returns the number of live counter entries (a-support counters
// plus (a,b) pair counters) across all bitmaps — the footprint measure used
// in §4.6 and Table 5.
func (s *Sketch) MemEntries() int { return s.entries }

// PeakMemEntries returns the high-water mark of MemEntries over the
// sketch's lifetime.
func (s *Sketch) PeakMemEntries() int { return s.peak }

// ImplicationCount estimates S, the number of distinct A-itemsets implying
// B.
//
// It reads the fringe as what it structurally is: a hash-driven distinct
// sample with known inclusion probabilities. An itemset whose hash ranks it
// into cell j of one of the m bitmaps is tracked there with probability
// (1/m)·2^−(j+1), and a tracked supported itemset is necessarily implying —
// had it violated a condition, its whole cell would have turned to one on
// the spot. Summing the supported census of every live fringe cell and
// dividing by the total inclusion mass of those cells gives a
// Horvitz–Thompson estimate of S whose error stays proportional to S
// itself. The paper's Algorithm 2 (the difference of two probabilistic
// counts) is kept as CIImplicationCount; its error is proportional to
// F0^sup(A) instead and therefore explodes for small S/F0 ratios (§4.7.2
// concedes this). The experiment harness compares both.
func (s *Sketch) ImplicationCount() float64 {
	return implicationCountOver(s.bitmaps(), len(s.bms))
}

// ImplicationCountInterval returns an approximate confidence interval
// around ImplicationCount at z standard errors (z=2 covers roughly 95% in
// the Gaussian approximation). Two variance sources combine in quadrature:
// the Poisson-like noise of the fringe sample's implication census (which
// dominates when few implications are tracked), and the per-bitmap
// hash-placement variance of stochastic averaging (which dominates when
// the census is large — the same ~1/√m law as every FM-family sketch).
// The interval is clamped at zero. An empty sketch returns a small
// non-degenerate interval — having seen nothing, it cannot rule out small
// counts.
func (s *Sketch) ImplicationCountInterval(z float64) (lo, hi float64) {
	return implicationIntervalOver(s.bitmaps(), len(s.bms), z)
}

// bitmaps yields the sketch's bitmaps. The estimator readers are written
// against this iterator so a ShardedSketch can run the identical arithmetic
// over bitmaps owned by several shard sub-sketches.
func (s *Sketch) bitmaps() iter.Seq[*bitmap] {
	return func(yield func(*bitmap) bool) {
		for i := range s.bms {
			if !yield(&s.bms[i]) {
				return
			}
		}
	}
}

// implicationSampleOver returns the fringe sample's implication census and
// the total inclusion mass of the observable cells across bms.
func implicationSampleOver(bms iter.Seq[*bitmap]) (obs, mass float64) {
	for b := range bms {
		if b.hi < 0 {
			mass++
			continue
		}
		for j := b.lo; j <= b.hi; j++ {
			if b.dead[j] {
				continue
			}
			mass += math.Exp2(-float64(j + 1))
			if c := b.cells[j]; c != nil {
				obs += float64(c.nSupported)
			}
		}
		mass += math.Exp2(-float64(b.hi + 1))
	}
	return obs, mass
}

// implicationCountOver is the Horvitz–Thompson estimate of S over the m
// bitmaps yielded by bms (see Sketch.ImplicationCount).
func implicationCountOver(bms iter.Seq[*bitmap], m int) float64 {
	obs, mass := implicationSampleOver(bms)
	if mass <= 0 {
		return 0
	}
	return obs * float64(m) / mass
}

// implicationIntervalOver is the confidence interval around the direct
// estimate (see Sketch.ImplicationCountInterval).
func implicationIntervalOver(bms iter.Seq[*bitmap], mInt int, z float64) (lo, hi float64) {
	obs, mass := implicationSampleOver(bms)
	if mass <= 0 {
		return 0, 0
	}
	m := float64(mInt)
	factor := m / mass
	est := obs * factor
	census := math.Sqrt(obs+1) * factor // +1 keeps zero-census intervals honest
	placement := est / math.Sqrt(m)
	stderr := math.Sqrt(census*census + placement*placement)
	lo = est - z*stderr
	if lo < 0 {
		lo = 0
	}
	return lo, est + z*stderr
}

// CIImplicationCount is Algorithm 2 (CI): S = F0^sup(A) − ~S, the
// difference of the two position-based probabilistic counts with bias and
// small-range corrections applied to both terms, clamped at zero.
func (s *Sketch) CIImplicationCount() float64 {
	d := s.SupportedDistinct() - s.NonImplicationCount()
	if d < 0 {
		return 0
	}
	return d
}

// RawImplicationCount is Algorithm 2 with the paper's plain 2^R arithmetic
// (scaled across bitmaps, no small-range correction); exposed for the
// estimator ablation.
func (s *Sketch) RawImplicationCount() float64 {
	d := fm.RawEstimate(s.meanR((*bitmap).rSupported), len(s.bms)) -
		fm.RawEstimate(s.meanR((*bitmap).rNonImplication), len(s.bms))
	if d < 0 {
		return 0
	}
	return d
}

// NonImplicationCount estimates ~S: distinct A-itemsets that met the
// support condition but violated multiplicity or top-confidence.
func (s *Sketch) NonImplicationCount() float64 {
	return fm.CorrectedEstimate(s.meanR((*bitmap).rNonImplication), len(s.bms))
}

// SupportedDistinct estimates F0^sup(A): distinct A-itemsets meeting the
// minimum-support condition (§4.4 — read off the same bitmaps at no extra
// memory cost).
func (s *Sketch) SupportedDistinct() float64 {
	return fm.CorrectedEstimate(s.meanR((*bitmap).rSupported), len(s.bms))
}

// DistinctCount estimates F0(A): all distinct A-itemsets seen, regardless
// of support (the plain distinct-count statistic the framework
// generalizes).
func (s *Sketch) DistinctCount() float64 {
	return fm.CorrectedEstimate(s.meanR((*bitmap).rHashed), len(s.bms))
}

// AvgMultiplicity estimates the mean number of distinct B-partners over
// implicating itemsets (Table 2's complex-aggregate row) as the sample mean
// over the tracked supported itemsets — each is currently implying, and the
// fringe sample is a hash-uniform subset of the implicating population, so
// the plain mean is unbiased. Returns 0 when nothing qualifies.
func (s *Sketch) AvgMultiplicity() float64 {
	return avgMultiplicityOver(s.bitmaps(), s.cond.MinSupport)
}

// avgMultiplicityOver is the fringe-sample mean multiplicity over bms (see
// Sketch.AvgMultiplicity).
func avgMultiplicityOver(bms iter.Seq[*bitmap], minSupport int64) float64 {
	var n, sum float64
	for b := range bms {
		if b.hi < 0 {
			continue
		}
		for j := b.lo; j <= b.hi; j++ {
			c := b.cells[j]
			if b.dead[j] || c == nil || c.suppOnly {
				continue
			}
			for k := range c.items {
				st := &c.items[k].st
				if !st.excluded && st.supp >= minSupport {
					n++
					sum += float64(len(st.perB))
				}
			}
		}
	}
	if n == 0 {
		return 0
	}
	return sum / n
}

// MinEstimable returns the smallest non-implication count the bounded
// fringe can resolve, 2^−F · F0(A) (§4.3.3); smaller counts are clamped to
// it. For unbounded sketches it returns 0.
func (s *Sketch) MinEstimable() float64 {
	if s.opts.Unbounded {
		return 0
	}
	return math.Exp2(-float64(s.opts.FringeSize)) * s.DistinctCount()
}

func (s *Sketch) meanR(r func(*bitmap) int) float64 {
	return meanROver(s.bitmaps(), len(s.bms), r)
}

// meanROver averages a per-bitmap position reader over the m bitmaps
// yielded by bms — the stochastic-averaging step of Algorithm 2.
func meanROver(bms iter.Seq[*bitmap], m int, r func(*bitmap) int) float64 {
	var sum int
	for b := range bms {
		sum += r(b)
	}
	return float64(sum) / float64(m)
}

// FringeStats describes the occupancy of the floating fringes, used by the
// Lemma 2 validation bench.
type FringeStats struct {
	// TrackedItemsets is the number of A-itemsets currently tracked in
	// fringe or support-only cells across all bitmaps.
	TrackedItemsets int
	// PairCounters is the number of live (a,b) counters.
	PairCounters int
	// Tombstones is the number of excluded-itemset markers held in live
	// cells.
	Tombstones int
	// MaxFringeWidth is the widest live fringe (hi−lo+1) across bitmaps.
	MaxFringeWidth int
	// Overflows counts cells forced to one because their capacity was
	// exhausted.
	Overflows int
}

// Reset returns the sketch to its freshly constructed state (same
// conditions, options and seed), releasing all tracking memory. Sliding
// windows and pooled estimators can recycle sketches instead of allocating
// new ones.
func (s *Sketch) Reset() {
	for i := range s.bms {
		s.bms[i] = bitmap{}
		s.bms[i].init()
	}
	s.tuples = 0
	s.entries = 0
	s.peak = 0
}

// Fringe returns current fringe occupancy statistics.
func (s *Sketch) Fringe() FringeStats {
	return fringeStatsOver(s.bitmaps())
}

// fringeStatsOver collects fringe occupancy statistics over bms.
func fringeStatsOver(bms iter.Seq[*bitmap]) FringeStats {
	var st FringeStats
	for b := range bms {
		if b.hi >= 0 {
			if w := b.hi - b.lo + 1; w > st.MaxFringeWidth {
				st.MaxFringeWidth = w
			}
		}
		st.Overflows += b.overflows
		for _, c := range b.cells {
			if c == nil {
				continue
			}
			st.TrackedItemsets += len(c.items) - c.nExcluded
			st.Tombstones += c.nExcluded
			for j := range c.items {
				st.PairCounters += len(c.items[j].st.perB)
			}
		}
	}
	return st
}

var _ imps.Estimator = (*Sketch)(nil)
var _ imps.MultiplicityAverager = (*Sketch)(nil)
