// Distributed simulates the sensor-network aggregation setting of §2:
// eight leaf nodes each observe a slice of the global traffic under tight
// memory budgets, run the implication query locally, serialize their
// state, and ship it up a two-level aggregation tree where the sketches
// are merged. The root answers global implication queries without any
// node ever holding the stream — the bandwidth spent is the serialized
// sketch size instead of the raw tuples.
//
// Constrained nodes also die. One leaf checkpoints its engine to local
// storage as it streams and is killed partway through; it recovers by
// restoring the checkpoint and replaying its slice of the stream from the
// recorded offset. The recovered node's sketch is bit-identical to an
// uncrashed shadow node's, so the aggregation tree cannot tell there was
// ever a failure.
package main

import (
	"bytes"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"implicate"
	"implicate/internal/gen"
)

const (
	leaves        = 8
	tuplesPerLeaf = 150_000
	total         = leaves * tuplesPerLeaf

	crashLeaf = 5           // the leaf that dies
	crashAt   = total * 3 / 5 // global tuple index of the crash
	ckptEvery = 20_000      // leaf tuples between checkpoints
)

var genConfig = gen.NetTrafficConfig{
	Seed: 17, Sources: 30_000, Destinations: 8_000,
	FlashSources: 2_000, FlashTargets: 1, FlashAfter: 400_000,
}

const sql = `SELECT COUNT(DISTINCT Source) FROM traffic
	WHERE Source IMPLIES Destination
	WITH SUPPORT >= 12, MULTIPLICITY <= 2, CONFIDENCE >= 0.9 TOP 1`

// leafBackend builds merge-compatible sketches: identical options
// everywhere, explicit seed so a recovered node grows exactly like an
// uncrashed one.
func leafBackend(cond implicate.Conditions) (implicate.Estimator, error) {
	return implicate.NewSketch(cond, implicate.Options{Seed: 99})
}

func newLeaf(schema *implicate.Schema) *implicate.Engine {
	eng := implicate.NewEngine(schema)
	if _, err := eng.RegisterSQL(sql, leafBackend); err != nil {
		log.Fatal(err)
	}
	return eng
}

func leafSketch(eng *implicate.Engine) *implicate.Sketch {
	return eng.Statements()[0].Estimator().(*implicate.Sketch)
}

func main() {
	// Global question: how many sources talk to a single destination at
	// least 90% of the time? (Sources are spread across leaves, so no leaf
	// can answer alone.)
	cond := implicate.Conditions{
		MaxMultiplicity:  2,
		MinSupport:       12,
		TopC:             1,
		MinTopConfidence: 0.9,
	}

	// Ground truth across the union of all leaf streams.
	truth, err := implicate.NewExact(cond)
	if err != nil {
		log.Fatal(err)
	}

	// Each leaf sees the same global population of flows but only a shard
	// of the packets (packets of one flow hash to any leaf — think ECMP).
	g := gen.NewNetTraffic(genConfig)
	schema := gen.NetTrafficSchema()
	src := schema.MustProj("Source")
	dst := schema.MustProj("Destination")

	ckptDir, err := os.MkdirTemp("", "implicate-distributed")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(ckptDir)
	ckptPath := filepath.Join(ckptDir, "leaf5.ckpt")

	engines := make([]*implicate.Engine, leaves)
	for i := range engines {
		engines[i] = newLeaf(schema)
	}
	// The shadow is what the crashing leaf would have been had it lived —
	// the yardstick for "recovery loses nothing".
	shadow := newLeaf(schema)

	victim := engines[crashLeaf]
	var victimTuples, checkpoints int64
	var rawBytes int64
	for i := int64(0); i < total; i++ {
		t, err := g.Next()
		if err != nil {
			log.Fatal(err)
		}
		a, b := src.Key(t), dst.Key(t)
		truth.Add(a, b)
		rawBytes += int64(len(a) + len(b))

		leaf := i % leaves
		if leaf != crashLeaf {
			engines[leaf].Process(t)
			continue
		}
		shadow.Process(t)
		if victim == nil {
			continue // the leaf is down; its packets are replayed on recovery
		}
		victim.Process(t)
		victimTuples++
		if victimTuples%ckptEvery == 0 {
			// The offset is the GLOBAL stream position: recovery replays the
			// deterministic global stream from there and re-filters its slice.
			snap, err := implicate.CaptureCheckpoint(victim, i+1)
			if err != nil {
				log.Fatal(err)
			}
			if err := implicate.WriteCheckpoint(ckptPath, snap); err != nil {
				log.Fatal(err)
			}
			checkpoints++
		}
		if i >= crashAt {
			victim = nil // the node dies; only the checkpoint file survives
		}
	}

	// Recovery: restore the engine from the last checkpoint (queries and
	// sketch state included; no WINDOW clause, so no resolver needed), then
	// replay the node's slice of the stream from the recorded offset.
	snap, err := implicate.ReadCheckpoint(ckptPath)
	if err != nil {
		log.Fatal(err)
	}
	recovered, err := implicate.RestoreCheckpoint(snap, schema, nil)
	if err != nil {
		log.Fatal(err)
	}
	replay := gen.NewNetTraffic(genConfig)
	var replayed int64
	for i := int64(0); i < total; i++ {
		t, err := replay.Next()
		if err != nil {
			log.Fatal(err)
		}
		if i < snap.Offset || i%leaves != crashLeaf {
			continue
		}
		recovered.Process(t)
		replayed++
	}
	engines[crashLeaf] = recovered

	// The recovered node must be indistinguishable from the shadow — not
	// merely close: bit-identical serialized state.
	recBlob, err := leafSketch(recovered).MarshalBinary()
	if err != nil {
		log.Fatal(err)
	}
	shadowBlob, err := leafSketch(shadow).MarshalBinary()
	if err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(recBlob, shadowBlob) {
		log.Fatalf("recovered leaf diverged from the uncrashed shadow (%d vs %d bytes)",
			len(recBlob), len(shadowBlob))
	}

	// Level 1: leaves serialize and ship to two relays; relays merge four
	// sketches each. Level 2: relays ship to the root.
	var shipped int64
	relay := func(members []*implicate.Sketch) *implicate.Sketch {
		var agg *implicate.Sketch
		for _, m := range members {
			blob, err := m.MarshalBinary()
			if err != nil {
				log.Fatal(err)
			}
			shipped += int64(len(blob))
			restored, err := implicate.UnmarshalSketch(blob)
			if err != nil {
				log.Fatal(err)
			}
			if agg == nil {
				agg = restored
				continue
			}
			if err := agg.Merge(restored); err != nil {
				log.Fatal(err)
			}
		}
		return agg
	}
	sketches := make([]*implicate.Sketch, leaves)
	for i, e := range engines {
		sketches[i] = leafSketch(e)
	}
	relayA := relay(sketches[:leaves/2])
	relayB := relay(sketches[leaves/2:])
	root := relay([]*implicate.Sketch{relayA, relayB})

	est := root.ImplicationCount()
	lo, hi := root.ImplicationCountInterval(2)
	exact := truth.ImplicationCount()
	fmt.Printf("distributed: %d leaves × %d tuples, two-level aggregation\n", leaves, tuplesPerLeaf)
	fmt.Printf("  leaf %d killed at global tuple %d; %d checkpoints written\n", crashLeaf, crashAt, checkpoints)
	fmt.Printf("  recovered from offset %d, replayed %d leaf tuples\n", snap.Offset, replayed)
	fmt.Printf("  recovered state vs uncrashed shadow: bit-identical (%d bytes)\n", len(recBlob))
	fmt.Printf("  exact single-destination sources: %.0f\n", exact)
	fmt.Printf("  merged-sketch estimate:           %.0f  (95%% interval [%.0f, %.0f])\n", est, lo, hi)
	fmt.Printf("  relative error:                   %.1f%%\n", 100*abs(est-exact)/exact)
	fmt.Printf("  bytes shipped upstream:           %d (raw stream would be %d — %.0fx saving)\n",
		shipped, rawBytes, float64(rawBytes)/float64(shipped))
	fmt.Printf("  root memory:                      %d counter entries\n", root.MemEntries())
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
