// Package window implements the incremental and sliding-window techniques
// of §3.2. The base framework counts implications from a fixed reference
// point; Incremental differencing answers "how many NEW itemsets with the
// implication property appeared between t1 and t2" (Figure 1), and Sliding
// maintains a vector of estimators with staggered origins, retiring old
// ones, to answer moving-window queries (Figure 2).
package window

import (
	"fmt"

	"implicate/internal/imps"
)

// Mark is a snapshot of an estimator's counts at a reference point.
type Mark struct {
	Label  string
	Tuples int64
	// Implications is ic(t): the implication count at the snapshot.
	Implications float64
	// NonImplications is ~S at the snapshot.
	NonImplications float64
}

// Incremental wraps an estimator and answers incremental queries by
// differencing snapshots: ic(t2) − ic(t1) estimates the count of new
// implicating itemsets between the two points.
type Incremental struct {
	est   imps.Estimator
	marks []Mark
}

// NewIncremental wraps est. The estimator must be fresh (its reference
// point is the wrap time).
func NewIncremental(est imps.Estimator) *Incremental {
	return &Incremental{est: est}
}

// Add observes one tuple.
func (in *Incremental) Add(a, b string) { in.est.Add(a, b) }

// Estimator exposes the wrapped estimator.
func (in *Incremental) Estimator() imps.Estimator { return in.est }

// Snapshot records and returns the current counts under the given label.
func (in *Incremental) Snapshot(label string) Mark {
	m := Mark{
		Label:           label,
		Tuples:          in.est.Tuples(),
		Implications:    in.est.ImplicationCount(),
		NonImplications: in.est.NonImplicationCount(),
	}
	in.marks = append(in.marks, m)
	return m
}

// Marks returns all recorded snapshots in order.
func (in *Incremental) Marks() []Mark { return append([]Mark(nil), in.marks...) }

// Since returns the incremental implication count since the mark:
// ic(now) − ic(mark), clamped at zero.
func (in *Incremental) Since(m Mark) float64 {
	d := in.est.ImplicationCount() - m.Implications
	if d < 0 {
		return 0
	}
	return d
}

// Between returns the incremental implication count between two marks,
// clamped at zero.
func Between(m1, m2 Mark) float64 {
	if m2.Tuples < m1.Tuples {
		m1, m2 = m2, m1
	}
	d := m2.Implications - m1.Implications
	if d < 0 {
		return 0
	}
	return d
}

// Sliding answers moving-window implication counts by maintaining
// estimators with origins spaced Granularity tuples apart and retiring
// those too old to matter (Figure 2). The window count over the last Width
// tuples is read from the live estimator whose origin is nearest to
// now−Width; the approximation error is bounded by the itemsets arriving
// within one granularity step.
type Sliding struct {
	width int64
	gran  int64
	newE  func() imps.Estimator
	slots []slot
	n     int64
}

type slot struct {
	origin int64
	est    imps.Estimator
}

// NewSliding returns a sliding-window counter over windows of width tuples
// with origins every gran tuples; newEstimator must return fresh,
// identically configured estimators.
func NewSliding(width, gran int64, newEstimator func() imps.Estimator) (*Sliding, error) {
	if width < 1 || gran < 1 || gran > width {
		return nil, fmt.Errorf("window: need 1 <= granularity (%d) <= width (%d)", gran, width)
	}
	if newEstimator == nil {
		return nil, fmt.Errorf("window: nil estimator factory")
	}
	s := &Sliding{width: width, gran: gran, newE: newEstimator}
	s.slots = append(s.slots, slot{origin: 0, est: newEstimator()})
	return s, nil
}

// MustSliding is NewSliding panicking on error.
func MustSliding(width, gran int64, newEstimator func() imps.Estimator) *Sliding {
	s, err := NewSliding(width, gran, newEstimator)
	if err != nil {
		panic(err)
	}
	return s
}

// Add observes one tuple in every live estimator, opening and retiring
// origins as the stream advances.
func (s *Sliding) Add(a, b string) {
	if s.n > 0 && s.n%s.gran == 0 {
		s.slots = append(s.slots, slot{origin: s.n, est: s.newE()})
	}
	s.n++
	for _, sl := range s.slots {
		sl.est.Add(a, b)
	}
	// Retire origins that precede the window start: the window reader only
	// ever needs origins at or after n−width.
	cut := s.n - s.width
	keepFrom := 0
	for keepFrom < len(s.slots)-1 && s.slots[keepFrom].origin < cut {
		keepFrom++
	}
	if keepFrom > 0 {
		s.slots = append(s.slots[:0], s.slots[keepFrom:]...)
	}
}

// Tuples returns the number of tuples observed.
func (s *Sliding) Tuples() int64 { return s.n }

// Estimators returns the number of live estimators (≈ width/granularity+1).
func (s *Sliding) Estimators() int { return len(s.slots) }

// MemEntries sums the live estimators' entry counts.
func (s *Sliding) MemEntries() int {
	var n int
	for _, sl := range s.slots {
		n += sl.est.MemEntries()
	}
	return n
}

// window returns the estimator whose origin best approximates the window
// start n−width: the oldest live origin at or after it, so the windowed
// count never includes pre-window arrivals and misses at most one
// granularity step of fresh ones.
func (s *Sliding) window() imps.Estimator {
	cut := s.n - s.width
	for _, sl := range s.slots {
		if sl.origin >= cut {
			return sl.est
		}
	}
	return s.slots[len(s.slots)-1].est
}

// ImplicationCount estimates the implication count over the last Width
// tuples (itemsets that began satisfying the conditions within the window).
func (s *Sliding) ImplicationCount() float64 { return s.window().ImplicationCount() }

// NonImplicationCount estimates the windowed non-implication count.
func (s *Sliding) NonImplicationCount() float64 { return s.window().NonImplicationCount() }

// SupportedDistinct estimates the windowed supported-distinct count.
func (s *Sliding) SupportedDistinct() float64 { return s.window().SupportedDistinct() }

// AvgMultiplicity delegates to the windowed estimator. Whether the
// estimators can average is a property of the factory, and callers (the
// query engine in particular) are expected to validate it against a probe
// estimator up front — so an estimator without the capability here is a
// construction bug, and panicking is what keeps that bug from silently
// reading as "the average is 0".
func (s *Sliding) AvgMultiplicity() float64 {
	ma, ok := s.window().(imps.MultiplicityAverager)
	if !ok {
		panic(fmt.Sprintf("window: estimator %T cannot answer AvgMultiplicity; validate the factory before querying", s.window()))
	}
	return ma.AvgMultiplicity()
}

// SlotState is one live estimator and the stream position its window count
// starts from, exposed so checkpointing can serialize a Sliding and rebuild
// it with Restore.
type SlotState struct {
	Origin int64
	Est    imps.Estimator
}

// Width returns the window width in tuples.
func (s *Sliding) Width() int64 { return s.width }

// Granularity returns the origin spacing in tuples.
func (s *Sliding) Granularity() int64 { return s.gran }

// Slots returns the live estimators oldest-origin first. The estimators are
// the live ones, not copies; callers must not Add through them.
func (s *Sliding) Slots() []SlotState {
	out := make([]SlotState, len(s.slots))
	for i, sl := range s.slots {
		out[i] = SlotState{Origin: sl.origin, Est: sl.est}
	}
	return out
}

// Restore replaces the counter's state with a checkpointed one: n tuples
// observed and the given live slots. The slots must be plausible for this
// counter's geometry — at least one, oldest first with strictly ascending
// origins aligned to the granularity, none opened at or after position n
// (origin 0 exists from the start) — so a corrupted checkpoint fails here
// rather than producing silently wrong window counts.
func (s *Sliding) Restore(n int64, slots []SlotState) error {
	if n < 0 {
		return fmt.Errorf("window: restore with negative tuple count %d", n)
	}
	if len(slots) == 0 {
		return fmt.Errorf("window: restore with no slots")
	}
	for i, sl := range slots {
		if sl.Est == nil {
			return fmt.Errorf("window: restore slot %d has no estimator", i)
		}
		if sl.Origin < 0 || sl.Origin%s.gran != 0 {
			return fmt.Errorf("window: restore slot %d origin %d not aligned to granularity %d", i, sl.Origin, s.gran)
		}
		if sl.Origin > 0 && sl.Origin >= n {
			return fmt.Errorf("window: restore slot %d origin %d not before position %d", i, sl.Origin, n)
		}
		if i > 0 && sl.Origin <= slots[i-1].Origin {
			return fmt.Errorf("window: restore origins not strictly ascending at slot %d", i)
		}
	}
	s.n = n
	s.slots = s.slots[:0]
	for _, sl := range slots {
		s.slots = append(s.slots, slot{origin: sl.Origin, est: sl.Est})
	}
	return nil
}

var _ imps.Estimator = (*Sliding)(nil)
var _ imps.MultiplicityAverager = (*Sliding)(nil)
