package exact

import (
	"strconv"
	"testing"

	"implicate/internal/imps"
)

func feed(c *Counter, start, n int) {
	for i := start; i < start+n; i++ {
		a := strconv.Itoa(i % 97)
		b := strconv.Itoa((i * 7) % 13)
		if i%97 < 20 {
			b = "solo"
		}
		c.Add(a, b)
	}
}

func TestCounterMarshalRoundTrip(t *testing.T) {
	cond := imps.Conditions{MaxMultiplicity: 2, MinSupport: 3, TopC: 1, MinTopConfidence: 0.5}
	c, err := NewCounter(cond)
	if err != nil {
		t.Fatal(err)
	}
	feed(c, 0, 3000)
	if c.NonImplicationCount() == 0 {
		t.Fatal("test stream produced no excluded itemsets; widen it")
	}

	blob, err := c.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalCounter(blob)
	if err != nil {
		t.Fatal(err)
	}
	assertCountersEqual(t, c, got)

	blob2, err := got.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if string(blob) != string(blob2) {
		t.Fatalf("re-marshalling a restored counter changed the bytes")
	}

	// The ground-truth guarantee: a restored counter continues exactly.
	feed(c, 3000, 1500)
	feed(got, 3000, 1500)
	assertCountersEqual(t, c, got)
}

func assertCountersEqual(t *testing.T, want, got *Counter) {
	t.Helper()
	if got.Tuples() != want.Tuples() {
		t.Fatalf("Tuples: got %d, want %d", got.Tuples(), want.Tuples())
	}
	if got.MemEntries() != want.MemEntries() {
		t.Fatalf("MemEntries: got %d, want %d", got.MemEntries(), want.MemEntries())
	}
	pairs := []struct {
		name      string
		got, want float64
	}{
		{"ImplicationCount", got.ImplicationCount(), want.ImplicationCount()},
		{"NonImplicationCount", got.NonImplicationCount(), want.NonImplicationCount()},
		{"SupportedDistinct", got.SupportedDistinct(), want.SupportedDistinct()},
		{"AvgMultiplicity", got.AvgMultiplicity(), want.AvgMultiplicity()},
	}
	for _, p := range pairs {
		if p.got != p.want {
			t.Fatalf("%s: got %g, want %g", p.name, p.got, p.want)
		}
	}
}

func TestUnmarshalCounterRejectsTruncation(t *testing.T) {
	cond := imps.Conditions{MaxMultiplicity: 2, MinSupport: 2, TopC: 1, MinTopConfidence: 0.5}
	c, err := NewCounter(cond)
	if err != nil {
		t.Fatal(err)
	}
	feed(c, 0, 500)
	blob, err := c.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(blob); n++ {
		if _, err := UnmarshalCounter(blob[:n]); err == nil {
			t.Fatalf("truncation to %d of %d bytes decoded without error", n, len(blob))
		}
	}
}

var _ imps.ConfigFingerprinter = (*Counter)(nil)
