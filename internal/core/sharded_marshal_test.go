package core

import (
	"strconv"
	"testing"

	"implicate/internal/imps"
)

func feedSharded(est interface{ Add(a, b string) }, start, n int) {
	for i := start; i < start+n; i++ {
		a := strconv.Itoa(i % 257)
		b := strconv.Itoa((i * 7) % 31)
		if i%257 < 40 {
			b = "solo"
		}
		est.Add(a, b)
	}
}

func TestShardedMarshalRoundTrip(t *testing.T) {
	cond := imps.Conditions{MaxMultiplicity: 2, MinSupport: 3, TopC: 1, MinTopConfidence: 0.5}
	opts := Options{Bitmaps: 64, Seed: 42}
	ss, err := NewShardedSketch(cond, opts, 4)
	if err != nil {
		t.Fatal(err)
	}
	feedSharded(ss, 0, 5000)

	blob, err := ss.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalShardedSketch(blob)
	if err != nil {
		t.Fatal(err)
	}
	if got.Shards() != ss.Shards() || got.Options() != ss.Options() || got.Conditions() != ss.Conditions() {
		t.Fatalf("geometry mismatch after round trip")
	}
	assertShardedEqual(t, ss, got)

	blob2, err := got.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if string(blob) != string(blob2) {
		t.Fatalf("re-marshalling a restored sketch changed the bytes")
	}

	// A restored sketch must continue streaming bit-identically.
	feedSharded(ss, 5000, 2000)
	feedSharded(got, 5000, 2000)
	assertShardedEqual(t, ss, got)
}

func assertShardedEqual(t *testing.T, want, got *ShardedSketch) {
	t.Helper()
	if got.Tuples() != want.Tuples() {
		t.Fatalf("Tuples: got %d, want %d", got.Tuples(), want.Tuples())
	}
	if got.MemEntries() != want.MemEntries() {
		t.Fatalf("MemEntries: got %d, want %d", got.MemEntries(), want.MemEntries())
	}
	pairs := []struct {
		name      string
		got, want float64
	}{
		{"ImplicationCount", got.ImplicationCount(), want.ImplicationCount()},
		{"NonImplicationCount", got.NonImplicationCount(), want.NonImplicationCount()},
		{"SupportedDistinct", got.SupportedDistinct(), want.SupportedDistinct()},
		{"DistinctCount", got.DistinctCount(), want.DistinctCount()},
		{"AvgMultiplicity", got.AvgMultiplicity(), want.AvgMultiplicity()},
	}
	for _, p := range pairs {
		if p.got != p.want {
			t.Fatalf("%s: got %g, want %g", p.name, p.got, p.want)
		}
	}
}

func TestShardedUnmarshalRejectsTruncation(t *testing.T) {
	cond := imps.Conditions{MaxMultiplicity: 2, MinSupport: 2, TopC: 1, MinTopConfidence: 0.5}
	ss, err := NewShardedSketch(cond, Options{Bitmaps: 16, Seed: 7}, 2)
	if err != nil {
		t.Fatal(err)
	}
	feedSharded(ss, 0, 800)
	blob, err := ss.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(blob); n++ {
		if _, err := UnmarshalShardedSketch(blob[:n]); err == nil {
			t.Fatalf("truncation to %d of %d bytes decoded without error", n, len(blob))
		}
	}
}

func TestShardedUnmarshalRejectsBadShardCount(t *testing.T) {
	cond := imps.Conditions{MaxMultiplicity: 1, MinSupport: 1, TopC: 1, MinTopConfidence: 1}
	ss, err := NewShardedSketch(cond, Options{Bitmaps: 16, Seed: 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	blob, err := ss.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	// Shard count sits after the magic, conditions (24) and options (21).
	const off = len(shardedMagic) + 24 + 21
	for _, bad := range []byte{0, 3} {
		mut := append([]byte(nil), blob...)
		mut[off] = bad
		if _, err := UnmarshalShardedSketch(mut); err == nil {
			t.Fatalf("shard count %d accepted", bad)
		}
	}
}

var (
	_ imps.ConfigFingerprinter = (*ShardedSketch)(nil)
	_ imps.ConfigFingerprinter = (*Sketch)(nil)
)
