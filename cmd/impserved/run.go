package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"implicate"
	"implicate/internal/telemetry"
)

// queryList collects repeated -q flags so one server can register several
// statements (their registration order is their Query RPC statement id).
type queryList []string

func (q *queryList) String() string { return strings.Join(*q, "; ") }

func (q *queryList) Set(v string) error {
	*q = append(*q, v)
	return nil
}

// config carries the parsed command line.
type config struct {
	addr    string
	schema  string
	queries queryList
	backend string
	seed    uint64
	ilcEps  float64
	dsSize  int
	dsBound int
	queue   int
	workers int

	checkpoint string
	every      int64
	resume     string
}

func parseFlags(args []string) (*config, []string, error) {
	fs := flag.NewFlagSet("impserved", flag.ContinueOnError)
	cfg := &config{}
	fs.StringVar(&cfg.addr, "addr", ":7171", "TCP listen address")
	fs.StringVar(&cfg.schema, "schema", "", "comma-separated stream attribute names (required)")
	fs.Var(&cfg.queries, "q", "implication query to serve (repeatable; required unless -resume)")
	fs.StringVar(&cfg.backend, "backend", "nips", "estimator backend: nips, sharded, exact, exact-striped, ilc, ds")
	fs.Uint64Var(&cfg.seed, "seed", 1, "sketch seed")
	fs.Float64Var(&cfg.ilcEps, "ilc-eps", 0.01, "ILC approximation parameter (and relative support)")
	fs.IntVar(&cfg.dsSize, "ds-size", 1920, "Distinct Sampling entry budget")
	fs.IntVar(&cfg.dsBound, "ds-bound", 39, "Distinct Sampling per-value bound")
	fs.IntVar(&cfg.queue, "queue", 64, "ingest queue depth in batches (full queue => backpressure)")
	fs.IntVar(&cfg.workers, "workers", 0, "pipeline worker pool size (0: GOMAXPROCS); results are identical at any size")
	fs.StringVar(&cfg.checkpoint, "checkpoint", "", "write crash-recovery checkpoints to this file")
	fs.Int64Var(&cfg.every, "every", 0, "checkpoint every N applied tuples (with -checkpoint; 0: only on shutdown)")
	fs.StringVar(&cfg.resume, "resume", "", "restore engine state from this checkpoint file")
	if err := fs.Parse(args); err != nil {
		return nil, nil, err
	}
	return cfg, fs.Args(), nil
}

// validate rejects flag combinations that would otherwise fail late or be
// silently ignored.
func (cfg *config) validate() error {
	if cfg.schema == "" {
		return fmt.Errorf("missing -schema (comma-separated attribute names)")
	}
	if cfg.every < 0 {
		return fmt.Errorf("-every must be >= 0, got %d", cfg.every)
	}
	if cfg.every > 0 && cfg.checkpoint == "" {
		return fmt.Errorf("-every %d has no effect without -checkpoint; add -checkpoint FILE or drop -every", cfg.every)
	}
	if cfg.queue < 1 {
		return fmt.Errorf("-queue must be >= 1, got %d", cfg.queue)
	}
	if cfg.workers < 0 {
		return fmt.Errorf("-workers must be >= 0, got %d", cfg.workers)
	}
	if cfg.resume != "" {
		if len(cfg.queries) > 0 {
			return fmt.Errorf("-resume restores the queries from the checkpoint; drop -q")
		}
		if _, err := os.Stat(cfg.resume); err != nil {
			return fmt.Errorf("cannot resume: %w", err)
		}
	} else if len(cfg.queries) == 0 {
		return fmt.Errorf("missing -q query (or -resume CHECKPOINT)")
	}
	return nil
}

// backendsFor builds the named backend factories the command line selects.
func backendsFor(cfg *config) map[string]implicate.Backend {
	return map[string]implicate.Backend{
		"nips":          implicate.SketchBackend(implicate.Options{Seed: cfg.seed}),
		"sharded":       implicate.ShardedSketchBackend(implicate.Options{Seed: cfg.seed}, 0),
		"exact":         implicate.ExactBackend(),
		"exact-striped": implicate.StripedExactBackend(0),
		"ilc": func(cond implicate.Conditions) (implicate.Estimator, error) {
			return implicate.NewILC(cond, cfg.ilcEps, cfg.ilcEps)
		},
		"ds": func(cond implicate.Conditions) (implicate.Estimator, error) {
			return implicate.NewDistinctSampling(cond, cfg.dsSize, cfg.dsBound, cfg.seed+7)
		},
	}
}

// buildEngine constructs the engine to serve — fresh from -q, or restored
// from -resume.
func buildEngine(cfg *config, schema *implicate.Schema) (*implicate.Engine, error) {
	factories := backendsFor(cfg)
	if cfg.resume != "" {
		snap, err := implicate.ReadCheckpoint(cfg.resume)
		if err != nil {
			return nil, err
		}
		resolve := func(q implicate.Query, kind string) (implicate.Backend, error) {
			b, ok := factories[kind]
			if !ok {
				return nil, fmt.Errorf("checkpoint needs a %q backend, which impserved cannot build", kind)
			}
			return b, nil
		}
		return implicate.RestoreCheckpoint(snap, schema, resolve)
	}
	backend, ok := factories[cfg.backend]
	if !ok {
		return nil, fmt.Errorf("unknown backend %q", cfg.backend)
	}
	eng := implicate.NewEngine(schema)
	for _, sql := range cfg.queries {
		if _, err := eng.RegisterSQL(sql, backend); err != nil {
			return nil, err
		}
	}
	return eng, nil
}

// serve runs the server until stop closes, then drains it and prints the
// telemetry summary to out. The bound address is sent on ready.
func serve(cfg *config, ready chan<- string, stop <-chan struct{}, out io.Writer) error {
	names := strings.Split(cfg.schema, ",")
	for i := range names {
		names[i] = strings.TrimSpace(names[i])
	}
	schema, err := implicate.NewSchema(names...)
	if err != nil {
		return err
	}
	eng, err := buildEngine(cfg, schema)
	if err != nil {
		return err
	}
	srv, err := implicate.Serve(implicate.ServerConfig{
		Addr:            cfg.addr,
		Schema:          schema,
		Engine:          eng,
		QueueDepth:      cfg.queue,
		Workers:         cfg.workers,
		CheckpointPath:  cfg.checkpoint,
		CheckpointEvery: cfg.every,
	})
	if err != nil {
		return err
	}
	ready <- srv.Addr()
	<-stop
	if err := srv.Close(); err != nil {
		return err
	}
	printSummary(out, eng, srv.Telemetry().Snapshot())
	return nil
}

// printSummary renders the shutdown report: per-statement answers, then
// the telemetry counters.
func printSummary(out io.Writer, eng *implicate.Engine, sn implicate.ServerStats) {
	for i, st := range eng.Statements() {
		fmt.Fprintf(out, "stmt %d: %s = %.1f\n", i, st.Query().String(), st.Count())
	}
	fmt.Fprintf(out, "tuples=%d batches=%d rejected=%d merges=%d queue-high-water=%d\n",
		sn.TuplesIngested, sn.Batches, sn.BatchesRejected, sn.Merges, sn.QueueHighWater)
	if len(sn.Workers) > 0 {
		fmt.Fprintf(out, "pool: %d workers, %d saturated dispatches\n", len(sn.Workers), sn.PoolSaturation)
		for w, ws := range sn.Workers {
			fmt.Fprintf(out, "  worker %d: tasks=%d units=%d\n", w, ws.Tasks, ws.Units)
		}
	}
	ing := sn.Latency[telemetry.RPCIngest]
	if ing.Count() > 0 {
		fmt.Fprintf(out, "ingest latency p50=%v p99=%v (%d observations)\n",
			ing.Quantile(0.50).Round(time.Microsecond), ing.Quantile(0.99).Round(time.Microsecond), ing.Count())
	}
}
