package query

import (
	"fmt"
	"strconv"
	"testing"

	"implicate/internal/core"
	"implicate/internal/imps"
	"implicate/internal/stream"
)

func genTuples(start, n int) []stream.Tuple {
	out := make([]stream.Tuple, 0, n)
	svcs := [...]string{"WWW", "FTP", "P2P"}
	times := [...]string{"Morning", "Noon", "Night"}
	for i := start; i < start+n; i++ {
		src := "S" + strconv.Itoa(i%37)
		dst := "D" + strconv.Itoa((i*3)%11)
		if i%37 < 12 {
			dst = "D-solo"
		}
		out = append(out, stream.Tuple{src, dst, svcs[i%3], times[(i/3)%3]})
	}
	return out
}

var nipsBackend = sketchFactory(core.Options{Bitmaps: 64})

func shardedBackend(cond imps.Conditions) (imps.Estimator, error) {
	return core.NewShardedSketch(cond, core.Options{Bitmaps: 64}, 2)
}

// checkpointEngine builds an engine exercising every statement shape the
// snapshot must carry: an exact leaf, a shared alias of it, a sketch leaf,
// a sliding-window sketch vector and a sharded sketch.
func checkpointEngine(t *testing.T) (*Engine, []*Statement) {
	t.Helper()
	e := NewEngine(mustSchema(t))
	var stmts []*Statement
	for _, reg := range []struct {
		sql     string
		backend Backend
	}{
		{`SELECT COUNT(DISTINCT Source) FROM t WHERE Source IMPLIES Destination WITH SUPPORT >= 3, MULTIPLICITY <= 2, CONFIDENCE >= 0.5 TOP 1`, exactBackend},
		{`SELECT COUNT(DISTINCT Source) FROM t WHERE Source NOT IMPLIES Destination WITH SUPPORT >= 3, MULTIPLICITY <= 2, CONFIDENCE >= 0.5 TOP 1`, exactBackend},
		{`SELECT COUNT(DISTINCT Destination) FROM t WHERE Destination IMPLIES Source WITH SUPPORT >= 2, MULTIPLICITY <= 3`, nipsBackend},
		{`SELECT COUNT(DISTINCT Source) FROM t WHERE Source IMPLIES Destination WITH SUPPORT >= 2, MULTIPLICITY <= 2 WINDOW 600 EVERY 60`, nipsBackend},
		{`SELECT COUNT(DISTINCT Service) FROM t WHERE Service IMPLIES Source WITH MULTIPLICITY <= 40, CONFIDENCE >= 0.1 TOP 1`, shardedBackend},
	} {
		st, err := e.RegisterSQL(reg.sql, reg.backend)
		if err != nil {
			t.Fatalf("register %q: %v", reg.sql, err)
		}
		stmts = append(stmts, st)
	}
	if !stmts[1].Shared() {
		t.Fatal("NOT IMPLIES variant did not share the exact counter")
	}
	return e, stmts
}

func testResolver(q Query, kind string) (Backend, error) {
	if kind != "nips" {
		return nil, fmt.Errorf("no backend for kind %q", kind)
	}
	return nipsBackend, nil
}

func TestEngineSnapshotRoundTrip(t *testing.T) {
	e, stmts := checkpointEngine(t)
	e.ProcessBatch(genTuples(0, 2000))

	blob, err := e.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	re, err := UnmarshalEngine(blob, mustSchema(t), testResolver)
	if err != nil {
		t.Fatal(err)
	}
	rstmts := re.Statements()
	if len(rstmts) != len(stmts) {
		t.Fatalf("restored %d statements, want %d", len(rstmts), len(stmts))
	}
	if re.Tuples() != e.Tuples() {
		t.Fatalf("restored tuple count %d, want %d", re.Tuples(), e.Tuples())
	}
	if !rstmts[1].Shared() || rstmts[1].Estimator() != rstmts[0].Estimator() {
		t.Fatal("restored engine lost the estimator-sharing topology")
	}
	for i := range stmts {
		if got, want := rstmts[i].Query().String(), stmts[i].Query().String(); got != want {
			t.Fatalf("statement %d query: got %q, want %q", i, got, want)
		}
		if got, want := rstmts[i].Query().Mode, stmts[i].Query().Mode; got != want {
			t.Fatalf("statement %d mode: got %v, want %v", i, got, want)
		}
		if got, want := rstmts[i].Count(), stmts[i].Count(); got != want {
			t.Fatalf("statement %d count after restore: got %g, want %g", i, got, want)
		}
	}

	// The restored engine must continue the stream exactly: the test
	// backends use fixed seeds, so even the sketch counts are bit-identical.
	more := genTuples(2000, 1500)
	e.ProcessBatch(more)
	re.ProcessBatch(more)
	if re.Tuples() != e.Tuples() {
		t.Fatalf("tuple counts diverged after resume: %d vs %d", re.Tuples(), e.Tuples())
	}
	for i := range stmts {
		if got, want := rstmts[i].Count(), stmts[i].Count(); got != want {
			t.Fatalf("statement %d count after resumed streaming: got %g, want %g", i, got, want)
		}
	}
}

func TestEngineSnapshotRejectsTruncation(t *testing.T) {
	e, _ := checkpointEngine(t)
	e.ProcessBatch(genTuples(0, 700))
	blob, err := e.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	schema := mustSchema(t)
	// Every short prefix, then a sample of the long ones (the full sweep is
	// quadratic in the snapshot size), always including len-1.
	for n := 0; n < len(blob); n++ {
		if n > 512 && n%13 != 0 && n != len(blob)-1 {
			continue
		}
		if _, err := UnmarshalEngine(blob[:n], schema, testResolver); err == nil {
			t.Fatalf("truncation to %d of %d bytes decoded without error", n, len(blob))
		}
	}
}

func TestEngineSnapshotRejectsSchemaMismatch(t *testing.T) {
	e, _ := checkpointEngine(t)
	blob, err := e.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	other := stream.MustSchema("Source", "Destination", "Service", "Hour")
	if _, err := UnmarshalEngine(blob, other, testResolver); err == nil {
		t.Fatal("snapshot restored against a schema it was not captured under")
	}
}

func TestEngineSnapshotWindowedNeedsResolver(t *testing.T) {
	e, _ := checkpointEngine(t)
	blob, err := e.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UnmarshalEngine(blob, mustSchema(t), nil); err == nil {
		t.Fatal("windowed snapshot restored without a backend resolver")
	}
}

func TestEngineSnapshotRejectsMisconfiguredResolver(t *testing.T) {
	e, _ := checkpointEngine(t)
	blob, err := e.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	wrong := func(q Query, kind string) (Backend, error) {
		// Differently configured sketches must not be mixed into a window's
		// slot vector.
		return sketchFactory(core.Options{Bitmaps: 128}), nil
	}
	if _, err := UnmarshalEngine(blob, mustSchema(t), wrong); err == nil {
		t.Fatal("snapshot restored with a resolver whose configuration differs from the checkpointed slots")
	}
}
