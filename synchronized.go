package implicate

import "sync"

// Synchronized wraps an estimator with a mutex so multiple goroutines can
// feed and query it concurrently. The underlying estimators are
// deliberately lock-free single-writer structures (a router's fast path
// must not pay for synchronization it does not need, §4.6); wrap them only
// when tuples genuinely arrive from multiple goroutines.
//
// If the wrapped estimator supports AvgMultiplicity the wrapper forwards
// it; otherwise AvgMultiplicity returns 0.
func Synchronized(est Estimator) *SyncEstimator {
	return &SyncEstimator{est: est}
}

// SyncEstimator is a mutex-guarded estimator; see Synchronized.
type SyncEstimator struct {
	mu  sync.Mutex
	est Estimator
}

// Add observes one tuple.
func (s *SyncEstimator) Add(a, b string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.est.Add(a, b)
}

// ImplicationCount estimates S.
func (s *SyncEstimator) ImplicationCount() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.est.ImplicationCount()
}

// NonImplicationCount estimates ~S.
func (s *SyncEstimator) NonImplicationCount() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.est.NonImplicationCount()
}

// SupportedDistinct estimates F0^sup(A).
func (s *SyncEstimator) SupportedDistinct() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.est.SupportedDistinct()
}

// Tuples returns the number of tuples observed.
func (s *SyncEstimator) Tuples() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.est.Tuples()
}

// MemEntries reports the wrapped estimator's footprint.
func (s *SyncEstimator) MemEntries() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.est.MemEntries()
}

// AvgMultiplicity forwards to the wrapped estimator when supported.
func (s *SyncEstimator) AvgMultiplicity() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if ma, ok := s.est.(MultiplicityAverager); ok {
		return ma.AvgMultiplicity()
	}
	return 0
}

// Unwrap returns the underlying estimator. Callers must not use it while
// other goroutines still use the wrapper.
func (s *SyncEstimator) Unwrap() Estimator { return s.est }

var (
	_ Estimator            = (*SyncEstimator)(nil)
	_ MultiplicityAverager = (*SyncEstimator)(nil)
)
