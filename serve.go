package implicate

import (
	"implicate/internal/client"
	"implicate/internal/proto"
	"implicate/internal/server"
	"implicate/internal/telemetry"
)

// Serving layer (DESIGN.md §9): the paper's §2 deployment is distributed —
// leaf nodes sketch their local streams and ship state upstream — and this
// is its wire. Serve starts a TCP server speaking a length-prefixed,
// CRC-tagged binary protocol with four RPCs: IngestBatch (remote tuple
// feed through a bounded queue with explicit backpressure), Query (read a
// registered statement's count), SnapshotMerge (merge a leaf's marshalled
// sketch into an aggregator — the §2 tree over a real network) and Stats
// (runtime telemetry). Dial returns a pooled, pipelining client. The
// cmd/impserved command wraps Serve for standalone deployment.

// Server is a running ingest/query server; see Serve.
type Server = server.Server

// ServerConfig configures Serve: the listen address, the schema ingest
// batches must match, the engine with its registered statements, the
// ingest-queue bound, the ingest pipeline's worker-pool size (Workers;
// 0 picks GOMAXPROCS — results are bit-identical at any size, see
// DESIGN.md §10), and optional checkpointing (path + interval) for crash
// recovery via the replay contract of DESIGN.md §8.
type ServerConfig = server.Config

// Client is a connection pool to one server; see Dial.
type Client = client.Client

// ClientOptions tune a client: pool size, deadlines, and the retry/backoff
// budgets for backpressure and idempotent requests.
type ClientOptions = client.Options

// ServerStats is a frozen telemetry snapshot: tuples ingested, batches
// accepted and refused, merges, ingest-queue high-water mark, and per-RPC
// latency histograms.
type ServerStats = telemetry.Snapshot

// QueryResult is a Client.Query answer: the statement's current count and
// the server engine's applied-tuple total at the time of the read.
type QueryResult = proto.QueryResult

// ErrBackpressure is returned by Client.IngestBatch when the server kept
// refusing the batch for longer than the client's retry budget. The batch
// was never enqueued; retrying later is safe.
var ErrBackpressure = client.ErrBackpressure

// Serve starts an ingest/query server for cfg.Engine on cfg.Addr. The
// engine must have its statements registered already and belongs to the
// server until Close returns. Close drains the ingest queue and, when
// checkpointing is configured, writes a final checkpoint — a batch the
// server acknowledged is never lost to a graceful shutdown.
func Serve(cfg ServerConfig) (*Server, error) { return server.Listen(cfg) }

// Dial connects to an impserved server. schema is required for
// IngestBatch and may be nil for query/merge/stats-only clients. The
// returned client pipelines requests over a small connection pool, retries
// backpressure replies with exponential backoff, and retries idempotent
// requests (Query, Stats) across redials.
func Dial(addr string, schema *Schema, opt ClientOptions) (*Client, error) {
	return client.Dial(addr, schema, opt)
}
