//go:build !race

package pipeline

// raceEnabled reports whether the race detector instruments this build;
// alloc pins are meaningless under its bookkeeping allocations.
const raceEnabled = false
