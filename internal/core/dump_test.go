package core

import (
	"strings"
	"testing"
)

func TestDump(t *testing.T) {
	s := MustSketch(testConditions(), Options{Bitmaps: 4, Seed: 1})
	var empty strings.Builder
	s.Dump(&empty, 0)
	if !strings.Contains(empty.String(), "(empty)") {
		t.Fatalf("empty dump missing empty marker:\n%s", empty.String())
	}
	for i := 0; i < 2000; i++ {
		s.AddIDs(uint64(i%300), uint64(i%300))
		s.AddIDs(uint64(100000+i), uint64(i%7)) // violators and one-offs
	}
	var out strings.Builder
	s.Dump(&out, 2)
	text := out.String()
	for _, want := range []string{"NIPS/CI sketch", "estimates:", "fringe:", "bitmap   0", "more bitmaps"} {
		if !strings.Contains(text, want) {
			t.Errorf("dump missing %q:\n%s", want, text)
		}
	}
	var cells strings.Builder
	s.DumpCells(&cells, 0)
	if !strings.Contains(cells.String(), "cell ") || !strings.Contains(cells.String(), "supp=") {
		t.Errorf("cell dump malformed:\n%s", cells.String())
	}
	var bad strings.Builder
	s.DumpCells(&bad, 99)
	if !strings.Contains(bad.String(), "out of range") {
		t.Error("out-of-range bitmap not reported")
	}
}
