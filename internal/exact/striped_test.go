package exact

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"implicate/internal/imps"
)

func stripedCond() imps.Conditions {
	return imps.Conditions{MaxMultiplicity: 2, MinSupport: 3, TopC: 1, MinTopConfidence: 0.6}
}

// stripedWorkload is a small stream with repeated keys, exclusions and
// re-qualifications, covering every state transition of the counter.
func stripedWorkload(n int) []imps.Pair {
	pairs := make([]imps.Pair, n)
	for i := 0; i < n; i++ {
		pairs[i] = imps.Pair{
			A: fmt.Sprintf("a%d", i%97),
			B: fmt.Sprintf("b%d", (i*7)%13),
		}
	}
	return pairs
}

// TestStripedMatchesCounter drives the same stream through a serial Counter
// and Striped counters of several widths; every answer must match exactly.
func TestStripedMatchesCounter(t *testing.T) {
	cond := stripedCond()
	pairs := stripedWorkload(5000)

	ref := MustCounter(cond)
	for _, p := range pairs {
		ref.Add(p.A, p.B)
	}

	for _, stripes := range []int{1, 2, 4, 8} {
		s, err := NewStriped(cond, stripes)
		if err != nil {
			t.Fatal(err)
		}
		s.AddBatch(pairs)
		if got, want := s.ImplicationCount(), ref.ImplicationCount(); got != want {
			t.Errorf("stripes=%d ImplicationCount=%v want %v", stripes, got, want)
		}
		if got, want := s.NonImplicationCount(), ref.NonImplicationCount(); got != want {
			t.Errorf("stripes=%d NonImplicationCount=%v want %v", stripes, got, want)
		}
		if got, want := s.SupportedDistinct(), ref.SupportedDistinct(); got != want {
			t.Errorf("stripes=%d SupportedDistinct=%v want %v", stripes, got, want)
		}
		if got, want := s.DistinctCount(), ref.DistinctCount(); got != want {
			t.Errorf("stripes=%d DistinctCount=%v want %v", stripes, got, want)
		}
		if got, want := s.AvgMultiplicity(), ref.AvgMultiplicity(); got != want {
			t.Errorf("stripes=%d AvgMultiplicity=%v want %v", stripes, got, want)
		}
		if got, want := s.Tuples(), ref.Tuples(); got != want {
			t.Errorf("stripes=%d Tuples=%v want %v", stripes, got, want)
		}
		if got, want := s.MemEntries(), ref.MemEntries(); got != want {
			t.Errorf("stripes=%d MemEntries=%v want %v", stripes, got, want)
		}
	}
}

// TestStripedConcurrentPartitions splits a stream into partitions with
// IngestPartition and ingests each from its own goroutine (run with -race).
// Per-key order is preserved because a key's tuples share a partition, so
// the final state must equal the serial run bit for bit.
func TestStripedConcurrentPartitions(t *testing.T) {
	cond := stripedCond()
	pairs := stripedWorkload(20000)

	ref, err := NewStriped(cond, 4)
	if err != nil {
		t.Fatal(err)
	}
	ref.AddBatch(pairs)
	want, err := ref.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	for _, parts := range []int{1, 2, 4, 8} {
		s, err := NewStriped(cond, 4)
		if err != nil {
			t.Fatal(err)
		}
		buckets := make([][]imps.Pair, parts)
		for _, p := range pairs {
			i := s.IngestPartition([]byte(p.A), parts)
			buckets[i] = append(buckets[i], p)
		}
		var wg sync.WaitGroup
		for _, bucket := range buckets {
			wg.Add(1)
			go func(bucket []imps.Pair) {
				defer wg.Done()
				// Chunked adds interleave stripe lock acquisition across
				// partitions.
				for len(bucket) > 0 {
					n := min(256, len(bucket))
					s.AddBatch(bucket[:n])
					bucket = bucket[n:]
				}
			}(bucket)
		}
		wg.Wait()
		got, err := s.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("parts=%d: concurrent partitioned ingest diverged from serial state", parts)
		}
	}
}

// TestStripedMarshalRoundTrip checks that marshalled state is independent
// of stripe geometry and restores exactly, whatever width it lands on.
func TestStripedMarshalRoundTrip(t *testing.T) {
	cond := stripedCond()
	pairs := stripedWorkload(5000)

	s2, _ := NewStriped(cond, 2)
	s8, _ := NewStriped(cond, 8)
	s2.AddBatch(pairs)
	s8.AddBatch(pairs)
	b2, err := s2.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	b8, err := s8.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b2, b8) {
		t.Fatal("marshalled state depends on stripe count")
	}

	restored, err := UnmarshalStriped(b2, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := restored.ImplicationCount(), s2.ImplicationCount(); got != want {
		t.Fatalf("restored ImplicationCount=%v want %v", got, want)
	}
	if got, want := restored.Tuples(), s2.Tuples(); got != want {
		t.Fatalf("restored Tuples=%v want %v", got, want)
	}
	if got, want := restored.MemEntries(), s2.MemEntries(); got != want {
		t.Fatalf("restored MemEntries=%v want %v", got, want)
	}
	rb, err := restored.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(rb, b2) {
		t.Fatal("re-marshalled restored state differs")
	}

	// Continued ingestion after restore behaves like the uninterrupted run.
	more := stripedWorkload(7000)[5000:]
	restored.AddBatch(more)
	s2.AddBatch(more)
	rb, _ = restored.MarshalBinary()
	ob, _ := s2.MarshalBinary()
	if !bytes.Equal(rb, ob) {
		t.Fatal("post-restore ingestion diverged from uninterrupted run")
	}
}

// TestStripedUnmarshalRejectsCorrupt spot-checks the validation paths.
func TestStripedUnmarshalRejectsCorrupt(t *testing.T) {
	s, _ := NewStriped(stripedCond(), 2)
	s.AddBatch(stripedWorkload(100))
	b, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UnmarshalStriped(b[:len(b)-1], 0); err == nil {
		t.Fatal("truncated blob accepted")
	}
	bad := bytes.Clone(b)
	bad[4] ^= 0xff // magic version byte
	if _, err := UnmarshalStriped(bad, 0); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := UnmarshalStriped(b, 3); err == nil {
		t.Fatal("non-power-of-two stripe count accepted")
	}
}

// TestStripedInvalidConfig covers constructor validation.
func TestStripedInvalidConfig(t *testing.T) {
	if _, err := NewStriped(stripedCond(), 3); err == nil {
		t.Fatal("stripe count 3 accepted")
	}
	if _, err := NewStriped(imps.Conditions{}, 2); err == nil {
		t.Fatal("invalid conditions accepted")
	}
	s, err := NewStriped(stripedCond(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if n := s.Stripes(); n < 1 || n&(n-1) != 0 {
		t.Fatalf("default stripe count %d not a power of two", n)
	}
}
