package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestRunDatasetOneSmall(t *testing.T) {
	cfg := DatasetOneConfig{
		C:     1,
		Cards: []int{300},
		Fracs: []float64{0.2, 0.8},
		Runs:  3,
		Seed:  1,
	}
	rows, err := RunDatasetOne(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.BoundedErr > 0.35 {
			t.Errorf("count %d: bounded error %.3f too large", r.Count, r.BoundedErr)
		}
		if r.UnboundedErr > 0.05 {
			t.Errorf("count %d: unbounded error %.3f should be near-exact", r.Count, r.UnboundedErr)
		}
		if r.Tuples <= 0 {
			t.Errorf("count %d: missing tuple volume", r.Count)
		}
	}
	var buf bytes.Buffer
	PrintDatasetOne(&buf, "Figure 4", 1, rows)
	out := buf.String()
	if !strings.Contains(out, "|A| = 300") || !strings.Contains(out, "BoundedFringe") {
		t.Fatalf("print output malformed:\n%s", out)
	}
}

func TestRunOLAPSmall(t *testing.T) {
	cfg := OLAPConfig{
		Workload:    WorkloadB,
		Tau:         5,
		Psis:        []float64{0.6},
		Checkpoints: []int64{30000, 60000},
		Seed:        3,
	}
	rows, err := RunOLAP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Exact <= 0 {
			t.Errorf("checkpoint %d: zero ground truth", r.Tuples)
		}
		if r.NIPSMem <= 0 || r.DSMem <= 0 || r.ILCMem <= 0 {
			t.Errorf("checkpoint %d: missing memory accounting", r.Tuples)
		}
	}
	var buf bytes.Buffer
	PrintOLAP(&buf, cfg, rows)
	if !strings.Contains(buf.String(), "Workload B") {
		t.Fatalf("print output malformed:\n%s", buf.String())
	}
}

func TestRunTable4Small(t *testing.T) {
	rows, err := RunTable4([]int64{20000, 50000}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[1].WorkloadA <= rows[0].WorkloadA {
		t.Errorf("workload A counts not growing: %+v", rows)
	}
	var buf bytes.Buffer
	PrintTable4(&buf, rows)
	if !strings.Contains(buf.String(), "A,B→E,G") {
		t.Fatalf("print output malformed:\n%s", buf.String())
	}
}

func TestTables3And5Print(t *testing.T) {
	var buf bytes.Buffer
	PrintTable3(&buf)
	if !strings.Contains(buf.String(), "3363") {
		t.Fatalf("Table 3 output missing cardinality E:\n%s", buf.String())
	}
	buf.Reset()
	DefaultTable5().Print(&buf)
	out := buf.String()
	for _, want := range []string{"1920", "0.01", "64"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 5 output missing %q:\n%s", want, out)
		}
	}
	if got := DefaultTable5().NIPSItemsets; got != 1920 {
		t.Fatalf("NIPS itemset budget = %d, want 1920 (paper §6.2)", got)
	}
}

func TestFringeAblation(t *testing.T) {
	cfg := AblationConfig{CardA: 600, Frac: 0.5, C: 1, Runs: 2, Seed: 2}
	rows, err := RunFringeAblation(cfg, []int{2, 4, 0})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Memory must grow with the fringe and the unbounded variant must use
	// the most.
	if !(rows[0].PeakMem <= rows[1].PeakMem && rows[1].PeakMem <= rows[2].PeakMem) {
		t.Errorf("memory not monotone in fringe size: %+v", rows)
	}
	var buf bytes.Buffer
	PrintFringeAblation(&buf, rows)
	if !strings.Contains(buf.String(), "unbounded") {
		t.Fatal("print output malformed")
	}
}

func TestBitmapAblation(t *testing.T) {
	cfg := AblationConfig{CardA: 800, Frac: 0.5, C: 1, Runs: 3, Seed: 4}
	rows, err := RunBitmapAblation(cfg, []int{8, 128})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[1].Err > rows[0].Err+0.05 {
		t.Errorf("more bitmaps should not be clearly worse: %+v", rows)
	}
	var buf bytes.Buffer
	PrintBitmapAblation(&buf, rows)
	if !strings.Contains(buf.String(), "FM theory") {
		t.Fatal("print output malformed")
	}
}

func TestSlackAblation(t *testing.T) {
	cfg := AblationConfig{CardA: 600, Frac: 0.3, C: 1, Runs: 2, Seed: 5}
	rows, err := RunSlackAblation(cfg, []int{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if rows[0].Overflows < rows[1].Overflows {
		t.Errorf("smaller slack should overflow at least as often: %+v", rows)
	}
	var buf bytes.Buffer
	PrintSlackAblation(&buf, rows)
	if buf.Len() == 0 {
		t.Fatal("empty print output")
	}
}

func TestLemma2Ablation(t *testing.T) {
	cfg := AblationConfig{CardA: 1500, Frac: 0.5, C: 1, Runs: 2, Seed: 6}
	rows, err := RunLemma2(cfg, []float64{0.5, 0.0625}, []int{2, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	byKey := map[[2]float64]float64{}
	for _, r := range rows {
		byKey[[2]float64{r.Q, float64(r.FringeF)}] = r.NonImpErr
	}
	// At q=0.0625 (−log2 q = 4) the F=2 fringe is below the Lemma 2 law and
	// must be clearly worse than F=8.
	if byKey[[2]float64{0.0625, 2}] <= byKey[[2]float64{0.0625, 8}] {
		t.Errorf("F=2 did not degrade at small q: %+v", rows)
	}
	var buf bytes.Buffer
	PrintLemma2(&buf, rows)
	if !strings.Contains(buf.String(), "-log2 q") {
		t.Fatal("print output malformed")
	}
}

func TestEstimatorAblation(t *testing.T) {
	cfg := AblationConfig{CardA: 1000, Frac: 0.5, C: 1, Runs: 3, Seed: 8}
	rows, err := RunEstimatorAblation(cfg, []float64{0.1, 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	// The CI subtraction must degrade sharply at the small ratio while the
	// direct estimator stays in band — the decision DESIGN.md documents.
	if rows[0].CIErr < 2*rows[0].DirectErr {
		t.Errorf("CI (%v) did not degrade vs direct (%v) at S/F0=%v",
			rows[0].CIErr, rows[0].DirectErr, rows[0].Ratio)
	}
	if rows[1].DirectErr > 0.3 {
		t.Errorf("direct estimator error %v too large at the easy end", rows[1].DirectErr)
	}
	var buf bytes.Buffer
	PrintEstimatorAblation(&buf, rows)
	if !strings.Contains(buf.String(), "Raw(Alg2)") {
		t.Fatal("print output malformed")
	}
}

// TestRunOLAPDeterministic guards the reproducibility promise: identical
// configs yield identical rows.
func TestRunOLAPDeterministic(t *testing.T) {
	cfg := OLAPConfig{
		Workload:    WorkloadB,
		Tau:         5,
		Psis:        []float64{0.6},
		Checkpoints: []int64{20000},
		Seed:        9,
	}
	a, err := RunOLAP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunOLAP(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != len(b) || a[0] != b[0] {
		t.Fatalf("non-deterministic rows:\n%+v\n%+v", a, b)
	}
}

// TestRunDatasetOneDeterministic does the same for the Figures 4–6 runner.
func TestRunDatasetOneDeterministic(t *testing.T) {
	cfg := DatasetOneConfig{C: 1, Cards: []int{200}, Fracs: []float64{0.5}, Runs: 2, Seed: 3}
	a, err := RunDatasetOne(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunDatasetOne(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a) != 1 || a[0] != b[0] {
		t.Fatalf("non-deterministic rows:\n%+v\n%+v", a, b)
	}
}

// TestRunIngestSmall runs the throughput harness at a tiny scale and checks
// shape: every variant present, positive throughput, and the serial and
// batched serial variants agreeing exactly on the implication count (they
// see the identical per-bitmap order).
func TestRunIngestSmall(t *testing.T) {
	cfg := IngestConfig{Tuples: 20_000, Producers: 2, Shards: []int{1, 2}, Batch: 64, Seed: 5}
	rows, err := RunIngest(cfg)
	if err != nil {
		t.Fatal(err)
	}
	byVariant := map[string]IngestRow{}
	for _, r := range rows {
		if r.TuplesPerSec <= 0 || r.Tuples != cfg.Tuples {
			t.Errorf("bad row %+v", r)
		}
		byVariant[r.Variant] = r
	}
	for _, want := range []string{"serial", "serial-batch", "mutex", "mutex-batch", "sharded-1", "sharded-2-batch"} {
		if _, ok := byVariant[want]; !ok {
			t.Errorf("missing variant %q", want)
		}
	}
	if a, b := byVariant["serial"].Implications, byVariant["serial-batch"].Implications; a != b {
		t.Errorf("serial %g vs serial-batch %g implications", a, b)
	}
	var out bytes.Buffer
	PrintIngest(&out, cfg, rows)
	if !strings.Contains(out.String(), "Ingestion throughput") {
		t.Fatalf("print output malformed:\n%s", out.String())
	}
	out.Reset()
	if err := WriteIngestJSON(&out, cfg, rows); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "\"tuples_per_sec\"") {
		t.Fatalf("json output malformed:\n%s", out.String())
	}
}

// TestGateServe covers both gate axes — the throughput floor and the
// allocation ceiling — plus back-compat with baselines written before the
// allocation metrics existed (zeros there must gate nothing).
func TestGateServe(t *testing.T) {
	baseline := func(rows []ServeRow) *bytes.Buffer {
		var out bytes.Buffer
		if err := WriteServeJSON(&out, ServeConfig{}, rows); err != nil {
			t.Fatal(err)
		}
		return &out
	}
	base := []ServeRow{
		{Transport: "tcp", TuplesPerSec: 1000, AllocsPerOp: 10, BytesPerOp: 4096},
		{Transport: "tcp", TuplesPerSec: 800, AllocsPerOp: 20, BytesPerOp: 8192},
		{Transport: "udp", TuplesPerSec: 2000, AllocsPerOp: 8, BytesPerOp: 2048},
	}

	ok := []ServeRow{
		{Transport: "tcp", TuplesPerSec: 900, AllocsPerOp: 11},
		{Transport: "udp", TuplesPerSec: 1800, AllocsPerOp: 9},
	}
	if err := GateServe(baseline(base), ok, 0.25); err != nil {
		t.Errorf("within-tolerance rows failed the gate: %v", err)
	}

	slow := []ServeRow{{Transport: "tcp", TuplesPerSec: 700, AllocsPerOp: 10}}
	if err := GateServe(baseline(base), slow, 0.25); err == nil || !strings.Contains(err.Error(), "tuples/s") {
		t.Errorf("throughput regression passed the gate: %v", err)
	}

	leaky := []ServeRow{{Transport: "tcp", TuplesPerSec: 1000, AllocsPerOp: 14}}
	if err := GateServe(baseline(base), leaky, 0.25); err == nil || !strings.Contains(err.Error(), "allocs/op") {
		t.Errorf("allocation regression passed the gate: %v", err)
	}

	// A pre-metrics baseline (zero allocs) must not gate the alloc axis,
	// and a current run without the metrics must not be gated against a
	// baseline that has them.
	old := []ServeRow{{Transport: "tcp", TuplesPerSec: 1000}}
	if err := GateServe(baseline(old), leaky, 0.25); err != nil {
		t.Errorf("pre-metrics baseline gated the alloc axis: %v", err)
	}
	if err := GateServe(baseline(base), old, 0.25); err != nil {
		t.Errorf("metric-less run gated against a metric baseline: %v", err)
	}
}
