// The fleet dashboard: imptop's -coord mode. Where the single-server mode
// polls Stats/Health over the wire protocol, fleet mode polls the
// coordinator admin endpoint's /fleet JSON document — the one place that
// merges what the coordinator knows about each leaf (probe state, journal
// depth, delivery latency) with what each leaf reports about itself
// (applied tuples, worst self-assessed estimator error).
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"time"

	"implicate"
)

// fleetFrame is one /fleet poll plus the local receive time the rate math
// runs on.
type fleetFrame struct {
	when time.Time
	doc  implicate.FleetJSON
}

// coordBase normalizes the -coord flag into a base URL: a bare host:port
// gets the http scheme, a trailing slash is dropped.
func coordBase(coord string) string {
	if !strings.Contains(coord, "://") {
		coord = "http://" + coord
	}
	return strings.TrimSuffix(coord, "/")
}

func pollFleet(hc *http.Client, base string) (fleetFrame, error) {
	resp, err := hc.Get(base + "/fleet")
	if err != nil {
		return fleetFrame{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fleetFrame{}, fmt.Errorf("%s/fleet: %s", base, resp.Status)
	}
	var f fleetFrame
	if err := json.NewDecoder(resp.Body).Decode(&f.doc); err != nil {
		return fleetFrame{}, fmt.Errorf("%s/fleet: %w", base, err)
	}
	f.when = time.Now()
	return f, nil
}

// runFleet polls the coordinator admin endpoint and renders fleet frames
// to out until stop closes or cfg.count frames have been drawn.
func runFleet(cfg *config, out io.Writer, stop <-chan struct{}) error {
	base := coordBase(cfg.coord)
	hc := &http.Client{Timeout: 30 * time.Second}
	var prev *fleetFrame
	for i := 0; cfg.count == 0 || i < cfg.count; i++ {
		if i > 0 {
			select {
			case <-stop:
				return nil
			case <-time.After(cfg.interval):
			}
		}
		cur, err := pollFleet(hc, base)
		if err != nil {
			return err
		}
		if !cfg.plain {
			fmt.Fprint(out, "\x1b[H\x1b[2J")
		}
		renderFleet(out, base, prev, cur)
		prev = &cur
	}
	return nil
}

// renderFleet draws one fleet dashboard frame. prev is nil on the first
// frame, which reports totals only; later frames add the per-leaf ingest
// rates over the elapsed wall time between polls.
func renderFleet(w io.Writer, base string, prev *fleetFrame, cur fleetFrame) {
	doc := cur.doc
	fmt.Fprintf(w, "imptop — fleet @ %s — %s\n\n", base, cur.when.Format("15:04:05"))

	var dt time.Duration
	var dRouted int64
	if prev != nil {
		dt = cur.when.Sub(prev.when)
		dRouted = doc.TuplesRouted - prev.doc.TuplesRouted
	}
	rate := func(delta int64) string {
		if prev == nil || dt <= 0 {
			return "-"
		}
		return fmt.Sprintf("%.0f/s", float64(delta)/dt.Seconds())
	}
	up := 0
	for _, lf := range doc.Leaves {
		if lf.State == "up" {
			up++
		}
	}
	fmt.Fprintf(w, "fleet    leaves=%d up=%d partitions=%d  routed tuples=%d (%s) batches=%d\n\n",
		len(doc.Leaves), up, doc.VirtualPartitions, doc.TuplesRouted, rate(dRouted), doc.BatchesRouted)

	fmt.Fprintf(w, "%-12s %-10s %5s %5s %5s %12s %10s %9s %10s %10s %8s\n",
		"leaf", "state", "parts", "epoch", "downs", "tuples", "rate", "pending", "dlvr-p50", "dlvr-p99", "relerr")
	for _, lf := range doc.Leaves {
		tuples, errStr := "-", "-"
		if lf.TuplesIngested >= 0 {
			tuples = fmt.Sprintf("%d", lf.TuplesIngested)
		}
		if lf.WorstRelErr >= 0 {
			errStr = relErr(lf.WorstRelErr)
		}
		var dLeaf int64 = -1
		if prev != nil && lf.TuplesIngested >= 0 {
			for _, p := range prev.doc.Leaves {
				if p.Name == lf.Name && p.TuplesIngested >= 0 {
					dLeaf = lf.TuplesIngested - p.TuplesIngested
				}
			}
		}
		leafRate := "-"
		if dLeaf >= 0 {
			leafRate = rate(dLeaf)
		}
		p50, p99 := "-", "-"
		if lf.Deliveries > 0 {
			p50 = time.Duration(lf.DeliveryP50NS).Round(time.Microsecond).String()
			p99 = time.Duration(lf.DeliveryP99NS).Round(time.Microsecond).String()
		}
		fmt.Fprintf(w, "%-12s %-10s %5d %5d %5d %12s %10s %9d %10s %10s %8s\n",
			lf.Name, lf.State, lf.Parts, lf.Epoch, lf.Downs,
			tuples, leafRate, lf.PendingTuples, p50, p99, errStr)
	}
	fmt.Fprintf(w, "\n(pending: routed tuples not yet delivered; relerr: worst self-assessed estimator error; -: leaf unreachable this poll)\n")
}
