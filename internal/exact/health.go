package exact

import (
	"unsafe"

	"implicate/internal/imps"
)

// mapEntryOverhead approximates the Go map bookkeeping attributable to one
// entry beyond its key bytes and value payload: the bucket slot, tophash
// byte, string header and amortized spare capacity. Health reports are
// estimates, not heap measurements.
const mapEntryOverhead = 48

// Health reports the counter's runtime footprint. The counter is exact, so
// it has no saturation or error fields — only tuples, entries and bytes.
// Not safe for concurrent use (Striped wraps it under its stripe locks).
func (c *Counter) Health() imps.HealthReport {
	var bytes int64
	for a, st := range c.items {
		bytes += int64(len(a)) + mapEntryOverhead + int64(unsafe.Sizeof(*st))
		for b := range st.perB {
			bytes += int64(len(b)) + mapEntryOverhead + 8
		}
	}
	return imps.HealthReport{
		Tuples:     c.tuples,
		MemEntries: c.entries,
		MemBytes:   bytes,
	}
}

// Health reports aggregate footprint across all stripes under a consistent
// snapshot (every stripe lock held). Safe for concurrent use.
func (s *Striped) Health() imps.HealthReport {
	s.lockAll()
	defer s.unlockAll()
	var h imps.HealthReport
	for i := range s.stripes {
		sh := s.stripes[i].c.Health()
		h.Tuples += sh.Tuples
		h.MemEntries += sh.MemEntries
		h.MemBytes += sh.MemBytes
	}
	return h
}

var _ imps.HealthReporter = (*Counter)(nil)
var _ imps.HealthReporter = (*Striped)(nil)
