package core

import (
	"fmt"
	"math"
	"sort"

	"implicate/internal/imps"
)

// EpsDelta amplifies the sketch's confidence the way §4.7.1 prescribes:
// NIPS approximates the non-implication count exactly like the basic
// probabilistic counter, so the standard median-of-independent-copies
// technique of Bar-Yossef et al. lifts the constant success probability of
// one sketch to 1−δ. It runs g ≈ O(log 1/δ) independently seeded sketches
// and answers every query with the median of their estimates.
//
// The per-sketch relative error is governed by its bitmap count
// (≈0.78/√m), so choose Options.Bitmaps for the target ε and Groups for
// the target δ. EpsDelta implements imps.Estimator.
type EpsDelta struct {
	sketches []*Sketch
}

// NewEpsDelta returns a median-of-groups estimator over g independently
// seeded sketches built from cond and opts. g must be odd and >= 1.
func NewEpsDelta(cond imps.Conditions, opts Options, g int) (*EpsDelta, error) {
	if g < 1 || g%2 == 0 {
		return nil, fmt.Errorf("core: group count must be odd and positive, got %d", g)
	}
	e := &EpsDelta{}
	for i := 0; i < g; i++ {
		o := opts
		o.Seed = opts.Seed + uint64(i)*0x9e3779b97f4a7c15 + 1
		s, err := NewSketch(cond, o)
		if err != nil {
			return nil, err
		}
		e.sketches = append(e.sketches, s)
	}
	return e, nil
}

// GroupsFor returns the group count needed for failure probability δ under
// the standard Chernoff amplification bound.
func GroupsFor(delta float64) int {
	if delta <= 0 || delta >= 1 {
		return 1
	}
	g := int(math.Ceil(12 * math.Log(1/delta)))
	if g%2 == 0 {
		g++
	}
	return g
}

// Add observes one tuple in every group.
func (e *EpsDelta) Add(a, b string) {
	for _, s := range e.sketches {
		s.Add(a, b)
	}
}

// AddIDs is the integer-keyed fast path.
func (e *EpsDelta) AddIDs(a, b uint64) {
	for _, s := range e.sketches {
		s.AddIDs(a, b)
	}
}

func (e *EpsDelta) median(f func(*Sketch) float64) float64 {
	ests := make([]float64, len(e.sketches))
	for i, s := range e.sketches {
		ests[i] = f(s)
	}
	sort.Float64s(ests)
	return ests[len(ests)/2]
}

// ImplicationCount returns the median implication-count estimate.
func (e *EpsDelta) ImplicationCount() float64 {
	return e.median((*Sketch).ImplicationCount)
}

// NonImplicationCount returns the median non-implication estimate.
func (e *EpsDelta) NonImplicationCount() float64 {
	return e.median((*Sketch).NonImplicationCount)
}

// SupportedDistinct returns the median F0^sup estimate.
func (e *EpsDelta) SupportedDistinct() float64 {
	return e.median((*Sketch).SupportedDistinct)
}

// AvgMultiplicity returns the median of the groups' aggregates.
func (e *EpsDelta) AvgMultiplicity() float64 {
	return e.median((*Sketch).AvgMultiplicity)
}

// Tuples returns the number of tuples observed.
func (e *EpsDelta) Tuples() int64 { return e.sketches[0].Tuples() }

// Groups returns the number of independent sketches.
func (e *EpsDelta) Groups() int { return len(e.sketches) }

// MemEntries sums the groups' footprints.
func (e *EpsDelta) MemEntries() int {
	n := 0
	for _, s := range e.sketches {
		n += s.MemEntries()
	}
	return n
}

var (
	_ imps.Estimator            = (*EpsDelta)(nil)
	_ imps.MultiplicityAverager = (*EpsDelta)(nil)
)
