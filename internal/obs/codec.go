package obs

import (
	"fmt"

	"implicate/internal/imps"
	"implicate/internal/wire"
)

// The Health and Trace RPC payload encodings. Like the telemetry snapshot
// (and unlike ingest batches), they have versioned magics of their own: the
// frame layer authenticates bytes, the payload codec proves structure.
const (
	spansMagic  = "IMPS\x01"
	healthMagic = "IMPH\x01"
)

// maxDumpSpans bounds a decoded span dump; a frame claiming more is corrupt
// (no tracer ships rings anywhere near this deep).
const maxDumpSpans = 1 << 20

// maxHealthReports bounds a decoded health dump — one report per registered
// statement, so anything huge is corruption, not scale.
const maxHealthReports = 1 << 16

// EncodeSpans serializes a span dump for the Trace RPC.
func EncodeSpans(spans []Span) []byte {
	e := wire.NewEncoder(16 + len(spans)*37)
	e.Raw([]byte(spansMagic))
	e.U32(uint32(len(spans)))
	for i := range spans {
		s := &spans[i]
		e.U64(s.Seq)
		e.U8(uint8(s.Kind))
		e.U32(uint32(s.Arg))
		e.I64(s.Start)
		e.I64(s.Dur)
		e.I64(s.Units)
	}
	return e.Bytes()
}

// DecodeSpans parses a span dump, rejecting structurally implausible input.
func DecodeSpans(data []byte) ([]Span, error) {
	d := wire.NewDecoder(data)
	d.Magic(spansMagic)
	n := d.Count(37)
	if d.Err() == nil && n > maxDumpSpans {
		return nil, fmt.Errorf("%w: span dump claims %d spans", wire.ErrCorrupt, n)
	}
	var spans []Span
	if d.Err() == nil && n > 0 {
		spans = make([]Span, n)
		for i := 0; i < n; i++ {
			spans[i] = Span{
				Seq:   d.U64(),
				Kind:  SpanKind(d.U8()),
				Arg:   int32(d.U32()),
				Start: d.I64(),
				Dur:   d.I64(),
				Units: d.I64(),
			}
			if spans[i].Kind >= numSpanKinds {
				d.Failf("unknown span kind %d", spans[i].Kind)
			}
		}
	}
	if err := d.Done(); err != nil {
		return nil, fmt.Errorf("obs: %w", err)
	}
	return spans, nil
}

// EncodeHealth serializes the engine's health reports for the Health RPC.
func EncodeHealth(reports []imps.HealthReport) []byte {
	e := wire.NewEncoder(16 + len(reports)*128)
	e.Raw([]byte(healthMagic))
	e.U32(uint32(len(reports)))
	for i := range reports {
		h := &reports[i]
		e.U32(uint32(h.Stmt))
		e.Str(h.Kind)
		e.Str(h.Query)
		e.Bool(h.Shared)
		e.I64(h.Tuples)
		e.I64(int64(h.MemEntries))
		e.I64(h.MemBytes)
		e.F64(h.BitmapFill)
		e.F64(h.LeftmostZero)
		e.I64(int64(h.FringeTracked))
		e.I64(int64(h.FringePairs))
		e.I64(int64(h.FringeTombstones))
		e.I64(h.FringeEvictions)
		e.I64(int64(h.FringeWidth))
		e.F64(h.RelErr)
	}
	return e.Bytes()
}

// DecodeHealth parses a health dump, rejecting structurally implausible
// input. Non-finite RelErr values are legitimate (an empty estimator
// reports +Inf — it cannot bound its error), so floats are not validated
// beyond their encoding.
func DecodeHealth(data []byte) ([]imps.HealthReport, error) {
	d := wire.NewDecoder(data)
	d.Magic(healthMagic)
	n := d.Count(64)
	if d.Err() == nil && n > maxHealthReports {
		return nil, fmt.Errorf("%w: health dump claims %d reports", wire.ErrCorrupt, n)
	}
	var reports []imps.HealthReport
	if d.Err() == nil && n > 0 {
		reports = make([]imps.HealthReport, n)
		for i := 0; i < n; i++ {
			h := &reports[i]
			h.Stmt = int(d.U32())
			h.Kind = d.Str(256)
			h.Query = d.Str(1 << 16)
			h.Shared = d.Bool()
			h.Tuples = d.I64()
			h.MemEntries = int(d.I64())
			h.MemBytes = d.I64()
			h.BitmapFill = d.F64()
			h.LeftmostZero = d.F64()
			h.FringeTracked = int(d.I64())
			h.FringePairs = int(d.I64())
			h.FringeTombstones = int(d.I64())
			h.FringeEvictions = d.I64()
			h.FringeWidth = int(d.I64())
			h.RelErr = d.F64()
			if h.Tuples < 0 || h.MemEntries < 0 || h.MemBytes < 0 {
				d.Failf("negative health counter in report %d", i)
			}
		}
	}
	if err := d.Done(); err != nil {
		return nil, fmt.Errorf("obs: %w", err)
	}
	return reports, nil
}
