package core

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"implicate/internal/exact"
	"implicate/internal/imps"
)

func testConditions() imps.Conditions {
	return imps.Conditions{MaxMultiplicity: 5, MinSupport: 3, TopC: 1, MinTopConfidence: 0.8}
}

func TestNewSketchValidation(t *testing.T) {
	good := testConditions()
	if _, err := NewSketch(good, Options{}); err != nil {
		t.Fatalf("defaults rejected: %v", err)
	}
	if _, err := NewSketch(imps.Conditions{}, Options{}); err == nil {
		t.Fatal("zero conditions accepted")
	}
	if _, err := NewSketch(good, Options{Bitmaps: 3}); err == nil {
		t.Fatal("non-power-of-two bitmap count accepted")
	}
	if _, err := NewSketch(good, Options{FringeSize: -1}); err == nil {
		t.Fatal("negative fringe accepted")
	}
	if _, err := NewSketch(good, Options{FringeSize: 65}); err == nil {
		t.Fatal("fringe wider than the bitmap accepted")
	}
	if _, err := NewSketch(good, Options{Slack: -2}); err == nil {
		t.Fatal("negative slack accepted")
	}
}

func TestOptionsDefaults(t *testing.T) {
	s := MustSketch(testConditions(), Options{})
	o := s.Options()
	if o.Bitmaps != DefaultBitmaps || o.FringeSize != DefaultFringeSize || o.Slack != DefaultSlack {
		t.Fatalf("defaults not applied: %+v", o)
	}
}

func TestEmptySketchCounts(t *testing.T) {
	s := MustSketch(testConditions(), Options{})
	if s.ImplicationCount() != 0 || s.NonImplicationCount() != 0 || s.SupportedDistinct() != 0 {
		t.Fatal("empty sketch reports non-zero counts")
	}
	if s.Tuples() != 0 || s.MemEntries() != 0 {
		t.Fatal("empty sketch reports observations")
	}
}

// feedWorkload streams a synthetic workload with nImp implicating itemsets
// (each appearing supp times with a single partner) and nNon
// non-implicating itemsets (each appearing supp times spread over more
// partners than the multiplicity allows) into each estimator, interleaved
// deterministically.
func feedWorkload(rng *rand.Rand, ests []imps.Estimator, cond imps.Conditions, nImp, nNon int, supp int) {
	type pair struct{ a, b string }
	var tuples []pair
	for i := 0; i < nImp; i++ {
		a := fmt.Sprintf("imp-%d", i)
		for s := 0; s < supp; s++ {
			tuples = append(tuples, pair{a, fmt.Sprintf("partner-%d", i)})
		}
	}
	for i := 0; i < nNon; i++ {
		a := fmt.Sprintf("non-%d", i)
		for s := 0; s < supp; s++ {
			// Cycle through K+3 partners so both the multiplicity and the
			// top-confidence conditions eventually fail.
			tuples = append(tuples, pair{a, fmt.Sprintf("nb-%d-%d", i, s%(cond.MaxMultiplicity+3))})
		}
	}
	rng.Shuffle(len(tuples), func(i, j int) { tuples[i], tuples[j] = tuples[j], tuples[i] })
	for _, tp := range tuples {
		for _, e := range ests {
			e.Add(tp.a, tp.b)
		}
	}
}

// TestSketchTracksExact is the central accuracy test: across a grid of
// implication/non-implication mixes the sketch estimate must stay within a
// few stochastic-averaging standard errors of the exact count.
func TestSketchTracksExact(t *testing.T) {
	cond := testConditions()
	grid := []struct {
		nImp, nNon int
		maxErr     float64
	}{
		{1000, 0, 0.22},
		{900, 100, 0.22},
		{500, 500, 0.22},
		{100, 900, 0.30}, // S is 10% of F0: fewer implications in the sample
		{5000, 5000, 0.22},
		{2000, 8000, 0.25},
	}
	for _, g := range grid {
		g := g
		t.Run(fmt.Sprintf("imp%d_non%d", g.nImp, g.nNon), func(t *testing.T) {
			var errSum float64
			const runs = 5
			for run := 0; run < runs; run++ {
				sk := MustSketch(cond, Options{Seed: uint64(run*131 + 7)})
				ex := exact.MustCounter(cond)
				rng := rand.New(rand.NewSource(int64(run*977 + 3)))
				feedWorkload(rng, []imps.Estimator{sk, ex}, cond, g.nImp, g.nNon, int(cond.MinSupport)+4)

				if int(ex.ImplicationCount()) != g.nImp {
					t.Fatalf("exact counter disagrees with construction: got %v implications, want %d",
						ex.ImplicationCount(), g.nImp)
				}
				if int(ex.NonImplicationCount()) != g.nNon {
					t.Fatalf("exact counter: got %v non-implications, want %d",
						ex.NonImplicationCount(), g.nNon)
				}
				errSum += math.Abs(sk.ImplicationCount()-float64(g.nImp)) / float64(g.nImp)
			}
			// The stochastic-averaging error with 64 bitmaps is ~10%; allow
			// headroom for the small run count.
			if mean := errSum / runs; mean > g.maxErr {
				t.Errorf("mean relative error %.3f exceeds %.2f", mean, g.maxErr)
			}
		})
	}
}

// TestBoundedMatchesUnbounded verifies the paper's Figure 4–6 claim that a
// fringe of size four is indistinguishable from an unbounded fringe for all
// but tiny non-implication counts.
func TestBoundedMatchesUnbounded(t *testing.T) {
	cond := testConditions()
	bounded := MustSketch(cond, Options{Seed: 5})
	unbounded := MustSketch(cond, Options{Seed: 5, Unbounded: true})
	ex := exact.MustCounter(cond)
	rng := rand.New(rand.NewSource(17))
	feedWorkload(rng, []imps.Estimator{bounded, unbounded, ex}, cond, 3000, 3000, 7)

	b, u := bounded.ImplicationCount(), unbounded.ImplicationCount()
	if diff := math.Abs(b-u) / u; diff > 0.20 {
		t.Errorf("bounded %v vs unbounded %v differ by %.2f", b, u, diff)
	}
	if memB, memU := bounded.PeakMemEntries(), unbounded.PeakMemEntries(); memB >= memU {
		t.Errorf("bounded fringe used %d entries, unbounded %d — bounding saved nothing", memB, memU)
	}
}

// TestMemoryBound checks the O(K) per-bitmap space bound of §4.6: with
// fringe F and slack s, at most s·(2^F−1) itemsets are tracked per bitmap,
// each with at most K+1 counters (support + up to K pairs), regardless of
// stream size, plus the bounded support-only cells.
func TestMemoryBound(t *testing.T) {
	cond := imps.Conditions{MaxMultiplicity: 2, MinSupport: 50, TopC: 1, MinTopConfidence: 0.9}
	opts := Options{Bitmaps: 64, FringeSize: 4, Slack: 2, Seed: 1}
	s := MustSketch(cond, opts)
	rng := rand.New(rand.NewSource(2))
	// A hostile stream: every tuple a fresh itemset, so cells see maximal
	// distinct pressure.
	for i := 0; i < 500000; i++ {
		s.AddIDs(uint64(i), uint64(rng.Intn(100)))
	}
	perBitmap := opts.Slack * ((1 << opts.FringeSize) - 1) // fringe cells
	perBitmap += Levels * opts.Slack << (opts.FringeSize - 1)
	bound := opts.Bitmaps * perBitmap * (cond.MaxMultiplicity + 1)
	if s.PeakMemEntries() > bound {
		t.Fatalf("peak entries %d exceed bound %d", s.PeakMemEntries(), bound)
	}
	// The realistic bound is far smaller; make sure we are in its vicinity
	// (paper: 15·K itemsets per bitmap for F=4).
	realistic := opts.Bitmaps * opts.Slack * ((1 << opts.FringeSize) - 1) * (cond.MaxMultiplicity + 2)
	if s.PeakMemEntries() > realistic {
		t.Errorf("peak entries %d exceed the realistic budget %d", s.PeakMemEntries(), realistic)
	}
}

// TestFringeInvariants streams random data and checks structural invariants
// of every bitmap after every tuple batch.
func TestFringeInvariants(t *testing.T) {
	cond := imps.Conditions{MaxMultiplicity: 2, MinSupport: 2, TopC: 1, MinTopConfidence: 0.7}
	s := MustSketch(cond, Options{Bitmaps: 8, FringeSize: 3, Seed: 3})
	rng := rand.New(rand.NewSource(4))
	check := func(step int) {
		for bi := range s.bms {
			b := &s.bms[bi]
			if b.hi < 0 {
				continue
			}
			if b.lo > Levels {
				t.Fatalf("step %d bitmap %d: lo %d beyond bitmap", step, bi, b.lo)
			}
			if b.lo > 0 {
				for j := 0; j < b.lo && j <= b.hi; j++ {
					if !b.value[j] && b.cells[j] != nil && !b.cells[j].suppOnly && len(b.cells[j].items) > 0 {
						t.Fatalf("step %d bitmap %d: full-tracking cell %d left of fringe lo=%d", step, bi, j, b.lo)
					}
				}
			}
			for j := b.hi + 1; j < Levels; j++ {
				if b.value[j] || b.cells[j] != nil || b.dead[j] || b.touched[j] {
					t.Fatalf("step %d bitmap %d: Zone-0 cell %d is touched (hi=%d)", step, bi, j, b.hi)
				}
			}
			for j := 0; j < Levels; j++ {
				if b.dead[j] && b.supped[j] && b.cells[j] != nil {
					t.Fatalf("step %d bitmap %d: settled dead cell %d still holds memory", step, bi, j)
				}
				if b.dead[j] && b.cells[j] != nil && !b.cells[j].suppOnly {
					t.Fatalf("step %d bitmap %d: dead cell %d holds full tracking", step, bi, j)
				}
				c := b.cells[j]
				if c == nil {
					continue
				}
				nSup, nDoom, nTomb := 0, 0, 0
				for k := range c.items {
					st := &c.items[k].st
					if st.excluded {
						nTomb++
						if st.perB != nil || st.doomed {
							t.Fatalf("step %d bitmap %d cell %d: tombstone retains state", step, bi, j)
						}
						continue
					}
					if st.supp >= s.cond.MinSupport {
						nSup++
						if st.doomed {
							t.Fatalf("step %d bitmap %d cell %d: supported doomed itemset still tracked", step, bi, j)
						}
					}
					if st.doomed {
						nDoom++
						if st.perB != nil {
							t.Fatalf("step %d bitmap %d cell %d: doomed itemset retains pair counters", step, bi, j)
						}
					}
				}
				if nSup != c.nSupported || nDoom != c.nDoomed || nTomb != c.nExcluded {
					t.Fatalf("step %d bitmap %d cell %d: census drift (sup %d vs %d, doomed %d vs %d, tomb %d vs %d)",
						step, bi, j, c.nSupported, nSup, c.nDoomed, nDoom, c.nExcluded, nTomb)
				}
				if c.nExcluded > 0 && !b.value[j] {
					t.Fatalf("step %d bitmap %d cell %d: tombstones without a recorded non-implication", step, bi, j)
				}
			}
		}
	}
	for step := 0; step < 200; step++ {
		for k := 0; k < 100; k++ {
			s.AddIDs(uint64(rng.Intn(5000)), uint64(rng.Intn(7)))
		}
		check(step)
	}
}

// TestSupportedDistinctIgnoresUnsupported verifies F0^sup counts only
// itemsets at or above the minimum support.
func TestSupportedDistinctIgnoresUnsupported(t *testing.T) {
	cond := imps.Conditions{MaxMultiplicity: 3, MinSupport: 10, TopC: 1, MinTopConfidence: 0.5}
	s := MustSketch(cond, Options{Seed: 9})
	// 2000 itemsets with support 1 (below τ), 500 with support 12.
	for i := 0; i < 2000; i++ {
		s.AddIDs(uint64(i), 1)
	}
	for i := 0; i < 500; i++ {
		for k := 0; k < 12; k++ {
			s.AddIDs(uint64(100000+i), 1)
		}
	}
	sup := s.SupportedDistinct()
	if sup < 350 || sup > 650 {
		t.Errorf("SupportedDistinct = %v, want ≈500", sup)
	}
	all := s.DistinctCount()
	if all < 2000 || all > 3100 {
		t.Errorf("DistinctCount = %v, want ≈2500", all)
	}
}

// TestOnceViolatedForeverOut encodes §3.1.1: an itemset that once failed
// top-confidence after reaching support must not re-enter the count even if
// its confidence later recovers.
func TestOnceViolatedForeverOut(t *testing.T) {
	cond := imps.Conditions{MaxMultiplicity: 5, MinSupport: 4, TopC: 1, MinTopConfidence: 0.75}
	ex := exact.MustCounter(cond)
	// Four tuples: b1 b2 b1 b2 → at supp 4 top-1 confidence is 0.5 < 0.75.
	ex.Add("a", "b1")
	ex.Add("a", "b2")
	ex.Add("a", "b1")
	ex.Add("a", "b2")
	if ex.NonImplicationCount() != 1 {
		t.Fatalf("expected violation at supp=4, got ~S=%v", ex.NonImplicationCount())
	}
	// 100 more b1 tuples push the confidence back above 0.75 — too late.
	for i := 0; i < 100; i++ {
		ex.Add("a", "b1")
	}
	if ex.ImplicationCount() != 0 {
		t.Fatalf("itemset re-entered the count after violation")
	}
	// The sketch obeys the same rule: its non-implication event is recorded
	// by a one bit that is never erased.
	sk := MustSketch(cond, Options{Bitmaps: 1, Seed: 3})
	sk.Add("a", "b1")
	sk.Add("a", "b2")
	sk.Add("a", "b1")
	sk.Add("a", "b2")
	_, rank := sk.router.Route(sk.ahash.Sum("a"))
	if !sk.bms[0].value[rank] {
		t.Fatalf("violation at supp=4 not recorded in cell %d", rank)
	}
	for i := 0; i < 100; i++ {
		sk.Add("a", "b1")
	}
	if !sk.bms[0].value[rank] {
		t.Fatalf("non-implication record erased from cell %d", rank)
	}
}

// TestMultiplicityViolation checks the doomed path: exceeding K distinct
// partners confirms a non-implication as soon as the support arrives.
func TestMultiplicityViolation(t *testing.T) {
	cond := imps.Conditions{MaxMultiplicity: 2, MinSupport: 6, TopC: 2, MinTopConfidence: 0.1}
	ex := exact.MustCounter(cond)
	sk := MustSketch(cond, Options{Bitmaps: 1, Seed: 1})
	for _, e := range []imps.Estimator{ex, sk} {
		e.Add("a", "b1")
		e.Add("a", "b2")
		e.Add("a", "b3") // third distinct partner: doomed
		if got := e.NonImplicationCount(); got != 0 {
			t.Fatalf("non-implication confirmed before the minimum support: %v", got)
		}
		e.Add("a", "b1")
		e.Add("a", "b1")
		e.Add("a", "b1") // supp reaches 6
	}
	if ex.NonImplicationCount() != 1 {
		t.Fatalf("exact: ~S = %v, want 1", ex.NonImplicationCount())
	}
	_, rank := sk.router.Route(sk.ahash.Sum("a"))
	if !sk.bms[0].value[rank] {
		t.Fatalf("sketch did not record the confirmed non-implication in cell %d", rank)
	}
}

// TestNoReadmissionAfterViolation is the regression test for the tombstone
// mechanism: a violator that keeps arriving with clean (single-partner)
// tuples after its confirmation must never re-enter the implication sample.
// Without tombstones such itemsets cycle through a fresh counted-as-implying
// phase and inflate small counts by an order of magnitude.
func TestNoReadmissionAfterViolation(t *testing.T) {
	cond := imps.Conditions{MaxMultiplicity: 2, MinSupport: 5, TopC: 1, MinTopConfidence: 0.6}
	sk := MustSketch(cond, Options{Seed: 21})
	ex := exact.MustCounter(cond)
	rng := rand.New(rand.NewSource(8))
	// 50 genuine implications and 2000 violators that keep streaming clean
	// tuples long after violating.
	for i := 0; i < 50; i++ {
		a := fmt.Sprintf("imp%d", i)
		for k := 0; k < 8; k++ {
			sk.Add(a, "p"+a)
			ex.Add(a, "p"+a)
		}
	}
	for round := 0; round < 40; round++ {
		for i := 0; i < 2000; i++ {
			a := fmt.Sprintf("viol%d", i)
			// First rounds establish the violation (3 distinct partners);
			// later rounds send a steady single partner.
			b := "q"
			if round < 3 {
				b = fmt.Sprintf("q%d", round)
			}
			sk.Add(a, b)
			ex.Add(a, b)
			_ = rng
		}
	}
	if got := ex.ImplicationCount(); got != 50 {
		t.Fatalf("exact = %v, want 50", got)
	}
	if got := sk.ImplicationCount(); got > 250 {
		t.Fatalf("sketch re-admitted violators: estimate %v for true count 50", got)
	}
}

// TestRawVsCorrected sanity-checks the CI estimator family: at small counts
// the small-range correction must beat the paper's raw 2^R arithmetic.
func TestRawVsCorrected(t *testing.T) {
	cond := testConditions()
	var rawErr, corrErr, directErr float64
	const truth, runs = 200.0, 10
	for run := 0; run < runs; run++ {
		s := MustSketch(cond, Options{Seed: uint64(run)})
		for i := 0; i < int(truth); i++ {
			for k := 0; k < 4; k++ {
				s.AddIDs(uint64(run*100000+i), uint64(i))
			}
		}
		rawErr += math.Abs(s.RawImplicationCount()-truth) / truth
		corrErr += math.Abs(s.CIImplicationCount()-truth) / truth
		directErr += math.Abs(s.ImplicationCount()-truth) / truth
	}
	if corrErr/runs > 0.25 {
		t.Errorf("corrected CI estimator error %.3f too large at small counts", corrErr/runs)
	}
	if corrErr > rawErr {
		t.Errorf("correction did not help at small counts: raw %.3f, corrected %.3f", rawErr/runs, corrErr/runs)
	}
	if directErr/runs > 0.15 {
		t.Errorf("direct estimator error %.3f too large at small counts", directErr/runs)
	}
}

// TestMinEstimable checks the 2^−F·F0 floor of §4.3.3 is reported and zero
// for unbounded sketches.
func TestMinEstimable(t *testing.T) {
	cond := testConditions()
	b := MustSketch(cond, Options{Seed: 2})
	u := MustSketch(cond, Options{Seed: 2, Unbounded: true})
	for i := 0; i < 10000; i++ {
		b.AddIDs(uint64(i), 0)
		u.AddIDs(uint64(i), 0)
	}
	if u.MinEstimable() != 0 {
		t.Fatal("unbounded sketch reports a floor")
	}
	floor := b.MinEstimable()
	want := b.DistinctCount() / 16 // F = 4
	if math.Abs(floor-want) > 1e-9 {
		t.Fatalf("MinEstimable = %v, want %v", floor, want)
	}
}

func TestAddStringAndIDsConsistent(t *testing.T) {
	cond := testConditions()
	s := MustSketch(cond, Options{Seed: 11})
	// Same logical stream through both entry points must produce identical
	// per-path behaviour for repeated calls (determinism check).
	s2 := MustSketch(cond, Options{Seed: 11})
	for i := 0; i < 1000; i++ {
		s.Add(fmt.Sprintf("a%d", i%50), fmt.Sprintf("b%d", i%7))
		s2.Add(fmt.Sprintf("a%d", i%50), fmt.Sprintf("b%d", i%7))
	}
	if s.ImplicationCount() != s2.ImplicationCount() ||
		s.NonImplicationCount() != s2.NonImplicationCount() {
		t.Fatal("identical streams produced different sketches")
	}
}

// TestReset checks a reset sketch behaves exactly like a fresh one.
func TestReset(t *testing.T) {
	cond := testConditions()
	a := MustSketch(cond, Options{Seed: 31})
	fresh := MustSketch(cond, Options{Seed: 31})
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 30000; i++ {
		a.AddIDs(uint64(rng.Intn(2000)), uint64(rng.Intn(5)))
	}
	a.Reset()
	if a.Tuples() != 0 || a.MemEntries() != 0 || a.PeakMemEntries() != 0 {
		t.Fatalf("reset left state: tuples=%d entries=%d peak=%d", a.Tuples(), a.MemEntries(), a.PeakMemEntries())
	}
	if a.ImplicationCount() != 0 || a.NonImplicationCount() != 0 || a.DistinctCount() != 0 {
		t.Fatal("reset left estimates")
	}
	rng2 := rand.New(rand.NewSource(7))
	for i := 0; i < 20000; i++ {
		x, y := uint64(rng2.Intn(3000)), uint64(rng2.Intn(6))
		a.AddIDs(x, y)
		fresh.AddIDs(x, y)
	}
	if a.ImplicationCount() != fresh.ImplicationCount() ||
		a.NonImplicationCount() != fresh.NonImplicationCount() ||
		a.MemEntries() != fresh.MemEntries() {
		t.Fatal("reset sketch diverged from a fresh one")
	}
}

// TestSketchAvgMultiplicity checks the sampled average against a
// constructed mixture (half the itemsets have one partner, half have
// three).
func TestSketchAvgMultiplicity(t *testing.T) {
	cond := imps.Conditions{MaxMultiplicity: 3, MinSupport: 6, TopC: 3, MinTopConfidence: 0.9}
	s := MustSketch(cond, Options{Seed: 17})
	if s.AvgMultiplicity() != 0 {
		t.Fatal("empty sketch has non-zero average")
	}
	for i := 0; i < 4000; i++ {
		mult := 1
		if i%2 == 0 {
			mult = 3
		}
		for k := 0; k < 6; k++ { // support 6 for every itemset
			s.AddIDs(uint64(i), uint64(i*10+k%mult))
		}
	}
	got := s.AvgMultiplicity()
	if got < 1.7 || got > 2.3 {
		t.Fatalf("AvgMultiplicity = %v, want ≈2", got)
	}
}
