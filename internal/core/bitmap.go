package core

import "implicate/internal/imps"

// bitmap is one probabilistic-counting bitmap with a floating fringe zone
// (Figure 3 of the paper). Cells split into three zones:
//
//	Zone-1:  value[i] == true — a non-implicating itemset (or an overflow,
//	         or a fringe float) has been recorded; all tracking memory for
//	         the cell has been freed.
//	Fringe:  cells in [lo, hi] with value[i] == false — every itemset hashed
//	         here is tracked together with the B-itemsets it appears with,
//	         because its fate is still undecided.
//	Zone-0:  cells right of hi — nothing has hashed there yet.
//
// Cells left of lo with value[i] == false were pushed out of the fringe (or
// were empty when it floated past); if an itemset hashes there later it is
// tracked support-only — it can still witness the minimum-support condition
// for F0^sup but can never be confirmed a non-implication, a conservative
// choice the paper leaves open.
//
// Alongside the paper's value bit this implementation keeps two more sticky
// bits per cell. supped records that a minimum-support itemset was seen in
// the cell before its memory was freed, so the F0^sup reader stays truthful
// when a fringe float discards a cell full of under-supported itemsets
// (without it, every float would silently inflate F0^sup). touched records
// that anything ever hashed into the cell, backing the plain F0 reader.
type bitmap struct {
	value   [Levels]bool
	supped  [Levels]bool
	touched [Levels]bool
	// dead marks cells that stopped tracking forever: pushed out of the
	// fringe with recorded evidence, or overflowed. A cell whose value bit
	// was set by an ordinary confirmation stays alive — only the confirmed
	// violator is evicted, so the survivors keep feeding the direct
	// implication sample (the paper frees the whole cell, §4.3.2, trading
	// sample size for a constant-factor memory saving).
	dead  [Levels]bool
	cells [Levels]*cell
	// lo..hi delimit the fringe; hi is the rightmost hashed cell, -1 before
	// the first hash. lo is monotone non-decreasing.
	lo, hi    int
	overflows int
}

// cell tracks the undecided itemsets hashed into one fringe position.
// A confirmed violator is not evicted: its entry remains as an excluded
// tombstone, so the §3.1.1 "once violated, forever out" rule survives the
// itemset's later arrivals (a tombstone still occupies one of the cell's
// capacity slots, so the overflow rule keeps memory bounded exactly as the
// paper's capacity model prescribes).
//
// Cells hold at most slack·2^(F−1) itemsets, so they store them as an
// inline vector scanned linearly: no per-itemset heap allocation, no map
// buckets — the memory shape a constrained router implementation needs.
type cell struct {
	items []item
	// suppOnly marks a cell left of the fringe that only witnesses support.
	suppOnly bool
	// nSupported counts tracked itemsets whose support has reached the
	// minimum-support condition. Because a supported tracked itemset that
	// failed a condition is instantly tombstoned, every supported tracked
	// itemset is currently implying — nSupported is simultaneously the
	// cell's implication census, which the direct estimator scales up by
	// the cell's inclusion probability.
	nSupported int
	// nDoomed counts tracked itemsets that already exceeded the maximum
	// multiplicity and are merely waiting for the minimum support to
	// confirm their non-implication.
	nDoomed int
	// nExcluded counts tombstoned itemsets (confirmed non-implications).
	nExcluded int
}

// item is one tracked itemset slot in a cell.
type item struct {
	ah uint64
	st aState
}

// aState is the per-itemset sample entry: the support counter σ(a) and the
// per-b counters σ(a,b) of §4.3.4.
type aState struct {
	supp int64
	// doomed is set when the itemset has exceeded the maximum multiplicity;
	// its per-b counters are freed and only the support counter keeps
	// running until it reaches the minimum support (at which point the
	// non-implication is confirmed).
	doomed bool
	// excluded marks a tombstone: the itemset violated the conditions after
	// meeting the minimum support and is out forever.
	excluded bool
	perB     pairSet
}

// find returns the index of ah in the cell, or -1.
func (c *cell) find(ah uint64) int {
	for i := range c.items {
		if c.items[i].ah == ah {
			return i
		}
	}
	return -1
}

func (b *bitmap) init() {
	b.lo, b.hi = 0, -1
}

// loFor returns the leftmost fringe cell given rightmost cell hi.
func (s *Sketch) loFor(hi int) int {
	if s.opts.Unbounded {
		return 0
	}
	lo := hi - s.opts.FringeSize + 1
	if lo < 0 {
		lo = 0
	}
	return lo
}

// capFor returns the itemset capacity of cell i. The fringe cell at distance
// d from the rightmost hashed cell expects 2^d distinct itemsets (Lemma 1),
// multiplied by the slack factor; support-only cells get the leftmost
// fringe cell's budget.
func (s *Sketch) capFor(b *bitmap, i int) int {
	if s.opts.Unbounded {
		return 1 << 30
	}
	d := b.hi - i
	if d >= s.opts.FringeSize {
		d = s.opts.FringeSize - 1
	}
	return s.opts.Slack << uint(d)
}

// freeCell releases all tracking memory of cell i.
func (s *Sketch) freeCell(b *bitmap, i int) {
	if c := b.cells[i]; c != nil {
		for j := range c.items {
			s.entries -= 1 + len(c.items[j].st.perB)
		}
		b.cells[i] = nil
	}
}

// confirm records a confirmed non-implication in cell i and tombstones the
// violator (Algorithm 1, lines 13–15). The value bit is monotone: once one,
// the cell's non-implication event is recorded forever. The violator was
// supported by construction, so the supported bit is set alongside. The
// remaining tracked itemsets stay — they continue to feed both the support
// witness and the direct implication sample — and the violator's tombstone
// keeps it excluded for the rest of the stream.
func (s *Sketch) confirm(b *bitmap, i int, c *cell, st *aState) {
	b.value[i] = true
	b.supped[i] = true
	s.entries -= len(st.perB) // the itemset slot stays as a tombstone
	if st.supp >= s.cond.MinSupport {
		c.nSupported--
	}
	if st.doomed {
		c.nDoomed--
	}
	st.excluded = true
	st.doomed = false
	st.perB = nil
	c.nExcluded++
}

// kill stops all tracking in cell i forever and frees its memory; used for
// overflows and fringe push-outs.
func (s *Sketch) kill(b *bitmap, i int) {
	b.dead[i] = true
	s.freeCell(b, i)
}

// pushOut handles a cell that the floating fringe leaves behind (§4.3.3):
// a non-empty pushed-out cell joins Zone-1, exactly as the paper
// prescribes — its tracking is abandoned, and leaving it zero would pin the
// non-implication reader below this position forever (the reader's cells
// must be monotone). This is the source of the 2^−F·F0 estimation floor
// the paper derives. The supported bit, however, follows the evidence: it
// is only set when the cell actually witnessed a supported itemset (or a
// doomed or excluded one, which reached support by construction), so
// fringe floats do not fabricate F0^sup out of under-supported itemsets.
func (s *Sketch) pushOut(b *bitmap, i int) {
	c := b.cells[i]
	if c != nil && len(c.items) > 0 {
		b.value[i] = true
		if c.nSupported > 0 || c.nDoomed > 0 || c.nExcluded > 0 {
			b.supped[i] = true
		}
	}
	s.freeCell(b, i)
	if b.value[i] {
		b.dead[i] = true
	}
}

// add is Algorithm 1 (NIPS) for one routed tuple.
func (s *Sketch) add(b *bitmap, i int, ah, bh uint64) {
	b.touched[i] = true
	if b.hi < 0 {
		b.hi = i
		b.lo = s.loFor(i)
	} else if i > b.hi {
		// The itemset hashed into Zone-0: float the fringe right, making i
		// its rightmost cell; cells pushed out on the left leave the fringe.
		newLo := s.loFor(i)
		if newLo < b.lo {
			newLo = b.lo
		}
		b.hi = i
		for j := b.lo; j < newLo; j++ {
			s.pushOut(b, j)
		}
		b.lo = newLo
	}

	if b.dead[i] && b.supped[i] {
		// The cell stopped tracking forever (overflow, confirmed violation,
		// or push-out with evidence); both its sticky bits are settled.
		return
	}

	c := b.cells[i]
	if c == nil {
		// A dead cell without a support witness (pushed out while all its
		// itemsets were under-supported) reopens in support-only mode: the
		// F0^sup reader still needs to learn whether a supported itemset
		// lives here. The first one to reach the minimum support settles
		// the sticky bit and the cell is freed again.
		c = &cell{suppOnly: i < b.lo || b.dead[i]}
		b.cells[i] = c
	}

	idx := c.find(ah)
	if idx < 0 {
		if len(c.items) >= s.capFor(b, i) {
			// No room to track another itemset: record a pessimistic one
			// (§4.3.3, "overflowed") and stop tracking here.
			b.overflows++
			b.value[i] = true
			b.supped[i] = true // the cell is demonstrably hot; keep F0^sup monotone
			s.kill(b, i)
			return
		}
		c.items = append(c.items, item{ah: ah})
		idx = len(c.items) - 1
		s.entries++
		if s.entries > s.peak {
			s.peak = s.entries
		}
	}
	st := &c.items[idx].st
	if st.excluded {
		// Tombstoned: the itemset violated the conditions after meeting the
		// minimum support and is excluded forever (§3.1.1).
		return
	}

	st.supp++
	if st.supp == s.cond.MinSupport {
		c.nSupported++
		if b.dead[i] {
			b.supped[i] = true
			s.freeCell(b, i)
			return
		}
	}

	if c.suppOnly {
		return
	}

	if !st.doomed {
		if i := st.perB.find(bh); i >= 0 {
			st.perB[i].n++
		} else if len(st.perB) >= s.cond.MaxMultiplicity {
			// The (K+1)-th distinct B-itemset: the maximum-multiplicity
			// condition is violated forever, so the per-pair counters can be
			// freed; only the support counter must keep running until the
			// minimum support confirms the non-implication.
			s.entries -= len(st.perB)
			st.doomed = true
			st.perB = nil
			c.nDoomed++
		} else {
			st.perB.add(bh, 1)
			s.entries++
			if s.entries > s.peak {
				s.peak = s.entries
			}
		}
	}

	if st.supp >= s.cond.MinSupport {
		if st.doomed || s.topConfidence(st) < s.cond.MinTopConfidence {
			s.confirm(b, i, c, st)
		}
	}
}

// topConfidence computes Ψ_c(a,B) from the tracked per-b counters.
func (s *Sketch) topConfidence(st *aState) float64 {
	s.scratch = s.scratch[:0]
	for i := range st.perB {
		s.scratch = append(s.scratch, st.perB[i].n)
	}
	return imps.TopConfidence(s.scratch, s.cond.TopC, st.supp)
}

// rNonImplication is R_~S: the leftmost cell whose value is not one
// (Algorithm 2, lines 5–8).
func (b *bitmap) rNonImplication() int {
	for i := 0; i < Levels; i++ {
		if !b.value[i] {
			return i
		}
	}
	return Levels
}

// rSupported is R_F0sup: the leftmost cell that has never witnessed an
// itemset meeting the minimum-support condition (Algorithm 2, lines 1–4).
func (b *bitmap) rSupported() int {
	for i := 0; i < Levels; i++ {
		if b.supped[i] {
			continue
		}
		if c := b.cells[i]; c != nil && c.nSupported > 0 {
			continue
		}
		return i
	}
	return Levels
}

// rHashed is the plain F0 position: the leftmost cell never hashed into.
func (b *bitmap) rHashed() int {
	for i := 0; i < Levels; i++ {
		if !b.touched[i] {
			return i
		}
	}
	return Levels
}
