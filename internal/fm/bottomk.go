package fm

import (
	"fmt"
	"math"
	"sort"

	"implicate/internal/xhash"
)

// BottomK is the bottom-k distinct-count sketch of Bar-Yossef et al.
// (RANDOM 2002), the algorithm §4.7.1 cites for (ε,δ)-approximating F0: it
// retains the k smallest distinct hash values seen; with U the k-th
// smallest as a fraction of the hash space, F0 ≈ k/U. A single instance is
// an (ε, δ0)-approximation for k ≈ 1/ε²; EpsDeltaF0 drives the
// median-of-groups amplification to arbitrary δ.
type BottomK struct {
	k    int
	hash xhash.Hash
	// vals holds the k smallest distinct hashes seen, as a max-heap keyed
	// on the largest retained value, plus a membership set.
	heap []uint64
	in   map[uint64]struct{}
}

// NewBottomK returns a bottom-k sketch with the given k and hash seed.
func NewBottomK(k int, seed uint64) (*BottomK, error) {
	if k < 1 {
		return nil, fmt.Errorf("fm: bottom-k needs k >= 1, got %d", k)
	}
	return &BottomK{
		k:    k,
		hash: xhash.New(seed),
		in:   make(map[uint64]struct{}, k),
	}, nil
}

// Add observes one element.
func (b *BottomK) Add(key string) { b.AddHash(b.hash.Sum(key)) }

// AddHash observes an element by its precomputed hash.
func (b *BottomK) AddHash(h uint64) {
	if _, dup := b.in[h]; dup {
		return
	}
	if len(b.heap) < b.k {
		b.in[h] = struct{}{}
		b.heap = append(b.heap, h)
		b.up(len(b.heap) - 1)
		return
	}
	if h >= b.heap[0] {
		return
	}
	delete(b.in, b.heap[0])
	b.in[h] = struct{}{}
	b.heap[0] = h
	b.down(0)
}

func (b *BottomK) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if b.heap[p] >= b.heap[i] {
			return
		}
		b.heap[p], b.heap[i] = b.heap[i], b.heap[p]
		i = p
	}
}

func (b *BottomK) down(i int) {
	n := len(b.heap)
	for {
		l, r := 2*i+1, 2*i+2
		max := i
		if l < n && b.heap[l] > b.heap[max] {
			max = l
		}
		if r < n && b.heap[r] > b.heap[max] {
			max = r
		}
		if max == i {
			return
		}
		b.heap[i], b.heap[max] = b.heap[max], b.heap[i]
		i = max
	}
}

// Size returns the number of retained hashes (min(k, distinct seen)).
func (b *BottomK) Size() int { return len(b.heap) }

// Estimate returns the F0 estimate. With fewer than k distinct elements the
// count is exact.
func (b *BottomK) Estimate() float64 {
	if len(b.heap) < b.k {
		return float64(len(b.heap))
	}
	// kth smallest = heap max; U = kth/2^64.
	u := float64(b.heap[0]) / math.Exp2(64)
	if u == 0 {
		return float64(b.k)
	}
	return float64(b.k) / u
}

// EpsDeltaF0 is the (ε, δ)-approximate distinct counter of §4.7.1: the
// median over ~log(1/δ) independent bottom-k sketches, each sized for a
// relative error ε. P(|est − F0| > ε·F0) ≤ δ.
type EpsDeltaF0 struct {
	groups []*BottomK
}

// NewEpsDeltaF0 returns an (ε, δ) distinct counter.
func NewEpsDeltaF0(eps, delta float64, seed uint64) (*EpsDeltaF0, error) {
	if eps <= 0 || eps >= 1 || delta <= 0 || delta >= 1 {
		return nil, fmt.Errorf("fm: need eps, delta in (0,1); got %g, %g", eps, delta)
	}
	k := int(math.Ceil(4 / (eps * eps)))
	g := int(math.Ceil(12 * math.Log(1/delta)))
	if g%2 == 0 {
		g++ // an odd group count makes the median unambiguous
	}
	e := &EpsDeltaF0{}
	for i := 0; i < g; i++ {
		bk, err := NewBottomK(k, xhash.Mix(seed+uint64(i)+1))
		if err != nil {
			return nil, err
		}
		e.groups = append(e.groups, bk)
	}
	return e, nil
}

// Add observes one element in every group.
func (e *EpsDeltaF0) Add(key string) {
	for _, g := range e.groups {
		g.Add(key)
	}
}

// Estimate returns the median of the group estimates.
func (e *EpsDeltaF0) Estimate() float64 {
	ests := make([]float64, len(e.groups))
	for i, g := range e.groups {
		ests[i] = g.Estimate()
	}
	sort.Float64s(ests)
	return ests[len(ests)/2]
}

// Groups returns the number of independent sketches.
func (e *EpsDeltaF0) Groups() int { return len(e.groups) }

// MemEntries reports retained hash values across all groups.
func (e *EpsDeltaF0) MemEntries() int {
	n := 0
	for _, g := range e.groups {
		n += g.Size()
	}
	return n
}
