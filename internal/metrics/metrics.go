// Package metrics provides the error statistics the experiment harness
// reports: relative errors against ground truth and streaming mean/standard
// deviation accumulation (Welford's algorithm), matching the measures of
// §6 ("mean relative error ... the error bars correspond to the statistical
// deviation of the mean error").
package metrics

import "math"

// RelErr returns |actual−measured| / actual, the §6.1 relative-error
// formula. When actual is zero it returns 0 for measured 0 and +Inf
// otherwise.
func RelErr(actual, measured float64) float64 {
	if actual == 0 {
		if measured == 0 {
			return 0
		}
		return math.Inf(1)
	}
	return math.Abs(actual-measured) / math.Abs(actual)
}

// IntervalRelErr converts a symmetric confidence interval at z standard
// errors into an estimator's self-assessed relative error: stderr/est with
// stderr recovered from the interval's upper edge, (hi − est)/z. The upper
// edge is used because estimators clamp the lower edge at zero, which would
// understate the spread. Returns 0 for a degenerate interval (the estimator
// claims certainty) and +Inf when the estimate is zero but the interval is
// not — having seen nothing qualifying, the estimator cannot bound its
// relative error at all.
func IntervalRelErr(est, hi, z float64) float64 {
	if z <= 0 {
		return 0
	}
	stderr := (hi - est) / z
	if stderr <= 0 {
		return 0
	}
	if est <= 0 {
		return math.Inf(1)
	}
	return stderr / est
}

// Welford accumulates a running mean and variance without storing samples.
// The zero value is an empty accumulator.
type Welford struct {
	n    int64
	mean float64
	m2   float64
}

// Add folds one observation in.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the number of observations.
func (w *Welford) N() int64 { return w.n }

// Mean returns the sample mean (0 when empty).
func (w *Welford) Mean() float64 { return w.mean }

// Var returns the unbiased sample variance (0 with fewer than two
// observations).
func (w *Welford) Var() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Stddev returns the sample standard deviation.
func (w *Welford) Stddev() float64 { return math.Sqrt(w.Var()) }

// StdErrOfMean returns the standard error of the mean, the error-bar
// half-width used in Figures 4–6.
func (w *Welford) StdErrOfMean() float64 {
	if w.n < 1 {
		return 0
	}
	return w.Stddev() / math.Sqrt(float64(w.n))
}
