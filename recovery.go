package implicate

import (
	"implicate/internal/checkpoint"
	"implicate/internal/core"
	"implicate/internal/query"
	"implicate/internal/stream"
)

// Durability & recovery (DESIGN.md §8): a running engine can be captured
// into a Checkpoint — a CRC-guarded, versioned snapshot of every
// statement's estimator state plus the stream offset — written atomically
// to disk, and restored after a crash. Recovery is replay-based: restore
// the engine, skip the source past Checkpoint.Offset tuples (Resumable),
// and keep consuming; against the same stream the recovered engine answers
// exactly what an uninterrupted run answers.

// Checkpoint is one durable recovery point: a serialized engine and the
// number of source tuples it had consumed when captured.
type Checkpoint = checkpoint.Snapshot

// BackendResolver supplies live backends while restoring a checkpoint:
// it is asked once per windowed statement (sliding windows open fresh
// estimators as the stream advances, so they need a factory, not just
// state) with the statement's query and the checkpointed estimator kind
// ("nips", "sharded", "exact", "ilc" or "ds"). The resolved backend's
// configuration must match the checkpoint or the restore fails.
type BackendResolver = query.BackendResolver

// Resumable is a Source that tracks its position in tuples and can skip
// forward without decoding, so a stream can be replayed from a checkpoint
// offset. MemSource and both file readers implement it.
type Resumable = stream.Resumable

// PeriodicCheckpoint writes a checkpoint of an engine every Every tuples
// of stream progress; see its Maybe method.
type PeriodicCheckpoint = checkpoint.Periodic

// CaptureCheckpoint snapshots a live engine at the given stream offset.
func CaptureCheckpoint(eng *Engine, offset int64) (Checkpoint, error) {
	return checkpoint.Capture(eng, offset)
}

// RestoreCheckpoint rebuilds an engine from a checkpoint. The schema must
// match the checkpointed one exactly; resolve may be nil when no statement
// uses a WINDOW clause.
func RestoreCheckpoint(c Checkpoint, schema *Schema, resolve BackendResolver) (*Engine, error) {
	return checkpoint.Restore(c, schema, resolve)
}

// WriteCheckpoint stores a checkpoint at path atomically (temp file +
// rename): a crash mid-write leaves the previous checkpoint intact, never
// a torn file.
func WriteCheckpoint(path string, c Checkpoint) error { return checkpoint.Write(path, c) }

// ReadCheckpoint loads and verifies a checkpoint file. A file that cannot
// be proven intact — truncated, bit-flipped, version-skewed — is rejected
// with an error, never restored into a wrong engine.
func ReadCheckpoint(path string) (Checkpoint, error) { return checkpoint.Read(path) }

// UnmarshalShardedSketch restores a sharded sketch serialized with
// ShardedSketch.MarshalBinary. The restored sketch estimates identically
// and keeps streaming from where the original stopped.
func UnmarshalShardedSketch(data []byte) (*ShardedSketch, error) {
	return core.UnmarshalShardedSketch(data)
}
