// Per-leaf state: the journal of routed batches, the feeder that delivers
// them in order, the prober that watches liveness, and the recovery
// sequence that re-admits a crashed leaf.
//
// The journal is the coordinator's replay log: every batch routed to a leaf
// is appended with its cumulative tuple offset before it is sent, and is
// never re-sent out of order. Because the leaf's engine only ever receives
// whole journal batches, every offset the leaf can checkpoint at — the
// server checkpoints between dispatched batches — lands exactly on a
// journal entry boundary. Recovery exploits that: restart the leaf from its
// checkpoint, read back its restored applied-tuple count, seek the journal
// to that boundary, and replay forward. A restored count that is NOT a
// boundary means the leaf ingested tuples this coordinator never routed to
// it, and recovery fails sticky rather than guess.
//
// Delivery ambiguity resolves the same way: an IngestBatch whose connection
// died mid-request may or may not have been enqueued, and re-sending on a
// live leaf could double-apply it. The feeder never re-sends over ambiguity
// — it marks the leaf down and routes it through recovery, whose
// restart-from-checkpoint discards any uncheckpointed enqueue and whose
// read-back offset says exactly where to resume.
package coord

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"implicate/internal/client"
	"implicate/internal/obs"
	"implicate/internal/proto"
	"implicate/internal/telemetry"
)

// entry is one journaled batch.
type entry struct {
	payload []byte // client.EncodeBatch form, the bytes the wire carries
	n       int64  // tuples in the batch
	off     int64  // cumulative tuples routed to this leaf before it
}

type leafState uint8

const (
	leafUp leafState = iota
	leafDown
	leafRecovering
)

func (s leafState) wire() uint8 {
	switch s {
	case leafDown:
		return proto.LeafDown
	case leafRecovering:
		return proto.LeafRecovering
	}
	return proto.LeafUp
}

// leaf is one fleet member's coordinator-side record.
type leaf struct {
	co   *Coordinator
	name string // stable identity the route table hashes
	idx  int

	mu        sync.Mutex
	cond      *sync.Cond // signals the feeder: new work, state change, close
	addr      string     // current dial address; may change across recovery
	cl        *client.Client
	boot      uint64 // admitted server incarnation; every send is fenced to it
	journal   []entry
	journaled int64 // tuples routed here == last entry's off+n
	acked     int64 // tuples the current incarnation acknowledged as enqueued
	nextSend  int   // journal index the feeder delivers next
	state     leafState
	epoch     uint64 // completed recoveries
	downs     int64  // up→down transitions (probe failures, send ambiguity, restarts)
	replayed  int64  // journal entries re-delivered by recoveries
	fatal     error  // sticky: recovery cannot proceed (journal misalignment)
	closed    bool

	// delivery is the coordinator-side delivery latency histogram: one
	// observation per IngestBatch round trip to this leaf, failures
	// included. Atomic and outside mu — the feeder observes it without the
	// lock, telemetry readers snapshot it concurrently.
	delivery telemetry.AtomicHistogram
}

func newLeaf(co *Coordinator, idx int, spec LeafSpec) (*leaf, error) {
	cl, err := client.Dial(spec.Addr, co.cfg.Schema, co.cfg.ClientOptions)
	if err != nil {
		return nil, fmt.Errorf("coord: leaf %s (%s): %w", spec.Name, spec.Addr, err)
	}
	boot, err := cl.Boot()
	if err != nil {
		cl.Close()
		return nil, fmt.Errorf("coord: leaf %s (%s): %w", spec.Name, spec.Addr, err)
	}
	lf := &leaf{co: co, name: spec.Name, idx: idx, addr: spec.Addr, cl: cl, boot: boot}
	lf.cond = sync.NewCond(&lf.mu)
	return lf, nil
}

// append journals one encoded batch and wakes the feeder. The payload must
// not be modified afterwards — retransmission reads it uncopied.
func (lf *leaf) append(payload []byte, n int64) {
	lf.mu.Lock()
	lf.journal = append(lf.journal, entry{payload: payload, n: n, off: lf.journaled})
	lf.journaled += n
	lf.cond.Broadcast()
	lf.mu.Unlock()
}

// markDown flags a live leaf for recovery and wakes the feeder to run it.
func (lf *leaf) markDown() {
	lf.mu.Lock()
	if lf.state == leafUp && !lf.closed {
		lf.state = leafDown
		lf.downs++
		lf.cond.Broadcast()
	}
	lf.mu.Unlock()
}

// run is the feeder goroutine: deliver journal entries in order, one
// in-flight batch at a time, and run recovery whenever the leaf is down.
// Strictly sequential delivery is what makes the leaf's tuple order a pure
// function of the journal — and so of the route function and source order.
func (lf *leaf) run() {
	defer lf.co.wg.Done()
	for {
		lf.mu.Lock()
		for !lf.closed && (lf.fatal != nil || (lf.state == leafUp && lf.nextSend == len(lf.journal))) {
			lf.cond.Wait()
		}
		if lf.closed {
			lf.mu.Unlock()
			return
		}
		if lf.state != leafUp {
			lf.mu.Unlock()
			lf.recover()
			continue
		}
		e := lf.journal[lf.nextSend]
		cl, boot := lf.cl, lf.boot
		lf.mu.Unlock()
		// When tracing is armed, the delivery is the root span of a
		// cross-node trace: its ids are drawn BEFORE the send so the frame
		// can carry them, and the leaf's plan/dispatch/apply spans parent
		// under the delivery span's id in the assembled fleet trace. With
		// tracing off the zero context leaves the frame byte-identical to
		// the untraced wire format.
		var link obs.Link
		var tc proto.TraceContext
		if tr := lf.co.tracer; tr != nil {
			link = obs.Link{Trace: tr.NewTraceID(), ID: tr.NewSpanID()}
			tc = proto.TraceContext{Trace: link.Trace, Parent: link.ID}
		}
		// Fenced to the admitted incarnation: if the leaf silently restarted
		// (rolling back to its checkpoint) and the pool transparently
		// redialed it, the send fails BEFORE writing instead of feeding a
		// server whose applied-tuple offset no longer matches nextSend.
		start := time.Now()
		err := cl.IngestFencedTraced(e.payload, e.n, boot, tc)
		lf.delivery.Observe(time.Since(start))
		lf.co.tracer.SpanLinked(link, obs.SpanDeliver, lf.idx, e.n, start)
		if err != nil {
			lf.co.logf("coord: leaf %s: send at offset %d: %v", lf.name, e.off, err)
			lf.markDown()
			continue
		}
		lf.mu.Lock()
		lf.nextSend++
		lf.acked = e.off + e.n
		lf.mu.Unlock()
	}
}

// probe is the liveness goroutine: a Ping every ProbeEvery, and after
// ProbeFails consecutive failures the leaf is marked down, so an idle
// leaf's crash is noticed without waiting for the next send to fail. A
// successful probe that reaches a DIFFERENT incarnation — the pool redialed
// a restarted leaf — marks the leaf down immediately: the restart is a
// definitive state rollback, not a flaky network, and an idle leaf would
// otherwise never be routed through recovery.
func (lf *leaf) probe() {
	defer lf.co.wg.Done()
	tick := time.NewTicker(lf.co.cfg.ProbeEvery)
	defer tick.Stop()
	fails := 0
	for {
		select {
		case <-lf.co.stop:
			return
		case <-tick.C:
		}
		lf.mu.Lock()
		cl, boot, st := lf.cl, lf.boot, lf.state
		lf.mu.Unlock()
		if st != leafUp {
			fails = 0
			continue
		}
		if err := cl.Ping(lf.co.cfg.ProbeTimeout); err != nil {
			if fails++; fails >= lf.co.cfg.ProbeFails {
				lf.co.logf("coord: leaf %s: %d probes failed: %v", lf.name, fails, err)
				lf.markDown()
				fails = 0
			}
			continue
		}
		fails = 0
		if got, err := cl.Boot(); err == nil && got != boot {
			lf.co.logf("coord: leaf %s: probe reached incarnation %016x, admitted %016x: restarting recovery", lf.name, got, boot)
			lf.markDown()
		}
	}
}

// recover drives the recovery sequence with backoff until the leaf is back
// in the route table (state up, epoch bumped) or the coordinator closes.
// An alignment failure is sticky fatal: retrying cannot fix a leaf whose
// state diverged from the journal.
func (lf *leaf) recover() {
	lf.mu.Lock()
	if lf.closed || lf.fatal != nil {
		lf.mu.Unlock()
		return
	}
	lf.state = leafRecovering
	lf.mu.Unlock()
	backoff := lf.co.cfg.ClientOptions.RetryBase
	for {
		err := lf.tryRecover()
		if err == nil {
			lf.mu.Lock()
			lf.state = leafUp
			lf.epoch++
			lf.cond.Broadcast()
			lf.mu.Unlock()
			lf.co.logf("coord: leaf %s: recovered (epoch %d)", lf.name, lf.epoch)
			return
		}
		if _, sticky := err.(*alignmentError); sticky {
			lf.mu.Lock()
			lf.fatal = err
			lf.cond.Broadcast()
			lf.mu.Unlock()
			lf.co.logf("coord: leaf %s: unrecoverable: %v", lf.name, err)
			return
		}
		lf.co.logf("coord: leaf %s: recovery attempt: %v", lf.name, err)
		select {
		case <-lf.co.stop:
			return
		case <-time.After(backoff):
		}
		if backoff *= 2; backoff > lf.co.cfg.ClientOptions.RetryCap {
			backoff = lf.co.cfg.ClientOptions.RetryCap
		}
	}
}

// alignmentError is the sticky recovery failure: the leaf's restored offset
// is not a journal boundary.
type alignmentError struct {
	name    string
	tuples  int64
	maxKnow int64
}

func (e *alignmentError) Error() string {
	return fmt.Sprintf("coord: leaf %s restored %d applied tuples, which is not a journal batch boundary (journal covers 0..%d); its state diverged from this coordinator", e.name, e.tuples, e.maxKnow)
}

// tryRecover runs one pass of the recovery sequence: restart (hook),
// redial, read back the restored offset, align the journal, swap the
// client in.
func (lf *leaf) tryRecover() error {
	addr := lf.addr
	if hook := lf.co.cfg.Restart; hook != nil {
		a, err := hook(lf.name)
		if err != nil {
			return fmt.Errorf("restart hook: %w", err)
		}
		if a != "" {
			addr = a
		}
	}
	cl, err := client.Dial(addr, lf.co.cfg.Schema, lf.co.cfg.ClientOptions)
	if err != nil {
		return err
	}
	// The incarnation being admitted: the restored offset read below, and
	// every future send, are only meaningful against THIS server process.
	// Another restart mid-recovery fails the fenced read and retries here.
	boot, err := cl.Boot()
	if err != nil {
		cl.Close()
		return err
	}
	tuples, err := lf.settledTuples(cl, boot)
	if err != nil {
		cl.Close()
		return err
	}
	lf.mu.Lock()
	idx, aligned := lf.boundaryIndex(tuples)
	if !aligned {
		journaled := lf.journaled
		lf.mu.Unlock()
		cl.Close()
		return &alignmentError{name: lf.name, tuples: tuples, maxKnow: journaled}
	}
	old := lf.cl
	if lf.nextSend > idx {
		// Entries between the restored boundary and the old send cursor were
		// delivered to the previous incarnation and will be sent again.
		lf.replayed += int64(lf.nextSend - idx)
	}
	lf.addr, lf.cl, lf.boot, lf.nextSend, lf.acked = addr, cl, boot, idx, tuples
	lf.mu.Unlock()
	if old != nil {
		old.Close()
	}
	return nil
}

// settledTuples reads the leaf's applied-tuple count once it is stable:
// the same value on settleN consecutive polls. A freshly restarted leaf is
// stable immediately (restore runs before it listens); the guard exists for
// the transient-outage case where a batch this feeder sent before the
// outage may still be draining through the leaf's queue.
func (lf *leaf) settledTuples(cl *client.Client, boot uint64) (int64, error) {
	const settleN = 3
	var last int64 = -1
	streak := 0
	for attempt := 0; attempt < 400; attempt++ {
		q, err := cl.QueryFenced(0, boot)
		if err != nil {
			return 0, err
		}
		if q.Tuples == last {
			if streak++; streak >= settleN-1 {
				return q.Tuples, nil
			}
		} else {
			last, streak = q.Tuples, 0
		}
		time.Sleep(5 * time.Millisecond)
	}
	return 0, fmt.Errorf("leaf %s: applied-tuple count did not settle", lf.name)
}

// boundaryIndex locates the journal entry that starts at cumulative offset
// tuples — the resume point after a recovery. Must hold lf.mu.
func (lf *leaf) boundaryIndex(tuples int64) (int, bool) {
	if tuples == lf.journaled {
		return len(lf.journal), true
	}
	i := sort.Search(len(lf.journal), func(i int) bool { return lf.journal[i].off >= tuples })
	if i < len(lf.journal) && lf.journal[i].off == tuples {
		return i, true
	}
	return 0, false
}

// drain blocks until every journaled batch is acknowledged AND applied by
// the leaf — the quiesce point a deterministic merge fan-in needs, since
// ingest acknowledgements only confirm enqueueing.
func (lf *leaf) drain(deadline time.Time) error {
	for {
		lf.mu.Lock()
		fatal, sent, state, cl, boot := lf.fatal, lf.nextSend == len(lf.journal), lf.state, lf.cl, lf.boot
		lf.mu.Unlock()
		if fatal != nil {
			return fatal
		}
		if state == leafUp && sent {
			// Fenced: a restarted leaf's rolled-back count must not be read
			// as this incarnation's progress. ErrIncarnation lands in the
			// keep-polling path below while the prober routes the leaf
			// through recovery.
			q, err := cl.QueryFenced(0, boot)
			if err == nil {
				// Compare against the journal as it stands NOW — appends may
				// have raced the poll, and the journal only grows.
				lf.mu.Lock()
				journaled, sentNow := lf.journaled, lf.nextSend == len(lf.journal)
				lf.mu.Unlock()
				if q.Tuples == journaled && sentNow {
					return nil
				}
				if q.Tuples > journaled {
					return fmt.Errorf("coord: leaf %s applied %d tuples but was routed only %d — it is receiving traffic from elsewhere", lf.name, q.Tuples, journaled)
				}
			}
			// Short counts and errors both mean "not yet": keep polling, the
			// feeder and prober handle real failures.
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("coord: leaf %s did not drain before the deadline (state %d, %d/%d tuples)", lf.name, lf.state, lf.acked, lf.journaled)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// snapshot pulls the leaf's marshalled statement state, waiting out a
// recovery in progress.
func (lf *leaf) snapshot(stmt int, deadline time.Time) (proto.SnapshotResult, error) {
	for {
		lf.mu.Lock()
		fatal, state, cl, boot := lf.fatal, lf.state, lf.cl, lf.boot
		lf.mu.Unlock()
		if fatal != nil {
			return proto.SnapshotResult{}, fatal
		}
		if state == leafUp {
			res, err := cl.SnapshotFenced(stmt, boot)
			if err == nil {
				return res, nil
			}
			if _, remote := err.(*client.RemoteError); remote {
				return proto.SnapshotResult{}, err // the server refused; retrying cannot help
			}
		}
		if time.Now().After(deadline) {
			return proto.SnapshotResult{}, fmt.Errorf("coord: leaf %s: snapshot did not complete before the deadline", lf.name)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// status is this leaf's row of the membership view.
func (lf *leaf) status() proto.LeafStatus {
	lf.mu.Lock()
	defer lf.mu.Unlock()
	st := lf.state
	if lf.fatal != nil {
		st = leafDown
	}
	return proto.LeafStatus{
		Addr:      lf.addr,
		State:     st.wire(),
		Epoch:     lf.epoch,
		Parts:     lf.co.rt.share[lf.idx],
		Journaled: lf.journaled,
		Acked:     lf.acked,
	}
}

// telemetryRow is this leaf's coordinator-side observability row.
func (lf *leaf) telemetryRow() obs.LeafTelemetry {
	lf.mu.Lock()
	st := lf.state
	if lf.fatal != nil {
		st = leafDown
	}
	state := "up"
	switch st {
	case leafDown:
		state = "down"
	case leafRecovering:
		state = "recovering"
	}
	row := obs.LeafTelemetry{
		Name:           lf.name,
		State:          state,
		Epoch:          lf.epoch,
		Parts:          int(lf.co.rt.share[lf.idx]),
		JournalEntries: int64(len(lf.journal)),
		JournalTuples:  lf.journaled,
		PendingEntries: int64(len(lf.journal) - lf.nextSend),
		PendingTuples:  lf.journaled - lf.acked,
		Replayed:       lf.replayed,
		Downs:          lf.downs,
	}
	lf.mu.Unlock()
	row.Delivery = lf.delivery.Snapshot()
	return row
}

// shut stops the feeder and closes the client.
func (lf *leaf) shut() {
	lf.mu.Lock()
	lf.closed = true
	lf.cond.Broadcast()
	cl := lf.cl
	lf.mu.Unlock()
	if cl != nil {
		cl.Close()
	}
}
