package main

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"implicate"
	"implicate/internal/stream"
)

func TestParseFlags(t *testing.T) {
	cfg, rest, err := parseFlags([]string{"-schema", "A,B", "-q", "q1", "-q", "q2", "-queue", "8", "-workers", "4"})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.schema != "A,B" || len(cfg.queries) != 2 || cfg.queries[1] != "q2" || cfg.queue != 8 || cfg.workers != 4 || len(rest) != 0 {
		t.Fatalf("parsed %+v %v", cfg, rest)
	}
	if _, _, err := parseFlags([]string{"-bogus"}); err == nil {
		t.Error("unknown flag accepted")
	}
}

func TestValidateFlagCombinations(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "ok.ckpt")
	// A real checkpoint for the resume-positive case.
	eng := implicate.NewEngine(mustSchema(t, "A", "B"))
	if _, err := eng.RegisterSQL(`SELECT COUNT(DISTINCT A) FROM t WHERE A IMPLIES B`, implicate.ExactBackend()); err != nil {
		t.Fatal(err)
	}
	snap, err := implicate.CaptureCheckpoint(eng, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := implicate.WriteCheckpoint(ckpt, snap); err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name    string
		cfg     config
		wantErr string
	}{
		{"missing schema", config{queries: queryList{"x"}, queue: 1}, "-schema"},
		{"missing query", config{schema: "A,B", queue: 1}, "missing -q"},
		{"every without checkpoint", config{schema: "A,B", queries: queryList{"x"}, queue: 1, every: 100}, "-checkpoint"},
		{"negative every", config{schema: "A,B", queries: queryList{"x"}, queue: 1, every: -1, checkpoint: "f"}, "-every"},
		{"zero queue", config{schema: "A,B", queries: queryList{"x"}, queue: 0}, "-queue"},
		{"negative workers", config{schema: "A,B", queries: queryList{"x"}, queue: 1, workers: -2}, "-workers"},
		{"negative dispatch shards", config{schema: "A,B", queries: queryList{"x"}, queue: 1, shards: -1}, "-dispatch-shards"},
		{"negative udp window", config{schema: "A,B", queries: queryList{"x"}, queue: 1, udp: ":0", udpWindow: -1}, "-udp-window"},
		{"zero udp window", config{schema: "A,B", queries: queryList{"x"}, queue: 1, udp: ":0", udpWindow: 0}, "-udp-window"},
		{"udp window without udp ok", config{schema: "A,B", queries: queryList{"x"}, queue: 1, udpWindow: -1}, ""},
		{"resume with q", config{schema: "A,B", resume: ckpt, queries: queryList{"x"}, queue: 1}, "drop -q"},
		{"resume missing file", config{schema: "A,B", resume: filepath.Join(dir, "nope.ckpt"), queue: 1}, "cannot resume"},
		{"plain ok", config{schema: "A,B", queries: queryList{"x"}, queue: 64}, ""},
		{"resume ok", config{schema: "A,B", resume: ckpt, queue: 64}, ""},
		{"every with checkpoint ok", config{schema: "A,B", queries: queryList{"x"}, queue: 1, every: 5, checkpoint: "f"}, ""},
	}
	for _, tc := range cases {
		err := tc.cfg.validate()
		if tc.wantErr == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("%s: invalid combination accepted", tc.name)
		} else if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.wantErr)
		}
	}
}

func mustSchema(t *testing.T, names ...string) *implicate.Schema {
	t.Helper()
	s, err := implicate.NewSchema(names...)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestBuildEngineErrors(t *testing.T) {
	schema := mustSchema(t, "A", "B")
	if _, err := buildEngine(&config{backend: "zzz", queries: queryList{"x"}}, schema); err == nil || !strings.Contains(err.Error(), "unknown backend") {
		t.Errorf("unknown backend: %v", err)
	}
	if _, err := buildEngine(&config{backend: "exact", queries: queryList{"not sql"}}, schema); err == nil {
		t.Error("bad query accepted")
	}
	if _, err := buildEngine(&config{resume: filepath.Join(t.TempDir(), "missing")}, schema); err == nil {
		t.Error("missing checkpoint accepted")
	}
}

// TestServeSmoke is the end-to-end smoke path `make serve-smoke` exercises
// through the test binary: start a server on loopback with a 4-worker
// pipeline over the striped exact backend, ingest 100k tuples through the
// wire protocol, query it, shut down gracefully, and require the shutdown
// checkpoint to record every acknowledged tuple.
func TestServeSmoke(t *testing.T) {
	const total = 100_000
	ckpt := filepath.Join(t.TempDir(), "smoke.ckpt")
	cfg := &config{
		addr:       "127.0.0.1:0",
		schema:     "Source, Destination",
		queries:    queryList{`SELECT COUNT(DISTINCT Source) FROM traffic WHERE Source IMPLIES Destination WITH SUPPORT >= 3, MULTIPLICITY <= 2`},
		backend:    "exact-striped",
		queue:      16,
		workers:    4,
		shards:     2,
		checkpoint: ckpt,
	}
	if err := cfg.validate(); err != nil {
		t.Fatal(err)
	}

	ready := make(chan addrs, 1)
	stop := make(chan struct{})
	var out strings.Builder
	serveErr := make(chan error, 1)
	go func() { serveErr <- serve(cfg, ready, stop, &out) }()
	var addr string
	select {
	case a := <-ready:
		addr = a.server
	case err := <-serveErr:
		t.Fatal(err)
	case <-time.After(10 * time.Second):
		t.Fatal("server did not come up")
	}

	schema := mustSchema(t, "Source", "Destination")
	cl, err := implicate.Dial(addr, schema, implicate.ClientOptions{BusyRetries: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	shadow := implicate.NewEngine(schema)
	shadowStmt, err := shadow.RegisterSQL(cfg.queries[0], implicate.ExactBackend())
	if err != nil {
		t.Fatal(err)
	}
	batch := make([]stream.Tuple, 1000)
	for off := 0; off < total; off += len(batch) {
		for i := range batch {
			n := off + i
			batch[i] = stream.Tuple{fmt.Sprintf("s%d", n%4000), fmt.Sprintf("d%d", (n%4000)%9)}
		}
		if err := cl.IngestBatch(batch); err != nil {
			t.Fatal(err)
		}
		shadow.ProcessBatch(batch)
	}

	// Poll until the worker has applied everything, then check the answer.
	deadline := time.Now().Add(30 * time.Second)
	var res implicate.QueryResult
	for {
		res, err = cl.Query(0)
		if err != nil {
			t.Fatal(err)
		}
		if res.Tuples == total {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server stuck at %d of %d tuples", res.Tuples, total)
		}
		time.Sleep(time.Millisecond)
	}
	if want := shadowStmt.Count(); res.Count != want {
		t.Fatalf("served count %v, want %v", res.Count, want)
	}
	sn, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if sn.TuplesIngested != total || sn.Batches != total/1000 {
		t.Fatalf("stats %+v", sn)
	}

	// Graceful shutdown must write the final checkpoint and print the
	// summary.
	close(stop)
	select {
	case err := <-serveErr:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("server did not shut down")
	}
	snap, err := implicate.ReadCheckpoint(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Offset != total {
		t.Fatalf("shutdown checkpoint offset %d, want %d", snap.Offset, total)
	}
	if !strings.Contains(out.String(), fmt.Sprintf("tuples=%d", total)) {
		t.Fatalf("summary missing tuple count:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "stmt 0:") {
		t.Fatalf("summary missing statement report:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "pool: 4 workers") {
		t.Fatalf("summary missing pool report:\n%s", out.String())
	}

	// The checkpoint restores into a working engine with the same answer.
	restored, err := implicate.RestoreCheckpoint(snap, schema,
		func(q implicate.Query, kind string) (implicate.Backend, error) { return implicate.ExactBackend(), nil })
	if err != nil {
		t.Fatal(err)
	}
	if got := restored.Statements()[0].Count(); got != shadowStmt.Count() {
		t.Fatalf("restored count %v, want %v", got, shadowStmt.Count())
	}
}
