// Benchmarks regenerating the paper's tables and figures (one benchmark per
// table/figure; see DESIGN.md's per-experiment index) plus per-tuple
// processing-cost benchmarks for every algorithm. The figure benchmarks run
// reduced configurations sized for a laptop; cmd/impbench -paper runs the
// full-scale versions.
package implicate_test

import (
	"fmt"
	"io"
	"testing"

	"implicate"
	"implicate/internal/exact"
	"implicate/internal/experiments"
	"implicate/internal/gen"
	"implicate/internal/imps"
	"implicate/internal/stream"
)

func benchConditions() implicate.Conditions {
	return implicate.Conditions{MaxMultiplicity: 2, MinSupport: 5, TopC: 1, MinTopConfidence: 0.6}
}

// benchDatasetOne runs the Figures 4–6 sweep at a reduced configuration and
// reports the mean relative errors as benchmark metrics.
func benchDatasetOne(b *testing.B, figure string, c int) {
	cfg := experiments.DatasetOneConfig{
		C:     c,
		Cards: []int{1000},
		Fracs: []float64{0.1, 0.5, 0.9},
		Runs:  3,
		Seed:  1,
	}
	b.ReportAllocs()
	var rows []experiments.DatasetOneRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.RunDatasetOne(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	var bounded, unbounded float64
	for _, r := range rows {
		bounded += r.BoundedErr
		unbounded += r.UnboundedErr
	}
	b.ReportMetric(bounded/float64(len(rows)), "bounded-relerr")
	b.ReportMetric(unbounded/float64(len(rows)), "unbounded-relerr")
	if b.N == 1 {
		experiments.PrintDatasetOne(io.Discard, figure, c, rows)
	}
}

func BenchmarkFig4DatasetOne(b *testing.B) { benchDatasetOne(b, "Figure 4", 1) }
func BenchmarkFig5DatasetOne(b *testing.B) { benchDatasetOne(b, "Figure 5", 2) }
func BenchmarkFig6DatasetOne(b *testing.B) { benchDatasetOne(b, "Figure 6", 4) }

// benchFig7 runs one Figure 7 panel at a reduced stream length and reports
// the final-checkpoint errors of the three algorithms as metrics.
func benchFig7(b *testing.B, wl experiments.Workload, tau int64) {
	cfg := experiments.OLAPConfig{
		Workload:    wl,
		Tau:         tau,
		Psis:        []float64{0.6},
		Checkpoints: []int64{134576, 403726},
		Seed:        1,
	}
	var rows []experiments.OLAPRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.RunOLAP(cfg)
		if err != nil {
			b.Fatal(err)
		}
	}
	last := rows[len(rows)-1]
	b.ReportMetric(last.NIPSErr, "nips-relerr")
	b.ReportMetric(last.DSErr, "ds-relerr")
	b.ReportMetric(last.ILCErr, "ilc-relerr")
	b.ReportMetric(float64(last.NIPSMem), "nips-mem")
}

func BenchmarkFig7WorkloadA_Tau5(b *testing.B)  { benchFig7(b, experiments.WorkloadA, 5) }
func BenchmarkFig7WorkloadA_Tau50(b *testing.B) { benchFig7(b, experiments.WorkloadA, 50) }
func BenchmarkFig7WorkloadB_Tau5(b *testing.B)  { benchFig7(b, experiments.WorkloadB, 5) }
func BenchmarkFig7WorkloadB_Tau50(b *testing.B) { benchFig7(b, experiments.WorkloadB, 50) }

// BenchmarkTable4Counts regenerates the Table 4 ground-truth counts at a
// reduced checkpoint list.
func BenchmarkTable4Counts(b *testing.B) {
	var rows []experiments.Table4Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.RunTable4([]int64{134576, 403726}, 1)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(rows[len(rows)-1].WorkloadA, "workloadA-count")
	b.ReportMetric(rows[len(rows)-1].WorkloadB, "workloadB-count")
}

// BenchmarkTable5Budget verifies and reports the Table 5 memory budget.
func BenchmarkTable5Budget(b *testing.B) {
	var t5 experiments.Table5
	for i := 0; i < b.N; i++ {
		t5 = experiments.DefaultTable5()
	}
	b.ReportMetric(float64(t5.NIPSItemsets), "nips-itemset-budget")
	b.ReportMetric(float64(t5.DSSampleSize), "ds-sample-size")
}

// Ablation benchmarks for the design choices DESIGN.md calls out.

func BenchmarkAblationFringe(b *testing.B) {
	cfg := experiments.AblationConfig{CardA: 1000, Frac: 0.5, C: 1, Runs: 2, Seed: 1}
	var rows []experiments.FringeRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.RunFringeAblation(cfg, []int{2, 4, 8, 0})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		name := fmt.Sprintf("relerr-F%d", r.FringeSize)
		if r.FringeSize == 0 {
			name = "relerr-unbounded"
		}
		b.ReportMetric(r.Err, name)
	}
}

func BenchmarkAblationBitmaps(b *testing.B) {
	cfg := experiments.AblationConfig{CardA: 1000, Frac: 0.5, C: 1, Runs: 2, Seed: 2}
	var rows []experiments.BitmapRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.RunBitmapAblation(cfg, []int{16, 64, 256})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.Err, fmt.Sprintf("relerr-m%d", r.Bitmaps))
	}
}

func BenchmarkAblationSlack(b *testing.B) {
	cfg := experiments.AblationConfig{CardA: 1000, Frac: 0.5, C: 1, Runs: 2, Seed: 3}
	var rows []experiments.SlackRow
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.RunSlackAblation(cfg, []int{1, 2, 4})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.Err, fmt.Sprintf("relerr-slack%d", r.Slack))
	}
}

func BenchmarkAblationLemma2(b *testing.B) {
	cfg := experiments.AblationConfig{CardA: 2000, Frac: 0.5, C: 1, Runs: 2, Seed: 4}
	var rows []experiments.Lemma2Row
	for i := 0; i < b.N; i++ {
		var err error
		rows, err = experiments.RunLemma2(cfg, []float64{0.25, 0.03125}, []int{2, 4, 8})
		if err != nil {
			b.Fatal(err)
		}
	}
	for _, r := range rows {
		b.ReportMetric(r.NonImpErr, fmt.Sprintf("nonimp-relerr-q%.3f-F%d", r.Q, r.FringeF))
	}
}

// Per-tuple processing cost (§4.6 claims O(K·log K) time per item for NIPS
// and compares the competitors' costs).

func benchAddPairs(b *testing.B, est imps.Estimator) {
	d := gen.MustDatasetOne(gen.DatasetOneConfig{CardA: 2000, Count: 1000, C: 2, Seed: 9})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := d.Pairs[i%len(d.Pairs)]
		est.Add(gen.Key(p.A), gen.Key(p.B))
	}
}

func BenchmarkAddNIPS(b *testing.B) {
	sk, _ := implicate.NewSketch(benchConditions(), implicate.Options{Seed: 1})
	benchAddPairs(b, sk)
}

func BenchmarkAddNIPSUnbounded(b *testing.B) {
	sk, _ := implicate.NewSketch(benchConditions(), implicate.Options{Seed: 1, Unbounded: true})
	benchAddPairs(b, sk)
}

func BenchmarkAddExact(b *testing.B) {
	benchAddPairs(b, exact.MustCounter(benchConditions()))
}

func BenchmarkAddILC(b *testing.B) {
	ilc, _ := implicate.NewILC(benchConditions(), 0.01, 0.01)
	benchAddPairs(b, ilc)
}

func BenchmarkAddDistinctSampling(b *testing.B) {
	ds, _ := implicate.NewDistinctSampling(benchConditions(), 1920, 39, 1)
	benchAddPairs(b, ds)
}

// BenchmarkAddNIPSHashedFastPath measures the allocation-free integer-keyed
// ingest path used by the synthetic harness.
func BenchmarkAddNIPSHashedFastPath(b *testing.B) {
	sk, _ := implicate.NewSketch(benchConditions(), implicate.Options{Seed: 1})
	d := gen.MustDatasetOne(gen.DatasetOneConfig{CardA: 2000, Count: 1000, C: 2, Seed: 9})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := d.Pairs[i%len(d.Pairs)]
		sk.AddIDs(p.A, p.B)
	}
}

// Parallel ingestion: the single global lock versus the sharded sketch at
// several shard counts (and the serial sketch as the no-synchronization
// floor). Speedups need real cores; on a single-core runner the sharded
// variants measure pure synchronization overhead instead.

func benchPairs() []implicate.Pair {
	d := gen.MustDatasetOne(gen.DatasetOneConfig{CardA: 20000, Count: 10000, C: 2, Seed: 9})
	pairs := make([]implicate.Pair, len(d.Pairs))
	for i, p := range d.Pairs {
		pairs[i] = implicate.Pair{A: gen.Key(p.A), B: gen.Key(p.B)}
	}
	return pairs
}

func reportTuplesPerSec(b *testing.B, tuples int64) {
	if s := b.Elapsed().Seconds(); s > 0 {
		b.ReportMetric(float64(tuples)/s, "tuples/s")
	}
}

func BenchmarkParallelIngest(b *testing.B) {
	pairs := benchPairs()
	cond := benchConditions()

	b.Run("serial", func(b *testing.B) {
		sk, _ := implicate.NewSketch(cond, implicate.Options{Seed: 1})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			p := pairs[i%len(pairs)]
			sk.Add(p.A, p.B)
		}
		reportTuplesPerSec(b, int64(b.N))
	})
	b.Run("mutex", func(b *testing.B) {
		sk, _ := implicate.NewSketch(cond, implicate.Options{Seed: 1})
		sync := implicate.Synchronized(sk)
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			i := 0
			for pb.Next() {
				p := pairs[i%len(pairs)]
				sync.Add(p.A, p.B)
				i++
			}
		})
		reportTuplesPerSec(b, int64(b.N))
	})
	for _, n := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("sharded-%d", n), func(b *testing.B) {
			ss, err := implicate.NewShardedSketch(cond, implicate.Options{Seed: 1}, n)
			if err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				i := 0
				for pb.Next() {
					p := pairs[i%len(pairs)]
					ss.Add(p.A, p.B)
					i++
				}
			})
			reportTuplesPerSec(b, int64(b.N))
		})
	}
}

// BenchmarkAddBatch measures the batched ingest paths; one iteration is one
// 256-tuple batch.
func BenchmarkAddBatch(b *testing.B) {
	pairs := benchPairs()
	cond := benchConditions()
	const batch = 256

	nextBatch := func(i int) []implicate.Pair {
		off := (i * batch) % (len(pairs) - batch)
		return pairs[off : off+batch]
	}
	b.Run("sketch", func(b *testing.B) {
		sk, _ := implicate.NewSketch(cond, implicate.Options{Seed: 1})
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sk.AddBatch(nextBatch(i))
		}
		reportTuplesPerSec(b, int64(b.N)*batch)
	})
	b.Run("sketch-prehashed", func(b *testing.B) {
		sk, _ := implicate.NewSketch(cond, implicate.Options{Seed: 1})
		hashed := make([]implicate.HashedPair, len(pairs))
		for i, p := range pairs {
			hashed[i] = sk.HashPair(p.A, p.B)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			off := (i * batch) % (len(hashed) - batch)
			sk.AddHashedBatch(hashed[off : off+batch])
		}
		reportTuplesPerSec(b, int64(b.N)*batch)
	})
	b.Run("mutex", func(b *testing.B) {
		sk, _ := implicate.NewSketch(cond, implicate.Options{Seed: 1})
		sync := implicate.Synchronized(sk)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sync.AddBatch(nextBatch(i))
		}
		reportTuplesPerSec(b, int64(b.N)*batch)
	})
	for _, n := range []int{1, 4} {
		b.Run(fmt.Sprintf("sharded-%d", n), func(b *testing.B) {
			ss, err := implicate.NewShardedSketch(cond, implicate.Options{Seed: 1}, n)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				ss.AddBatch(nextBatch(i))
			}
			reportTuplesPerSec(b, int64(b.N)*batch)
		})
	}
}

// BenchmarkEstimateRead measures the cost of reading the implication count
// off a loaded sketch (Algorithm CI runs per query, not per tuple).
func BenchmarkEstimateRead(b *testing.B) {
	sk, _ := implicate.NewSketch(benchConditions(), implicate.Options{Seed: 1})
	d := gen.MustDatasetOne(gen.DatasetOneConfig{CardA: 5000, Count: 2500, C: 2, Seed: 9})
	d.Feed(sk)
	b.ResetTimer()
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += sk.ImplicationCount()
	}
	_ = sink
}

// BenchmarkMerge measures folding one loaded sketch into another. The two
// inputs are restored from serialized checkpoints per iteration (Merge
// consumes its argument), which keeps the untimed setup in the same order
// of magnitude as the merge itself.
func BenchmarkMerge(b *testing.B) {
	cond := benchConditions()
	d := gen.MustDatasetOne(gen.DatasetOneConfig{CardA: 5000, Count: 2500, C: 2, Seed: 3})
	left0, _ := implicate.NewSketch(cond, implicate.Options{Seed: 9})
	right0, _ := implicate.NewSketch(cond, implicate.Options{Seed: 9})
	for n, p := range d.Pairs {
		if n%2 == 0 {
			left0.AddIDs(p.A, p.B)
		} else {
			right0.AddIDs(p.A, p.B)
		}
	}
	leftBlob, err := left0.MarshalBinary()
	if err != nil {
		b.Fatal(err)
	}
	rightBlob, err := right0.MarshalBinary()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		left, err := implicate.UnmarshalSketch(leftBlob)
		if err != nil {
			b.Fatal(err)
		}
		right, err := implicate.UnmarshalSketch(rightBlob)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		if err := left.Merge(right); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMarshal measures checkpoint serialization of a loaded sketch.
func BenchmarkMarshal(b *testing.B) {
	sk, _ := implicate.NewSketch(benchConditions(), implicate.Options{Seed: 2})
	d := gen.MustDatasetOne(gen.DatasetOneConfig{CardA: 5000, Count: 2500, C: 2, Seed: 3})
	d.Feed(sk)
	b.ReportAllocs()
	b.ResetTimer()
	var size int
	for i := 0; i < b.N; i++ {
		data, err := sk.MarshalBinary()
		if err != nil {
			b.Fatal(err)
		}
		size = len(data)
	}
	b.ReportMetric(float64(size), "bytes")
}

// BenchmarkUnmarshal measures checkpoint restore.
func BenchmarkUnmarshal(b *testing.B) {
	sk, _ := implicate.NewSketch(benchConditions(), implicate.Options{Seed: 2})
	d := gen.MustDatasetOne(gen.DatasetOneConfig{CardA: 5000, Count: 2500, C: 2, Seed: 3})
	d.Feed(sk)
	data, err := sk.MarshalBinary()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := implicate.UnmarshalSketch(data); err != nil {
			b.Fatal(err)
		}
	}
}

// Codec throughput: text vs binary stream files.
func benchCodecWrite(b *testing.B, mk func(w io.Writer, s *stream.Schema) interface {
	Write(stream.Tuple) error
	Flush() error
}) {
	g := gen.NewNetTraffic(gen.NetTrafficConfig{Seed: 1})
	schema := gen.NetTrafficSchema()
	tuples := make([]stream.Tuple, 1000)
	for i := range tuples {
		t, _ := g.Next()
		tuples[i] = append(stream.Tuple(nil), t...)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		w := mk(io.Discard, schema)
		for _, t := range tuples {
			if err := w.Write(t); err != nil {
				b.Fatal(err)
			}
		}
		if err := w.Flush(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCodecTextWrite(b *testing.B) {
	benchCodecWrite(b, func(w io.Writer, s *stream.Schema) interface {
		Write(stream.Tuple) error
		Flush() error
	} {
		return stream.NewWriter(w, s)
	})
}

func BenchmarkCodecBinaryWrite(b *testing.B) {
	benchCodecWrite(b, func(w io.Writer, s *stream.Schema) interface {
		Write(stream.Tuple) error
		Flush() error
	} {
		return stream.NewBinaryWriter(w, s)
	})
}

// BenchmarkEngineProcess measures the full query-engine path per tuple with
// four statements sharing one estimator.
func BenchmarkEngineProcess(b *testing.B) {
	eng := implicate.NewEngine(gen.NetTrafficSchema())
	backend := implicate.SketchBackend(implicate.Options{Seed: 5})
	for _, sql := range []string{
		`SELECT COUNT(DISTINCT Source) FROM t WHERE Source IMPLIES Destination WITH SUPPORT >= 5, MULTIPLICITY <= 3, CONFIDENCE >= 0.8 TOP 1`,
		`SELECT COUNT(DISTINCT Source) FROM t WHERE Source NOT IMPLIES Destination WITH SUPPORT >= 5, MULTIPLICITY <= 3, CONFIDENCE >= 0.8 TOP 1`,
		`SELECT AVG(MULTIPLICITY(Source)) FROM t WHERE Source IMPLIES Destination WITH SUPPORT >= 5, MULTIPLICITY <= 3, CONFIDENCE >= 0.8 TOP 1`,
	} {
		if _, err := eng.RegisterSQL(sql, backend); err != nil {
			b.Fatal(err)
		}
	}
	g := gen.NewNetTraffic(gen.NetTrafficConfig{Seed: 7})
	tuples := make([]stream.Tuple, 1000)
	for i := range tuples {
		t, _ := g.Next()
		tuples[i] = append(stream.Tuple(nil), t...)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Process(tuples[i%len(tuples)])
	}
}
