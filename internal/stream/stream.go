// Package stream models the data-stream relation of §3: a schema of named
// attributes, tuples over that schema, compiled projections onto attribute
// subsets (the itemsets of §3.1), and sources/sinks for feeding tuples to
// the estimators with constant per-tuple work.
package stream

import (
	"errors"
	"fmt"
	"io"
	"strings"
)

// KeySep separates attribute values inside an encoded itemset key. It is the
// ASCII unit separator, which the codec forbids inside values.
const KeySep = '\x1f'

// Schema describes the ordered attributes of a stream relation.
type Schema struct {
	names []string
	index map[string]int
}

// NewSchema builds a schema from attribute names. Names must be non-empty
// and unique.
func NewSchema(names ...string) (*Schema, error) {
	if len(names) == 0 {
		return nil, errors.New("stream: schema needs at least one attribute")
	}
	s := &Schema{names: append([]string(nil), names...), index: make(map[string]int, len(names))}
	for i, n := range names {
		if n == "" {
			return nil, fmt.Errorf("stream: attribute %d has an empty name", i)
		}
		if _, dup := s.index[n]; dup {
			return nil, fmt.Errorf("stream: duplicate attribute %q", n)
		}
		s.index[n] = i
	}
	return s, nil
}

// MustSchema is NewSchema for statically known attribute lists; it panics on
// error.
func MustSchema(names ...string) *Schema {
	s, err := NewSchema(names...)
	if err != nil {
		panic(err)
	}
	return s
}

// Len returns the number of attributes.
func (s *Schema) Len() int { return len(s.names) }

// Names returns a copy of the attribute names in schema order.
func (s *Schema) Names() []string { return append([]string(nil), s.names...) }

// Index returns the position of the named attribute.
func (s *Schema) Index(name string) (int, bool) {
	i, ok := s.index[name]
	return i, ok
}

// Tuple is one stream record; values are positional with respect to the
// schema it was read under.
type Tuple []string

// Proj is a compiled projection of a tuple onto a subset of attributes — the
// itemset operator π_A(t) of §3.1. Compiling once keeps the per-tuple cost
// at a few index loads.
type Proj struct {
	idx   []int
	attrs []string
}

// Proj compiles a projection onto the named attributes, in the given order.
func (s *Schema) Proj(attrs ...string) (Proj, error) {
	if len(attrs) == 0 {
		return Proj{}, errors.New("stream: projection needs at least one attribute")
	}
	idx := make([]int, len(attrs))
	for i, a := range attrs {
		j, ok := s.index[a]
		if !ok {
			return Proj{}, fmt.Errorf("stream: unknown attribute %q", a)
		}
		idx[i] = j
	}
	return Proj{idx: idx, attrs: append([]string(nil), attrs...)}, nil
}

// MustProj is Proj for statically known attribute lists; it panics on error.
func (s *Schema) MustProj(attrs ...string) Proj {
	p, err := s.Proj(attrs...)
	if err != nil {
		panic(err)
	}
	return p
}

// Attrs returns the attribute names the projection covers.
func (p Proj) Attrs() []string { return append([]string(nil), p.attrs...) }

// Arity returns the number of projected attributes.
func (p Proj) Arity() int { return len(p.idx) }

// Single reports the tuple index of a one-attribute projection. Such a
// projection's key is the attribute value itself (no separator, no
// assembly), which lets hot planning loops use the tuple's string without
// copying.
func (p Proj) Single() (int, bool) {
	if len(p.idx) == 1 {
		return p.idx[0], true
	}
	return -1, false
}

// Key encodes the projection of t as an itemset key. Keys of equal itemsets
// compare equal; distinct itemsets yield distinct keys because values may
// not contain the separator.
func (p Proj) Key(t Tuple) string {
	if len(p.idx) == 1 {
		return t[p.idx[0]]
	}
	n := len(p.idx) - 1
	for _, i := range p.idx {
		n += len(t[i])
	}
	var b strings.Builder
	b.Grow(n)
	for k, i := range p.idx {
		if k > 0 {
			b.WriteByte(KeySep)
		}
		b.WriteString(t[i])
	}
	return b.String()
}

// AppendKey appends the encoded itemset to dst and returns the extended
// slice; it lets hot loops reuse one buffer across tuples.
func (p Proj) AppendKey(dst []byte, t Tuple) []byte {
	for k, i := range p.idx {
		if k > 0 {
			dst = append(dst, KeySep)
		}
		dst = append(dst, t[i]...)
	}
	return dst
}

// Values returns the projected attribute values.
func (p Proj) Values(t Tuple) []string {
	out := make([]string, len(p.idx))
	for k, i := range p.idx {
		out[k] = t[i]
	}
	return out
}

// SplitKey decodes an itemset key produced by Key back into its values.
func SplitKey(key string) []string {
	return strings.Split(key, string(rune(KeySep)))
}

// JoinKey encodes attribute values into an itemset key, the inverse of
// SplitKey.
func JoinKey(values ...string) string {
	return strings.Join(values, string(rune(KeySep)))
}

// Source yields tuples until io.EOF.
type Source interface {
	// Next returns the next tuple. It returns io.EOF after the last tuple.
	// The returned tuple is only valid until the following call.
	Next() (Tuple, error)
}

// Sink consumes tuples.
type Sink interface {
	Write(Tuple) error
}

// MemSource replays an in-memory tuple slice.
type MemSource struct {
	tuples []Tuple
	pos    int
}

// NewMemSource returns a Source over the given tuples.
func NewMemSource(tuples []Tuple) *MemSource { return &MemSource{tuples: tuples} }

// Next implements Source.
func (m *MemSource) Next() (Tuple, error) {
	if m.pos >= len(m.tuples) {
		return nil, io.EOF
	}
	t := m.tuples[m.pos]
	m.pos++
	return t, nil
}

// Reset rewinds the source to the first tuple.
func (m *MemSource) Reset() { m.pos = 0 }

// MemSink collects tuples in memory.
type MemSink struct {
	Tuples []Tuple
}

// Write implements Sink.
func (m *MemSink) Write(t Tuple) error {
	m.Tuples = append(m.Tuples, append(Tuple(nil), t...))
	return nil
}

// Each drains src, calling fn for every tuple, and returns the number of
// tuples seen. It stops early if fn returns an error.
func Each(src Source, fn func(Tuple) error) (int64, error) {
	var n int64
	for {
		t, err := src.Next()
		if err == io.EOF {
			return n, nil
		}
		if err != nil {
			return n, err
		}
		n++
		if err := fn(t); err != nil {
			return n, err
		}
	}
}
