// Olapsynopsis runs the §2 "multi-dimensional histograms" pre-pass: before
// building a synopsis for a multi-dimensional dataset, estimate which
// attribute pairs carry significant dependency structure so the model part
// of the synopsis captures them and the independence assumption is only
// applied where it is safe.
//
// One NIPS/CI sketch per ordered attribute pair maintains the implication
// count X → Y in a single pass. Raw implication ratios reward skew as well
// as dependence (any value trivially "implies" a low-cardinality target),
// so each pair also runs a control sketch fed with the PREVIOUS tuple's
// Y-value: the control preserves both marginals but breaks the
// within-tuple association, giving an independence baseline. The
// dependence score is the excess of the real ratio over the control's.
package main

import (
	"fmt"
	"log"
	"sort"

	"implicate"
	"implicate/internal/gen"
)

func main() {
	const tuples = 400_000

	dims := []string{"A", "B", "C", "D", "E", "F", "G", "H"}
	cond := implicate.Conditions{
		MaxMultiplicity:  2,   // a value may map to at most two partners...
		MinSupport:       25,  // ...once it has been seen enough...
		TopC:             1,   // ...with one partner dominating...
		MinTopConfidence: 0.6, // ...at least 60% of the time.
	}

	type probe struct {
		x, y    int
		sketch  *implicate.Sketch
		control *implicate.Sketch
	}
	var probes []*probe
	var seed uint64
	newSketch := func() *implicate.Sketch {
		seed++
		sk, err := implicate.NewSketch(cond, implicate.Options{Seed: seed})
		if err != nil {
			log.Fatal(err)
		}
		return sk
	}
	for x := range dims {
		for y := range dims {
			if x == y {
				continue
			}
			probes = append(probes, &probe{x: x, y: y, sketch: newSketch(), control: newSketch()})
		}
	}

	g := gen.NewOLAP(gen.OLAPConfig{Seed: 5})
	prev := g.NextIDs()
	for g.Tuples() < tuples {
		ids := g.NextIDs()
		for _, p := range probes {
			p.sketch.Add(gen.SingleKey(ids[p.x]), gen.SingleKey(ids[p.y]))
			p.control.Add(gen.SingleKey(ids[p.x]), gen.SingleKey(prev[p.y]))
		}
		prev = ids
	}

	ratio := func(s *implicate.Sketch) float64 {
		sup := s.SupportedDistinct()
		if sup <= 0 {
			return 0
		}
		return s.ImplicationCount() / sup
	}
	type scored struct {
		name                string
		excess, real, null  float64
		implications, f0sup float64
	}
	var results []scored
	for _, p := range probes {
		real, null := ratio(p.sketch), ratio(p.control)
		results = append(results, scored{
			name:         dims[p.x] + "->" + dims[p.y],
			excess:       real - null,
			real:         real,
			null:         null,
			implications: p.sketch.ImplicationCount(),
			f0sup:        p.sketch.SupportedDistinct(),
		})
	}
	sort.Slice(results, func(i, j int) bool { return results[i].excess > results[j].excess })

	fmt.Printf("olapsynopsis: dependence scores after %d tuples (%s)\n", tuples, cond)
	fmt.Println("  pair    excess    real    null   implications  supported")
	const cutoff = 0.005
	shown := 0
	for _, r := range results {
		if r.excess < cutoff {
			break
		}
		fmt.Printf("  %-6s  %6.3f  %6.3f  %6.3f  %12.0f  %9.0f\n",
			r.name, r.excess, r.real, r.null, r.implications, r.f0sup)
		shown++
	}
	fmt.Printf("  ... %d more pairs at or below the independence baseline\n", len(results)-shown)
	fmt.Println("\npairs with positive excess should enter the synopsis' dependency model;")
	fmt.Println("the rest can safely use low-dimensional independent histograms.")
}
