// Command impserved serves implication queries over TCP: remote producers
// ingest tuple batches, anyone can read the registered statements' counts,
// and downstream aggregators can merge leaf sketches shipped over the wire
// (the §2 aggregation tree as a real network service).
//
// Usage:
//
//	impserved -addr :7171 -schema Source,Destination \
//	    -q "SELECT COUNT(DISTINCT Source) FROM t WHERE Source IMPLIES Destination"
//	impserved -addr :7171 -schema Source,Destination -q "..." \
//	    -checkpoint node.ckpt -every 100000
//	impserved -addr :7171 -schema Source,Destination -resume node.ckpt
//	impserved -addr :7171 -schema Source,Destination -q "..." \
//	    -tenants acme:3,globex -token-key SECRET -ckpt-dir /var/lib/imps
//
// With -tenants, each named tenant gets its own engine, statement
// registry and checkpoint lineage (<dir>/<tenant>.ckpt under -ckpt-dir),
// and ingest is drained fair-share by weight. Sessions pin to a tenant by
// presenting its connect token (printed at startup when -token-key is
// set); unauthenticated sessions serve the implicit default tenant, so
// existing producers keep working unchanged. The admin endpoint can
// create and drop tenants at runtime (POST /tenants, DELETE
// /tenants/{name}).
//
// The ingest queue is bounded (-queue); when it is full the server refuses
// batches with explicit backpressure replies that well-behaved clients
// (implicate.Dial) retry with backoff. On SIGINT/SIGTERM the server drains
// the queue, writes a final checkpoint when -checkpoint is set, and prints
// a telemetry summary. After a crash, -resume restores the engine from the
// checkpoint; producers replay their streams from the checkpoint offset.
//
// Observability: -admin ADDR serves the read-only HTTP admin endpoint
// (Prometheus /metrics, /healthz, a JSON /trace span dump, and pprof under
// /debug/pprof/) — it is unauthenticated, so bind it to loopback or an
// operations network. -trace-spans N enables the in-process event tracer
// with a ring of N spans; while it is on, SIGQUIT dumps the ring to stderr
// (overriding Go's default die-with-stacks handling of SIGQUIT) and the
// process keeps serving. cmd/imptop renders the same statistics as a live
// terminal dashboard.
package main

import (
	"log"
	"os"
	"os/signal"
	"syscall"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("impserved: ")

	cfg, rest, err := parseFlags(os.Args[1:])
	if err != nil {
		os.Exit(2)
	}
	if len(rest) != 0 {
		log.Fatalf("unexpected arguments %q", rest)
	}
	if err := cfg.validate(); err != nil {
		log.Fatal(err)
	}

	stop := make(chan struct{})
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sigs
		log.Printf("received %v, draining", s)
		close(stop)
	}()

	ready := make(chan addrs, 1)
	go func() {
		a := <-ready
		line := "listening on " + a.server
		if a.udp != "" {
			line += ", udp ingest on " + a.udp
		}
		if a.admin != "" {
			line += ", admin on http://" + a.admin
		}
		log.Print(line)
	}()
	if err := serve(cfg, ready, stop, os.Stdout); err != nil {
		log.Fatal(err)
	}
}
