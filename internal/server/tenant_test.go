// Multi-tenant serving tests: authenticated sessions, quota admission with
// no partial state, per-tenant checkpoint lineage across a crash, the
// noisy-neighbor isolation bound, and the client's redial handshake chain.
package server

import (
	"errors"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"implicate/internal/client"
	"implicate/internal/proto"
	"implicate/internal/stream"
	"implicate/internal/telemetry"
	"implicate/internal/tenant"
)

var testKey = []byte("test-signing-key")

func tenantCfg(name string) tenant.Config {
	return tenant.Config{Name: name, Queries: []string{testSQL}, Backend: "exact"}
}

// multiTenantConfig is a server with the given named tenants plus the
// usual implicit default.
func multiTenantConfig(t *testing.T, tenants ...tenant.Config) Config {
	t.Helper()
	schema := testSchema(t)
	return Config{
		Schema:   schema,
		Engine:   testEngine(t, schema, exactBackend()),
		Workers:  2,
		TokenKey: testKey,
		Tenants:  tenants,
		Backends: tenant.Backends{"exact": exactBackend()},
	}
}

func dialTenant(t *testing.T, s *Server, name string, opt client.Options) *client.Client {
	t.Helper()
	cl, err := client.DialTenant(s.Addr(), testSchema(t), name, tenant.Token(testKey, name), opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl
}

// tenantTuples builds a per-tenant deterministic stream: distinct value
// spaces per tenant so cross-tenant leakage would change counts.
func tenantTuples(name string, n, offset int) []stream.Tuple {
	ts := make([]stream.Tuple, n)
	for i := range ts {
		k := offset + i
		ts[i] = stream.Tuple{fmt.Sprintf("%s-s%d", name, k%13), fmt.Sprintf("%s-d%d", name, k%13%5)}
	}
	return ts
}

// withAddr fills the loopback ephemeral address like startServer does, for
// tests that manage the server lifecycle themselves.
func withAddr(cfg Config) Config {
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	return cfg
}

// marshalTenant marshals a tenant's engine, for bit-identity comparisons
// after the server stopped.
func marshalTenant(t *testing.T, s *Server, name string) []byte {
	t.Helper()
	eng, ok := s.TenantEngine(name)
	if !ok {
		t.Fatalf("tenant %s missing", name)
	}
	blob, err := eng.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	return blob
}

// TestTenantAuthAndIsolation pins three sessions to three namespaces and
// checks each engine saw only its own stream — and that a session that
// never authenticates still serves the default tenant, the PR-7 client's
// whole experience of a multi-tenant server.
func TestTenantAuthAndIsolation(t *testing.T) {
	s := startServer(t, multiTenantConfig(t, tenantCfg("acme"), tenantCfg("globex")))

	acme := dialTenant(t, s, "acme", client.Options{Conns: 1})
	globex := dialTenant(t, s, "globex", client.Options{Conns: 1})
	def := dialClient(t, s, testSchema(t), client.Options{Conns: 1}) // no TAuth at all

	if err := acme.IngestBatch(tenantTuples("acme", 130, 0)); err != nil {
		t.Fatal(err)
	}
	if err := globex.IngestBatch(tenantTuples("globex", 70, 0)); err != nil {
		t.Fatal(err)
	}
	if err := def.IngestBatch(tenantTuples("def", 40, 0)); err != nil {
		t.Fatal(err)
	}
	waitTuples(t, acme, 130)
	waitTuples(t, globex, 70)
	waitTuples(t, def, 40)

	// Stats carries per-tenant rows (v4 snapshot) only on multi-tenant
	// servers; the default tenant appears alongside the named ones.
	sn, err := def.Stats()
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]telemetry.TenantStats{}
	for _, ts := range sn.Tenants {
		byName[ts.Name] = ts
	}
	if len(byName) != 3 {
		t.Fatalf("snapshot has tenants %v, want acme, globex, default", byName)
	}
	if byName["acme"].Tuples != 130 || byName["globex"].Tuples != 70 || byName[tenant.DefaultName].Tuples != 40 {
		t.Fatalf("per-tenant tuple counts %v", byName)
	}

	// A bad token and an unknown tenant must both refuse the dial.
	if _, err := client.DialTenant(s.Addr(), testSchema(t), "acme", "wrong", client.Options{Conns: 1}); err == nil {
		t.Fatal("bad token authenticated")
	}
	if _, err := client.DialTenant(s.Addr(), testSchema(t), "ghost", tenant.Token(testKey, "ghost"), client.Options{Conns: 1}); err == nil {
		t.Fatal("unknown tenant authenticated")
	}
}

// TestTenantSecondAuthRefused speaks raw frames: a second TAuth on a
// pinned session is an error, so one connection's pipelined batches can
// never straddle two engines.
func TestTenantSecondAuthRefused(t *testing.T) {
	s := startServer(t, multiTenantConfig(t, tenantCfg("acme"), tenantCfg("globex")))
	nc, err := net.Dial("tcp", s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	auth := func(id uint64, name string) proto.Frame {
		t.Helper()
		err := proto.WriteFrame(nc, proto.Frame{
			Type: proto.TAuth, ID: id,
			Payload: proto.AuthReq{Tenant: name, Token: tenant.Token(testKey, name)}.Encode(),
		})
		if err != nil {
			t.Fatal(err)
		}
		f, err := proto.ReadFrame(nc)
		if err != nil {
			t.Fatal(err)
		}
		return f
	}
	if f := auth(1, "acme"); f.Type != proto.TOK {
		t.Fatalf("first auth replied %s", f.Type)
	}
	f := auth(2, "globex")
	if f.Type != proto.TError {
		t.Fatalf("second auth replied %s, want error", f.Type)
	}
	msg, err := proto.DecodeError(f.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(msg, "already pinned") {
		t.Fatalf("second auth error %q", msg)
	}
}

// TestTenantQuotaRefusalNoPartialState drives a tenant into its ingest
// rate quota and checks the refusal reached the client as ErrQuota — and
// that the refused batch left the engine byte-identical to a server that
// never saw it.
func TestTenantQuotaRefusalNoPartialState(t *testing.T) {
	limited := tenantCfg("acme")
	limited.Rate = 1 // refills far too slowly for a second 100-tuple batch
	limited.Burst = 100

	run := func(overflow bool) []byte {
		s, err := Listen(withAddr(multiTenantConfig(t, limited)))
		if err != nil {
			t.Fatal(err)
		}
		cl := dialTenant(t, s, "acme", client.Options{Conns: 1})
		if err := cl.IngestBatch(tenantTuples("acme", 100, 0)); err != nil {
			t.Fatal(err)
		}
		waitTuples(t, cl, 100)
		if overflow {
			err := cl.IngestBatch(tenantTuples("acme", 100, 100))
			if !errors.Is(err, client.ErrQuota) {
				t.Fatalf("over-quota ingest returned %v, want ErrQuota", err)
			}
			var q *client.QuotaRefusal
			if !errors.As(err, &q) || q.RetryAfter <= 0 {
				t.Fatalf("rate refusal %v carries no retry hint", err)
			}
			// The refusal is pre-plan, pre-enqueue: the applied count holds.
			if res := waitTuples(t, cl, 100); res.Tuples != 100 {
				t.Fatalf("refused batch advanced the engine to %d", res.Tuples)
			}
		}
		cl.Close()
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		return marshalTenant(t, s, "acme")
	}

	clean := run(false)
	refused := run(true)
	if string(clean) != string(refused) {
		t.Fatal("quota-refused batch left partial engine state")
	}
}

// TestTenantCheckpointKillRecover crashes a two-tenant server mid-stream,
// restarts it from <dir>/<tenant>.ckpt, replays each tenant's suffix from
// its checkpoint offset, and checks both engines end bit-identical to
// dedicated servers that never crashed.
func TestTenantCheckpointKillRecover(t *testing.T) {
	dir := t.TempDir()
	const batch, total = 50, 500
	batchesFor := func(name string) [][]stream.Tuple {
		var bs [][]stream.Tuple
		for off := 0; off < total; off += batch {
			bs = append(bs, tenantTuples(name, batch, off))
		}
		return bs
	}

	cfg := multiTenantConfig(t, tenantCfg("acme"), tenantCfg("globex"))
	cfg.CheckpointDir = dir
	cfg.CheckpointEvery = 120
	s, err := Listen(withAddr(cfg))
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"acme", "globex"} {
		cl := dialTenant(t, s, name, client.Options{Conns: 1})
		for _, b := range batchesFor(name) {
			if err := cl.IngestBatch(b); err != nil {
				t.Fatal(err)
			}
		}
		waitTuples(t, cl, total)
		cl.Close()
	}
	s.Kill() // no final checkpoint: only the periodic lineage survives

	re, err := Listen(withAddr(cfg))
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"acme", "globex"} {
		cl := dialTenant(t, re, name, client.Options{Conns: 1})
		res, err := cl.Query(0)
		if err != nil {
			t.Fatal(err)
		}
		off := int(res.Tuples)
		if off == 0 || off >= total || off%batch != 0 {
			t.Fatalf("tenant %s resumed at offset %d, want a mid-stream batch boundary", name, off)
		}
		// Replay the suffix from the checkpoint offset — the producer's
		// recovery contract, per tenant.
		for _, b := range batchesFor(name)[off/batch:] {
			if err := cl.IngestBatch(b); err != nil {
				t.Fatal(err)
			}
		}
		waitTuples(t, cl, total)
		cl.Close()
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}

	// Dedicated single-tenant comparison runs: same stream, no crash, a
	// fresh checkpoint lineage, one tenant each.
	for _, name := range []string{"acme", "globex"} {
		solo, err := Listen(withAddr(multiTenantConfig(t, tenantCfg(name))))
		if err != nil {
			t.Fatal(err)
		}
		cl := dialTenant(t, solo, name, client.Options{Conns: 1})
		for _, b := range batchesFor(name) {
			if err := cl.IngestBatch(b); err != nil {
				t.Fatal(err)
			}
		}
		waitTuples(t, cl, total)
		cl.Close()
		if err := solo.Close(); err != nil {
			t.Fatal(err)
		}
		if want, got := marshalTenant(t, solo, name), marshalTenant(t, re, name); string(want) != string(got) {
			t.Fatalf("tenant %s state after kill-and-recover differs from a dedicated run", name)
		}
	}
}

// TestTenantNoisyNeighbor is the isolation acceptance bound: with tenant
// acme pinned at its quota (every batch refused at admission), tenant
// globex's throughput stays within 80% of its solo baseline and its
// engine ends bit-identical to a dedicated server fed the same stream.
func TestTenantNoisyNeighbor(t *testing.T) {
	noisy := tenantCfg("acme")
	noisy.Rate = 1    // one tuple per second: effectively everything refuses
	noisy.Burst = 1   // no opening burst window
	noisy.Weight = 10 // even a 10× dispatch weight must not help a refused tenant

	const batches, perBatch = 120, 256
	victim := func(s *Server) time.Duration {
		cl := dialTenant(t, s, "globex", client.Options{Conns: 1})
		defer cl.Close()
		start := time.Now()
		for i := 0; i < batches; i++ {
			if err := cl.IngestBatch(tenantTuples("globex", perBatch, i*perBatch)); err != nil {
				t.Fatal(err)
			}
		}
		waitTuples(t, cl, batches*perBatch)
		return time.Since(start)
	}

	// Solo baseline, measured in-process immediately before the shared run
	// so both see the same machine.
	soloSrv, err := Listen(withAddr(multiTenantConfig(t, tenantCfg("globex"))))
	if err != nil {
		t.Fatal(err)
	}
	soloTime := victim(soloSrv)
	if err := soloSrv.Close(); err != nil {
		t.Fatal(err)
	}

	shared, err := Listen(withAddr(multiTenantConfig(t, noisy, tenantCfg("globex"))))
	if err != nil {
		t.Fatal(err)
	}
	flood := dialTenant(t, shared, "acme", client.Options{Conns: 1})
	payload, err := client.EncodeBatch(testSchema(t), tenantTuples("acme", perBatch, 0))
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	floodDone := make(chan struct{})
	go func() {
		defer close(floodDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			// Saturating the quota: every send must come back TQuota. The
			// pacing still offers ~256k tuples/s against a 1 tuple/s quota
			// while modeling a producer that does not spin the CPU it was
			// just refused on.
			if err := flood.IngestEncoded(payload, perBatch); err == nil {
				t.Error("noisy tenant's batch admitted past a 1 tuple/s quota")
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	sharedTime := victim(shared)
	close(stop)
	<-floodDone
	if err := shared.Close(); err != nil {
		t.Fatal(err)
	}

	if ratio := float64(soloTime) / float64(sharedTime); ratio < 0.8 {
		t.Fatalf("victim throughput under noisy neighbor is %.0f%% of solo (solo %v, shared %v), want >= 80%%",
			ratio*100, soloTime, sharedTime)
	}

	// The victim's engine must not have absorbed a single noisy tuple, and
	// the noisy tenant's engine must have applied nothing past its quota.
	if solo, sh := marshalTenant(t, soloSrv, "globex"), marshalTenant(t, shared, "globex"); string(solo) != string(sh) {
		t.Fatal("victim engine state differs from its dedicated-server run")
	}
	if eng, ok := shared.TenantEngine("acme"); ok && eng.Tuples() != 0 {
		t.Fatalf("noisy tenant applied %d tuples past its quota", eng.Tuples())
	}
}

// TestClientRedialHandshakeChain kills the server under an authenticated
// pool and restarts it on the same address: the pool's transparent redial
// must re-run the full boot+auth chain, so post-redial batches still land
// on the pinned tenant and never leak into the default engine.
func TestClientRedialHandshakeChain(t *testing.T) {
	s1, err := Listen(withAddr(multiTenantConfig(t, tenantCfg("acme"))))
	if err != nil {
		t.Fatal(err)
	}
	addr := s1.Addr()

	cl, err := client.DialTenant(addr, testSchema(t), "acme", tenant.Token(testKey, "acme"), client.Options{Conns: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.IngestBatch(tenantTuples("acme", 30, 0)); err != nil {
		t.Fatal(err)
	}
	waitTuples(t, cl, 30)

	s1.Kill()
	cfg2 := multiTenantConfig(t, tenantCfg("acme"))
	cfg2.Addr = addr
	var s2 *Server
	deadline := time.Now().Add(5 * time.Second)
	for {
		s2, err = Listen(cfg2)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("rebinding %s: %v", addr, err)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// The pooled connection is dead; Query's idempotent retry forces the
	// redial (and with it the handshake chain) against the new server.
	var res proto.QueryResult
	deadline = time.Now().Add(5 * time.Second)
	for {
		res, err = cl.Query(0)
		if err == nil {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("pool never recovered: %v", err)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if res.Tuples != 0 {
		t.Fatalf("fresh server reports %d tuples", res.Tuples)
	}
	// Mid-stream ingest on the redialed connection: authenticated, or the
	// batch would land on the default tenant.
	if err := cl.IngestBatch(tenantTuples("acme", 25, 0)); err != nil {
		t.Fatal(err)
	}
	waitTuples(t, cl, 25)
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	if eng, _ := s2.TenantEngine("acme"); eng == nil || eng.Tuples() != 25 {
		t.Fatal("tenant engine did not apply the post-redial batch")
	}
	if n := s2.Engine().Tuples(); n != 0 {
		t.Fatalf("default engine absorbed %d tuples after redial — auth chain did not re-run", n)
	}
}
