// Package exact implements the exact implication counter the paper uses as
// ground truth in §6: plain hash tables over every distinct A-itemset and
// its B-partners, applying the same streaming semantics as the sketches —
// an itemset that, at any point after reaching the minimum support, fails
// the multiplicity or top-confidence condition is excluded forever
// (§3.1.1). Memory is O(distinct itemsets · multiplicity); it exists to
// validate the constrained-memory algorithms, not to compete with them.
package exact

import (
	"sort"
	"strings"

	"implicate/internal/imps"
)

// Counter is the exact implication counter. It implements imps.Estimator
// (its "estimates" are exact). Not safe for concurrent use.
type Counter struct {
	cond    imps.Conditions
	items   map[string]*state
	tuples  int64
	entries int

	// cached aggregate counts, maintained incrementally
	implications    int64
	nonImplications int64
	supported       int64

	scratch []int64
}

type state struct {
	supp int64
	// out marks an itemset permanently excluded: after meeting the minimum
	// support it violated multiplicity or top-confidence.
	out  bool
	perB map[string]int64
}

// NewCounter returns an exact counter for the given conditions.
func NewCounter(cond imps.Conditions) (*Counter, error) {
	if err := cond.Validate(); err != nil {
		return nil, err
	}
	return &Counter{
		cond:    cond,
		items:   make(map[string]*state),
		scratch: make([]int64, 0, 8),
	}, nil
}

// MustCounter is NewCounter panicking on error.
func MustCounter(cond imps.Conditions) *Counter {
	c, err := NewCounter(cond)
	if err != nil {
		panic(err)
	}
	return c
}

// Conditions returns the implication conditions.
func (c *Counter) Conditions() imps.Conditions { return c.cond }

// Add observes one tuple. Key strings are cloned on first insert: callers
// on the zero-copy planning path hand keys that alias a whole batch
// buffer, and a map key that outlives the call must not pin it.
func (c *Counter) Add(a, b string) {
	c.tuples++
	st := c.items[a]
	if st == nil {
		st = &state{perB: make(map[string]int64, 1)}
		c.items[strings.Clone(a)] = st
		c.entries++
	}
	st.supp++
	if !st.out {
		if _, ok := st.perB[b]; ok {
			st.perB[b]++
		} else {
			c.entries++
			st.perB[strings.Clone(b)] = 1
		}
	}
	if st.supp == c.cond.MinSupport {
		c.supported++
		if !st.out {
			// The itemset just became eligible; if it already satisfies all
			// conditions it joins the implication count until disproven.
			c.implications++
		}
	}
	if st.supp >= c.cond.MinSupport && !st.out {
		if len(st.perB) > c.cond.MaxMultiplicity || c.topConfidence(st) < c.cond.MinTopConfidence {
			st.out = true
			c.entries -= len(st.perB)
			st.perB = nil
			c.implications--
			c.nonImplications++
		}
	}
}

func (c *Counter) topConfidence(st *state) float64 {
	c.scratch = c.scratch[:0]
	for _, v := range st.perB {
		c.scratch = append(c.scratch, v)
	}
	return imps.TopConfidence(c.scratch, c.cond.TopC, st.supp)
}

// ImplicationCount returns the exact implication count S.
func (c *Counter) ImplicationCount() float64 { return float64(c.implications) }

// NonImplicationCount returns the exact non-implication count ~S.
func (c *Counter) NonImplicationCount() float64 { return float64(c.nonImplications) }

// SupportedDistinct returns the exact F0^sup(A).
func (c *Counter) SupportedDistinct() float64 { return float64(c.supported) }

// DistinctCount returns the exact F0(A).
func (c *Counter) DistinctCount() float64 { return float64(len(c.items)) }

// Tuples returns the number of tuples observed.
func (c *Counter) Tuples() int64 { return c.tuples }

// MemEntries reports held counter entries (itemset supports plus pair
// counters).
func (c *Counter) MemEntries() int { return c.entries }

// Implies reports whether the itemset a currently participates in the
// implication count.
func (c *Counter) Implies(a string) bool {
	st := c.items[a]
	return st != nil && !st.out && st.supp >= c.cond.MinSupport
}

// Support returns σ(a).
func (c *Counter) Support(a string) int64 {
	if st := c.items[a]; st != nil {
		return st.supp
	}
	return 0
}

// Multiplicity returns |φ(a→B)| for itemsets that have not been excluded;
// for excluded itemsets the tracked partners were freed and it returns -1.
func (c *Counter) Multiplicity(a string) int {
	st := c.items[a]
	switch {
	case st == nil:
		return 0
	case st.out:
		return -1
	default:
		return len(st.perB)
	}
}

// AvgMultiplicity returns the mean number of distinct B-partners over the
// itemsets currently in the implication count (Table 2's complex-aggregate
// row), or 0 when the count is empty.
func (c *Counter) AvgMultiplicity() float64 {
	var n, sum float64
	for _, st := range c.items {
		if !st.out && st.supp >= c.cond.MinSupport {
			n++
			sum += float64(len(st.perB))
		}
	}
	if n == 0 {
		return 0
	}
	return sum / n
}

// Implicating returns the itemsets currently in the implication count, in
// sorted order — the answer a frequent-itemset style algorithm would return
// (useful in tests comparing against ILC).
func (c *Counter) Implicating() []string {
	var out []string
	for a, st := range c.items {
		if !st.out && st.supp >= c.cond.MinSupport {
			out = append(out, a)
		}
	}
	sort.Strings(out)
	return out
}

var _ imps.Estimator = (*Counter)(nil)
var _ imps.MultiplicityAverager = (*Counter)(nil)
