package lossy

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"implicate/internal/imps"
)

// Sticky is the Sticky Sampling algorithm of Manku & Motwani (VLDB 2002):
// a probabilistic counting sample whose sampling rate halves as the stream
// doubles, guaranteeing (ε, δ) frequency estimates with expected
// 2/ε·log(1/(s·δ)) entries independent of the stream length.
type Sticky struct {
	eps     float64
	t       float64 // 1/ε · log(1/(s·δ))
	rate    int64   // current sampling rate r: each arrival sampled w.p. 1/r
	limit   int64   // stream position at which the rate doubles next
	n       int64
	entries map[string]int64
	rng     *rand.Rand
}

// NewSticky returns a Sticky sampler for support s, approximation eps and
// failure probability delta, using the given deterministic seed.
func NewSticky(s, eps, delta float64, seed int64) (*Sticky, error) {
	if eps <= 0 || eps >= 1 || s <= eps || s >= 1 || delta <= 0 || delta >= 1 {
		return nil, fmt.Errorf("lossy: invalid sticky parameters s=%g eps=%g delta=%g", s, eps, delta)
	}
	t := 1 / eps * math.Log(1/(s*delta))
	return &Sticky{
		eps:     eps,
		t:       t,
		rate:    1,
		limit:   int64(2 * t),
		entries: make(map[string]int64),
		rng:     rand.New(rand.NewSource(seed)),
	}, nil
}

// MustSticky is NewSticky panicking on error.
func MustSticky(s, eps, delta float64, seed int64) *Sticky {
	st, err := NewSticky(s, eps, delta, seed)
	if err != nil {
		panic(err)
	}
	return st
}

// Add observes one item.
func (s *Sticky) Add(item string) {
	s.n++
	if s.n > s.limit {
		// The rate doubles; every existing entry repeatedly loses an
		// unbiased coin toss and is decremented until a toss succeeds.
		s.rate *= 2
		s.limit *= 2
		for it, cnt := range s.entries {
			for cnt > 0 && s.rng.Intn(2) == 0 {
				cnt--
			}
			if cnt == 0 {
				delete(s.entries, it)
			} else {
				s.entries[it] = cnt
			}
		}
	}
	if _, ok := s.entries[item]; ok {
		s.entries[item]++
		return
	}
	if s.rng.Int63n(s.rate) == 0 {
		s.entries[item] = 1
	}
}

// N returns the number of items observed.
func (s *Sticky) N() int64 { return s.n }

// Entries returns the number of live sample entries.
func (s *Sticky) Entries() int { return len(s.entries) }

// Count returns the tracked count of item.
func (s *Sticky) Count(item string) int64 { return s.entries[item] }

// Frequent returns the items with estimated frequency at least (sup−ε)·N,
// sorted.
func (s *Sticky) Frequent(sup float64) []string {
	threshold := (sup - s.eps) * float64(s.n)
	var out []string
	for item, cnt := range s.entries {
		if float64(cnt) >= threshold {
			out = append(out, item)
		}
	}
	sort.Strings(out)
	return out
}

// ImplicationSticky extends Sticky Sampling with the same dirty-marking
// scheme as ILC (§5.1 notes the extension is possible and inherits the same
// relative-support limitation). Itemset entries are admitted by the sticky
// sampling coin; pair counters are kept per sampled itemset.
type ImplicationSticky struct {
	cond       imps.Conditions
	relSupport float64
	inner      *Sticky
	dirty      map[string]bool
	pairs      map[string]map[string]int64
}

// NewImplicationSticky returns the implication extension of Sticky Sampling.
func NewImplicationSticky(cond imps.Conditions, relSupport, eps, delta float64, seed int64) (*ImplicationSticky, error) {
	if err := cond.Validate(); err != nil {
		return nil, err
	}
	inner, err := NewSticky(relSupport, eps, delta, seed)
	if err != nil {
		return nil, err
	}
	return &ImplicationSticky{
		cond:       cond,
		relSupport: relSupport,
		inner:      inner,
		dirty:      make(map[string]bool),
		pairs:      make(map[string]map[string]int64),
	}, nil
}

// Add observes one tuple.
func (s *ImplicationSticky) Add(a, b string) {
	s.inner.Add(a)
	cnt, sampled := s.inner.entries[a]
	if !sampled {
		delete(s.pairs, a) // the entry was evicted during a rate change
		return
	}
	if s.dirty[a] {
		return
	}
	pm := s.pairs[a]
	if pm == nil {
		pm = make(map[string]int64, 1)
		s.pairs[a] = pm
	}
	pm[b]++
	if float64(cnt) >= (s.relSupport-s.inner.eps)*float64(s.inner.n) && !s.satisfies(cnt, pm) {
		s.dirty[a] = true
		delete(s.pairs, a)
	}
}

// satisfies is called from ImplicationCount as well as the add path; like
// ILC.satisfies it stages the counts on the stack so queries stay read-only
// under a shared read lock.
func (s *ImplicationSticky) satisfies(cnt int64, pm map[string]int64) bool {
	if len(pm) > s.cond.MaxMultiplicity {
		return false
	}
	var buf [8]int64
	scratch := buf[:0]
	for _, v := range pm {
		scratch = append(scratch, v)
	}
	return imps.TopConfidence(scratch, s.cond.TopC, cnt) >= s.cond.MinTopConfidence
}

// ImplicationCount counts sampled itemsets that meet the relative support
// and satisfy the conditions.
func (s *ImplicationSticky) ImplicationCount() float64 {
	threshold := (s.relSupport - s.inner.eps) * float64(s.inner.n)
	var out float64
	for a, cnt := range s.inner.entries {
		if s.dirty[a] || float64(cnt) < threshold {
			continue
		}
		if s.satisfies(cnt, s.pairs[a]) {
			out++
		}
	}
	return out
}

// NonImplicationCount counts dirty itemsets.
func (s *ImplicationSticky) NonImplicationCount() float64 { return float64(len(s.dirty)) }

// SupportedDistinct counts itemsets meeting the relative support rule.
func (s *ImplicationSticky) SupportedDistinct() float64 {
	threshold := (s.relSupport - s.inner.eps) * float64(s.inner.n)
	var out float64
	for a, cnt := range s.inner.entries {
		if s.dirty[a] || float64(cnt) >= threshold {
			out++
		}
	}
	return out
}

// Tuples returns the number of tuples observed.
func (s *ImplicationSticky) Tuples() int64 { return s.inner.n }

// MemEntries reports live entries (itemsets, dirty marks, and pairs).
func (s *ImplicationSticky) MemEntries() int {
	n := len(s.inner.entries) + len(s.dirty)
	for _, pm := range s.pairs {
		n += len(pm)
	}
	return n
}

var _ imps.Estimator = (*ImplicationSticky)(nil)
