package gen

import (
	"math"
	"math/rand"
	"strconv"

	"implicate/internal/stream"
)

// Table 3 dimension cardinalities of the paper's proprietary OLAP dataset.
const (
	CardA = 1557
	CardB = 2669
	CardC = 2
	CardD = 2
	CardE = 3363
	CardF = 131
	CardG = 660
	CardH = 693
)

// OLAPSchema is the eight-dimension schema of the §6.2 dataset.
var olapAttrs = []string{"A", "B", "C", "D", "E", "F", "G", "H"}

// OLAPSchema returns the schema of the surrogate stream.
func OLAPSchema() *stream.Schema { return stream.MustSchema(olapAttrs...) }

// OLAPConfig parametrizes the surrogate for the paper's proprietary OLAP
// stream. The surrogate reproduces the structure the experiments need: the
// workload-A implication (A,B) → (E,G) whose count grows roughly like
// T^1.5 (Table 4 column two), and the workload-B implication E → B whose
// count grows slowly (Table 4 column three), both with tunable
// top-confidence noise so the ψ=0.6 and ψ=0.8 query variants of Figure 7
// return different counts.
type OLAPConfig struct {
	Seed int64
	// eImpReserve is the slice of the E domain reserved for implicating
	// E-values; defaults to 250 (Table 4 reaches 188).
	EImpReserve int
}

func (c OLAPConfig) withDefaults() OLAPConfig {
	if c.EImpReserve == 0 {
		c.EImpReserve = 250
	}
	return c
}

// quad is one workload-A implicating pattern: the pair (a,b) appears with
// the partner (e,g) — or, a pAlt fraction of the time, with (e2,g2),
// keeping the multiplicity at two and the top-1 confidence at 1−pAlt.
type quad struct {
	a, b   uint32
	e, g   uint32
	e2, g2 uint32
	pAlt   float64
}

// eTarget is one workload-B implicating E-value: e appears with b — or,
// a pAlt fraction of the time, with b2.
type eTarget struct {
	b, b2 uint32
	pAlt  float64
}

// OLAP is the surrogate stream generator. Successive Next calls emit
// tuples; the generator is deterministic for a given config.
type OLAP struct {
	cfg  OLAPConfig
	rng  *rand.Rand
	n    int64
	kA   float64
	kB   float64
	pool []quad
	eImp []eTarget
	// noise holds the recurring noise (A,B) pairs. Drawing noise from a
	// pool that grows alongside the implication pool keeps the distinct
	// (A,B) population within a small multiple of the implication count —
	// the regime of the paper's real dataset — and turns heavy noise pairs
	// into supported multiplicity violators (they appear with fresh (E,G)
	// partners every time).
	noise []pairAB

	// reusable identifier buffer for NextTuple
	tup stream.Tuple
}

type pairAB struct{ a, b uint32 }

// NewOLAP returns a surrogate generator.
func NewOLAP(cfg OLAPConfig) *OLAP {
	cfg = cfg.withDefaults()
	o := &OLAP{
		cfg: cfg,
		rng: rand.New(rand.NewSource(cfg.Seed)),
		// Pool growth constants calibrated against Table 4's first row:
		// 608 workload-A implications and 50 workload-B implications at
		// 134,576 tuples.
		kA:  608 / math.Pow(134576, 1.5),
		kB:  50 / math.Pow(134576, 0.36),
		tup: make(stream.Tuple, 8),
	}
	return o
}

// Tuples returns the number of tuples generated so far.
func (o *OLAP) Tuples() int64 { return o.n }

// noiseE draws an E-value outside the implicating reserve.
func (o *OLAP) noiseE() uint32 {
	return uint32(o.cfg.EImpReserve + o.rng.Intn(CardE-o.cfg.EImpReserve))
}

func (o *OLAP) grow() {
	t := float64(o.n + 1)
	for float64(len(o.pool)) < o.kA*math.Pow(t, 1.5) {
		o.pool = append(o.pool, quad{
			a:    uint32(o.rng.Intn(CardA)),
			b:    uint32(o.rng.Intn(CardB)),
			e:    o.noiseE(),
			g:    uint32(o.rng.Intn(CardG)),
			e2:   o.noiseE(),
			g2:   uint32(o.rng.Intn(CardG)),
			pAlt: o.rng.Float64() * 0.35,
		})
	}
	for float64(len(o.noise)) < 2*o.kA*math.Pow(t, 1.5) {
		o.noise = append(o.noise, pairAB{
			a: uint32(o.rng.Intn(CardA)),
			b: uint32(o.rng.Intn(CardB)),
		})
	}
	for len(o.eImp) < o.cfg.EImpReserve && float64(len(o.eImp)) < o.kB*math.Pow(t, 0.36) {
		o.eImp = append(o.eImp, eTarget{
			b:    uint32(o.rng.Intn(CardB)),
			b2:   uint32(o.rng.Intn(CardB)),
			pAlt: o.rng.Float64() * 0.35,
		})
	}
}

// NextIDs emits the next tuple as raw dimension identifiers, the fast path
// for the experiment harness. The returned array is indexed like the
// schema: A..H at positions 0..7.
func (o *OLAP) NextIDs() [8]uint32 {
	o.grow()
	o.n++
	var t [8]uint32
	t[2] = uint32(o.rng.Intn(CardC))
	t[3] = uint32(o.rng.Intn(CardD))
	t[5] = uint32(o.rng.Intn(CardF))
	t[7] = uint32(o.rng.Intn(CardH))

	switch r := o.rng.Float64(); {
	case r < 0.55 && len(o.pool) > 0:
		// Workload-A structured tuple from a pooled quad.
		q := o.pool[o.rng.Intn(len(o.pool))]
		t[0], t[1] = q.a, q.b
		if o.rng.Float64() < q.pAlt {
			t[4], t[6] = q.e2, q.g2
		} else {
			t[4], t[6] = q.e, q.g
		}
	case r < 0.70 && len(o.eImp) > 0:
		// Workload-B structured tuple: an implicating E-value with its
		// designated B partner. The A dimension comes from a small client
		// population, so the incidental (A,B) pairs recur and resolve as
		// supported violators instead of unbounded one-off junk.
		ei := o.rng.Intn(len(o.eImp))
		et := o.eImp[ei]
		t[4] = uint32(ei)
		if o.rng.Float64() < et.pAlt {
			t[1] = et.b2
		} else {
			t[1] = et.b
		}
		t[0] = uint32(o.rng.Intn(40))
		t[6] = uint32(o.rng.Intn(CardG))
	default:
		// Noise: a recurring (A,B) pair with fresh (E,G) partners — a
		// multiplicity violator in the making — and E outside the
		// implicating reserve so implicating E-values keep their
		// confidence.
		p := o.noise[o.rng.Intn(len(o.noise))]
		t[0], t[1] = p.a, p.b
		t[4] = o.noiseE()
		t[6] = uint32(o.rng.Intn(CardG))
	}
	return t
}

// Next emits the next tuple in schema form. The returned tuple aliases an
// internal buffer and is only valid until the following call.
func (o *OLAP) Next() (stream.Tuple, error) {
	ids := o.NextIDs()
	for i, v := range ids {
		o.tup[i] = strconv.FormatUint(uint64(v), 10)
	}
	return o.tup, nil
}

// PairKey packs two dimension identifiers into a compact string key, the
// projection the Figure 7 workloads use ((A,B) or (E) against (E,G) or
// (B)).
func PairKey(x, y uint32) string {
	var buf [8]byte
	buf[0] = byte(x >> 24)
	buf[1] = byte(x >> 16)
	buf[2] = byte(x >> 8)
	buf[3] = byte(x)
	buf[4] = byte(y >> 24)
	buf[5] = byte(y >> 16)
	buf[6] = byte(y >> 8)
	buf[7] = byte(y)
	return string(buf[:])
}

// SingleKey packs one dimension identifier into a compact string key.
func SingleKey(x uint32) string {
	var buf [4]byte
	buf[0] = byte(x >> 24)
	buf[1] = byte(x >> 16)
	buf[2] = byte(x >> 8)
	buf[3] = byte(x)
	return string(buf[:])
}
