// Command impcoordd coordinates a fleet of impserved leaves: the managed
// form of the paper's §2 aggregation tree (DESIGN.md §13). It speaks the
// same wire protocol an impserved leaf does, so producers and queriers
// need no fleet awareness — IngestBatch frames are routed to exactly one
// leaf through a stable partition table, Query and Snapshot answer from
// the merged fleet state, and Cluster reports membership.
//
// Usage:
//
//	impserved -addr 127.0.0.1:7101 -schema Source,Destination -seed 7 \
//	    -checkpoint leaf0.ckpt -every 100000 -q "SELECT ..." &
//	impserved -addr 127.0.0.1:7102 -schema Source,Destination -seed 7 \
//	    -checkpoint leaf1.ckpt -every 100000 -q "SELECT ..." &
//	impcoordd -listen :7100 -schema Source,Destination \
//	    -leaves leaf0=127.0.0.1:7101,leaf1=127.0.0.1:7102 \
//	    -q "SELECT ..."
//
// Leaves must serve the same schema and statements with merge-compatible
// estimators: the plain "nips" sketch backend with one shared -seed on
// every leaf. Leaf NAMES are the stable routing identities — keep them
// fixed across restarts and address changes, or tuples re-route and the
// fleet's determinism contract breaks.
//
// When a leaf stops answering health probes it is marked down. Routing
// does not change: the dead leaf keeps its partitions and its traffic
// queues in the coordinator's in-memory journal. Restart the leaf from
// its latest checkpoint (impserved -resume) on the same address; the
// coordinator re-admits it, reads back its restored offset, and replays
// the journal from that boundary — the recovered fleet's answers are
// bit-identical to a fleet that never crashed.
//
// On SIGINT/SIGTERM the coordinator stops accepting, flushes the journal
// into the fleet, and prints the final statement answers and membership
// view.
package main

import (
	"log"
	"os"
	"os/signal"
	"syscall"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("impcoordd: ")

	cfg, rest, err := parseFlags(os.Args[1:])
	if err != nil {
		os.Exit(2)
	}
	if len(rest) != 0 {
		log.Fatalf("unexpected arguments %q", rest)
	}
	if err := cfg.validate(); err != nil {
		log.Fatal(err)
	}

	stop := make(chan struct{})
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		s := <-sigs
		log.Printf("received %v, flushing the fleet", s)
		close(stop)
	}()

	ready := make(chan coordAddrs, 1)
	go func() {
		a := <-ready
		if a.admin != "" {
			log.Printf("coordinating %d leaves, listening on %s, admin on http://%s", len(cfg.leafSpecs), a.front, a.admin)
			return
		}
		log.Printf("coordinating %d leaves, listening on %s", len(cfg.leafSpecs), a.front)
	}()
	if err := serve(cfg, ready, stop, os.Stdout); err != nil {
		log.Fatal(err)
	}
}
