// The coordinator's wire front-end: a TCP listener speaking internal/proto
// so producers and queriers talk to the fleet exactly as they would to one
// impserved — the pooled client, impbench and a parent coordinator all work
// unchanged. Ingest frames route into the coordinator's partition table and
// are acknowledged once buffered (durability at this tier is the journal
// plus the leaves' checkpoints); Query and Snapshot answer from the merged
// fleet state; Cluster reports membership. The front-end is a control-plane
// loop — one reader per connection, replies written in request order — not
// the leaves' vectored hot path: the fan-out to N leaves, not front-end
// framing, bounds fleet throughput.
package coord

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"sync"
	"time"

	"implicate/internal/obs"
	"implicate/internal/proto"
	"implicate/internal/stream"
	"implicate/internal/telemetry"
)

// frontDrainGrace mirrors the server's: how long connection readers may
// finish in-flight requests after Close.
const frontDrainGrace = 200 * time.Millisecond

// Frontend serves the coordinator over the wire protocol. Create with
// Serve.
type Frontend struct {
	co *Coordinator
	ln net.Listener

	connMu   sync.Mutex
	conns    map[net.Conn]struct{}
	draining bool
	wg       sync.WaitGroup

	closeOnce sync.Once
}

// Serve starts a front-end listener for co on addr.
func Serve(co *Coordinator, addr string) (*Frontend, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("coord: %w", err)
	}
	fe := &Frontend{co: co, ln: ln, conns: make(map[net.Conn]struct{})}
	fe.wg.Add(1)
	go fe.acceptLoop()
	return fe, nil
}

// Addr returns the bound listen address (useful with ":0").
func (fe *Frontend) Addr() string { return fe.ln.Addr().String() }

func (fe *Frontend) acceptLoop() {
	defer fe.wg.Done()
	for {
		c, err := fe.ln.Accept()
		if err != nil {
			return // listener closed
		}
		fe.connMu.Lock()
		if fe.draining {
			fe.connMu.Unlock()
			c.Close()
			continue
		}
		fe.conns[c] = struct{}{}
		fe.wg.Add(1)
		fe.connMu.Unlock()
		go fe.serveConn(c)
	}
}

func (fe *Frontend) serveConn(c net.Conn) {
	defer fe.wg.Done()
	defer func() {
		fe.connMu.Lock()
		delete(fe.conns, c)
		fe.connMu.Unlock()
		c.Close()
	}()
	fr := proto.NewFrameReader(c)
	var wbuf []byte
	for {
		f, err := fr.Next()
		if err != nil {
			return // EOF, deadline or protocol error; nothing to answer on
		}
		resp := fe.handle(f)
		wbuf, err = proto.AppendFrame(wbuf[:0], resp)
		if err != nil {
			return
		}
		if _, err := c.Write(wbuf); err != nil {
			return
		}
	}
}

func (fe *Frontend) handle(f proto.Frame) proto.Frame {
	start := time.Now()
	rpc, resp, ok := fe.dispatch(f)
	if ok {
		// One clock read serves both the latency histogram and the RPC span —
		// parented under the inbound trace context when the frame carried
		// one, so a parent coordinator's delivery spans adopt this tier's
		// handling the same way leaf spans adopt this coordinator's.
		dur := time.Since(start)
		fe.co.tel.Observe(rpc, dur)
		fe.co.tracer.RecordLinked(obs.Link{Trace: f.TC.Trace, Parent: f.TC.Parent},
			obs.SpanRPC, int(rpc), 0, start, dur)
	}
	return resp
}

// dispatch routes one request frame; ok reports whether the type maps to
// an instrumented RPC code (TCluster and unknown types do not).
func (fe *Frontend) dispatch(f proto.Frame) (rpc telemetry.RPC, resp proto.Frame, ok bool) {
	switch f.Type {
	case proto.TIngest:
		return telemetry.RPCIngest, fe.handleIngest(f), true
	case proto.TQuery:
		req, err := proto.DecodeQueryReq(f.Payload)
		if err != nil {
			return telemetry.RPCQuery, errFrame(f.ID, err), true
		}
		res, err := fe.co.Query(int(req.Stmt))
		if err != nil {
			return telemetry.RPCQuery, errFrame(f.ID, err), true
		}
		return telemetry.RPCQuery, proto.Frame{Type: proto.TResult, ID: f.ID, Payload: res.Encode()}, true
	case proto.TSnapshot:
		req, err := proto.DecodeSnapshotReq(f.Payload)
		if err != nil {
			return telemetry.RPCSnapshot, errFrame(f.ID, err), true
		}
		res, err := fe.co.Snapshot(int(req.Stmt))
		if err != nil {
			return telemetry.RPCSnapshot, errFrame(f.ID, err), true
		}
		return telemetry.RPCSnapshot, proto.Frame{Type: proto.TResult, ID: f.ID, Payload: res.Encode()}, true
	case proto.TCluster:
		return 0, proto.Frame{Type: proto.TResult, ID: f.ID, Payload: fe.co.Status().Encode()}, false
	case proto.TBoot:
		// The coordinator journals in memory, so its restart loses routing
		// state the same way a leaf restart loses uncheckpointed tuples —
		// stateful feeders fence against it just like against a leaf.
		return telemetry.RPCBoot, proto.Frame{Type: proto.TResult, ID: f.ID, Payload: proto.Boot{Nonce: fe.co.boot}.Encode()}, true
	case proto.THealth:
		// The coordinator holds no estimators of its own, and Ping rides
		// this type — an empty report keeps liveness probes cheap instead of
		// fanning out to N leaves per probe. The rolled-up fleet health lives
		// on the admin endpoint and in FleetHealth.
		return telemetry.RPCHealth, proto.Frame{Type: proto.TResult, ID: f.ID, Payload: obs.EncodeHealth(nil)}, true
	case proto.TStats:
		return telemetry.RPCStats, proto.Frame{Type: proto.TResult, ID: f.ID, Payload: fe.co.tel.Snapshot().Encode()}, true
	case proto.TTrace:
		// With tracing off this answers the empty single-node dump any
		// pre-fleet client decodes; armed, it assembles the cross-node fleet
		// trace (coordinator spans + every reachable leaf's ring, causally
		// ordered and node-labeled).
		if fe.co.tracer == nil {
			return telemetry.RPCTrace, proto.Frame{Type: proto.TResult, ID: f.ID, Payload: obs.EncodeSpans(nil)}, true
		}
		return telemetry.RPCTrace, proto.Frame{Type: proto.TResult, ID: f.ID, Payload: obs.EncodeFleetTrace(fe.co.FleetTrace())}, true
	case proto.TUDPAck:
		// No UDP lane at this tier; the zero watermark is the protocol's
		// "lane disabled" answer.
		if _, err := proto.DecodeUDPAckReq(f.Payload); err != nil {
			return telemetry.RPCUDPAck, errFrame(f.ID, err), true
		}
		return telemetry.RPCUDPAck, proto.Frame{Type: proto.TResult, ID: f.ID, Payload: proto.UDPAck{}.Encode()}, true
	}
	return 0, errFrame(f.ID, fmt.Errorf("unsupported request type %s", f.Type)), false
}

func (fe *Frontend) handleIngest(f proto.Frame) proto.Frame {
	tuples, err := fe.decodeBatch(f.Payload)
	if err != nil {
		return errFrame(f.ID, err)
	}
	if err := fe.co.Ingest(tuples); err != nil {
		return errFrame(f.ID, err)
	}
	return proto.Frame{Type: proto.TOK, ID: f.ID, Payload: proto.IngestAck{Tuples: int64(len(tuples))}.Encode()}
}

// decodeBatch parses an ingest payload against the coordinator's schema.
// The general BinaryReader path, not the leaf server's zero-alloc fast
// path: the tuples are retained in the router buffers anyway, so they need
// their own allocations.
func (fe *Frontend) decodeBatch(payload []byte) ([]stream.Tuple, error) {
	br, err := stream.NewBinaryReader(bytes.NewReader(payload))
	if err != nil {
		return nil, err
	}
	got, want := br.Schema().Names(), fe.co.cfg.Schema.Names()
	if len(got) != len(want) {
		return nil, fmt.Errorf("batch schema has %d attributes, coordinator schema has %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			return nil, fmt.Errorf("batch schema attribute %d is %q, coordinator schema has %q", i, got[i], want[i])
		}
	}
	var tuples []stream.Tuple
	buf := make([]stream.Tuple, 256)
	for {
		n, err := br.NextBatch(buf)
		for i := 0; i < n; i++ {
			tuples = append(tuples, append(stream.Tuple(nil), buf[i]...))
		}
		if err == io.EOF {
			return tuples, nil
		}
		if err != nil {
			return nil, err
		}
	}
}

func errFrame(id uint64, err error) proto.Frame {
	return proto.Frame{Type: proto.TError, ID: id, Payload: proto.EncodeError(err.Error())}
}

// Close stops accepting, lets connection readers finish briefly, then cuts
// them. The coordinator itself is left running — callers own its shutdown.
func (fe *Frontend) Close() error {
	fe.closeOnce.Do(func() {
		fe.connMu.Lock()
		fe.draining = true
		deadline := time.Now().Add(frontDrainGrace)
		for c := range fe.conns {
			c.SetReadDeadline(deadline)
		}
		fe.connMu.Unlock()
		fe.ln.Close()
		fe.wg.Wait()
	})
	return nil
}
