package main

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"implicate"
	"implicate/internal/stream"
)

// TestObsSmoke is the observability smoke path `make obs-smoke` exercises:
// start impserved with the admin endpoint and tracing on, ingest through
// the wire, and require /metrics, /healthz and /trace to serve the key
// series — the same assertions the CI step makes with curl.
func TestObsSmoke(t *testing.T) {
	const total = 20_000
	cfg := &config{
		addr:       "127.0.0.1:0",
		schema:     "Source, Destination",
		queries:    queryList{`SELECT COUNT(DISTINCT Source) FROM traffic WHERE Source IMPLIES Destination WITH SUPPORT >= 3, MULTIPLICITY <= 2`},
		backend:    "nips",
		queue:      16,
		workers:    4,
		admin:      "127.0.0.1:0",
		traceSpans: 1024,
	}
	if err := cfg.validate(); err != nil {
		t.Fatal(err)
	}

	ready := make(chan addrs, 1)
	stop := make(chan struct{})
	var out strings.Builder
	serveErr := make(chan error, 1)
	go func() { serveErr <- serve(cfg, ready, stop, &out) }()
	var a addrs
	select {
	case a = <-ready:
	case err := <-serveErr:
		t.Fatal(err)
	case <-time.After(10 * time.Second):
		t.Fatal("server did not come up")
	}
	if a.admin == "" {
		t.Fatal("no admin address reported")
	}

	schema := mustSchema(t, "Source", "Destination")
	cl, err := implicate.Dial(a.server, schema, implicate.ClientOptions{BusyRetries: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	batch := make([]stream.Tuple, 1000)
	for off := 0; off < total; off += len(batch) {
		for i := range batch {
			n := off + i
			batch[i] = stream.Tuple{fmt.Sprintf("s%d", n%4000), fmt.Sprintf("d%d", (n%4000)%9)}
		}
		if err := cl.IngestBatch(batch); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		res, err := cl.Query(0)
		if err != nil {
			t.Fatal(err)
		}
		if res.Tuples == total {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("server stuck at %d of %d tuples", res.Tuples, total)
		}
		time.Sleep(time.Millisecond)
	}

	hc := &http.Client{Timeout: 5 * time.Second}
	get := func(path string) string {
		t.Helper()
		resp, err := hc.Get("http://" + a.admin + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s: %d\n%s", path, resp.StatusCode, body)
		}
		return string(body)
	}

	if body := get("/healthz"); body != "ok\n" {
		t.Fatalf("/healthz: %q", body)
	}
	metrics := get("/metrics")
	for _, want := range []string{
		fmt.Sprintf("imps_tuples_ingested_total %d", total),
		"imps_queue_high_water",
		"imps_pool_saturation_total",
		`imps_worker_units_total{worker="3"}`,
		`imps_rpc_latency_seconds{rpc="IngestBatch",quantile="0.5"}`,
		`imps_stmt_bitmap_fill{stmt="0",kind="nips",shared="false"}`,
		`imps_stmt_fringe_evictions_total{stmt="0"`,
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	trace := get("/trace")
	for _, kind := range []string{`"plan"`, `"dispatch"`, `"apply"`, `"rpc"`} {
		if !strings.Contains(trace, kind) {
			t.Errorf("/trace missing %s spans:\n%.400s", kind, trace)
		}
	}

	// The Trace RPC serves the same ring over the wire protocol.
	spans, err := cl.Trace()
	if err != nil {
		t.Fatal(err)
	}
	if len(spans) == 0 {
		t.Fatal("Trace RPC returned no spans")
	}

	// dumpTrace (the SIGQUIT renderer) formats every span.
	var dump strings.Builder
	dumpTrace(&dump, spans)
	if !strings.Contains(dump.String(), fmt.Sprintf("--- trace: %d spans ---", len(spans))) ||
		!strings.Contains(dump.String(), "apply") {
		t.Errorf("trace dump malformed:\n%.400s", dump.String())
	}

	close(stop)
	select {
	case err := <-serveErr:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("server did not shut down")
	}
}
