package fm

import (
	"fmt"
	"math"
	"testing"

	"implicate/internal/xhash"
)

func TestBitmapBasics(t *testing.T) {
	var b Bitmap
	if b.R() != 0 {
		t.Fatalf("empty bitmap R = %d, want 0", b.R())
	}
	b.Set(0)
	b.Set(1)
	b.Set(3)
	if !b.Get(0) || !b.Get(1) || b.Get(2) || !b.Get(3) {
		t.Fatal("Get/Set mismatch")
	}
	if b.R() != 2 {
		t.Fatalf("R = %d, want 2 (leftmost zero)", b.R())
	}
}

func TestBitmapSetPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Set(64) did not panic")
		}
	}()
	var b Bitmap
	b.Set(64)
}

func TestBitmapFullR(t *testing.T) {
	var b Bitmap
	for i := 0; i < 64; i++ {
		b.Set(i)
	}
	if b.R() != 64 {
		t.Fatalf("full bitmap R = %d, want 64", b.R())
	}
}

// TestLemma1 verifies the expected cell-hit counts of Lemma 1: with F0
// distinct elements, cell i receives about F0/2^(i+1) of them.
func TestLemma1(t *testing.T) {
	h := xhash.New(5)
	const f0 = 1 << 15
	var hits [64]int
	for i := 0; i < f0; i++ {
		hits[xhash.Rank(h.SumUint64(uint64(i)))]++
	}
	for i := 0; i < 8; i++ {
		expected := float64(f0) / math.Exp2(float64(i+1))
		got := float64(hits[i])
		if got < 0.85*expected || got > 1.15*expected {
			t.Errorf("cell %d: %v hits, Lemma 1 expects ≈%v", i, got, expected)
		}
	}
}

func TestSketchValidation(t *testing.T) {
	if _, err := NewSketch(3, 0); err == nil {
		t.Fatal("non-power-of-two bitmap count accepted")
	}
	if _, err := NewSketch(64, 0); err != nil {
		t.Fatalf("NewSketch(64): %v", err)
	}
}

// TestSketchAccuracy drives the PCSA estimator across four decades of
// cardinality and requires the relative error to stay within a few standard
// errors of the theoretical 0.78/sqrt(m).
func TestSketchAccuracy(t *testing.T) {
	const m = 64
	tolerance := 3 * StdError(m)
	for _, f0 := range []int{100, 1000, 10000, 100000} {
		var errSum float64
		const runs = 10
		for run := 0; run < runs; run++ {
			s, err := NewSketch(m, uint64(run)*977+13)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < f0; i++ {
				// Feed every element three times: duplicates must not move F0.
				k := fmt.Sprintf("el-%d-%d", run, i)
				s.Add(k)
				s.Add(k)
				s.Add(k)
			}
			est := s.Estimate()
			errSum += math.Abs(est-float64(f0)) / float64(f0)
		}
		if mean := errSum / runs; mean > tolerance {
			t.Errorf("F0=%d: mean relative error %.3f exceeds %.3f", f0, mean, tolerance)
		}
	}
}

// TestSmallRangeCorrection checks the corrected estimator is usable at very
// small cardinalities where the raw PCSA estimate is badly biased upward.
func TestSmallRangeCorrection(t *testing.T) {
	const m = 64
	for _, f0 := range []int{10, 30, 60} {
		var rawSum, corrSum float64
		const runs = 20
		for run := 0; run < runs; run++ {
			s, _ := NewSketch(m, uint64(run)*31+7)
			for i := 0; i < f0; i++ {
				s.Add(fmt.Sprintf("k%d-%d", run, i))
			}
			rawSum += s.RawEstimate()
			corrSum += s.Estimate()
		}
		raw, corr := rawSum/runs, corrSum/runs
		rawErr := math.Abs(raw-float64(f0)) / float64(f0)
		corrErr := math.Abs(corr-float64(f0)) / float64(f0)
		if corrErr > 0.35 {
			t.Errorf("F0=%d: corrected estimate %v has error %.2f", f0, corr, corrErr)
		}
		if corrErr > rawErr {
			t.Errorf("F0=%d: correction made things worse (raw %.2f, corrected %.2f)", f0, rawErr, corrErr)
		}
	}
}

func TestEstimateEmpty(t *testing.T) {
	s, _ := NewSketch(16, 0)
	if est := s.Estimate(); est != 0 {
		t.Fatalf("empty sketch estimate = %v, want 0", est)
	}
	if r := s.MeanR(); r != 0 {
		t.Fatalf("empty sketch MeanR = %v, want 0", r)
	}
}

func TestEstimateMonotoneUnderInsertions(t *testing.T) {
	s, _ := NewSketch(32, 9)
	prev := 0.0
	for i := 0; i < 5000; i++ {
		s.Add(fmt.Sprintf("x%d", i))
		if i%500 == 0 {
			cur := s.MeanR()
			if cur < prev {
				t.Fatalf("MeanR decreased from %v to %v at i=%d", prev, cur, i)
			}
			prev = cur
		}
	}
}

func TestStdError(t *testing.T) {
	if se := StdError(64); math.Abs(se-0.0975) > 1e-4 {
		t.Fatalf("StdError(64) = %v, want ≈0.0975", se)
	}
}
