package proto

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"sync"
)

// The zero-allocation frame path (DESIGN.md §12). ReadFrame allocates a
// fresh payload buffer per frame, which is fine for control-plane callers
// but is the first thing an ingest-rate wire path has to stop doing: at
// millions of tuples per second the per-frame garbage dominates the
// profile. FrameReader is the replacement for connection loops: one
// buffered reader and one grow-only frame buffer per connection, reused
// for every frame, so steady-state decode performs zero heap allocations
// per frame.
//
// The price is an ownership rule: a Frame returned by Next aliases the
// reader's internal buffer and is valid only until the following Next
// call. A handler that must keep payload bytes past that point copies them
// out — RetainPayload is the pooled escape hatch, paired with
// ReleasePayload when the copy is done (the server's UDP reorder window is
// the canonical user).

// readerBufSize is FrameReader's bufio size. 64 KiB batches read syscalls
// across several typical ingest frames without holding a large buffer per
// idle connection.
const readerBufSize = 1 << 16

// FrameReader decodes frames from one stream with per-connection reusable
// buffers. Not safe for concurrent use; each connection owns one.
type FrameReader struct {
	br  *bufio.Reader
	buf []byte // grow-only frame body buffer; payloads returned by Next alias it
}

// NewFrameReader returns a FrameReader over r. If r is already a
// *bufio.Reader it is used directly, so stacking does not double-buffer.
func NewFrameReader(r io.Reader) *FrameReader {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReaderSize(r, readerBufSize)
	}
	return &FrameReader{br: br}
}

// Next reads and validates one frame. The returned frame's payload aliases
// the reader's internal buffer: it is valid only until the next call to
// Next. Use RetainPayload (or an explicit copy) for payloads that must
// survive longer. Failure semantics match ReadFrame: a clean io.EOF at a
// frame boundary is io.EOF, anything else wraps ErrMalformed and the
// stream must be dropped.
func (fr *FrameReader) Next() (Frame, error) {
	// Peek the prefix out of bufio's buffer rather than io.ReadFull into a
	// local array: the local would escape through the io.Reader interface
	// and cost one heap allocation per frame.
	p, err := fr.br.Peek(4)
	if err != nil {
		if err == io.EOF && len(p) == 0 {
			return Frame{}, io.EOF
		}
		return Frame{}, fmt.Errorf("%w: truncated length prefix: %v", ErrMalformed, err)
	}
	n := binary.LittleEndian.Uint32(p)
	fr.br.Discard(4)
	if n < headerLen || n > MaxFrame {
		return Frame{}, fmt.Errorf("%w: implausible frame length %d", ErrMalformed, n)
	}
	if cap(fr.buf) < int(n) {
		// Grow-only: the buffer settles at the connection's largest frame.
		fr.buf = make([]byte, n)
	}
	buf := fr.buf[:n]
	if _, err := io.ReadFull(fr.br, buf); err != nil {
		return Frame{}, fmt.Errorf("%w: truncated frame body: %v", ErrMalformed, err)
	}
	return parseFrameBody(buf)
}

// parseFrameBody validates a frame body (everything after the length
// prefix) and builds the Frame view over it.
func parseFrameBody(buf []byte) (Frame, error) {
	if buf[0]&^byte(FlagTraced) != Version {
		return Frame{}, fmt.Errorf("%w: protocol version %d (want %d)", ErrMalformed, buf[0], Version)
	}
	f := Frame{
		Type:    Type(buf[1]),
		ID:      binary.LittleEndian.Uint64(buf[2:]),
		Payload: buf[headerLen:],
	}
	sum := binary.LittleEndian.Uint32(buf[10:])
	if got := crc32.Checksum(f.Payload, castagnoli); got != sum {
		return Frame{}, fmt.Errorf("%w: payload checksum mismatch (stored %08x, computed %08x)", ErrMalformed, sum, got)
	}
	if buf[0]&FlagTraced != 0 {
		if len(f.Payload) < traceContextLen {
			return Frame{}, fmt.Errorf("%w: traced frame shorter than its context", ErrMalformed)
		}
		f.TC = TraceContext{
			Trace:  binary.LittleEndian.Uint64(f.Payload[0:]),
			Parent: binary.LittleEndian.Uint64(f.Payload[8:]),
		}
		f.Payload = f.Payload[traceContextLen:]
	}
	return f, nil
}

// payloadPool recycles retained payload copies. Buffers are pooled as
// *[]byte so Put does not allocate a fresh interface box per release.
var payloadPool = sync.Pool{New: func() any { return new([]byte) }}

// RetainPayload copies p into a pooled buffer and returns the copy. It is
// the escape hatch for frames that must outlive their FrameReader's next
// read: the caller owns the returned slice exclusively until it hands it
// back through ReleasePayload. Releasing is optional — an unreleased
// buffer is ordinary garbage — but releasing lets the backing array be
// reused instead of reallocated.
func RetainPayload(p []byte) []byte {
	bp := payloadPool.Get().(*[]byte)
	b := *bp
	if cap(b) < len(p) {
		b = make([]byte, len(p))
	}
	b = b[:len(p)]
	copy(b, p)
	// The box goes back empty so no pooled entry ever aliases a buffer a
	// caller still owns; the backing array returns via ReleasePayload.
	*bp = nil
	payloadPool.Put(bp)
	return b
}

// ReleasePayload returns a RetainPayload buffer's backing array to the
// pool. The caller must not touch b afterwards. Buffers from other sources
// are accepted too (they simply join the pool), so callers can release
// unconditionally.
func ReleasePayload(b []byte) {
	if cap(b) == 0 {
		return
	}
	bp := payloadPool.Get().(*[]byte)
	if cap(b) > cap(*bp) {
		*bp = b[:0]
	}
	payloadPool.Put(bp)
}

// AppendFrameFunc appends one frame whose payload is produced by fn
// writing directly into the destination buffer — the zero-copy encode for
// replies assembled in a connection's scratch: no intermediate payload
// slice exists. fn must append its payload to the slice it receives and
// return the extension; the header (length, CRC) is back-patched after fn
// runs. Returns an error only when the produced payload exceeds MaxFrame,
// in which case dst is returned unchanged.
func AppendFrameFunc(dst []byte, t Type, id uint64, fn func([]byte) []byte) ([]byte, error) {
	base := len(dst)
	// Reserve the length prefix and header; patch both once the payload
	// length and checksum are known.
	dst = append(dst, 0, 0, 0, 0, Version, uint8(t))
	dst = binary.LittleEndian.AppendUint64(dst, id)
	dst = append(dst, 0, 0, 0, 0) // CRC placeholder
	payloadStart := len(dst)
	dst = fn(dst)
	n := len(dst) - payloadStart
	if n > MaxFrame-headerLen {
		return dst[:base], fmt.Errorf("proto: payload of %d bytes exceeds the %d-byte frame limit", n, MaxFrame)
	}
	binary.LittleEndian.PutUint32(dst[base:], uint32(headerLen+n))
	// The CRC sits at body offset 10, i.e. after the length prefix too.
	binary.LittleEndian.PutUint32(dst[base+4+10:], crc32.Checksum(dst[payloadStart:], castagnoli))
	return dst, nil
}

// AppendFrameHeader appends only the encoded frame header (length prefix
// included) for a payload that will be written separately — the vectored
// write path for large replies, where the payload slice joins the writev
// iovec instead of being copied through scratch. The caller must write
// exactly the payload it passed here immediately after the header. An
// oversized payload returns dst unchanged, like AppendFrame.
func AppendFrameHeader(dst []byte, t Type, id uint64, payload []byte) ([]byte, error) {
	if len(payload) > MaxFrame-headerLen {
		return dst, fmt.Errorf("proto: payload of %d bytes exceeds the %d-byte frame limit", len(payload), MaxFrame)
	}
	dst = binary.LittleEndian.AppendUint32(dst, uint32(headerLen+len(payload)))
	dst = append(dst, Version, uint8(t))
	dst = binary.LittleEndian.AppendUint64(dst, id)
	return binary.LittleEndian.AppendUint32(dst, crc32.Checksum(payload, castagnoli)), nil
}

// AppendTo appends the ack payload to dst — the allocation-free encode the
// reply path uses inside AppendFrameFunc.
func (a IngestAck) AppendTo(dst []byte) []byte {
	return binary.LittleEndian.AppendUint64(dst, uint64(a.Tuples))
}

// AppendTo appends the backpressure payload to dst (millisecond
// resolution), mirroring Encode without the per-reply allocation.
func (b Busy) AppendTo(dst []byte) []byte {
	ms := b.RetryAfter.Milliseconds()
	if ms < 0 {
		ms = 0
	}
	if ms > 1<<31 {
		ms = 1 << 31
	}
	return binary.LittleEndian.AppendUint32(dst, uint32(ms))
}
