package core

import (
	"math/rand"
	"testing"

	"implicate/internal/imps"
)

func loadedSketch(t *testing.T, opts Options) *Sketch {
	t.Helper()
	cond := imps.Conditions{MaxMultiplicity: 2, MinSupport: 4, TopC: 1, MinTopConfidence: 0.75}
	s := MustSketch(cond, opts)
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 30000; i++ {
		s.AddIDs(uint64(rng.Intn(3000)), uint64(rng.Intn(6)))
	}
	return s
}

func sameEstimates(t *testing.T, a, b *Sketch) {
	t.Helper()
	if a.ImplicationCount() != b.ImplicationCount() {
		t.Errorf("ImplicationCount %v vs %v", a.ImplicationCount(), b.ImplicationCount())
	}
	if a.NonImplicationCount() != b.NonImplicationCount() {
		t.Errorf("NonImplicationCount %v vs %v", a.NonImplicationCount(), b.NonImplicationCount())
	}
	if a.SupportedDistinct() != b.SupportedDistinct() {
		t.Errorf("SupportedDistinct %v vs %v", a.SupportedDistinct(), b.SupportedDistinct())
	}
	if a.DistinctCount() != b.DistinctCount() {
		t.Errorf("DistinctCount %v vs %v", a.DistinctCount(), b.DistinctCount())
	}
	if a.Tuples() != b.Tuples() {
		t.Errorf("Tuples %v vs %v", a.Tuples(), b.Tuples())
	}
	if a.MemEntries() != b.MemEntries() {
		t.Errorf("MemEntries %v vs %v", a.MemEntries(), b.MemEntries())
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	for _, opts := range []Options{
		{Seed: 1},
		{Seed: 2, Bitmaps: 16, FringeSize: 3, Slack: 1},
		{Seed: 3, Unbounded: true},
	} {
		s := loadedSketch(t, opts)
		data, err := s.MarshalBinary()
		if err != nil {
			t.Fatal(err)
		}
		restored, err := UnmarshalSketch(data)
		if err != nil {
			t.Fatal(err)
		}
		sameEstimates(t, s, restored)
		if restored.Conditions() != s.Conditions() || restored.Options() != s.Options() {
			t.Fatal("configuration not restored")
		}
	}
}

// TestMarshalContinuation checks that a restored sketch keeps streaming
// with state identical to one that was never serialized.
func TestMarshalContinuation(t *testing.T) {
	a := loadedSketch(t, Options{Seed: 5})
	data, err := a.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	b, err := UnmarshalSketch(data)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 20000; i++ {
		x, y := uint64(rng.Intn(5000)), uint64(rng.Intn(8))
		a.AddIDs(x, y)
		b.AddIDs(x, y)
	}
	sameEstimates(t, a, b)
}

// TestMarshalMergeAfterRestore exercises the checkpoint-then-aggregate
// workflow: serialize on one node, restore and merge on another.
func TestMarshalMergeAfterRestore(t *testing.T) {
	cond := imps.Conditions{MaxMultiplicity: 1, MinSupport: 2, TopC: 1, MinTopConfidence: 1.0}
	opts := Options{Seed: 9}
	remote := MustSketch(cond, opts)
	local := MustSketch(cond, opts)
	for i := 0; i < 500; i++ {
		remote.AddIDs(uint64(i), 1)
		remote.AddIDs(uint64(i), 1)
		local.AddIDs(uint64(10000+i), 2)
		local.AddIDs(uint64(10000+i), 2)
	}
	data, err := remote.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	restored, err := UnmarshalSketch(data)
	if err != nil {
		t.Fatal(err)
	}
	if err := local.Merge(restored); err != nil {
		t.Fatal(err)
	}
	got := local.ImplicationCount()
	if got < 800 || got > 1250 {
		t.Fatalf("merged count %v, want ≈1000", got)
	}
}

func TestUnmarshalRejectsCorruption(t *testing.T) {
	s := loadedSketch(t, Options{Seed: 11})
	data, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UnmarshalSketch(nil); err == nil {
		t.Error("nil input accepted")
	}
	if _, err := UnmarshalSketch([]byte("BOGUS")); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := UnmarshalSketch(data[:len(data)/2]); err == nil {
		t.Error("truncated input accepted")
	}
	if _, err := UnmarshalSketch(append(append([]byte(nil), data...), 0xFF)); err == nil {
		t.Error("trailing garbage accepted")
	}
	// Flipping a byte in the options region must be caught by validation or
	// produce a decode error, never a panic.
	for off := 5; off < 40 && off < len(data); off++ {
		mut := append([]byte(nil), data...)
		mut[off] ^= 0xFF
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic decoding mutation at offset %d: %v", off, r)
				}
			}()
			_, _ = UnmarshalSketch(mut)
		}()
	}
}
