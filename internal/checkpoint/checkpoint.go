// Package checkpoint is the durable layer of the crash-recovery subsystem:
// it frames an engine snapshot and its stream offset into a CRC-guarded
// file written atomically, and restores engines from such files.
//
// The recovery contract is replay-based. A checkpoint records the engine
// state after exactly Offset tuples; to recover, restore the engine, skip
// the source past the first Offset tuples (stream.Resumable) and keep
// consuming. Against the same stream the recovered engine is
// indistinguishable from one that never stopped — bit-identical for the
// deterministic estimators, within estimator error for none (every
// estimator's full state rides in the checkpoint, so there is no
// re-approximation on restore).
//
// A checkpoint that cannot be proven intact — truncated, bit-flipped,
// version-skewed, or inconsistent with the stream schema — is rejected
// with an error. The failure mode is always "no answer", never "a wrong
// answer".
package checkpoint

import (
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"

	"implicate/internal/query"
	"implicate/internal/stream"
	"implicate/internal/wire"
)

const fileMagic = "IMPK\x01"

// Version is the current checkpoint file version. Decode rejects any other:
// guessing at a future layout risks a silently wrong restore.
const Version = 1

// maxPayload bounds the framed payload (engine snapshot plus offset).
const maxPayload = 1 << 31

// castagnoli is the CRC-32C table; the checksum guards the whole payload.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Snapshot is one recovery point: an engine's serialized state and the
// number of source tuples it had consumed when captured.
type Snapshot struct {
	// Offset is the number of tuples consumed from the source.
	Offset int64
	// Engine is the query engine's snapshot (query.Engine MarshalBinary).
	Engine []byte
}

// Capture snapshots a live engine at the given stream offset.
func Capture(eng *query.Engine, offset int64) (Snapshot, error) {
	if offset < 0 {
		return Snapshot{}, fmt.Errorf("checkpoint: negative stream offset %d", offset)
	}
	blob, err := eng.MarshalBinary()
	if err != nil {
		return Snapshot{}, err
	}
	return Snapshot{Offset: offset, Engine: blob}, nil
}

// Restore rebuilds the engine from a snapshot; see query.UnmarshalEngine
// for the validation it performs. The caller then skips the source to
// snap.Offset and resumes consuming.
func Restore(snap Snapshot, schema *stream.Schema, resolve query.BackendResolver) (*query.Engine, error) {
	return query.UnmarshalEngine(snap.Engine, schema, resolve)
}

// Encode frames a snapshot into the checkpoint file format.
func Encode(snap Snapshot) []byte {
	payload := wire.NewEncoder(len(snap.Engine) + 16)
	payload.I64(snap.Offset)
	payload.Blob(snap.Engine)

	e := wire.NewEncoder(len(payload.Bytes()) + 16)
	e.Raw([]byte(fileMagic))
	e.U32(Version)
	e.U32(crc32.Checksum(payload.Bytes(), castagnoli))
	e.Blob(payload.Bytes())
	return e.Bytes()
}

// Decode unframes a checkpoint file, verifying magic, version and checksum.
func Decode(data []byte) (Snapshot, error) {
	d := wire.NewDecoder(data)
	d.Magic(fileMagic)
	version := d.U32()
	sum := d.U32()
	payload := d.Blob(maxPayload)
	if err := d.Done(); err != nil {
		return Snapshot{}, fmt.Errorf("checkpoint: %w", err)
	}
	if version != Version {
		return Snapshot{}, fmt.Errorf("checkpoint: unsupported version %d (want %d)", version, Version)
	}
	if got := crc32.Checksum(payload, castagnoli); got != sum {
		return Snapshot{}, fmt.Errorf("checkpoint: checksum mismatch (stored %08x, computed %08x): file is corrupt", sum, got)
	}

	p := wire.NewDecoder(payload)
	var snap Snapshot
	snap.Offset = p.I64()
	snap.Engine = p.Blob(maxPayload)
	if err := p.Done(); err != nil {
		return Snapshot{}, fmt.Errorf("checkpoint: %w", err)
	}
	if snap.Offset < 0 {
		return Snapshot{}, fmt.Errorf("checkpoint: negative stream offset %d", snap.Offset)
	}
	return snap, nil
}

// Write stores a snapshot at path atomically: the bytes are written to a
// temporary file in the same directory, synced, and renamed over the
// destination, so a crash mid-write leaves either the old checkpoint or
// the new one — never a torn file.
func Write(path string, snap Snapshot) error {
	data := Encode(snap)
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := tmp.Close(); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return fmt.Errorf("checkpoint: %w", err)
	}
	// Sync the directory so the rename itself survives a crash.
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		_ = d.Close()
	}
	return nil
}

// Read loads and verifies a checkpoint file.
func Read(path string) (Snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Snapshot{}, fmt.Errorf("checkpoint: %w", err)
	}
	snap, err := Decode(data)
	if err != nil {
		return Snapshot{}, fmt.Errorf("%w (%s)", err, path)
	}
	return snap, nil
}

// Periodic writes a checkpoint every Every tuples of stream progress.
type Periodic struct {
	// Path is the checkpoint file location.
	Path string
	// Every is the tuple interval between checkpoints; zero disables.
	Every int64

	last int64
}

// SkipTo marks offset as already durable, so the next write happens Every
// tuples after it. Call it after resuming from a checkpoint taken at
// offset — re-writing the state just restored would be wasted IO.
func (p *Periodic) SkipTo(offset int64) { p.last = offset }

// Maybe checkpoints the engine when at least Every tuples have been
// consumed since the last write (or since construction). It reports
// whether a checkpoint was written.
func (p *Periodic) Maybe(eng *query.Engine, offset int64) (bool, error) {
	if p.Every <= 0 || offset-p.last < p.Every {
		return false, nil
	}
	snap, err := Capture(eng, offset)
	if err != nil {
		return false, err
	}
	if err := Write(p.Path, snap); err != nil {
		return false, err
	}
	p.last = offset
	return true, nil
}
