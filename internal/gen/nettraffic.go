package gen

import (
	"fmt"
	"math/rand"

	"implicate/internal/stream"
)

// NetTrafficSchema is the router-stream schema of Table 1.
func NetTrafficSchema() *stream.Schema {
	return stream.MustSchema("Source", "Destination", "Service", "Time")
}

// NetTrafficConfig parametrizes the simulated router stream used by the
// examples: background traffic over a population of sources and
// destinations, plus two injectable phenomena from §1 — a flash crowd /
// DDoS pattern (a huge number of sources converging on very few
// destinations) and port-scan style probing (single sources touching many
// destinations).
type NetTrafficConfig struct {
	Seed         int64
	Sources      int // background source population (default 5000)
	Destinations int // background destination population (default 2000)
	// FlashSources is the number of distinct attack sources; each
	// contributes FlashRate of the post-onset traffic toward FlashTargets
	// destinations. Zero disables the injection.
	FlashSources int
	FlashTargets int
	// FlashAfter is the tuple index at which the flash crowd begins.
	FlashAfter int64
	// FlashShare is the fraction of post-onset tuples that belong to the
	// flash crowd (default 0.4 when FlashSources > 0).
	FlashShare float64
}

func (c NetTrafficConfig) withDefaults() NetTrafficConfig {
	if c.Sources == 0 {
		c.Sources = 5000
	}
	if c.Destinations == 0 {
		c.Destinations = 2000
	}
	if c.FlashTargets == 0 {
		c.FlashTargets = 3
	}
	if c.FlashShare == 0 && c.FlashSources > 0 {
		c.FlashShare = 0.4
	}
	return c
}

var services = []string{"WWW", "FTP", "P2P", "DNS", "SMTP"}
var daytimes = []string{"Morning", "Noon", "Afternoon", "Night"}

// NetTraffic generates the simulated router stream.
type NetTraffic struct {
	cfg  NetTrafficConfig
	rng  *rand.Rand
	zipD *rand.Zipf // destination popularity skew
	n    int64
	tup  stream.Tuple
}

// NewNetTraffic returns a generator for the given config.
func NewNetTraffic(cfg NetTrafficConfig) *NetTraffic {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	return &NetTraffic{
		cfg:  cfg,
		rng:  rng,
		zipD: rand.NewZipf(rng, 1.2, 1.0, uint64(cfg.Destinations-1)),
		tup:  make(stream.Tuple, 4),
	}
}

// Tuples returns the number of tuples generated so far.
func (g *NetTraffic) Tuples() int64 { return g.n }

// Next emits the next traffic tuple. The returned tuple aliases an internal
// buffer and is only valid until the following call.
func (g *NetTraffic) Next() (stream.Tuple, error) {
	g.n++
	cfg := g.cfg
	if cfg.FlashSources > 0 && g.n > cfg.FlashAfter && g.rng.Float64() < cfg.FlashShare {
		// Flash crowd: many sources, a handful of destinations (§1: "a
		// large volume of traffic from a huge number of sources to a very
		// small number of destinations").
		g.tup[0] = fmt.Sprintf("atk-%d", g.rng.Intn(cfg.FlashSources))
		g.tup[1] = fmt.Sprintf("victim-%d", g.rng.Intn(cfg.FlashTargets))
		g.tup[2] = "WWW"
	} else {
		g.tup[0] = fmt.Sprintf("src-%d", g.rng.Intn(cfg.Sources))
		g.tup[1] = fmt.Sprintf("dst-%d", g.zipD.Uint64())
		g.tup[2] = services[g.rng.Intn(len(services))]
	}
	g.tup[3] = daytimes[int(g.n/997)%len(daytimes)]
	return g.tup, nil
}
