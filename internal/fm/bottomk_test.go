package fm

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestNewBottomKValidation(t *testing.T) {
	if _, err := NewBottomK(0, 1); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := NewBottomK(64, 1); err != nil {
		t.Fatal(err)
	}
}

func TestBottomKExactBelowK(t *testing.T) {
	b, _ := NewBottomK(100, 1)
	for i := 0; i < 60; i++ {
		for rep := 0; rep < 3; rep++ { // duplicates must not count
			b.Add(fmt.Sprintf("x%d", i))
		}
	}
	if got := b.Estimate(); got != 60 {
		t.Fatalf("estimate below k = %v, want exactly 60", got)
	}
	if b.Size() != 60 {
		t.Fatalf("Size = %d", b.Size())
	}
}

// TestBottomKHeapInvariant property-checks the retained set: it must hold
// exactly the k smallest distinct hash values of the inserted keys.
func TestBottomKHeapInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 1 + rng.Intn(30)
		b, _ := NewBottomK(k, uint64(seed))
		var hashes []uint64
		seen := map[uint64]bool{}
		n := 10 + rng.Intn(300)
		for i := 0; i < n; i++ {
			key := fmt.Sprintf("key-%d", rng.Intn(200))
			h := b.hash.Sum(key)
			b.Add(key)
			if !seen[h] {
				seen[h] = true
				hashes = append(hashes, h)
			}
		}
		sort.Slice(hashes, func(i, j int) bool { return hashes[i] < hashes[j] })
		if len(hashes) > k {
			hashes = hashes[:k]
		}
		if len(hashes) != b.Size() {
			return false
		}
		for _, h := range hashes {
			if _, ok := b.in[h]; !ok {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestBottomKAccuracy(t *testing.T) {
	for _, f0 := range []int{2000, 50000} {
		var errSum float64
		const runs = 10
		for run := 0; run < runs; run++ {
			b, _ := NewBottomK(1024, uint64(run*13+1))
			for i := 0; i < f0; i++ {
				b.Add(fmt.Sprintf("v%d-%d", run, i))
			}
			errSum += math.Abs(b.Estimate()-float64(f0)) / float64(f0)
		}
		// k=1024 gives ≈1/√k ≈ 3% expected error.
		if mean := errSum / runs; mean > 0.10 {
			t.Errorf("F0=%d: mean error %.3f", f0, mean)
		}
	}
}

func TestEpsDeltaF0(t *testing.T) {
	if _, err := NewEpsDeltaF0(0, 0.1, 1); err == nil {
		t.Error("eps=0 accepted")
	}
	if _, err := NewEpsDeltaF0(0.1, 1.5, 1); err == nil {
		t.Error("delta=1.5 accepted")
	}
	e, err := NewEpsDeltaF0(0.1, 0.05, 7)
	if err != nil {
		t.Fatal(err)
	}
	if e.Groups()%2 == 0 {
		t.Fatalf("even group count %d", e.Groups())
	}
	const f0 = 20000
	for i := 0; i < f0; i++ {
		e.Add(fmt.Sprintf("el%d", i))
	}
	est := e.Estimate()
	if math.Abs(est-f0)/f0 > 0.1 {
		t.Fatalf("estimate %v outside ε=0.1 of %d", est, f0)
	}
	if e.MemEntries() <= 0 {
		t.Fatal("no retained entries")
	}
}
