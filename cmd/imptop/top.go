package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"time"

	"implicate"
	"implicate/internal/telemetry"
)

// config carries the parsed command line.
type config struct {
	addr     string
	coord    string
	interval time.Duration
	count    int
	plain    bool
}

func parseFlags(args []string) (*config, []string, error) {
	fs := flag.NewFlagSet("imptop", flag.ContinueOnError)
	cfg := &config{}
	fs.StringVar(&cfg.addr, "addr", "127.0.0.1:7171", "impserved address to watch")
	fs.StringVar(&cfg.coord, "coord", "", "coordinator admin address (host:port or URL); fleet mode, overrides -addr")
	fs.DurationVar(&cfg.interval, "interval", time.Second, "poll interval")
	fs.IntVar(&cfg.count, "count", 0, "frames to render before exiting; 0: until interrupted")
	fs.BoolVar(&cfg.plain, "plain", false, "print one frame per poll instead of redrawing in place")
	if err := fs.Parse(args); err != nil {
		return nil, nil, err
	}
	return cfg, fs.Args(), nil
}

func (cfg *config) validate() error {
	if cfg.addr == "" && cfg.coord == "" {
		return fmt.Errorf("missing -addr")
	}
	if cfg.interval <= 0 {
		return fmt.Errorf("-interval must be positive, got %v", cfg.interval)
	}
	if cfg.count < 0 {
		return fmt.Errorf("-count must be >= 0, got %d", cfg.count)
	}
	return nil
}

// frame is one poll: both RPC answers plus the local receive time the rate
// math runs on.
type frame struct {
	when   time.Time
	stats  implicate.ServerStats
	health []implicate.HealthReport
}

func poll(cl *implicate.Client) (frame, error) {
	var f frame
	var err error
	if f.stats, err = cl.Stats(); err != nil {
		return frame{}, err
	}
	if f.health, err = cl.Health(); err != nil {
		return frame{}, err
	}
	f.when = time.Now()
	return f, nil
}

// run polls the server and renders frames to out until stop closes or
// cfg.count frames have been drawn. With -coord set the fleet dashboard
// takes over (fleet.go).
func run(cfg *config, out io.Writer, stop <-chan struct{}) error {
	if cfg.coord != "" {
		return runFleet(cfg, out, stop)
	}
	cl, err := implicate.Dial(cfg.addr, nil, implicate.ClientOptions{})
	if err != nil {
		return err
	}
	defer cl.Close()
	var prev *frame
	for i := 0; cfg.count == 0 || i < cfg.count; i++ {
		if i > 0 {
			select {
			case <-stop:
				return nil
			case <-time.After(cfg.interval):
			}
		}
		cur, err := poll(cl)
		if err != nil {
			return err
		}
		if !cfg.plain {
			// Home the cursor and clear what the previous frame drew.
			fmt.Fprint(out, "\x1b[H\x1b[2J")
		}
		render(out, cfg.addr, prev, cur)
		prev = &cur
	}
	return nil
}

// render draws one dashboard frame. prev is nil on the first frame, which
// reports totals only; later frames add the rates over the elapsed wall
// time between polls.
func render(w io.Writer, addr string, prev *frame, cur frame) {
	sn := cur.stats
	fmt.Fprintf(w, "imptop — %s — %s\n\n", addr, cur.when.Format("15:04:05"))

	rate := func(delta int64, dt time.Duration) string {
		if prev == nil || dt <= 0 {
			return "-"
		}
		return fmt.Sprintf("%.0f/s", float64(delta)/dt.Seconds())
	}
	var dt time.Duration
	var dTuples, dBatches int64
	if prev != nil {
		dt = cur.when.Sub(prev.when)
		dTuples = sn.TuplesIngested - prev.stats.TuplesIngested
		dBatches = sn.Batches - prev.stats.Batches
	}
	fmt.Fprintf(w, "ingest   tuples=%d (%s)  batches=%d (%s)  rejected=%d  merges=%d\n",
		sn.TuplesIngested, rate(dTuples, dt), sn.Batches, rate(dBatches, dt),
		sn.BatchesRejected, sn.Merges)
	fmt.Fprintf(w, "queue    high-water=%d  pool-saturation=%d\n\n", sn.QueueHighWater, sn.PoolSaturation)

	fmt.Fprintf(w, "%-14s %10s %12s %12s\n", "rpc", "count", "p50", "p99")
	for r := telemetry.RPC(0); r < telemetry.NumRPCs; r++ {
		h := sn.Latency[r]
		if h.Count() == 0 {
			continue
		}
		fmt.Fprintf(w, "%-14s %10d %12v %12v\n", r, h.Count(),
			h.Quantile(0.50).Round(time.Microsecond), h.Quantile(0.99).Round(time.Microsecond))
	}

	if len(sn.Tenants) > 0 {
		fmt.Fprintf(w, "\n%-16s %10s %10s %8s %6s %6s %9s %8s\n",
			"tenant", "tuples", "batches", "rejected", "quota", "weight", "mem", "queue-hw")
		for i := range sn.Tenants {
			ts := &sn.Tenants[i]
			mem := sizeOf(ts.MemBytes)
			if ts.MemBudget > 0 {
				mem += "/" + sizeOf(ts.MemBudget)
			}
			var dTen int64
			if prev != nil {
				for j := range prev.stats.Tenants {
					if prev.stats.Tenants[j].Name == ts.Name {
						dTen = ts.Tuples - prev.stats.Tenants[j].Tuples
					}
				}
			}
			fmt.Fprintf(w, "%-16s %10s %10d %8d %6d %6d %9s %8d\n",
				ts.Name, fmt.Sprintf("%d (%s)", ts.Tuples, rate(dTen, dt)),
				ts.Batches, ts.Rejected, ts.QuotaRefusals, ts.Weight, mem, ts.QueueHighWater)
		}
	}

	if len(sn.Workers) > 0 {
		var total int64
		for _, ws := range sn.Workers {
			total += ws.Units
		}
		mean := float64(total) / float64(len(sn.Workers))
		fmt.Fprintf(w, "\n%-8s %12s %12s %8s\n", "worker", "tasks", "units", "skew")
		for i, ws := range sn.Workers {
			skew := "-"
			if mean > 0 {
				skew = fmt.Sprintf("%.2f", float64(ws.Units)/mean)
			}
			fmt.Fprintf(w, "%-8d %12d %12d %8s\n", i, ws.Tasks, ws.Units, skew)
		}
	}

	fmt.Fprintf(w, "\n%-5s %-14s %10s %9s %9s %6s %6s %8s %7s %8s\n",
		"stmt", "kind", "tuples", "entries", "mem", "fill", "lz", "fringe", "evict", "relerr")
	for _, h := range cur.health {
		kind := h.Kind
		if h.Shared {
			kind += "*"
		}
		fmt.Fprintf(w, "%-5d %-14s %10d %9d %9s %6s %6.1f %8d %7d %8s\n",
			h.Stmt, kind, h.Tuples, h.MemEntries, sizeOf(h.MemBytes),
			pct(h.BitmapFill), h.LeftmostZero, h.FringeTracked, h.FringeEvictions,
			relErr(h.RelErr))
	}
	if hasShared(cur.health) {
		fmt.Fprintf(w, "(* reads a shared estimator owned by an earlier statement)\n")
	}
}

func hasShared(health []implicate.HealthReport) bool {
	for _, h := range health {
		if h.Shared {
			return true
		}
	}
	return false
}

// pct renders a [0,1] fraction as a percentage.
func pct(v float64) string {
	return fmt.Sprintf("%.1f%%", 100*v)
}

// relErr renders the self-assessed relative error; an estimator that
// cannot bound it (empty, or exact with nothing to misestimate) shows "-".
func relErr(v float64) string {
	if math.IsInf(v, 0) || math.IsNaN(v) {
		return "-"
	}
	return fmt.Sprintf("%.3f", v)
}

// sizeOf renders a byte count with a binary unit.
func sizeOf(b int64) string {
	switch {
	case b >= 1<<20:
		return fmt.Sprintf("%.1fMiB", float64(b)/(1<<20))
	case b >= 1<<10:
		return fmt.Sprintf("%.1fKiB", float64(b)/(1<<10))
	}
	return fmt.Sprintf("%dB", b)
}
