// Package lossy implements the frequent-itemset baselines of §5: the Lossy
// Counting and Sticky Sampling algorithms of Manku & Motwani (VLDB 2002)
// and the paper's implication extensions of both — ILC (Implication Lossy
// Counting, §5.1) and implication sticky sampling. The paper extends these
// algorithms to show they cannot answer implication-count queries: their
// minimum support is inherently relative to the stream length, so the
// cumulative effect of small implications is lost as the stream grows, and
// dirty entries accumulate without bound (§5.1.1).
package lossy

import (
	"fmt"
	"sort"
)

// Counter is classic Lossy Counting over single items: it maintains
// (item, count, Δ) entries, prunes at bucket boundaries, and answers
// frequency queries with error at most ε·N.
type Counter struct {
	eps     float64
	width   int64 // bucket width w = ceil(1/ε)
	n       int64
	entries map[string]*entry
}

type entry struct {
	count int64
	delta int64
}

// NewCounter returns a Lossy Counter with approximation parameter eps.
func NewCounter(eps float64) (*Counter, error) {
	if eps <= 0 || eps >= 1 {
		return nil, fmt.Errorf("lossy: eps must be in (0,1), got %g", eps)
	}
	return &Counter{
		eps:     eps,
		width:   int64(1/eps + 0.5),
		entries: make(map[string]*entry),
	}, nil
}

// MustCounter is NewCounter panicking on error.
func MustCounter(eps float64) *Counter {
	c, err := NewCounter(eps)
	if err != nil {
		panic(err)
	}
	return c
}

// Add observes one item.
func (c *Counter) Add(item string) {
	c.n++
	bcur := (c.n-1)/c.width + 1
	if e, ok := c.entries[item]; ok {
		e.count++
	} else {
		c.entries[item] = &entry{count: 1, delta: bcur - 1}
	}
	if c.n%c.width == 0 {
		c.prune(bcur)
	}
}

func (c *Counter) prune(bcur int64) {
	for item, e := range c.entries {
		if e.count+e.delta <= bcur {
			delete(c.entries, item)
		}
	}
}

// N returns the number of items observed.
func (c *Counter) N() int64 { return c.n }

// Entries returns the number of live sample entries.
func (c *Counter) Entries() int { return len(c.entries) }

// Count returns the tracked count of item (an undercount by at most ε·N).
func (c *Counter) Count(item string) int64 {
	if e, ok := c.entries[item]; ok {
		return e.count
	}
	return 0
}

// Frequent returns all items with estimated frequency at least s·N, for a
// relative support s > ε, sorted. The guarantee: no item with true
// frequency ≥ s·N is missed, and no item below (s−ε)·N is returned.
func (c *Counter) Frequent(s float64) []string {
	threshold := (s - c.eps) * float64(c.n)
	var out []string
	for item, e := range c.entries {
		if float64(e.count) >= threshold {
			out = append(out, item)
		}
	}
	sort.Strings(out)
	return out
}
