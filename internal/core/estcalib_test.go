package core

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"implicate/internal/fm"
	"implicate/internal/imps"
)

// ciEstimate is the Algorithm-2 style estimate (difference of corrected
// position-based counts), duplicated here so the comparison cannot drift
// from the implementation under test.
func ciEstimate(s *Sketch) float64 {
	d := fm.CorrectedEstimate(s.meanR((*bitmap).rSupported), len(s.bms)) -
		fm.CorrectedEstimate(s.meanR((*bitmap).rNonImplication), len(s.bms))
	if d < 0 {
		return 0
	}
	return d
}

// TestEstimatorComparison pins down the estimator design decision documented
// in DESIGN.md: across implication/non-implication mixes the direct
// fringe-sample estimator must stay within a flat error band, the unbounded
// variant must be essentially exact, and the position-difference CI
// estimator must degrade as S/F0 shrinks (the behaviour §4.7.2 concedes).
func TestEstimatorComparison(t *testing.T) {
	cond := testConditions()
	grid := []struct {
		nImp, nNon int
		maxDirect  float64 // error budget for the bounded direct estimator
	}{
		{1000, 0, 0.20},
		{900, 100, 0.20},
		{500, 500, 0.20},
		{100, 900, 0.25},
		{5000, 5000, 0.20},
		{2000, 8000, 0.22},
		{9000, 1000, 0.20},
		{1000, 9000, 0.25},
	}
	runs := 30
	if testing.Short() {
		runs = 8
	}
	for _, g := range grid {
		var errCI, errDirect, errUnbounded float64
		for run := 0; run < runs; run++ {
			sk := MustSketch(cond, Options{Seed: uint64(run*131 + 7)})
			un := MustSketch(cond, Options{Seed: uint64(run*131 + 7), Unbounded: true})
			rng := rand.New(rand.NewSource(int64(run*977 + 3)))
			feedWorkload(rng, []imps.Estimator{sk, un}, cond, g.nImp, g.nNon, int(cond.MinSupport)+4)
			truth := float64(g.nImp)
			errCI += math.Abs(ciEstimate(sk)-truth) / truth
			errDirect += math.Abs(sk.ImplicationCount()-truth) / truth
			errUnbounded += math.Abs(un.ImplicationCount()-truth) / truth
		}
		errCI /= float64(runs)
		errDirect /= float64(runs)
		errUnbounded /= float64(runs)
		name := fmt.Sprintf("imp=%d non=%d", g.nImp, g.nNon)
		if errDirect > g.maxDirect {
			t.Errorf("%s: direct estimator error %.3f exceeds %.2f", name, errDirect, g.maxDirect)
		}
		if errUnbounded > 0.02 {
			t.Errorf("%s: unbounded direct estimator error %.3f, want ≈0", name, errUnbounded)
		}
		// At heavily non-implication-dominated mixes the CI subtraction must
		// be visibly worse than the direct sample — that asymmetry is the
		// reason ImplicationCount uses the direct estimator.
		if g.nImp*4 <= g.nNon && errCI < errDirect {
			t.Errorf("%s: CI estimator (%.3f) unexpectedly beat the direct one (%.3f)", name, errCI, errDirect)
		}
	}
}
