package query

import (
	"fmt"
	"strconv"
	"strings"
)

// String renders the query back into the SQL-like dialect. A normalized
// query parses back to itself (modulo whitespace), which the tests pin
// down; it is also how statements describe themselves in logs and tools.
func (q Query) String() string {
	var b strings.Builder
	attrs := strings.Join(q.A, ", ")
	if q.Mode == AvgMultiplicity {
		fmt.Fprintf(&b, "SELECT AVG(MULTIPLICITY(%s)) FROM %s", attrs, q.fromName())
	} else {
		fmt.Fprintf(&b, "SELECT COUNT(DISTINCT %s) FROM %s", attrs, q.fromName())
	}
	if q.Mode == CountDistinct {
		return b.String()
	}

	b.WriteString(" WHERE ")
	b.WriteString(attrs)
	if q.Mode == CountNonImplications {
		b.WriteString(" NOT")
	}
	b.WriteString(" IMPLIES ")
	b.WriteString(strings.Join(q.B, ", "))

	for _, f := range q.Filters {
		op := "="
		if f.Negate {
			op = "!="
		}
		fmt.Fprintf(&b, " AND %s %s '%s'", f.Attr, op, f.Value)
	}
	if len(q.GroupBy) > 0 {
		fmt.Fprintf(&b, " GROUP BY %s", strings.Join(q.GroupBy, ", "))
	}

	var with []string
	if q.Cond.MinSupport > 1 {
		with = append(with, fmt.Sprintf("SUPPORT >= %d", q.Cond.MinSupport))
	}
	if q.Cond.MaxMultiplicity > 1 {
		with = append(with, fmt.Sprintf("MULTIPLICITY <= %d", q.Cond.MaxMultiplicity))
	}
	if q.Cond.MinTopConfidence > 0 && q.Cond.MinTopConfidence < 1 || q.Cond.TopC > 1 {
		conf := strconv.FormatFloat(q.Cond.MinTopConfidence, 'g', -1, 64)
		clause := fmt.Sprintf("CONFIDENCE >= %s", conf)
		if q.Cond.TopC > 1 {
			clause += fmt.Sprintf(" TOP %d", q.Cond.TopC)
		}
		with = append(with, clause)
	}
	if len(with) > 0 {
		b.WriteString(" WITH ")
		b.WriteString(strings.Join(with, ", "))
	}

	if q.Window > 0 {
		fmt.Fprintf(&b, " WINDOW %d", q.Window)
		if q.Every > 0 {
			fmt.Fprintf(&b, " EVERY %d", q.Every)
		}
	}
	return b.String()
}

func (q Query) fromName() string {
	if q.From == "" {
		return "stream"
	}
	return q.From
}
