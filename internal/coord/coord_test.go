package coord

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"implicate/internal/checkpoint"
	"implicate/internal/client"
	"implicate/internal/core"
	"implicate/internal/imps"
	"implicate/internal/proto"
	"implicate/internal/query"
	"implicate/internal/server"
	"implicate/internal/stream"
)

// The fleet's statement set: statement 0's A-projection is the route key.
// Both statements must be plain fixed-seed sketches — the merge fan-in
// requires it — and their conditions differ so they never share.
var fleetSQL = []string{
	`SELECT COUNT(DISTINCT A) FROM t WHERE A IMPLIES B WITH SUPPORT >= 2, MULTIPLICITY <= 2, CONFIDENCE >= 0.8 TOP 1`,
	`SELECT COUNT(DISTINCT A) FROM t WHERE A IMPLIES B WITH SUPPORT >= 3, MULTIPLICITY <= 2, CONFIDENCE >= 0.8 TOP 1`,
}

const fleetSeed = 11

func fleetSchema(t *testing.T) *stream.Schema {
	t.Helper()
	s, err := stream.NewSchema("A", "B")
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// fleet is an in-process leaf fleet with checkpointed servers and a
// restart-from-checkpoint hook — the harness both the kill tests and the
// shadow comparison run on.
type fleet struct {
	t      *testing.T
	schema *stream.Schema
	dir    string

	// traceSpans, when positive, arms every leaf's span ring (and, via
	// startCoordinator, the coordinator's) — the trace-aware fleet the
	// cross-node trace tests run on.
	traceSpans int

	mu      sync.Mutex
	servers map[string]*server.Server
}

func newFleet(t *testing.T, schema *stream.Schema) *fleet {
	return &fleet{t: t, schema: schema, dir: t.TempDir(), servers: make(map[string]*server.Server)}
}

func (f *fleet) backend() query.Backend {
	return func(cond imps.Conditions) (imps.Estimator, error) {
		return core.NewSketch(cond, core.Options{Seed: fleetSeed})
	}
}

func (f *fleet) engine() (*query.Engine, error) {
	eng := query.NewEngine(f.schema)
	for _, sql := range fleetSQL {
		if _, err := eng.RegisterSQL(sql, f.backend()); err != nil {
			return nil, err
		}
	}
	return eng, nil
}

func (f *fleet) ckptPath(name string) string { return filepath.Join(f.dir, name+".ckpt") }

func (f *fleet) listen(name string, eng *query.Engine) (string, error) {
	srv, err := server.Listen(server.Config{
		Addr:            "127.0.0.1:0",
		Schema:          f.schema,
		Engine:          eng,
		Workers:         2,
		CheckpointPath:  f.ckptPath(name),
		CheckpointEvery: 700,
		TraceSpans:      f.traceSpans,
	})
	if err != nil {
		return "", err
	}
	f.mu.Lock()
	f.servers[name] = srv
	f.mu.Unlock()
	return srv.Addr(), nil
}

// start boots a fresh leaf.
func (f *fleet) start(name string) string {
	f.t.Helper()
	eng, err := f.engine()
	if err != nil {
		f.t.Fatal(err)
	}
	addr, err := f.listen(name, eng)
	if err != nil {
		f.t.Fatal(err)
	}
	return addr
}

// restart is the coordinator's recovery hook: rebuild the leaf's engine
// from its latest checkpoint (fresh when it never checkpointed) and listen
// on a NEW port — recovery must not depend on the address surviving.
func (f *fleet) restart(name string) (string, error) {
	f.mu.Lock()
	old := f.servers[name]
	f.mu.Unlock()
	if old != nil {
		old.Kill() // idempotent when the test already killed it
	}
	var eng *query.Engine
	snap, err := checkpoint.Read(f.ckptPath(name))
	switch {
	case err == nil:
		eng, err = checkpoint.Restore(snap, f.schema, func(q query.Query, kind string) (query.Backend, error) {
			return f.backend(), nil
		})
		if err != nil {
			return "", err
		}
	case errors.Is(err, os.ErrNotExist):
		if eng, err = f.engine(); err != nil {
			return "", err
		}
	default:
		return "", err
	}
	return f.listen(name, eng)
}

func (f *fleet) kill(name string) {
	f.mu.Lock()
	srv := f.servers[name]
	f.mu.Unlock()
	if srv == nil {
		f.t.Fatalf("no leaf %s to kill", name)
	}
	srv.Kill()
}

func (f *fleet) closeAll() {
	f.mu.Lock()
	defer f.mu.Unlock()
	for _, srv := range f.servers {
		srv.Kill()
	}
}

// startCoordinator builds a coordinator over n fresh leaves of fl.
func startCoordinator(t *testing.T, fl *fleet, n int, prefix string) *Coordinator {
	t.Helper()
	specs := make([]LeafSpec, n)
	for i := range specs {
		name := fmt.Sprintf("%s%d", prefix, i)
		specs[i] = LeafSpec{Name: name, Addr: fl.start(name)}
	}
	co, err := New(Config{
		Schema:            fl.schema,
		Statements:        fleetSQL,
		Leaves:            specs,
		VirtualPartitions: 64,
		FlushTuples:       100,
		ProbeEvery:        10 * time.Millisecond,
		ProbeTimeout:      250 * time.Millisecond,
		ProbeFails:        2,
		Restart:           fl.restart,
		ClientOptions:     client.Options{Conns: 1},
		Logf:              t.Logf,
		TraceSpans:        fl.traceSpans,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { co.Close() })
	return co
}

// fleetTuples is the test stream: enough key repetition to exercise
// sketch overflow behavior, deterministic by construction.
func fleetTuples(n int) []stream.Tuple {
	ts := make([]stream.Tuple, n)
	for i := range ts {
		ts[i] = stream.Tuple{fmt.Sprintf("s%d", i%97), fmt.Sprintf("d%d", (i*7)%13)}
	}
	return ts
}

// TestKillAndRecoverBitIdentity is the fleet's determinism contract: kill
// one leaf mid-stream, and after recovery the coordinator's merged root
// state — the marshalled merged sketch, the counts, the tuple totals — is
// bit-identical to an uncrashed shadow fleet fed the same stream.
func TestKillAndRecoverBitIdentity(t *testing.T) {
	for _, leaves := range []int{2, 4} {
		for _, victim := range []int{0, leaves - 1} {
			t.Run(fmt.Sprintf("leaves=%d/kill=%d", leaves, victim), func(t *testing.T) {
				schema := fleetSchema(t)
				flMain := newFleet(t, schema)
				flShadow := newFleet(t, schema)
				t.Cleanup(flMain.closeAll)
				t.Cleanup(flShadow.closeAll)

				main := startCoordinator(t, flMain, leaves, "leaf")
				shadow := startCoordinator(t, flShadow, leaves, "leaf") // same names: identical routing

				tuples := fleetTuples(6000)
				const chunk = 250
				killAt := len(tuples) / 3
				for off := 0; off < len(tuples); off += chunk {
					end := min(off+chunk, len(tuples))
					if err := main.Ingest(tuples[off:end]); err != nil {
						t.Fatal(err)
					}
					if err := shadow.Ingest(tuples[off:end]); err != nil {
						t.Fatal(err)
					}
					if off <= killAt && killAt < end {
						flMain.kill(fmt.Sprintf("leaf%d", victim))
					}
				}
				if err := main.Flush(); err != nil {
					t.Fatalf("main flush: %v", err)
				}
				if err := shadow.Flush(); err != nil {
					t.Fatalf("shadow flush: %v", err)
				}

				for stmt := range fleetSQL {
					got, err := main.Snapshot(stmt)
					if err != nil {
						t.Fatalf("main snapshot %d: %v", stmt, err)
					}
					want, err := shadow.Snapshot(stmt)
					if err != nil {
						t.Fatalf("shadow snapshot %d: %v", stmt, err)
					}
					if got.Tuples != int64(len(tuples)) {
						t.Errorf("stmt %d: merged tuples %d, want %d", stmt, got.Tuples, len(tuples))
					}
					if !bytes.Equal(got.Sketch, want.Sketch) {
						t.Errorf("stmt %d: merged sketch diverged from the uncrashed shadow", stmt)
					}
					gq, err := main.Query(stmt)
					if err != nil {
						t.Fatal(err)
					}
					wq, err := shadow.Query(stmt)
					if err != nil {
						t.Fatal(err)
					}
					if math.Float64bits(gq.Count) != math.Float64bits(wq.Count) {
						t.Errorf("stmt %d: count %v, shadow %v", stmt, gq.Count, wq.Count)
					}
				}

				st := main.Status()
				if got := st.Leaves[victim]; got.State != proto.LeafUp || got.Epoch < 1 {
					t.Errorf("killed leaf status = state %d epoch %d, want up with epoch >= 1", got.State, got.Epoch)
				}
				var parts uint32
				var journaled int64
				for _, l := range st.Leaves {
					parts += l.Parts
					journaled += l.Journaled
				}
				if parts != st.VirtualPartitions {
					t.Errorf("leaves own %d partitions, route table has %d", parts, st.VirtualPartitions)
				}
				if journaled != int64(len(tuples)) {
					t.Errorf("journals cover %d tuples, ingested %d", journaled, len(tuples))
				}
			})
		}
	}
}

// TestFrontendServesWireProtocol drives a coordinator through its TCP
// front-end with the ordinary pooled client: ingest, query, snapshot,
// cluster — and checks the merged answers equal a serial single-engine run
// of the same stream.
func TestFrontendServesWireProtocol(t *testing.T) {
	schema := fleetSchema(t)
	fl := newFleet(t, schema)
	t.Cleanup(fl.closeAll)
	co := startCoordinator(t, fl, 3, "leaf")
	fe, err := Serve(co, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { fe.Close() })

	cl, err := client.Dial(fe.Addr(), schema, client.Options{Conns: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })

	tuples := fleetTuples(2000)
	serial, err := fl.engine()
	if err != nil {
		t.Fatal(err)
	}
	const chunk = 400
	for off := 0; off < len(tuples); off += chunk {
		end := min(off+chunk, len(tuples))
		if err := cl.IngestBatch(tuples[off:end]); err != nil {
			t.Fatal(err)
		}
		serial.ProcessBatch(tuples[off:end])
	}
	if err := co.Flush(); err != nil {
		t.Fatal(err)
	}

	for stmt := range fleetSQL {
		q, err := cl.Query(stmt)
		if err != nil {
			t.Fatal(err)
		}
		if q.Tuples != int64(len(tuples)) {
			t.Errorf("stmt %d: tuples %d, want %d", stmt, q.Tuples, len(tuples))
		}
		want := serial.Statements()[stmt].Count()
		if math.Float64bits(q.Count) != math.Float64bits(want) {
			t.Errorf("stmt %d: merged count %v, serial count %v", stmt, q.Count, want)
		}
		snap, err := cl.Snapshot(stmt)
		if err != nil {
			t.Fatal(err)
		}
		if snap.Kind != "nips" {
			t.Errorf("stmt %d: snapshot kind %q, want nips", stmt, snap.Kind)
		}
	}

	cs, err := cl.Cluster()
	if err != nil {
		t.Fatal(err)
	}
	if len(cs.Leaves) != 3 || cs.VirtualPartitions != 64 {
		t.Errorf("cluster status = %d leaves / %d partitions, want 3/64", len(cs.Leaves), cs.VirtualPartitions)
	}
	if err := cl.Ping(time.Second); err != nil {
		t.Errorf("ping through the front-end: %v", err)
	}
}

// TestRouteTableRendezvousStability: growing the fleet may move partitions
// only TO the new leaf — survivors keep everything they had.
func TestRouteTableRendezvousStability(t *testing.T) {
	schema := fleetSchema(t)
	names := []string{"a", "b", "c"}
	rt3, err := newRouteTable(schema, []string{"A"}, nil, 128, names)
	if err != nil {
		t.Fatal(err)
	}
	rt4, err := newRouteTable(schema, []string{"A"}, nil, 128, append(names, "d"))
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	for p := 0; p < 128; p++ {
		if rt4.owner[p] != rt3.owner[p] {
			if rt4.owner[p] != 3 {
				t.Fatalf("partition %d moved from leaf %d to surviving leaf %d", p, rt3.owner[p], rt4.owner[p])
			}
			moved++
		}
	}
	if moved == 0 {
		t.Error("adding a leaf moved no partitions at all")
	}
	if moved > 128/2 {
		t.Errorf("adding one leaf to three moved %d/128 partitions", moved)
	}
}

// TestRouteTableValidation rejects the configurations the arithmetic
// silently breaks on.
func TestRouteTableValidation(t *testing.T) {
	schema := fleetSchema(t)
	if _, err := newRouteTable(schema, []string{"A"}, nil, 48, []string{"a"}); err == nil {
		t.Error("non-power-of-two partition count accepted")
	}
	if _, err := newRouteTable(schema, []string{"A"}, nil, 2, []string{"a", "b", "c"}); err == nil {
		t.Error("fewer partitions than leaves accepted")
	}
	if _, err := newRouteTable(schema, []string{"nope"}, nil, 16, []string{"a"}); err == nil {
		t.Error("unknown route attribute accepted")
	}
}

// TestCoordinatorRejectsWindowedStatements: windowed state cannot merge.
func TestCoordinatorRejectsWindowedStatements(t *testing.T) {
	schema := fleetSchema(t)
	_, err := New(Config{
		Schema:     schema,
		Statements: []string{`SELECT COUNT(DISTINCT A) FROM t WHERE A IMPLIES B WITH SUPPORT >= 2, MULTIPLICITY <= 2, CONFIDENCE >= 0.8 TOP 1 WINDOW 100`},
		Leaves:     []LeafSpec{{Name: "a", Addr: "127.0.0.1:1"}},
	})
	if err == nil {
		t.Fatal("windowed statement accepted")
	}
}
