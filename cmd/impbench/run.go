package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"implicate/internal/experiments"
)

type config struct {
	exp        string
	paper      bool
	runs       int
	seed       int64
	cards      string
	parallel   int
	jsonOut    string
	workers    string
	procs      string
	transports string
	window     int
	leaves     int
	tenants    int
	shards     int
	gate       string
}

func parseFlags(args []string) (*config, error) {
	fs := flag.NewFlagSet("impbench", flag.ContinueOnError)
	cfg := &config{}
	fs.StringVar(&cfg.exp, "exp", "all",
		"experiment: fig4, fig5, fig6, fig7a, fig7b, table3, table4, table5, ablations, ingest, serve, obs, all")
	fs.BoolVar(&cfg.paper, "paper", false, "use the paper's full-scale configuration")
	fs.IntVar(&cfg.runs, "runs", 0, "override repetitions per point")
	fs.Int64Var(&cfg.seed, "seed", 1, "experiment seed")
	fs.StringVar(&cfg.cards, "cards", "", "override the Dataset One |A| sweep (comma-separated)")
	fs.IntVar(&cfg.parallel, "parallel", 0, "ingest producers (default GOMAXPROCS)")
	fs.StringVar(&cfg.jsonOut, "json", "", "also write the ingest/serve rows as JSON to this file (last selected experiment wins)")
	fs.StringVar(&cfg.workers, "workers", "", "override the serve experiment's pool-size sweep (comma-separated)")
	fs.StringVar(&cfg.procs, "procs", "", "GOMAXPROCS sweep for ingest/serve/obs (comma-separated; default: current setting)")
	fs.StringVar(&cfg.transports, "transports", "", "serve experiment transports (comma-separated from tcp,udp; default both)")
	fs.IntVar(&cfg.window, "window", 0, "serve experiment per-producer pipelining window in batches (default 16)")
	fs.IntVar(&cfg.leaves, "leaves", 0, "serve/obs fleet mode: a coordinator fronting N leaf servers (serve: replaces the transport sweep; obs: adds fleet rows after the single-server pair); 0: single server")
	fs.IntVar(&cfg.tenants, "tenants", 0, "serve experiment multi-tenant rows: one server hosting N named tenants, producers pinned round-robin; 0: off")
	fs.IntVar(&cfg.shards, "dispatch-shards", 0, "serve experiment fair-dispatch shard count per lane (0: 1, the single-dispatcher path)")
	fs.StringVar(&cfg.gate, "gate", "", "compare serve throughput against this baseline JSON and fail on a >25% regression")
	if err := fs.Parse(args); err != nil {
		return nil, err
	}
	return cfg, nil
}

// run executes the selected experiments, writing the paper-style tables to
// w. It returns an error for unknown experiment names.
func run(cfg *config, w io.Writer) error {
	wanted := map[string]bool{}
	for _, e := range strings.Split(cfg.exp, ",") {
		wanted[strings.TrimSpace(e)] = true
	}
	want := func(name string) bool { return wanted["all"] || wanted[name] }
	ran := false

	intList := func(flagName, v string) ([]int, error) {
		if v == "" {
			return nil, nil
		}
		var out []int
		for _, s := range strings.Split(v, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				return nil, fmt.Errorf("bad %s value %q", flagName, s)
			}
			out = append(out, n)
		}
		return out, nil
	}
	procs, err := intList("-procs", cfg.procs)
	if err != nil {
		return err
	}

	datasetOne := func(figure string, c int) error {
		dcfg := experiments.DatasetOneConfig{C: c, Seed: cfg.seed, Runs: cfg.runs}
		if cfg.paper {
			dcfg.Cards = []int{100, 1000, 10000, 100000}
			dcfg.Fracs = []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}
			if dcfg.Runs == 0 {
				dcfg.Runs = 100
			}
		} else {
			dcfg.Cards = []int{100, 1000, 10000}
			dcfg.Fracs = []float64{0.1, 0.3, 0.5, 0.7, 0.9}
		}
		if cfg.cards != "" {
			dcfg.Cards = nil
			for _, c := range strings.Split(cfg.cards, ",") {
				n, err := strconv.Atoi(strings.TrimSpace(c))
				if err != nil {
					return fmt.Errorf("bad -cards value %q", c)
				}
				dcfg.Cards = append(dcfg.Cards, n)
			}
		}
		if dcfg.Runs == 0 {
			dcfg.Runs = 5
		}
		start := time.Now()
		rows, err := experiments.RunDatasetOne(dcfg)
		if err != nil {
			return err
		}
		experiments.PrintDatasetOne(w, figure, c, rows)
		fmt.Fprintf(w, "(%d runs/point, %v)\n\n", dcfg.Runs, time.Since(start).Round(time.Millisecond))
		return nil
	}

	fig7 := func(wl experiments.Workload) error {
		for _, tau := range []int64{5, 50} {
			ocfg := experiments.OLAPConfig{Workload: wl, Tau: tau, Seed: cfg.seed}
			if !cfg.paper {
				ocfg.Checkpoints = []int64{134576, 672771, 1344591}
			}
			start := time.Now()
			rows, err := experiments.RunOLAP(ocfg)
			if err != nil {
				return err
			}
			experiments.PrintOLAP(w, ocfg, rows)
			fmt.Fprintf(w, "(%v)\n\n", time.Since(start).Round(time.Millisecond))
		}
		return nil
	}

	if want("table3") {
		ran = true
		experiments.PrintTable3(w)
		fmt.Fprintln(w)
	}
	if want("table5") {
		ran = true
		experiments.DefaultTable5().Print(w)
		fmt.Fprintln(w)
	}
	if want("fig4") {
		ran = true
		if err := datasetOne("Figure 4", 1); err != nil {
			return err
		}
	}
	if want("fig5") {
		ran = true
		if err := datasetOne("Figure 5", 2); err != nil {
			return err
		}
	}
	if want("fig6") {
		ran = true
		if err := datasetOne("Figure 6", 4); err != nil {
			return err
		}
	}
	if want("table4") {
		ran = true
		checkpoints := experiments.PaperCheckpoints()
		if !cfg.paper {
			checkpoints = checkpoints[:3]
		}
		start := time.Now()
		rows, err := experiments.RunTable4(checkpoints, cfg.seed)
		if err != nil {
			return err
		}
		experiments.PrintTable4(w, rows)
		fmt.Fprintf(w, "(%v)\n\n", time.Since(start).Round(time.Millisecond))
	}
	if want("fig7a") {
		ran = true
		if err := fig7(experiments.WorkloadA); err != nil {
			return err
		}
	}
	if want("fig7b") {
		ran = true
		if err := fig7(experiments.WorkloadB); err != nil {
			return err
		}
	}
	if want("ablations") {
		ran = true
		acfg := experiments.AblationConfig{Seed: cfg.seed, Runs: cfg.runs}
		if cfg.paper {
			acfg.CardA = 20000
			if acfg.Runs == 0 {
				acfg.Runs = 20
			}
		}
		if rows, err := experiments.RunFringeAblation(acfg, nil); err != nil {
			return err
		} else {
			experiments.PrintFringeAblation(w, rows)
			fmt.Fprintln(w)
		}
		if rows, err := experiments.RunBitmapAblation(acfg, nil); err != nil {
			return err
		} else {
			experiments.PrintBitmapAblation(w, rows)
			fmt.Fprintln(w)
		}
		if rows, err := experiments.RunSlackAblation(acfg, nil); err != nil {
			return err
		} else {
			experiments.PrintSlackAblation(w, rows)
			fmt.Fprintln(w)
		}
		if rows, err := experiments.RunLemma2(acfg, nil, nil); err != nil {
			return err
		} else {
			experiments.PrintLemma2(w, rows)
			fmt.Fprintln(w)
		}
		if rows, err := experiments.RunEstimatorAblation(acfg, nil); err != nil {
			return err
		} else {
			experiments.PrintEstimatorAblation(w, rows)
			fmt.Fprintln(w)
		}
	}

	if want("ingest") {
		ran = true
		icfg := experiments.IngestConfig{
			Tuples:    500_000,
			Producers: cfg.parallel,
			Procs:     procs,
			Seed:      cfg.seed,
		}
		if cfg.paper {
			icfg.Tuples = 5_000_000
		}
		start := time.Now()
		rows, err := experiments.RunIngest(icfg)
		if err != nil {
			return err
		}
		experiments.PrintIngest(w, icfg, rows)
		fmt.Fprintf(w, "(%v)\n\n", time.Since(start).Round(time.Millisecond))
		if cfg.jsonOut != "" {
			f, err := os.Create(cfg.jsonOut)
			if err != nil {
				return err
			}
			if err := experiments.WriteIngestJSON(f, icfg, rows); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
		}
	}

	if want("serve") {
		ran = true
		scfg := experiments.ServeConfig{
			Seed:           cfg.seed,
			Producers:      cfg.parallel,
			Procs:          procs,
			Window:         cfg.window,
			Leaves:         cfg.leaves,
			Tenants:        cfg.tenants,
			DispatchShards: cfg.shards,
		}
		if cfg.paper {
			scfg.Tuples = 2_000_000
		}
		if cfg.transports != "" {
			for _, t := range strings.Split(cfg.transports, ",") {
				scfg.Transports = append(scfg.Transports, strings.TrimSpace(t))
			}
		}
		workers, err := intList("-workers", cfg.workers)
		if err != nil {
			return err
		}
		scfg.Workers = workers
		start := time.Now()
		rows, err := experiments.RunServe(scfg)
		if err != nil {
			return err
		}
		experiments.PrintServe(w, scfg, rows)
		fmt.Fprintf(w, "(%v)\n\n", time.Since(start).Round(time.Millisecond))
		if cfg.gate != "" {
			f, err := os.Open(cfg.gate)
			if err != nil {
				return err
			}
			gateErr := experiments.GateServe(f, rows, 0.25)
			f.Close()
			if gateErr != nil {
				return gateErr
			}
			fmt.Fprintf(w, "gate: within 25%% of %s\n\n", cfg.gate)
		}
		if cfg.jsonOut != "" {
			f, err := os.Create(cfg.jsonOut)
			if err != nil {
				return err
			}
			if err := experiments.WriteServeJSON(f, scfg, rows); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
		}
	}

	if want("obs") {
		ran = true
		ocfg := experiments.ObsConfig{Seed: cfg.seed, Producers: cfg.parallel, Procs: procs, Leaves: cfg.leaves}
		if cfg.paper {
			ocfg.Tuples = 2_000_000
		}
		start := time.Now()
		rows, err := experiments.RunObs(ocfg)
		if err != nil {
			return err
		}
		experiments.PrintObs(w, ocfg, rows)
		fmt.Fprintf(w, "(%v)\n\n", time.Since(start).Round(time.Millisecond))
		if cfg.jsonOut != "" {
			f, err := os.Create(cfg.jsonOut)
			if err != nil {
				return err
			}
			if err := experiments.WriteObsJSON(f, ocfg, rows); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
		}
	}

	if !ran {
		return fmt.Errorf("unknown experiment %q", cfg.exp)
	}
	return nil
}
