// Approxdep validates approximate functional dependencies over an evolving
// relation, the §2 "Approximate Dependencies" application. A functional
// dependency A → B holds exactly when every A-value maps to one B-value;
// an approximate dependency tolerates exceptions. The implication count
// with (K=1, ψ, c=1) counts the A-values whose dependency holds at least a
// ψ fraction of the time, so the ratio count/F0sup is the dependency's
// validity — maintained incrementally on updates instead of rescanning the
// relation (§1 notes the algorithms run off incremental updates just as
// well as off streams).
package main

import (
	"fmt"
	"log"
	"math/rand"
	"strconv"

	"implicate"
)

func main() {
	const updates = 600_000

	// The relation: updates to an employee table; we watch the dependency
	// ZipCode → City. 97% of updates are consistent with the city map; 3%
	// are data-entry errors, plus a block of "moved cities" zips whose
	// dependency genuinely breaks. The confidence floor of 0.8 leaves the
	// 3% noise a comfortable margin — §3.1.1's "once violated, forever
	// out" rule means ψ must sit well below the dependency's natural
	// confidence, or running fluctuations eventually disqualify everything.
	cond := implicate.Conditions{
		// The multiplicity bound must absorb the noise's DIVERSITY, not
		// just its rate: a 3% error rate over hundreds of updates touches
		// dozens of distinct wrong cities, and the multiplicity condition
		// (unlike confidence) has no tolerance parameter. K=32 leaves room
		// for them while still rejecting genuinely split zips early.
		MaxMultiplicity:  32,
		MinSupport:       20,  // ignore barely-touched zips
		TopC:             1,   // the dependency maps each zip to ONE city
		MinTopConfidence: 0.8, // ...at least 80% of the time
	}
	sketch, err := implicate.NewSketch(cond, implicate.Options{Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	exact, err := implicate.NewExact(cond)
	if err != nil {
		log.Fatal(err)
	}

	const zips = 2_000
	cityOf := make([]int, zips)
	rng := rand.New(rand.NewSource(3))
	for z := range cityOf {
		cityOf[z] = rng.Intn(400)
	}
	brokenFrom := zips * 9 / 10 // the last 10% of zips have split ownership

	fmt.Println("approxdep: validity of the dependency ZipCode -> City (ψ=0.8)")
	for i := 1; i <= updates; i++ {
		z := rng.Intn(zips)
		city := cityOf[z]
		switch {
		case z >= brokenFrom && rng.Float64() < 0.5:
			city = cityOf[z] + 1000 // genuinely split zip: second city half the time
		case rng.Float64() < 0.03:
			city = rng.Intn(400) // sporadic data-entry error
		}
		zk, ck := strconv.Itoa(z), strconv.Itoa(city)
		sketch.Add(zk, ck)
		exact.Add(zk, ck)

		if i%100_000 == 0 {
			estHold := sketch.ImplicationCount()
			estSupp := sketch.SupportedDistinct()
			trueHold := exact.ImplicationCount()
			trueSupp := exact.SupportedDistinct()
			fmt.Printf("  after %7d updates: dependency holds for %5.0f/%5.0f zips (validity %.2f)"+
				"  [exact %5.0f/%5.0f = %.2f]\n",
				i, estHold, estSupp, estHold/estSupp,
				trueHold, trueSupp, trueHold/trueSupp)
		}
	}
	fmt.Printf("approxdep: sketch used %d counter entries; exact ground truth used %d\n",
		sketch.MemEntries(), exact.MemEntries())
}
