// Partition routing for the coordinator (DESIGN.md §13): tuple → route key
// → virtual partition → leaf.
//
// The route key is the template statement's A-projection (A attributes plus
// GROUP BY, the same key its estimators hash), so all tuples of one itemset
// land on one leaf and every leaf's sketch sees a disjoint key population.
// Keys map to a fixed power-of-two number of virtual partitions through the
// imps.PartitionedAdder IngestPartition contract — the same stable
// key→partition mapping the in-process pipeline plans with — and virtual
// partitions map to leaves by rendezvous hashing over the stable leaf
// names, so growing the fleet moves only the partitions the new leaf wins.
//
// The table is immutable after construction, and deliberately blind to
// liveness: a dead leaf keeps its partitions, and its traffic queues in its
// journal until recovery re-admits it. Routing around failures would make
// the tuple→leaf assignment depend on failure timing, and the fleet's
// bit-identity contract (a crashed-and-recovered fleet equals an uncrashed
// shadow) forbids exactly that.
package coord

import (
	"fmt"

	"implicate/internal/stream"
	"implicate/internal/xhash"
)

// Partitioner maps an encoded route key to one of n partitions, n a power
// of two >= 1, with the imps.PartitionedAdder IngestPartition contract:
// every key maps to exactly one partition for a given n. Any
// imps.PartitionedAdder satisfies it; the default is an xhash router with a
// fixed seed, so two coordinators configured alike route alike.
type Partitioner interface {
	IngestPartition(a []byte, n int) int
}

// routeSeed fixes the default router's hash so routing is a pure function
// of configuration — a coordinator restart, or a shadow fleet, routes
// identically.
const routeSeed = 0x1cde2005

// hashRouter is the default Partitioner.
type hashRouter struct{ h xhash.Hash }

func (r hashRouter) IngestPartition(a []byte, n int) int {
	return int(r.h.SumBytes(a) & uint64(n-1))
}

// routeTable is the immutable partition→leaf assignment.
type routeTable struct {
	parts int
	part  Partitioner
	proj  stream.Proj
	owner []int    // virtual partition → leaf index
	share []uint32 // leaf index → partitions owned
}

func newRouteTable(schema *stream.Schema, attrs []string, part Partitioner, parts int, names []string) (*routeTable, error) {
	if parts < 1 || parts&(parts-1) != 0 {
		return nil, fmt.Errorf("coord: %d virtual partitions; must be a power of two >= 1", parts)
	}
	if len(names) < 1 {
		return nil, fmt.Errorf("coord: a fleet needs at least one leaf")
	}
	if parts < len(names) {
		return nil, fmt.Errorf("coord: %d virtual partitions cannot cover %d leaves", parts, len(names))
	}
	proj, err := schema.Proj(attrs...)
	if err != nil {
		return nil, fmt.Errorf("coord: route key: %w", err)
	}
	if part == nil {
		part = hashRouter{h: xhash.New(routeSeed)}
	}
	rt := &routeTable{
		parts: parts,
		part:  part,
		proj:  proj,
		owner: make([]int, parts),
		share: make([]uint32, len(names)),
	}
	// Rendezvous assignment: each partition goes to the leaf whose
	// (partition, name) score is highest. Stable under fleet growth — a new
	// name only claims the partitions it out-scores everyone on.
	nameH := make([]uint64, len(names))
	for i, n := range names {
		nameH[i] = xhash.New(routeSeed).Sum(n)
	}
	for p := 0; p < parts; p++ {
		ph := xhash.Mix(uint64(p) + 1)
		best, bestScore := 0, uint64(0)
		for i, nh := range nameH {
			if score := xhash.Mix(ph ^ nh); score > bestScore || (score == bestScore && i < best) {
				best, bestScore = i, score
			}
		}
		rt.owner[p] = best
		rt.share[best]++
	}
	return rt, nil
}

// leafOf routes one tuple: the leaf index that must ingest it, plus the
// reusable key scratch.
func (rt *routeTable) leafOf(t stream.Tuple, scratch []byte) (int, []byte) {
	key := rt.proj.AppendKey(scratch[:0], t)
	return rt.owner[rt.part.IngestPartition(key, rt.parts)], key
}
