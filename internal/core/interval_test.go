package core

import (
	"math/rand"
	"testing"

	"implicate/internal/imps"
)

func TestIntervalEmpty(t *testing.T) {
	s := MustSketch(testConditions(), Options{Seed: 1})
	lo, hi := s.ImplicationCountInterval(2)
	if lo != 0 || hi <= 0 || hi > 3 {
		t.Fatalf("empty sketch interval = [%v,%v], want [0, small]", lo, hi)
	}
}

func TestIntervalBracketsEstimate(t *testing.T) {
	s := MustSketch(testConditions(), Options{Seed: 2})
	for i := 0; i < 1000; i++ {
		for k := 0; k < 4; k++ {
			s.AddIDs(uint64(i), uint64(i))
		}
	}
	est := s.ImplicationCount()
	lo, hi := s.ImplicationCountInterval(2)
	if !(lo <= est && est <= hi) {
		t.Fatalf("interval [%v,%v] does not bracket the estimate %v", lo, hi, est)
	}
	lo1, hi1 := s.ImplicationCountInterval(1)
	if hi1-lo1 >= hi-lo {
		t.Fatalf("z=1 interval [%v,%v] not narrower than z=2 [%v,%v]", lo1, hi1, lo, hi)
	}
}

// TestIntervalCoverage checks the z=2 interval covers the true count in a
// clear majority of repeated runs (the Gaussian/Poisson approximations and
// the weighted sample make exactly 95% unattainable, but coverage far below
// ~3/4 would mean the variance model is broken).
func TestIntervalCoverage(t *testing.T) {
	cond := imps.Conditions{MaxMultiplicity: 2, MinSupport: 4, TopC: 1, MinTopConfidence: 0.8}
	const truth = 1500
	const runs = 40
	covered := 0
	for run := 0; run < runs; run++ {
		s := MustSketch(cond, Options{Seed: uint64(run*37 + 5)})
		rng := rand.New(rand.NewSource(int64(run)))
		type pair struct{ a, b uint64 }
		var tuples []pair
		for i := 0; i < truth; i++ {
			for k := 0; k < 6; k++ {
				tuples = append(tuples, pair{uint64(i), uint64(1000000 + i)})
			}
		}
		for i := 0; i < 1500; i++ { // violators
			for k := 0; k < 6; k++ {
				tuples = append(tuples, pair{uint64(500000 + i), uint64(2000000 + i*8 + k%4)})
			}
		}
		rng.Shuffle(len(tuples), func(i, j int) { tuples[i], tuples[j] = tuples[j], tuples[i] })
		for _, tp := range tuples {
			s.AddIDs(tp.a, tp.b)
		}
		lo, hi := s.ImplicationCountInterval(2)
		if lo <= truth && truth <= hi {
			covered++
		}
	}
	if covered < runs*3/4 {
		t.Fatalf("z=2 interval covered the truth in only %d/%d runs", covered, runs)
	}
}
