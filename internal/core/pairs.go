package core

// pairSet is the per-itemset partner-counter collection σ(a, b_j). The
// maximum-multiplicity condition bounds it at K entries, and K is small in
// every workload the framework targets (the paper's experiments use K ≤ 6),
// so a linear-scan vector beats a hash map on both memory (no per-itemset
// map header and buckets) and time (one cache line for typical K).
type pairSet []pairEntry

type pairEntry struct {
	h uint64
	n int64
}

// find returns the index of h, or -1.
func (p pairSet) find(h uint64) int {
	for i := range p {
		if p[i].h == h {
			return i
		}
	}
	return -1
}

// get returns the count for h (0 when absent).
func (p pairSet) get(h uint64) int64 {
	if i := p.find(h); i >= 0 {
		return p[i].n
	}
	return 0
}

// add appends a new entry; the caller has checked h is absent.
func (p *pairSet) add(h uint64, n int64) {
	*p = append(*p, pairEntry{h: h, n: n})
}

// clone deep-copies the set.
func (p pairSet) clone() pairSet {
	if p == nil {
		return nil
	}
	out := make(pairSet, len(p))
	copy(out, p)
	return out
}
