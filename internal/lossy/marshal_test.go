package lossy

import (
	"strconv"
	"testing"

	"implicate/internal/imps"
)

func feed(c *ILC, start, n int) {
	for i := start; i < start+n; i++ {
		a := strconv.Itoa(i % 61)
		b := strconv.Itoa((i * 7) % 13)
		if i%61 < 10 {
			b = "solo"
		}
		c.Add(a, b)
	}
}

func TestILCMarshalRoundTrip(t *testing.T) {
	cond := imps.Conditions{MaxMultiplicity: 2, MinSupport: 1, TopC: 1, MinTopConfidence: 0.5}
	c, err := NewILC(cond, 0.01, 0.005)
	if err != nil {
		t.Fatal(err)
	}
	feed(c, 0, 4000)
	if c.NonImplicationCount() == 0 {
		t.Fatal("test stream produced no dirty itemsets; widen it")
	}

	blob, err := c.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalILC(blob)
	if err != nil {
		t.Fatal(err)
	}
	assertILCsEqual(t, c, got)

	blob2, err := got.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if string(blob) != string(blob2) {
		t.Fatalf("re-marshalling a restored ILC changed the bytes")
	}

	// Continue past the next pruning boundary in both; they must agree.
	feed(c, 4000, 2000)
	feed(got, 4000, 2000)
	assertILCsEqual(t, c, got)
}

func assertILCsEqual(t *testing.T, want, got *ILC) {
	t.Helper()
	if got.Tuples() != want.Tuples() {
		t.Fatalf("Tuples: got %d, want %d", got.Tuples(), want.Tuples())
	}
	if got.MemEntries() != want.MemEntries() {
		t.Fatalf("MemEntries: got %d, want %d", got.MemEntries(), want.MemEntries())
	}
	pairs := []struct {
		name      string
		got, want float64
	}{
		{"ImplicationCount", got.ImplicationCount(), want.ImplicationCount()},
		{"NonImplicationCount", got.NonImplicationCount(), want.NonImplicationCount()},
		{"SupportedDistinct", got.SupportedDistinct(), want.SupportedDistinct()},
		{"AvgMultiplicity", got.AvgMultiplicity(), want.AvgMultiplicity()},
	}
	for _, p := range pairs {
		if p.got != p.want {
			t.Fatalf("%s: got %g, want %g", p.name, p.got, p.want)
		}
	}
	wantImp, gotImp := want.Implicating(), got.Implicating()
	if len(wantImp) != len(gotImp) {
		t.Fatalf("Implicating: got %d itemsets, want %d", len(gotImp), len(wantImp))
	}
	for i := range wantImp {
		if wantImp[i] != gotImp[i] {
			t.Fatalf("Implicating[%d]: got %q, want %q", i, gotImp[i], wantImp[i])
		}
	}
}

func TestUnmarshalILCRejectsTruncation(t *testing.T) {
	cond := imps.Conditions{MaxMultiplicity: 2, MinSupport: 1, TopC: 1, MinTopConfidence: 0.5}
	c, err := NewILC(cond, 0.02, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	feed(c, 0, 1000)
	blob, err := c.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(blob); n++ {
		if _, err := UnmarshalILC(blob[:n]); err == nil {
			t.Fatalf("truncation to %d of %d bytes decoded without error", n, len(blob))
		}
	}
}

var _ imps.ConfigFingerprinter = (*ILC)(nil)
