package query

import (
	"fmt"
	"testing"

	"implicate/internal/core"
	"implicate/internal/exact"
	"implicate/internal/imps"
	"implicate/internal/stream"
)

// TestHealthReports drives a sketch-backed and an exact-backed statement
// plus a mode alias through one engine and checks the reports carry the
// identity stamps and the estimator observables.
func TestHealthReports(t *testing.T) {
	schema, err := stream.NewSchema("A", "B")
	if err != nil {
		t.Fatal(err)
	}
	e := NewEngine(schema)
	sketchBackend := func(cond imps.Conditions) (imps.Estimator, error) {
		return core.NewSketch(cond, core.Options{Bitmaps: 16, Seed: 7})
	}
	exactBackend := func(cond imps.Conditions) (imps.Estimator, error) {
		return exact.NewCounter(cond)
	}
	const q = `SELECT COUNT(DISTINCT A) FROM t WHERE A IMPLIES B WITH SUPPORT >= 2, MULTIPLICITY <= 2`
	if _, err := e.RegisterSQL(q, sketchBackend); err != nil {
		t.Fatal(err)
	}
	if _, err := e.RegisterSQL(`SELECT COUNT(DISTINCT A) FROM t WHERE A NOT IMPLIES B WITH SUPPORT >= 2, MULTIPLICITY <= 2`, sketchBackend); err != nil {
		t.Fatal(err)
	}
	if _, err := e.RegisterSQL(q, exactBackend); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 5000; i++ {
		e.Process(stream.Tuple{fmt.Sprintf("a%d", i%700), fmt.Sprintf("b%d", i%13)})
	}

	reports := e.HealthReports()
	if len(reports) != 3 {
		t.Fatalf("got %d reports, want 3", len(reports))
	}
	for i, h := range reports {
		if h.Stmt != i {
			t.Errorf("report %d stamped Stmt=%d", i, h.Stmt)
		}
		if h.Tuples != 5000 {
			t.Errorf("report %d: tuples %d, want 5000", i, h.Tuples)
		}
		if h.Query == "" {
			t.Errorf("report %d: empty query text", i)
		}
		if h.MemEntries <= 0 || h.MemBytes <= 0 {
			t.Errorf("report %d: footprint %d entries / %d bytes", i, h.MemEntries, h.MemBytes)
		}
	}
	if reports[0].Kind != "nips" || reports[2].Kind != "exact" {
		t.Errorf("kinds %q, %q; want nips, exact", reports[0].Kind, reports[2].Kind)
	}
	if !reports[1].Shared || reports[0].Shared {
		t.Errorf("sharing stamps: %v, %v; the NOT IMPLIES mode alias should share", reports[0].Shared, reports[1].Shared)
	}
	if reports[0].BitmapFill <= 0 || reports[0].BitmapFill > 1 {
		t.Errorf("sketch fill %v out of (0,1]", reports[0].BitmapFill)
	}
	if reports[0].LeftmostZero <= 0 {
		t.Errorf("sketch leftmost-zero %v, want > 0", reports[0].LeftmostZero)
	}
	if reports[0].FringeTracked <= 0 {
		t.Errorf("sketch fringe tracked %d, want > 0", reports[0].FringeTracked)
	}
	if reports[2].BitmapFill != 0 || reports[2].RelErr != 0 {
		t.Errorf("exact report has sketch fields: %+v", reports[2])
	}
	// The shared alias reads the same estimator: identical observables.
	if reports[1].BitmapFill != reports[0].BitmapFill || reports[1].MemEntries != reports[0].MemEntries {
		t.Errorf("alias report diverges from owner: %+v vs %+v", reports[1], reports[0])
	}
}
