// Package telemetry is the runtime observability layer of the serving
// subsystem: a fixed set of atomically maintained counters (tuples
// ingested, batches accepted and rejected, merges, ingest-queue high-water
// mark) plus per-RPC latency histograms with power-of-two nanosecond
// buckets. A Set is updated lock-free on the hot path; Snapshot captures a
// consistent-enough copy for the Stats RPC, which ships it in the
// internal/wire encoding.
package telemetry

import (
	"fmt"
	"math"
	"math/bits"
	"sync/atomic"
	"time"

	"implicate/internal/wire"
)

// RPC indexes the latency histograms, one per request type.
type RPC uint8

// The instrumented RPCs, in wire-format order. The list is append-only:
// snapshot decoding matches histograms to RPCs by position, and accepting
// snapshots from older builds (see DecodeSnapshot) depends on an older list
// being a strict prefix of this one.
const (
	RPCIngest RPC = iota
	RPCQuery
	RPCMerge
	RPCStats
	RPCHealth
	RPCTrace
	RPCUDPAck
	RPCSnapshot
	RPCBoot
	RPCAuth
	NumRPCs
)

// String names the RPC for reports.
func (r RPC) String() string {
	switch r {
	case RPCIngest:
		return "IngestBatch"
	case RPCQuery:
		return "Query"
	case RPCMerge:
		return "SnapshotMerge"
	case RPCStats:
		return "Stats"
	case RPCHealth:
		return "Health"
	case RPCTrace:
		return "Trace"
	case RPCUDPAck:
		return "UDPAck"
	case RPCSnapshot:
		return "Snapshot"
	case RPCBoot:
		return "Boot"
	case RPCAuth:
		return "Auth"
	}
	return fmt.Sprintf("RPC(%d)", uint8(r))
}

// HistBuckets is the bucket count of each latency histogram: bucket i
// collects observations with ceil(log2(ns)) == i, so bucket 10 is ~1µs,
// 20 is ~1ms, 30 is ~1s; 49 tops out above any plausible RPC latency.
const HistBuckets = 50

// Set is the live counter set a server updates. All methods are safe for
// concurrent use; the zero value is ready. Per-worker counters exist only
// after ConfigureWorkers, which must run before the workers start.
type Set struct {
	tuplesIngested  atomic.Int64
	batches         atomic.Int64
	batchesRejected atomic.Int64
	merges          atomic.Int64
	queueHighWater  atomic.Int64
	poolSaturation  atomic.Int64
	udpDatagrams    atomic.Int64
	udpDups         atomic.Int64
	udpDrops        atomic.Int64
	// The fine-grained UDP lane attribution: udpDrops stays the aggregate
	// (its wire position and meaning are fixed), these say why. Window,
	// decode and CRC drops partition the aggregate's causes; applied and
	// reorders are independent lane events.
	udpApplied     atomic.Int64
	udpWindowDrops atomic.Int64
	udpDecodeDrops atomic.Int64
	udpReorders    atomic.Int64
	udpCRCFailures atomic.Int64
	// workers is published atomically so a Snapshot or a straggling worker
	// update racing a ConfigureWorkers reads a coherent (old or new) block,
	// never a torn slice header.
	workers atomic.Pointer[[]workerSet]
	hist    [NumRPCs][HistBuckets]atomic.Uint64
}

// workerSet holds one pipeline worker's counters, padded to a cache line so
// workers hammering adjacent slots do not false-share.
type workerSet struct {
	tasks atomic.Int64
	units atomic.Int64
	_     [48]byte
}

// ConfigureWorkers sizes the per-worker counter block for an n-worker
// pipeline, discarding any previously accumulated worker counters. Safe to
// call concurrently with updates and snapshots: the block swaps atomically,
// and an update racing the swap lands in whichever block it loaded.
func (s *Set) ConfigureWorkers(n int) {
	if n < 0 {
		n = 0
	}
	w := make([]workerSet, n)
	s.workers.Store(&w)
}

// AddWorkerTask records one pipeline task applied by the given worker
// carrying the given number of work units (tuples or planned pairs).
// Samples for workers outside the configured range are dropped.
func (s *Set) AddWorkerTask(worker, units int) {
	wp := s.workers.Load()
	if wp == nil || worker < 0 || worker >= len(*wp) {
		return
	}
	(*wp)[worker].tasks.Add(1)
	(*wp)[worker].units.Add(int64(units))
}

// AddPoolSaturation records one dispatch that found a worker queue full
// and had to block — the pool-saturation gauge's input.
func (s *Set) AddPoolSaturation() { s.poolSaturation.Add(1) }

// AddTuples records n tuples applied to the engine.
func (s *Set) AddTuples(n int64) { s.tuplesIngested.Add(n) }

// AddBatch records one batch accepted into the ingest queue.
func (s *Set) AddBatch() { s.batches.Add(1) }

// AddRejectedBatch records one batch refused with a backpressure reply.
func (s *Set) AddRejectedBatch() { s.batchesRejected.Add(1) }

// AddMerge records one sketch merged in.
func (s *Set) AddMerge() { s.merges.Add(1) }

// AddUDPDatagram records one valid UDP ingest datagram received.
func (s *Set) AddUDPDatagram() { s.udpDatagrams.Add(1) }

// AddUDPDup records one UDP datagram dropped as a duplicate.
func (s *Set) AddUDPDup() { s.udpDups.Add(1) }

// AddUDPDrop records one UDP datagram dropped for any non-duplicate
// reason: malformed, beyond the reorder window, or refused while draining.
func (s *Set) AddUDPDrop() { s.udpDrops.Add(1) }

// AddUDPApplied records one UDP ingest batch applied to the engine.
func (s *Set) AddUDPApplied() { s.udpApplied.Add(1) }

// AddUDPWindowDrop records one datagram dropped because its sequence
// number lies beyond the per-source reorder window.
func (s *Set) AddUDPWindowDrop() { s.udpWindowDrops.Add(1) }

// AddUDPDecodeDrop records one in-window datagram whose batch payload
// failed to decode (the sequence still advances — see the lane's apply).
func (s *Set) AddUDPDecodeDrop() { s.udpDecodeDrops.Add(1) }

// AddUDPReorder records one out-of-order datagram parked in the reorder
// window to await its predecessors.
func (s *Set) AddUDPReorder() { s.udpReorders.Add(1) }

// AddUDPCRCFailure records one datagram rejected before sequencing:
// truncated, version-skewed, or failing its checksum.
func (s *Set) AddUDPCRCFailure() { s.udpCRCFailures.Add(1) }

// ObserveQueueDepth folds one ingest-queue depth sample into the high-water
// mark.
func (s *Set) ObserveQueueDepth(depth int) {
	d := int64(depth)
	for {
		cur := s.queueHighWater.Load()
		if d <= cur || s.queueHighWater.CompareAndSwap(cur, d) {
			return
		}
	}
}

// bucketFor maps a duration to its histogram bucket.
func bucketFor(d time.Duration) int {
	ns := d.Nanoseconds()
	if ns < 1 {
		ns = 1
	}
	b := bits.Len64(uint64(ns) - 1) // ceil(log2)
	if b >= HistBuckets {
		b = HistBuckets - 1
	}
	return b
}

// Observe records one RPC's handling latency.
func (s *Set) Observe(rpc RPC, d time.Duration) {
	if rpc >= NumRPCs {
		return
	}
	s.hist[rpc][bucketFor(d)].Add(1)
}

// Snapshot copies the counters out. Individual counters are each read
// atomically; the set as a whole is a point-in-time approximation, which is
// all a metrics endpoint needs.
func (s *Set) Snapshot() Snapshot {
	var sn Snapshot
	sn.TuplesIngested = s.tuplesIngested.Load()
	sn.Batches = s.batches.Load()
	sn.BatchesRejected = s.batchesRejected.Load()
	sn.Merges = s.merges.Load()
	sn.QueueHighWater = s.queueHighWater.Load()
	sn.PoolSaturation = s.poolSaturation.Load()
	sn.UDPDatagrams = s.udpDatagrams.Load()
	sn.UDPDups = s.udpDups.Load()
	sn.UDPDrops = s.udpDrops.Load()
	sn.UDPApplied = s.udpApplied.Load()
	sn.UDPWindowDrops = s.udpWindowDrops.Load()
	sn.UDPDecodeDrops = s.udpDecodeDrops.Load()
	sn.UDPReorders = s.udpReorders.Load()
	sn.UDPCRCFailures = s.udpCRCFailures.Load()
	if wp := s.workers.Load(); wp != nil && len(*wp) > 0 {
		w := *wp
		sn.Workers = make([]WorkerStats, len(w))
		for i := range w {
			sn.Workers[i] = WorkerStats{
				Tasks: w[i].tasks.Load(),
				Units: w[i].units.Load(),
			}
		}
	}
	for r := RPC(0); r < NumRPCs; r++ {
		for b := 0; b < HistBuckets; b++ {
			sn.Latency[r].Counts[b] = s.hist[r][b].Load()
		}
	}
	return sn
}

// Histogram is the frozen form of one RPC's latency distribution.
type Histogram struct {
	Counts [HistBuckets]uint64
}

// Count returns the total number of observations.
func (h Histogram) Count() uint64 {
	var n uint64
	for _, c := range h.Counts {
		n += c
	}
	return n
}

// Quantile returns an upper bound of the q-quantile latency: buckets hold
// log2 of the duration (bucket b collects observations with
// ceil(log2(ns)) == b), so the answer is the top of the bucket containing
// the quantile, 2^b nanoseconds — never an interpolated value. An empty
// histogram returns 0. q is clamped to [0, 1]: q=0 is the smallest
// observed bucket's bound, q=1 the largest, and with every observation in
// one bucket every quantile is that bucket's bound. A NaN q returns 0
// rather than relying on the platform-defined float→uint conversion.
func (h Histogram) Quantile(q float64) time.Duration {
	total := h.Count()
	if total == 0 || math.IsNaN(q) {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := uint64(q * float64(total))
	if rank >= total {
		rank = total - 1
	}
	var seen uint64
	for b, c := range h.Counts {
		seen += c
		if seen > rank {
			return time.Duration(uint64(1) << uint(b))
		}
	}
	return time.Duration(uint64(1) << (HistBuckets - 1))
}

// AtomicHistogram is a live, lock-free latency histogram with the same
// power-of-two nanosecond geometry as the per-RPC histograms, for latencies
// the fixed RPC set does not cover (the coordinator's per-leaf delivery
// latency). It never travels on the wire; Snapshot freezes it into a
// Histogram for local rendering. The zero value is ready.
type AtomicHistogram struct {
	counts [HistBuckets]atomic.Uint64
}

// Observe records one latency sample.
func (h *AtomicHistogram) Observe(d time.Duration) {
	h.counts[bucketFor(d)].Add(1)
}

// Snapshot copies the live counts into a frozen Histogram.
func (h *AtomicHistogram) Snapshot() Histogram {
	var out Histogram
	for b := range h.counts {
		out.Counts[b] = h.counts[b].Load()
	}
	return out
}

// Snapshot is a frozen counter set — what the Stats RPC ships.
type Snapshot struct {
	// TuplesIngested counts tuples applied to the engine (not merely
	// acknowledged; acked batches still queued are not yet included).
	TuplesIngested int64
	// Batches counts batches accepted into the ingest queue.
	Batches int64
	// BatchesRejected counts batches refused with a backpressure reply.
	// Every rejection was reported to its client explicitly.
	BatchesRejected int64
	// Merges counts sketches merged in via SnapshotMerge.
	Merges int64
	// QueueHighWater is the deepest the ingest queue has been.
	QueueHighWater int64
	// PoolSaturation counts dispatches that found a pipeline worker queue
	// full and blocked — sustained growth means the pool, not the ingest
	// queue, is the bottleneck.
	PoolSaturation int64
	// UDPDatagrams counts valid UDP ingest datagrams received (whether
	// applied, buffered or dropped as duplicates).
	UDPDatagrams int64
	// UDPDups counts UDP datagrams dropped as duplicates — already applied
	// or already buffered in the reorder window.
	UDPDups int64
	// UDPDrops counts UDP datagrams dropped for any other reason:
	// malformed, beyond the reorder window, or refused while draining.
	UDPDrops int64
	// UDPApplied counts UDP ingest batches applied to the engine.
	UDPApplied int64
	// UDPWindowDrops counts datagrams dropped beyond the reorder window.
	UDPWindowDrops int64
	// UDPDecodeDrops counts in-window datagrams whose payload failed to
	// decode as a batch.
	UDPDecodeDrops int64
	// UDPReorders counts out-of-order datagrams parked in the reorder
	// window.
	UDPReorders int64
	// UDPCRCFailures counts datagrams rejected before sequencing —
	// truncated, version-skewed or failing their checksum.
	UDPCRCFailures int64
	// Workers holds per-pipeline-worker counters, one entry per worker; nil
	// when the server predates worker configuration.
	Workers []WorkerStats
	// Latency holds one histogram per RPC, indexed by the RPC constants.
	Latency [NumRPCs]Histogram
	// Tenants holds per-tenant counters, one entry per registered tenant,
	// sorted by name. Nil on single-tenant servers — and only a snapshot
	// with tenants is encoded in the v4 format, so a server with no named
	// tenants stays byte-compatible with v3 readers.
	Tenants []TenantStats
	// Shards holds per-dispatch-shard counters for servers running the
	// sharded Fair dispatcher, ordered (lane, shard). Nil on the
	// single-dispatcher path — and like Tenants, only a snapshot carrying
	// shard rows (or fine-grained UDP counters) is encoded in the v5
	// format, so default-config servers stay byte-compatible with v4
	// readers.
	Shards []ShardStats
}

// ShardStats is one (lane, dispatch shard) pair's frozen counters.
type ShardStats struct {
	// Lane is the name of the tenant lane the shard dispatches for.
	Lane string
	// Shard is the dispatch shard index within the lane.
	Shard int64
	// Tasks counts worker tasks the shard enqueued.
	Tasks int64
	// HighWater is the shard's deepest unconsumed backlog in batches.
	HighWater int64
}

// TenantStats is one tenant's frozen counters.
type TenantStats struct {
	// Name is the tenant's namespace.
	Name string
	// Weight is the tenant's fair-share dispatch weight.
	Weight int64
	// Tuples counts tuples applied to the tenant's engine.
	Tuples int64
	// Batches counts batches accepted into the tenant's lane.
	Batches int64
	// Rejected counts batches refused with a backpressure (Busy) reply.
	Rejected int64
	// QuotaRefusals counts batches refused with a Quota reply — over the
	// ingest rate or memory budget, never enqueued.
	QuotaRefusals int64
	// MemBytes is the tenant's last-assessed estimator memory footprint.
	MemBytes int64
	// MemBudget is the tenant's configured memory ceiling; 0 is unlimited.
	MemBudget int64
	// QueueHighWater is the deepest the tenant's lane has been.
	QueueHighWater int64
}

// WorkerStats is one pipeline worker's frozen counters.
type WorkerStats struct {
	// Tasks counts pipeline tasks the worker applied.
	Tasks int64
	// Units counts the work units those tasks carried: tuples for
	// serialized-class tasks, planned pairs for partition-safe ones.
	Units int64
}

// The snapshot wire versions. v5 ("IMPT\x05") appends the fine-grained UDP
// lane counters and the per-dispatch-shard block; v4 ("IMPT\x04") appended
// the per-tenant block; v3 ("IMPT\x03") added the UDP lane counters; v2
// ("IMPT\x02") added the pool-saturation counter and the per-worker block;
// v1 ("IMPT\x01") snapshots from older servers carry none of these and
// decode with those fields zero. Encode writes the newest version whose
// extra blocks carry information and nothing newer — v5 only when a
// fine-grained UDP counter is nonzero or shard rows exist, v4 only when the
// snapshot carries tenants — so a default-config server emits bytes a
// v3-only reader still accepts.
const (
	snapshotMagicV5 = "IMPT\x05"
	snapshotMagicV4 = "IMPT\x04"
	snapshotMagic   = "IMPT\x03"
	snapshotMagicV2 = "IMPT\x02"
	snapshotMagicV1 = "IMPT\x01"
)

// fineUDP reports whether any fine-grained UDP lane counter carries
// information — one input to the v5 encoding gate.
func (sn Snapshot) fineUDP() bool {
	return sn.UDPApplied != 0 || sn.UDPWindowDrops != 0 || sn.UDPDecodeDrops != 0 ||
		sn.UDPReorders != 0 || sn.UDPCRCFailures != 0
}

// Encode serializes the snapshot for the Stats RPC.
func (sn Snapshot) Encode() []byte {
	v5 := sn.fineUDP() || len(sn.Shards) > 0
	e := wire.NewEncoder(64 + int(NumRPCs)*HistBuckets*8)
	switch {
	case v5:
		e.Raw([]byte(snapshotMagicV5))
	case len(sn.Tenants) > 0:
		e.Raw([]byte(snapshotMagicV4))
	default:
		e.Raw([]byte(snapshotMagic))
	}
	e.I64(sn.TuplesIngested)
	e.I64(sn.Batches)
	e.I64(sn.BatchesRejected)
	e.I64(sn.Merges)
	e.I64(sn.QueueHighWater)
	e.I64(sn.PoolSaturation)
	e.I64(sn.UDPDatagrams)
	e.I64(sn.UDPDups)
	e.I64(sn.UDPDrops)
	e.U32(uint32(len(sn.Workers)))
	for _, w := range sn.Workers {
		e.I64(w.Tasks)
		e.I64(w.Units)
	}
	e.U32(uint32(NumRPCs))
	e.U32(HistBuckets)
	for r := RPC(0); r < NumRPCs; r++ {
		for b := 0; b < HistBuckets; b++ {
			e.U64(sn.Latency[r].Counts[b])
		}
	}
	// v5 always writes the tenant block, even empty — unlike v4, whose
	// presence is itself the "has tenants" signal.
	if v5 || len(sn.Tenants) > 0 {
		e.U32(uint32(len(sn.Tenants)))
		for _, t := range sn.Tenants {
			e.Str(t.Name)
			e.I64(t.Weight)
			e.I64(t.Tuples)
			e.I64(t.Batches)
			e.I64(t.Rejected)
			e.I64(t.QuotaRefusals)
			e.I64(t.MemBytes)
			e.I64(t.MemBudget)
			e.I64(t.QueueHighWater)
		}
	}
	if v5 {
		e.I64(sn.UDPApplied)
		e.I64(sn.UDPWindowDrops)
		e.I64(sn.UDPDecodeDrops)
		e.I64(sn.UDPReorders)
		e.I64(sn.UDPCRCFailures)
		e.U32(uint32(len(sn.Shards)))
		for _, sh := range sn.Shards {
			e.Str(sh.Lane)
			e.I64(sh.Shard)
			e.I64(sh.Tasks)
			e.I64(sh.HighWater)
		}
	}
	return e.Bytes()
}

// DecodeSnapshot parses an encoded snapshot, rejecting any it cannot prove
// intact. Every wire version is accepted: snapshots from older servers
// decode with the fields their version predates left zero. The sender's RPC
// list may be shorter than this build's — the list is append-only, so a
// shorter list is a prefix and the newer RPCs' histograms stay zero — but
// never longer, and the bucket geometry must match exactly (bucket
// boundaries are positional; mismatched counts cannot be reconciled).
func DecodeSnapshot(data []byte) (Snapshot, error) {
	d := wire.NewDecoder(data)
	v1 := len(data) >= len(snapshotMagicV1) && string(data[:len(snapshotMagicV1)]) == snapshotMagicV1
	v2 := len(data) >= len(snapshotMagicV2) && string(data[:len(snapshotMagicV2)]) == snapshotMagicV2
	v4 := len(data) >= len(snapshotMagicV4) && string(data[:len(snapshotMagicV4)]) == snapshotMagicV4
	v5 := len(data) >= len(snapshotMagicV5) && string(data[:len(snapshotMagicV5)]) == snapshotMagicV5
	switch {
	case v1:
		d.Magic(snapshotMagicV1)
	case v2:
		d.Magic(snapshotMagicV2)
	case v4:
		d.Magic(snapshotMagicV4)
	case v5:
		d.Magic(snapshotMagicV5)
	default:
		d.Magic(snapshotMagic)
	}
	var sn Snapshot
	sn.TuplesIngested = d.I64()
	sn.Batches = d.I64()
	sn.BatchesRejected = d.I64()
	sn.Merges = d.I64()
	sn.QueueHighWater = d.I64()
	if !v1 {
		sn.PoolSaturation = d.I64()
		if !v2 {
			sn.UDPDatagrams = d.I64()
			sn.UDPDups = d.I64()
			sn.UDPDrops = d.I64()
		}
		// The worker count is the sender's pool size — data, not geometry:
		// any count round-trips.
		nworkers := d.Count(16)
		if d.Err() == nil && nworkers > 0 {
			sn.Workers = make([]WorkerStats, nworkers)
			for i := 0; i < nworkers; i++ {
				sn.Workers[i] = WorkerStats{Tasks: d.I64(), Units: d.I64()}
			}
		}
	}
	nrpc := d.U32()
	nbuckets := d.U32()
	if d.Err() == nil && (nrpc > uint32(NumRPCs) || nbuckets != HistBuckets) {
		return Snapshot{}, fmt.Errorf("%w: histogram geometry %d×%d (want <=%d×%d)",
			wire.ErrCorrupt, nrpc, nbuckets, NumRPCs, HistBuckets)
	}
	for r := 0; d.Err() == nil && r < int(nrpc); r++ {
		for b := 0; b < HistBuckets; b++ {
			sn.Latency[r].Counts[b] = d.U64()
		}
	}
	if v4 || v5 {
		// 68 is the smallest possible tenant row: empty-name length prefix
		// plus eight i64 counters.
		ntenants := d.Count(68)
		if d.Err() == nil && ntenants > 0 {
			sn.Tenants = make([]TenantStats, ntenants)
			for i := 0; i < ntenants && d.Err() == nil; i++ {
				sn.Tenants[i] = TenantStats{
					Name:           d.Str(256),
					Weight:         d.I64(),
					Tuples:         d.I64(),
					Batches:        d.I64(),
					Rejected:       d.I64(),
					QuotaRefusals:  d.I64(),
					MemBytes:       d.I64(),
					MemBudget:      d.I64(),
					QueueHighWater: d.I64(),
				}
			}
		}
	}
	if v5 {
		sn.UDPApplied = d.I64()
		sn.UDPWindowDrops = d.I64()
		sn.UDPDecodeDrops = d.I64()
		sn.UDPReorders = d.I64()
		sn.UDPCRCFailures = d.I64()
		// 28 is the smallest possible shard row: empty-lane length prefix
		// plus three i64 counters.
		nshards := d.Count(28)
		if d.Err() == nil && nshards > 0 {
			sn.Shards = make([]ShardStats, nshards)
			for i := 0; i < nshards && d.Err() == nil; i++ {
				sn.Shards[i] = ShardStats{
					Lane:      d.Str(256),
					Shard:     d.I64(),
					Tasks:     d.I64(),
					HighWater: d.I64(),
				}
			}
		}
	}
	if err := d.Done(); err != nil {
		return Snapshot{}, fmt.Errorf("telemetry: %w", err)
	}
	if sn.TuplesIngested < 0 || sn.Batches < 0 || sn.BatchesRejected < 0 || sn.Merges < 0 || sn.QueueHighWater < 0 || sn.PoolSaturation < 0 || sn.UDPDatagrams < 0 || sn.UDPDups < 0 || sn.UDPDrops < 0 {
		return Snapshot{}, fmt.Errorf("%w: negative counter", wire.ErrCorrupt)
	}
	if sn.UDPApplied < 0 || sn.UDPWindowDrops < 0 || sn.UDPDecodeDrops < 0 || sn.UDPReorders < 0 || sn.UDPCRCFailures < 0 {
		return Snapshot{}, fmt.Errorf("%w: negative counter", wire.ErrCorrupt)
	}
	for _, sh := range sn.Shards {
		if sh.Shard < 0 || sh.Tasks < 0 || sh.HighWater < 0 {
			return Snapshot{}, fmt.Errorf("%w: negative shard counter", wire.ErrCorrupt)
		}
	}
	for _, w := range sn.Workers {
		if w.Tasks < 0 || w.Units < 0 {
			return Snapshot{}, fmt.Errorf("%w: negative worker counter", wire.ErrCorrupt)
		}
	}
	for _, t := range sn.Tenants {
		if t.Weight < 0 || t.Tuples < 0 || t.Batches < 0 || t.Rejected < 0 ||
			t.QuotaRefusals < 0 || t.MemBytes < 0 || t.MemBudget < 0 || t.QueueHighWater < 0 {
			return Snapshot{}, fmt.Errorf("%w: negative tenant counter", wire.ErrCorrupt)
		}
	}
	return sn, nil
}
