package main

import (
	"fmt"
	"math"
	"strings"
	"testing"
	"time"

	"implicate"
	"implicate/internal/stream"
	"implicate/internal/telemetry"
)

func TestParseAndValidate(t *testing.T) {
	cfg, rest, err := parseFlags([]string{"-addr", "x:1", "-interval", "250ms", "-count", "3", "-plain"})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.addr != "x:1" || cfg.interval != 250*time.Millisecond || cfg.count != 3 || !cfg.plain || len(rest) != 0 {
		t.Fatalf("parsed %+v %v", cfg, rest)
	}
	if err := cfg.validate(); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []config{
		{addr: "", interval: time.Second},
		{addr: "x:1", interval: 0},
		{addr: "x:1", interval: time.Second, count: -1},
	} {
		if err := bad.validate(); err == nil {
			t.Errorf("config %+v accepted", bad)
		}
	}
}

func TestRender(t *testing.T) {
	var set telemetry.Set
	set.AddTuples(5000)
	set.AddBatch()
	set.ObserveQueueDepth(3)
	set.ConfigureWorkers(2)
	set.AddWorkerTask(0, 900)
	set.AddWorkerTask(1, 100)
	set.Observe(telemetry.RPCIngest, 800*time.Microsecond)

	base := time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)
	prev := frame{when: base, stats: func() implicate.ServerStats {
		var s telemetry.Set
		s.AddTuples(3000)
		return s.Snapshot()
	}()}
	cur := frame{
		when:  base.Add(2 * time.Second),
		stats: set.Snapshot(),
		health: []implicate.HealthReport{
			{Stmt: 0, Kind: "nips", Tuples: 5000, MemEntries: 64, MemBytes: 3 << 20,
				BitmapFill: 0.25, LeftmostZero: 4.5, FringeTracked: 40, FringeEvictions: 2, RelErr: 0.08},
			{Stmt: 1, Kind: "exact", Shared: true, Tuples: 5000, MemEntries: 10, MemBytes: 512,
				RelErr: math.Inf(1)},
		},
	}

	var b strings.Builder
	render(&b, "h:1", &prev, cur)
	out := b.String()
	for _, want := range []string{
		"imptop — h:1",
		"tuples=5000 (1000/s)", // (5000-3000)/2s
		"high-water=3",
		"IngestBatch",
		"skew",
		"1.80", // worker 0: 900 units of mean 500
		"nips",
		"exact*",
		"25.0%",
		"3.0MiB",
		"0.080",
		"shared estimator",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("frame missing %q:\n%s", want, out)
		}
	}

	// First frame: no rates, no crash on nil prev.
	b.Reset()
	render(&b, "h:1", nil, cur)
	if !strings.Contains(b.String(), "tuples=5000 (-)") {
		t.Errorf("first frame should render '-' rates:\n%s", b.String())
	}
}

// TestRunLive drives imptop against a real in-process server: two plain
// frames over a short interval while tuples flow.
func TestRunLive(t *testing.T) {
	schema, err := implicate.NewSchema("A", "B")
	if err != nil {
		t.Fatal(err)
	}
	eng := implicate.NewEngine(schema)
	if _, err := eng.RegisterSQL(
		`SELECT COUNT(DISTINCT A) FROM t WHERE A IMPLIES B WITH SUPPORT >= 2, MULTIPLICITY <= 2`,
		implicate.SketchBackend(implicate.Options{Seed: 3})); err != nil {
		t.Fatal(err)
	}
	srv, err := implicate.Serve(implicate.ServerConfig{Addr: "127.0.0.1:0", Schema: schema, Engine: eng})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	cl, err := implicate.Dial(srv.Addr(), schema, implicate.ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	tuples := make([]stream.Tuple, 400)
	for i := range tuples {
		tuples[i] = stream.Tuple{fmt.Sprintf("s%d", i/2), fmt.Sprintf("d%d", (i/2)%7)}
	}
	if err := cl.IngestBatch(tuples); err != nil {
		t.Fatal(err)
	}

	var b strings.Builder
	cfg := &config{addr: srv.Addr(), interval: 50 * time.Millisecond, count: 2, plain: true}
	if err := run(cfg, &b, make(chan struct{})); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if strings.Count(out, "imptop — ") != 2 {
		t.Fatalf("want 2 frames:\n%s", out)
	}
	for _, want := range []string{"tuples=400", "nips", "Stats", "Health"} {
		if !strings.Contains(out, want) {
			t.Errorf("live output missing %q:\n%s", want, out)
		}
	}
	if strings.Contains(out, "\x1b[") {
		t.Error("-plain output contains ANSI escapes")
	}
}
