// The client side of the UDP ingest lane (see internal/proto's udp.go for
// the lane's wire semantics). A UDPIngester sends sequence-numbered batch
// datagrams over a connected UDP socket and tracks acknowledgement through
// cumulative watermark polls on the client's TCP control connection,
// retransmitting datagrams the watermark refuses to pass. Delivery is
// at-most-once on the server; the retransmit loop turns that into
// effectively-once for producers that Flush — with one carve-out the
// watermark alone cannot express: a CRC-valid batch the server fails to
// decode advances the watermark while counting as a drop, because
// retransmitting bytes that arrived intact cannot help. Flush therefore
// audits the full ack accounting (applied + decode-drops == cum) and
// reports such losses as ErrUDPDataDropped instead of succeeding.
package client

import (
	"errors"
	"fmt"
	"net"
	"time"

	"implicate/internal/proto"
)

// UDPOptions tune a UDPIngester. The zero value is usable.
type UDPOptions struct {
	// Source identifies this producer to the server; all sequence state is
	// per source. Required and non-zero — two live producers sharing a
	// source id corrupt each other's sequence space.
	Source uint64
	// Window bounds unacknowledged in-flight datagrams; Send blocks when
	// it is full. It must not exceed the server's reorder window (the
	// server default is 256, and datagrams beyond its window are dropped,
	// not buffered). Default 64.
	Window int
	// PollEvery is how many sends elapse between watermark polls while the
	// window has room. Default 16.
	PollEvery int
	// RetransmitAfter is how many polls a datagram stays unacknowledged
	// before it is re-sent; each retransmission waits linearly longer
	// (attempt × RetransmitAfter polls), so a congested lane is not fed a
	// storm of duplicates. Default 2.
	RetransmitAfter int
	// MaxStalls bounds consecutive polls with no watermark progress while
	// blocked; past it Flush and Send give up (server gone or lane
	// disabled). Default 200.
	MaxStalls int
	// PollGap is the sleep between polls while blocked on the window or
	// flushing. Default 500µs.
	PollGap time.Duration

	// dropSend, when non-nil, is a test hook deciding whether a given
	// transmission attempt (seq, attempt) is dropped instead of written.
	dropSend func(seq uint64, attempt int) bool
}

func (o UDPOptions) withDefaults() UDPOptions {
	if o.Window == 0 {
		o.Window = 64
	}
	if o.PollEvery == 0 {
		o.PollEvery = 16
	}
	if o.RetransmitAfter == 0 {
		o.RetransmitAfter = 2
	}
	if o.MaxStalls == 0 {
		o.MaxStalls = 200
	}
	if o.PollGap == 0 {
		o.PollGap = 500 * time.Microsecond
	}
	return o
}

// pendingDG is one unacknowledged datagram.
type pendingDG struct {
	payload  []byte
	attempts int
	lastPoll int // poll counter value when last (re)transmitted
}

// UDPIngester streams ingest batches to a server's UDP lane. NOT safe for
// concurrent use: one producer goroutine owns it, matching the per-source
// sequence contract. Callers must keep each payload unmodified until a
// Flush (or a Send's internal poll) confirms the watermark passed it —
// pending datagrams are retransmitted from the caller's slice, uncopied.
type UDPIngester struct {
	cl  *Client
	pc  net.Conn
	opt UDPOptions

	next      uint64 // next sequence number to assign
	cum       uint64 // last known server watermark
	polls     int
	sinceAck  int
	buf       []byte // datagram encode scratch
	pending   map[uint64]*pendingDG
	sendCount int

	// base is the server's ack state for this source at dial time, captured
	// so a reused source id does not charge a prior producer's drops to this
	// one; last is the most recent poll. The difference is this ingester's
	// own accounting (Applied, Drops, Flush's loss audit).
	base proto.UDPAck
	last proto.UDPAck
}

// DialUDP connects a datagram ingester for the server's UDP lane at
// udpAddr, using this client's TCP connection for acknowledgement polls.
func (cl *Client) DialUDP(udpAddr string, opt UDPOptions) (*UDPIngester, error) {
	opt = opt.withDefaults()
	if opt.Source == 0 {
		return nil, errors.New("client: udp ingest requires a non-zero source id")
	}
	pc, err := net.Dial("udp", udpAddr)
	if err != nil {
		return nil, fmt.Errorf("client: %w", err)
	}
	if uc, ok := pc.(*net.UDPConn); ok {
		_ = uc.SetWriteBuffer(1 << 20) // best effort, as on the server side
	}
	// Baseline poll: a reused source id may carry watermark and drop state
	// from an earlier producer; everything this ingester accounts for is
	// measured against the state found here.
	base, err := cl.UDPAck(opt.Source)
	if err != nil {
		pc.Close()
		return nil, fmt.Errorf("client: udp baseline poll: %w", err)
	}
	u := &UDPIngester{cl: cl, pc: pc, opt: opt, pending: make(map[uint64]*pendingDG)}
	u.base, u.last, u.cum, u.next = base, base, base.Cum, base.Cum
	return u, nil
}

// UDPAck polls the server's cumulative acknowledgement for a UDP source.
// The poll is idempotent and travels over TCP.
func (cl *Client) UDPAck(source uint64) (proto.UDPAck, error) {
	f, err := cl.callIdempotent(proto.TUDPAck, proto.UDPAckReq{Source: source}.Encode())
	if err != nil {
		return proto.UDPAck{}, err
	}
	switch f.Type {
	case proto.TResult:
		return proto.DecodeUDPAck(f.Payload)
	case proto.TError:
		return proto.UDPAck{}, remoteError(f)
	}
	return proto.UDPAck{}, fmt.Errorf("client: unexpected %s reply to udp ack", f.Type)
}

// transmit encodes and writes one datagram from its pending record.
func (u *UDPIngester) transmit(seq uint64, p *pendingDG) error {
	p.attempts++
	p.lastPoll = u.polls
	if u.opt.dropSend != nil && u.opt.dropSend(seq, p.attempts) {
		return nil // dropped on the floor, as the network might
	}
	var err error
	u.buf, err = proto.AppendDatagram(u.buf[:0], proto.Datagram{Source: u.opt.Source, Seq: seq, Payload: p.payload})
	if err != nil {
		return err
	}
	_, err = u.pc.Write(u.buf)
	return err
}

// poll fetches the watermark and clears acknowledged pendings. Returns
// whether the watermark advanced.
func (u *UDPIngester) poll() (bool, error) {
	ack, err := u.cl.UDPAck(u.opt.Source)
	if err != nil {
		return false, err
	}
	u.polls++
	advanced := ack.Cum > u.cum
	u.cum = ack.Cum
	u.last = ack
	for seq := range u.pending {
		if seq <= ack.Cum {
			delete(u.pending, seq)
		}
	}
	return advanced, nil
}

// retransmit re-sends every pending datagram that has sat unacknowledged
// through its backoff (attempt × RetransmitAfter polls).
func (u *UDPIngester) retransmit() error {
	for seq, p := range u.pending {
		if u.polls-p.lastPoll >= u.opt.RetransmitAfter*p.attempts {
			if err := u.transmit(seq, p); err != nil {
				return err
			}
		}
	}
	return nil
}

// reap polls and retransmits until the window condition holds (pending
// count <= limit), giving up after MaxStalls polls without progress.
func (u *UDPIngester) reap(limit int) error {
	stalls := 0
	for len(u.pending) > limit {
		advanced, err := u.poll()
		if err != nil {
			return err
		}
		if err := u.retransmit(); err != nil {
			return err
		}
		if len(u.pending) <= limit {
			return nil
		}
		if advanced {
			stalls = 0
		} else if stalls++; stalls >= u.opt.MaxStalls {
			return fmt.Errorf("client: udp source %d stalled at watermark %d with %d unacknowledged datagrams", u.opt.Source, u.cum, len(u.pending))
		}
		time.Sleep(u.opt.PollGap)
	}
	return nil
}

// Send fires one EncodeBatch-serialized batch at the lane, blocking only
// when the unacknowledged window is full. The payload must stay
// unmodified until acknowledged (see the type comment); its tuple count is
// not needed — UDP acknowledgement is per-datagram, not per-tuple.
func (u *UDPIngester) Send(payload []byte) error {
	if len(payload) > proto.MaxUDPPayload {
		return fmt.Errorf("client: batch of %d bytes exceeds the %d-byte datagram limit", len(payload), proto.MaxUDPPayload)
	}
	if err := u.reap(u.opt.Window - 1); err != nil {
		return err
	}
	u.next++
	p := &pendingDG{payload: payload}
	u.pending[u.next] = p
	if err := u.transmit(u.next, p); err != nil {
		return err
	}
	if u.sinceAck++; u.sinceAck >= u.opt.PollEvery {
		u.sinceAck = 0
		if _, err := u.poll(); err != nil {
			return err
		}
		if err := u.retransmit(); err != nil {
			return err
		}
	}
	return nil
}

// ErrUDPDataDropped reports that the server consumed one or more of this
// ingester's batches without applying them: the batch arrived intact
// (CRC-verified, watermark advanced) but failed to decode, so
// retransmission cannot recover it. The data is lost; the producer's only
// remedies are fixing what it encodes or re-sending the tuples as new
// batches.
var ErrUDPDataDropped = errors.New("udp batches dropped undecodable after delivery")

// Flush polls and retransmits until the watermark has passed every sent
// datagram, then audits the ack accounting: the watermark promises
// consumed-exactly-once, not applied — a CRC-valid batch the server could
// not decode advances it while counting as a drop (see proto.UDPAck.Applied).
// A nil return therefore means every batch this ingester sent was applied
// to the engine exactly once; a return wrapping ErrUDPDataDropped names how
// many of this ingester's batches the server consumed without applying
// (cumulative over the ingester's lifetime — repeated flushes re-report an
// earlier loss).
func (u *UDPIngester) Flush() error {
	if err := u.reap(0); err != nil {
		return err
	}
	consumed := u.last.Cum - u.base.Cum
	applied := u.last.Applied - u.base.Applied
	if lost := consumed - applied; lost > 0 {
		return fmt.Errorf("client: udp source %d: %w: %d of %d consumed batches unapplied", u.opt.Source, ErrUDPDataDropped, lost, consumed)
	}
	return nil
}

// Cum returns the last watermark the ingester has seen.
func (u *UDPIngester) Cum() uint64 { return u.cum }

// Applied returns how many of this ingester's batches the server has
// reported applied to the engine, as of the last poll. Dial-time baseline
// state of a reused source id is excluded.
func (u *UDPIngester) Applied() uint64 { return u.last.Applied - u.base.Applied }

// Drops returns how many of this ingester's datagrams the server has
// reported dropped for non-duplicate reasons, as of the last poll —
// recoverable window overflows and drain refusals alongside the
// unrecoverable decode failures Flush reports. Dial-time baseline state of
// a reused source id is excluded.
func (u *UDPIngester) Drops() uint64 { return u.last.Drops - u.base.Drops }

// SetDropHook installs a transmission predicate for loss-injection tests:
// when it returns true for a (seq, attempt) pair, that transmission is
// dropped on the floor instead of written, as the network might do. Not
// for production use.
func (u *UDPIngester) SetDropHook(fn func(seq uint64, attempt int) bool) { u.opt.dropSend = fn }

// Close releases the socket. It does not flush.
func (u *UDPIngester) Close() error {
	return u.pc.Close()
}
