package server

import (
	"errors"
	"fmt"
	"net"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"implicate/internal/checkpoint"
	"implicate/internal/client"
	"implicate/internal/core"
	"implicate/internal/exact"
	"implicate/internal/imps"
	"implicate/internal/proto"
	"implicate/internal/query"
	"implicate/internal/stream"
)

const testSQL = `SELECT COUNT(DISTINCT A) FROM t WHERE A IMPLIES B WITH SUPPORT >= 2, MULTIPLICITY <= 2, CONFIDENCE >= 0.8 TOP 1`

func testSchema(t *testing.T) *stream.Schema {
	t.Helper()
	s, err := stream.NewSchema("A", "B")
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func exactBackend() query.Backend {
	return func(cond imps.Conditions) (imps.Estimator, error) { return exact.NewCounter(cond) }
}

// sketchBackend builds fixed-seed sketches and records the conditions the
// engine hands it, so tests can build merge-compatible peer sketches.
func sketchBackend(seed uint64, captured *imps.Conditions) query.Backend {
	return func(cond imps.Conditions) (imps.Estimator, error) {
		if captured != nil {
			*captured = cond
		}
		return core.NewSketch(cond, core.Options{Seed: seed})
	}
}

func testEngine(t *testing.T, schema *stream.Schema, backend query.Backend) *query.Engine {
	t.Helper()
	eng := query.NewEngine(schema)
	if _, err := eng.RegisterSQL(testSQL, backend); err != nil {
		t.Fatal(err)
	}
	return eng
}

func startServer(t *testing.T, cfg Config) *Server {
	t.Helper()
	if cfg.Addr == "" {
		cfg.Addr = "127.0.0.1:0"
	}
	s, err := Listen(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func dialClient(t *testing.T, s *Server, schema *stream.Schema, opt client.Options) *client.Client {
	t.Helper()
	cl, err := client.Dial(s.Addr(), schema, opt)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cl.Close() })
	return cl
}

// makeTuples builds n tuples: sources s0..s(nSrc-1) round-robin, each with a
// single destination, so every supported source implies.
func makeTuples(n, nSrc int) []stream.Tuple {
	ts := make([]stream.Tuple, n)
	for i := range ts {
		src := i % nSrc
		ts[i] = stream.Tuple{fmt.Sprintf("s%d", src), fmt.Sprintf("d%d", src%17)}
	}
	return ts
}

// waitTuples polls Query until the server's engine reports the wanted
// applied-tuple count (acks confirm enqueueing, not application).
func waitTuples(t *testing.T, cl *client.Client, want int64) proto.QueryResult {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		res, err := cl.Query(0)
		if err != nil {
			t.Fatal(err)
		}
		if res.Tuples >= want {
			if res.Tuples > want {
				t.Fatalf("engine applied %d tuples, want %d", res.Tuples, want)
			}
			return res
		}
		if time.Now().After(deadline) {
			t.Fatalf("engine stuck at %d of %d tuples", res.Tuples, want)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestServerIngestQueryStats(t *testing.T) {
	schema := testSchema(t)
	srv := startServer(t, Config{Schema: schema, Engine: testEngine(t, schema, exactBackend())})
	cl := dialClient(t, srv, schema, client.Options{})

	// A shadow engine fed the same tuples gives the expected exact answer
	// (exact counting is order-independent, so producer/worker interleaving
	// cannot affect it).
	shadow := testEngine(t, schema, exactBackend())

	tuples := makeTuples(300, 10)
	for i := 0; i < 300; i += 100 {
		if err := cl.IngestBatch(tuples[i : i+100]); err != nil {
			t.Fatal(err)
		}
	}
	shadow.ProcessBatch(tuples)

	res := waitTuples(t, cl, 300)
	if want := shadow.Statements()[0].Count(); res.Count != want {
		t.Fatalf("server count %v, shadow count %v", res.Count, want)
	}

	sn, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if sn.TuplesIngested != 300 || sn.Batches != 3 || sn.BatchesRejected != 0 {
		t.Fatalf("stats %+v", sn)
	}
	if sn.Latency[0].Count() != 3 { // RPCIngest
		t.Fatalf("ingest latency observations %d, want 3", sn.Latency[0].Count())
	}
}

func TestServerIngestRejectsBadBatches(t *testing.T) {
	schema := testSchema(t)
	srv := startServer(t, Config{Schema: schema, Engine: testEngine(t, schema, exactBackend()), MaxBatchTuples: 10})
	cl := dialClient(t, srv, schema, client.Options{})

	// Schema mismatch: the batch header names different attributes.
	other, err := stream.NewSchema("X", "B")
	if err != nil {
		t.Fatal(err)
	}
	payload, err := client.EncodeBatch(other, makeTuples(5, 5))
	if err != nil {
		t.Fatal(err)
	}
	var remote *client.RemoteError
	if err := cl.IngestEncoded(payload, 5); !errors.As(err, &remote) || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("schema mismatch not rejected: %v", err)
	}

	// Oversized batch.
	if err := cl.IngestBatch(makeTuples(11, 5)); !errors.As(err, &remote) || !strings.Contains(err.Error(), "exceeds") {
		t.Fatalf("oversize batch not rejected: %v", err)
	}

	// Garbage payload.
	if err := cl.IngestEncoded([]byte("not a batch"), 1); !errors.As(err, &remote) {
		t.Fatalf("garbage payload not rejected: %v", err)
	}

	// The connection survives all three errors and the server state is clean.
	sn, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if sn.TuplesIngested != 0 || sn.Batches != 0 {
		t.Fatalf("rejected batches leaked into counters: %+v", sn)
	}
}

func TestServerBackpressure(t *testing.T) {
	schema := testSchema(t)
	entered := make(chan struct{}, 64)
	release := make(chan struct{})
	var releaseOnce sync.Once
	unblock := func() { releaseOnce.Do(func() { close(release) }) }
	defer unblock() // a failed assertion must not leave the worker stuck in the gate
	cfg := Config{
		Schema:     schema,
		Engine:     testEngine(t, schema, exactBackend()),
		QueueDepth: 1,
		RetryAfter: 5 * time.Millisecond,
		gate:       func() { entered <- struct{}{}; <-release },
	}
	srv := startServer(t, cfg)

	// Raw proto connection: the pooled client would absorb the TBusy we want
	// to observe.
	nc, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	payload, err := client.EncodeBatch(schema, makeTuples(10, 5))
	if err != nil {
		t.Fatal(err)
	}
	send := func(id uint64) proto.Frame {
		t.Helper()
		if err := proto.WriteFrame(nc, proto.Frame{Type: proto.TIngest, ID: id, Payload: payload}); err != nil {
			t.Fatal(err)
		}
		f, err := proto.ReadFrame(nc)
		if err != nil {
			t.Fatal(err)
		}
		if f.ID != id {
			t.Fatalf("response id %d for request %d", f.ID, id)
		}
		return f
	}

	// Batch 1 is taken by the worker, which then blocks in the gate.
	if f := send(1); f.Type != proto.TOK {
		t.Fatalf("batch 1: %s", f.Type)
	}
	<-entered
	// Batch 2 fills the 1-deep queue.
	if f := send(2); f.Type != proto.TOK {
		t.Fatalf("batch 2: %s", f.Type)
	}
	// Batch 3 must be refused with the explicit backpressure reply.
	f := send(3)
	if f.Type != proto.TBusy {
		t.Fatalf("batch 3: got %s, want Busy", f.Type)
	}
	busy, err := proto.DecodeBusy(f.Payload)
	if err != nil {
		t.Fatal(err)
	}
	if busy.RetryAfter != 5*time.Millisecond {
		t.Fatalf("retry hint %v, want 5ms", busy.RetryAfter)
	}

	sn := srv.Telemetry().Snapshot()
	if sn.Batches != 2 || sn.BatchesRejected != 1 {
		t.Fatalf("accepted=%d rejected=%d, want 2/1", sn.Batches, sn.BatchesRejected)
	}
	if sn.QueueHighWater != 1 {
		t.Fatalf("queue high water %d, want 1", sn.QueueHighWater)
	}
	// A refused batch was not enqueued: after the worker drains, retrying it
	// succeeds and nothing was double-counted.
	unblock()
	if f := send(4); f.Type != proto.TOK {
		t.Fatalf("retried batch: %s", f.Type)
	}
	cl := dialClient(t, srv, schema, client.Options{})
	waitTuples(t, cl, 30)
}

func TestServerMerge(t *testing.T) {
	schema := testSchema(t)
	var cond imps.Conditions
	backend := sketchBackend(7, &cond)
	eng := query.NewEngine(schema)
	if _, err := eng.RegisterSQL(testSQL, backend); err != nil { // stmt 0: sketch
		t.Fatal(err)
	}
	if _, err := eng.RegisterSQL(testSQL, exactBackend()); err != nil { // stmt 1: exact
		t.Fatal(err)
	}
	// stmt 2 shares stmt 0's estimator (same predicate and backend, NOT
	// IMPLIES mode).
	notSQL := strings.Replace(testSQL, "A IMPLIES B", "A NOT IMPLIES B", 1)
	if st, err := eng.RegisterSQL(notSQL, backend); err != nil {
		t.Fatal(err)
	} else if !st.Shared() {
		t.Fatal("test setup: statement 2 did not share")
	}
	srv := startServer(t, Config{Schema: schema, Engine: eng})
	cl := dialClient(t, srv, schema, client.Options{})

	// A merge-compatible leaf sketch with real contents.
	src := core.MustSketch(cond, core.Options{Seed: 7})
	for _, tp := range makeTuples(400, 20) {
		src.Add(tp[0], tp[1])
	}
	data, err := src.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.SnapshotMerge(0, data); err != nil {
		t.Fatal(err)
	}
	res, err := cl.Query(0)
	if err != nil {
		t.Fatal(err)
	}
	if want := src.ImplicationCount(); res.Count != want {
		t.Fatalf("merged count %v, want the leaf's %v", res.Count, want)
	}
	if sn := srv.Telemetry().Snapshot(); sn.Merges != 1 {
		t.Fatalf("merge counter %d, want 1", sn.Merges)
	}

	var remote *client.RemoteError
	// Mismatched sketch configuration must be a reported error.
	bad := core.MustSketch(cond, core.Options{Seed: 8})
	badData, err := bad.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.SnapshotMerge(0, badData); !errors.As(err, &remote) {
		t.Fatalf("mismatched seed merge not rejected: %v", err)
	}
	// Corrupt sketch bytes.
	if err := cl.SnapshotMerge(0, data[:len(data)-2]); !errors.As(err, &remote) {
		t.Fatalf("corrupt sketch not rejected: %v", err)
	}
	// A non-sketch estimator cannot merge.
	if err := cl.SnapshotMerge(1, data); !errors.As(err, &remote) || !strings.Contains(err.Error(), "does not support merging") {
		t.Fatalf("merge into exact estimator not rejected: %v", err)
	}
	// A shared statement points at its owner.
	if err := cl.SnapshotMerge(2, data); !errors.As(err, &remote) || !strings.Contains(err.Error(), "shared") {
		t.Fatalf("merge into shared statement not rejected: %v", err)
	}
	// Out-of-range statement.
	if err := cl.SnapshotMerge(99, data); !errors.As(err, &remote) {
		t.Fatalf("merge into missing statement not rejected: %v", err)
	}
	// None of the failures touched the estimator.
	if res, err := cl.Query(0); err != nil || res.Count != src.ImplicationCount() {
		t.Fatalf("failed merges changed the count: %v %v", res.Count, err)
	}
}

func TestServerQueryErrors(t *testing.T) {
	schema := testSchema(t)
	srv := startServer(t, Config{Schema: schema, Engine: testEngine(t, schema, exactBackend())})
	cl := dialClient(t, srv, schema, client.Options{})
	var remote *client.RemoteError
	if _, err := cl.Query(5); !errors.As(err, &remote) || !strings.Contains(err.Error(), "no statement 5") {
		t.Fatalf("out-of-range statement: %v", err)
	}
}

func TestServerGracefulCloseWritesCheckpoint(t *testing.T) {
	schema := testSchema(t)
	ckpt := filepath.Join(t.TempDir(), "srv.ckpt")
	var cond imps.Conditions
	backend := sketchBackend(3, &cond)
	srv := startServer(t, Config{
		Schema:         schema,
		Engine:         testEngine(t, schema, backend),
		CheckpointPath: ckpt,
	})
	cl := dialClient(t, srv, schema, client.Options{})

	tuples := makeTuples(500, 25)
	for i := 0; i < len(tuples); i += 100 {
		if err := cl.IngestBatch(tuples[i : i+100]); err != nil {
			t.Fatal(err)
		}
	}
	// Close without waiting for the worker: every acknowledged batch must be
	// drained into the engine before the final checkpoint.
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	snap, err := checkpoint.Read(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Offset != 500 {
		t.Fatalf("checkpoint offset %d, want 500 (acked batches not drained?)", snap.Offset)
	}
	resolve := func(q query.Query, kind string) (query.Backend, error) { return backend, nil }
	restored, err := checkpoint.Restore(snap, schema, resolve)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := restored.Statements()[0].Count(), srv.Engine().Statements()[0].Count(); got != want {
		t.Fatalf("restored count %v, live count %v", got, want)
	}
}

func TestServerKillSkipsFinalCheckpoint(t *testing.T) {
	schema := testSchema(t)
	ckpt := filepath.Join(t.TempDir(), "srv.ckpt")
	srv := startServer(t, Config{
		Schema:          schema,
		Engine:          testEngine(t, schema, exactBackend()),
		CheckpointPath:  ckpt,
		CheckpointEvery: 100,
	})
	cl := dialClient(t, srv, schema, client.Options{})
	tuples := makeTuples(250, 10)
	// Three batches: the periodic checkpointer fires after the 100- and
	// 200-tuple batches but not after the final 50.
	for _, r := range [][2]int{{0, 100}, {100, 200}, {200, 250}} {
		if err := cl.IngestBatch(tuples[r[0]:r[1]]); err != nil {
			t.Fatal(err)
		}
	}
	waitTuples(t, cl, 250)
	srv.Kill()
	// Only the periodic checkpoint at 200 survives; the 250-tuple state died
	// with the server.
	snap, err := checkpoint.Read(ckpt)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Offset != 200 {
		t.Fatalf("surviving checkpoint offset %d, want 200", snap.Offset)
	}
}

func TestServerRefusesIngestWhileDraining(t *testing.T) {
	schema := testSchema(t)
	srv := startServer(t, Config{Schema: schema, Engine: testEngine(t, schema, exactBackend())})
	cl := dialClient(t, srv, schema, client.Options{})
	if err := cl.IngestBatch(makeTuples(10, 5)); err != nil {
		t.Fatal(err)
	}
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	if err := cl.IngestBatch(makeTuples(10, 5)); err == nil {
		t.Fatal("ingest after Close succeeded")
	}
}

func TestListenValidation(t *testing.T) {
	schema := testSchema(t)
	eng := testEngine(t, schema, exactBackend())
	if _, err := Listen(Config{Addr: "127.0.0.1:0", Engine: eng}); err == nil {
		t.Error("nil schema accepted")
	}
	if _, err := Listen(Config{Addr: "127.0.0.1:0", Schema: schema}); err == nil {
		t.Error("nil engine accepted")
	}
	if _, err := Listen(Config{Addr: "127.0.0.1:0", Schema: schema, Engine: eng, QueueDepth: -1}); err == nil {
		t.Error("negative queue depth accepted")
	}
	if _, err := Listen(Config{Addr: "127.0.0.1:0", Schema: schema, Engine: eng, Workers: -1}); err == nil {
		t.Error("negative workers accepted")
	}
	if _, err := Listen(Config{Addr: "127.0.0.1:0", Schema: schema, Engine: eng, DispatchShards: -1}); err == nil {
		t.Error("negative dispatch shards accepted")
	}
	if _, err := Listen(Config{Addr: "127.0.0.1:0", Schema: schema, Engine: eng, MaxBatchTuples: -1}); err == nil {
		t.Error("negative max batch tuples accepted")
	}
	if _, err := Listen(Config{Addr: "127.0.0.1:0", Schema: schema, Engine: eng, CheckpointEvery: -1}); err == nil {
		t.Error("negative checkpoint interval accepted")
	}
	if _, err := Listen(Config{Addr: "127.0.0.1:0", Schema: schema, Engine: eng, RetryAfter: -1}); err == nil {
		t.Error("negative retry-after accepted")
	}
	if _, err := Listen(Config{Addr: "127.0.0.1:0", Schema: schema, Engine: eng, TraceSpans: -1}); err == nil {
		t.Error("negative trace spans accepted")
	}
	if _, err := Listen(Config{Addr: "127.0.0.1:99999", Schema: schema, Engine: eng}); err == nil {
		t.Error("unusable listen address accepted")
	}
}

func TestServerDropsMalformedFrames(t *testing.T) {
	schema := testSchema(t)
	srv := startServer(t, Config{Schema: schema, Engine: testEngine(t, schema, exactBackend())})
	nc, err := net.Dial("tcp", srv.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	if _, err := nc.Write([]byte("\xff\xff\xff\xffgarbage")); err != nil {
		t.Fatal(err)
	}
	// The server must drop the connection, not hang or crash.
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	buf := make([]byte, 1)
	if _, err := nc.Read(buf); err == nil {
		t.Fatal("server answered a malformed frame")
	}
	// And keep serving new connections.
	cl := dialClient(t, srv, schema, client.Options{})
	if _, err := cl.Stats(); err != nil {
		t.Fatal(err)
	}
}
