module implicate

go 1.22
