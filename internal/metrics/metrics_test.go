package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRelErr(t *testing.T) {
	cases := []struct{ actual, measured, want float64 }{
		{100, 100, 0},
		{100, 90, 0.1},
		{100, 110, 0.1},
		{0, 0, 0},
		{-50, -60, 0.2},
	}
	for _, c := range cases {
		if got := RelErr(c.actual, c.measured); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("RelErr(%v,%v) = %v, want %v", c.actual, c.measured, got, c.want)
		}
	}
	if !math.IsInf(RelErr(0, 1), 1) {
		t.Error("RelErr(0,1) should be +Inf")
	}
}

func TestWelfordSmall(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Var() != 0 || w.N() != 0 {
		t.Fatal("zero value not empty")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		w.Add(x)
	}
	if w.Mean() != 5 {
		t.Fatalf("mean = %v", w.Mean())
	}
	// Population variance of this classic sequence is 4; Welford returns
	// the unbiased sample variance 32/7.
	if math.Abs(w.Var()-32.0/7) > 1e-12 {
		t.Fatalf("var = %v", w.Var())
	}
	if math.Abs(w.Stddev()-math.Sqrt(32.0/7)) > 1e-12 {
		t.Fatalf("stddev = %v", w.Stddev())
	}
	if math.Abs(w.StdErrOfMean()-w.Stddev()/math.Sqrt(8)) > 1e-12 {
		t.Fatalf("sem = %v", w.StdErrOfMean())
	}
}

// TestWelfordMatchesNaive property-checks Welford against the two-pass
// formulas.
func TestWelfordMatchesNaive(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(100)
		xs := make([]float64, n)
		var w Welford
		var sum float64
		for i := range xs {
			xs[i] = rng.NormFloat64()*10 + 5
			w.Add(xs[i])
			sum += xs[i]
		}
		mean := sum / float64(n)
		var ss float64
		for _, x := range xs {
			ss += (x - mean) * (x - mean)
		}
		v := ss / float64(n-1)
		return math.Abs(w.Mean()-mean) < 1e-9 && math.Abs(w.Var()-v) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
