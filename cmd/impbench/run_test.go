package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseFlags(t *testing.T) {
	cfg, err := parseFlags([]string{"-exp", "fig4,table5", "-runs", "2"})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.exp != "fig4,table5" || cfg.runs != 2 || cfg.paper {
		t.Fatalf("parsed %+v", cfg)
	}
	if _, err := parseFlags([]string{"-nope"}); err == nil {
		t.Error("unknown flag accepted")
	}
}

func TestRunStaticTables(t *testing.T) {
	var out strings.Builder
	if err := run(&config{exp: "table3,table5", seed: 1}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Table 3", "Table 5", "3363", "1920"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q", want)
		}
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run(&config{exp: "figZZ", seed: 1}, &strings.Builder{}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunSmallFigure(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run too slow for -short")
	}
	var out strings.Builder
	// A single tiny Dataset One run through the command path.
	if err := run(&config{exp: "table4", seed: 1}, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "Table 4") || !strings.Contains(out.String(), "(paper)") {
		t.Fatalf("output malformed:\n%s", out.String())
	}
}

func TestRunIngest(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment run too slow for -short")
	}
	jsonPath := filepath.Join(t.TempDir(), "ingest.json")
	var out strings.Builder
	if err := run(&config{exp: "ingest", seed: 1, parallel: 2, jsonOut: jsonPath}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"Ingestion throughput", "serial", "mutex", "sharded-4"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q", want)
		}
	}
	data, err := os.ReadFile(jsonPath)
	if err != nil {
		t.Fatal(err)
	}
	var report struct {
		Producers int `json:"producers"`
		Rows      []struct {
			Variant      string  `json:"variant"`
			TuplesPerSec float64 `json:"tuples_per_sec"`
		} `json:"rows"`
	}
	if err := json.Unmarshal(data, &report); err != nil {
		t.Fatal(err)
	}
	if report.Producers != 2 || len(report.Rows) < 6 {
		t.Fatalf("json report = %+v", report)
	}
	for _, r := range report.Rows {
		if r.TuplesPerSec <= 0 {
			t.Errorf("variant %s reported %g tuples/s", r.Variant, r.TuplesPerSec)
		}
	}
}

func TestParseCardsOverride(t *testing.T) {
	cfg, err := parseFlags([]string{"-exp", "fig4", "-cards", "100, 200"})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.cards != "100, 200" {
		t.Fatalf("cards = %q", cfg.cards)
	}
	if err := run(&config{exp: "fig4", cards: "xyz", runs: 1, seed: 1}, &strings.Builder{}); err == nil {
		t.Fatal("bad -cards value accepted")
	}
}
