package main

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"implicate"
)

func TestParseFlags(t *testing.T) {
	cfg, rest, err := parseFlags([]string{
		"-listen", ":0", "-leaves", "a=1:1,b=2:2", "-schema", "A,B",
		"-q", "q1", "-q", "q2", "-parts", "16", "-probe-fails", "5",
	})
	if err != nil {
		t.Fatal(err)
	}
	if cfg.listen != ":0" || cfg.leaves != "a=1:1,b=2:2" || len(cfg.queries) != 2 ||
		cfg.queries[1] != "q2" || cfg.parts != 16 || cfg.probeFails != 5 || len(rest) != 0 {
		t.Fatalf("parsed %+v %v", cfg, rest)
	}
	if _, _, err := parseFlags([]string{"-bogus"}); err == nil {
		t.Error("unknown flag accepted")
	}
}

func TestParseLeaves(t *testing.T) {
	specs, err := parseLeaves(" leaf0 = 127.0.0.1:7101 , leaf1=127.0.0.1:7102 ")
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 || specs[0].Name != "leaf0" || specs[0].Addr != "127.0.0.1:7101" ||
		specs[1].Name != "leaf1" || specs[1].Addr != "127.0.0.1:7102" {
		t.Fatalf("parsed %+v", specs)
	}
	for _, bad := range []string{"", "noaddr", "=addr", "name=", "a=1,a=2"} {
		if _, err := parseLeaves(bad); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
}

func TestValidateFlagCombinations(t *testing.T) {
	base := func() config {
		return config{
			listen: ":0", leaves: "a=1:1,b=2:2", schema: "A,B", queries: queryList{"x"},
			parts: 64, flush: 512, probeEvery: time.Millisecond,
			probeTimeout: time.Millisecond, probeFails: 1, drainTimeout: time.Second,
		}
	}
	cases := []struct {
		name    string
		mut     func(*config)
		wantErr string
	}{
		{"ok", func(c *config) {}, ""},
		{"missing schema", func(c *config) { c.schema = "" }, "-schema"},
		{"missing query", func(c *config) { c.queries = nil }, "-q"},
		{"missing leaves", func(c *config) { c.leaves = "" }, "-leaves"},
		{"bad leaves", func(c *config) { c.leaves = "justanaddr" }, "name=addr"},
		{"parts not power of two", func(c *config) { c.parts = 48 }, "-parts"},
		{"parts under fleet", func(c *config) { c.parts = 1 }, "cannot cover"},
		{"zero flush", func(c *config) { c.flush = 0 }, "-flush"},
		{"zero probe fails", func(c *config) { c.probeFails = 0 }, "-probe-fails"},
		{"zero probe period", func(c *config) { c.probeEvery = 0 }, "positive"},
	}
	for _, tc := range cases {
		cfg := base()
		tc.mut(&cfg)
		err := cfg.validate()
		if tc.wantErr == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("%s: invalid combination accepted", tc.name)
		} else if !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error %q does not mention %q", tc.name, err, tc.wantErr)
		}
	}
}

// Smoke-test fixtures: the same statements on every node, backed by
// merge-compatible sketches (one shared seed, like every leaf running
// impserved with the same -seed).
var smokeSQL = queryList{
	`SELECT COUNT(DISTINCT A) FROM t WHERE A IMPLIES B WITH SUPPORT >= 2, MULTIPLICITY <= 2, CONFIDENCE >= 0.8 TOP 1`,
	`SELECT COUNT(DISTINCT A) FROM t WHERE A IMPLIES B WITH SUPPORT >= 3, MULTIPLICITY <= 2, CONFIDENCE >= 0.8 TOP 1`,
}

const smokeSeed = 7

func smokeEngine(t *testing.T, schema *implicate.Schema) *implicate.Engine {
	t.Helper()
	backend := implicate.SketchBackend(implicate.Options{Seed: smokeSeed})
	eng := implicate.NewEngine(schema)
	for _, sql := range smokeSQL {
		if _, err := eng.RegisterSQL(sql, backend); err != nil {
			t.Fatal(err)
		}
	}
	return eng
}

func smokeLeaf(t *testing.T, schema *implicate.Schema, addr, ckpt string, eng *implicate.Engine) *implicate.Server {
	t.Helper()
	srv, err := implicate.Serve(implicate.ServerConfig{
		Addr:            addr,
		Schema:          schema,
		Engine:          eng,
		Workers:         2,
		CheckpointPath:  ckpt,
		CheckpointEvery: 500,
	})
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

func smokeTuples(n int) []implicate.Tuple {
	ts := make([]implicate.Tuple, n)
	for i := range ts {
		ts[i] = implicate.Tuple{fmt.Sprintf("s%d", i%97), fmt.Sprintf("d%d", (i*7)%13)}
	}
	return ts
}

func mustSchema(t *testing.T, names ...string) *implicate.Schema {
	t.Helper()
	s, err := implicate.NewSchema(names...)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestClusterSmoke is the end-to-end fleet path `make cluster-smoke`
// exercises through the test binary: impcoordd fronts three impserved
// leaves over loopback, producers ingest through the wire front-end, one
// leaf is killed mid-stream and restarted from its checkpoint on the same
// address (the operator recovery the daemon's docs prescribe — no Restart
// hook), and the fleet's final merged state must be bit-identical to an
// uncrashed shadow fleet fed the same stream.
func TestClusterSmoke(t *testing.T) {
	const (
		nLeaves = 3
		victim  = 1
		total   = 6000
		batch   = 200
		killAt  = total / 3
	)
	schema := mustSchema(t, "A", "B")
	dir := t.TempDir()

	// The main fleet: three leaves with checkpoints, then the daemon.
	srvs := make([]*implicate.Server, nLeaves)
	names := make([]string, nLeaves)
	ckpts := make([]string, nLeaves)
	var leafFlag []string
	for i := range srvs {
		names[i] = fmt.Sprintf("leaf%d", i)
		ckpts[i] = filepath.Join(dir, names[i]+".ckpt")
		srvs[i] = smokeLeaf(t, schema, "127.0.0.1:0", ckpts[i], smokeEngine(t, schema))
		leafFlag = append(leafFlag, names[i]+"="+srvs[i].Addr())
	}
	defer func() {
		for _, srv := range srvs {
			srv.Kill()
		}
	}()

	cfg := &config{
		listen: "127.0.0.1:0",
		leaves: strings.Join(leafFlag, ","),
		schema: "A, B",
		// flush=1 journals every routed tuple immediately, so the fleet-wide
		// applied count observable through Query reaches the ingested total
		// without an explicit flush RPC (the wire has none; Flush runs at
		// shutdown).
		queries: smokeSQL, parts: 64, flush: 1,
		probeEvery: 10 * time.Millisecond, probeTimeout: 250 * time.Millisecond,
		probeFails: 2, drainTimeout: 30 * time.Second,
	}
	if err := cfg.validate(); err != nil {
		t.Fatal(err)
	}
	ready := make(chan coordAddrs, 1)
	stop := make(chan struct{})
	var out strings.Builder
	serveErr := make(chan error, 1)
	go func() { serveErr <- serve(cfg, ready, stop, &out) }()
	var feAddr string
	select {
	case a := <-ready:
		feAddr = a.front
	case err := <-serveErr:
		t.Fatal(err)
	case <-time.After(10 * time.Second):
		t.Fatal("coordinator did not come up")
	}

	// The shadow fleet: same leaf names (identical routing), fresh ports,
	// never crashed. Its coordinator runs in-process.
	shadowSrvs := make([]*implicate.Server, nLeaves)
	shadowSpecs := make([]implicate.LeafSpec, nLeaves)
	for i := range shadowSrvs {
		shadowSrvs[i] = smokeLeaf(t, schema, "127.0.0.1:0", "", smokeEngine(t, schema))
		shadowSpecs[i] = implicate.LeafSpec{Name: names[i], Addr: shadowSrvs[i].Addr()}
		defer shadowSrvs[i].Kill()
	}
	shadow, err := implicate.NewCoordinator(implicate.CoordinatorConfig{
		Schema: schema, Statements: smokeSQL, Leaves: shadowSpecs,
		VirtualPartitions: cfg.parts,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer shadow.Close()

	cl, err := implicate.Dial(feAddr, schema, implicate.ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	tuples := smokeTuples(total)
	for off := 0; off < total; off += batch {
		chunk := tuples[off : off+batch]
		if err := cl.IngestBatch(chunk); err != nil {
			t.Fatal(err)
		}
		if err := shadow.Ingest(chunk); err != nil {
			t.Fatal(err)
		}
		if off+batch == killAt {
			// The victim dies abruptly: connections cut, queued batches
			// lost, no final checkpoint. Restart it from the last periodic
			// checkpoint on the SAME address — the daemon has no restart
			// hook, so recovery waits for exactly this operator move.
			addr := srvs[victim].Addr()
			srvs[victim].Kill()
			snap, err := implicate.ReadCheckpoint(ckpts[victim])
			var eng *implicate.Engine
			switch {
			case err == nil:
				if eng, err = implicate.RestoreCheckpoint(snap, schema, nil); err != nil {
					t.Fatal(err)
				}
			case errors.Is(err, os.ErrNotExist):
				eng = smokeEngine(t, schema)
			default:
				t.Fatal(err)
			}
			srvs[victim] = smokeLeaf(t, schema, addr, ckpts[victim], eng)
		}
	}

	// Quiesce: every routed tuple is journaled (flush=1), so the fleet-wide
	// applied total reaching the ingested total means every leaf applied
	// everything — including the recovered victim's replay.
	deadline := time.Now().Add(30 * time.Second)
	for {
		res, err := cl.Query(0)
		if err != nil {
			t.Fatal(err)
		}
		if res.Tuples == total {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("fleet stuck at %d of %d tuples", res.Tuples, total)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := shadow.Flush(); err != nil {
		t.Fatal(err)
	}

	// Bit-identity: merged sketch bytes and query answers must match the
	// uncrashed shadow exactly, per statement.
	for stmt := range smokeSQL {
		got, err := cl.Snapshot(stmt)
		if err != nil {
			t.Fatal(err)
		}
		want, err := shadow.Snapshot(stmt)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got.Sketch, want.Sketch) {
			t.Errorf("stmt %d: crashed fleet's merged sketch differs from the uncrashed shadow (%d vs %d bytes)",
				stmt, len(got.Sketch), len(want.Sketch))
		}
		if got.Tuples != total || got.Kind != "nips" {
			t.Errorf("stmt %d: snapshot %d tuples kind %q", stmt, got.Tuples, got.Kind)
		}
		gotQ, err := cl.Query(stmt)
		if err != nil {
			t.Fatal(err)
		}
		wantQ, err := shadow.Query(stmt)
		if err != nil {
			t.Fatal(err)
		}
		if math.Float64bits(gotQ.Count) != math.Float64bits(wantQ.Count) {
			t.Errorf("stmt %d: count %v differs from shadow %v", stmt, gotQ.Count, wantQ.Count)
		}
	}

	// Membership through the wire: the victim is back up with a bumped
	// epoch, and the route table is fully assigned.
	cs, err := cl.Cluster()
	if err != nil {
		t.Fatal(err)
	}
	if len(cs.Leaves) != nLeaves || cs.VirtualPartitions != uint32(cfg.parts) {
		t.Fatalf("cluster %+v", cs)
	}
	var parts uint32
	for i, lf := range cs.Leaves {
		parts += lf.Parts
		if lf.State != implicate.LeafUp {
			t.Errorf("leaf %d state %d, want up", i, lf.State)
		}
	}
	if parts != uint32(cfg.parts) {
		t.Errorf("route table assigns %d partitions, want %d", parts, cfg.parts)
	}
	if cs.Leaves[victim].Epoch < 1 {
		t.Errorf("victim epoch %d, want >= 1", cs.Leaves[victim].Epoch)
	}

	// Graceful shutdown prints the summary.
	close(stop)
	select {
	case err := <-serveErr:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("coordinator did not shut down")
	}
	if !strings.Contains(out.String(), "stmt 0:") || !strings.Contains(out.String(), "fleet: 3 leaves") {
		t.Fatalf("summary missing:\n%s", out.String())
	}
}
