// Coordinator-facing frames (DESIGN.md §13). Two message types extend the
// protocol for the managed fleet topology:
//
//   - TSnapshot is the pull direction of the paper's §2 aggregation tree:
//     where SnapshotMerge pushes a marshalled sketch INTO a server, Snapshot
//     asks a server to hand its current statement state OUT, so a
//     coordinator can fan a merge in from N leaves without every leaf
//     having to know its parent. A coordinator answers the same RPC with
//     its merged fleet state, which is what makes coordinators stackable
//     into deeper trees.
//   - TCluster reports a coordinator's membership view: one record per
//     leaf with its liveness state, recovery epoch, route share, and
//     journal/acknowledgement offsets. Leaf servers do not implement it.
package proto

import (
	"fmt"

	"implicate/internal/wire"
)

// SnapshotReq asks for the marshalled estimator state of one registered
// statement.
type SnapshotReq struct {
	Stmt uint32
}

// Encode serializes the request payload.
func (q SnapshotReq) Encode() []byte {
	e := wire.NewEncoder(4)
	e.U32(q.Stmt)
	return e.Bytes()
}

// DecodeSnapshotReq parses a TSnapshot payload.
func DecodeSnapshotReq(data []byte) (SnapshotReq, error) {
	d := wire.NewDecoder(data)
	q := SnapshotReq{Stmt: d.U32()}
	if err := d.Done(); err != nil {
		return SnapshotReq{}, fmt.Errorf("proto: snapshot request: %w", err)
	}
	return q, nil
}

// SnapshotResult carries one statement's marshalled estimator state and the
// engine's applied-tuple count at the moment of the marshal — the offset a
// coordinator compares against its journal to know the snapshot covers
// everything it has shipped.
type SnapshotResult struct {
	// Tuples is the engine's applied-tuple total when the state was
	// captured.
	Tuples int64
	// Kind is the snapshot-registry name of the estimator ("nips", ...).
	Kind string
	// Sketch is the estimator's MarshalBinary form, merge-compatible with
	// the SnapshotMerge RPC's request payload.
	Sketch []byte
}

// maxKindLen bounds an estimator kind name on the wire.
const maxKindLen = 64

// Encode serializes the result payload.
func (r SnapshotResult) Encode() []byte {
	e := wire.NewEncoder(16 + len(r.Kind) + len(r.Sketch))
	e.I64(r.Tuples)
	e.Str(r.Kind)
	e.Blob(r.Sketch)
	return e.Bytes()
}

// DecodeSnapshotResult parses a TResult payload of a snapshot pull. The
// sketch bytes alias data.
func DecodeSnapshotResult(data []byte) (SnapshotResult, error) {
	d := wire.NewDecoder(data)
	r := SnapshotResult{Tuples: d.I64(), Kind: d.Str(maxKindLen), Sketch: d.Blob(MaxFrame)}
	if err := d.Done(); err != nil {
		return SnapshotResult{}, fmt.Errorf("proto: snapshot result: %w", err)
	}
	return r, nil
}

// Leaf liveness states carried in LeafStatus.State. The values are wire
// constants; the coord package maps them to its own state machine.
const (
	LeafUp         = 0
	LeafDown       = 1
	LeafRecovering = 2
)

// LeafStatus is one leaf's row in a coordinator's membership view.
type LeafStatus struct {
	// Addr is the leaf's current ingest address (it may change across a
	// recovery when the restart hook rebinds).
	Addr string
	// State is the liveness state (LeafUp, LeafDown, LeafRecovering).
	State uint8
	// Epoch counts completed recoveries: 0 for a leaf that has never died.
	Epoch uint64
	// Parts is how many virtual partitions the route table assigns here.
	Parts uint32
	// Journaled is the tuple count the coordinator has routed to this leaf
	// (the journal total, including batches not yet delivered).
	Journaled int64
	// Acked is the tuple count the leaf has acknowledged as enqueued.
	Acked int64
}

// ClusterStatus is a coordinator's answer to TCluster.
type ClusterStatus struct {
	// VirtualPartitions is the route table's size.
	VirtualPartitions uint32
	// Leaves holds one status per configured leaf, in route-table order.
	Leaves []LeafStatus
}

// maxLeafAddrLen bounds one leaf address string; maxClusterLeaves bounds
// the fleet size a status reply may claim before any allocation.
const (
	maxLeafAddrLen   = 256
	maxClusterLeaves = 1 << 16
)

// Encode serializes the cluster status payload.
func (c ClusterStatus) Encode() []byte {
	e := wire.NewEncoder(8 + len(c.Leaves)*48)
	e.U32(c.VirtualPartitions)
	e.U32(uint32(len(c.Leaves)))
	for _, l := range c.Leaves {
		e.Str(l.Addr)
		e.U8(l.State)
		e.U64(l.Epoch)
		e.U32(l.Parts)
		e.I64(l.Journaled)
		e.I64(l.Acked)
	}
	return e.Bytes()
}

// DecodeClusterStatus parses a TResult payload of a cluster poll.
func DecodeClusterStatus(data []byte) (ClusterStatus, error) {
	d := wire.NewDecoder(data)
	c := ClusterStatus{VirtualPartitions: d.U32()}
	n := d.U32()
	if d.Err() == nil && n > maxClusterLeaves {
		return ClusterStatus{}, fmt.Errorf("proto: cluster status: %w: %d leaves", wire.ErrCorrupt, n)
	}
	for i := uint32(0); i < n && d.Err() == nil; i++ {
		c.Leaves = append(c.Leaves, LeafStatus{
			Addr:      d.Str(maxLeafAddrLen),
			State:     d.U8(),
			Epoch:     d.U64(),
			Parts:     d.U32(),
			Journaled: d.I64(),
			Acked:     d.I64(),
		})
	}
	if err := d.Done(); err != nil {
		return ClusterStatus{}, fmt.Errorf("proto: cluster status: %w", err)
	}
	return c, nil
}
