package stream

import (
	"io"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestNewSchema(t *testing.T) {
	s, err := NewSchema("Source", "Destination", "Service", "Time")
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 4 {
		t.Fatalf("Len = %d", s.Len())
	}
	if i, ok := s.Index("Service"); !ok || i != 2 {
		t.Fatalf("Index(Service) = %d,%v", i, ok)
	}
	if _, ok := s.Index("Nope"); ok {
		t.Fatal("unknown attribute found")
	}
	if !reflect.DeepEqual(s.Names(), []string{"Source", "Destination", "Service", "Time"}) {
		t.Fatalf("Names = %v", s.Names())
	}
}

func TestNewSchemaErrors(t *testing.T) {
	if _, err := NewSchema(); err == nil {
		t.Error("empty schema accepted")
	}
	if _, err := NewSchema("a", ""); err == nil {
		t.Error("empty attribute name accepted")
	}
	if _, err := NewSchema("a", "b", "a"); err == nil {
		t.Error("duplicate attribute accepted")
	}
}

func TestMustSchemaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustSchema did not panic")
		}
	}()
	MustSchema()
}

func TestProjKeyAndValues(t *testing.T) {
	s := MustSchema("Source", "Destination", "Service")
	tup := Tuple{"S1", "D2", "WWW"}

	p := s.MustProj("Source", "Destination")
	if got := p.Key(tup); got != "S1\x1fD2" {
		t.Fatalf("Key = %q", got)
	}
	if got := p.Values(tup); !reflect.DeepEqual(got, []string{"S1", "D2"}) {
		t.Fatalf("Values = %v", got)
	}
	if p.Arity() != 2 {
		t.Fatalf("Arity = %d", p.Arity())
	}

	single := s.MustProj("Service")
	if got := single.Key(tup); got != "WWW" {
		t.Fatalf("single Key = %q", got)
	}

	reordered := s.MustProj("Service", "Source")
	if got := reordered.Key(tup); got != "WWW\x1fS1" {
		t.Fatalf("reordered Key = %q", got)
	}
}

func TestProjErrors(t *testing.T) {
	s := MustSchema("a", "b")
	if _, err := s.Proj(); err == nil {
		t.Error("empty projection accepted")
	}
	if _, err := s.Proj("zzz"); err == nil {
		t.Error("unknown attribute accepted")
	}
}

func TestAppendKeyMatchesKey(t *testing.T) {
	s := MustSchema("a", "b", "c")
	p := s.MustProj("c", "a")
	tup := Tuple{"x", "y", "z"}
	if got := string(p.AppendKey(nil, tup)); got != p.Key(tup) {
		t.Fatalf("AppendKey %q != Key %q", got, p.Key(tup))
	}
	buf := p.AppendKey(make([]byte, 0, 64), tup)
	buf = p.AppendKey(buf[:0], tup)
	if string(buf) != p.Key(tup) {
		t.Fatal("AppendKey with reused buffer diverged")
	}
}

func TestSplitJoinKeyRoundTrip(t *testing.T) {
	f := func(parts []string) bool {
		if len(parts) == 0 {
			return true
		}
		for _, p := range parts {
			if strings.ContainsRune(p, rune(KeySep)) {
				return true // codec forbids the separator; skip
			}
		}
		return reflect.DeepEqual(SplitKey(JoinKey(parts...)), parts)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestKeyInjective(t *testing.T) {
	// Distinct value tuples must encode to distinct keys.
	s := MustSchema("a", "b")
	p := s.MustProj("a", "b")
	k1 := p.Key(Tuple{"xy", "z"})
	k2 := p.Key(Tuple{"x", "yz"})
	if k1 == k2 {
		t.Fatal("keys collide across value boundaries")
	}
}

func TestMemSourceSink(t *testing.T) {
	tuples := []Tuple{{"1", "a"}, {"2", "b"}, {"3", "c"}}
	src := NewMemSource(tuples)
	var sink MemSink
	n, err := Each(src, sink.Write)
	if err != nil || n != 3 {
		t.Fatalf("Each = %d, %v", n, err)
	}
	if !reflect.DeepEqual(sink.Tuples, tuples) {
		t.Fatalf("sink = %v", sink.Tuples)
	}
	if _, err := src.Next(); err != io.EOF {
		t.Fatalf("drained source Next = %v, want EOF", err)
	}
	src.Reset()
	if tup, err := src.Next(); err != nil || tup[0] != "1" {
		t.Fatalf("after Reset: %v, %v", tup, err)
	}
}

func TestCodecRoundTrip(t *testing.T) {
	schema := MustSchema("Source", "Destination", "Service", "Time")
	tuples := []Tuple{
		{"S1", "D2", "WWW", "Morning"},
		{"S2", "D1", "FTP", "Morning"},
		{"S3", "D3", "P2P", "Night"},
	}
	var buf strings.Builder
	w := NewWriter(&buf, schema)
	for _, tup := range tuples {
		if err := w.Write(tup); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}

	r, err := NewReader(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r.Schema().Names(), schema.Names()) {
		t.Fatalf("schema round trip: %v", r.Schema().Names())
	}
	var got []Tuple
	if _, err := Each(r, func(tup Tuple) error {
		got = append(got, append(Tuple(nil), tup...))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, tuples) {
		t.Fatalf("tuples round trip: %v", got)
	}
}

func TestWriterRejectsBadValues(t *testing.T) {
	schema := MustSchema("a")
	w := NewWriter(io.Discard, schema)
	if err := w.Write(Tuple{"with\ttab"}); err == nil {
		t.Error("tab accepted")
	}
	if err := w.Write(Tuple{"with\nnewline"}); err == nil {
		t.Error("newline accepted")
	}
	if err := w.Write(Tuple{"with\x1fsep"}); err == nil {
		t.Error("separator accepted")
	}
	if err := w.Write(Tuple{"a", "b"}); err == nil {
		t.Error("arity mismatch accepted")
	}
}

func TestWriterEmptyStreamHeader(t *testing.T) {
	schema := MustSchema("x", "y")
	var buf strings.Builder
	w := NewWriter(&buf, schema)
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r.Schema().Names(), []string{"x", "y"}) {
		t.Fatalf("schema = %v", r.Schema().Names())
	}
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("empty stream Next = %v", err)
	}
}

func TestReaderErrors(t *testing.T) {
	if _, err := NewReader(strings.NewReader("")); err == nil {
		t.Error("missing header accepted")
	}
	r, err := NewReader(strings.NewReader("a\tb\n1\t2\t3\n"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err == nil {
		t.Error("over-long record accepted")
	}
	r2, err := NewReader(strings.NewReader("a\tb\nonly-one\n"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r2.Next(); err == nil {
		t.Error("short record accepted")
	}
}

func TestEachStopsOnError(t *testing.T) {
	src := NewMemSource([]Tuple{{"1"}, {"2"}, {"3"}})
	n, err := Each(src, func(tup Tuple) error {
		if tup[0] == "2" {
			return io.ErrUnexpectedEOF
		}
		return nil
	})
	if err != io.ErrUnexpectedEOF || n != 2 {
		t.Fatalf("Each = %d, %v", n, err)
	}
}

func TestProjAttrs(t *testing.T) {
	s := MustSchema("a", "b", "c")
	p := s.MustProj("c", "a")
	got := p.Attrs()
	if len(got) != 2 || got[0] != "c" || got[1] != "a" {
		t.Fatalf("Attrs = %v", got)
	}
	// The returned slice is a copy; mutating it must not affect the
	// projection.
	got[0] = "zzz"
	if p.Attrs()[0] != "c" {
		t.Fatal("Attrs exposed internal state")
	}
}
