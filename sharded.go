package implicate

import (
	"sync/atomic"

	"implicate/internal/core"
	"implicate/internal/imps"
)

// ShardedSketch is the parallel-ingestion NIPS/CI sketch: the m bitmaps are
// partitioned across independent mutex-guarded shards keyed by the tuple
// hash, so concurrent producers contend only when their tuples route to the
// same shard, and the batched Add paths take each shard lock once per batch.
// Estimates are bit-identical to a single same-seed Sketch fed the same
// per-bitmap tuple order; see the "Concurrency & sharding" section of
// DESIGN.md for when to choose it over Synchronized.
type ShardedSketch = core.ShardedSketch

// HashedPair is one pre-hashed tuple for the batched ingest paths.
type HashedPair = core.HashedPair

// Pair is one encoded itemset pair for the batched ingest paths.
type Pair = imps.Pair

// BatchAdder is the optional batched-ingest contract; Sketch, ShardedSketch
// and SyncEstimator implement it.
type BatchAdder = imps.BatchAdder

// BytesAdder is the optional allocation-free byte-key ingest contract.
type BytesAdder = imps.BytesAdder

// NewShardedSketch returns a sharded NIPS/CI sketch for the given
// implication conditions. shards must be a power of two no larger than the
// bitmap count; 0 selects a shard count matched to GOMAXPROCS. All methods
// are safe for concurrent use.
func NewShardedSketch(cond Conditions, opts Options, shards int) (*ShardedSketch, error) {
	return core.NewShardedSketch(cond, opts, shards)
}

// ShardedSketchBackend returns a Backend producing sharded NIPS/CI sketches
// with the given options and shard count (0 matches GOMAXPROCS); seeds are
// derived per statement. Use it when the engine's statements are fed from
// concurrent producers.
func ShardedSketchBackend(opts Options, shards int) Backend {
	var n atomic.Uint64
	return func(cond Conditions) (Estimator, error) {
		o := opts
		o.Seed = opts.Seed + n.Add(1)*0x9e3779b97f4a7c15
		return core.NewShardedSketch(cond, o, shards)
	}
}
