// Netmon simulates the router-monitoring application of §1–2: a security
// administrator watches, in real time, how many sources are hammering a
// handful of destinations — the flash-crowd / DDoS signature ("a large
// volume of traffic from a huge number of sources to a very small number
// of destinations") — as a windowed implication count over NIPS/CI
// sketches. Attack sources send many packets to at most a few victims, so
// they satisfy Source → Destination with a high support floor and a small
// multiplicity bound; diffuse background sources never reach the floor.
// A trigger fires when the windowed count jumps.
package main

import (
	"fmt"
	"log"
	"runtime"
	"sync"
	"time"

	"implicate"
	"implicate/internal/gen"
)

func main() {
	const (
		tuples     = 400_000
		flashStart = 200_000
		window     = 50_000
		every      = 10_000
	)

	// "How many sources send ≥15 packets per window to at most three
	// destinations?" — Implication one-to-many, windowed (Table 2's
	// complex-implication row).
	cond := implicate.Conditions{
		MaxMultiplicity:  3,
		MinSupport:       15,
		TopC:             3,
		MinTopConfidence: 0.95,
	}

	var seed uint64
	sliding, err := implicate.NewSliding(window, every, func() implicate.Estimator {
		seed++
		sk, err := implicate.NewSketch(cond, implicate.Options{Seed: seed})
		if err != nil {
			panic(err)
		}
		return sk
	})
	if err != nil {
		log.Fatal(err)
	}

	g := gen.NewNetTraffic(gen.NetTrafficConfig{
		Seed:         7,
		Sources:      20_000,
		Destinations: 5_000,
		FlashSources: 1_000,
		FlashTargets: 3,
		FlashAfter:   flashStart,
	})
	schema := gen.NetTrafficSchema()
	src := schema.MustProj("Source")
	dst := schema.MustProj("Destination")

	fmt.Println("netmon: windowed count of sources hammering ≤3 destinations (≥15 pkts/window)")
	alerted := false
	capture := make([]implicate.Pair, 0, tuples)
	for g.Tuples() < tuples {
		t, err := g.Next()
		if err != nil {
			log.Fatal(err)
		}
		a, b := src.Key(t), dst.Key(t)
		capture = append(capture, implicate.Pair{A: a, B: b})
		sliding.Add(a, b)
		if g.Tuples()%25_000 == 0 {
			hot := sliding.ImplicationCount()
			marker := ""
			if hot > 100 && !alerted {
				marker = "  <-- TRIGGER: possible flash crowd / DDoS"
				alerted = true
			}
			fmt.Printf("  t=%7d  hammering sources ≈ %7.1f%s\n", g.Tuples(), hot, marker)
		}
	}
	if !alerted {
		fmt.Println("netmon: no trigger fired (unexpected for this scenario)")
		return
	}
	fmt.Printf("netmon: flash crowd began at t=%d; memory in use: %d counter entries across %d window sketches\n",
		flashStart, sliding.MemEntries(), sliding.Estimators())

	// Forensic pass: after the trigger, re-analyze the attack segment of the
	// recorded capture on all cores at once. Producers split the segment and
	// feed one ShardedSketch in batches; each batch touches each shard's lock
	// at most once, so the pass scales with GOMAXPROCS instead of serializing
	// on a single sketch mutex.
	workers := runtime.GOMAXPROCS(0)
	ss, err := implicate.NewShardedSketch(cond, implicate.Options{Seed: 1}, 0)
	if err != nil {
		log.Fatal(err)
	}
	segment := capture[flashStart:]
	const batch = 512
	start := time.Now()
	var wg sync.WaitGroup
	per := (len(segment) + workers - 1) / workers
	for off := 0; off < len(segment); off += per {
		end := off + per
		if end > len(segment) {
			end = len(segment)
		}
		wg.Add(1)
		go func(part []implicate.Pair) {
			defer wg.Done()
			for len(part) > 0 {
				n := min(batch, len(part))
				ss.AddBatch(part[:n])
				part = part[n:]
			}
		}(segment[off:end])
	}
	wg.Wait()
	elapsed := time.Since(start)
	fmt.Printf("netmon: forensic replay of the attack window: %d tuples across %d producers (%d shards) in %v (%.1fM tuples/s)\n",
		len(segment), workers, ss.Shards(), elapsed.Round(time.Millisecond),
		float64(len(segment))/elapsed.Seconds()/1e6)
	fmt.Printf("netmon: sources hammering ≤3 destinations during the attack ≈ %.1f\n", ss.ImplicationCount())
}
