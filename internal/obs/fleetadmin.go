package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"time"

	"implicate/internal/imps"
	"implicate/internal/telemetry"
)

// The coordinator's observability surface: the impcoordd admin endpoint.
// Where a leaf's admin endpoint serves its own counters, the coordinator's
// serves three layers at once — its own front-end counters, the
// coordinator-side per-leaf rows only it can know (journal depth, replay
// counts, prober transitions, delivery latency), and a roll-up of what
// each leaf reports about itself over the Stats/Health RPCs, re-rendered
// under a leaf="name" label so one scrape sees the whole fleet.

// LeafTelemetry is one leaf's coordinator-side observability row: what the
// coordinator itself knows about the leaf (journal, delivery, liveness
// history), as opposed to anything the leaf reports about itself.
type LeafTelemetry struct {
	Name string
	// State is "up", "down" or "recovering"; a sticky-fatal leaf reports
	// down.
	State string
	// Epoch counts completed recoveries.
	Epoch uint64
	// Parts is how many route-table partitions map to the leaf.
	Parts int
	// JournalEntries / JournalTuples measure everything ever routed here.
	JournalEntries int64
	JournalTuples  int64
	// PendingEntries / PendingTuples measure the journal depth: routed but
	// not yet delivered to the leaf.
	PendingEntries int64
	PendingTuples  int64
	// Replayed counts journal entries re-delivered by recoveries.
	Replayed int64
	// Downs counts up→down prober/feeder transitions.
	Downs int64
	// Delivery is the per-leaf delivery latency histogram: one observation
	// per IngestBatch round trip to the leaf, failures included.
	Delivery telemetry.Histogram
}

// LeafStatsRow is one leaf's own telemetry snapshot, labeled with its name.
type LeafStatsRow struct {
	Name  string
	Stats telemetry.Snapshot
}

// LeafHealthRow is one leaf's estimator health reports, labeled with its
// name.
type LeafHealthRow struct {
	Name    string
	Reports []imps.HealthReport
}

// FleetAdminState is what the coordinator admin endpoint reads from a
// running coordinator. coord.Coordinator implements it; like AdminState
// the split keeps obs free of a coord dependency (coord imports obs).
type FleetAdminState interface {
	// CoordStats is the coordinator's own counter snapshot (routed tuples
	// and batches, front-end RPC latency).
	CoordStats() telemetry.Snapshot
	// FleetTelemetry is the coordinator-side per-leaf rows, in leaf order.
	FleetTelemetry() []LeafTelemetry
	// FleetStats is each reachable leaf's own telemetry snapshot.
	FleetStats() []LeafStatsRow
	// FleetHealth is each reachable leaf's estimator health reports.
	FleetHealth() []LeafHealthRow
	// FleetTrace is the assembled cross-node trace (empty when tracing is
	// off).
	FleetTrace() []FleetSpan
	// VirtualPartitions is the route-table size.
	VirtualPartitions() int
}

// WriteFleetMetrics renders the coordinator's /metrics payload: the
// coordinator's own counters through the same name mapping a leaf uses,
// then the coordinator-side imps_coord_* fleet series, then the rolled-up
// imps_leaf_* series re-rendered from each leaf's Stats/Health answers.
// The roll-up carries whatever the fleet could answer at scrape time —
// down leaves simply have no rows this scrape.
func WriteFleetMetrics(w io.Writer, st FleetAdminState) error {
	if err := WriteMetrics(w, st.CoordStats(), nil); err != nil {
		return err
	}
	mw := &metricsWriter{w: w}

	mw.gauge("imps_coord_virtual_partitions", "Route-table partitions across the fleet.", float64(st.VirtualPartitions()))

	rows := st.FleetTelemetry()
	coordGauges := []struct {
		name, help string
		typ        string
		value      func(r *LeafTelemetry) float64
	}{
		{"imps_coord_leaf_up", "1 when the leaf is up, 0 while it is down or recovering.", "gauge",
			func(r *LeafTelemetry) float64 {
				if r.State == "up" {
					return 1
				}
				return 0
			}},
		{"imps_coord_leaf_parts", "Route-table partitions mapped to the leaf.", "gauge",
			func(r *LeafTelemetry) float64 { return float64(r.Parts) }},
		{"imps_coord_leaf_journal_entries_total", "Batches ever journaled for the leaf.", "counter",
			func(r *LeafTelemetry) float64 { return float64(r.JournalEntries) }},
		{"imps_coord_leaf_journal_tuples_total", "Tuples ever routed to the leaf.", "counter",
			func(r *LeafTelemetry) float64 { return float64(r.JournalTuples) }},
		{"imps_coord_leaf_journal_depth_entries", "Journaled batches not yet delivered to the leaf.", "gauge",
			func(r *LeafTelemetry) float64 { return float64(r.PendingEntries) }},
		{"imps_coord_leaf_journal_depth_tuples", "Routed tuples not yet delivered to the leaf.", "gauge",
			func(r *LeafTelemetry) float64 { return float64(r.PendingTuples) }},
		{"imps_coord_leaf_replayed_entries_total", "Journal entries re-delivered by recoveries.", "counter",
			func(r *LeafTelemetry) float64 { return float64(r.Replayed) }},
		{"imps_coord_leaf_down_transitions_total", "Up-to-down prober/feeder transitions observed.", "counter",
			func(r *LeafTelemetry) float64 { return float64(r.Downs) }},
		{"imps_coord_leaf_recoveries_total", "Completed recoveries (the leaf's epoch).", "counter",
			func(r *LeafTelemetry) float64 { return float64(r.Epoch) }},
		{"imps_coord_leaf_deliveries_total", "Delivery round trips to the leaf, failures included.", "counter",
			func(r *LeafTelemetry) float64 { return float64(r.Delivery.Count()) }},
	}
	for _, g := range coordGauges {
		mw.help(g.name, g.help, g.typ)
		for i := range rows {
			r := &rows[i]
			mw.series(g.name, fmt.Sprintf(`leaf="%s"`, escapeLabel(r.Name)), g.value(r))
		}
	}
	mw.help("imps_coord_leaf_delivery_seconds", "Delivery latency quantile upper bounds, per leaf (log2 buckets).", "summary")
	for i := range rows {
		r := &rows[i]
		if r.Delivery.Count() == 0 {
			continue
		}
		for _, q := range quantiles {
			mw.series("imps_coord_leaf_delivery_seconds",
				fmt.Sprintf(`leaf="%s",quantile="%s"`, escapeLabel(r.Name), strconv.FormatFloat(q, 'g', -1, 64)),
				r.Delivery.Quantile(q).Seconds())
		}
	}

	stats := st.FleetStats()
	leafGauges := []struct {
		name, help string
		typ        string
		value      func(s *telemetry.Snapshot) float64
	}{
		{"imps_leaf_tuples_ingested_total", "Tuples the leaf applied to its engine.", "counter",
			func(s *telemetry.Snapshot) float64 { return float64(s.TuplesIngested) }},
		{"imps_leaf_batches_total", "Batches the leaf accepted into its ingest queue.", "counter",
			func(s *telemetry.Snapshot) float64 { return float64(s.Batches) }},
		{"imps_leaf_batches_rejected_total", "Batches the leaf refused with a backpressure reply.", "counter",
			func(s *telemetry.Snapshot) float64 { return float64(s.BatchesRejected) }},
		{"imps_leaf_merges_total", "Remote sketches the leaf merged in.", "counter",
			func(s *telemetry.Snapshot) float64 { return float64(s.Merges) }},
		{"imps_leaf_queue_high_water", "Deepest the leaf's ingest queue has been.", "gauge",
			func(s *telemetry.Snapshot) float64 { return float64(s.QueueHighWater) }},
	}
	for _, g := range leafGauges {
		mw.help(g.name, g.help, g.typ)
		for i := range stats {
			row := &stats[i]
			mw.series(g.name, fmt.Sprintf(`leaf="%s"`, escapeLabel(row.Name)), g.value(&row.Stats))
		}
	}
	mw.help("imps_leaf_ingest_latency_seconds", "Leaf-side IngestBatch latency quantile upper bounds.", "summary")
	for i := range stats {
		row := &stats[i]
		h := &row.Stats.Latency[telemetry.RPCIngest]
		if h.Count() == 0 {
			continue
		}
		for _, q := range quantiles {
			mw.series("imps_leaf_ingest_latency_seconds",
				fmt.Sprintf(`leaf="%s",quantile="%s"`, escapeLabel(row.Name), strconv.FormatFloat(q, 'g', -1, 64)),
				h.Quantile(q).Seconds())
		}
	}

	health := st.FleetHealth()
	mw.help("imps_leaf_stmt_rel_err", "Statement estimator's self-assessed relative error, per leaf.", "gauge")
	for i := range health {
		row := &health[i]
		for j := range row.Reports {
			h := &row.Reports[j]
			mw.series("imps_leaf_stmt_rel_err",
				fmt.Sprintf(`leaf="%s",stmt="%d",kind="%s"`, escapeLabel(row.Name), h.Stmt, escapeLabel(h.Kind)),
				h.RelErr)
		}
	}
	mw.help("imps_leaf_worst_rel_err", "Worst self-assessed estimator error across the leaf's statements.", "gauge")
	for i := range health {
		row := &health[i]
		worst := 0.0
		for j := range row.Reports {
			if e := row.Reports[j].RelErr; e > worst {
				worst = e
			}
		}
		mw.series("imps_leaf_worst_rel_err", fmt.Sprintf(`leaf="%s"`, escapeLabel(row.Name)), worst)
	}
	return mw.err
}

// FleetJSON is the /fleet document imptop's coordinator mode polls: the
// coordinator's own throughput plus one merged row per leaf combining the
// coordinator-side view (state, journal depth, delivery latency) with what
// the leaf reports about itself (applied tuples, queue depth, worst
// estimator error). Leaf-reported fields are -1 when the leaf could not be
// reached this poll.
type FleetJSON struct {
	VirtualPartitions int             `json:"virtual_partitions"`
	TuplesRouted      int64           `json:"tuples_routed"`
	BatchesRouted     int64           `json:"batches_routed"`
	Leaves            []FleetLeafJSON `json:"leaves"`
}

// FleetLeafJSON is one leaf's merged row in the /fleet document.
type FleetLeafJSON struct {
	Name           string  `json:"name"`
	State          string  `json:"state"`
	Parts          int     `json:"parts"`
	Epoch          uint64  `json:"epoch"`
	Downs          int64   `json:"downs"`
	JournalTuples  int64   `json:"journal_tuples"`
	PendingTuples  int64   `json:"pending_tuples"`
	PendingEntries int64   `json:"pending_entries"`
	Replayed       int64   `json:"replayed_entries"`
	Deliveries     uint64  `json:"deliveries"`
	DeliveryP50NS  int64   `json:"delivery_p50_ns"`
	DeliveryP99NS  int64   `json:"delivery_p99_ns"`
	TuplesIngested int64   `json:"tuples_ingested"`
	QueueHighWater int64   `json:"queue_high_water"`
	WorstRelErr    float64 `json:"worst_rel_err"`
}

// BuildFleetJSON assembles the /fleet document from one read of the admin
// state. Exported so imptop's tests can decode what the endpoint encodes.
func BuildFleetJSON(st FleetAdminState) FleetJSON {
	sn := st.CoordStats()
	doc := FleetJSON{
		VirtualPartitions: st.VirtualPartitions(),
		TuplesRouted:      sn.TuplesIngested,
		BatchesRouted:     sn.Batches,
	}
	statsRows := st.FleetStats()
	stats := make(map[string]*telemetry.Snapshot, len(statsRows))
	for i := range statsRows {
		stats[statsRows[i].Name] = &statsRows[i].Stats
	}
	worst := make(map[string]float64)
	for _, row := range st.FleetHealth() {
		w := 0.0
		for _, h := range row.Reports {
			if h.RelErr > w {
				w = h.RelErr
			}
		}
		// An estimator that cannot bound its error reports ±Inf (or NaN when
		// empty); JSON cannot carry those, so they collapse into the same -1
		// sentinel as an unreachable leaf — imptop renders both as a dash.
		if math.IsInf(w, 0) || math.IsNaN(w) {
			continue
		}
		worst[row.Name] = w
	}
	for _, r := range st.FleetTelemetry() {
		lj := FleetLeafJSON{
			Name:           r.Name,
			State:          r.State,
			Parts:          r.Parts,
			Epoch:          r.Epoch,
			Downs:          r.Downs,
			JournalTuples:  r.JournalTuples,
			PendingTuples:  r.PendingTuples,
			PendingEntries: r.PendingEntries,
			Replayed:       r.Replayed,
			Deliveries:     r.Delivery.Count(),
			DeliveryP50NS:  int64(r.Delivery.Quantile(0.5)),
			DeliveryP99NS:  int64(r.Delivery.Quantile(0.99)),
			TuplesIngested: -1,
			QueueHighWater: -1,
			WorstRelErr:    -1,
		}
		if s, ok := stats[r.Name]; ok {
			lj.TuplesIngested = s.TuplesIngested
			lj.QueueHighWater = s.QueueHighWater
		}
		if w, ok := worst[r.Name]; ok {
			lj.WorstRelErr = w
		}
		doc.Leaves = append(doc.Leaves, lj)
	}
	return doc
}

// NewFleetAdminMux returns the impcoordd admin handler: the three-layer
// Prometheus /metrics, a fleet-aware /healthz (ok, degraded or down, one
// line per leaf), the /fleet JSON document imptop polls, the /trace fleet
// trace dump, and the pprof suite.
func NewFleetAdminMux(st FleetAdminState) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WriteFleetMetrics(w, st)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		rows := st.FleetTelemetry()
		up := 0
		for _, row := range rows {
			if row.State == "up" {
				up++
			}
		}
		// The summary word is the machine-readable part probes key on: ok
		// (whole fleet serving), degraded (partial), down (no leaf up).
		switch {
		case up == len(rows):
			_, _ = w.Write([]byte("ok\n"))
		case up > 0:
			_, _ = w.Write([]byte("degraded\n"))
		default:
			_, _ = w.Write([]byte("down\n"))
		}
		for _, row := range rows {
			fmt.Fprintf(w, "leaf %s state=%s epoch=%d downs=%d journaled=%d pending=%d replayed=%d\n",
				row.Name, row.State, row.Epoch, row.Downs, row.JournalTuples, row.PendingTuples, row.Replayed)
		}
	})
	mux.HandleFunc("/fleet", func(w http.ResponseWriter, r *http.Request) {
		// Marshal before touching the ResponseWriter: an encode failure can
		// still become a 500 rather than an empty 200.
		body, err := json.MarshalIndent(BuildFleetJSON(st), "", "  ")
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(body)
		io.WriteString(w, "\n")
	})
	mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		spans := st.FleetTrace()
		out := make([]jsonSpan, len(spans))
		for i, s := range spans {
			out[i] = jsonSpan{
				Node:   s.Node,
				Seq:    s.Seq,
				Kind:   s.Kind.String(),
				Arg:    s.Arg,
				Start:  time.Unix(0, s.Start).UTC().Format(time.RFC3339Nano),
				DurNS:  s.Dur,
				Units:  s.Units,
				Trace:  s.Trace,
				Parent: s.Parent,
				ID:     s.ID,
			}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(out)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}

// ListenFleetAdmin binds addr and serves the fleet admin mux in a
// background goroutine. Like the leaf admin endpoint it is
// unauthenticated — bind it to loopback or an operations network.
func ListenFleetAdmin(addr string, st FleetAdminState) (*AdminServer, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: NewFleetAdminMux(st), ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = srv.Serve(ln) }()
	return &AdminServer{Addr: ln.Addr().String(), srv: srv, ln: ln}, nil
}
