package core

import (
	"testing"

	"implicate/internal/imps"
)

// FuzzUnmarshalSketch checks the decoder never panics or over-allocates on
// malformed input, and that valid encodings round-trip.
func FuzzUnmarshalSketch(f *testing.F) {
	mk := func(opts Options, n int) []byte {
		cond := imps.Conditions{MaxMultiplicity: 2, MinSupport: 3, TopC: 1, MinTopConfidence: 0.8}
		s := MustSketch(cond, opts)
		for i := 0; i < n; i++ {
			s.AddIDs(uint64(i%97), uint64(i%7))
		}
		data, err := s.MarshalBinary()
		if err != nil {
			f.Fatal(err)
		}
		return data
	}
	f.Add(mk(Options{Seed: 1}, 0))
	f.Add(mk(Options{Seed: 2, Bitmaps: 8, FringeSize: 2}, 500))
	f.Add(mk(Options{Seed: 3, Unbounded: true}, 2000))
	f.Add([]byte("NIPS\x01"))
	f.Add([]byte(nil))

	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := UnmarshalSketch(data)
		if err != nil {
			return
		}
		// Whatever decoded must behave like a sketch.
		reencoded, err := s.MarshalBinary()
		if err != nil {
			t.Fatalf("decoded sketch failed to re-encode: %v", err)
		}
		s2, err := UnmarshalSketch(reencoded)
		if err != nil {
			t.Fatalf("re-encoded sketch failed to decode: %v", err)
		}
		if s2.ImplicationCount() != s.ImplicationCount() {
			t.Fatal("re-encode changed the estimate")
		}
		s.AddIDs(1, 2) // and keep accepting updates
	})
}
