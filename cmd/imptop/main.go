// Command imptop is a live terminal dashboard over a running impserved
// server, in the spirit of top(1): it polls the Stats and Health RPCs over
// the ordinary client protocol (no admin endpoint needed) and renders
// ingest throughput, queue depth, per-RPC latency quantiles, per-worker
// skew, and each statement's estimator health — sketch fill, fringe
// occupancy, evictions, memory and self-assessed error — in place.
//
// Usage:
//
//	imptop -addr 127.0.0.1:7171
//	imptop -addr 127.0.0.1:7171 -interval 2s
//	imptop -addr 127.0.0.1:7171 -count 5 -plain   # scripting: plain frames
//	imptop -coord 127.0.0.1:7180                  # fleet mode
//
// -plain disables the ANSI in-place redraw and prints one frame per poll,
// which is what non-terminal consumers (logs, tests, pipes) want.
//
// -coord switches to the fleet dashboard: it polls an impcoordd admin
// endpoint's /fleet JSON instead of a single server's RPCs, and renders
// one row per leaf — probe state, journal depth, delivery latency,
// leaf-reported throughput and worst self-assessed estimator error.
package main

import (
	"log"
	"os"
	"os/signal"
	"syscall"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("imptop: ")

	cfg, rest, err := parseFlags(os.Args[1:])
	if err != nil {
		os.Exit(2)
	}
	if len(rest) != 0 {
		log.Fatalf("unexpected arguments %q", rest)
	}
	if err := cfg.validate(); err != nil {
		log.Fatal(err)
	}

	stop := make(chan struct{})
	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigs
		close(stop)
	}()

	if err := run(cfg, os.Stdout, stop); err != nil {
		log.Fatal(err)
	}
}
