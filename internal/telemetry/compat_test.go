package telemetry

import (
	"math"
	"sync"
	"testing"
	"time"

	"implicate/internal/wire"
)

// TestQuantileEdgeCases pins the documented edge behavior: empty histogram,
// q at and beyond both ends, NaN, and a single-bucket distribution where
// every quantile is that bucket's bound.
func TestQuantileEdgeCases(t *testing.T) {
	single := Histogram{}
	single.Counts[12] = 37
	two := Histogram{}
	two.Counts[10] = 90
	two.Counts[20] = 10
	cases := []struct {
		name string
		h    Histogram
		q    float64
		want time.Duration
	}{
		{"empty p0", Histogram{}, 0, 0},
		{"empty p50", Histogram{}, 0.5, 0},
		{"empty p100", Histogram{}, 1, 0},
		{"empty NaN", Histogram{}, math.NaN(), 0},
		{"NaN", two, math.NaN(), 0},
		{"single p0", single, 0, 1 << 12},
		{"single p50", single, 0.5, 1 << 12},
		{"single p100", single, 1, 1 << 12},
		{"two p0 is min bucket", two, 0, 1 << 10},
		{"two p100 is max bucket", two, 1, 1 << 20},
		{"two below-range clamps to p0", two, -3, 1 << 10},
		{"two above-range clamps to p100", two, 7, 1 << 20},
		{"two +Inf clamps to p100", two, math.Inf(1), 1 << 20},
		{"two -Inf clamps to p0", two, math.Inf(-1), 1 << 10},
		{"two p89 stays in low bucket", two, 0.89, 1 << 10},
		{"two p91 crosses", two, 0.91, 1 << 20},
	}
	for _, tc := range cases {
		if got := tc.h.Quantile(tc.q); got != tc.want {
			t.Errorf("%s: Quantile(%v) = %v, want %v", tc.name, tc.q, got, tc.want)
		}
	}
}

// encodeV1 builds a v1 ("IMPT\x01") snapshot as a PR-3-era server would
// have: five counters, no pool saturation, no worker block, and the
// four-RPC histogram list of that build.
func encodeV1(tuples, batches, rejected, merges, highWater int64, hist [4][HistBuckets]uint64) []byte {
	e := wire.NewEncoder(64 + 4*HistBuckets*8)
	e.Raw([]byte(snapshotMagicV1))
	e.I64(tuples)
	e.I64(batches)
	e.I64(rejected)
	e.I64(merges)
	e.I64(highWater)
	e.U32(4)
	e.U32(HistBuckets)
	for r := 0; r < 4; r++ {
		for b := 0; b < HistBuckets; b++ {
			e.U64(hist[r][b])
		}
	}
	return e.Bytes()
}

// TestDecodeSnapshotV1 checks cross-version decoding: a v1 snapshot from an
// older server decodes with its counters and histograms intact and the
// fields that postdate it (pool saturation, workers, the newer RPCs'
// histograms) zero.
func TestDecodeSnapshotV1(t *testing.T) {
	var hist [4][HistBuckets]uint64
	hist[RPCIngest][10] = 42
	hist[RPCStats][20] = 7
	sn, err := DecodeSnapshot(encodeV1(1000, 10, 2, 3, 9, hist))
	if err != nil {
		t.Fatal(err)
	}
	if sn.TuplesIngested != 1000 || sn.Batches != 10 || sn.BatchesRejected != 2 || sn.Merges != 3 || sn.QueueHighWater != 9 {
		t.Fatalf("v1 counters %+v", sn)
	}
	if sn.PoolSaturation != 0 || sn.Workers != nil {
		t.Fatalf("v1 snapshot grew post-v1 fields: saturation=%d workers=%+v", sn.PoolSaturation, sn.Workers)
	}
	if sn.Latency[RPCIngest].Counts[10] != 42 || sn.Latency[RPCStats].Counts[20] != 7 {
		t.Fatalf("v1 histograms %+v", sn.Latency)
	}
	for r := RPC(4); r < NumRPCs; r++ {
		if sn.Latency[r].Count() != 0 {
			t.Fatalf("RPC %v histogram not zero-filled", r)
		}
	}

	// Corruption in a v1 frame is still rejected.
	good := encodeV1(1, 1, 0, 0, 1, [4][HistBuckets]uint64{})
	if _, err := DecodeSnapshot(good[:len(good)-1]); err == nil {
		t.Error("truncated v1 snapshot accepted")
	}
	if _, err := DecodeSnapshot(append(append([]byte(nil), good...), 0)); err == nil {
		t.Error("v1 trailing bytes accepted")
	}
}

// TestDecodeSnapshotRejectsLongerRPCList checks the append-only contract's
// other side: a sender claiming MORE RPCs than this build knows cannot be
// mapped and must be refused, not truncated.
func TestDecodeSnapshotRejectsLongerRPCList(t *testing.T) {
	e := wire.NewEncoder(64)
	e.Raw([]byte(snapshotMagic))
	for i := 0; i < 6; i++ {
		e.I64(0)
	}
	e.U32(0) // no workers
	e.U32(uint32(NumRPCs) + 1)
	e.U32(HistBuckets)
	for r := 0; r < int(NumRPCs)+1; r++ {
		for b := 0; b < HistBuckets; b++ {
			e.U64(0)
		}
	}
	if _, err := DecodeSnapshot(e.Bytes()); err == nil {
		t.Fatal("snapshot with unknown extra RPCs accepted")
	}
}

// TestConcurrentObserveSnapshotConfigure interleaves Observe, AddWorkerTask,
// Snapshot and ConfigureWorkers from concurrent goroutines — the
// reconfiguration race the atomic worker-block swap exists for. Run under
// -race; the assertion is only that snapshots stay well-formed (a worker
// block is read coherently or not at all).
func TestConcurrentObserveSnapshotConfigure(t *testing.T) {
	var s Set
	s.ConfigureWorkers(4)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				s.Observe(RPC(i%int(NumRPCs)), time.Duration(1)<<uint(i%16))
				s.AddWorkerTask(g, 1)
				s.AddTuples(1)
				s.ObserveQueueDepth(i % 32)
			}
		}(g)
	}
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			sn := s.Snapshot()
			if len(sn.Workers) != 0 && len(sn.Workers) != 2 && len(sn.Workers) != 4 {
				t.Errorf("torn worker block: %d entries", len(sn.Workers))
				return
			}
			for _, w := range sn.Workers {
				if w.Tasks < 0 || w.Units < 0 {
					t.Errorf("negative worker counters %+v", w)
					return
				}
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < 200; i++ {
			if i%2 == 0 {
				s.ConfigureWorkers(2)
			} else {
				s.ConfigureWorkers(4)
			}
		}
	}()
	// Let the reconfiguration and snapshot loops finish, then stop writers.
	time.Sleep(10 * time.Millisecond)
	close(stop)
	wg.Wait()
}
