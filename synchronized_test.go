package implicate_test

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"implicate"
)

func TestSynchronizedConcurrentUse(t *testing.T) {
	cond := implicate.Conditions{MaxMultiplicity: 2, MinSupport: 3, TopC: 1, MinTopConfidence: 0.8}
	sk, err := implicate.NewSketch(cond, implicate.Options{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	est := implicate.Synchronized(sk)

	const workers, perWorker = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				id := (w*perWorker + i) % 2000
				est.Add(fmt.Sprintf("a%d", id), fmt.Sprintf("b%d", id))
				if i%512 == 0 {
					_ = est.ImplicationCount()
					_ = est.NonImplicationCount()
					_ = est.SupportedDistinct()
					_ = est.AvgMultiplicity()
					_ = est.MemEntries()
				}
			}
		}(w)
	}
	wg.Wait()

	if got := est.Tuples(); got != workers*perWorker {
		t.Fatalf("Tuples = %d, want %d", got, workers*perWorker)
	}
	// 2000 itemsets, each with one partner and ample support: all imply.
	if got := est.ImplicationCount(); got < 1500 || got > 2500 {
		t.Fatalf("count = %v, want ≈2000", got)
	}
	if est.Unwrap() != implicate.Estimator(sk) {
		t.Fatal("Unwrap lost the estimator")
	}
}

func TestSynchronizedAvgMultiplicityFallback(t *testing.T) {
	// A minimal estimator without the aggregate.
	est := implicate.Synchronized(bareEstimator{})
	if got := est.AvgMultiplicity(); got != 0 {
		t.Fatalf("fallback AvgMultiplicity = %v", got)
	}
}

type bareEstimator struct{}

func (bareEstimator) Add(a, b string)              {}
func (bareEstimator) ImplicationCount() float64    { return 0 }
func (bareEstimator) NonImplicationCount() float64 { return 0 }
func (bareEstimator) SupportedDistinct() float64   { return 0 }
func (bareEstimator) Tuples() int64                { return 0 }
func (bareEstimator) MemEntries() int              { return 0 }

// recordingEstimator captures Add calls; it deliberately does NOT implement
// BytesAdder, forcing the wrapper's conversion fallback.
type recordingEstimator struct {
	bareEstimator
	added [][2]string
}

func (r *recordingEstimator) Add(a, b string) { r.added = append(r.added, [2]string{a, b}) }

// TestSynchronizedAddBytesBothPaths pins both AddBytes routes: the
// pass-through to a BytesAdder-capable estimator must leave state identical
// to feeding the same keys via Add, and the fallback for estimators without
// AddBytes must deliver the converted strings.
func TestSynchronizedAddBytesBothPaths(t *testing.T) {
	cond := implicate.Conditions{MaxMultiplicity: 2, MinSupport: 3, TopC: 1, MinTopConfidence: 0.8}

	// Pass-through: the sketch implements BytesAdder.
	sk, err := implicate.NewSketch(cond, implicate.Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	wrapped := implicate.Synchronized(sk)
	serial, err := implicate.NewSketch(cond, implicate.Options{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5000; i++ {
		a, b := fmt.Sprintf("a%d", i%700), fmt.Sprintf("b%d", i%700)
		wrapped.AddBytes([]byte(a), []byte(b))
		serial.Add(a, b)
	}
	got, err := sk.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	want, err := serial.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Error("AddBytes through the wrapper diverged from serial Add")
	}

	// Fallback: the recorder has no AddBytes, so the wrapper must convert.
	rec := &recordingEstimator{}
	fb := implicate.Synchronized(rec)
	fb.AddBytes([]byte("x1"), []byte("y1"))
	fb.AddBytes([]byte("x2"), []byte("y2"))
	if len(rec.added) != 2 || rec.added[0] != [2]string{"x1", "y1"} || rec.added[1] != [2]string{"x2", "y2"} {
		t.Fatalf("fallback delivered %v", rec.added)
	}
}
