package core

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"implicate/internal/imps"
)

// shardWorkload builds a deterministic stream mixing implicating itemsets,
// multiplicity violators, and under-supported background noise, with enough
// volume to exercise fringe floats, tombstones and overflows.
func shardWorkload(seed int64, n int) []imps.Pair {
	rng := rand.New(rand.NewSource(seed))
	var tuples []imps.Pair
	for i := 0; i < n/10; i++ {
		a := fmt.Sprintf("imp-%d", i)
		for s := 0; s < 5; s++ {
			tuples = append(tuples, imps.Pair{A: a, B: fmt.Sprintf("p-%d", i%7)})
		}
	}
	for i := 0; i < n/20; i++ {
		a := fmt.Sprintf("non-%d", i)
		for s := 0; s < 8; s++ {
			tuples = append(tuples, imps.Pair{A: a, B: fmt.Sprintf("nb-%d-%d", i, s)})
		}
	}
	for len(tuples) < n {
		tuples = append(tuples, imps.Pair{A: fmt.Sprintf("bg-%d", rng.Intn(n)), B: fmt.Sprintf("bp-%d", rng.Intn(64))})
	}
	rng.Shuffle(len(tuples), func(i, j int) { tuples[i], tuples[j] = tuples[j], tuples[i] })
	return tuples[:n]
}

type estimates struct {
	impl, nonImpl, supported, distinct, avgMult float64
	ci                                          float64
	tuples                                      int64
	mem                                         int
	fringe                                      FringeStats
}

func estimatesOfSketch(s *Sketch) estimates {
	return estimates{
		impl:      s.ImplicationCount(),
		nonImpl:   s.NonImplicationCount(),
		supported: s.SupportedDistinct(),
		distinct:  s.DistinctCount(),
		avgMult:   s.AvgMultiplicity(),
		ci:        s.CIImplicationCount(),
		tuples:    s.Tuples(),
		mem:       s.MemEntries(),
		fringe:    s.Fringe(),
	}
}

func estimatesOfSharded(s *ShardedSketch) estimates {
	return estimates{
		impl:      s.ImplicationCount(),
		nonImpl:   s.NonImplicationCount(),
		supported: s.SupportedDistinct(),
		distinct:  s.DistinctCount(),
		avgMult:   s.AvgMultiplicity(),
		ci:        s.CIImplicationCount(),
		tuples:    s.Tuples(),
		mem:       s.MemEntries(),
		fringe:    s.Fringe(),
	}
}

func TestNewShardedSketchValidation(t *testing.T) {
	cond := testConditions()
	if _, err := NewShardedSketch(cond, Options{}, 3); err == nil {
		t.Fatal("non-power-of-two shard count accepted")
	}
	if _, err := NewShardedSketch(cond, Options{Bitmaps: 4}, 8); err == nil {
		t.Fatal("shard count exceeding bitmap count accepted")
	}
	if _, err := NewShardedSketch(imps.Conditions{}, Options{}, 2); err == nil {
		t.Fatal("zero conditions accepted")
	}
	ss, err := NewShardedSketch(cond, Options{}, 0)
	if err != nil {
		t.Fatalf("default shard count rejected: %v", err)
	}
	if n := ss.Shards(); n < 1 || n&(n-1) != 0 {
		t.Fatalf("default shard count %d not a power of two", n)
	}
	if ss.Options().Bitmaps != DefaultBitmaps {
		t.Fatalf("effective options lost the global bitmap count: %+v", ss.Options())
	}
}

// TestShardedDeterminism is the core contract: a ShardedSketch with any
// shard count, fed any permutation of the stream, reports bit-identical
// estimates to a single same-seed Sketch fed the same order.
func TestShardedDeterminism(t *testing.T) {
	cond := testConditions()
	opts := Options{Seed: 42}
	base := shardWorkload(1, 30_000)

	for perm := 0; perm < 3; perm++ {
		tuples := append([]imps.Pair(nil), base...)
		rand.New(rand.NewSource(int64(perm))).Shuffle(len(tuples), func(i, j int) {
			tuples[i], tuples[j] = tuples[j], tuples[i]
		})
		single := MustSketch(cond, opts)
		for _, p := range tuples {
			single.Add(p.A, p.B)
		}
		want := estimatesOfSketch(single)
		if want.impl == 0 || want.nonImpl == 0 {
			t.Fatalf("degenerate workload: %+v", want)
		}

		for _, n := range []int{1, 2, 4, 8} {
			ss, err := NewShardedSketch(cond, opts, n)
			if err != nil {
				t.Fatal(err)
			}
			for _, p := range tuples {
				ss.Add(p.A, p.B)
			}
			ss.Flush()
			if got := estimatesOfSharded(ss); got != want {
				t.Errorf("perm %d, %d shards: estimates diverge\n got %+v\nwant %+v", perm, n, got, want)
			}
		}
	}
}

// TestShardedBatchPathsMatch verifies every ingest path (Add, AddBytes,
// AddIDs equivalents aside, AddBatch, AddHashedBatch with pre-hashed pairs)
// lands on the same estimates.
func TestShardedBatchPathsMatch(t *testing.T) {
	cond := testConditions()
	opts := Options{Seed: 7}
	tuples := shardWorkload(2, 8_000)

	ref, err := NewShardedSketch(cond, opts, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range tuples {
		ref.Add(p.A, p.B)
	}
	want := estimatesOfSharded(ref)

	byBytes, _ := NewShardedSketch(cond, opts, 4)
	for _, p := range tuples {
		byBytes.AddBytes([]byte(p.A), []byte(p.B))
	}
	if got := estimatesOfSharded(byBytes); got != want {
		t.Errorf("AddBytes diverges:\n got %+v\nwant %+v", got, want)
	}

	byBatch, _ := NewShardedSketch(cond, opts, 4)
	for off := 0; off < len(tuples); off += 300 {
		end := off + 300
		if end > len(tuples) {
			end = len(tuples)
		}
		byBatch.AddBatch(tuples[off:end])
	}
	if got := estimatesOfSharded(byBatch); got != want {
		t.Errorf("AddBatch diverges:\n got %+v\nwant %+v", got, want)
	}

	byHashed, _ := NewShardedSketch(cond, opts, 4)
	hashed := make([]HashedPair, len(tuples))
	for i, p := range tuples {
		hashed[i] = byHashed.HashPair(p.A, p.B)
	}
	for off := 0; off < len(hashed); off += 64 {
		end := off + 64
		if end > len(hashed) {
			end = len(hashed)
		}
		byHashed.AddHashedBatch(hashed[off:end])
	}
	if got := estimatesOfSharded(byHashed); got != want {
		t.Errorf("AddHashedBatch diverges:\n got %+v\nwant %+v", got, want)
	}

	// Batch paths on the plain Sketch agree with its per-tuple path too.
	single := MustSketch(cond, opts)
	for _, p := range tuples {
		single.Add(p.A, p.B)
	}
	batched := MustSketch(cond, opts)
	batched.AddBatch(tuples)
	if a, b := estimatesOfSketch(single), estimatesOfSketch(batched); a != b {
		t.Errorf("Sketch.AddBatch diverges:\n got %+v\nwant %+v", b, a)
	}
	prehashed := MustSketch(cond, opts)
	hp := make([]HashedPair, len(tuples))
	for i, p := range tuples {
		hp[i] = prehashed.HashPair(p.A, p.B)
	}
	prehashed.AddHashedBatch(hp)
	if a, b := estimatesOfSketch(single), estimatesOfSketch(prehashed); a != b {
		t.Errorf("Sketch.AddHashedBatch diverges:\n got %+v\nwant %+v", b, a)
	}
}

// TestShardedIntervalAndReset checks the remaining aggregate readers.
func TestShardedIntervalAndReset(t *testing.T) {
	cond := testConditions()
	opts := Options{Seed: 11}
	tuples := shardWorkload(3, 10_000)

	single := MustSketch(cond, opts)
	ss, _ := NewShardedSketch(cond, opts, 4)
	for _, p := range tuples {
		single.Add(p.A, p.B)
		ss.Add(p.A, p.B)
	}
	slo, shi := single.ImplicationCountInterval(2)
	plo, phi := ss.ImplicationCountInterval(2)
	if slo != plo || shi != phi {
		t.Errorf("interval diverges: single [%g,%g] sharded [%g,%g]", slo, shi, plo, phi)
	}
	if single.MinEstimable() != ss.MinEstimable() {
		t.Errorf("MinEstimable diverges: %g vs %g", single.MinEstimable(), ss.MinEstimable())
	}
	if ss.PeakMemEntries() < single.MemEntries() {
		t.Errorf("sharded peak %d below live entries %d", ss.PeakMemEntries(), single.MemEntries())
	}

	ss.Reset()
	if ss.Tuples() != 0 || ss.MemEntries() != 0 || ss.ImplicationCount() != 0 {
		t.Fatal("Reset left residual state")
	}
	// Refeeding after Reset reproduces the estimates.
	for _, p := range tuples {
		ss.Add(p.A, p.B)
	}
	if got, want := estimatesOfSharded(ss), estimatesOfSketch(single); got != want {
		t.Errorf("post-Reset estimates diverge:\n got %+v\nwant %+v", got, want)
	}
}

// TestShardedConcurrentStress hammers one ShardedSketch with 8 producers
// using mixed ingest paths while readers query concurrently; run under
// -race this is the data-race proof. Estimates that are pure functions of
// the observed SET of tuples (tuple count, distinct count) must come out
// exactly; the order-sensitive ones are sanity-bounded against a serial
// reference.
func TestShardedConcurrentStress(t *testing.T) {
	cond := testConditions()
	opts := Options{Seed: 99}
	const producers = 8
	tuples := shardWorkload(4, 40_000)

	serial := MustSketch(cond, opts)
	for _, p := range tuples {
		serial.Add(p.A, p.B)
	}

	ss, err := NewShardedSketch(cond, opts, 8)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	per := len(tuples) / producers
	for g := 0; g < producers; g++ {
		wg.Add(1)
		go func(part []imps.Pair, mode int) {
			defer wg.Done()
			switch mode % 3 {
			case 0:
				for _, p := range part {
					ss.Add(p.A, p.B)
				}
			case 1:
				for off := 0; off < len(part); off += 97 {
					end := off + 97
					if end > len(part) {
						end = len(part)
					}
					ss.AddBatch(part[off:end])
				}
			default:
				hashed := make([]HashedPair, len(part))
				for i, p := range part {
					hashed[i] = ss.HashPair(p.A, p.B)
				}
				ss.AddHashedBatch(hashed)
			}
		}(tuples[g*per:(g+1)*per], g)
	}
	// Concurrent readers exercise the aggregate paths mid-ingest.
	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 2; r++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if ss.ImplicationCount() < 0 || ss.MemEntries() < 0 {
					t.Error("negative estimate under concurrency")
					return
				}
				ss.Fringe()
			}
		}()
	}
	wg.Wait()
	close(stop)
	readers.Wait()
	ss.Flush()

	total := int64(per * producers)
	if got := ss.Tuples(); got != total {
		t.Fatalf("tuple count %d, want %d", got, total)
	}
	// The touched-bit reader depends only on the set of hashes, never on
	// arrival order, so it must be bit-identical to the serial reference
	// over the same tuples.
	serialSubset := MustSketch(cond, opts)
	for _, p := range tuples[:per*producers] {
		serialSubset.Add(p.A, p.B)
	}
	if got, want := ss.DistinctCount(), serialSubset.DistinctCount(); got != want {
		t.Errorf("DistinctCount %g diverges from order-independent reference %g", got, want)
	}
	// Order-sensitive estimates can differ across interleavings only through
	// fringe-float edge cases; they must stay in the same ballpark.
	for _, c := range []struct {
		name      string
		got, want float64
	}{
		{"ImplicationCount", ss.ImplicationCount(), serialSubset.ImplicationCount()},
		{"SupportedDistinct", ss.SupportedDistinct(), serialSubset.SupportedDistinct()},
		{"NonImplicationCount", ss.NonImplicationCount(), serialSubset.NonImplicationCount()},
	} {
		if c.got < 0.5*c.want || c.got > 2*c.want {
			t.Errorf("%s under concurrency: %g vs serial %g", c.name, c.got, c.want)
		}
	}
}
