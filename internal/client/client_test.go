package client

import (
	"errors"
	"fmt"
	"io"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"implicate/internal/proto"
	"implicate/internal/stream"
)

// fakeServer is a scripted proto endpoint: handle is called per request
// frame and returns the response frame. It answers out of order when
// handlers block, which is exactly what the pipelining tests need.
type fakeServer struct {
	ln     net.Listener
	handle func(f proto.Frame) proto.Frame
	wg     sync.WaitGroup
}

func startFake(t *testing.T, handle func(f proto.Frame) proto.Frame) *fakeServer {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	fs := &fakeServer{ln: ln, handle: handle}
	fs.wg.Add(1)
	go func() {
		defer fs.wg.Done()
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			fs.wg.Add(1)
			go func() {
				defer fs.wg.Done()
				defer c.Close()
				var wmu sync.Mutex
				for {
					f, err := proto.ReadFrame(c)
					if err != nil {
						return
					}
					if f.Type == proto.TBoot {
						// The dial handshake; scripted handlers only see the
						// RPCs under test.
						wmu.Lock()
						proto.WriteFrame(c, proto.Frame{Type: proto.TResult, ID: f.ID,
							Payload: proto.Boot{Nonce: 0xfa4e}.Encode()})
						wmu.Unlock()
						continue
					}
					fs.wg.Add(1)
					go func() {
						defer fs.wg.Done()
						resp := fs.handle(f)
						wmu.Lock()
						defer wmu.Unlock()
						proto.WriteFrame(c, resp)
					}()
				}
			}()
		}
	}()
	t.Cleanup(func() { ln.Close(); fs.wg.Wait() })
	return fs
}

func (fs *fakeServer) addr() string { return fs.ln.Addr().String() }

func testSchema(t *testing.T) *stream.Schema {
	t.Helper()
	s, err := stream.NewSchema("A", "B")
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func okIngest(f proto.Frame) proto.Frame {
	return proto.Frame{Type: proto.TOK, ID: f.ID, Payload: proto.IngestAck{Tuples: 2}.Encode()}
}

func TestDialFailsFast(t *testing.T) {
	if _, err := Dial("127.0.0.1:0", nil, Options{DialTimeout: 100 * time.Millisecond}); err == nil {
		t.Fatal("dial to port 0 succeeded")
	}
	if _, err := Dial("x", nil, Options{Conns: -1}); err == nil {
		t.Fatal("negative pool size accepted")
	}
}

func TestIngestBusyThenOK(t *testing.T) {
	var mu sync.Mutex
	busyLeft := 3
	fs := startFake(t, func(f proto.Frame) proto.Frame {
		mu.Lock()
		defer mu.Unlock()
		if busyLeft > 0 {
			busyLeft--
			return proto.Frame{Type: proto.TBusy, ID: f.ID, Payload: proto.Busy{RetryAfter: time.Millisecond}.Encode()}
		}
		return okIngest(f)
	})
	cl, err := Dial(fs.addr(), testSchema(t), Options{RetryBase: time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.IngestBatch([]stream.Tuple{{"a", "b"}, {"c", "d"}}); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if busyLeft != 0 {
		t.Fatalf("%d busy replies left unconsumed", busyLeft)
	}
}

func TestIngestBusyRetriesExhausted(t *testing.T) {
	fs := startFake(t, func(f proto.Frame) proto.Frame {
		return proto.Frame{Type: proto.TBusy, ID: f.ID, Payload: proto.Busy{}.Encode()}
	})
	cl, err := Dial(fs.addr(), testSchema(t), Options{BusyRetries: 2, RetryBase: time.Microsecond, RetryCap: time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	err = cl.IngestBatch([]stream.Tuple{{"a", "b"}})
	if !errors.Is(err, ErrBackpressure) {
		t.Fatalf("want ErrBackpressure, got %v", err)
	}
}

func TestIngestAckCountMismatch(t *testing.T) {
	fs := startFake(t, func(f proto.Frame) proto.Frame {
		return proto.Frame{Type: proto.TOK, ID: f.ID, Payload: proto.IngestAck{Tuples: 1}.Encode()}
	})
	cl, err := Dial(fs.addr(), testSchema(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	if err := cl.IngestBatch([]stream.Tuple{{"a", "b"}, {"c", "d"}}); err == nil || !strings.Contains(err.Error(), "acknowledged 1 of 2") {
		t.Fatalf("short ack not detected: %v", err)
	}
}

func TestRemoteErrorSurfaces(t *testing.T) {
	fs := startFake(t, func(f proto.Frame) proto.Frame {
		return proto.Frame{Type: proto.TError, ID: f.ID, Payload: proto.EncodeError("no such statement")}
	})
	cl, err := Dial(fs.addr(), nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	var remote *RemoteError
	if _, err := cl.Query(9); !errors.As(err, &remote) || remote.Msg != "no such statement" {
		t.Fatalf("remote error not surfaced: %v", err)
	}
}

func TestPipeliningMatchesResponsesById(t *testing.T) {
	// The fake delays the FIRST query it sees, so responses come back out of
	// request order; each caller must still get its own answer.
	var mu sync.Mutex
	seen := 0
	fs := startFake(t, func(f proto.Frame) proto.Frame {
		req, err := proto.DecodeQueryReq(f.Payload)
		if err != nil {
			return proto.Frame{Type: proto.TError, ID: f.ID, Payload: proto.EncodeError(err.Error())}
		}
		mu.Lock()
		seen++
		first := seen == 1
		mu.Unlock()
		if first {
			time.Sleep(50 * time.Millisecond)
		}
		return proto.Frame{Type: proto.TResult, ID: f.ID,
			Payload: proto.QueryResult{Count: float64(req.Stmt), Tuples: int64(req.Stmt)}.Encode()}
	})
	cl, err := Dial(fs.addr(), nil, Options{Conns: 1}) // one conn: all calls share it
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()

	const calls = 16
	var wg sync.WaitGroup
	errs := make(chan error, calls)
	for i := 0; i < calls; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := cl.Query(i)
			if err != nil {
				errs <- err
				return
			}
			if res.Count != float64(i) {
				errs <- fmt.Errorf("query %d got answer %v", i, res.Count)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

func TestQueryRedialsDeadConnection(t *testing.T) {
	// The first connection dies right after the dial handshake; the pooled
	// client sees a dead conn and must redial for the next idempotent call.
	var mu sync.Mutex
	drops := 1
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			mu.Lock()
			drop := drops > 0
			if drop {
				drops--
			}
			mu.Unlock()
			go func() {
				defer c.Close()
				for {
					f, err := proto.ReadFrame(c)
					if err != nil {
						return
					}
					if f.Type == proto.TBoot {
						proto.WriteFrame(c, proto.Frame{Type: proto.TResult, ID: f.ID,
							Payload: proto.Boot{Nonce: 0xb007}.Encode()})
						if drop {
							return // connection dies after the handshake
						}
						continue
					}
					proto.WriteFrame(c, proto.Frame{Type: proto.TResult, ID: f.ID,
						Payload: proto.QueryResult{Count: 7, Tuples: 1}.Encode()})
				}
			}()
		}
	}()

	cl, err := Dial(ln.Addr().String(), nil, Options{Conns: 1, NetRetries: 3, RetryBase: time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	res, err := cl.Query(0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Count != 7 {
		t.Fatalf("count %v", res.Count)
	}
}

func TestRequestTimeout(t *testing.T) {
	fs := startFake(t, func(f proto.Frame) proto.Frame {
		time.Sleep(time.Second) // far beyond the 50ms request timeout
		return proto.Frame{Type: proto.TOK, ID: f.ID}
	})
	cl, err := Dial(fs.addr(), nil, Options{RequestTimeout: 50 * time.Millisecond, NetRetries: 1, RetryBase: time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	start := time.Now()
	_, err = cl.Stats()
	if err == nil || !strings.Contains(err.Error(), "timed out") {
		t.Fatalf("want timeout, got %v", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatalf("timeout took %v", time.Since(start))
	}
}

func TestCallsAfterCloseFail(t *testing.T) {
	fs := startFake(t, okIngest)
	cl, err := Dial(fs.addr(), testSchema(t), Options{})
	if err != nil {
		t.Fatal(err)
	}
	cl.Close()
	if _, err := cl.Query(0); err == nil {
		t.Fatal("query on closed client succeeded")
	}
	if err := cl.IngestBatch([]stream.Tuple{{"a", "b"}}); err == nil {
		t.Fatal("ingest on closed client succeeded")
	}
}

func TestFencedCallsRefuseNewIncarnation(t *testing.T) {
	// A fake server whose boot nonce can be bumped, simulating a restart.
	// After the bump every live connection is killed, so the pooled client
	// transparently redials — and the fence must catch the new incarnation
	// before a single ingest byte is written.
	var mu sync.Mutex
	nonce := uint64(1)
	var conns []net.Conn
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			mu.Lock()
			conns = append(conns, c)
			mu.Unlock()
			go func() {
				defer c.Close()
				for {
					f, err := proto.ReadFrame(c)
					if err != nil {
						return
					}
					switch f.Type {
					case proto.TBoot:
						mu.Lock()
						n := nonce
						mu.Unlock()
						proto.WriteFrame(c, proto.Frame{Type: proto.TResult, ID: f.ID,
							Payload: proto.Boot{Nonce: n}.Encode()})
					case proto.TIngest:
						proto.WriteFrame(c, proto.Frame{Type: proto.TOK, ID: f.ID,
							Payload: proto.IngestAck{Tuples: 1}.Encode()})
					case proto.TQuery:
						proto.WriteFrame(c, proto.Frame{Type: proto.TResult, ID: f.ID,
							Payload: proto.QueryResult{Count: 1, Tuples: 1}.Encode()})
					}
				}
			}()
		}
	}()

	schema := testSchema(t)
	cl, err := Dial(ln.Addr().String(), schema, Options{Conns: 1, RetryBase: time.Microsecond})
	if err != nil {
		t.Fatal(err)
	}
	defer cl.Close()
	boot, err := cl.Boot()
	if err != nil {
		t.Fatal(err)
	}
	if boot != 1 {
		t.Fatalf("boot nonce %d, want 1", boot)
	}
	payload, err := EncodeBatch(schema, []stream.Tuple{{"a", "b"}})
	if err != nil {
		t.Fatal(err)
	}
	// Same incarnation: fenced calls go through.
	if err := cl.IngestFenced(payload, 1, boot); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.QueryFenced(0, boot); err != nil {
		t.Fatal(err)
	}

	// "Restart": bump the nonce and kill every live connection.
	mu.Lock()
	nonce = 2
	for _, c := range conns {
		c.Close()
	}
	mu.Unlock()

	// The pool will transparently redial — exactly the hole the fence closes.
	deadline := time.Now().Add(5 * time.Second)
	for {
		err := cl.IngestFenced(payload, 1, boot)
		if errors.Is(err, ErrIncarnation) {
			break
		}
		if err == nil {
			t.Fatal("fenced ingest crossed a server restart without error")
		}
		// A transient net error from the dying conn is fine; retry until the
		// redial lands on the new incarnation.
		if time.Now().After(deadline) {
			t.Fatalf("never saw ErrIncarnation, last err: %v", err)
		}
	}
	if _, err := cl.QueryFenced(0, boot); !errors.Is(err, ErrIncarnation) {
		t.Fatalf("fenced query after restart: %v", err)
	}
	// Unfenced calls still work against the new incarnation.
	if _, err := cl.Query(0); err != nil {
		t.Fatal(err)
	}
	if got, err := cl.Boot(); err != nil || got != 2 {
		t.Fatalf("boot after restart = %d, %v; want 2", got, err)
	}
}

func TestEncodeBatchRequiresSchema(t *testing.T) {
	if _, err := EncodeBatch(nil, []stream.Tuple{{"a", "b"}}); err == nil {
		t.Fatal("nil schema accepted")
	}
	// And the encoding round-trips through a binary reader.
	schema := testSchema(t)
	data, err := EncodeBatch(schema, []stream.Tuple{{"a", "b"}, {"c", "d"}})
	if err != nil {
		t.Fatal(err)
	}
	br, err := stream.NewBinaryReader(strings.NewReader(string(data)))
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		if _, err := br.Next(); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
		n++
	}
	if n != 2 {
		t.Fatalf("decoded %d tuples, want 2", n)
	}
}
