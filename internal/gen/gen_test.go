package gen

import (
	"fmt"
	"testing"

	"implicate/internal/exact"
	"implicate/internal/imps"
)

// TestDatasetOneGroundTruth is the generator's self-consistency check (the
// property DESIGN.md promises): replaying the stream through the exact
// counter must yield exactly the imposed implication, non-implication and
// supported counts, for every c the paper uses.
func TestDatasetOneGroundTruth(t *testing.T) {
	for _, c := range []int{1, 2, 4} {
		for _, frac := range []float64{0.1, 0.5, 0.9} {
			cfg := DatasetOneConfig{CardA: 400, Count: int(400 * frac), C: c, Seed: int64(c*100) + int64(frac*10)}
			d, err := NewDatasetOne(cfg)
			if err != nil {
				t.Fatal(err)
			}
			ex := exact.MustCounter(d.Conditions)
			d.Feed(ex)
			if got := int(ex.ImplicationCount()); got != d.Count {
				t.Errorf("c=%d frac=%.1f: exact implications %d != imposed %d", c, frac, got, d.Count)
			}
			if got := int(ex.NonImplicationCount()); got != d.NonCount {
				t.Errorf("c=%d frac=%.1f: exact non-implications %d != imposed %d", c, frac, got, d.NonCount)
			}
			if got := int(ex.SupportedDistinct()); got != d.Supported {
				t.Errorf("c=%d frac=%.1f: exact supported %d != imposed %d", c, frac, got, d.Supported)
			}
		}
	}
}

func TestDatasetOneValidation(t *testing.T) {
	bad := []DatasetOneConfig{
		{CardA: 0, Count: 1},
		{CardA: 100, Count: 0},
		{CardA: 100, Count: 101},
		{CardA: 100, Count: 10, Support: 5},
		{CardA: 100, Count: 10, C: -1},
	}
	for i, cfg := range bad {
		if _, err := NewDatasetOne(cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestDatasetOneDeterministic(t *testing.T) {
	cfg := DatasetOneConfig{CardA: 120, Count: 60, C: 2, Seed: 5}
	d1 := MustDatasetOne(cfg)
	d2 := MustDatasetOne(cfg)
	if len(d1.Pairs) != len(d2.Pairs) {
		t.Fatal("lengths differ")
	}
	for i := range d1.Pairs {
		if d1.Pairs[i] != d2.Pairs[i] {
			t.Fatalf("pair %d differs", i)
		}
	}
}

func TestDatasetOneTupleVolume(t *testing.T) {
	// §6.1 quotes ≈3.1M tuples for |A|=10000, S=5000, c=4. Check our
	// generator is in that ballpark at a scaled-down configuration: the
	// expected count is S·(50·(c+1)/2+4) + per·(50+8) + per·50 + per·40.
	cfg := DatasetOneConfig{CardA: 1000, Count: 500, C: 4, Seed: 1}
	d := MustDatasetOne(cfg)
	per := (cfg.CardA - cfg.Count) / 3
	expected := cfg.Count*(50*(4+1)/2+4) + per*58 + per*50 + per*40
	got := len(d.Pairs)
	if got < expected*85/100 || got > expected*115/100 {
		t.Fatalf("tuple volume %d, expected ≈%d", got, expected)
	}
}

func TestKeyUnique(t *testing.T) {
	seen := map[string]bool{}
	for i := uint64(0); i < 1000; i++ {
		k := Key(i)
		if seen[k] {
			t.Fatalf("Key(%d) collides", i)
		}
		seen[k] = true
	}
	if PairKey(1, 2) == PairKey(2, 1) {
		t.Fatal("PairKey not order-sensitive")
	}
	if SingleKey(7) == SingleKey(8) {
		t.Fatal("SingleKey collision")
	}
}

// TestOLAPShape verifies the surrogate reproduces the Table 4 shape: both
// workload counts grow with the stream and workload A dominates workload B
// by orders of magnitude.
func TestOLAPShape(t *testing.T) {
	if testing.Short() {
		t.Skip("stream too long for -short")
	}
	o := NewOLAP(OLAPConfig{Seed: 3})
	condA := imps.Conditions{MaxMultiplicity: 2, MinSupport: 5, TopC: 1, MinTopConfidence: 0.60}
	condB := condA
	exA := exact.MustCounter(condA)
	exB := exact.MustCounter(condB)
	checkpoints := []int64{134576, 672771, 1344591}
	var lastA, lastB float64
	ci := 0
	for o.Tuples() < checkpoints[len(checkpoints)-1] {
		ids := o.NextIDs()
		exA.Add(PairKey(ids[0], ids[1]), PairKey(ids[4], ids[6]))
		exB.Add(SingleKey(ids[4]), SingleKey(ids[1]))
		if o.Tuples() == checkpoints[ci] {
			a, b := exA.ImplicationCount(), exB.ImplicationCount()
			if a <= lastA {
				t.Errorf("checkpoint %d: workload A count %v did not grow from %v", checkpoints[ci], a, lastA)
			}
			if b < lastB {
				t.Errorf("checkpoint %d: workload B count %v shrank from %v", checkpoints[ci], b, lastB)
			}
			// Table 4's own ratios run from 12× (first row) to 1000×
			// (last); require clear dominance throughout.
			if a < 8*b {
				t.Errorf("checkpoint %d: workload A (%v) does not dominate workload B (%v)", checkpoints[ci], a, b)
			}
			lastA, lastB = a, b
			ci++
		}
	}
	// Magnitude sanity against Table 4 row 3 (1.34M tuples: A=34816, B=152):
	// same order of magnitude, not exact values.
	if lastA < 5000 || lastA > 300000 {
		t.Errorf("workload A count %v far from the Table 4 magnitude", lastA)
	}
	if lastB < 20 || lastB > 600 {
		t.Errorf("workload B count %v far from the Table 4 magnitude", lastB)
	}
}

func TestOLAPDimensionRanges(t *testing.T) {
	o := NewOLAP(OLAPConfig{Seed: 1})
	cards := [8]uint32{CardA, CardB, CardC, CardD, CardE, CardF, CardG, CardH}
	for i := 0; i < 20000; i++ {
		ids := o.NextIDs()
		for d, v := range ids {
			if v >= cards[d] {
				t.Fatalf("dimension %d value %d out of range %d", d, v, cards[d])
			}
		}
	}
	if o.Tuples() != 20000 {
		t.Fatalf("Tuples = %d", o.Tuples())
	}
}

func TestOLAPNextTupleForm(t *testing.T) {
	o := NewOLAP(OLAPConfig{Seed: 2})
	schema := OLAPSchema()
	tup, err := o.Next()
	if err != nil {
		t.Fatal(err)
	}
	if len(tup) != schema.Len() {
		t.Fatalf("tuple arity %d != schema %d", len(tup), schema.Len())
	}
}

func TestNetTrafficFlashCrowd(t *testing.T) {
	g := NewNetTraffic(NetTrafficConfig{
		Seed: 4, FlashSources: 500, FlashTargets: 2, FlashAfter: 5000,
	})
	schema := NetTrafficSchema()
	pSrc := schema.MustProj("Source")
	pDst := schema.MustProj("Destination")
	attackBefore, attackAfter := 0, 0
	for i := 0; i < 20000; i++ {
		tup, err := g.Next()
		if err != nil {
			t.Fatal(err)
		}
		if len(tup) != 4 {
			t.Fatalf("arity %d", len(tup))
		}
		if len(pDst.Key(tup)) == 0 || len(pSrc.Key(tup)) == 0 {
			t.Fatal("empty keys")
		}
		if tup[1] == "victim-0" || tup[1] == "victim-1" {
			if i < 5000 {
				attackBefore++
			} else {
				attackAfter++
			}
		}
	}
	if attackBefore != 0 {
		t.Fatalf("%d attack tuples before onset", attackBefore)
	}
	if attackAfter < 4000 {
		t.Fatalf("only %d attack tuples after onset", attackAfter)
	}
}

func TestNetTrafficDeterministic(t *testing.T) {
	g1 := NewNetTraffic(NetTrafficConfig{Seed: 9})
	g2 := NewNetTraffic(NetTrafficConfig{Seed: 9})
	for i := 0; i < 1000; i++ {
		t1, _ := g1.Next()
		t2, _ := g2.Next()
		if fmt.Sprint(t1) != fmt.Sprint(t2) {
			t.Fatalf("tuple %d differs", i)
		}
	}
}
