package implicate

import "sync"

// Synchronized wraps an estimator with a read-write mutex so multiple
// goroutines can feed and query it concurrently. The underlying estimators
// are deliberately lock-free single-writer structures — the paper's per-item
// cost analysis (§4.6) budgets a handful of hash and counter operations per
// tuple, and an uncontended fast path must not pay for synchronization it
// does not need — so wrap them only when tuples genuinely arrive from
// multiple goroutines.
//
// Two concurrency wrappers exist and they trade differently:
//
//   - Synchronized serializes every Add through one lock. It works for any
//     estimator (exact, ILC, Distinct Sampling, windows, ...) but caps
//     ingest throughput at one core, whatever the producer count.
//   - ShardedSketch partitions a NIPS/CI sketch's bitmaps across
//     independently locked shards, so producers ingest in parallel. Prefer
//     it whenever the estimator is the sketch and ingest rate matters.
//
// Query methods (ImplicationCount, Tuples, MemEntries, ...) take only the
// read lock, so monitoring reads never stall ingestion behind one another;
// they still exclude writers. This requires the wrapped estimator's query
// methods to be read-only, which holds for every estimator in this module.
//
// If the wrapped estimator supports AvgMultiplicity the wrapper forwards
// it; otherwise AvgMultiplicity returns 0. AddBatch and AddBytes forward to
// the wrapped estimator's amortized paths when available and fall back to
// per-tuple Adds under a single lock acquisition otherwise.
func Synchronized(est Estimator) *SyncEstimator {
	return &SyncEstimator{est: est}
}

// SyncEstimator is a mutex-guarded estimator; see Synchronized.
type SyncEstimator struct {
	mu  sync.RWMutex
	est Estimator
}

// Add observes one tuple.
func (s *SyncEstimator) Add(a, b string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.est.Add(a, b)
}

// AddBytes observes one tuple from byte-slice keys. When the wrapped
// estimator implements BytesAdder the slices pass straight through and no
// allocation happens; otherwise the call falls back to Add, paying one
// string copy per key on every tuple — wrap a BytesAdder (or use AddBatch)
// when byte-keyed ingest is the hot path.
func (s *SyncEstimator) AddBytes(a, b []byte) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if ba, ok := s.est.(BytesAdder); ok {
		ba.AddBytes(a, b)
		return
	}
	s.est.Add(string(a), string(b))
}

// AddBatch observes a batch of tuples under a single lock acquisition,
// amortizing the wrapper's synchronization cost across the batch.
func (s *SyncEstimator) AddBatch(pairs []Pair) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if ba, ok := s.est.(BatchAdder); ok {
		ba.AddBatch(pairs)
		return
	}
	for i := range pairs {
		s.est.Add(pairs[i].A, pairs[i].B)
	}
}

// ImplicationCount estimates S.
func (s *SyncEstimator) ImplicationCount() float64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.est.ImplicationCount()
}

// NonImplicationCount estimates ~S.
func (s *SyncEstimator) NonImplicationCount() float64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.est.NonImplicationCount()
}

// SupportedDistinct estimates F0^sup(A).
func (s *SyncEstimator) SupportedDistinct() float64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.est.SupportedDistinct()
}

// Tuples returns the number of tuples observed.
func (s *SyncEstimator) Tuples() int64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.est.Tuples()
}

// MemEntries reports the wrapped estimator's footprint.
func (s *SyncEstimator) MemEntries() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.est.MemEntries()
}

// AvgMultiplicity forwards to the wrapped estimator when supported.
func (s *SyncEstimator) AvgMultiplicity() float64 {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if ma, ok := s.est.(MultiplicityAverager); ok {
		return ma.AvgMultiplicity()
	}
	return 0
}

// Unwrap returns the underlying estimator. Callers must not use it while
// other goroutines still use the wrapper.
func (s *SyncEstimator) Unwrap() Estimator { return s.est }

var (
	_ Estimator            = (*SyncEstimator)(nil)
	_ MultiplicityAverager = (*SyncEstimator)(nil)
	_ BatchAdder           = (*SyncEstimator)(nil)
	_ BytesAdder           = (*SyncEstimator)(nil)
)
