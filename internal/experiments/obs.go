package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"runtime"
	"sync"
	"text/tabwriter"
	"time"

	"implicate/internal/client"
	"implicate/internal/coord"
	"implicate/internal/core"
	"implicate/internal/exact"
	"implicate/internal/gen"
	"implicate/internal/imps"
	"implicate/internal/obs"
	"implicate/internal/query"
	"implicate/internal/server"
	"implicate/internal/stream"
)

// ObsConfig parametrizes the observability-overhead harness: the serve
// harness's loopback ingest run, once with the observability layer off and
// once fully on — span tracing in every layer plus a live /metrics scraper
// — so the instrumentation guardrail ("tracing must stay within a few
// percent of untraced throughput") is a measured number, not a hope.
type ObsConfig struct {
	// Tuples is the stream length per variant.
	Tuples int
	// Batch is the tuples-per-IngestBatch size.
	Batch int
	// Producers is the number of concurrent client goroutines.
	Producers int
	// Workers is the pipeline pool size (one size; the sweep lives in the
	// serve experiment).
	Workers int
	// Queue is the server's ingest queue depth in batches.
	Queue int
	// Leaves, when positive, adds a fleet pair per GOMAXPROCS setting
	// after the single-server pair: a coordinator fronting that many leaf
	// servers, with the observed variant arming cross-node tracing on the
	// coordinator and every leaf, the fleet admin endpoint up, and the
	// scraper walking the coordinator's /metrics — which itself fans
	// Stats/Health RPCs out over the fleet on every poll. The leaves run
	// merge-compatible "nips" sketches (the coordinator's merge fan-in
	// round-trips marshalled sketches, which the exact backend cannot), so
	// fleet rows are not count-comparable with single-server rows; the
	// off/on equality check runs per topology.
	Leaves int
	// TraceSpans is the observed variant's ring capacity.
	TraceSpans int
	// ScrapeEvery is the observed variant's /metrics poll interval.
	ScrapeEvery time.Duration
	// Procs lists the GOMAXPROCS values to sweep; defaults to the current
	// setting only.
	Procs []int
	// Seed drives the workload generator.
	Seed int64
}

func (c ObsConfig) withDefaults() ObsConfig {
	if c.Tuples == 0 {
		// Long enough that each variant runs for whole seconds: the
		// guardrail chases a few percent, which sub-200ms runs cannot
		// resolve above scheduler noise.
		c.Tuples = 1_000_000
	}
	if c.Batch == 0 {
		c.Batch = 1000
	}
	if c.Producers < 1 {
		c.Producers = 4
	}
	if c.Workers < 1 {
		c.Workers = 4
	}
	if c.Queue == 0 {
		c.Queue = 64
	}
	if c.TraceSpans == 0 {
		c.TraceSpans = obs.DefaultSpans
	}
	if c.ScrapeEvery == 0 {
		c.ScrapeEvery = 50 * time.Millisecond
	}
	if len(c.Procs) == 0 {
		c.Procs = []int{runtime.GOMAXPROCS(0)}
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// ObsRow is one variant's measured throughput.
type ObsRow struct {
	// Observed marks the instrumented variant: tracing on in every layer,
	// admin endpoint up, a scraper polling /metrics throughout the run.
	Observed bool `json:"observed"`
	// Leaves is the fleet size of a coordinator-fronted row; 0 for the
	// single-server rows.
	Leaves int `json:"leaves,omitempty"`
	// Procs is the GOMAXPROCS value the variant ran under.
	Procs int `json:"gomaxprocs"`
	// Workers is the pipeline pool size.
	Workers int `json:"workers"`
	// Tuples is the stream length.
	Tuples int `json:"tuples"`
	// Seconds is the wall clock from first send to drained shutdown.
	Seconds float64 `json:"seconds"`
	// TuplesPerSec is Tuples/Seconds.
	TuplesPerSec float64 `json:"tuples_per_sec"`
	// Implications is the final statement count — must agree between the
	// variants: observability must never change an answer.
	Implications float64 `json:"implications"`
	// Spans is the number of spans the tracer admitted (0 when off).
	Spans uint64 `json:"spans"`
	// Scrapes is the number of /metrics polls served during the run.
	Scrapes int64 `json:"scrapes"`
}

// RunObs measures loopback ingest throughput with the observability layer
// off and on. Both variants see identical pre-encoded batches over the
// striped exact backend; the report's overhead percentage is the headline
// number.
func RunObs(cfg ObsConfig) ([]ObsRow, error) {
	cfg = cfg.withDefaults()

	d, err := gen.NewDatasetOne(gen.DatasetOneConfig{
		CardA: cfg.Tuples / 10,
		Count: cfg.Tuples / 20,
		C:     2,
		Seed:  cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	schema, err := stream.NewSchema("A", "B")
	if err != nil {
		return nil, err
	}
	tuples := make([]stream.Tuple, 0, cfg.Tuples)
	for _, p := range d.Pairs {
		tuples = append(tuples, stream.Tuple{fmt.Sprintf("a%d", p.A), fmt.Sprintf("b%d", p.B)})
	}
	for len(tuples) < cfg.Tuples {
		tuples = append(tuples, tuples[:min(len(tuples), cfg.Tuples-len(tuples))]...)
	}
	tuples = tuples[:cfg.Tuples]

	// Key-hash producer routing, as in RunServe: keeps the final count
	// interleaving-invariant so the off/on equality check is meaningful.
	byProducer := make([][]stream.Tuple, cfg.Producers)
	for _, t := range tuples {
		h := uint64(14695981039346656037)
		for i := 0; i < len(t[0]); i++ {
			h = (h ^ uint64(t[0][i])) * 1099511628211
		}
		p := int(h % uint64(cfg.Producers))
		byProducer[p] = append(byProducer[p], t)
	}
	payloads := make([][]encBatch, cfg.Producers)
	for p := range byProducer {
		own := byProducer[p]
		for off := 0; off < len(own); off += cfg.Batch {
			end := min(off+cfg.Batch, len(own))
			enc, err := client.EncodeBatch(schema, own[off:end])
			if err != nil {
				return nil, err
			}
			payloads[p] = append(payloads[p], encBatch{enc, int64(end - off)})
		}
	}

	// The first server of each GOMAXPROCS setting is the warmup: it pays
	// the page faults, map growth and scheduler ramp-up that would
	// otherwise be billed to whichever variant ran first. Its row is
	// discarded.
	variants := []struct{ observed, record bool }{{true, false}, {false, true}, {true, true}}
	topologies := []int{0}
	if cfg.Leaves > 0 {
		topologies = append(topologies, cfg.Leaves)
	}
	var rows []ObsRow
	prevProcs := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prevProcs)
	for _, procs := range cfg.Procs {
		runtime.GOMAXPROCS(procs)
		for _, leaves := range topologies {
			for _, v := range variants {
				var row ObsRow
				var err error
				if leaves > 0 {
					row, err = runObsFleetVariant(cfg, schema, payloads, procs, v.observed)
				} else {
					row, err = runObsVariant(cfg, schema, payloads, procs, v.observed)
				}
				if err != nil {
					return nil, err
				}
				if v.record {
					rows = append(rows, row)
				}
			}
		}
	}
	// The "observability must never change an answer" check runs per
	// topology. Single-server rows answer from the exact backend, which is
	// interleaving-invariant under the key-hash routing above, so they must
	// agree bit for bit. Fleet rows answer from merged sketches whose
	// fringe evictions depend on cross-producer arrival order — an
	// interleaving no layer controls, observed or not; uninstrumented
	// back-to-back fleet runs under GOMAXPROCS > 1 land ~2% apart — so
	// they are held to a 3% band instead, well inside the sketch's own
	// accuracy guarantee; a tracer that biased the estimate would blow
	// past it.
	ref := map[int]float64{}
	for _, r := range rows {
		want, ok := ref[r.Leaves]
		if !ok {
			ref[r.Leaves] = r.Implications
			continue
		}
		if r.Leaves == 0 && r.Implications != want {
			return nil, fmt.Errorf("obs bench: observed=%t procs=%d count %v != first row's count %v — instrumentation changed an answer",
				r.Observed, r.Procs, r.Implications, want)
		}
		if r.Leaves > 0 && math.Abs(r.Implications-want) > 0.03*want {
			return nil, fmt.Errorf("obs bench: observed=%t leaves=%d procs=%d count %v is over 3%% from the fleet's first count %v — instrumentation changed an answer",
				r.Observed, r.Leaves, r.Procs, r.Implications, want)
		}
	}
	return rows, nil
}

// runObsVariant runs one loopback ingest with the observability layer off
// or on under the current GOMAXPROCS.
func runObsVariant(cfg ObsConfig, schema *stream.Schema, payloads [][]encBatch, procs int, observed bool) (ObsRow, error) {
	eng := query.NewEngine(schema)
	st, err := eng.RegisterSQL(serveSQL, func(cond imps.Conditions) (imps.Estimator, error) {
		return exact.NewStriped(cond, 0)
	})
	if err != nil {
		return ObsRow{}, err
	}
	scfg := server.Config{
		Addr:       "127.0.0.1:0",
		Schema:     schema,
		Engine:     eng,
		QueueDepth: cfg.Queue,
		Workers:    cfg.Workers,
	}
	if observed {
		scfg.TraceSpans = cfg.TraceSpans
	}
	srv, err := server.Listen(scfg)
	if err != nil {
		return ObsRow{}, err
	}

	// The observed variant pays for the whole layer: admin endpoint up
	// and a scraper walking /metrics (telemetry snapshot + full health
	// walk) for the duration of the run.
	var admin *obs.AdminServer
	var scrapes int64
	scrapeDone := make(chan struct{})
	stopScrape := make(chan struct{})
	if observed {
		admin, err = obs.ListenAdmin("127.0.0.1:0", srv)
		if err != nil {
			return ObsRow{}, err
		}
		go func() {
			defer close(scrapeDone)
			hc := &http.Client{Timeout: 5 * time.Second}
			for {
				select {
				case <-stopScrape:
					return
				case <-time.After(cfg.ScrapeEvery):
				}
				resp, err := hc.Get("http://" + admin.Addr + "/metrics")
				if err != nil {
					continue // server mid-shutdown
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				scrapes++
			}
		}()
	} else {
		close(scrapeDone)
	}

	var wg sync.WaitGroup
	errs := make(chan error, cfg.Producers)
	start := time.Now()
	for p := 0; p < cfg.Producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			cl, err := client.Dial(srv.Addr(), schema, client.Options{
				Conns:       1,
				BusyRetries: -1,
				RetryBase:   200 * time.Microsecond,
				RetryCap:    5 * time.Millisecond,
			})
			if err != nil {
				errs <- err
				return
			}
			defer cl.Close()
			for _, b := range payloads[p] {
				if err := cl.IngestEncoded(b.payload, b.n); err != nil {
					errs <- err
					return
				}
			}
		}(p)
	}
	wg.Wait()
	if err := srv.Close(); err != nil {
		return ObsRow{}, err
	}
	dur := time.Since(start)
	close(stopScrape)
	<-scrapeDone
	admin.Close()
	close(errs)
	for err := range errs {
		if err != nil {
			return ObsRow{}, err
		}
	}

	sn := srv.Telemetry().Snapshot()
	if sn.TuplesIngested != int64(cfg.Tuples) {
		return ObsRow{}, fmt.Errorf("obs bench: observed=%t applied %d of %d tuples", observed, sn.TuplesIngested, cfg.Tuples)
	}
	return ObsRow{
		Observed:     observed,
		Procs:        procs,
		Workers:      cfg.Workers,
		Tuples:       cfg.Tuples,
		Seconds:      dur.Seconds(),
		TuplesPerSec: float64(cfg.Tuples) / dur.Seconds(),
		Implications: st.Count(),
		Spans:        srv.Tracer().Recorded(),
		Scrapes:      scrapes,
	}, nil
}

// runObsFleetVariant runs one fleet ingest — cfg.Leaves leaf servers
// behind a coordinator front-end — with the fleet observability layer off
// or on. The observed variant pays for everything PR 10 added: cross-node
// delivery spans on the coordinator, trace-aware leaves parenting their
// pipeline spans under inbound contexts, the fleet admin endpoint, and a
// scraper walking /metrics (coordinator series plus the per-leaf roll-up,
// which fans Stats and Health RPCs over the fleet on every poll). The
// timed region runs from first send through the coordinator's Flush — the
// fleet-wide quiesce — so journal depth cannot fake throughput.
func runObsFleetVariant(cfg ObsConfig, schema *stream.Schema, payloads [][]encBatch, procs int, observed bool) (ObsRow, error) {
	backend := func(cond imps.Conditions) (imps.Estimator, error) {
		return core.NewSketch(cond, core.Options{Seed: uint64(cfg.Seed)*2 + 1})
	}
	leaves := make([]*server.Server, 0, cfg.Leaves)
	closeLeaves := func() {
		for _, srv := range leaves {
			srv.Close()
		}
	}
	specs := make([]coord.LeafSpec, cfg.Leaves)
	for i := 0; i < cfg.Leaves; i++ {
		eng := query.NewEngine(schema)
		if _, err := eng.RegisterSQL(serveSQL, backend); err != nil {
			closeLeaves()
			return ObsRow{}, err
		}
		scfg := server.Config{
			Addr:        "127.0.0.1:0",
			Schema:      schema,
			Engine:      eng,
			QueueDepth:  cfg.Queue,
			Workers:     cfg.Workers,
			BlockOnFull: true,
		}
		if observed {
			scfg.TraceSpans = cfg.TraceSpans
		}
		srv, err := server.Listen(scfg)
		if err != nil {
			closeLeaves()
			return ObsRow{}, err
		}
		leaves = append(leaves, srv)
		specs[i] = coord.LeafSpec{Name: fmt.Sprintf("leaf%d", i), Addr: srv.Addr()}
	}
	ccfg := coord.Config{
		Schema:      schema,
		Statements:  []string{serveSQL},
		Leaves:      specs,
		FlushTuples: cfg.Batch,
	}
	if observed {
		ccfg.TraceSpans = cfg.TraceSpans
	}
	co, err := coord.New(ccfg)
	if err != nil {
		closeLeaves()
		return ObsRow{}, err
	}
	fe, err := coord.Serve(co, "127.0.0.1:0")
	if err != nil {
		co.Close()
		closeLeaves()
		return ObsRow{}, err
	}

	var admin *obs.AdminServer
	var scrapes int64
	scrapeDone := make(chan struct{})
	stopScrape := make(chan struct{})
	if observed {
		admin, err = obs.ListenFleetAdmin("127.0.0.1:0", co)
		if err != nil {
			fe.Close()
			co.Close()
			closeLeaves()
			return ObsRow{}, err
		}
		go func() {
			defer close(scrapeDone)
			hc := &http.Client{Timeout: 5 * time.Second}
			for {
				select {
				case <-stopScrape:
					return
				case <-time.After(cfg.ScrapeEvery):
				}
				resp, err := hc.Get("http://" + admin.Addr + "/metrics")
				if err != nil {
					continue // coordinator mid-shutdown
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				scrapes++
			}
		}()
	} else {
		close(scrapeDone)
	}

	var wg sync.WaitGroup
	errs := make(chan error, cfg.Producers)
	start := time.Now()
	for p := 0; p < cfg.Producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			cl, err := client.Dial(fe.Addr(), schema, client.Options{
				Conns:       1,
				BusyRetries: -1,
				RetryBase:   200 * time.Microsecond,
				RetryCap:    5 * time.Millisecond,
			})
			if err != nil {
				errs <- err
				return
			}
			defer cl.Close()
			for _, b := range payloads[p] {
				if err := cl.IngestEncoded(b.payload, b.n); err != nil {
					errs <- err
					return
				}
			}
		}(p)
	}
	wg.Wait()
	flushErr := co.Flush()
	dur := time.Since(start)
	close(stopScrape)
	<-scrapeDone
	admin.Close()
	close(errs)
	for err := range errs {
		if err != nil {
			fe.Close()
			co.Close()
			closeLeaves()
			return ObsRow{}, err
		}
	}
	if flushErr != nil {
		fe.Close()
		co.Close()
		closeLeaves()
		return ObsRow{}, flushErr
	}
	q, err := co.Query(0)
	spans := co.Tracer().Recorded()
	fe.Close()
	co.Close()
	for _, srv := range leaves {
		spans += srv.Tracer().Recorded()
		if cerr := srv.Close(); cerr != nil && err == nil {
			err = cerr
		}
	}
	if err != nil {
		return ObsRow{}, err
	}
	if q.Tuples != int64(cfg.Tuples) {
		return ObsRow{}, fmt.Errorf("obs bench: observed=%t fleet of %d applied %d of %d tuples", observed, cfg.Leaves, q.Tuples, cfg.Tuples)
	}
	return ObsRow{
		Observed:     observed,
		Leaves:       cfg.Leaves,
		Procs:        procs,
		Workers:      cfg.Workers,
		Tuples:       cfg.Tuples,
		Seconds:      dur.Seconds(),
		TuplesPerSec: float64(cfg.Tuples) / dur.Seconds(),
		Implications: q.Count,
		Spans:        spans,
		Scrapes:      scrapes,
	}, nil
}

// ObsOverheadPct is the observed variant's throughput loss against the
// baseline, in percent (negative: the observed run was faster — noise).
// With a GOMAXPROCS sweep the rows hold one baseline/observed pair per
// setting and topology; the worst pair is the guardrail number.
func ObsOverheadPct(rows []ObsRow) float64 {
	worst := 0.0
	first := true
	for i := 0; i+1 < len(rows); i += 2 {
		base, obsd := rows[i], rows[i+1]
		if base.Observed || !obsd.Observed || base.Leaves != obsd.Leaves || base.TuplesPerSec == 0 {
			continue
		}
		pct := 100 * (1 - obsd.TuplesPerSec/base.TuplesPerSec)
		if first || pct > worst {
			worst, first = pct, false
		}
	}
	return worst
}

// PrintObs writes the observability-overhead table.
func PrintObs(w io.Writer, cfg ObsConfig, rows []ObsRow) {
	cfg = cfg.withDefaults()
	topo := "single server"
	if cfg.Leaves > 0 {
		topo = fmt.Sprintf("single server + coordinator over %d leaves", cfg.Leaves)
	}
	fmt.Fprintf(w, "Observability overhead (%s, %d tuples, batch %d, %d producers, %d workers, %d-span ring)\n",
		topo, cfg.Tuples, cfg.Batch, cfg.Producers, cfg.Workers, cfg.TraceSpans)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "variant\tprocs\ttuples/s\tseconds\tspans\tscrapes\timplications")
	for _, r := range rows {
		name := "baseline"
		if r.Observed {
			name = "traced+scraped"
		}
		if r.Leaves > 0 {
			name = "fleet-" + name
		}
		fmt.Fprintf(tw, "%s\t%d\t%.0f\t%.3f\t%d\t%d\t%.1f\n",
			name, r.Procs, r.TuplesPerSec, r.Seconds, r.Spans, r.Scrapes, r.Implications)
	}
	tw.Flush()
	fmt.Fprintf(w, "overhead (worst pair): %.1f%%\n", ObsOverheadPct(rows))
}

// obsReport is the JSON schema of -json output.
type obsReport struct {
	Tuples      int      `json:"tuples"`
	Batch       int      `json:"batch"`
	Producers   int      `json:"producers"`
	Workers     int      `json:"workers"`
	TraceSpans  int      `json:"trace_spans"`
	Leaves      int      `json:"leaves,omitempty"`
	OverheadPct float64  `json:"overhead_pct"`
	Rows        []ObsRow `json:"rows"`
}

// WriteObsJSON writes the rows as an indented JSON report.
func WriteObsJSON(w io.Writer, cfg ObsConfig, rows []ObsRow) error {
	cfg = cfg.withDefaults()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(obsReport{
		Tuples:      cfg.Tuples,
		Batch:       cfg.Batch,
		Producers:   cfg.Producers,
		Workers:     cfg.Workers,
		TraceSpans:  cfg.TraceSpans,
		Leaves:      cfg.Leaves,
		OverheadPct: ObsOverheadPct(rows),
		Rows:        rows,
	})
}
