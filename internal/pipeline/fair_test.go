package pipeline

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"implicate/internal/obs"
	"implicate/internal/query"
	"implicate/internal/stream"
)

// fairPool builds a pool over an empty engine: batches carry a tuple count
// but no tasks, so Dispatch applies them synchronously in the dispatcher
// goroutine — drain order is exactly dispatch order.
func fairPool(t *testing.T) *Pool {
	t.Helper()
	p, err := New(query.NewEngine(testSchema(t)), Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	return p
}

// planN plans a batch of n empty tuples (cost n, no estimator work).
func planN(p *Pool, n int) *Batch {
	return p.Plan(make([]stream.Tuple, n))
}

// TestFairDRRWeights saturates two lanes with equal-cost batches and
// checks the drained share tracks the 3:1 dispatch weights.
func TestFairDRRWeights(t *testing.T) {
	// Quantum 64 = one batch of credit per weight unit per round; deep
	// backlogged lanes make the credit (not the backlog) the binding
	// constraint, which is where the weights bite.
	f := NewFair(64, 1)
	var a, b atomic.Int64
	counts := map[string]*atomic.Int64{"a": &a, "b": &b}
	var dispatched atomic.Int64
	const observe = 400
	f.afterDispatch = func(l *Lane, _ int) {
		if dispatched.Add(1) <= observe {
			counts[l.Name()].Add(1)
		}
		// Throttle the dispatcher so the blocking producers keep both
		// lanes backlogged — the regime DRR's guarantee speaks to.
		time.Sleep(50 * time.Microsecond)
	}
	la := f.AddLane("a", 3, 32, fairPool(t), nil)
	lb := f.AddLane("b", 1, 32, fairPool(t), nil)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for _, l := range []*Lane{la, lb} {
		wg.Add(1)
		go func(l *Lane) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				l.Enqueue(planN(l.Pool(), 64))
			}
		}(l)
	}
	for dispatched.Load() < observe {
		time.Sleep(time.Millisecond)
	}
	close(stop)
	f.Close()
	wg.Wait()

	got := float64(a.Load()) / float64(b.Load())
	if got < 2.0 || got > 4.5 {
		t.Fatalf("drain ratio a:b = %d:%d = %.2f, want ~3.0", a.Load(), b.Load(), got)
	}
}

// TestFairEqualShareUnderSkewedLoad offers 10:1 load on equal weights: the
// flooding lane must not push the steady lane below ~half the drained
// batches. This is the noisy-neighbor property at the dispatch layer.
func TestFairEqualShareUnderSkewedLoad(t *testing.T) {
	f := NewFair(256, 1)
	var flood, steady atomic.Int64
	counts := map[string]*atomic.Int64{"flood": &flood, "steady": &steady}
	var dispatched atomic.Int64
	const observe = 400
	f.afterDispatch = func(l *Lane, _ int) {
		if dispatched.Add(1) <= observe {
			counts[l.Name()].Add(1)
		}
		time.Sleep(50 * time.Microsecond)
	}
	lf := f.AddLane("flood", 1, 8, fairPool(t), nil)
	ls := f.AddLane("steady", 1, 8, fairPool(t), nil)

	var wg sync.WaitGroup
	stop := make(chan struct{})
	producer := func(l *Lane, conns int) {
		for i := 0; i < conns; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
					}
					l.Enqueue(planN(l.Pool(), 64))
				}
			}()
		}
	}
	producer(lf, 10) // 10× the offered load...
	producer(ls, 1)  // ...but the same dispatch weight.
	for dispatched.Load() < observe {
		time.Sleep(time.Millisecond)
	}
	close(stop)
	f.Close()
	wg.Wait()

	got := float64(steady.Load()) / float64(flood.Load()+steady.Load())
	if got < 0.35 {
		t.Fatalf("steady lane drained share %.2f (%d of %d), want ~0.5 despite 10:1 offered load",
			got, steady.Load(), flood.Load()+steady.Load())
	}
}

// TestFairLaneOrderAndBounds pins the contracts the server depends on:
// per-lane FIFO dispatch order (the bit-identity prerequisite), TryEnqueue
// refusing at capacity, and RemoveLane/Close draining what was admitted.
func TestFairLaneOrderAndBounds(t *testing.T) {
	f := NewFair(0, 1)
	var mu sync.Mutex
	var order []int
	f.afterDispatch = func(_ *Lane, tuples int) {
		mu.Lock()
		order = append(order, tuples)
		mu.Unlock()
	}
	p := fairPool(t)
	l := f.AddLane("t", 1, 1000, p, nil)
	const n = 200
	for i := 1; i <= n; i++ {
		if _, ok := l.Enqueue(planN(p, i)); !ok {
			t.Fatalf("enqueue %d refused", i)
		}
	}
	f.RemoveLane(l)
	mu.Lock()
	if len(order) != n {
		t.Fatalf("dispatched %d batches, want %d", len(order), n)
	}
	for i, tuples := range order {
		if tuples != i+1 {
			t.Fatalf("batch %d dispatched with %d tuples, want %d (FIFO violated)", i, tuples, i+1)
		}
	}
	mu.Unlock()
	if l.HighWater() == 0 {
		t.Fatal("high-water mark never advanced")
	}
	if _, ok := l.Enqueue(planN(p, 1)); ok {
		t.Fatal("removed lane accepted a batch")
	}
	if _, ok := l.TryEnqueue(planN(p, 1)); ok {
		t.Fatal("removed lane accepted a batch")
	}

	// A capacity-1 lane refuses the second TryEnqueue while the dispatcher
	// is held off the first.
	f2 := NewFair(0, 1)
	gate := make(chan struct{})
	f2.afterDispatch = func(*Lane, int) { <-gate }
	l2 := f2.AddLane("t", 1, 1, p, nil)
	if _, ok := l2.TryEnqueue(planN(p, 1)); !ok {
		t.Fatal("first TryEnqueue refused")
	}
	refused := false
	for i := 0; i < 100 && !refused; i++ {
		_, ok := l2.TryEnqueue(planN(p, 1))
		refused = !ok
	}
	close(gate)
	f2.Close()
	if !refused {
		t.Fatal("full lane never refused TryEnqueue")
	}
	if _, ok := l2.TryEnqueue(planN(p, 1)); ok {
		t.Fatal("closed dispatcher accepted a batch")
	}
}

// TestFairAfterHook checks the per-lane after hook runs in the dispatcher
// goroutine after each batch — the periodic-checkpoint seam — by having it
// Fence the lane's pool, which is only legal from the dispatching
// goroutine.
func TestFairAfterHook(t *testing.T) {
	f := NewFair(0, 1)
	p := fairPool(t)
	var fenced atomic.Int64
	l := f.AddLane("t", 1, 16, p, func(_ obs.Link, tuples int, _ time.Time) {
		p.Fence()
		fenced.Add(1)
	})
	for i := 0; i < 10; i++ {
		l.Enqueue(planN(p, 8))
	}
	f.Close()
	if fenced.Load() != 10 {
		t.Fatalf("after hook ran %d times, want 10", fenced.Load())
	}
}
