package dsample

import (
	"strconv"
	"testing"

	"implicate/internal/imps"
)

func feed(s *Sketch, start, n int) {
	for i := start; i < start+n; i++ {
		a := strconv.Itoa(i % 499)
		b := strconv.Itoa((i * 7) % 13)
		if i%499 < 60 {
			b = "solo"
		}
		s.Add(a, b)
	}
}

func TestSamplerMarshalRoundTrip(t *testing.T) {
	cond := imps.Conditions{MaxMultiplicity: 2, MinSupport: 3, TopC: 1, MinTopConfidence: 0.5}
	s, err := New(cond, 64, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	feed(s, 0, 6000)
	if s.Level() == 0 {
		t.Fatal("test stream never raised the sampling level; widen it")
	}

	blob, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalSketch(blob)
	if err != nil {
		t.Fatal(err)
	}
	assertSamplersEqual(t, s, got)

	blob2, err := got.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if string(blob) != string(blob2) {
		t.Fatalf("re-marshalling a restored sampler changed the bytes")
	}

	// Continued streaming must agree: the restored hash admits the same
	// values at the same level, so both evolve identically.
	feed(s, 6000, 3000)
	feed(got, 6000, 3000)
	assertSamplersEqual(t, s, got)
}

func assertSamplersEqual(t *testing.T, want, got *Sketch) {
	t.Helper()
	if got.Tuples() != want.Tuples() {
		t.Fatalf("Tuples: got %d, want %d", got.Tuples(), want.Tuples())
	}
	if got.Level() != want.Level() {
		t.Fatalf("Level: got %d, want %d", got.Level(), want.Level())
	}
	if got.MemEntries() != want.MemEntries() {
		t.Fatalf("MemEntries: got %d, want %d", got.MemEntries(), want.MemEntries())
	}
	pairs := []struct {
		name      string
		got, want float64
	}{
		{"ImplicationCount", got.ImplicationCount(), want.ImplicationCount()},
		{"NonImplicationCount", got.NonImplicationCount(), want.NonImplicationCount()},
		{"SupportedDistinct", got.SupportedDistinct(), want.SupportedDistinct()},
		{"DistinctCount", got.DistinctCount(), want.DistinctCount()},
		{"AvgMultiplicity", got.AvgMultiplicity(), want.AvgMultiplicity()},
	}
	for _, p := range pairs {
		if p.got != p.want {
			t.Fatalf("%s: got %g, want %g", p.name, p.got, p.want)
		}
	}
}

func TestUnmarshalSamplerRejectsTruncation(t *testing.T) {
	cond := imps.Conditions{MaxMultiplicity: 2, MinSupport: 2, TopC: 1, MinTopConfidence: 0.5}
	s, err := New(cond, 32, 3, 11)
	if err != nil {
		t.Fatal(err)
	}
	feed(s, 0, 1000)
	blob, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(blob); n++ {
		if _, err := UnmarshalSketch(blob[:n]); err == nil {
			t.Fatalf("truncation to %d of %d bytes decoded without error", n, len(blob))
		}
	}
}

func TestUnmarshalSamplerRejectsForgedRank(t *testing.T) {
	cond := imps.Conditions{MaxMultiplicity: 2, MinSupport: 2, TopC: 1, MinTopConfidence: 0.5}
	s, err := New(cond, 64, 4, 7)
	if err != nil {
		t.Fatal(err)
	}
	feed(s, 0, 200)
	blob, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	// Bump the seed field, which sits after the magic (6), conditions (24),
	// size (4) and t (4): every stored rank then disagrees with the hash.
	seedOff := 6 + 24 + 4 + 4
	mut := append([]byte(nil), blob...)
	mut[seedOff]++
	if _, err := UnmarshalSketch(mut); err == nil {
		t.Fatal("sampler with mismatched seed/rank pairs decoded without error")
	}
}

var _ imps.ConfigFingerprinter = (*Sketch)(nil)
