// Package obs is the observability layer of the serving subsystem: a
// lock-free ring-buffer event tracer recording spans across the ingest
// pipeline, wire codecs for shipping spans and estimator health reports
// over the Health/Trace RPCs, a Prometheus-text /metrics renderer over the
// telemetry snapshot and health reports, and the impserved admin HTTP
// endpoint that serves them (plus pprof). Everything is stdlib-only: the
// paper's constrained-environment premise extends to the toolchain.
package obs

import (
	"fmt"
	"sort"
	"sync/atomic"
	"time"
)

// SpanKind classifies a traced event.
type SpanKind uint8

// The traced event kinds. Arg's meaning is per-kind (see Span.Arg).
const (
	// SpanPlan is one ingest batch planned into partition buckets on a
	// connection reader.
	SpanPlan SpanKind = iota
	// SpanDispatch is one batch moved from the ingest queue into the
	// pipeline by the dispatcher.
	SpanDispatch
	// SpanApply is one pipeline task (a partition bucket or an exclusive
	// batch) applied to the engine by a worker.
	SpanApply
	// SpanMerge is one remote sketch merged in via SnapshotMerge.
	SpanMerge
	// SpanCheckpoint is one engine checkpoint captured and written.
	SpanCheckpoint
	// SpanRPC is one request frame handled, any type.
	SpanRPC
	numSpanKinds
)

// String names the kind for dumps and dashboards.
func (k SpanKind) String() string {
	switch k {
	case SpanPlan:
		return "plan"
	case SpanDispatch:
		return "dispatch"
	case SpanApply:
		return "apply"
	case SpanMerge:
		return "merge"
	case SpanCheckpoint:
		return "checkpoint"
	case SpanRPC:
		return "rpc"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Span is one recorded event.
type Span struct {
	// Seq is the span's ticket in the tracer's total admission order.
	// Consecutive snapshots overlap by Seq; gaps mean the ring lapped.
	Seq uint64
	// Kind classifies the event.
	Kind SpanKind
	// Arg is the kind-specific attribution: the applying worker's index for
	// SpanApply, the telemetry.RPC code for SpanRPC, the target statement
	// index for SpanMerge, the statement count for SpanCheckpoint, -1 where
	// no attribution applies.
	Arg int32
	// Start is the event's start wall time, Unix nanoseconds.
	Start int64
	// Dur is the event's wall duration in nanoseconds.
	Dur int64
	// Units is the work the event carried: tuples for plan/dispatch,
	// planned pairs or tuples for apply, marshalled sketch bytes for merge,
	// the checkpoint's applied-tuple offset for checkpoint, 0 for RPC spans
	// (their histogram lives in telemetry).
	Units int64
}

// DefaultSpans is the ring capacity a zero TraceSpans configuration gets
// when tracing is enabled: deep enough to hold several seconds of batch
// traffic, small enough (~256 KiB) to be left on in production.
const DefaultSpans = 4096

// Tracer is a fixed-capacity lock-free span ring. Writers never block and
// never allocate: a span takes one atomic ticket and five atomic stores,
// overwriting the oldest span once the ring is full. Readers (Snapshot)
// validate each slot's seqlock-style state word before and after copying
// it, so a concurrently overwritten slot is skipped rather than returned
// torn. A nil *Tracer is valid and records nothing — call sites do not
// branch on whether tracing is enabled.
type Tracer struct {
	slots []slot
	mask  uint64
	next  atomic.Uint64
}

// slot holds one span with every field atomic: a lapped writer and a
// reader may touch a slot concurrently, and the state word tells the
// reader whether what it copied was one coherent span.
type slot struct {
	// state encodes the slot's lifecycle: 0 never written, 2·ticket+1 a
	// writer holding ticket is mid-write, 2·ticket+2 that write completed.
	state atomic.Uint64
	// meta packs kind<<32 | uint32(arg).
	meta  atomic.Uint64
	start atomic.Int64
	dur   atomic.Int64
	units atomic.Int64
}

// NewTracer returns a tracer holding the most recent capacity spans;
// capacity is rounded up to a power of two, minimum 2.
func NewTracer(capacity int) *Tracer {
	n := 2
	for n < capacity {
		n *= 2
	}
	return &Tracer{slots: make([]slot, n), mask: uint64(n - 1)}
}

// Cap returns the ring capacity (0 for a nil tracer).
func (t *Tracer) Cap() int {
	if t == nil {
		return 0
	}
	return len(t.slots)
}

// Recorded returns the number of spans ever recorded (0 for nil).
func (t *Tracer) Recorded() uint64 {
	if t == nil {
		return 0
	}
	return t.next.Load()
}

// Record stores one span, overwriting the oldest when the ring is full.
// Safe for any number of concurrent writers; no-op on a nil tracer.
func (t *Tracer) Record(kind SpanKind, arg int, units int64, start time.Time, dur time.Duration) {
	if t == nil {
		return
	}
	ticket := t.next.Add(1) - 1
	s := &t.slots[ticket&t.mask]
	s.state.Store(2*ticket + 1)
	s.meta.Store(uint64(kind)<<32 | uint64(uint32(int32(arg))))
	s.start.Store(start.UnixNano())
	s.dur.Store(int64(dur))
	s.units.Store(units)
	s.state.Store(2*ticket + 2)
}

// Span (the measuring variant): Record with the duration taken from the
// clock — callers that don't carry their own timing call
// defer tr.Span(kind, arg, units, time.Now()).
func (t *Tracer) Span(kind SpanKind, arg int, units int64, start time.Time) {
	t.Record(kind, arg, units, start, time.Since(start))
}

// Snapshot copies out every coherent span currently in the ring, oldest
// first. Slots being overwritten during the copy are skipped: the snapshot
// is a consistent sample, not a barrier. Nil tracers return nil.
func (t *Tracer) Snapshot() []Span {
	if t == nil {
		return nil
	}
	out := make([]Span, 0, len(t.slots))
	for i := range t.slots {
		s := &t.slots[i]
		st := s.state.Load()
		if st == 0 || st&1 == 1 {
			continue
		}
		sp := Span{
			Seq:   (st - 2) / 2,
			Start: s.start.Load(),
			Dur:   s.dur.Load(),
			Units: s.units.Load(),
		}
		meta := s.meta.Load()
		sp.Kind = SpanKind(meta >> 32)
		sp.Arg = int32(uint32(meta))
		if s.state.Load() != st {
			continue // overwritten mid-copy; the fields may be torn
		}
		out = append(out, sp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}
