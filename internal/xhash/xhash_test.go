package xhash

import (
	"math"
	"strconv"
	"testing"
	"testing/quick"
)

func TestSumDeterministic(t *testing.T) {
	h := New(42)
	if h.Sum("alpha") != h.Sum("alpha") {
		t.Fatal("hash is not deterministic")
	}
	if h.Sum("alpha") == h.Sum("beta") {
		t.Fatal("distinct keys unexpectedly collide")
	}
}

func TestSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 64; i++ {
		k := strconv.Itoa(i)
		if a.Sum(k) == b.Sum(k) {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d/64 keys hash identically under different seeds", same)
	}
}

func TestSumBytesMatchesSum(t *testing.T) {
	f := func(key []byte, seed uint64) bool {
		h := New(seed)
		return h.SumBytes(key) == h.Sum(string(key))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRank(t *testing.T) {
	cases := []struct {
		y    uint64
		want int
	}{
		{0, 63},
		{1, 0},
		{2, 1},
		{3, 0},
		{4, 2},
		{1 << 40, 40},
		{math.MaxUint64, 0},
		{1 << 63, 63},
	}
	for _, tc := range cases {
		if got := Rank(tc.y); got != tc.want {
			t.Errorf("Rank(%d) = %d, want %d", tc.y, got, tc.want)
		}
	}
}

// TestRankDistribution verifies the geometric law of Lemma 1: about half the
// hash values rank 0, a quarter rank 1, and so on.
func TestRankDistribution(t *testing.T) {
	h := New(7)
	const n = 1 << 16
	var counts [64]int
	for i := 0; i < n; i++ {
		counts[Rank(h.SumUint64(uint64(i)))]++
	}
	for r := 0; r < 8; r++ {
		expected := float64(n) / math.Exp2(float64(r+1))
		got := float64(counts[r])
		if got < 0.85*expected || got > 1.15*expected {
			t.Errorf("rank %d: got %v values, expected ≈%v", r, got, expected)
		}
	}
}

func TestMixBijectivitySample(t *testing.T) {
	seen := make(map[uint64]uint64, 1<<12)
	for i := uint64(0); i < 1<<12; i++ {
		m := Mix(i)
		if prev, dup := seen[m]; dup {
			t.Fatalf("Mix collision: Mix(%d) == Mix(%d)", i, prev)
		}
		seen[m] = i
	}
}

func TestNewRouterValidation(t *testing.T) {
	for _, m := range []int{1, 2, 64, 1 << 16} {
		if _, err := NewRouter(m); err != nil {
			t.Errorf("NewRouter(%d): unexpected error %v", m, err)
		}
	}
	for _, m := range []int{0, -4, 3, 63, 1<<16 + 1, 1 << 17} {
		if _, err := NewRouter(m); err == nil {
			t.Errorf("NewRouter(%d): expected error", m)
		}
	}
}

func TestRouterCoversAllBitmaps(t *testing.T) {
	r, err := NewRouter(16)
	if err != nil {
		t.Fatal(err)
	}
	h := New(3)
	hits := make([]int, 16)
	const n = 1 << 14
	for i := 0; i < n; i++ {
		bm, rank := r.Route(h.SumUint64(uint64(i)))
		if bm < 0 || bm >= 16 {
			t.Fatalf("bitmap index %d out of range", bm)
		}
		if rank < 0 || rank > 63 {
			t.Fatalf("rank %d out of range", rank)
		}
		hits[bm]++
	}
	for bm, c := range hits {
		expected := n / 16
		if c < expected*80/100 || c > expected*120/100 {
			t.Errorf("bitmap %d received %d hashes, expected ≈%d", bm, c, expected)
		}
	}
}

// TestRouterRankIndependent checks the rank distribution holds within each
// routed bitmap (the bits spent on routing must not bias the rank).
func TestRouterRankIndependent(t *testing.T) {
	r, _ := NewRouter(8)
	h := New(11)
	const n = 1 << 16
	rank0 := make([]int, 8)
	total := make([]int, 8)
	for i := 0; i < n; i++ {
		bm, rank := r.Route(h.SumUint64(uint64(i)))
		total[bm]++
		if rank == 0 {
			rank0[bm]++
		}
	}
	for bm := range total {
		frac := float64(rank0[bm]) / float64(total[bm])
		if frac < 0.45 || frac > 0.55 {
			t.Errorf("bitmap %d: rank-0 fraction %v, expected ≈0.5", bm, frac)
		}
	}
}
