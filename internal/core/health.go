package core

import (
	"iter"
	"unsafe"

	"implicate/internal/imps"
	"implicate/internal/metrics"
)

// Health reports the sketch's runtime health: bitmap saturation, fringe
// occupancy, memory footprint and the estimator's own relative-error
// assessment. It implements imps.HealthReporter. Like every other reader,
// it is not safe to call concurrently with Add.
func (s *Sketch) Health() imps.HealthReport {
	h := healthOver(s.bitmaps(), len(s.bms))
	h.Tuples = s.tuples
	h.MemEntries = s.entries
	return h
}

// Health reports aggregate health across all shards under a consistent
// snapshot (every shard lock held). Safe for concurrent use.
func (ss *ShardedSketch) Health() imps.HealthReport {
	ss.lockAll()
	defer ss.unlockAll()
	h := healthOver(ss.bitmaps(), ss.opts.Bitmaps)
	for i := range ss.shards {
		h.Tuples += ss.shards[i].sk.tuples
		h.MemEntries += ss.shards[i].sk.entries
	}
	return h
}

// healthOver computes the health observables shared by Sketch and
// ShardedSketch over the m bitmaps yielded by bms. The caller fills Tuples
// and MemEntries (they live outside the bitmaps) and any identity fields.
func healthOver(bms iter.Seq[*bitmap], m int) imps.HealthReport {
	var set, dead int
	var memBytes int64
	for b := range bms {
		memBytes += int64(unsafe.Sizeof(*b))
		for i := 0; i < Levels; i++ {
			if b.value[i] {
				set++
			}
			if b.dead[i] {
				dead++
			}
		}
		for _, c := range b.cells {
			if c == nil {
				continue
			}
			memBytes += int64(unsafe.Sizeof(*c)) + int64(cap(c.items))*int64(unsafe.Sizeof(item{}))
			for j := range c.items {
				memBytes += int64(cap(c.items[j].st.perB)) * int64(unsafe.Sizeof(pairEntry{}))
			}
		}
	}
	fs := fringeStatsOver(bms)
	est := implicationCountOver(bms, m)
	_, hi := implicationIntervalOver(bms, m, 1)
	return imps.HealthReport{
		MemBytes:         memBytes,
		BitmapFill:       float64(set) / float64(m*Levels),
		LeftmostZero:     meanROver(bms, m, (*bitmap).rHashed),
		FringeTracked:    fs.TrackedItemsets,
		FringePairs:      fs.PairCounters,
		FringeTombstones: fs.Tombstones,
		FringeEvictions:  int64(dead),
		FringeWidth:      fs.MaxFringeWidth,
		RelErr:           metrics.IntervalRelErr(est, hi, 1),
	}
}

var _ imps.HealthReporter = (*Sketch)(nil)
var _ imps.HealthReporter = (*ShardedSketch)(nil)
