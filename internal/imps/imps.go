// Package imps holds the shared primitives of the implication-statistics
// framework: the implication conditions of Sismanis & Roussopoulos (ICDE
// 2005, §3.1.1) and the estimator contract every counting algorithm in this
// repository implements (NIPS/CI, the exact hash-table counter, Implication
// Lossy Counting, Distinct Sampling, ...).
package imps

import (
	"errors"
	"fmt"
)

// Conditions are the implication conditions of §3.1.1. An itemset a of A
// implies B, written a → B, when at every point of the stream after its
// support first reaches MinSupport:
//
//  1. it has appeared with at most MaxMultiplicity distinct itemsets of B,
//  2. its support σ(a) is at least MinSupport, and
//  3. its top-c confidence Ψ_c(a,B) = (Σ of the TopC largest σ(a,b)) / σ(a)
//     is at least MinTopConfidence.
//
// Once an itemset that satisfies the support condition fails either of the
// other two it is discarded from the implication count forever (§3.1.1).
type Conditions struct {
	// MaxMultiplicity is K: the maximum number of distinct B-itemsets an
	// implicating A-itemset may appear with.
	MaxMultiplicity int
	// MinSupport is τ: the minimum absolute number of tuples an itemset must
	// appear in before it is considered at all.
	MinSupport int64
	// TopC is c: how many of the largest per-b supports are summed when
	// computing the top-confidence level.
	TopC int
	// MinTopConfidence is ψ ∈ (0,1]: the minimum top-c confidence.
	MinTopConfidence float64
}

// Validate reports whether the conditions are internally consistent.
func (c Conditions) Validate() error {
	switch {
	case c.MaxMultiplicity < 1:
		return fmt.Errorf("imps: MaxMultiplicity must be >= 1, got %d", c.MaxMultiplicity)
	case c.TopC < 1:
		return fmt.Errorf("imps: TopC must be >= 1, got %d", c.TopC)
	case c.TopC > c.MaxMultiplicity:
		return fmt.Errorf("imps: TopC (%d) must not exceed MaxMultiplicity (%d)", c.TopC, c.MaxMultiplicity)
	case c.MinSupport < 1:
		return fmt.Errorf("imps: MinSupport must be >= 1, got %d", c.MinSupport)
	case c.MinTopConfidence <= 0 || c.MinTopConfidence > 1:
		return fmt.Errorf("imps: MinTopConfidence must be in (0,1], got %g", c.MinTopConfidence)
	}
	return nil
}

// String renders the conditions the way the paper writes them.
func (c Conditions) String() string {
	return fmt.Sprintf("K=%d τ=%d ψ%d=%.2f", c.MaxMultiplicity, c.MinSupport, c.TopC, c.MinTopConfidence)
}

// ErrClosed is returned by estimators that reject updates after Close.
var ErrClosed = errors.New("imps: estimator is closed")

// Estimator is the contract shared by all implication-count algorithms.
// Add feeds one (a, b) itemset pair — one stream tuple projected onto the
// A and B attribute sets. Counts may be read at any time.
type Estimator interface {
	// Add observes one tuple whose A-projection encodes to a and whose
	// B-projection encodes to b.
	Add(a, b string)
	// ImplicationCount estimates S: the number of distinct A-itemsets that
	// imply B under the estimator's conditions.
	ImplicationCount() float64
	// NonImplicationCount estimates ~S: the number of distinct A-itemsets
	// that meet the support condition but violate multiplicity or
	// top-confidence.
	NonImplicationCount() float64
	// SupportedDistinct estimates F0^sup(A): the number of distinct
	// A-itemsets meeting the support condition.
	SupportedDistinct() float64
	// Tuples returns the number of tuples observed so far.
	Tuples() int64
	// MemEntries reports the number of counter entries currently held, the
	// measure the paper uses to compare memory footprints.
	MemEntries() int
}

// Pair is one pre-projected tuple: the encoded A- and B-itemsets an Add
// call would receive. Batches of pairs amortize per-tuple call and lock
// overhead on the ingest path.
type Pair struct {
	A, B string
}

// BatchAdder is implemented by estimators that provide an amortized batch
// ingest path. AddBatch must be equivalent to calling Add for each pair in
// order; implementations amortize per-call overhead (and, for concurrent
// estimators, lock traffic) across the batch.
type BatchAdder interface {
	AddBatch(pairs []Pair)
}

// BytesAdder is implemented by estimators that can observe a tuple from
// byte-slice keys without the string conversion allocations of Add. The
// caller may reuse the slices after the call returns.
type BytesAdder interface {
	AddBytes(a, b []byte)
}

// PartitionedAdder is implemented by estimators whose ingest path may be
// split across concurrent workers without changing the resulting state —
// the partition-safe class of DESIGN.md §10. IngestPartition maps an
// encoded A-itemset key to one of n partitions (n a power of two >= 1).
// The contract:
//
//   - every key maps to exactly one partition for a given n, so all tuples
//     of one key land in one partition;
//   - any two ingestion schedules that preserve the relative Add order
//     within each partition leave the estimator in identical (bit-for-bit
//     marshalled) state;
//   - concurrent AddBatch calls are safe whenever no two in-flight calls
//     carry pairs of the same partition.
//
// The implementation must choose partitions compatible with its own
// internal routing: the sharded sketch, for example, partitions on the low
// bits of the A-hash so that all tuples addressed to one bitmap — where
// arrival order determines overflow kills and fringe push-outs — stay in
// one partition.
type PartitionedAdder interface {
	BatchAdder
	// IngestPartition returns the partition in [0, n) that must ingest the
	// tuple whose A-projection encodes to a. n must be a power of two >= 1.
	// The caller may reuse a after the call returns.
	IngestPartition(a []byte, n int) int
}

// StringPartitioner extends PartitionedAdder with string-key routing, so a
// planner already holding the key as a string routes it without a byte
// conversion. IngestPartitionString(a, n) must equal
// IngestPartition([]byte(a), n) for every key.
type StringPartitioner interface {
	IngestPartitionString(a string, n int) int
}

// HashedPair is the hash-once plan IR: one tuple's projected keys together
// with the estimator's own hashes of them, computed exactly once at plan
// time by HashPairKeys. The strings stay because exact backends index by
// key, not by hash; the hashes stay because sketch backends route and rank
// by hash, not by key.
type HashedPair struct {
	A, B   string
	AH, BH uint64
}

// HashedPartitionedAdder is implemented by partition-safe estimators that
// can consume key hashes forwarded from the planner instead of re-hashing.
// The hashes are estimator-specific — each implementation seeds its own
// hash functions — so they must come from the same estimator's HashPairKeys.
// The contract, on top of PartitionedAdder's:
//
//   - AddHashedPairs(pairs) with every pair's AH/BH from HashPairKeys(A, B)
//     leaves the estimator in state bit-identical to AddBatch of the same
//     pairs in the same order;
//   - IngestPartitionHashed(ah, n) with ah from HashPairKeys(a, _) equals
//     IngestPartitionString(a, n) for every key and every power-of-two n,
//     so a hashed and an un-hashed planner bucket identically;
//   - concurrent AddHashedPairs calls are safe under the same
//     distinct-partition condition as AddBatch.
type HashedPartitionedAdder interface {
	PartitionedAdder
	// HashPairKeys computes this estimator's hashes of one projected pair.
	// Implementations that hash only the A key (exact stores) return bh = 0.
	HashPairKeys(a, b string) (ah, bh uint64)
	// IngestPartitionHashed routes a pre-hashed A key to its partition.
	IngestPartitionHashed(ah uint64, n int) int
	// AddHashedPairs ingests pairs whose hashes were forwarded from
	// HashPairKeys. The caller may reuse the slice after the call returns;
	// implementations must copy any key they retain.
	AddHashedPairs(pairs []HashedPair)
}

// MultiplicityAverager is implemented by estimators that can additionally
// report the average multiplicity |φ(a→B)| over the itemsets currently in
// the implication count — the aggregate of Table 2's "Complex Implication"
// row ("average number of destinations that ... are contacted from more
// than ten sources").
type MultiplicityAverager interface {
	// AvgMultiplicity returns the mean number of distinct B-itemsets per
	// implicating A-itemset, or 0 when the count is empty.
	AvgMultiplicity() float64
}

// ConfigFingerprinter is implemented by estimators whose configuration can
// be summarized as a string: two estimators with equal fingerprints run the
// same algorithm with the same accuracy-relevant parameters and are
// interchangeable for answering one query. The query engine combines the
// fingerprint with the backend's identity to decide when two registrations
// may share a single estimator — comparing configurations is what keeps two
// backends built from the same factory with different parameters (which
// share a closure code pointer) from silently aliasing one estimator.
//
// Auto-derived hash seeds are deliberately excluded from fingerprints:
// backends mint a fresh seed per construction, and the seed affects only
// the randomness of an estimate, never which statistic it answers or how
// accurately.
type ConfigFingerprinter interface {
	// ConfigFingerprint returns a string identifying the estimator's type
	// and configuration (not its state).
	ConfigFingerprint() string
}

// TopSum returns the sum of the c largest values in counts. It mutates a
// scratch copy, not counts itself. The per-itemset counter sets the paper's
// algorithms maintain are tiny (at most K+1 entries), so a partial selection
// pass is cheaper than maintaining a heap.
func TopSum(counts []int64, c int) int64 {
	if c <= 0 || len(counts) == 0 {
		return 0
	}
	if c >= len(counts) {
		var sum int64
		for _, v := range counts {
			sum += v
		}
		return sum
	}
	// Partial selection sort of the c largest values; c and len(counts) are
	// both bounded by K+1.
	scratch := make([]int64, len(counts))
	copy(scratch, counts)
	var sum int64
	for i := 0; i < c; i++ {
		max := i
		for j := i + 1; j < len(scratch); j++ {
			if scratch[j] > scratch[max] {
				max = j
			}
		}
		scratch[i], scratch[max] = scratch[max], scratch[i]
		sum += scratch[i]
	}
	return sum
}

// TopConfidence returns Ψ_c — the top-c confidence of an itemset with the
// given per-b supports and total support. It returns 0 when support is 0.
func TopConfidence(perB []int64, c int, support int64) float64 {
	if support <= 0 {
		return 0
	}
	return float64(TopSum(perB, c)) / float64(support)
}
