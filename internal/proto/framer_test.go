package proto

import (
	"bytes"
	"errors"
	"io"
	"testing"
	"time"
)

// TestFrameReaderMatchesReadFrame runs a mixed stream of valid frames
// through both decoders and requires byte-identical results.
func TestFrameReaderMatchesReadFrame(t *testing.T) {
	frames := []Frame{
		{Type: TIngest, ID: 1, Payload: []byte("batch one")},
		{Type: TQuery, ID: 2, Payload: nil},
		{Type: TOK, ID: 3, Payload: bytes.Repeat([]byte{0x5A}, readerBufSize+17)},
		{Type: TBusy, ID: 1<<64 - 1, Payload: []byte{0}},
	}
	var buf bytes.Buffer
	for _, f := range frames {
		if err := WriteFrame(&buf, f); err != nil {
			t.Fatal(err)
		}
	}
	stream := buf.Bytes()

	fr := NewFrameReader(bytes.NewReader(stream))
	rd := bytes.NewReader(stream)
	for i := range frames {
		a, errA := fr.Next()
		// The FrameReader reuses its buffer on the next call; copy before
		// comparing across iterations is unnecessary here because we compare
		// immediately.
		b, errB := ReadFrame(rd)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("frame %d: FrameReader err %v, ReadFrame err %v", i, errA, errB)
		}
		if a.Type != b.Type || a.ID != b.ID || !bytes.Equal(a.Payload, b.Payload) {
			t.Fatalf("frame %d: decoders disagree: %+v vs %+v", i, a, b)
		}
	}
	if _, err := fr.Next(); err != io.EOF {
		t.Fatalf("FrameReader at EOF: %v", err)
	}
	if _, err := ReadFrame(rd); err != io.EOF {
		t.Fatalf("ReadFrame at EOF: %v", err)
	}
}

// FuzzFrameReaderEquivalence feeds arbitrary bytes to both decoders and
// requires the same accept/reject decision, the same decoded frame on
// accept, and the same error classification on reject.
func FuzzFrameReaderEquivalence(f *testing.F) {
	valid, _ := AppendFrame(nil, Frame{Type: TIngest, ID: 42, Payload: []byte("payload")})
	f.Add(valid)
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3})
	trunc := append([]byte(nil), valid[:len(valid)-3]...)
	f.Add(trunc)
	corrupt := append([]byte(nil), valid...)
	corrupt[len(corrupt)-1] ^= 0xFF
	f.Add(corrupt)
	two := append(append([]byte(nil), valid...), valid...)
	f.Add(two)

	f.Fuzz(func(t *testing.T, data []byte) {
		fr := NewFrameReader(bytes.NewReader(data))
		rd := bytes.NewReader(data)
		for {
			a, errA := fr.Next()
			b, errB := ReadFrame(rd)
			if (errA == nil) != (errB == nil) {
				t.Fatalf("decision mismatch: FrameReader %v, ReadFrame %v", errA, errB)
			}
			if errA != nil {
				if (errA == io.EOF) != (errB == io.EOF) {
					t.Fatalf("EOF classification mismatch: %v vs %v", errA, errB)
				}
				if errA != io.EOF &&
					(errors.Is(errA, ErrMalformed) != errors.Is(errB, ErrMalformed)) {
					t.Fatalf("malformed classification mismatch: %v vs %v", errA, errB)
				}
				return
			}
			if a.Type != b.Type || a.ID != b.ID || !bytes.Equal(a.Payload, b.Payload) {
				t.Fatalf("decoded frame mismatch: %+v vs %+v", a, b)
			}
		}
	})
}

// TestRetainPayloadSurvivesNextRead pins the aliasing contract: a payload
// returned by Next is clobbered by the following Next, and RetainPayload is
// the escape hatch that keeps the bytes stable.
func TestRetainPayloadSurvivesNextRead(t *testing.T) {
	var buf bytes.Buffer
	first := bytes.Repeat([]byte{0xAA}, 64)
	second := bytes.Repeat([]byte{0xBB}, 64)
	for _, p := range [][]byte{first, second} {
		if err := WriteFrame(&buf, Frame{Type: TIngest, ID: 1, Payload: p}); err != nil {
			t.Fatal(err)
		}
	}
	fr := NewFrameReader(bytes.NewReader(buf.Bytes()))
	f1, err := fr.Next()
	if err != nil {
		t.Fatal(err)
	}
	alias := f1.Payload
	retained := RetainPayload(f1.Payload)
	if _, err := fr.Next(); err != nil {
		t.Fatal(err)
	}
	// The alias view now shows the second frame's bytes (same backing
	// array); the retained copy still shows the first.
	if !bytes.Equal(alias, second) {
		t.Fatalf("expected the aliased payload to be overwritten by the next read")
	}
	if !bytes.Equal(retained, first) {
		t.Fatalf("retained payload changed under the next read")
	}
	ReleasePayload(retained)
}

// TestFramePathZeroAlloc asserts the steady-state contract directly: zero
// heap allocations per frame for decode (FrameReader) and for the reply
// encodes (AppendFrameFunc and AppendFrameHeader).
func TestFramePathZeroAlloc(t *testing.T) {
	payload := bytes.Repeat([]byte{0xCD}, 1024)
	var stream []byte
	const frames = 8
	for i := 0; i < frames; i++ {
		var err error
		stream, err = AppendFrame(stream, Frame{Type: TIngest, ID: uint64(i), Payload: payload})
		if err != nil {
			t.Fatal(err)
		}
	}
	rd := bytes.NewReader(stream)
	fr := NewFrameReader(rd)
	// Warm the grow-only buffer outside the measured window.
	if _, err := fr.Next(); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(100, func() {
		rd.Seek(0, io.SeekStart)
		for i := 0; i < frames; i++ {
			if _, err := fr.Next(); err != nil {
				t.Fatal(err)
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("FrameReader.Next: %v allocs per %d-frame pass, want 0", allocs, frames)
	}

	scratch := make([]byte, 0, 4096)
	allocs = testing.AllocsPerRun(100, func() {
		scratch = scratch[:0]
		var err error
		scratch, err = AppendFrameFunc(scratch, TOK, 7, IngestAck{Tuples: 1000}.AppendTo)
		if err != nil {
			t.Fatal(err)
		}
		scratch, err = AppendFrameFunc(scratch, TBusy, 8, Busy{RetryAfter: time.Millisecond}.AppendTo)
		if err != nil {
			t.Fatal(err)
		}
		scratch, err = AppendFrameHeader(scratch, TResult, 9, payload)
		if err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("reply encodes: %v allocs per pass, want 0", allocs)
	}
}

// TestAppendFrameHeaderMatchesAppendFrame checks that header + payload
// written separately is byte-identical to the contiguous encode.
func TestAppendFrameHeaderMatchesAppendFrame(t *testing.T) {
	f := Frame{Type: TResult, ID: 77, Payload: []byte("vectored payload")}
	whole, err := AppendFrame(nil, f)
	if err != nil {
		t.Fatal(err)
	}
	hdr, err := AppendFrameHeader(nil, f.Type, f.ID, f.Payload)
	if err != nil {
		t.Fatal(err)
	}
	split := append(hdr, f.Payload...)
	if !bytes.Equal(whole, split) {
		t.Fatalf("split encode differs from contiguous encode\nwhole: %x\nsplit: %x", whole, split)
	}
}

func BenchmarkFrameReaderNext(b *testing.B) {
	payload := bytes.Repeat([]byte{0xEF}, 4096)
	stream, err := AppendFrame(nil, Frame{Type: TIngest, ID: 1, Payload: payload})
	if err != nil {
		b.Fatal(err)
	}
	rd := bytes.NewReader(stream)
	fr := NewFrameReader(rd)
	b.SetBytes(int64(len(stream)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rd.Seek(0, io.SeekStart)
		if _, err := fr.Next(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReadFrame(b *testing.B) {
	payload := bytes.Repeat([]byte{0xEF}, 4096)
	stream, err := AppendFrame(nil, Frame{Type: TIngest, ID: 1, Payload: payload})
	if err != nil {
		b.Fatal(err)
	}
	rd := bytes.NewReader(stream)
	b.SetBytes(int64(len(stream)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rd.Seek(0, io.SeekStart)
		if _, err := ReadFrame(rd); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAppendFrameFunc(b *testing.B) {
	scratch := make([]byte, 0, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		scratch, err = AppendFrameFunc(scratch[:0], TOK, uint64(i), IngestAck{Tuples: 1000}.AppendTo)
		if err != nil {
			b.Fatal(err)
		}
	}
}
