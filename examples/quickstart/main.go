// Quickstart: the paper's running example end to end. It loads the Table 1
// network stream, runs the Table 2 example queries through the query
// engine with the exact backend, and then answers the same one-to-one
// implication with the constrained-memory NIPS/CI sketch.
package main

import (
	"fmt"
	"log"

	"implicate"
	"implicate/internal/stream"
)

func main() {
	schema, err := implicate.NewSchema("Source", "Destination", "Service", "Time")
	if err != nil {
		log.Fatal(err)
	}

	// Table 1 of the paper.
	tuples := []implicate.Tuple{
		{"S1", "D2", "WWW", "Morning"},
		{"S2", "D1", "FTP", "Morning"},
		{"S1", "D3", "WWW", "Morning"},
		{"S2", "D1", "P2P", "Noon"},
		{"S1", "D3", "P2P", "Afternoon"},
		{"S1", "D3", "WWW", "Afternoon"},
		{"S1", "D3", "P2P", "Afternoon"},
		{"S3", "D3", "P2P", "Night"},
	}

	queries := []struct {
		class string
		sql   string
	}{
		{"Distinct Count", `SELECT COUNT(DISTINCT Source) FROM traffic`},
		{"Implication one-to-one", `SELECT COUNT(DISTINCT Destination) FROM traffic
			WHERE Destination IMPLIES Source`},
		{"One-to-one with noise", `SELECT COUNT(DISTINCT Destination) FROM traffic
			WHERE Destination IMPLIES Source WITH CONFIDENCE >= 0.8 TOP 1, MULTIPLICITY <= 5`},
		{"One-to-many (§3.1.2)", `SELECT COUNT(DISTINCT Service) FROM traffic
			WHERE Service IMPLIES Source WITH MULTIPLICITY <= 5, CONFIDENCE >= 0.8 TOP 2`},
		{"Complement Implication", `SELECT COUNT(DISTINCT Source) FROM traffic
			WHERE Source NOT IMPLIES Service`},
		{"Conditional Implication", `SELECT COUNT(DISTINCT Source) FROM traffic
			WHERE Source IMPLIES Destination AND Time = 'Morning'`},
		{"Compound Implication", `SELECT COUNT(DISTINCT Source) FROM traffic
			WHERE Source IMPLIES Destination GROUP BY Service`},
	}

	eng := implicate.NewEngine(schema)
	var stmts []*implicate.Statement
	for _, q := range queries {
		st, err := eng.RegisterSQL(q.sql, implicate.ExactBackend())
		if err != nil {
			log.Fatalf("%s: %v", q.class, err)
		}
		stmts = append(stmts, st)
	}
	if _, err := eng.Consume(stream.NewMemSource(tuples)); err != nil {
		log.Fatal(err)
	}

	fmt.Println("Table 2 example queries over the Table 1 stream (exact):")
	for i, q := range queries {
		fmt.Printf("  %-28s %.0f\n", q.class, stmts[i].Count())
	}

	// The same one-to-one implication with the NIPS/CI sketch: identical
	// API, bounded memory. On a toy stream the sketch tracks everything and
	// matches the exact answer.
	cond := implicate.Conditions{MaxMultiplicity: 1, MinSupport: 1, TopC: 1, MinTopConfidence: 1.0}
	sketch, err := implicate.NewSketch(cond, implicate.Options{Seed: 1})
	if err != nil {
		log.Fatal(err)
	}
	dst := schema.MustProj("Destination")
	src := schema.MustProj("Source")
	for _, t := range tuples {
		sketch.Add(dst.Key(t), src.Key(t))
	}
	fmt.Printf("\nNIPS/CI sketch, destinations implying a single source: %.1f (exact 2)\n",
		sketch.ImplicationCount())
	fmt.Printf("sketch memory: %d counter entries across %d bitmaps\n",
		sketch.MemEntries(), sketch.Options().Bitmaps)
}
