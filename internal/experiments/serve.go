package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"runtime"
	"strings"
	"sync"
	"text/tabwriter"
	"time"

	"implicate/internal/client"
	"implicate/internal/coord"
	"implicate/internal/core"
	"implicate/internal/exact"
	"implicate/internal/gen"
	"implicate/internal/imps"
	"implicate/internal/query"
	"implicate/internal/server"
	"implicate/internal/stream"
	"implicate/internal/tenant"
)

// ServeConfig parametrizes the serving-layer throughput harness: a loopback
// impserved instance ingesting one synthetic stream over the wire protocol
// at several pipeline pool sizes, so the worker fan-out (DESIGN.md §10) is
// measured end to end — decode, plan, dispatch, apply, drain.
type ServeConfig struct {
	// Tuples is the stream length per variant.
	Tuples int
	// Batch is the tuples-per-IngestBatch size.
	Batch int
	// Producers is the number of concurrent client goroutines (one
	// connection each); defaults to 4.
	Producers int
	// Workers lists the pool sizes to run; defaults to 1, 4.
	Workers []int
	// Queue is the server's ingest queue depth in batches; defaults to
	// Producers*Window so the queue never throttles below the pipelining
	// depth. The server runs with BlockOnFull, so a full queue stalls the
	// connection readers rather than refusing batches — a refused-and-
	// resent batch would land after its pipelined successors and break the
	// per-key order the determinism cross-check depends on.
	Queue int
	// Window is the per-producer pipelining window in batches; defaults
	// to 16. One means synchronous (a full round trip per batch).
	Window int
	// Procs lists the GOMAXPROCS values to sweep; defaults to the current
	// setting only.
	Procs []int
	// Transports lists the wire paths to measure: "tcp", "udp". Defaults
	// to both. With Leaves > 0 the sweep is replaced by the "fleet"
	// transport regardless of this setting.
	Transports []string
	// Tenants, when positive, adds a "tenants" row per pool size: the same
	// stream served by one multi-tenant server with N named tenants,
	// producers pinned round-robin to tenants by authenticated sessions.
	// Key-hash producer routing keeps every key inside one tenant, so the
	// sum of the per-tenant counts must equal the single-engine rows' count
	// — the determinism cross-check extends across the tenant boundary.
	Tenants int
	// Leaves, when positive, measures a coordinator fronting that many
	// leaf servers instead of one server: producers feed the coordinator's
	// front-end, which routes and fans batches out over the fleet. The
	// leaves run merge-compatible "nips" sketches (the coordinator's merge
	// fan-in round-trips marshalled sketches, which the exact backend
	// cannot), so fleet rows are not count-comparable with tcp/udp rows and
	// replace them.
	Leaves int
	// DispatchShards is the fair-dispatch shard count per tenant lane
	// (server.Config.DispatchShards); 0 selects 1, the single-dispatcher
	// path.
	DispatchShards int
	// Seed drives the workload generator.
	Seed int64
}

func (c ServeConfig) withDefaults() ServeConfig {
	if c.Tuples == 0 {
		c.Tuples = 500_000
	}
	if c.Batch == 0 {
		c.Batch = 1000
	}
	if c.Producers < 1 {
		c.Producers = 4
	}
	if len(c.Workers) == 0 {
		c.Workers = []int{1, 4}
	}
	if c.Window == 0 {
		c.Window = 16
	}
	if c.Queue < c.Producers*c.Window {
		c.Queue = c.Producers * c.Window
	}
	if len(c.Procs) == 0 {
		c.Procs = []int{runtime.GOMAXPROCS(0)}
	}
	if c.Leaves > 0 {
		c.Transports = []string{"fleet"}
	} else if len(c.Transports) == 0 {
		c.Transports = []string{"tcp", "udp"}
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// serveSQL matches ingestCond, so the serve and ingest harnesses measure
// the same statistic.
const serveSQL = `SELECT COUNT(DISTINCT A) FROM s WHERE A IMPLIES B WITH SUPPORT >= 5, MULTIPLICITY <= 2, CONFIDENCE >= 0.6 TOP 1`

// ServeRow is one pool size's measured end-to-end throughput.
type ServeRow struct {
	// Transport is the wire path measured: "tcp" (pipelined frames),
	// "udp" (datagram lane, acks polled over TCP), "fleet" (coordinator
	// fan-out) or "tenants" (multi-tenant server, authenticated sessions).
	Transport string `json:"transport"`
	// Tenants is the named-tenant count of a "tenants" row; 0 otherwise.
	Tenants int `json:"tenants,omitempty"`
	// Procs is the GOMAXPROCS value the variant ran under.
	Procs int `json:"gomaxprocs"`
	// Workers is the pipeline pool size.
	Workers int `json:"workers"`
	// Producers is the number of concurrent client connections.
	Producers int `json:"producers"`
	// Tuples is the stream length.
	Tuples int `json:"tuples"`
	// Seconds is the wall clock from first send to drained shutdown.
	Seconds float64 `json:"seconds"`
	// TuplesPerSec is Tuples/Seconds.
	TuplesPerSec float64 `json:"tuples_per_sec"`
	// Implications is the final statement count — identical across pool
	// sizes by the determinism invariant, and recorded so a variant that
	// dropped tuples cannot report a flattering throughput.
	Implications float64 `json:"implications"`
	// Rejected counts backpressure replies the producers retried.
	Rejected int64 `json:"rejected"`
	// PoolSaturation counts dispatches that found a worker queue full.
	PoolSaturation int64 `json:"pool_saturation"`
	// AllocsPerOp is heap allocations per ingested batch across the whole
	// loopback process (producers included) — the arena-path health metric
	// the bench gate watches alongside throughput.
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	// BytesPerOp is heap bytes allocated per ingested batch, measured like
	// AllocsPerOp.
	BytesPerOp float64 `json:"bytes_per_op,omitempty"`
}

// allocMeter measures whole-process heap allocation deltas around a bench
// region, reporting them per operation. ReadMemStats stops the world, so
// both reads sit outside the timed region's steady state by a hair — noise
// well under the gate's tolerance.
type allocMeter struct{ m0 runtime.MemStats }

func (a *allocMeter) start() { runtime.ReadMemStats(&a.m0) }

func (a *allocMeter) perOp(ops int) (allocs, bytes float64) {
	var m1 runtime.MemStats
	runtime.ReadMemStats(&m1)
	if ops <= 0 {
		return 0, 0
	}
	return float64(m1.Mallocs-a.m0.Mallocs) / float64(ops),
		float64(m1.TotalAlloc-a.m0.TotalAlloc) / float64(ops)
}

// batchOps counts the batches a run ingests — the "op" of the per-op
// allocation metrics.
func batchOps(payloads [][]encBatch) int {
	ops := 0
	for _, pb := range payloads {
		ops += len(pb)
	}
	return ops
}

// RunServe measures loopback ingest throughput at each configured pool
// size. Every variant sees the same pre-encoded batches; the striped exact
// counter backend is used so the ingest path is partition-safe (fans out
// across workers) and every variant's final count is exact and must agree.
func RunServe(cfg ServeConfig) ([]ServeRow, error) {
	cfg = cfg.withDefaults()

	d, err := gen.NewDatasetOne(gen.DatasetOneConfig{
		CardA: cfg.Tuples / 10,
		Count: cfg.Tuples / 20,
		C:     2,
		Seed:  cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	schema, err := stream.NewSchema("A", "B")
	if err != nil {
		return nil, err
	}
	// Printable keys: the wire schema rejects gen.Key's binary form (it may
	// contain the reserved separator byte).
	tuples := make([]stream.Tuple, 0, cfg.Tuples)
	for _, p := range d.Pairs {
		tuples = append(tuples, stream.Tuple{fmt.Sprintf("a%d", p.A), fmt.Sprintf("b%d", p.B)})
	}
	for len(tuples) < cfg.Tuples {
		tuples = append(tuples, tuples[:min(len(tuples), cfg.Tuples-len(tuples))]...)
	}
	tuples = tuples[:cfg.Tuples]

	// Route tuples to producers by key hash, not by contiguous slice: the
	// exact exclusion rule is order-dependent per key ("failed the condition
	// at any point"), and producer batches interleave differently from run
	// to run. With each key owned by one producer, every key's tuple order
	// is fixed end to end (producer FIFO → dispatcher → partition FIFO), so
	// the final count is interleaving-invariant and must agree across pool
	// sizes — the bench doubles as a determinism check.
	byProducer := make([][]stream.Tuple, cfg.Producers)
	for _, t := range tuples {
		h := uint64(14695981039346656037)
		for i := 0; i < len(t[0]); i++ {
			h = (h ^ uint64(t[0][i])) * 1099511628211
		}
		p := int(h % uint64(cfg.Producers))
		byProducer[p] = append(byProducer[p], t)
	}

	// Pre-encode each producer's batches once, outside every timed region.
	payloads := make([][]encBatch, cfg.Producers)
	for p := range byProducer {
		own := byProducer[p]
		for off := 0; off < len(own); off += cfg.Batch {
			end := min(off+cfg.Batch, len(own))
			enc, err := client.EncodeBatch(schema, own[off:end])
			if err != nil {
				return nil, err
			}
			payloads[p] = append(payloads[p], encBatch{enc, int64(end - off)})
		}
	}

	var rows []ServeRow
	prevProcs := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(prevProcs)
	for _, procs := range cfg.Procs {
		runtime.GOMAXPROCS(procs)
		for _, transport := range cfg.Transports {
			for _, workers := range cfg.Workers {
				row, err := runServeVariant(cfg, schema, payloads, transport, procs, workers)
				if err != nil {
					return nil, err
				}
				rows = append(rows, row)
			}
		}
		if cfg.Tenants > 0 && cfg.Leaves == 0 {
			for _, workers := range cfg.Workers {
				row, err := runServeTenantsVariant(cfg, schema, payloads, procs, workers)
				if err != nil {
					return nil, err
				}
				rows = append(rows, row)
			}
		}
	}
	// Every variant — any pool size, either transport, any GOMAXPROCS —
	// must land on the same exact count: the bench doubles as the
	// determinism check.
	for _, r := range rows[1:] {
		if r.Implications != rows[0].Implications {
			return nil, fmt.Errorf("serve bench: %s/%d-worker count %v != %s/%d-worker count %v — determinism invariant broken",
				r.Transport, r.Workers, r.Implications, rows[0].Transport, rows[0].Workers, rows[0].Implications)
		}
	}
	return rows, nil
}

// encBatch is one pre-encoded IngestBatch payload.
type encBatch struct {
	payload []byte
	n       int64
}

// runServeVariant measures one (transport, workers) point end to end.
func runServeVariant(cfg ServeConfig, schema *stream.Schema, payloads [][]encBatch, transport string, procs, workers int) (ServeRow, error) {
	if transport == "fleet" {
		return runServeFleetVariant(cfg, schema, payloads, procs, workers)
	}
	eng := query.NewEngine(schema)
	st, err := eng.RegisterSQL(serveSQL, func(cond imps.Conditions) (imps.Estimator, error) {
		return exact.NewStriped(cond, 0)
	})
	if err != nil {
		return ServeRow{}, err
	}
	sc := server.Config{
		Addr:           "127.0.0.1:0",
		Schema:         schema,
		Engine:         eng,
		QueueDepth:     cfg.Queue,
		Workers:        workers,
		DispatchShards: cfg.DispatchShards,
		// Blocking backpressure: with pipelined producers, a busy-refused
		// batch would be re-sent behind its successors and reorder the
		// per-key stream the determinism cross-check depends on.
		BlockOnFull: true,
	}
	if transport == "udp" {
		sc.UDPAddr = "127.0.0.1:0"
	}
	srv, err := server.Listen(sc)
	if err != nil {
		return ServeRow{}, err
	}

	var wg sync.WaitGroup
	errs := make(chan error, cfg.Producers)
	var am allocMeter
	am.start()
	start := time.Now()
	for p := 0; p < cfg.Producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			cl, err := client.Dial(srv.Addr(), schema, client.Options{
				Conns:       1,
				BusyRetries: -1,
				RetryBase:   200 * time.Microsecond,
				RetryCap:    5 * time.Millisecond,
			})
			if err != nil {
				errs <- err
				return
			}
			defer cl.Close()
			switch transport {
			case "udp":
				errs <- serveProduceUDP(cl, srv.UDPAddr(), uint64(p+1), payloads[p])
			default:
				errs <- serveProduceTCP(cl, cfg.Window, payloads[p])
			}
		}(p)
	}
	wg.Wait()
	// Graceful close drains every acknowledged batch; the drain is part
	// of the measured time, so a deep queue cannot fake throughput.
	if err := srv.Close(); err != nil {
		return ServeRow{}, err
	}
	dur := time.Since(start)
	allocs, allocBytes := am.perOp(batchOps(payloads))
	close(errs)
	for err := range errs {
		if err != nil {
			return ServeRow{}, err
		}
	}

	sn := srv.Telemetry().Snapshot()
	if sn.TuplesIngested != int64(cfg.Tuples) {
		return ServeRow{}, fmt.Errorf("serve bench: %s %d workers applied %d of %d tuples", transport, workers, sn.TuplesIngested, cfg.Tuples)
	}
	return ServeRow{
		Transport:      transport,
		Procs:          procs,
		Workers:        workers,
		Producers:      cfg.Producers,
		Tuples:         cfg.Tuples,
		Seconds:        dur.Seconds(),
		TuplesPerSec:   float64(cfg.Tuples) / dur.Seconds(),
		Implications:   st.Count(),
		Rejected:       sn.BatchesRejected,
		PoolSaturation: sn.PoolSaturation,
		AllocsPerOp:    allocs,
		BytesPerOp:     allocBytes,
	}, nil
}

// runServeTenantsVariant measures one (tenants, workers) point: one server
// hosting cfg.Tenants namespaced engines, each producer's session pinned to
// tenant p mod N. Because producers own disjoint key sets, partitioning
// producers across tenants partitions keys across tenants, and the sum of
// per-tenant exact counts must equal the single-engine variants' count.
func runServeTenantsVariant(cfg ServeConfig, schema *stream.Schema, payloads [][]encBatch, procs, workers int) (ServeRow, error) {
	striped := func(cond imps.Conditions) (imps.Estimator, error) {
		return exact.NewStriped(cond, 0)
	}
	tcfgs := make([]tenant.Config, cfg.Tenants)
	for i := range tcfgs {
		tcfgs[i] = tenant.Config{
			Name:    fmt.Sprintf("t%d", i),
			Queries: []string{serveSQL},
			Backend: "exact-striped",
		}
	}
	srv, err := server.Listen(server.Config{
		Addr:           "127.0.0.1:0",
		Schema:         schema,
		Engine:         query.NewEngine(schema), // default tenant: present, idle
		QueueDepth:     cfg.Queue,
		Workers:        workers,
		DispatchShards: cfg.DispatchShards,
		BlockOnFull:    true,
		Tenants:        tcfgs,
		Backends:       tenant.Backends{"exact-striped": striped},
	})
	if err != nil {
		return ServeRow{}, err
	}

	var wg sync.WaitGroup
	errs := make(chan error, cfg.Producers)
	var am allocMeter
	am.start()
	start := time.Now()
	for p := 0; p < cfg.Producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			// No token key on the bench server: authentication pins the
			// session, the empty key skips the HMAC check.
			cl, err := client.DialTenant(srv.Addr(), schema, fmt.Sprintf("t%d", p%cfg.Tenants), "", client.Options{
				Conns:       1,
				BusyRetries: -1,
				RetryBase:   200 * time.Microsecond,
				RetryCap:    5 * time.Millisecond,
			})
			if err != nil {
				errs <- err
				return
			}
			defer cl.Close()
			errs <- serveProduceTCP(cl, cfg.Window, payloads[p])
		}(p)
	}
	wg.Wait()
	if err := srv.Close(); err != nil {
		return ServeRow{}, err
	}
	dur := time.Since(start)
	allocs, allocBytes := am.perOp(batchOps(payloads))
	close(errs)
	for err := range errs {
		if err != nil {
			return ServeRow{}, err
		}
	}

	sn := srv.Telemetry().Snapshot()
	if sn.TuplesIngested != int64(cfg.Tuples) {
		return ServeRow{}, fmt.Errorf("serve bench: %d tenants applied %d of %d tuples", cfg.Tenants, sn.TuplesIngested, cfg.Tuples)
	}
	var count float64
	for i := range tcfgs {
		eng, ok := srv.TenantEngine(tcfgs[i].Name)
		if !ok {
			return ServeRow{}, fmt.Errorf("serve bench: tenant %s missing after close", tcfgs[i].Name)
		}
		count += eng.Statements()[0].Count()
	}
	return ServeRow{
		Transport:      "tenants",
		Tenants:        cfg.Tenants,
		Procs:          procs,
		Workers:        workers,
		Producers:      cfg.Producers,
		Tuples:         cfg.Tuples,
		Seconds:        dur.Seconds(),
		TuplesPerSec:   float64(cfg.Tuples) / dur.Seconds(),
		Implications:   count,
		Rejected:       sn.BatchesRejected,
		PoolSaturation: sn.PoolSaturation,
		AllocsPerOp:    allocs,
		BytesPerOp:     allocBytes,
	}, nil
}

// runServeFleetVariant measures one (fleet, workers) point: cfg.Leaves leaf
// servers behind a coordinator front-end, producers feeding the front-end
// exactly as they would a single server. The timed region runs from first
// send through the coordinator's Flush — the fleet-wide quiesce — so
// journal depth cannot fake throughput.
func runServeFleetVariant(cfg ServeConfig, schema *stream.Schema, payloads [][]encBatch, procs, workers int) (ServeRow, error) {
	backend := func(cond imps.Conditions) (imps.Estimator, error) {
		return core.NewSketch(cond, core.Options{Seed: uint64(cfg.Seed)*2 + 1})
	}
	leaves := make([]*server.Server, 0, cfg.Leaves)
	closeLeaves := func() {
		for _, srv := range leaves {
			srv.Close()
		}
	}
	specs := make([]coord.LeafSpec, cfg.Leaves)
	for i := 0; i < cfg.Leaves; i++ {
		eng := query.NewEngine(schema)
		if _, err := eng.RegisterSQL(serveSQL, backend); err != nil {
			closeLeaves()
			return ServeRow{}, err
		}
		srv, err := server.Listen(server.Config{
			Addr:           "127.0.0.1:0",
			Schema:         schema,
			Engine:         eng,
			QueueDepth:     cfg.Queue,
			Workers:        workers,
			DispatchShards: cfg.DispatchShards,
			BlockOnFull:    true,
		})
		if err != nil {
			closeLeaves()
			return ServeRow{}, err
		}
		leaves = append(leaves, srv)
		specs[i] = coord.LeafSpec{Name: fmt.Sprintf("leaf%d", i), Addr: srv.Addr()}
	}
	co, err := coord.New(coord.Config{
		Schema:      schema,
		Statements:  []string{serveSQL},
		Leaves:      specs,
		FlushTuples: cfg.Batch,
	})
	if err != nil {
		closeLeaves()
		return ServeRow{}, err
	}
	fe, err := coord.Serve(co, "127.0.0.1:0")
	if err != nil {
		co.Close()
		closeLeaves()
		return ServeRow{}, err
	}

	var wg sync.WaitGroup
	errs := make(chan error, cfg.Producers)
	var am allocMeter
	am.start()
	start := time.Now()
	for p := 0; p < cfg.Producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			cl, err := client.Dial(fe.Addr(), schema, client.Options{Conns: 1})
			if err != nil {
				errs <- err
				return
			}
			defer cl.Close()
			errs <- serveProduceTCP(cl, cfg.Window, payloads[p])
		}(p)
	}
	wg.Wait()
	flushErr := co.Flush()
	dur := time.Since(start)
	allocs, allocBytes := am.perOp(batchOps(payloads))
	close(errs)
	for err := range errs {
		if err != nil {
			fe.Close()
			co.Close()
			closeLeaves()
			return ServeRow{}, err
		}
	}
	if flushErr != nil {
		fe.Close()
		co.Close()
		closeLeaves()
		return ServeRow{}, flushErr
	}
	q, err := co.Query(0)
	fe.Close()
	co.Close()
	var rejected, saturation int64
	for _, srv := range leaves {
		if cerr := srv.Close(); cerr != nil && err == nil {
			err = cerr
		}
		sn := srv.Telemetry().Snapshot()
		rejected += sn.BatchesRejected
		saturation += sn.PoolSaturation
	}
	if err != nil {
		return ServeRow{}, err
	}
	if q.Tuples != int64(cfg.Tuples) {
		return ServeRow{}, fmt.Errorf("serve bench: fleet of %d applied %d of %d tuples", cfg.Leaves, q.Tuples, cfg.Tuples)
	}
	return ServeRow{
		Transport:      "fleet",
		Procs:          procs,
		Workers:        workers,
		Producers:      cfg.Producers,
		Tuples:         cfg.Tuples,
		Seconds:        dur.Seconds(),
		TuplesPerSec:   float64(cfg.Tuples) / dur.Seconds(),
		Implications:   q.Count,
		Rejected:       rejected,
		PoolSaturation: saturation,
		AllocsPerOp:    allocs,
		BytesPerOp:     allocBytes,
	}, nil
}

// serveProduceTCP streams batches over one pipelined connection, keeping up
// to window batches in flight. The server runs with BlockOnFull, so no
// batch is ever busy-refused and re-sent out of order; a non-zero Rejected
// row would mean that contract broke, not that the producer retried.
func serveProduceTCP(cl *client.Client, window int, batches []encBatch) error {
	pend := make([]*client.PendingIngest, 0, window)
	for _, b := range batches {
		if len(pend) == window {
			if err := pend[0].Wait(); err != nil {
				return err
			}
			copy(pend, pend[1:])
			pend = pend[:len(pend)-1]
		}
		pi, err := cl.IngestAsync(b.payload, b.n)
		if err != nil {
			return err
		}
		pend = append(pend, pi)
	}
	for _, pi := range pend {
		if err := pi.Wait(); err != nil {
			return err
		}
	}
	return nil
}

// serveProduceUDP streams batches over the datagram lane. Per-source
// sequencing makes the apply order loss- and reorder-proof, so the
// determinism cross-check holds on this path by construction.
func serveProduceUDP(cl *client.Client, udpAddr string, source uint64, batches []encBatch) error {
	// A wide window (still inside the server's 256-datagram reorder
	// window) with sparse polls keeps the producer off the synchronous
	// ack round trip; the watermark mops up at Flush.
	ui, err := cl.DialUDP(udpAddr, client.UDPOptions{Source: source, Window: 128, PollEvery: 32})
	if err != nil {
		return err
	}
	defer ui.Close()
	for _, b := range batches {
		if err := ui.Send(b.payload); err != nil {
			return err
		}
	}
	return ui.Flush()
}

// PrintServe writes the serving-layer throughput table.
func PrintServe(w io.Writer, cfg ServeConfig, rows []ServeRow) {
	cfg = cfg.withDefaults()
	fmt.Fprintf(w, "Serving-layer ingest throughput (%d tuples, batch %d, %d producers, window %d)\n",
		cfg.Tuples, cfg.Batch, cfg.Producers, cfg.Window)
	tw := tabwriter.NewWriter(w, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "transport\tprocs\tworkers\ttuples/s\tseconds\trejected\tpool-saturation\tallocs/op\tKiB/op\timplications")
	for _, r := range rows {
		tr := r.Transport
		if r.Tenants > 0 {
			tr = fmt.Sprintf("tenants(%d)", r.Tenants)
		}
		fmt.Fprintf(tw, "%s\t%d\t%d\t%.0f\t%.3f\t%d\t%d\t%.1f\t%.1f\t%.1f\n",
			tr, r.Procs, r.Workers, r.TuplesPerSec, r.Seconds, r.Rejected, r.PoolSaturation, r.AllocsPerOp, r.BytesPerOp/1024, r.Implications)
	}
	tw.Flush()
}

// serveReport is the JSON schema of -json output.
type serveReport struct {
	Tuples    int        `json:"tuples"`
	Batch     int        `json:"batch"`
	Producers int        `json:"producers"`
	Window    int        `json:"window"`
	Rows      []ServeRow `json:"rows"`
}

// WriteServeJSON writes the rows as an indented JSON report.
func WriteServeJSON(w io.Writer, cfg ServeConfig, rows []ServeRow) error {
	cfg = cfg.withDefaults()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(serveReport{
		Tuples:    cfg.Tuples,
		Batch:     cfg.Batch,
		Producers: cfg.Producers,
		Window:    cfg.Window,
		Rows:      rows,
	})
}

// GateServe compares fresh serve rows against a committed baseline report
// and fails on a regression beyond tolerance (a fraction, e.g. 0.25), on
// either axis the bench records: the best tuples/sec per transport must not
// fall below the baseline's floor, and the lowest allocs-per-batch per
// transport must not rise above the baseline's ceiling. The envelope is
// compared, not individual rows — those move with scheduler noise.
// Baselines written before the allocation metrics existed carry zeros
// there, which gate nothing.
func GateServe(baseline io.Reader, rows []ServeRow, tolerance float64) error {
	var base serveReport
	if err := json.NewDecoder(baseline).Decode(&base); err != nil {
		return fmt.Errorf("gate: decoding baseline: %w", err)
	}
	transport := func(r ServeRow) string {
		if r.Transport == "" {
			return "tcp" // pre-transport baseline rows
		}
		return r.Transport
	}
	best := func(rs []ServeRow) map[string]float64 {
		m := make(map[string]float64)
		for _, r := range rs {
			if tr := transport(r); r.TuplesPerSec > m[tr] {
				m[tr] = r.TuplesPerSec
			}
		}
		return m
	}
	// leanest is the envelope on the allocation axis: the lowest non-zero
	// allocs/op per transport (zero means the metric was not recorded).
	leanest := func(rs []ServeRow) map[string]float64 {
		m := make(map[string]float64)
		for _, r := range rs {
			if r.AllocsPerOp <= 0 {
				continue
			}
			tr := transport(r)
			if cur, ok := m[tr]; !ok || r.AllocsPerOp < cur {
				m[tr] = r.AllocsPerOp
			}
		}
		return m
	}
	baseBest, curBest := best(base.Rows), best(rows)
	var failures []string
	for tr, b := range baseBest {
		cur, ok := curBest[tr]
		if !ok {
			continue // baseline transport not re-run; nothing to compare
		}
		floor := b * (1 - tolerance)
		if cur < floor {
			failures = append(failures, fmt.Sprintf("%s: %.0f tuples/s < floor %.0f (baseline %.0f, tolerance %.0f%%)",
				tr, cur, floor, b, tolerance*100))
		}
	}
	baseLean, curLean := leanest(base.Rows), leanest(rows)
	for tr, b := range baseLean {
		cur, ok := curLean[tr]
		if !ok {
			continue // transport not re-run, or metrics absent in this run
		}
		ceiling := b * (1 + tolerance)
		if cur > ceiling {
			failures = append(failures, fmt.Sprintf("%s: %.1f allocs/op > ceiling %.1f (baseline %.1f, tolerance %.0f%%)",
				tr, cur, ceiling, b, tolerance*100))
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("gate: bench regression: %s", strings.Join(failures, "; "))
	}
	return nil
}
