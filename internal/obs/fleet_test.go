package obs

import (
	"fmt"
	"io"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"implicate/internal/imps"
	"implicate/internal/telemetry"
	"implicate/internal/wire"
)

// TestFleetTraceCodecRoundTrip pins the IMPF wire format: node labels and
// full span identity survive, the sniffer tells the two Trace payloads
// apart, and corruption is refused rather than misread.
func TestFleetTraceCodecRoundTrip(t *testing.T) {
	now := time.Now().UnixNano()
	spans := []FleetSpan{
		{Node: "coord", Span: Span{Seq: 1, Kind: SpanDeliver, Arg: 2, Start: now, Dur: 1500, Units: 250, Trace: 0xa1, ID: 0xb1}},
		{Node: "leaf0", Span: Span{Seq: 2, Kind: SpanRPC, Arg: 0, Start: now + 10, Dur: 900, Trace: 0xa1, Parent: 0xb1, ID: 0xc1}},
		{Node: "leaf0", Span: Span{Seq: 3, Kind: SpanApply, Arg: 1, Start: now + 20, Dur: 300, Units: 250, Trace: 0xa1, Parent: 0xb1}},
	}
	enc := EncodeFleetTrace(spans)
	if !IsFleetTrace(enc) {
		t.Fatal("fleet trace not recognized by the sniffer")
	}
	if IsFleetTrace(EncodeSpans(nil)) {
		t.Fatal("single-node dump misread as a fleet trace")
	}
	got, err := DecodeFleetTrace(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(spans) {
		t.Fatalf("decoded %d spans, want %d", len(got), len(spans))
	}
	for i := range spans {
		if got[i] != spans[i] {
			t.Errorf("span %d: %+v, want %+v", i, got[i], spans[i])
		}
	}

	if _, err := DecodeFleetTrace(enc[:len(enc)-1]); err == nil {
		t.Error("truncated fleet trace accepted")
	}
	if _, err := DecodeFleetTrace(append(append([]byte(nil), enc...), 7)); err == nil {
		t.Error("fleet trace with trailing bytes accepted")
	}

	// A span kind from a future build must be refused, exactly like the
	// single-node codec: the append-only kind list is only safe to extend
	// because old decoders refuse what they cannot name.
	e := wire.NewEncoder(96)
	e.Raw([]byte(fleetMagic))
	e.U32(1)
	e.Str("leaf9")
	e.U64(1)
	e.U8(uint8(numSpanKinds))
	e.U32(0)
	e.I64(0)
	e.I64(0)
	e.I64(0)
	e.U64(0)
	e.U64(0)
	e.U64(0)
	if _, err := DecodeFleetTrace(e.Bytes()); err == nil {
		t.Error("unknown span kind accepted")
	}
}

// TestSpanDeliverKind pins the new kind's name and its acceptance by the
// single-node codec (the coordinator's own ring travels through it when a
// plain leaf client asks for a trace).
func TestSpanDeliverKind(t *testing.T) {
	if got := SpanDeliver.String(); got != "deliver" {
		t.Fatalf("SpanDeliver.String() = %q", got)
	}
	enc := EncodeSpans([]Span{{Seq: 1, Kind: SpanDeliver, Arg: 0, Units: 9}})
	got, err := DecodeSpans(enc)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Kind != SpanDeliver {
		t.Fatalf("round trip lost the deliver kind: %+v", got)
	}
}

// TestOrderFleetTrace pins the assembly order: roots by start time, each
// child after its parent, orphans surfacing as roots, and a corrupt parent
// cycle terminating with every span still present.
func TestOrderFleetTrace(t *testing.T) {
	spans := []FleetSpan{
		{Node: "leaf1", Span: Span{Seq: 5, Kind: SpanRPC, Start: 300, Trace: 2, Parent: 20, ID: 21}},
		{Node: "coord", Span: Span{Seq: 2, Kind: SpanDeliver, Start: 200, Trace: 2, ID: 20}},
		{Node: "coord", Span: Span{Seq: 1, Kind: SpanDeliver, Start: 100, Trace: 1, ID: 10}},
		{Node: "leaf0", Span: Span{Seq: 4, Kind: SpanApply, Start: 150, Trace: 1, Parent: 10, ID: 11}},
		{Node: "leaf0", Span: Span{Seq: 3, Kind: SpanPlan, Start: 110, Trace: 1, Parent: 10, ID: 12}},
		// Orphan: its parent span was lapped out of the ring.
		{Node: "leaf2", Span: Span{Seq: 6, Kind: SpanMerge, Start: 50, Trace: 9, Parent: 0xdead, ID: 30}},
	}
	got := OrderFleetTrace(spans)
	if len(got) != len(spans) {
		t.Fatalf("ordered %d spans, want %d", len(got), len(spans))
	}
	var seqs []uint64
	for _, s := range got {
		seqs = append(seqs, s.Seq)
	}
	// Roots by start: orphan(50), trace1 deliver(100), trace2 deliver(200).
	// Children directly after their parent, by start.
	want := []uint64{6, 1, 3, 4, 2, 5}
	for i := range want {
		if seqs[i] != want[i] {
			t.Fatalf("order %v, want %v", seqs, want)
		}
	}

	cycle := []FleetSpan{
		{Node: "a", Span: Span{Seq: 1, Trace: 1, Parent: 2, ID: 1}},
		{Node: "a", Span: Span{Seq: 2, Trace: 1, Parent: 1, ID: 2}},
	}
	if got := OrderFleetTrace(cycle); len(got) != 2 {
		t.Fatalf("cycle dropped spans: %d of 2", len(got))
	}
}

// fakeFleetState is a canned FleetAdminState for rendering tests.
type fakeFleetState struct {
	coord  telemetry.Snapshot
	tel    []LeafTelemetry
	stats  []LeafStatsRow
	health []LeafHealthRow
	trace  []FleetSpan
	parts  int
}

func (f *fakeFleetState) CoordStats() telemetry.Snapshot  { return f.coord }
func (f *fakeFleetState) FleetTelemetry() []LeafTelemetry { return f.tel }
func (f *fakeFleetState) FleetStats() []LeafStatsRow      { return f.stats }
func (f *fakeFleetState) FleetHealth() []LeafHealthRow    { return f.health }
func (f *fakeFleetState) FleetTrace() []FleetSpan         { return f.trace }
func (f *fakeFleetState) VirtualPartitions() int          { return f.parts }

// TestWriteFleetMetricsEscapesLabels: leaf names are operator input and land
// in label values — quotes, backslashes and newlines must escape per the
// exposition format instead of splitting a series line.
func TestWriteFleetMetricsEscapesLabels(t *testing.T) {
	evil := "we\"ird\\leaf\nx"
	var deliver telemetry.Histogram
	deliver.Counts[12] = 3
	st := &fakeFleetState{
		parts: 64,
		tel: []LeafTelemetry{{
			Name: evil, State: "up", Parts: 64,
			JournalEntries: 4, JournalTuples: 400, Delivery: deliver,
		}},
		stats: []LeafStatsRow{{Name: evil, Stats: telemetry.Snapshot{TuplesIngested: 400}}},
		health: []LeafHealthRow{{Name: evil, Reports: []imps.HealthReport{
			{Stmt: 0, Kind: "ni\"ps", RelErr: 0.25},
		}}},
	}
	var b strings.Builder
	if err := WriteFleetMetrics(&b, st); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	escaped := `we\"ird\\leaf\nx`
	for _, want := range []string{
		fmt.Sprintf(`imps_coord_leaf_up{leaf="%s"} 1`, escaped),
		fmt.Sprintf(`imps_coord_leaf_journal_tuples_total{leaf="%s"} 400`, escaped),
		fmt.Sprintf(`imps_coord_leaf_delivery_seconds{leaf="%s",quantile="0.5"}`, escaped),
		fmt.Sprintf(`imps_leaf_tuples_ingested_total{leaf="%s"} 400`, escaped),
		fmt.Sprintf(`imps_leaf_stmt_rel_err{leaf="%s",stmt="0",kind="ni\"ps"} 0.25`, escaped),
		fmt.Sprintf(`imps_leaf_worst_rel_err{leaf="%s"} 0.25`, escaped),
		"imps_coord_virtual_partitions 64",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q\n%s", want, out)
		}
	}
	// No raw quote or newline may survive inside a label value: every line
	// must still parse as `name{labels} value`.
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, evil) {
			t.Errorf("unescaped label value leaked: %q", line)
		}
	}
}

// TestFleetRollupFromOldLeafSnapshot is the cross-version roll-up pin: a
// leaf still running a pre-fleet build answers Stats with its older
// snapshot encoding, and the coordinator's roll-up must decode it and
// render its counters — not refuse the leaf or misattribute fields.
func TestFleetRollupFromOldLeafSnapshot(t *testing.T) {
	// A quiet default-config Set encodes exactly what a PR 7–9 leaf sent
	// (the v3 layout — the newer magics only appear when post-v3 features
	// are armed); DecodeSnapshot is the coordinator's client-side path.
	var old telemetry.Set
	old.AddTuples(1234)
	old.AddBatch()
	old.Observe(telemetry.RPCIngest, 3*time.Millisecond)
	sn, err := telemetry.DecodeSnapshot(old.Snapshot().Encode())
	if err != nil {
		t.Fatal(err)
	}
	st := &fakeFleetState{
		tel:   []LeafTelemetry{{Name: "old-leaf", State: "up"}},
		stats: []LeafStatsRow{{Name: "old-leaf", Stats: sn}},
	}
	var b strings.Builder
	if err := WriteFleetMetrics(&b, st); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		`imps_leaf_tuples_ingested_total{leaf="old-leaf"} 1234`,
		`imps_leaf_batches_total{leaf="old-leaf"} 1`,
		`imps_leaf_ingest_latency_seconds{leaf="old-leaf",quantile="0.5"}`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("roll-up of an old leaf snapshot missing %q\n%s", want, out)
		}
	}

	// The merged /fleet row carries the decoded counters too.
	doc := BuildFleetJSON(st)
	if len(doc.Leaves) != 1 || doc.Leaves[0].TuplesIngested != 1234 {
		t.Fatalf("fleet doc %+v", doc)
	}
}

// TestFleetHealthz pins the summary word a probe keys on and the per-leaf
// detail lines.
func TestFleetHealthz(t *testing.T) {
	get := func(st FleetAdminState) string {
		t.Helper()
		srv := httptest.NewServer(NewFleetAdminMux(st))
		defer srv.Close()
		resp, err := srv.Client().Get(srv.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(body)
	}
	up := LeafTelemetry{Name: "a", State: "up", JournalTuples: 10}
	down := LeafTelemetry{Name: "b", State: "down", Downs: 2, PendingTuples: 7}
	if got := get(&fakeFleetState{tel: []LeafTelemetry{up, {Name: "b", State: "up"}}}); !strings.HasPrefix(got, "ok\n") {
		t.Errorf("all-up healthz = %q", got)
	}
	got := get(&fakeFleetState{tel: []LeafTelemetry{up, down}})
	if !strings.HasPrefix(got, "degraded\n") {
		t.Errorf("partial healthz = %q", got)
	}
	if !strings.Contains(got, "leaf b state=down") || !strings.Contains(got, "pending=7") {
		t.Errorf("healthz lacks per-leaf detail: %q", got)
	}
	if got := get(&fakeFleetState{tel: []LeafTelemetry{{Name: "a", State: "down"}}}); !strings.HasPrefix(got, "down\n") {
		t.Errorf("all-down healthz = %q", got)
	}
}

// TestBuildFleetJSONUnreachableLeaf: a leaf with no Stats/Health answer this
// poll keeps its coordinator-side fields and reports -1 sentinels for the
// leaf-reported ones — the dash imptop renders, not a fake zero.
func TestBuildFleetJSONUnreachableLeaf(t *testing.T) {
	st := &fakeFleetState{
		tel: []LeafTelemetry{{Name: "gone", State: "down", Downs: 1, PendingTuples: 42}},
	}
	doc := BuildFleetJSON(st)
	if len(doc.Leaves) != 1 {
		t.Fatalf("leaves %d", len(doc.Leaves))
	}
	lf := doc.Leaves[0]
	if lf.PendingTuples != 42 || lf.Downs != 1 {
		t.Errorf("coordinator-side fields lost: %+v", lf)
	}
	if lf.TuplesIngested != -1 || lf.QueueHighWater != -1 || lf.WorstRelErr != -1 {
		t.Errorf("unreachable leaf not sentineled: %+v", lf)
	}
}
