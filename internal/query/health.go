package query

import "implicate/internal/imps"

// Health returns the statement's estimator health, stamped with the
// statement's identity (kind, query text, sharing). It acquires the
// statement's lock shared, exactly like Count, so it may run at any time
// against a live pipeline: serialized-class writers hold the lock
// exclusively, and partition-safe estimators take their own shard locks
// inside. Estimators without self-assessment still report their footprint.
func (st *Statement) Health() imps.HealthReport {
	st.estMu.RLock()
	defer st.estMu.RUnlock()
	var h imps.HealthReport
	if hr, ok := st.est.(imps.HealthReporter); ok {
		h = hr.Health()
	} else {
		h = imps.HealthReport{Tuples: st.est.Tuples(), MemEntries: st.est.MemEntries()}
	}
	h.Kind = st.EstimatorKind()
	h.Query = st.query.String()
	h.Shared = st.shared
	return h
}

// HealthReports returns one report per registered statement, in
// registration order, each stamped with its statement index. A shared
// statement's report duplicates its owner's estimator state (marked by
// Shared) so the slice always aligns with Statements().
func (e *Engine) HealthReports() []imps.HealthReport {
	out := make([]imps.HealthReport, len(e.stmts))
	for i, st := range e.stmts {
		out[i] = st.Health()
		out[i].Stmt = i
	}
	return out
}
