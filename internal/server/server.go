// Package server is the network face of the query engine: a TCP server
// speaking internal/proto that feeds an Engine from remote producers and
// answers implication queries, sketch merges and telemetry reads.
//
// Architecture: one accept loop, one reader goroutine per connection, and a
// single ingest worker. Connection readers decode ingest batches (the
// stream package's binary batch codec, so decode cost is paid concurrently
// per connection) and hand them to a bounded queue; the worker applies them
// to the engine in arrival order. When the queue is full the batch is
// refused with an explicit backpressure reply (proto.TBusy) and NOT
// enqueued — the client retries. An acknowledged batch is never dropped:
// graceful shutdown drains the queue before the final checkpoint is
// written.
//
// Durability composes with the network path exactly as with file streams
// (DESIGN.md §8): the server checkpoints its engine every CheckpointEvery
// applied tuples and once more on graceful shutdown. The checkpoint offset
// is the engine's applied-tuple count; a producer recovering a crashed
// server replays its tuple sequence from that offset. Acknowledgements
// confirm enqueueing, not durability — durability is checkpoint + replay.
package server

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"implicate/internal/checkpoint"
	"implicate/internal/core"
	"implicate/internal/imps"
	"implicate/internal/proto"
	"implicate/internal/query"
	"implicate/internal/stream"
	"implicate/internal/telemetry"
)

// drainGrace is how long connection readers may keep serving requests after
// Close is called before their reads are unblocked.
const drainGrace = 200 * time.Millisecond

// Config configures a server. Schema and Engine are required; the engine's
// statements must be registered before Listen, and the engine must not be
// touched by the caller while the server runs (the server owns it until
// Close or Kill returns).
type Config struct {
	// Addr is the TCP listen address, e.g. "127.0.0.1:7171" or ":0".
	Addr string
	// Schema is the stream schema ingest batches must match.
	Schema *stream.Schema
	// Engine answers the queries and receives the tuples.
	Engine *query.Engine
	// QueueDepth bounds the ingest queue in batches; a full queue refuses
	// further batches with backpressure replies. Default 64.
	QueueDepth int
	// MaxBatchTuples bounds one ingest batch; larger batches are rejected
	// as errors. Default 65536.
	MaxBatchTuples int
	// CheckpointPath, when non-empty, makes the worker write engine
	// checkpoints there — every CheckpointEvery applied tuples and once on
	// graceful Close.
	CheckpointPath string
	// CheckpointEvery is the applied-tuple interval between periodic
	// checkpoints; zero checkpoints only on Close.
	CheckpointEvery int64
	// RetryAfter is the delay hint carried in backpressure replies.
	// Default 20ms.
	RetryAfter time.Duration
	// Logf, when non-nil, receives diagnostic messages (failed periodic
	// checkpoints, dropped connections).
	Logf func(format string, args ...any)

	// gate, when non-nil, is called by the ingest worker before each batch
	// is applied — a test hook for making queue states deterministic.
	gate func()
}

func (c Config) withDefaults() Config {
	if c.QueueDepth == 0 {
		c.QueueDepth = 64
	}
	if c.MaxBatchTuples == 0 {
		c.MaxBatchTuples = 1 << 16
	}
	if c.RetryAfter == 0 {
		c.RetryAfter = 20 * time.Millisecond
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Server is a running ingest/query server. Create with Listen.
type Server struct {
	cfg   Config
	ln    net.Listener
	stmts []*query.Statement
	tel   *telemetry.Set

	// mu serializes every engine access: batch application by the worker,
	// query reads, merges, and checkpoint captures.
	mu sync.Mutex

	queue      chan []stream.Tuple
	periodic   checkpoint.Periodic
	workerDone chan struct{}

	connMu sync.Mutex
	conns  map[net.Conn]struct{}
	connWG sync.WaitGroup

	draining  atomic.Bool
	killed    atomic.Bool
	closeOnce sync.Once
	closeErr  error
}

// Listen starts a server on cfg.Addr and begins serving.
func Listen(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.Schema == nil {
		return nil, fmt.Errorf("server: nil schema")
	}
	if cfg.Engine == nil {
		return nil, fmt.Errorf("server: nil engine")
	}
	if cfg.QueueDepth < 1 {
		return nil, fmt.Errorf("server: queue depth %d must be >= 1", cfg.QueueDepth)
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	s := &Server{
		cfg:        cfg,
		ln:         ln,
		stmts:      cfg.Engine.Statements(),
		tel:        &telemetry.Set{},
		queue:      make(chan []stream.Tuple, cfg.QueueDepth),
		workerDone: make(chan struct{}),
		conns:      make(map[net.Conn]struct{}),
	}
	s.periodic = checkpoint.Periodic{Path: cfg.CheckpointPath, Every: cfg.CheckpointEvery}
	if cfg.CheckpointPath == "" {
		s.periodic.Every = 0
	}
	s.periodic.SkipTo(cfg.Engine.Tuples())
	go s.acceptLoop()
	go s.worker()
	return s, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Telemetry exposes the live counter set.
func (s *Server) Telemetry() *telemetry.Set { return s.tel }

// Engine returns the served engine. It must only be used after Close or
// Kill has returned — while the server runs, the engine is its alone.
func (s *Server) Engine() *query.Engine { return s.cfg.Engine }

func (s *Server) acceptLoop() {
	for {
		c, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.connMu.Lock()
		if s.draining.Load() {
			s.connMu.Unlock()
			c.Close()
			continue
		}
		s.conns[c] = struct{}{}
		s.connWG.Add(1)
		s.connMu.Unlock()
		go s.serveConn(c)
	}
}

func (s *Server) dropConn(c net.Conn) {
	s.connMu.Lock()
	delete(s.conns, c)
	s.connMu.Unlock()
	c.Close()
}

func (s *Server) serveConn(c net.Conn) {
	defer s.connWG.Done()
	defer s.dropConn(c)
	for {
		f, err := proto.ReadFrame(c)
		if err != nil {
			if err != io.EOF && !s.draining.Load() {
				s.cfg.Logf("server: dropping %s: %v", c.RemoteAddr(), err)
			}
			return
		}
		resp := s.handle(f)
		if err := proto.WriteFrame(c, resp); err != nil {
			if !s.draining.Load() {
				s.cfg.Logf("server: write to %s: %v", c.RemoteAddr(), err)
			}
			return
		}
	}
}

// handle dispatches one request frame and builds the response frame.
func (s *Server) handle(f proto.Frame) proto.Frame {
	start := time.Now()
	var resp proto.Frame
	var rpc telemetry.RPC
	switch f.Type {
	case proto.TIngest:
		rpc, resp = telemetry.RPCIngest, s.handleIngest(f)
	case proto.TQuery:
		rpc, resp = telemetry.RPCQuery, s.handleQuery(f)
	case proto.TMerge:
		rpc, resp = telemetry.RPCMerge, s.handleMerge(f)
	case proto.TStats:
		rpc, resp = telemetry.RPCStats, s.handleStats(f)
	default:
		return errorFrame(f.ID, fmt.Sprintf("unsupported request type %s", f.Type))
	}
	s.tel.Observe(rpc, time.Since(start))
	return resp
}

func errorFrame(id uint64, msg string) proto.Frame {
	return proto.Frame{Type: proto.TError, ID: id, Payload: proto.EncodeError(msg)}
}

// decodeBatch parses an ingest payload — a complete binary stream (header
// included) — validating the schema and the batch size.
func (s *Server) decodeBatch(payload []byte) ([]stream.Tuple, error) {
	br, err := stream.NewBinaryReader(bytes.NewReader(payload))
	if err != nil {
		return nil, err
	}
	got := br.Schema().Names()
	want := s.cfg.Schema.Names()
	if len(got) != len(want) {
		return nil, fmt.Errorf("batch schema has %d attributes, server schema has %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			return nil, fmt.Errorf("batch schema attribute %d is %q, server schema has %q", i, got[i], want[i])
		}
	}
	var tuples []stream.Tuple
	buf := make([]stream.Tuple, 256)
	for {
		n, err := br.NextBatch(buf)
		for i := 0; i < n; i++ {
			// NextBatch reuses the slot backing arrays; the queue outlives
			// this call, so each tuple gets its own slice (the field strings
			// are already freshly allocated per batch).
			tuples = append(tuples, append(stream.Tuple(nil), buf[i]...))
		}
		if len(tuples) > s.cfg.MaxBatchTuples {
			return nil, fmt.Errorf("batch exceeds %d tuples", s.cfg.MaxBatchTuples)
		}
		if err == io.EOF {
			return tuples, nil
		}
		if err != nil {
			return nil, err
		}
	}
}

func (s *Server) handleIngest(f proto.Frame) proto.Frame {
	tuples, err := s.decodeBatch(f.Payload)
	if err != nil {
		return errorFrame(f.ID, fmt.Sprintf("ingest: %v", err))
	}
	if s.draining.Load() {
		return errorFrame(f.ID, "ingest: server is shutting down")
	}
	select {
	case s.queue <- tuples:
		s.tel.AddBatch()
		s.tel.ObserveQueueDepth(len(s.queue))
		return proto.Frame{Type: proto.TOK, ID: f.ID, Payload: proto.IngestAck{Tuples: int64(len(tuples))}.Encode()}
	default:
		s.tel.AddRejectedBatch()
		return proto.Frame{Type: proto.TBusy, ID: f.ID, Payload: proto.Busy{RetryAfter: s.cfg.RetryAfter}.Encode()}
	}
}

func (s *Server) handleQuery(f proto.Frame) proto.Frame {
	req, err := proto.DecodeQueryReq(f.Payload)
	if err != nil {
		return errorFrame(f.ID, err.Error())
	}
	if int(req.Stmt) >= len(s.stmts) {
		return errorFrame(f.ID, fmt.Sprintf("query: no statement %d (server has %d)", req.Stmt, len(s.stmts)))
	}
	s.mu.Lock()
	res := proto.QueryResult{Count: s.stmts[req.Stmt].Count(), Tuples: s.cfg.Engine.Tuples()}
	s.mu.Unlock()
	return proto.Frame{Type: proto.TResult, ID: f.ID, Payload: res.Encode()}
}

func (s *Server) handleMerge(f proto.Frame) proto.Frame {
	req, err := proto.DecodeMergeReq(f.Payload)
	if err != nil {
		return errorFrame(f.ID, err.Error())
	}
	if int(req.Stmt) >= len(s.stmts) {
		return errorFrame(f.ID, fmt.Sprintf("merge: no statement %d (server has %d)", req.Stmt, len(s.stmts)))
	}
	st := s.stmts[req.Stmt]
	if st.Shared() {
		return errorFrame(f.ID, fmt.Sprintf("merge: statement %d reads a shared estimator; merge into its owner", req.Stmt))
	}
	dst, ok := st.Estimator().(*core.Sketch)
	if !ok {
		return errorFrame(f.ID, fmt.Sprintf("merge: statement %d estimator (%s) does not support merging", req.Stmt, kindOf(st)))
	}
	src, err := core.UnmarshalSketch(req.Sketch)
	if err != nil {
		return errorFrame(f.ID, fmt.Sprintf("merge: %v", err))
	}
	s.mu.Lock()
	err = dst.Merge(src)
	s.mu.Unlock()
	if err != nil {
		return errorFrame(f.ID, fmt.Sprintf("merge: %v", err))
	}
	s.tel.AddMerge()
	return proto.Frame{Type: proto.TOK, ID: f.ID}
}

func kindOf(st *query.Statement) string {
	if k := st.EstimatorKind(); k != "" {
		return k
	}
	return fmt.Sprintf("%T", st.Estimator())
}

func (s *Server) handleStats(f proto.Frame) proto.Frame {
	return proto.Frame{Type: proto.TResult, ID: f.ID, Payload: s.tel.Snapshot().Encode()}
}

// worker applies queued batches to the engine in arrival order and drives
// periodic checkpoints. It exits when the queue is closed and drained.
func (s *Server) worker() {
	defer close(s.workerDone)
	for tuples := range s.queue {
		if s.cfg.gate != nil {
			s.cfg.gate()
		}
		s.mu.Lock()
		s.cfg.Engine.ProcessBatch(tuples)
		// Captured under mu: a concurrent merge mutating an estimator while
		// it marshals would tear the snapshot.
		_, err := s.periodic.Maybe(s.cfg.Engine, s.cfg.Engine.Tuples())
		s.mu.Unlock()
		s.tel.AddTuples(int64(len(tuples)))
		if err != nil {
			s.cfg.Logf("server: periodic checkpoint: %v", err)
		}
	}
}

// shutdown runs the shared teardown: stop accepting, unblock connection
// readers, drain or abandon the queue.
func (s *Server) shutdown(grace time.Duration) {
	s.draining.Store(true)
	s.ln.Close()
	s.connMu.Lock()
	deadline := time.Now().Add(grace)
	for c := range s.conns {
		c.SetReadDeadline(deadline)
	}
	s.connMu.Unlock()
	s.connWG.Wait()
	close(s.queue)
	<-s.workerDone
}

// Close shuts the server down gracefully: the listener closes, connection
// readers finish their in-flight requests (within a short grace window),
// the ingest queue is drained through the engine, and — when checkpointing
// is configured — a final checkpoint is written. Every batch acknowledged
// before Close is applied before the final checkpoint.
func (s *Server) Close() error {
	s.closeOnce.Do(func() {
		s.shutdown(drainGrace)
		if s.cfg.CheckpointPath != "" {
			snap, err := checkpoint.Capture(s.cfg.Engine, s.cfg.Engine.Tuples())
			if err == nil {
				err = checkpoint.Write(s.cfg.CheckpointPath, snap)
			}
			s.closeErr = err
		}
	})
	return s.closeErr
}

// Kill tears the server down abruptly — connections are cut mid-request and
// no final checkpoint is written, simulating a crash. Only previously
// written periodic checkpoints survive; the engine must be considered lost.
func (s *Server) Kill() {
	s.closeOnce.Do(func() {
		s.killed.Store(true)
		s.draining.Store(true)
		s.ln.Close()
		s.connMu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.connMu.Unlock()
		s.connWG.Wait()
		close(s.queue)
		<-s.workerDone
	})
}

var _ imps.Estimator = (*core.Sketch)(nil) // the merge path's contract
