package lossy

import (
	"fmt"
	"math/rand"
	"testing"

	"implicate/internal/imps"
)

func TestNewCounterValidation(t *testing.T) {
	for _, eps := range []float64{0, -0.1, 1, 1.5} {
		if _, err := NewCounter(eps); err == nil {
			t.Errorf("eps=%g accepted", eps)
		}
	}
	if _, err := NewCounter(0.01); err != nil {
		t.Fatal(err)
	}
}

// TestLossyCountingGuarantee checks the two Manku–Motwani guarantees on a
// skewed stream: no item with true frequency >= s·N is missed, and every
// reported item has true frequency >= (s−ε)·N.
func TestLossyCountingGuarantee(t *testing.T) {
	const eps, s = 0.005, 0.02
	c := MustCounter(eps)
	rng := rand.New(rand.NewSource(42))
	truth := map[string]int64{}
	var n int64
	// Zipf-ish stream over 2000 items.
	zipf := rand.NewZipf(rng, 1.3, 1.0, 1999)
	for i := 0; i < 200000; i++ {
		item := fmt.Sprintf("i%d", zipf.Uint64())
		truth[item]++
		n++
		c.Add(item)
	}
	if c.N() != n {
		t.Fatalf("N = %d, want %d", c.N(), n)
	}
	reported := map[string]bool{}
	for _, item := range c.Frequent(s) {
		reported[item] = true
		if float64(truth[item]) < (s-eps)*float64(n) {
			t.Errorf("false positive %s: true count %d < (s-eps)N = %.0f", item, truth[item], (s-eps)*float64(n))
		}
	}
	for item, cnt := range truth {
		if float64(cnt) >= s*float64(n) && !reported[item] {
			t.Errorf("missed frequent item %s with count %d >= sN = %.0f", item, cnt, s*float64(n))
		}
	}
}

// TestLossyCountUndercountBound checks count undercounts by at most ε·N.
func TestLossyCountUndercountBound(t *testing.T) {
	const eps = 0.01
	c := MustCounter(eps)
	var n int64
	for i := 0; i < 50000; i++ {
		item := fmt.Sprintf("i%d", i%500)
		c.Add(item)
		n++
	}
	trueCount := int64(50000 / 500)
	got := c.Count("i42")
	if got > trueCount {
		t.Fatalf("overcount: %d > %d", got, trueCount)
	}
	if float64(trueCount-got) > eps*float64(n) {
		t.Fatalf("undercount %d exceeds εN = %.0f", trueCount-got, eps*float64(n))
	}
}

// TestLossyMemoryLogBound checks the 1/ε·log(εN) space bound empirically.
func TestLossyMemoryLogBound(t *testing.T) {
	const eps = 0.01
	c := MustCounter(eps)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 100000; i++ {
		c.Add(fmt.Sprintf("i%d", rng.Intn(50000)))
	}
	// 1/ε·log(εN) = 100·log(1000) ≈ 690.
	if c.Entries() > 1400 {
		t.Fatalf("entries %d exceed twice the theoretical bound", c.Entries())
	}
}

func TestILCValidation(t *testing.T) {
	cond := imps.Conditions{MaxMultiplicity: 2, MinSupport: 1, TopC: 1, MinTopConfidence: 0.8}
	if _, err := NewILC(imps.Conditions{}, 0.1, 0.01); err == nil {
		t.Error("zero conditions accepted")
	}
	if _, err := NewILC(cond, 0.001, 0.01); err == nil {
		t.Error("relSupport < eps accepted")
	}
	if _, err := NewILC(cond, 0.1, 0); err == nil {
		t.Error("eps=0 accepted")
	}
	if _, err := NewILC(cond, 0.1, 0.01); err != nil {
		t.Fatal(err)
	}
}

// TestILCIdentifiesImplications: on a stream where a few heavy itemsets
// imply and a few heavy itemsets violate, ILC must find exactly the heavy
// implicating ones (its design goal).
func TestILCIdentifiesImplications(t *testing.T) {
	cond := imps.Conditions{MaxMultiplicity: 1, MinSupport: 1, TopC: 1, MinTopConfidence: 0.9}
	ilc := MustILC(cond, 0.05, 0.01)
	rng := rand.New(rand.NewSource(3))
	// 10000 tuples: heavy implicators H0,H1 (each ~20% of the stream, one
	// partner), heavy violator V (20%, two alternating partners), the rest
	// light noise below the relative support.
	for i := 0; i < 10000; i++ {
		switch r := rng.Float64(); {
		case r < 0.2:
			ilc.Add("H0", "p0")
		case r < 0.4:
			ilc.Add("H1", "p1")
		case r < 0.6:
			ilc.Add("V", fmt.Sprintf("v%d", i%2))
		default:
			ilc.Add(fmt.Sprintf("light%d", rng.Intn(3000)), "x")
		}
	}
	got := ilc.Implicating()
	if len(got) != 2 || got[0] != "H0" || got[1] != "H1" {
		t.Fatalf("Implicating = %v, want [H0 H1]", got)
	}
	if ilc.ImplicationCount() != 2 {
		t.Fatalf("ImplicationCount = %v", ilc.ImplicationCount())
	}
	if ilc.NonImplicationCount() < 1 {
		t.Fatalf("violator not marked dirty")
	}
}

// TestILCLosesSmallImplications demonstrates §5.1.1: implications whose
// support is individually below the relative threshold are invisible to ILC
// although their cumulative count dominates, while NIPS-style absolute
// support would count them all.
func TestILCLosesSmallImplications(t *testing.T) {
	cond := imps.Conditions{MaxMultiplicity: 1, MinSupport: 5, TopC: 1, MinTopConfidence: 0.9}
	ilc := MustILC(cond, 0.01, 0.01)
	// 2000 itemsets, each with 10 tuples and a unique partner: all 2000
	// imply under the absolute conditions, but each holds only 10/20000 =
	// 0.05% of the stream, far below the 1% relative support.
	for i := 0; i < 2000; i++ {
		for k := 0; k < 10; k++ {
			ilc.Add(fmt.Sprintf("a%d", i), fmt.Sprintf("b%d", i))
		}
	}
	if got := ilc.ImplicationCount(); got > 100 {
		t.Fatalf("ILC unexpectedly counted %v of the small implications", got)
	}
}

// TestILCDirtyEntriesPinned demonstrates the memory issue of §5.1.1: dirty
// entries are never pruned.
func TestILCDirtyEntriesPinned(t *testing.T) {
	cond := imps.Conditions{MaxMultiplicity: 1, MinSupport: 1, TopC: 1, MinTopConfidence: 0.99}
	ilc := MustILC(cond, 0.02, 0.02)
	// Phase 1: 500 distinct violators, each heavy enough (supp 2 within one
	// bucket of width 50, alternating partners) to be marked dirty.
	for i := 0; i < 500; i++ {
		a := fmt.Sprintf("v%d", i)
		ilc.Add(a, "x")
		ilc.Add(a, "y")
	}
	dirtyBefore := ilc.NonImplicationCount()
	if dirtyBefore < 400 {
		t.Fatalf("only %v violators marked dirty", dirtyBefore)
	}
	// Phase 2: a long unrelated stream; ordinary entries churn, dirty ones
	// must survive every pruning pass.
	for i := 0; i < 20000; i++ {
		ilc.Add(fmt.Sprintf("z%d", i), "w")
	}
	if got := ilc.NonImplicationCount(); got != dirtyBefore {
		t.Fatalf("dirty entries pruned: %v -> %v", dirtyBefore, got)
	}
	if ilc.MemEntries() < int(dirtyBefore) {
		t.Fatalf("MemEntries %d below pinned dirty count %v", ilc.MemEntries(), dirtyBefore)
	}
}

func TestStickyValidation(t *testing.T) {
	if _, err := NewSticky(0.01, 0.1, 0.1, 1); err == nil {
		t.Error("s < eps accepted")
	}
	if _, err := NewSticky(0.1, 0.01, 0, 1); err == nil {
		t.Error("delta=0 accepted")
	}
	if _, err := NewSticky(0.1, 0.01, 0.1, 1); err != nil {
		t.Fatal(err)
	}
}

// TestStickyFindsHeavyHitters checks the basic guarantee on a skewed stream.
func TestStickyFindsHeavyHitters(t *testing.T) {
	const s, eps, delta = 0.05, 0.01, 0.01
	st := MustSticky(s, eps, delta, 11)
	truth := map[string]int64{}
	var n int64
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 100000; i++ {
		var item string
		switch r := rng.Float64(); {
		case r < 0.3:
			item = "hot1"
		case r < 0.5:
			item = "hot2"
		default:
			item = fmt.Sprintf("cold%d", rng.Intn(10000))
		}
		truth[item]++
		n++
		st.Add(item)
	}
	reported := map[string]bool{}
	for _, it := range st.Frequent(s) {
		reported[it] = true
	}
	if !reported["hot1"] || !reported["hot2"] {
		t.Fatalf("missed heavy hitters: %v", st.Frequent(s))
	}
	for it := range reported {
		if float64(truth[it]) < (s-2*eps)*float64(n) {
			t.Errorf("false positive %s (count %d)", it, truth[it])
		}
	}
	// Memory stays around 2/ε·log(1/(sδ)) regardless of stream length.
	if st.Entries() > 4000 {
		t.Fatalf("entries %d far above the expected bound", st.Entries())
	}
}

// TestImplicationStickySmoke exercises the implication extension end to end.
func TestImplicationStickySmoke(t *testing.T) {
	cond := imps.Conditions{MaxMultiplicity: 1, MinSupport: 1, TopC: 1, MinTopConfidence: 0.9}
	iss, err := NewImplicationSticky(cond, 0.05, 0.01, 0.01, 13)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 20000; i++ {
		switch r := rng.Float64(); {
		case r < 0.3:
			iss.Add("H", "p")
		case r < 0.5:
			iss.Add("V", fmt.Sprintf("q%d", i%2))
		default:
			iss.Add(fmt.Sprintf("c%d", rng.Intn(5000)), "x")
		}
	}
	if got := iss.ImplicationCount(); got != 1 {
		t.Fatalf("ImplicationCount = %v, want 1 (H)", got)
	}
	if iss.NonImplicationCount() < 1 {
		t.Fatal("violator V not marked dirty")
	}
	if iss.Tuples() != 20000 {
		t.Fatalf("Tuples = %d", iss.Tuples())
	}
	if iss.MemEntries() <= 0 {
		t.Fatal("MemEntries not positive")
	}
	if iss.SupportedDistinct() < 2 {
		t.Fatalf("SupportedDistinct = %v", iss.SupportedDistinct())
	}
}

func TestILCAccessors(t *testing.T) {
	cond := imps.Conditions{MaxMultiplicity: 2, MinSupport: 1, TopC: 1, MinTopConfidence: 0.6}
	ilc := MustILC(cond, 0.05, 0.01)
	for i := 0; i < 2000; i++ {
		switch {
		case i%3 == 0:
			ilc.Add("H", "p")
		case i%3 == 1:
			ilc.Add("G", "q")
		default:
			ilc.Add("V", fmt.Sprintf("v%d", i%9))
		}
	}
	if ilc.Tuples() != 2000 {
		t.Fatalf("Tuples = %d", ilc.Tuples())
	}
	if got := ilc.SupportedDistinct(); got < 2 || got > 3 {
		t.Fatalf("SupportedDistinct = %v", got)
	}
	if got := ilc.AvgMultiplicity(); got != 1 {
		t.Fatalf("AvgMultiplicity = %v, want 1 (H and G each have one partner)", got)
	}
	empty := MustILC(cond, 0.05, 0.01)
	if empty.AvgMultiplicity() != 0 {
		t.Fatal("empty ILC average not zero")
	}
}

func TestStickyAccessors(t *testing.T) {
	st := MustSticky(0.1, 0.01, 0.1, 2)
	for i := 0; i < 500; i++ {
		st.Add("hot")
	}
	if st.N() != 500 {
		t.Fatalf("N = %d", st.N())
	}
	if st.Count("hot") == 0 {
		t.Fatal("hot item not tracked")
	}
	if st.Count("cold") != 0 {
		t.Fatal("phantom count")
	}
}

func TestLossyCountAbsent(t *testing.T) {
	c := MustCounter(0.1)
	if c.Count("nope") != 0 {
		t.Fatal("phantom count for absent item")
	}
	c.Add("x")
	if c.Count("x") != 1 {
		t.Fatalf("Count(x) = %d", c.Count("x"))
	}
}

func TestImplicationStickyValidation(t *testing.T) {
	cond := imps.Conditions{MaxMultiplicity: 1, MinSupport: 1, TopC: 1, MinTopConfidence: 0.9}
	if _, err := NewImplicationSticky(imps.Conditions{}, 0.1, 0.01, 0.1, 1); err == nil {
		t.Error("zero conditions accepted")
	}
	if _, err := NewImplicationSticky(cond, 0.001, 0.01, 0.1, 1); err == nil {
		t.Error("relSupport < eps accepted")
	}
}
