package implicate_test

import (
	"fmt"
	"math"
	"testing"

	"implicate"
	"implicate/internal/stream"
)

// Example-style integration test: the public API end to end on the paper's
// running example.
func TestPublicAPIEndToEnd(t *testing.T) {
	schema, err := implicate.NewSchema("Source", "Destination", "Service", "Time")
	if err != nil {
		t.Fatal(err)
	}
	eng := implicate.NewEngine(schema)
	st, err := eng.RegisterSQL(`
		SELECT COUNT(DISTINCT Destination) FROM traffic
		WHERE Destination IMPLIES Source`, implicate.ExactBackend())
	if err != nil {
		t.Fatal(err)
	}
	sk, err := eng.RegisterSQL(`
		SELECT COUNT(DISTINCT Destination) FROM traffic
		WHERE Destination IMPLIES Source`, implicate.SketchBackend(implicate.Options{Seed: 1}))
	if err != nil {
		t.Fatal(err)
	}
	tuples := []implicate.Tuple{
		{"S1", "D2", "WWW", "Morning"},
		{"S2", "D1", "FTP", "Morning"},
		{"S1", "D3", "WWW", "Morning"},
		{"S2", "D1", "P2P", "Noon"},
		{"S1", "D3", "P2P", "Afternoon"},
		{"S1", "D3", "WWW", "Afternoon"},
		{"S1", "D3", "P2P", "Afternoon"},
		{"S3", "D3", "P2P", "Night"},
	}
	if _, err := eng.Consume(stream.NewMemSource(tuples)); err != nil {
		t.Fatal(err)
	}
	if got := st.Count(); got != 2 {
		t.Fatalf("exact count = %v, want 2", got)
	}
	if got := sk.Count(); got < 1 || got > 4 {
		t.Fatalf("sketch count = %v, want ≈2", got)
	}
}

func TestPublicConstructors(t *testing.T) {
	cond := implicate.Conditions{MaxMultiplicity: 2, MinSupport: 3, TopC: 1, MinTopConfidence: 0.8}
	if _, err := implicate.NewSketch(cond, implicate.Options{}); err != nil {
		t.Errorf("NewSketch: %v", err)
	}
	if _, err := implicate.NewExact(cond); err != nil {
		t.Errorf("NewExact: %v", err)
	}
	if _, err := implicate.NewILC(cond, 0.05, 0.01); err != nil {
		t.Errorf("NewILC: %v", err)
	}
	if _, err := implicate.NewDistinctSampling(cond, 1920, 39, 1); err != nil {
		t.Errorf("NewDistinctSampling: %v", err)
	}
	if _, err := implicate.ParseQuery(`SELECT COUNT(DISTINCT a) FROM s`); err != nil {
		t.Errorf("ParseQuery: %v", err)
	}
}

func TestPublicIncrementalAndSliding(t *testing.T) {
	cond := implicate.Conditions{MaxMultiplicity: 1, MinSupport: 2, TopC: 1, MinTopConfidence: 1}
	ex, _ := implicate.NewExact(cond)
	inc := implicate.NewIncremental(ex)
	for i := 0; i < 20; i++ {
		k := fmt.Sprintf("a%d", i)
		inc.Add(k, "b")
		inc.Add(k, "b")
	}
	m := inc.Snapshot("t1")
	for i := 20; i < 25; i++ {
		k := fmt.Sprintf("a%d", i)
		inc.Add(k, "b")
		inc.Add(k, "b")
	}
	if got := inc.Since(m); got != 5 {
		t.Fatalf("incremental = %v, want 5", got)
	}

	sl, err := implicate.NewSliding(100, 20, func() implicate.Estimator {
		e, _ := implicate.NewExact(cond)
		return e
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		sl.Add(fmt.Sprintf("x%d", i/2), "y")
	}
	if got := sl.ImplicationCount(); math.Abs(got-50) > 15 {
		t.Fatalf("sliding count = %v, want ≈50", got)
	}
}
