package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"implicate"
	"implicate/internal/telemetry"
)

// queryList collects repeated -q flags so one server can register several
// statements (their registration order is their Query RPC statement id).
type queryList []string

func (q *queryList) String() string { return strings.Join(*q, "; ") }

func (q *queryList) Set(v string) error {
	*q = append(*q, v)
	return nil
}

// config carries the parsed command line.
type config struct {
	addr      string
	udp       string
	udpWindow int
	schema    string
	queries   queryList
	backend   string
	seed      uint64
	ilcEps    float64
	dsSize    int
	dsBound   int
	queue     int
	workers   int
	shards    int

	checkpoint string
	every      int64
	resume     string

	tenants  string
	tokenKey string
	ckptDir  string

	admin      string
	traceSpans int
}

func parseFlags(args []string) (*config, []string, error) {
	fs := flag.NewFlagSet("impserved", flag.ContinueOnError)
	cfg := &config{}
	fs.StringVar(&cfg.addr, "addr", ":7171", "TCP listen address")
	fs.StringVar(&cfg.udp, "udp", "", "UDP ingest lane listen address (at-most-once datagram batches); empty: off")
	fs.IntVar(&cfg.udpWindow, "udp-window", 256, "UDP lane per-source reorder window in sequence numbers (with -udp)")
	fs.StringVar(&cfg.schema, "schema", "", "comma-separated stream attribute names (required)")
	fs.Var(&cfg.queries, "q", "implication query to serve (repeatable; required unless -resume)")
	fs.StringVar(&cfg.backend, "backend", "nips", "estimator backend: nips, sharded, exact, exact-striped, ilc, ds")
	fs.Uint64Var(&cfg.seed, "seed", 1, "sketch seed")
	fs.Float64Var(&cfg.ilcEps, "ilc-eps", 0.01, "ILC approximation parameter (and relative support)")
	fs.IntVar(&cfg.dsSize, "ds-size", 1920, "Distinct Sampling entry budget")
	fs.IntVar(&cfg.dsBound, "ds-bound", 39, "Distinct Sampling per-value bound")
	fs.IntVar(&cfg.queue, "queue", 64, "ingest queue depth in batches (full queue => backpressure)")
	fs.IntVar(&cfg.workers, "workers", 0, "pipeline worker pool size (0: GOMAXPROCS); results are identical at any size")
	fs.IntVar(&cfg.shards, "dispatch-shards", 0, "fair-dispatch shards per tenant lane (0: 1, the single-dispatcher path); results are identical at any count")
	fs.StringVar(&cfg.checkpoint, "checkpoint", "", "write crash-recovery checkpoints to this file")
	fs.Int64Var(&cfg.every, "every", 0, "checkpoint every N applied tuples (with -checkpoint; 0: only on shutdown)")
	fs.StringVar(&cfg.resume, "resume", "", "restore engine state from this checkpoint file")
	fs.StringVar(&cfg.tenants, "tenants", "", "comma-separated named tenants to serve, each NAME[:WEIGHT] (all share -q and -backend); empty: single-tenant")
	fs.StringVar(&cfg.tokenKey, "token-key", "", "HMAC key signing tenant connect tokens (with -tenants); empty: tokens not checked")
	fs.StringVar(&cfg.ckptDir, "ckpt-dir", "", "directory for per-tenant checkpoint files <dir>/<tenant>.ckpt (with -tenants)")
	fs.StringVar(&cfg.admin, "admin", "", "HTTP admin listen address (/metrics, /healthz, /trace, pprof); empty: off. Unauthenticated — bind to loopback")
	fs.IntVar(&cfg.traceSpans, "trace-spans", 0, "event-tracer ring capacity in spans (4096 is conventional); 0: tracing off")
	if err := fs.Parse(args); err != nil {
		return nil, nil, err
	}
	return cfg, fs.Args(), nil
}

// validate rejects flag combinations that would otherwise fail late or be
// silently ignored.
func (cfg *config) validate() error {
	if cfg.schema == "" {
		return fmt.Errorf("missing -schema (comma-separated attribute names)")
	}
	if cfg.every < 0 {
		return fmt.Errorf("-every must be >= 0, got %d", cfg.every)
	}
	if cfg.every > 0 && cfg.checkpoint == "" {
		return fmt.Errorf("-every %d has no effect without -checkpoint; add -checkpoint FILE or drop -every", cfg.every)
	}
	if cfg.queue < 1 {
		return fmt.Errorf("-queue must be >= 1, got %d", cfg.queue)
	}
	// A window below 1 would wrap negative through the lane's uint64
	// conversion and disable the reorder bound entirely; refuse it here the
	// same way the server config does.
	if cfg.udp != "" && cfg.udpWindow < 1 {
		return fmt.Errorf("-udp-window must be >= 1, got %d", cfg.udpWindow)
	}
	if cfg.workers < 0 {
		return fmt.Errorf("-workers must be >= 0, got %d", cfg.workers)
	}
	if cfg.shards < 0 {
		return fmt.Errorf("-dispatch-shards must be >= 0, got %d", cfg.shards)
	}
	if cfg.traceSpans < 0 {
		return fmt.Errorf("-trace-spans must be >= 0, got %d", cfg.traceSpans)
	}
	if cfg.tenants == "" {
		if cfg.tokenKey != "" {
			return fmt.Errorf("-token-key has no effect without -tenants")
		}
		if cfg.ckptDir != "" {
			return fmt.Errorf("-ckpt-dir has no effect without -tenants")
		}
	} else {
		if cfg.resume != "" {
			return fmt.Errorf("-tenants cannot be combined with -resume; named tenants resume from -ckpt-dir")
		}
		if _, err := parseTenants(cfg); err != nil {
			return err
		}
	}
	if cfg.resume != "" {
		if len(cfg.queries) > 0 {
			return fmt.Errorf("-resume restores the queries from the checkpoint; drop -q")
		}
		if _, err := os.Stat(cfg.resume); err != nil {
			return fmt.Errorf("cannot resume: %w", err)
		}
	} else if len(cfg.queries) == 0 {
		return fmt.Errorf("missing -q query (or -resume CHECKPOINT)")
	}
	return nil
}

// parseTenants expands -tenants: comma-separated NAME[:WEIGHT] specs, each
// tenant serving the shared -q statements on the shared -backend. Richer
// per-tenant shapes (own queries, quotas, budgets) arrive at runtime via
// the admin endpoint's POST /tenants.
func parseTenants(cfg *config) ([]implicate.TenantConfig, error) {
	var out []implicate.TenantConfig
	for _, spec := range strings.Split(cfg.tenants, ",") {
		spec = strings.TrimSpace(spec)
		if spec == "" {
			continue
		}
		name, weight := spec, 0
		if i := strings.IndexByte(spec, ':'); i >= 0 {
			w, err := strconv.Atoi(spec[i+1:])
			if err != nil || w < 1 {
				return nil, fmt.Errorf("-tenants: bad weight in %q (want NAME[:WEIGHT])", spec)
			}
			name, weight = spec[:i], w
		}
		out = append(out, implicate.TenantConfig{
			Name:    name,
			Queries: cfg.queries,
			Backend: cfg.backend,
			Weight:  weight,
		})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-tenants: no tenant names in %q", cfg.tenants)
	}
	return out, nil
}

// backendsFor builds the named backend factories the command line selects.
func backendsFor(cfg *config) map[string]implicate.Backend {
	return map[string]implicate.Backend{
		"nips":          implicate.SketchBackend(implicate.Options{Seed: cfg.seed}),
		"sharded":       implicate.ShardedSketchBackend(implicate.Options{Seed: cfg.seed}, 0),
		"exact":         implicate.ExactBackend(),
		"exact-striped": implicate.StripedExactBackend(0),
		"ilc": func(cond implicate.Conditions) (implicate.Estimator, error) {
			return implicate.NewILC(cond, cfg.ilcEps, cfg.ilcEps)
		},
		"ds": func(cond implicate.Conditions) (implicate.Estimator, error) {
			return implicate.NewDistinctSampling(cond, cfg.dsSize, cfg.dsBound, cfg.seed+7)
		},
	}
}

// buildEngine constructs the engine to serve — fresh from -q, or restored
// from -resume.
func buildEngine(cfg *config, schema *implicate.Schema) (*implicate.Engine, error) {
	factories := backendsFor(cfg)
	if cfg.resume != "" {
		snap, err := implicate.ReadCheckpoint(cfg.resume)
		if err != nil {
			return nil, err
		}
		resolve := func(q implicate.Query, kind string) (implicate.Backend, error) {
			b, ok := factories[kind]
			if !ok {
				return nil, fmt.Errorf("checkpoint needs a %q backend, which impserved cannot build", kind)
			}
			return b, nil
		}
		return implicate.RestoreCheckpoint(snap, schema, resolve)
	}
	backend, ok := factories[cfg.backend]
	if !ok {
		return nil, fmt.Errorf("unknown backend %q", cfg.backend)
	}
	eng := implicate.NewEngine(schema)
	for _, sql := range cfg.queries {
		if _, err := eng.RegisterSQL(sql, backend); err != nil {
			return nil, err
		}
	}
	return eng, nil
}

// addrs carries the bound listen addresses serve reports on ready.
type addrs struct {
	server string
	udp    string // empty when -udp is off
	admin  string // empty when -admin is off
}

// serve runs the server until stop closes, then drains it and prints the
// telemetry summary to out. The bound addresses are sent on ready. With
// -trace-spans, SIGQUIT dumps the span ring to stderr instead of killing
// the process with stack traces (Go's default SIGQUIT behavior).
func serve(cfg *config, ready chan<- addrs, stop <-chan struct{}, out io.Writer) error {
	names := strings.Split(cfg.schema, ",")
	for i := range names {
		names[i] = strings.TrimSpace(names[i])
	}
	schema, err := implicate.NewSchema(names...)
	if err != nil {
		return err
	}
	eng, err := buildEngine(cfg, schema)
	if err != nil {
		return err
	}
	var tenants []implicate.TenantConfig
	if cfg.tenants != "" {
		if tenants, err = parseTenants(cfg); err != nil {
			return err
		}
	}
	srv, err := implicate.Serve(implicate.ServerConfig{
		Addr:            cfg.addr,
		UDPAddr:         cfg.udp,
		UDPWindow:       cfg.udpWindow,
		Schema:          schema,
		Engine:          eng,
		QueueDepth:      cfg.queue,
		Workers:         cfg.workers,
		DispatchShards:  cfg.shards,
		CheckpointPath:  cfg.checkpoint,
		CheckpointEvery: cfg.every,
		TraceSpans:      cfg.traceSpans,
		TokenKey:        []byte(cfg.tokenKey),
		Tenants:         tenants,
		Backends:        implicate.TenantBackends(backendsFor(cfg)),
		CheckpointDir:   cfg.ckptDir,
	})
	if err != nil {
		return err
	}
	if cfg.tokenKey != "" {
		// Connect tokens are derived, not stored; print them once so the
		// operator can hand them to producers. The key itself never leaves
		// the flag.
		for _, tc := range tenants {
			fmt.Fprintf(out, "tenant %s token %s\n", tc.Name, implicate.TenantToken([]byte(cfg.tokenKey), tc.Name))
		}
	}
	var admin *implicate.AdminServer
	if cfg.admin != "" {
		admin, err = implicate.ServeAdmin(cfg.admin, srv)
		if err != nil {
			srv.Close()
			return err
		}
	}
	if cfg.traceSpans > 0 {
		// Registering SIGQUIT suppresses Go's die-with-stacks default for
		// it only while tracing is on; SIGABRT still produces stacks.
		quit := make(chan os.Signal, 1)
		signal.Notify(quit, syscall.SIGQUIT)
		defer signal.Stop(quit)
		go func() {
			for range quit {
				dumpTrace(os.Stderr, srv.Tracer().Snapshot())
			}
		}()
	}
	ready <- addrs{server: srv.Addr(), udp: srv.UDPAddr(), admin: adminAddr(admin)}
	<-stop
	if err := srv.Close(); err != nil {
		return err
	}
	if admin != nil {
		admin.Close()
	}
	printSummary(out, eng, srv.Telemetry().Snapshot())
	return nil
}

func adminAddr(a *implicate.AdminServer) string {
	if a == nil {
		return ""
	}
	return a.Addr
}

// dumpTrace renders a span dump as text, one span per line, newest last.
func dumpTrace(w io.Writer, spans []implicate.TraceSpan) {
	fmt.Fprintf(w, "--- trace: %d spans ---\n", len(spans))
	for _, sp := range spans {
		fmt.Fprintf(w, "%8d %-10s arg=%-4d units=%-8d %s +%v\n",
			sp.Seq, sp.Kind, sp.Arg, sp.Units,
			time.Unix(0, sp.Start).UTC().Format("15:04:05.000000"),
			time.Duration(sp.Dur).Round(time.Microsecond))
	}
}

// printSummary renders the shutdown report: per-statement answers, then
// the telemetry counters.
func printSummary(out io.Writer, eng *implicate.Engine, sn implicate.ServerStats) {
	for i, st := range eng.Statements() {
		fmt.Fprintf(out, "stmt %d: %s = %.1f\n", i, st.Query().String(), st.Count())
	}
	fmt.Fprintf(out, "tuples=%d batches=%d rejected=%d merges=%d queue-high-water=%d\n",
		sn.TuplesIngested, sn.Batches, sn.BatchesRejected, sn.Merges, sn.QueueHighWater)
	if sn.UDPDatagrams > 0 || sn.UDPDups > 0 || sn.UDPDrops > 0 {
		fmt.Fprintf(out, "udp: datagrams=%d dups=%d drops=%d\n", sn.UDPDatagrams, sn.UDPDups, sn.UDPDrops)
	}
	if len(sn.Workers) > 0 {
		fmt.Fprintf(out, "pool: %d workers, %d saturated dispatches\n", len(sn.Workers), sn.PoolSaturation)
		for w, ws := range sn.Workers {
			fmt.Fprintf(out, "  worker %d: tasks=%d units=%d\n", w, ws.Tasks, ws.Units)
		}
	}
	ing := sn.Latency[telemetry.RPCIngest]
	if ing.Count() > 0 {
		fmt.Fprintf(out, "ingest latency p50=%v p99=%v (%d observations)\n",
			ing.Quantile(0.50).Round(time.Microsecond), ing.Quantile(0.99).Round(time.Microsecond), ing.Count())
	}
}
