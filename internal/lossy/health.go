package lossy

import (
	"unsafe"

	"implicate/internal/imps"
)

// mapEntryOverhead approximates the Go map bookkeeping attributable to one
// entry beyond its key bytes and value payload. Health reports are
// estimates, not heap measurements.
const mapEntryOverhead = 48

// Health reports ILC's runtime footprint. ILC has no bounded structure to
// report saturation on — the absence of a fill fraction is the point: its
// memory grows with the stream (§5.1.1, dirty entries are pinned forever).
// RelErr carries the lossy-counting deficit bound ε: a tracked count trails
// its true count by at most ε·N, the knob that governs how wrong the
// support test can be. Not safe for concurrent use.
func (c *ILC) Health() imps.HealthReport {
	var bytes int64
	for a, ae := range c.as {
		bytes += int64(len(a)) + mapEntryOverhead + int64(unsafe.Sizeof(*ae))
	}
	for a, pm := range c.pairs {
		bytes += int64(len(a)) + mapEntryOverhead
		for b, pe := range pm {
			bytes += int64(len(b)) + mapEntryOverhead + int64(unsafe.Sizeof(*pe))
		}
	}
	return imps.HealthReport{
		Tuples:     c.n,
		MemEntries: c.MemEntries(),
		MemBytes:   bytes,
		RelErr:     c.eps,
	}
}

var _ imps.HealthReporter = (*ILC)(nil)
