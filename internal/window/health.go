package window

import "implicate/internal/imps"

// Health reports the sliding vector's aggregate health: the saturation and
// error fields come from the windowed estimator (the one queries read), the
// footprint fields sum over every live slot — the vector pays for all of
// them, not just the one being read. Not safe for concurrent use (the
// engine's statement lock serializes it against Add).
func (s *Sliding) Health() imps.HealthReport {
	var h imps.HealthReport
	if hr, ok := s.window().(imps.HealthReporter); ok {
		h = hr.Health()
	}
	h.Tuples = s.n
	h.MemEntries = 0
	h.MemBytes = 0
	for _, sl := range s.slots {
		h.MemEntries += sl.est.MemEntries()
		if hr, ok := sl.est.(imps.HealthReporter); ok {
			h.MemBytes += hr.Health().MemBytes
		}
	}
	return h
}

var _ imps.HealthReporter = (*Sliding)(nil)
