// Package server is the network face of the query engine: a TCP server
// speaking internal/proto that feeds an Engine from remote producers and
// answers implication queries, sketch merges and telemetry reads.
//
// Architecture: one accept loop, one reader and one writer goroutine per
// connection, one dispatcher, and a pipeline worker pool
// (internal/pipeline). Connection readers decode AND plan ingest batches —
// filters, projections and partition hashing run concurrently per
// connection — and hand the planned batches to a bounded queue; the
// dispatcher feeds them to the pool in arrival order, which is all the
// ordering the engine's estimators need for bit-identical-to-serial
// results (DESIGN.md §10). Replies flow through the per-connection writer,
// which coalesces pending acks into vectored writes (conn.go). When the
// queue is full the batch is refused with an explicit backpressure reply
// (proto.TBusy) and NOT enqueued — the client retries. (Pipelined
// producers that need strict per-connection ordering set
// Config.BlockOnFull instead: the reader then blocks for queue room, so
// no batch is ever refused and re-sent out of order.) An acknowledged
// batch is never dropped: graceful shutdown drains the queue through the
// pool before the final checkpoint is written.
//
// An optional UDP ingest lane (udp.go, Config.UDPAddr) accepts
// sequence-numbered datagram batches for fire-and-forget producers, with
// cumulative acknowledgement polls over TCP; see internal/proto's udp.go
// for the lane's exact semantics.
//
// Reads never stall ingestion: Query and Stats answer under a read lock
// (plus the per-statement read locks of query.Statement.Count), while
// workers keep applying batches; only merges and checkpoint captures take
// the server's write lock, and captures first fence the pool so no task is
// in flight.
//
// Durability composes with the network path exactly as with file streams
// (DESIGN.md §8): the server checkpoints its engine every CheckpointEvery
// applied tuples and once more on graceful shutdown. The checkpoint offset
// is the engine's applied-tuple count; a producer recovering a crashed
// server replays its tuple sequence from that offset. Acknowledgements
// confirm enqueueing, not durability — durability is checkpoint + replay.
package server

import (
	"bytes"
	"fmt"
	"io"
	"net"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"implicate/internal/checkpoint"
	"implicate/internal/core"
	"implicate/internal/imps"
	"implicate/internal/obs"
	"implicate/internal/pipeline"
	"implicate/internal/proto"
	"implicate/internal/query"
	"implicate/internal/stream"
	"implicate/internal/telemetry"
)

// drainGrace is how long connection readers may keep serving requests after
// Close is called before their reads are unblocked.
const drainGrace = 200 * time.Millisecond

// Config configures a server. Schema and Engine are required; the engine's
// statements must be registered before Listen, and the engine must not be
// touched by the caller while the server runs (the server owns it until
// Close or Kill returns).
type Config struct {
	// Addr is the TCP listen address, e.g. "127.0.0.1:7171" or ":0".
	Addr string
	// Schema is the stream schema ingest batches must match.
	Schema *stream.Schema
	// Engine answers the queries and receives the tuples.
	Engine *query.Engine
	// QueueDepth bounds the ingest queue in batches; a full queue refuses
	// further batches with backpressure replies. Default 64.
	QueueDepth int
	// Workers is the pipeline worker pool size batches are fanned out to.
	// Zero selects GOMAXPROCS. Whatever the pool size, results are
	// bit-identical to a single-worker run.
	Workers int
	// MaxBatchTuples bounds one ingest batch; larger batches are rejected
	// as errors. Default 65536.
	MaxBatchTuples int
	// CheckpointPath, when non-empty, makes the worker write engine
	// checkpoints there — every CheckpointEvery applied tuples and once on
	// graceful Close.
	CheckpointPath string
	// CheckpointEvery is the applied-tuple interval between periodic
	// checkpoints; zero checkpoints only on Close.
	CheckpointEvery int64
	// RetryAfter is the delay hint carried in backpressure replies.
	// Default 20ms.
	RetryAfter time.Duration
	// BlockOnFull switches ingest backpressure from busy-refusal to
	// blocking: when the queue is full the connection reader waits for room
	// instead of replying TBusy, so backpressure propagates through TCP
	// flow control. Pipelined producers that depend on per-connection
	// ordering need this — a busy-refused batch is re-sent behind its
	// already-pipelined successors, which reorders the stream even though
	// acknowledgements confirm enqueueing (the queue can be full of batches
	// that were already acked). The default (false) keeps explicit TBusy
	// replies, which synchronous request/response producers prefer.
	BlockOnFull bool
	// UDPAddr, when non-empty, opens the UDP ingest lane on that address
	// (e.g. "127.0.0.1:0"). Empty disables the lane; TUDPAck polls then
	// answer with zero watermarks.
	UDPAddr string
	// UDPWindow is the UDP lane's per-source reorder window in sequence
	// numbers: a datagram more than this far ahead of the cumulative
	// watermark is dropped. Default 256.
	UDPWindow int
	// Logf, when non-nil, receives diagnostic messages (failed periodic
	// checkpoints, dropped connections).
	Logf func(format string, args ...any)
	// TraceSpans, when positive, enables the event tracer with a ring
	// holding that many spans (obs.DefaultSpans is the conventional size).
	// Zero disables tracing: no ring is allocated and the ingest path takes
	// no per-task clock reads. The Trace RPC then answers with an empty
	// dump.
	TraceSpans int

	// gate, when non-nil, is called by the dispatcher before each batch is
	// handed to the pool — a test hook for making queue states
	// deterministic.
	gate func()
}

func (c Config) withDefaults() Config {
	if c.QueueDepth == 0 {
		c.QueueDepth = 64
	}
	if c.Workers == 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.MaxBatchTuples == 0 {
		c.MaxBatchTuples = 1 << 16
	}
	if c.RetryAfter == 0 {
		c.RetryAfter = 20 * time.Millisecond
	}
	if c.UDPWindow == 0 {
		c.UDPWindow = 256
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Server is a running ingest/query server. Create with Listen.
type Server struct {
	cfg    Config
	ln     net.Listener
	stmts  []*query.Statement
	tel    *telemetry.Set
	pool   *pipeline.Pool
	tracer *obs.Tracer // nil when tracing is disabled; nil-safe to record on
	udp    *udpLane    // nil when Config.UDPAddr is empty

	// hdr is the canonical binary-stream header for cfg.Schema; an ingest
	// payload with this exact prefix has a verified schema (fast path in
	// decodeBatch). arity caches cfg.Schema.Len().
	hdr   []byte
	arity int

	// boot is this incarnation's nonce, drawn once at Listen and served
	// through the Boot RPC so stateful feeders can fence their sends against
	// a silent restart-from-checkpoint (see proto.TBoot).
	boot uint64

	// mu is the coarse read/write coordination point above the pipeline:
	// Query and Stats hold it shared (they never stall ingestion — workers
	// do not take it), merges hold it exclusively alongside the target
	// statement's own lock, and checkpoint captures hold it exclusively
	// after fencing the pool.
	mu sync.RWMutex

	queue chan *pipeline.Batch
	// depth tracks the ingest queue's occupancy for the high-water
	// telemetry: incremented by the enqueuing reader (the post-send value
	// IS that batch's deterministic depth sample), decremented by the
	// dispatcher on receive.
	depth          atomic.Int64
	periodic       checkpoint.Periodic
	dispatcherDone chan struct{}

	connMu sync.Mutex
	conns  map[net.Conn]struct{}
	connWG sync.WaitGroup

	draining  atomic.Bool
	killed    atomic.Bool
	closeOnce sync.Once
	closeErr  error
}

// Listen starts a server on cfg.Addr and begins serving.
func Listen(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.Schema == nil {
		return nil, fmt.Errorf("server: nil schema")
	}
	if cfg.Engine == nil {
		return nil, fmt.Errorf("server: nil engine")
	}
	if cfg.QueueDepth < 1 {
		return nil, fmt.Errorf("server: queue depth %d must be >= 1", cfg.QueueDepth)
	}
	if cfg.Workers < 1 {
		return nil, fmt.Errorf("server: worker count %d must be >= 1", cfg.Workers)
	}
	// A non-positive window would wrap to ~2^64 in the lane's uint64
	// arithmetic and disable the reorder bound entirely; reject it here
	// rather than trusting newUDPLane's conversion.
	if cfg.UDPAddr != "" && cfg.UDPWindow < 1 {
		return nil, fmt.Errorf("server: udp window %d must be >= 1", cfg.UDPWindow)
	}
	s := &Server{
		cfg:            cfg,
		stmts:          cfg.Engine.Statements(),
		tel:            &telemetry.Set{},
		queue:          make(chan *pipeline.Batch, cfg.QueueDepth),
		dispatcherDone: make(chan struct{}),
		conns:          make(map[net.Conn]struct{}),
		hdr:            stream.BinaryHeader(cfg.Schema),
		arity:          cfg.Schema.Len(),
	}
	s.tel.ConfigureWorkers(cfg.Workers)
	nonce, err := proto.NewBootNonce()
	if err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	s.boot = nonce
	if cfg.TraceSpans > 0 {
		s.tracer = obs.NewTracer(cfg.TraceSpans)
	}
	pool, err := pipeline.New(cfg.Engine, pipeline.Config{
		Workers:     cfg.Workers,
		OnApplied:   func(n int) { s.tel.AddTuples(int64(n)) },
		OnTask:      s.tel.AddWorkerTask,
		OnSaturated: s.tel.AddPoolSaturation,
		Tracer:      s.tracer,
	})
	if err != nil {
		return nil, fmt.Errorf("server: %w", err)
	}
	ln, err := net.Listen("tcp", cfg.Addr)
	if err != nil {
		pool.Close()
		return nil, fmt.Errorf("server: %w", err)
	}
	s.pool = pool
	s.ln = ln
	if cfg.UDPAddr != "" {
		lane, err := newUDPLane(s, cfg.UDPAddr, cfg.UDPWindow)
		if err != nil {
			ln.Close()
			pool.Close()
			return nil, fmt.Errorf("server: %w", err)
		}
		s.udp = lane
	}
	s.periodic = checkpoint.Periodic{Path: cfg.CheckpointPath, Every: cfg.CheckpointEvery}
	if cfg.CheckpointPath == "" {
		s.periodic.Every = 0
	}
	s.periodic.SkipTo(cfg.Engine.Tuples())
	go s.acceptLoop()
	go s.dispatcher()
	return s, nil
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() string { return s.ln.Addr().String() }

// UDPAddr returns the UDP ingest lane's bound address, or "" when the
// lane is disabled.
func (s *Server) UDPAddr() string {
	if s.udp == nil {
		return ""
	}
	return s.udp.pc.LocalAddr().String()
}

// Telemetry exposes the live counter set.
func (s *Server) Telemetry() *telemetry.Set { return s.tel }

// Engine returns the served engine. It must only be used after Close or
// Kill has returned — while the server runs, the engine is its alone.
func (s *Server) Engine() *query.Engine { return s.cfg.Engine }

// Tracer exposes the span ring (nil when Config.TraceSpans was zero) for
// out-of-band dumps — impserved's SIGQUIT handler reads it.
func (s *Server) Tracer() *obs.Tracer { return s.tracer }

// StatsSnapshot implements obs.AdminState: the live telemetry snapshot the
// admin endpoint's /metrics renders, under the same shared lock the Stats
// RPC takes.
func (s *Server) StatsSnapshot() telemetry.Snapshot {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.tel.Snapshot()
}

// HealthReports implements obs.AdminState: the engine's per-statement
// estimator health, read under the server's shared lock so merges and
// checkpoint captures never race the walk.
func (s *Server) HealthReports() []imps.HealthReport {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.cfg.Engine.HealthReports()
}

// TraceSpans implements obs.AdminState: the current span ring contents
// (nil when tracing is disabled).
func (s *Server) TraceSpans() []obs.Span { return s.tracer.Snapshot() }

func (s *Server) acceptLoop() {
	for {
		c, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.connMu.Lock()
		if s.draining.Load() {
			s.connMu.Unlock()
			c.Close()
			continue
		}
		s.conns[c] = struct{}{}
		s.connWG.Add(1)
		s.connMu.Unlock()
		go s.serveConn(c)
	}
}

func (s *Server) dropConn(c net.Conn) {
	s.connMu.Lock()
	delete(s.conns, c)
	s.connMu.Unlock()
	c.Close()
}

// handle dispatches one control-plane request frame and builds the
// response frame. Ingest frames never reach it — the connection reader
// short-circuits them through handleIngestFast (conn.go).
func (s *Server) handle(f proto.Frame) proto.Frame {
	start := time.Now()
	var resp proto.Frame
	var rpc telemetry.RPC
	switch f.Type {
	case proto.TQuery:
		rpc, resp = telemetry.RPCQuery, s.handleQuery(f)
	case proto.TMerge:
		rpc, resp = telemetry.RPCMerge, s.handleMerge(f)
	case proto.TStats:
		rpc, resp = telemetry.RPCStats, s.handleStats(f)
	case proto.THealth:
		rpc, resp = telemetry.RPCHealth, s.handleHealth(f)
	case proto.TTrace:
		rpc, resp = telemetry.RPCTrace, s.handleTrace(f)
	case proto.TUDPAck:
		rpc, resp = telemetry.RPCUDPAck, s.handleUDPAck(f)
	case proto.TSnapshot:
		rpc, resp = telemetry.RPCSnapshot, s.handleSnapshot(f)
	case proto.TBoot:
		rpc, resp = telemetry.RPCBoot, s.handleBoot(f)
	default:
		return errorFrame(f.ID, fmt.Sprintf("unsupported request type %s", f.Type))
	}
	// One clock read serves both the latency histogram and the RPC span.
	dur := time.Since(start)
	s.tel.Observe(rpc, dur)
	s.tracer.Record(obs.SpanRPC, int(rpc), 0, start, dur)
	return resp
}

func errorFrame(id uint64, msg string) proto.Frame {
	return proto.Frame{Type: proto.TError, ID: id, Payload: proto.EncodeError(msg)}
}

// decodeBatchSlow parses an ingest payload through the general
// BinaryReader — the fallback for payloads whose header is not the
// server schema's canonical encoding, where the job is the precise
// schema-mismatch error. The fast path is decodeBatch in conn.go.
func (s *Server) decodeBatchSlow(payload []byte) ([]stream.Tuple, error) {
	br, err := stream.NewBinaryReader(bytes.NewReader(payload))
	if err != nil {
		return nil, err
	}
	got := br.Schema().Names()
	want := s.cfg.Schema.Names()
	if len(got) != len(want) {
		return nil, fmt.Errorf("batch schema has %d attributes, server schema has %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			return nil, fmt.Errorf("batch schema attribute %d is %q, server schema has %q", i, got[i], want[i])
		}
	}
	var tuples []stream.Tuple
	buf := make([]stream.Tuple, 256)
	for {
		n, err := br.NextBatch(buf)
		for i := 0; i < n; i++ {
			// NextBatch reuses the slot backing arrays; the queue outlives
			// this call, so each tuple gets its own slice (the field strings
			// are already freshly allocated per batch).
			tuples = append(tuples, append(stream.Tuple(nil), buf[i]...))
		}
		if len(tuples) > s.cfg.MaxBatchTuples {
			return nil, fmt.Errorf("batch exceeds %d tuples", s.cfg.MaxBatchTuples)
		}
		if err == io.EOF {
			return tuples, nil
		}
		if err != nil {
			return nil, err
		}
	}
}

func (s *Server) handleQuery(f proto.Frame) proto.Frame {
	req, err := proto.DecodeQueryReq(f.Payload)
	if err != nil {
		return errorFrame(f.ID, err.Error())
	}
	if int(req.Stmt) >= len(s.stmts) {
		return errorFrame(f.ID, fmt.Sprintf("query: no statement %d (server has %d)", req.Stmt, len(s.stmts)))
	}
	// Shared lock: reads proceed against a live pool. Count takes the
	// statement's own read lock, so a serialized-class statement is read
	// between its batches; partition-safe estimators snapshot internally.
	s.mu.RLock()
	res := proto.QueryResult{Count: s.stmts[req.Stmt].Count(), Tuples: s.cfg.Engine.Tuples()}
	s.mu.RUnlock()
	return proto.Frame{Type: proto.TResult, ID: f.ID, Payload: res.Encode()}
}

func (s *Server) handleMerge(f proto.Frame) proto.Frame {
	req, err := proto.DecodeMergeReq(f.Payload)
	if err != nil {
		return errorFrame(f.ID, err.Error())
	}
	if int(req.Stmt) >= len(s.stmts) {
		return errorFrame(f.ID, fmt.Sprintf("merge: no statement %d (server has %d)", req.Stmt, len(s.stmts)))
	}
	st := s.stmts[req.Stmt]
	if st.Shared() {
		return errorFrame(f.ID, fmt.Sprintf("merge: statement %d reads a shared estimator; merge into its owner", req.Stmt))
	}
	dst, ok := st.Estimator().(*core.Sketch)
	if !ok {
		return errorFrame(f.ID, fmt.Sprintf("merge: statement %d estimator (%s) does not support merging", req.Stmt, kindOf(st)))
	}
	src, err := core.UnmarshalSketch(req.Sketch)
	if err != nil {
		return errorFrame(f.ID, fmt.Sprintf("merge: %v", err))
	}
	// Exclusive on both levels: the server lock keeps checkpoint captures
	// and readers out, the statement lock keeps its home worker out (a
	// plain sketch is serialized-class, so its ingest runs under that
	// lock).
	mergeStart := time.Now()
	s.mu.Lock()
	st.Exclusive(func() { err = dst.Merge(src) })
	s.mu.Unlock()
	if err != nil {
		return errorFrame(f.ID, fmt.Sprintf("merge: %v", err))
	}
	s.tracer.Span(obs.SpanMerge, int(req.Stmt), int64(len(req.Sketch)), mergeStart)
	s.tel.AddMerge()
	return proto.Frame{Type: proto.TOK, ID: f.ID}
}

// handleSnapshot answers a state pull: the statement's estimator marshalled
// for a downstream SnapshotMerge, plus the engine's applied-tuple count at
// the capture — the offset a coordinator compares against its journal. The
// same restrictions as the merge path apply (no shared estimators, plain
// sketches only), because the reply is meant to round-trip through Merge.
func (s *Server) handleSnapshot(f proto.Frame) proto.Frame {
	req, err := proto.DecodeSnapshotReq(f.Payload)
	if err != nil {
		return errorFrame(f.ID, err.Error())
	}
	if int(req.Stmt) >= len(s.stmts) {
		return errorFrame(f.ID, fmt.Sprintf("snapshot: no statement %d (server has %d)", req.Stmt, len(s.stmts)))
	}
	st := s.stmts[req.Stmt]
	if st.Shared() {
		return errorFrame(f.ID, fmt.Sprintf("snapshot: statement %d reads a shared estimator; snapshot its owner", req.Stmt))
	}
	src, ok := st.Estimator().(*core.Sketch)
	if !ok {
		return errorFrame(f.ID, fmt.Sprintf("snapshot: statement %d estimator (%s) does not support state pulls", req.Stmt, kindOf(st)))
	}
	// Exclusive on both levels, like the merge path: the server lock keeps
	// checkpoint captures and merges out, the statement lock keeps its home
	// worker out mid-marshal. Workers do not take the server lock, so the
	// tuple count is a watermark, not a fence — a caller that needs the
	// snapshot to cover everything it shipped compares Tuples against its
	// own ledger and re-pulls after the engine catches up (the coordinator
	// quiesces exactly this way before its merge fan-in).
	var blob []byte
	s.mu.Lock()
	res := proto.SnapshotResult{Tuples: s.cfg.Engine.Tuples(), Kind: st.EstimatorKind()}
	st.Exclusive(func() { blob, err = src.MarshalBinary() })
	s.mu.Unlock()
	if err != nil {
		return errorFrame(f.ID, fmt.Sprintf("snapshot: %v", err))
	}
	res.Sketch = blob
	return proto.Frame{Type: proto.TResult, ID: f.ID, Payload: res.Encode()}
}

// handleBoot answers with the incarnation nonce drawn at Listen.
func (s *Server) handleBoot(f proto.Frame) proto.Frame {
	return proto.Frame{Type: proto.TResult, ID: f.ID, Payload: proto.Boot{Nonce: s.boot}.Encode()}
}

func kindOf(st *query.Statement) string {
	if k := st.EstimatorKind(); k != "" {
		return k
	}
	return fmt.Sprintf("%T", st.Estimator())
}

func (s *Server) handleStats(f proto.Frame) proto.Frame {
	s.mu.RLock()
	payload := s.tel.Snapshot().Encode()
	s.mu.RUnlock()
	return proto.Frame{Type: proto.TResult, ID: f.ID, Payload: payload}
}

// handleHealth answers with the engine's per-statement health reports. The
// shared lock keeps merges and checkpoint captures out; each statement's
// Health takes its own read lock below, the same path Query walks.
func (s *Server) handleHealth(f proto.Frame) proto.Frame {
	s.mu.RLock()
	payload := obs.EncodeHealth(s.cfg.Engine.HealthReports())
	s.mu.RUnlock()
	return proto.Frame{Type: proto.TResult, ID: f.ID, Payload: payload}
}

// handleTrace answers with the span ring's current contents. No lock: the
// tracer is its own synchronization, and a disabled tracer encodes as an
// empty dump rather than an error so pollers need not know the server's
// configuration.
func (s *Server) handleTrace(f proto.Frame) proto.Frame {
	return proto.Frame{Type: proto.TResult, ID: f.ID, Payload: obs.EncodeSpans(s.tracer.Snapshot())}
}

// handleUDPAck answers a cumulative-acknowledgement poll for one UDP
// source. A server without the lane — or a source it has never heard from —
// answers with the zero watermark, so pollers need not know the server's
// configuration.
func (s *Server) handleUDPAck(f proto.Frame) proto.Frame {
	req, err := proto.DecodeUDPAckReq(f.Payload)
	if err != nil {
		return errorFrame(f.ID, err.Error())
	}
	var ack proto.UDPAck
	if s.udp != nil {
		ack = s.udp.ack(req.Source)
	}
	return proto.Frame{Type: proto.TResult, ID: f.ID, Payload: ack.Encode()}
}

// dispatcher feeds queued batches to the worker pool in arrival order —
// the single ordered step of the ingest path — and drives periodic
// checkpoints. It exits when the queue is closed and drained, leaving the
// pool fenced (every dispatched batch fully applied).
func (s *Server) dispatcher() {
	defer close(s.dispatcherDone)
	var sinceCkpt int64
	for b := range s.queue {
		s.depth.Add(-1)
		if s.cfg.gate != nil {
			s.cfg.gate()
		}
		n := int64(b.Tuples())
		var dispatchStart time.Time
		if s.tracer != nil {
			dispatchStart = time.Now()
		}
		s.pool.Dispatch(b)
		if s.tracer != nil {
			s.tracer.Span(obs.SpanDispatch, -1, n, dispatchStart)
		}
		if s.periodic.Every <= 0 {
			continue
		}
		sinceCkpt += n
		if sinceCkpt < s.periodic.Every {
			continue
		}
		// Capture point: fence the pool so every dispatched tuple is
		// applied, then take the write lock so no merge mutates an
		// estimator while it marshals. After the fence the engine's tuple
		// count equals the dispatched total.
		ckptStart := time.Now()
		s.pool.Fence()
		s.mu.Lock()
		wrote, err := s.periodic.Maybe(s.cfg.Engine, s.cfg.Engine.Tuples())
		s.mu.Unlock()
		if err != nil {
			s.cfg.Logf("server: periodic checkpoint: %v", err)
		}
		if wrote {
			s.tracer.Span(obs.SpanCheckpoint, len(s.stmts), s.cfg.Engine.Tuples(), ckptStart)
		}
		if wrote || err != nil {
			sinceCkpt = 0
		}
	}
	s.pool.Fence()
}

// shutdown runs the shared teardown: stop accepting, stop the UDP lane,
// unblock connection readers, drain the queue through the pool, stop the
// pool. The lane stops before the queue closes: its reader may be blocked
// enqueueing, and the dispatcher keeps draining until the close.
func (s *Server) shutdown(grace time.Duration) {
	s.draining.Store(true)
	s.ln.Close()
	if s.udp != nil {
		s.udp.close()
	}
	s.connMu.Lock()
	deadline := time.Now().Add(grace)
	for c := range s.conns {
		c.SetReadDeadline(deadline)
	}
	s.connMu.Unlock()
	s.connWG.Wait()
	close(s.queue)
	<-s.dispatcherDone // dispatcher fenced the pool on exit: all batches applied
	s.pool.Close()
}

// Close shuts the server down gracefully: the listener closes, connection
// readers finish their in-flight requests (within a short grace window),
// the ingest queue is drained through the engine, and — when checkpointing
// is configured — a final checkpoint is written. Every batch acknowledged
// before Close is applied before the final checkpoint.
func (s *Server) Close() error {
	s.closeOnce.Do(func() {
		s.shutdown(drainGrace)
		if s.cfg.CheckpointPath != "" {
			ckptStart := time.Now()
			snap, err := checkpoint.Capture(s.cfg.Engine, s.cfg.Engine.Tuples())
			if err == nil {
				err = checkpoint.Write(s.cfg.CheckpointPath, snap)
			}
			if err == nil {
				s.tracer.Span(obs.SpanCheckpoint, len(s.stmts), s.cfg.Engine.Tuples(), ckptStart)
			}
			s.closeErr = err
		}
	})
	return s.closeErr
}

// Kill tears the server down abruptly — connections are cut mid-request and
// no final checkpoint is written, simulating a crash. Only previously
// written periodic checkpoints survive; the engine must be considered lost.
func (s *Server) Kill() {
	s.closeOnce.Do(func() {
		s.killed.Store(true)
		s.draining.Store(true)
		s.ln.Close()
		if s.udp != nil {
			s.udp.close()
		}
		s.connMu.Lock()
		for c := range s.conns {
			c.Close()
		}
		s.connMu.Unlock()
		s.connWG.Wait()
		close(s.queue)
		<-s.dispatcherDone
		s.pool.Close()
	})
}

var _ imps.Estimator = (*core.Sketch)(nil) // the merge path's contract
var _ obs.AdminState = (*Server)(nil)      // the admin endpoint's contract
