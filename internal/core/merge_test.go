package core

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"implicate/internal/exact"
	"implicate/internal/imps"
)

func TestMergeCompatibilityChecks(t *testing.T) {
	cond := testConditions()
	a := MustSketch(cond, Options{Seed: 1})
	if err := a.Merge(nil); err == nil {
		t.Error("nil sketch accepted")
	}
	otherCond := cond
	otherCond.MinSupport++
	if err := a.Merge(MustSketch(otherCond, Options{Seed: 1})); err == nil {
		t.Error("different conditions accepted")
	}
	if err := a.Merge(MustSketch(cond, Options{Seed: 2})); err == nil {
		t.Error("different seed accepted")
	}
	if err := a.Merge(MustSketch(cond, Options{FringeSize: 8, Seed: 1})); err == nil {
		t.Error("different fringe accepted")
	}
}

// TestMergeConfigMismatchRejected walks every single-option deviation —
// bitmap count, fringe size, seed, slack, unbounded mode — and requires
// Merge to reject it AND to leave the target bit-identical to its
// pre-merge state: a refused merge must never half-apply. This guards the
// SnapshotMerge RPC, where a misconfigured leaf shipping its sketch to an
// aggregator must be a reported error, not a silently mis-merged count.
func TestMergeConfigMismatchRejected(t *testing.T) {
	cond := testConditions()
	base := Options{Bitmaps: 32, FringeSize: 4, Slack: 2, Seed: 9}
	mismatches := []struct {
		name string
		opts Options
	}{
		{"bitmap count", Options{Bitmaps: 64, FringeSize: 4, Slack: 2, Seed: 9}},
		{"fringe size", Options{Bitmaps: 32, FringeSize: 8, Slack: 2, Seed: 9}},
		{"seed", Options{Bitmaps: 32, FringeSize: 4, Slack: 2, Seed: 10}},
		{"slack", Options{Bitmaps: 32, FringeSize: 4, Slack: 4, Seed: 9}},
		{"unbounded", Options{Bitmaps: 32, FringeSize: 4, Slack: 2, Seed: 9, Unbounded: true}},
	}
	for _, mm := range mismatches {
		t.Run(mm.name, func(t *testing.T) {
			dst := MustSketch(cond, base)
			src := MustSketch(cond, mm.opts)
			// Both sketches carry state so a mis-merge would be visible.
			for i := 0; i < 500; i++ {
				a := fmt.Sprintf("a%d", i%60)
				dst.Add(a, fmt.Sprintf("b%d", i%7))
				src.Add(a, fmt.Sprintf("c%d", i%5))
			}
			before, err := dst.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			if err := dst.Merge(src); err == nil {
				t.Fatalf("mismatched %s accepted", mm.name)
			}
			after, err := dst.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			if string(before) != string(after) {
				t.Fatalf("rejected merge mutated the target sketch (%d vs %d bytes)", len(before), len(after))
			}
		})
	}

	// The control: identical options on both sides must merge.
	dst := MustSketch(cond, base)
	src := MustSketch(cond, base)
	dst.Add("a", "b")
	src.Add("c", "d")
	if err := dst.Merge(src); err != nil {
		t.Fatalf("identically configured sketches refused: %v", err)
	}
}

// TestMergeDisjointEqualsUnion: when the two halves touch disjoint itemset
// populations, merging unbounded sketches must reproduce the single-sketch
// run over the concatenated stream exactly (counter sums are then trivially
// identical; bounded sketches additionally differ in float/overflow timing
// and are covered by the statistical test below).
func TestMergeDisjointEqualsUnion(t *testing.T) {
	cond := imps.Conditions{MaxMultiplicity: 2, MinSupport: 3, TopC: 1, MinTopConfidence: 0.8}
	opts := Options{Seed: 5, Unbounded: true}
	whole := MustSketch(cond, opts)
	left := MustSketch(cond, opts)
	right := MustSketch(cond, opts)

	feed := func(dsts []*Sketch, a, b uint64) {
		for _, d := range dsts {
			d.AddIDs(a, b)
		}
	}
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 3000; i++ {
		a := uint64(i)
		partners := 1 + rng.Intn(4) // some imply, some violate multiplicity
		for k := 0; k < 5; k++ {
			b := uint64(100000 + i*10 + k%partners)
			if i%2 == 0 {
				feed([]*Sketch{whole, left}, a, b)
			} else {
				feed([]*Sketch{whole, right}, a, b)
			}
		}
	}
	if err := left.Merge(right); err != nil {
		t.Fatal(err)
	}
	if got, want := left.ImplicationCount(), whole.ImplicationCount(); math.Abs(got-want) > 1e-9 {
		t.Errorf("merged implication count %v != whole-stream %v", got, want)
	}
	if got, want := left.NonImplicationCount(), whole.NonImplicationCount(); math.Abs(got-want) > 1e-9 {
		t.Errorf("merged non-implication count %v != whole-stream %v", got, want)
	}
	if got, want := left.SupportedDistinct(), whole.SupportedDistinct(); math.Abs(got-want) > 1e-9 {
		t.Errorf("merged supported count %v != whole-stream %v", got, want)
	}
	if left.Tuples() != whole.Tuples() {
		t.Errorf("merged tuples %d != %d", left.Tuples(), whole.Tuples())
	}
	if left.MemEntries() != whole.MemEntries() {
		t.Errorf("merged entries %d != %d", left.MemEntries(), whole.MemEntries())
	}
}

// TestMergeSplitStreamAccuracy: splitting one stream across two nodes and
// merging must stay close to the exact count — the distributed-aggregation
// use case (itemsets appear on BOTH nodes, so counters genuinely combine).
func TestMergeSplitStreamAccuracy(t *testing.T) {
	cond := imps.Conditions{MaxMultiplicity: 2, MinSupport: 6, TopC: 1, MinTopConfidence: 0.8}
	var errSum float64
	const runs = 5
	for run := 0; run < runs; run++ {
		opts := Options{Seed: uint64(run*19 + 3)}
		left := MustSketch(cond, opts)
		right := MustSketch(cond, opts)
		ex := exact.MustCounter(cond)
		rng := rand.New(rand.NewSource(int64(run)))

		const nImp, nViol = 2000, 2000
		type pair struct{ a, b uint64 }
		var tuples []pair
		for i := 0; i < nImp; i++ {
			for k := 0; k < 8; k++ {
				tuples = append(tuples, pair{uint64(i), uint64(1000000 + i)})
			}
		}
		for i := 0; i < nViol; i++ {
			for k := 0; k < 8; k++ {
				tuples = append(tuples, pair{uint64(500000 + i), uint64(2000000 + i*10 + k%4)})
			}
		}
		rng.Shuffle(len(tuples), func(i, j int) { tuples[i], tuples[j] = tuples[j], tuples[i] })
		for n, tp := range tuples {
			ex.Add(fmt.Sprint(tp.a), fmt.Sprint(tp.b))
			if n%2 == 0 {
				left.AddIDs(tp.a, tp.b)
			} else {
				right.AddIDs(tp.a, tp.b)
			}
		}
		if err := left.Merge(right); err != nil {
			t.Fatal(err)
		}
		if int(ex.ImplicationCount()) != nImp {
			t.Fatalf("exact = %v, want %d", ex.ImplicationCount(), nImp)
		}
		errSum += math.Abs(left.ImplicationCount()-float64(nImp)) / float64(nImp)
	}
	if mean := errSum / runs; mean > 0.25 {
		t.Errorf("merged-sketch mean error %.3f too large", mean)
	}
}

// TestMergePreservesExclusions: an itemset excluded on one node must stay
// excluded after the merge even if the other node saw it behaving well.
func TestMergePreservesExclusions(t *testing.T) {
	cond := imps.Conditions{MaxMultiplicity: 1, MinSupport: 2, TopC: 1, MinTopConfidence: 1.0}
	opts := Options{Bitmaps: 1, Seed: 7}
	left := MustSketch(cond, opts)
	right := MustSketch(cond, opts)
	// Node L: "a" violates (two partners, support 2).
	left.Add("a", "x")
	left.Add("a", "y")
	// Node R: "a" looks perfectly implicating.
	for i := 0; i < 10; i++ {
		right.Add("a", "x")
	}
	if err := right.Merge(left); err != nil {
		t.Fatal(err)
	}
	_, rank := right.router.Route(right.ahash.Sum("a"))
	if !right.bms[0].value[rank] {
		t.Fatal("exclusion lost in merge")
	}
	// And it stays out under further updates.
	for i := 0; i < 10; i++ {
		right.Add("a", "x")
	}
	if got := right.bms[0].cells[rank]; got != nil {
		if idx := got.find(right.ahash.Sum("a")); idx >= 0 && !got.items[idx].st.excluded {
			t.Fatal("excluded itemset re-admitted after merge")
		}
	}
}

// TestMergeInvariants runs the structural invariant checks on merged
// sketches.
func TestMergeInvariants(t *testing.T) {
	cond := imps.Conditions{MaxMultiplicity: 2, MinSupport: 3, TopC: 1, MinTopConfidence: 0.7}
	opts := Options{Bitmaps: 8, FringeSize: 3, Seed: 11}
	a := MustSketch(cond, opts)
	b := MustSketch(cond, opts)
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 20000; i++ {
		x, y := uint64(rng.Intn(4000)), uint64(rng.Intn(9))
		if i%2 == 0 {
			a.AddIDs(x, y)
		} else {
			b.AddIDs(x, y)
		}
	}
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	for bi := range a.bms {
		bm := &a.bms[bi]
		for j := 0; j < Levels; j++ {
			if bm.dead[j] && bm.cells[j] != nil {
				t.Fatalf("bitmap %d: dead cell %d holds memory", bi, j)
			}
			c := bm.cells[j]
			if c == nil {
				continue
			}
			nSup, nDoom, nTomb := 0, 0, 0
			for k := range c.items {
				st := &c.items[k].st
				if st.excluded {
					nTomb++
					continue
				}
				if st.supp >= cond.MinSupport {
					nSup++
				}
				if st.doomed {
					nDoom++
				}
			}
			if nSup != c.nSupported || nDoom != c.nDoomed || nTomb != c.nExcluded {
				t.Fatalf("bitmap %d cell %d: census drift after merge", bi, j)
			}
		}
	}
	// Continued streaming after a merge must keep working.
	for i := 0; i < 5000; i++ {
		a.AddIDs(uint64(rng.Intn(4000)), uint64(rng.Intn(9)))
	}
	if a.ImplicationCount() < 0 {
		t.Fatal("negative count")
	}
}
