package obs

import (
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"implicate/internal/imps"
	"implicate/internal/telemetry"
)

func TestTracerRecordAndSnapshot(t *testing.T) {
	tr := NewTracer(8)
	base := time.Now()
	tr.Record(SpanPlan, -1, 1000, base, 5*time.Microsecond)
	tr.Record(SpanApply, 3, 250, base.Add(time.Millisecond), 80*time.Microsecond)
	tr.Record(SpanRPC, int(telemetry.RPCIngest), 0, base.Add(2*time.Millisecond), time.Millisecond)

	spans := tr.Snapshot()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3", len(spans))
	}
	for i, sp := range spans {
		if sp.Seq != uint64(i) {
			t.Errorf("span %d has seq %d", i, sp.Seq)
		}
	}
	if spans[0].Kind != SpanPlan || spans[0].Arg != -1 || spans[0].Units != 1000 {
		t.Errorf("plan span %+v", spans[0])
	}
	if spans[1].Kind != SpanApply || spans[1].Arg != 3 {
		t.Errorf("apply span %+v", spans[1])
	}
	if spans[1].Dur != int64(80*time.Microsecond) {
		t.Errorf("apply dur %d", spans[1].Dur)
	}
	if spans[2].Start != base.Add(2*time.Millisecond).UnixNano() {
		t.Errorf("rpc start %d", spans[2].Start)
	}
	if tr.Recorded() != 3 {
		t.Errorf("recorded %d", tr.Recorded())
	}
}

func TestTracerLapsKeepNewest(t *testing.T) {
	tr := NewTracer(4)
	base := time.Now()
	for i := 0; i < 10; i++ {
		tr.Record(SpanApply, i, int64(i), base, time.Microsecond)
	}
	spans := tr.Snapshot()
	if len(spans) != 4 {
		t.Fatalf("got %d spans, want ring capacity 4", len(spans))
	}
	for i, sp := range spans {
		if want := uint64(6 + i); sp.Seq != want {
			t.Errorf("span %d seq %d, want %d (newest four)", i, sp.Seq, want)
		}
		if int(sp.Arg) != 6+i {
			t.Errorf("span %d arg %d", i, sp.Arg)
		}
	}
}

func TestNilTracerIsInert(t *testing.T) {
	var tr *Tracer
	tr.Record(SpanPlan, 0, 0, time.Now(), 0) // must not panic
	tr.Span(SpanPlan, 0, 0, time.Now())
	if tr.Snapshot() != nil || tr.Cap() != 0 || tr.Recorded() != 0 {
		t.Error("nil tracer not inert")
	}
}

// TestTracerConcurrent hammers one small ring from concurrent writers while
// readers snapshot — run under -race. Every returned span must be coherent:
// its Arg equals its writer id and its Units its iteration, never a mix.
func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer(64)
	const writers = 8
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			base := time.Now()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				// Arg and Units carry the same value so a torn span is
				// detectable as a mismatch.
				tr.Record(SpanApply, g*1_000_000+i, int64(g*1_000_000+i), base, time.Duration(i))
			}
		}(g)
	}
	deadline := time.Now().Add(50 * time.Millisecond)
	for time.Now().Before(deadline) {
		for _, sp := range tr.Snapshot() {
			if int64(sp.Arg) != sp.Units {
				t.Errorf("torn span: arg %d, units %d", sp.Arg, sp.Units)
			}
			if sp.Kind != SpanApply {
				t.Errorf("torn span kind %v", sp.Kind)
			}
		}
	}
	close(stop)
	wg.Wait()
}

func TestSpanCodecRoundTrip(t *testing.T) {
	tr := NewTracer(8)
	base := time.Now()
	tr.Record(SpanCheckpoint, 2, 4096, base, 3*time.Millisecond)
	tr.Record(SpanMerge, -1, 512, base, 40*time.Microsecond)
	want := tr.Snapshot()

	got, err := DecodeSpans(EncodeSpans(want))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d spans, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("span %d: got %+v want %+v", i, got[i], want[i])
		}
	}

	if _, err := DecodeSpans(EncodeSpans(nil)); err != nil {
		t.Errorf("empty dump: %v", err)
	}
	enc := EncodeSpans(want)
	if _, err := DecodeSpans(enc[:len(enc)-1]); err == nil {
		t.Error("truncated span dump accepted")
	}
	bad := append([]byte(nil), enc...)
	bad[len(spansMagic)+4+8] = 0xFF // first span's kind byte
	if _, err := DecodeSpans(bad); err == nil {
		t.Error("unknown span kind accepted")
	}
}

func sampleHealth() []imps.HealthReport {
	return []imps.HealthReport{
		{
			Stmt: 0, Kind: "sharded", Query: "SELECT COUNT(DISTINCT A) FROM t WHERE A IMPLIES B",
			Tuples: 100000, MemEntries: 1920, MemBytes: 1 << 20,
			BitmapFill: 0.42, LeftmostZero: 6.5,
			FringeTracked: 800, FringePairs: 1100, FringeTombstones: 20,
			FringeEvictions: 7, FringeWidth: 4, RelErr: 0.12,
		},
		{Stmt: 1, Kind: "exact", Query: "q", Shared: true, Tuples: 100000, MemEntries: 5, MemBytes: 640,
			RelErr: math.Inf(1)},
	}
}

func TestHealthCodecRoundTrip(t *testing.T) {
	want := sampleHealth()
	got, err := DecodeHealth(EncodeHealth(want))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d reports, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("report %d: got %+v want %+v", i, got[i], want[i])
		}
	}
	if !math.IsInf(got[1].RelErr, 1) {
		t.Error("+Inf rel-err did not round-trip")
	}

	if _, err := DecodeHealth(EncodeHealth(nil)); err != nil {
		t.Errorf("empty dump: %v", err)
	}
	enc := EncodeHealth(want)
	if _, err := DecodeHealth(enc[:len(enc)-2]); err == nil {
		t.Error("truncated health dump accepted")
	}
	if _, err := DecodeHealth(append(append([]byte(nil), enc...), 9)); err == nil {
		t.Error("trailing bytes accepted")
	}
}

func TestWriteMetrics(t *testing.T) {
	var set telemetry.Set
	set.AddTuples(123456)
	set.AddBatch()
	set.ObserveQueueDepth(9)
	set.AddPoolSaturation()
	set.ConfigureWorkers(2)
	set.AddWorkerTask(0, 100)
	set.AddWorkerTask(1, 50)
	set.Observe(telemetry.RPCIngest, 700*time.Microsecond)
	set.Observe(telemetry.RPCQuery, 3*time.Microsecond)

	var b strings.Builder
	if err := WriteMetrics(&b, set.Snapshot(), sampleHealth()); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"imps_tuples_ingested_total 123456",
		"imps_queue_high_water 9",
		"imps_pool_saturation_total 1",
		`imps_worker_units_total{worker="1"} 50`,
		`imps_rpc_requests_total{rpc="IngestBatch"} 1`,
		`imps_rpc_latency_seconds{rpc="IngestBatch",quantile="0.99"}`,
		`imps_stmt_bitmap_fill{stmt="0",kind="sharded",shared="false"} 0.42`,
		`imps_stmt_fringe_evictions_total{stmt="0",kind="sharded",shared="false"} 7`,
		`imps_stmt_rel_err{stmt="1",kind="exact",shared="true"} +Inf`,
		"# TYPE imps_rpc_latency_seconds summary",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
	// An RPC with no observations exports no quantile series.
	if strings.Contains(out, `imps_rpc_latency_seconds{rpc="SnapshotMerge"`) {
		t.Error("quantiles exported for an unobserved RPC")
	}
}

// fakeState is a canned AdminState for mux tests.
type fakeState struct {
	sn     telemetry.Snapshot
	health []imps.HealthReport
	spans  []Span
}

func (f *fakeState) StatsSnapshot() telemetry.Snapshot  { return f.sn }
func (f *fakeState) HealthReports() []imps.HealthReport { return f.health }
func (f *fakeState) TraceSpans() []Span                 { return f.spans }

func TestAdminMux(t *testing.T) {
	tr := NewTracer(8)
	tr.Record(SpanRPC, int(telemetry.RPCQuery), 0, time.Now(), 42*time.Microsecond)
	var set telemetry.Set
	set.AddTuples(7)
	st := &fakeState{sn: set.Snapshot(), health: sampleHealth(), spans: tr.Snapshot()}
	srv := httptest.NewServer(NewAdminMux(st))
	defer srv.Close()

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}

	if code, body := get("/healthz"); code != 200 || body != "ok\n" {
		t.Errorf("/healthz: %d %q", code, body)
	}
	if code, body := get("/metrics"); code != 200 || !strings.Contains(body, "imps_tuples_ingested_total 7") {
		t.Errorf("/metrics: %d\n%s", code, body)
	}
	code, body := get("/trace")
	if code != 200 {
		t.Fatalf("/trace: %d", code)
	}
	var spans []jsonSpan
	if err := json.Unmarshal([]byte(body), &spans); err != nil {
		t.Fatalf("/trace not JSON: %v\n%s", err, body)
	}
	if len(spans) != 1 || spans[0].Kind != "rpc" || spans[0].DurNS != int64(42*time.Microsecond) {
		t.Errorf("/trace spans %+v", spans)
	}
	if code, body := get("/debug/pprof/cmdline"); code != 200 || body == "" {
		t.Errorf("/debug/pprof/cmdline: %d", code)
	}
}
