// Package obs is the observability layer of the serving subsystem: a
// lock-free ring-buffer event tracer recording spans across the ingest
// pipeline, wire codecs for shipping spans and estimator health reports
// over the Health/Trace RPCs, a Prometheus-text /metrics renderer over the
// telemetry snapshot and health reports, and the impserved admin HTTP
// endpoint that serves them (plus pprof). Everything is stdlib-only: the
// paper's constrained-environment premise extends to the toolchain.
package obs

import (
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"sort"
	"sync/atomic"
	"time"
)

// SpanKind classifies a traced event.
type SpanKind uint8

// The traced event kinds. Arg's meaning is per-kind (see Span.Arg).
const (
	// SpanPlan is one ingest batch planned into partition buckets on a
	// connection reader.
	SpanPlan SpanKind = iota
	// SpanDispatch is one batch moved from the ingest queue into the
	// pipeline by the dispatcher.
	SpanDispatch
	// SpanApply is one pipeline task (a partition bucket or an exclusive
	// batch) applied to the engine by a worker.
	SpanApply
	// SpanMerge is one remote sketch merged in via SnapshotMerge.
	SpanMerge
	// SpanCheckpoint is one engine checkpoint captured and written.
	SpanCheckpoint
	// SpanRPC is one request frame handled, any type.
	SpanRPC
	// SpanDeliver is one journaled batch delivered to a leaf by a
	// coordinator feeder — the root span of a cross-node trace; the leaf's
	// plan/dispatch/apply spans parent under it.
	SpanDeliver
	numSpanKinds
)

// String names the kind for dumps and dashboards.
func (k SpanKind) String() string {
	switch k {
	case SpanPlan:
		return "plan"
	case SpanDispatch:
		return "dispatch"
	case SpanApply:
		return "apply"
	case SpanMerge:
		return "merge"
	case SpanCheckpoint:
		return "checkpoint"
	case SpanRPC:
		return "rpc"
	case SpanDeliver:
		return "deliver"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Span is one recorded event.
type Span struct {
	// Seq is the span's ticket in the tracer's total admission order.
	// Consecutive snapshots overlap by Seq; gaps mean the ring lapped.
	Seq uint64
	// Kind classifies the event.
	Kind SpanKind
	// Arg is the kind-specific attribution: the applying worker's index for
	// SpanApply, the telemetry.RPC code for SpanRPC, the target statement
	// index for SpanMerge, the statement count for SpanCheckpoint, the
	// destination leaf's index for SpanDeliver, -1 where no attribution
	// applies.
	Arg int32
	// Start is the event's start wall time, Unix nanoseconds.
	Start int64
	// Dur is the event's wall duration in nanoseconds.
	Dur int64
	// Units is the work the event carried: tuples for plan/dispatch,
	// planned pairs or tuples for apply, marshalled sketch bytes for merge,
	// the checkpoint's applied-tuple offset for checkpoint, 0 for RPC spans
	// (their histogram lives in telemetry).
	Units int64
	// Trace is the distributed trace the span belongs to; 0 means the span
	// was recorded outside any cross-node trace (the single-node common
	// case — every pre-fleet span).
	Trace uint64
	// Parent is the span id this span is causally under: a coordinator
	// delivery span's id for a leaf's plan/dispatch/apply spans, 0 for a
	// root span.
	Parent uint64
	// ID is the span's own id, set only when something downstream must
	// reference it (coordinator delivery spans); 0 means unreferenced.
	ID uint64
}

// Link is the causal identity a span is recorded under: the trace it
// belongs to, the parent span it sits beneath, and optionally its own id
// when downstream spans will reference it. The zero Link records an
// ordinary untraced span.
type Link struct {
	Trace  uint64
	Parent uint64
	ID     uint64
}

// DefaultSpans is the ring capacity a zero TraceSpans configuration gets
// when tracing is enabled: deep enough to hold several seconds of batch
// traffic, small enough (~256 KiB) to be left on in production.
const DefaultSpans = 4096

// Tracer is a fixed-capacity lock-free span ring. Writers never block and
// never allocate: a span takes one atomic ticket and five atomic stores,
// overwriting the oldest span once the ring is full. Readers (Snapshot)
// validate each slot's seqlock-style state word before and after copying
// it, so a concurrently overwritten slot is skipped rather than returned
// torn. A nil *Tracer is valid and records nothing — call sites do not
// branch on whether tracing is enabled.
type Tracer struct {
	slots []slot
	mask  uint64
	next  atomic.Uint64
	// salt seeds NewSpanID's high bits so ids from different tracers (and
	// different processes) in one fleet do not collide; ids is the low-bits
	// counter.
	salt uint64
	ids  atomic.Uint64
}

// slot holds one span with every field atomic: a lapped writer and a
// reader may touch a slot concurrently, and the state word tells the
// reader whether what it copied was one coherent span.
type slot struct {
	// state encodes the slot's lifecycle: 0 never written, 2·ticket+1 a
	// writer holding ticket is mid-write, 2·ticket+2 that write completed.
	state atomic.Uint64
	// meta packs kind<<32 | uint32(arg).
	meta   atomic.Uint64
	start  atomic.Int64
	dur    atomic.Int64
	units  atomic.Int64
	trace  atomic.Uint64
	parent atomic.Uint64
	id     atomic.Uint64
}

// NewTracer returns a tracer holding the most recent capacity spans;
// capacity is rounded up to a power of two, minimum 2.
func NewTracer(capacity int) *Tracer {
	n := 2
	for n < capacity {
		n *= 2
	}
	var b [8]byte
	rand.Read(b[:]) // crypto/rand.Read never fails on supported platforms
	return &Tracer{slots: make([]slot, n), mask: uint64(n - 1), salt: binary.LittleEndian.Uint64(b[:])}
}

// NewSpanID draws a span id unique across the fleet with overwhelming
// probability: the tracer's random salt in the high 32 bits, an atomic
// counter below. Ids are drawn before the span is recorded — a sender
// must stamp its delivery span's id on the outbound frame before it knows
// the delivery's duration. Never returns 0 (the "unreferenced" value); a
// nil tracer returns 0, meaning callers without tracing get untraced
// behavior for free.
func (t *Tracer) NewSpanID() uint64 {
	if t == nil {
		return 0
	}
	id := t.salt<<32 | t.ids.Add(1)&0xFFFFFFFF
	if id == 0 {
		id = t.salt<<32 | t.ids.Add(1)&0xFFFFFFFF
	}
	return id
}

// NewTraceID draws a fresh trace id for a root operation; like NewSpanID
// it is never 0 and is 0 on a nil tracer.
func (t *Tracer) NewTraceID() uint64 { return t.NewSpanID() }

// Cap returns the ring capacity (0 for a nil tracer).
func (t *Tracer) Cap() int {
	if t == nil {
		return 0
	}
	return len(t.slots)
}

// Recorded returns the number of spans ever recorded (0 for nil).
func (t *Tracer) Recorded() uint64 {
	if t == nil {
		return 0
	}
	return t.next.Load()
}

// Record stores one untraced span, overwriting the oldest when the ring is
// full. Safe for any number of concurrent writers; no-op on a nil tracer.
func (t *Tracer) Record(kind SpanKind, arg int, units int64, start time.Time, dur time.Duration) {
	t.RecordLinked(Link{}, kind, arg, units, start, dur)
}

// RecordLinked stores one span under the given causal link (zero Link for
// an untraced span). Safe for any number of concurrent writers; no-op on a
// nil tracer.
func (t *Tracer) RecordLinked(link Link, kind SpanKind, arg int, units int64, start time.Time, dur time.Duration) {
	if t == nil {
		return
	}
	ticket := t.next.Add(1) - 1
	s := &t.slots[ticket&t.mask]
	s.state.Store(2*ticket + 1)
	s.meta.Store(uint64(kind)<<32 | uint64(uint32(int32(arg))))
	s.start.Store(start.UnixNano())
	s.dur.Store(int64(dur))
	s.units.Store(units)
	s.trace.Store(link.Trace)
	s.parent.Store(link.Parent)
	s.id.Store(link.ID)
	s.state.Store(2*ticket + 2)
}

// Span (the measuring variant): Record with the duration taken from the
// clock — callers that don't carry their own timing call
// defer tr.Span(kind, arg, units, time.Now()).
func (t *Tracer) Span(kind SpanKind, arg int, units int64, start time.Time) {
	t.Record(kind, arg, units, start, time.Since(start))
}

// SpanLinked is Span under a causal link.
func (t *Tracer) SpanLinked(link Link, kind SpanKind, arg int, units int64, start time.Time) {
	t.RecordLinked(link, kind, arg, units, start, time.Since(start))
}

// Snapshot copies out every coherent span currently in the ring, oldest
// first. Slots being overwritten during the copy are skipped: the snapshot
// is a consistent sample, not a barrier. Nil tracers return nil.
func (t *Tracer) Snapshot() []Span {
	if t == nil {
		return nil
	}
	out := make([]Span, 0, len(t.slots))
	for i := range t.slots {
		s := &t.slots[i]
		st := s.state.Load()
		if st == 0 || st&1 == 1 {
			continue
		}
		sp := Span{
			Seq:    (st - 2) / 2,
			Start:  s.start.Load(),
			Dur:    s.dur.Load(),
			Units:  s.units.Load(),
			Trace:  s.trace.Load(),
			Parent: s.parent.Load(),
			ID:     s.id.Load(),
		}
		meta := s.meta.Load()
		sp.Kind = SpanKind(meta >> 32)
		sp.Arg = int32(uint32(meta))
		if s.state.Load() != st {
			continue // overwritten mid-copy; the fields may be torn
		}
		out = append(out, sp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}
