package dsample

import (
	"math"
	"unsafe"

	"implicate/internal/imps"
	"implicate/internal/metrics"
)

// mapEntryOverhead approximates the Go map bookkeeping attributable to one
// entry beyond its key bytes and value payload. Health reports are
// estimates, not heap measurements.
const mapEntryOverhead = 48

// Health reports the sampler's runtime health. BitmapFill carries the entry
// budget's utilization (the sampler's bounded structure is its entry
// budget, not a bitmap), LeftmostZero the current sampling level — the
// direct analogue of a bitmap's saturation position: each level halves the
// inclusion probability 2^−l. RelErr is the Poisson relative error of the
// scaled qualifying-sample count, 1/√n over the n sampled itemsets
// currently satisfying the conditions — exactly the erratic-small-n failure
// mode §6.2 demonstrates. Not safe for concurrent use.
func (s *Sketch) Health() imps.HealthReport {
	var bytes int64
	var qualifying float64
	for a, v := range s.sample {
		bytes += int64(len(a)) + mapEntryOverhead + int64(unsafe.Sizeof(*v))
		for b := range v.perB {
			bytes += int64(len(b)) + mapEntryOverhead + 8
		}
		if !v.out && v.supp >= s.cond.MinSupport {
			qualifying++
		}
	}
	est := qualifying * s.scale()
	hi := (qualifying + math.Sqrt(qualifying+1)) * s.scale() // +1 keeps zero-sample reports honest
	return imps.HealthReport{
		Tuples:       s.tuples,
		MemEntries:   s.entries,
		MemBytes:     bytes,
		BitmapFill:   float64(s.entries) / float64(s.size),
		LeftmostZero: float64(s.level),
		RelErr:       metrics.IntervalRelErr(est, hi, 1),
	}
}

var _ imps.HealthReporter = (*Sketch)(nil)
