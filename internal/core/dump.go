package core

import (
	"fmt"
	"io"
	"sort"
)

// Dump writes a human-readable snapshot of the sketch — configuration,
// estimates, and the per-bitmap zone structure — for debugging and for the
// operational "what is this sketch doing" question. It prints at most
// maxBitmaps bitmaps (0 means all).
func (s *Sketch) Dump(w io.Writer, maxBitmaps int) {
	fmt.Fprintf(w, "NIPS/CI sketch: %s, m=%d fringe=%d slack=%d unbounded=%v seed=%#x\n",
		s.cond, s.opts.Bitmaps, s.opts.FringeSize, s.opts.Slack, s.opts.Unbounded, s.opts.Seed)
	fmt.Fprintf(w, "tuples=%d entries=%d (peak %d)\n", s.tuples, s.entries, s.peak)
	lo, hi := s.ImplicationCountInterval(2)
	fmt.Fprintf(w, "estimates: S=%.1f [%.1f, %.1f]  ~S=%.1f  F0sup=%.1f  F0=%.1f  avg|φ|=%.2f\n",
		s.ImplicationCount(), lo, hi,
		s.NonImplicationCount(), s.SupportedDistinct(), s.DistinctCount(), s.AvgMultiplicity())
	fst := s.Fringe()
	fmt.Fprintf(w, "fringe: tracked=%d pairs=%d tombstones=%d maxWidth=%d overflows=%d\n",
		fst.TrackedItemsets, fst.PairCounters, fst.Tombstones, fst.MaxFringeWidth, fst.Overflows)

	n := len(s.bms)
	if maxBitmaps > 0 && maxBitmaps < n {
		n = maxBitmaps
	}
	for bi := 0; bi < n; bi++ {
		b := &s.bms[bi]
		fmt.Fprintf(w, "bitmap %3d: lo=%d hi=%d cells=", bi, b.lo, b.hi)
		top := b.hi
		if top < 0 {
			fmt.Fprintln(w, "(empty)")
			continue
		}
		for j := 0; j <= top; j++ {
			switch {
			case b.dead[j]:
				fmt.Fprint(w, "X") // dead (overflow / pushed out)
			case b.value[j]:
				fmt.Fprint(w, "1") // non-implication recorded, still tracking
			case b.cells[j] != nil && len(b.cells[j].items) > 0:
				fmt.Fprint(w, "t") // tracking, undecided
			case b.touched[j]:
				fmt.Fprint(w, ".") // hashed at some point, currently empty
			default:
				fmt.Fprint(w, "0")
			}
		}
		fmt.Fprintln(w)
	}
	if n < len(s.bms) {
		fmt.Fprintf(w, "... %d more bitmaps\n", len(s.bms)-n)
	}
}

// DumpCells writes the tracked itemsets of one bitmap's live cells (hashes,
// supports, partner counts), sorted for stable output. Intended for tests
// and deep debugging.
func (s *Sketch) DumpCells(w io.Writer, bitmap int) {
	if bitmap < 0 || bitmap >= len(s.bms) {
		fmt.Fprintf(w, "bitmap %d out of range\n", bitmap)
		return
	}
	b := &s.bms[bitmap]
	for j := 0; j < Levels; j++ {
		c := b.cells[j]
		if c == nil {
			continue
		}
		kind := "fringe"
		if c.suppOnly {
			kind = "supp-only"
		}
		fmt.Fprintf(w, "cell %d (%s, supported=%d doomed=%d excluded=%d):\n",
			j, kind, c.nSupported, c.nDoomed, c.nExcluded)
		sorted := append([]item(nil), c.items...)
		sort.Slice(sorted, func(x, y int) bool { return sorted[x].ah < sorted[y].ah })
		for i := range sorted {
			it := &sorted[i]
			if it.st.excluded {
				fmt.Fprintf(w, "  %016x tombstone\n", it.ah)
				continue
			}
			fmt.Fprintf(w, "  %016x supp=%d doomed=%v partners=%d\n", it.ah, it.st.supp, it.st.doomed, len(it.st.perB))
		}
	}
}
