package query

import (
	"strings"
	"testing"

	"implicate/internal/core"
	"implicate/internal/exact"
	"implicate/internal/imps"
	"implicate/internal/stream"
)

// sketchFactory builds backends the way user code does: one factory
// function, parameterized by options, returning a fresh closure per call.
// Every closure it returns shares the factory literal's code pointer — the
// aliasing trap the share key must see through.
func sketchFactory(opts core.Options) Backend {
	return func(cond imps.Conditions) (imps.Estimator, error) {
		return core.NewSketch(cond, opts)
	}
}

// TestNoSharingAcrossFactoryConfigs: two backends built by the same factory
// with different configurations must NOT share an estimator, even though
// their closures share a code pointer. The backends are minted through a
// single call site (the loop) so the compiler cannot quietly give each its
// own inlined closure body — the collision the share key must survive is
// two distinct backend values behind ONE code pointer.
func TestNoSharingAcrossFactoryConfigs(t *testing.T) {
	e := NewEngine(mustSchema(t))
	sql := `SELECT COUNT(DISTINCT Source) FROM t WHERE Source IMPLIES Destination`
	var stmts []*Statement
	for _, opts := range []core.Options{{Bitmaps: 16}, {Bitmaps: 256}} {
		st, err := e.RegisterSQL(sql, sketchFactory(opts))
		if err != nil {
			t.Fatal(err)
		}
		stmts = append(stmts, st)
	}
	small, large := stmts[0], stmts[1]
	if small.Estimator() == large.Estimator() {
		t.Fatal("backends with different configurations shared an estimator")
	}
	if got := small.Estimator().(*core.Sketch).Options().Bitmaps; got != 16 {
		t.Fatalf("first statement's sketch has %d bitmaps, want 16", got)
	}
	if got := large.Estimator().(*core.Sketch).Options().Bitmaps; got != 256 {
		t.Fatalf("second statement's sketch has %d bitmaps, want its own 256", got)
	}
}

// TestFactoryBackendStillShares: read-mode variants registered with one
// factory-built backend value still share an estimator — the configuration
// fingerprint in the share key separates differently configured backends
// without breaking mode sharing. (Fingerprints exclude auto-derived seeds
// precisely so that a factory minting a fresh seed per construction does
// not defeat this.)
func TestFactoryBackendStillShares(t *testing.T) {
	e := NewEngine(mustSchema(t))
	backend := sketchFactory(core.Options{Bitmaps: 64})
	base := `FROM t WHERE Source %sIMPLIES Destination`
	a, err := e.RegisterSQL(`SELECT COUNT(DISTINCT Source) `+sprintfBase(base, ""), backend)
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.RegisterSQL(`SELECT COUNT(DISTINCT Source) `+sprintfBase(base, "NOT "), backend)
	if err != nil {
		t.Fatal(err)
	}
	if a.Estimator() != b.Estimator() {
		t.Fatal("mode variants of one factory-built backend did not share")
	}
}

// TestSharedPathValidatesBackend: an estimator another statement could be
// aliased to must not short-circuit validation — a backend whose
// construction fails is rejected even when its factory twin already
// registered the same query.
func TestSharedPathValidatesBackend(t *testing.T) {
	e := NewEngine(mustSchema(t))
	sql := `SELECT COUNT(DISTINCT Source) FROM t WHERE Source IMPLIES Destination`
	if _, err := e.RegisterSQL(sql, sketchFactory(core.Options{Bitmaps: 64})); err != nil {
		t.Fatal(err)
	}
	// Same factory code pointer, broken configuration (33 is not a power of
	// two): registration must fail, not silently alias the healthy sketch.
	if _, err := e.RegisterSQL(sql, sketchFactory(core.Options{Bitmaps: 33})); err == nil {
		t.Fatal("broken backend registered without error by aliasing its factory twin")
	}
}

// noAvgEstimator hides every optional capability of the wrapped estimator,
// in particular MultiplicityAverager.
type noAvgEstimator struct {
	inner *exact.Counter
}

func (n noAvgEstimator) Add(a, b string)            { n.inner.Add(a, b) }
func (n noAvgEstimator) ImplicationCount() float64  { return n.inner.ImplicationCount() }
func (n noAvgEstimator) NonImplicationCount() float64 {
	return n.inner.NonImplicationCount()
}
func (n noAvgEstimator) SupportedDistinct() float64 { return n.inner.SupportedDistinct() }
func (n noAvgEstimator) Tuples() int64              { return n.inner.Tuples() }
func (n noAvgEstimator) MemEntries() int            { return n.inner.MemEntries() }

func noAvgBackend(cond imps.Conditions) (imps.Estimator, error) {
	c, err := exact.NewCounter(cond)
	if err != nil {
		return nil, err
	}
	return noAvgEstimator{inner: c}, nil
}

// TestWindowedAvgRequiresAverager: a windowed AVG(MULTIPLICITY(...)) over a
// backend that cannot average must be rejected at compile time. (The
// sliding-window wrapper itself implements the averaging interface, so a
// check against the wrapper instead of the backend's estimator would pass
// and the statement would silently answer 0 forever.)
func TestWindowedAvgRequiresAverager(t *testing.T) {
	schema := mustSchema(t)
	sql := `SELECT AVG(MULTIPLICITY(Source)) FROM t WHERE Source IMPLIES Destination WINDOW 100 EVERY 10`
	q, err := Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compile(*q, schema, noAvgBackend); err == nil {
		t.Fatal("windowed AVG compiled against a backend that cannot average")
	} else if !strings.Contains(err.Error(), "AVG(MULTIPLICITY") {
		t.Fatalf("unhelpful rejection: %v", err)
	}
}

// TestWindowedAvgRequiresAveragerViaRegister: the same rejection must hold
// on the engine's Register path when a shareable statement over the same
// predicate already exists.
func TestWindowedAvgRequiresAveragerViaRegister(t *testing.T) {
	e := NewEngine(mustSchema(t))
	base := `FROM t WHERE Source IMPLIES Destination WINDOW 100 EVERY 10`
	if _, err := e.RegisterSQL(`SELECT COUNT(DISTINCT Source) `+base, noAvgBackend); err != nil {
		t.Fatal(err)
	}
	if _, err := e.RegisterSQL(`SELECT AVG(MULTIPLICITY(Source)) `+base, noAvgBackend); err == nil {
		t.Fatal("windowed AVG registered against a backend that cannot average")
	}
}

// TestWindowedAvgAnswersWithAverager: the positive case — a windowed AVG
// over an averaging backend compiles and reports a real (non-zero) value.
func TestWindowedAvgAnswersWithAverager(t *testing.T) {
	e := NewEngine(mustSchema(t))
	st, err := e.RegisterSQL(
		`SELECT AVG(MULTIPLICITY(Source)) FROM t WHERE Source IMPLIES Destination
		 WITH MULTIPLICITY <= 10, CONFIDENCE >= 0.1 TOP 1 WINDOW 100 EVERY 10`, exactBackend)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Consume(stream.NewMemSource(table1())); err != nil {
		t.Fatal(err)
	}
	if st.Count() == 0 {
		t.Fatal("windowed AVG over an averaging backend answered 0")
	}
}

// TestSharedPathValidatesQuery: a valid CountImplications registered
// first, then a mode variant over the same predicate with an invalid
// window geometry (EVERY > WINDOW). The second registration must run the
// full normalization pipeline and be rejected — not alias the compiled
// statement with its own validation skipped.
func TestSharedPathValidatesQuery(t *testing.T) {
	e := NewEngine(mustSchema(t))
	if _, err := e.RegisterSQL(
		`SELECT COUNT(DISTINCT Source) FROM t WHERE Source IMPLIES Destination WINDOW 100 EVERY 20`,
		exactBackend); err != nil {
		t.Fatal(err)
	}
	_, err := e.RegisterSQL(
		`SELECT AVG(MULTIPLICITY(Source)) FROM t WHERE Source IMPLIES Destination WINDOW 100 EVERY 200`,
		exactBackend)
	if err == nil || !strings.Contains(err.Error(), "EVERY") {
		t.Fatalf("EVERY > WINDOW mode variant was not rejected on the shared path: %v", err)
	}
}
