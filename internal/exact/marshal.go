package exact

import (
	"fmt"
	"sort"

	"implicate/internal/imps"
	"implicate/internal/wire"
)

// Binary serialization for the exact counter, so ground-truth state
// survives checkpoints: the engine's kill-and-resume guarantee is "counts
// identical to an uninterrupted run" for this backend, which requires its
// full item table to round-trip. Items (and each item's B-partners) are
// written in sorted order, so equal states encode to equal bytes — handy
// for tests that assert bit-identical recovery.

const marshalMagic = "EXCT\x01"

// MarshalBinary encodes the complete counter state.
func (c *Counter) MarshalBinary() ([]byte, error) {
	e := wire.NewEncoder(1024)
	e.Raw([]byte(marshalMagic))

	e.U32(uint32(c.cond.MaxMultiplicity))
	e.I64(c.cond.MinSupport)
	e.U32(uint32(c.cond.TopC))
	e.F64(c.cond.MinTopConfidence)
	e.I64(c.tuples)

	keys := make([]string, 0, len(c.items))
	for a := range c.items {
		keys = append(keys, a)
	}
	sort.Strings(keys)
	e.U32(uint32(len(keys)))
	for _, a := range keys {
		st := c.items[a]
		e.Str(a)
		e.I64(st.supp)
		e.Bool(st.out)
		if st.out {
			continue
		}
		bs := make([]string, 0, len(st.perB))
		for b := range st.perB {
			bs = append(bs, b)
		}
		sort.Strings(bs)
		e.U32(uint32(len(bs)))
		for _, b := range bs {
			e.Str(b)
			e.I64(st.perB[b])
		}
	}
	return e.Bytes(), nil
}

// UnmarshalCounter decodes a counter previously encoded with MarshalBinary,
// rebuilding the cached aggregate counts from the decoded items.
func UnmarshalCounter(data []byte) (*Counter, error) {
	d := wire.NewDecoder(data)
	d.Magic(marshalMagic)

	var cond imps.Conditions
	cond.MaxMultiplicity = int(d.U32())
	cond.MinSupport = d.I64()
	cond.TopC = int(d.U32())
	cond.MinTopConfidence = d.F64()
	if err := d.Err(); err != nil {
		return nil, err
	}
	c, err := NewCounter(cond)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", wire.ErrCorrupt, err)
	}
	c.tuples = d.I64()
	if c.tuples < 0 {
		return nil, wire.ErrCorrupt
	}

	// Every item costs at least 4 (key len) + 8 (supp) + 1 (out) bytes.
	nitems := d.Count(13)
	for i := 0; i < nitems; i++ {
		a := d.Str(1 << 24)
		st := &state{supp: d.I64(), out: d.Bool()}
		if d.Err() != nil {
			return nil, d.Err()
		}
		if st.supp < 1 {
			return nil, wire.ErrCorrupt
		}
		if _, dup := c.items[a]; dup {
			return nil, wire.ErrCorrupt
		}
		if !st.out {
			npairs := d.Count(12)
			st.perB = make(map[string]int64, npairs)
			for p := 0; p < npairs; p++ {
				b := d.Str(1 << 24)
				n := d.I64()
				if d.Err() != nil {
					return nil, d.Err()
				}
				if n < 1 {
					return nil, wire.ErrCorrupt
				}
				if _, dup := st.perB[b]; dup {
					return nil, wire.ErrCorrupt
				}
				st.perB[b] = n
			}
			c.entries += len(st.perB)
		}
		c.items[a] = st
		c.entries++
		if st.supp >= cond.MinSupport {
			c.supported++
			if st.out {
				c.nonImplications++
			} else {
				c.implications++
			}
		} else if st.out {
			// An item below the minimum support can never have been excluded.
			return nil, wire.ErrCorrupt
		}
	}
	if err := d.Done(); err != nil {
		return nil, err
	}
	return c, nil
}

// ConfigFingerprint identifies the exact algorithm and its conditions; the
// counter has no other configuration.
func (c *Counter) ConfigFingerprint() string {
	return fmt.Sprintf("exact(%s)", c.cond)
}
